(* Reproduction driver: regenerate every table and figure of the paper's
   evaluation, plus the ablation studies. *)

open Cmdliner
open Stx_harness

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~doc:"Workload size multiplier (1.0 = default inputs).")

let threads_arg =
  Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Simulated cores/threads.")

let bench_arg =
  Arg.(
    value
    & opt string "genome"
    & info [ "bench" ] ~doc:"Benchmark name (see `stx_run --list`).")

let ctx seed scale threads = Exp.create ~seed ~scale ~threads ()

let section title body =
  Printf.printf "==== %s ====\n%s\n%!" title body

let cmd_of name title render =
  let run seed scale threads = section title (render (ctx seed scale threads)) in
  Cmd.v (Cmd.info name ~doc:title)
    Term.(const run $ seed_arg $ scale_arg $ threads_arg)

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Figure 1: the staggering schematic, from real runs")
    Term.(const (fun () -> section "Figure 1" (Reports.fig1 ())) $ const ())

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Simulator configuration (Table 2)")
    Term.(const (fun () -> section "Table 2" (Reports.table2 ())) $ const ())

let anchors_cmd =
  let run bench =
    match Stx_workloads.Registry.find bench with
    | Some w -> section ("anchor tables: " ^ bench) (Reports.anchor_tables w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v
    (Cmd.info "anchors" ~doc:"Unified anchor tables of a benchmark (Figure 3)")
    Term.(const run $ bench_arg)

let scaling_cmd =
  let run seed scale threads bench =
    match Stx_workloads.Registry.find bench with
    | Some w ->
      section ("scaling: " ^ bench) (Reports.scaling (ctx seed scale threads) w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v (Cmd.info "scaling" ~doc:"Thread-count sweep for one benchmark")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg $ bench_arg)

let hotspots_cmd =
  let run seed scale threads bench =
    match Stx_workloads.Registry.find bench with
    | Some w ->
      section ("hotspots: " ^ bench) (Reports.hotspots (ctx seed scale threads) w)
    | None -> prerr_endline ("unknown benchmark " ^ bench)
  in
  Cmd.v (Cmd.info "hotspots" ~doc:"Top conflicting lines/PCs of one benchmark")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg $ bench_arg)

let scaling_all_cmd =
  let run seed scale threads =
    let c = ctx seed scale threads in
    List.iter
      (fun w -> section ("scaling: " ^ w.Stx_workloads.Workload.name) (Reports.scaling c w))
      Stx_workloads.Registry.all
  in
  Cmd.v (Cmd.info "scaling-all" ~doc:"Thread sweeps for every benchmark")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg)

let fig7avg_cmd =
  let run _seed scale threads =
    section "Figure 7 (seed-averaged)"
      (Reports.fig7_repeated ~scale ~threads ())
  in
  Cmd.v
    (Cmd.info "fig7-avg" ~doc:"Figure 7 averaged over 5 seeds (paper methodology)")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "results" & info [ "out" ] ~doc:"Output directory.")
  in
  let run seed scale threads out =
    let paths = Export.write_all (ctx seed scale threads) ~dir:out in
    List.iter print_endline paths
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the evaluation data as TSV files")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg $ out_arg)

let ablations_cmd =
  let run seed scale = section "ablations" (Ablations.all ~seed ~scale ()) in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablation studies")
    Term.(const run $ seed_arg $ scale_arg)

let all_cmd =
  let run seed scale threads =
    let c = ctx seed scale threads in
    section "Table 2" (Reports.table2 ());
    section "Figure 1" (Reports.fig1 ());
    section "Table 1" (Reports.table1 c);
    section "Table 3" (Reports.table3 c);
    section "Table 4" (Reports.table4 c);
    section "Figure 7" (Reports.fig7 c);
    section "Figure 8" (Reports.fig8 c);
    section "Serialization granularity (Result 2)" (Reports.granularity c)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table and figure of the evaluation")
    Term.(const run $ seed_arg $ scale_arg $ threads_arg)

let () =
  let info =
    Cmd.info "stx_repro" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'Conflict Reduction in Hardware \
         Transactions Using Advisory Locks' (SPAA 2015)"
  in
  let cmds =
    [
      cmd_of "table1" "Table 1: baseline HTM contention" Reports.table1;
      table2_cmd;
      cmd_of "table3" "Table 3: instrumentation statistics" Reports.table3;
      cmd_of "table4" "Table 4: benchmark characteristics" Reports.table4;
      cmd_of "granularity" "Whole-txn scheduling vs staggering (Result 2)"
        Reports.granularity;
      fig1_cmd;
      cmd_of "fig7" "Figure 7: performance comparison" Reports.fig7;
      cmd_of "fig8" "Figure 8: aborts and wasted cycles" Reports.fig8;
      anchors_cmd;
      scaling_cmd;
      scaling_all_cmd;
      hotspots_cmd;
      fig7avg_cmd;
      export_cmd;
      ablations_cmd;
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))

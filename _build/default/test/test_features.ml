open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

(* Tests for the later features: read-only analysis, whole-transaction
   scheduling, TSV export, per-atomic-block statistics, and the coherence
   upgrade cost. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* --- read-only atomic-block analysis ------------------------------------ *)

let test_read_only_analysis () =
  let p = Ir.create_program () in
  Stx_tstruct.Tlist.register p;
  let ab_l = Ir.add_atomic p ~name:"lookup" ~func:Stx_tstruct.Tlist.lookup_fn in
  let ab_i = Ir.add_atomic p ~name:"insert" ~func:Stx_tstruct.Tlist.insert_fn in
  let b = Builder.create p "main" ~params:[ "head" ] in
  ignore (Builder.atomic_call_v b ab_l [ Builder.param b "head"; Ir.Imm 1 ]);
  ignore (Builder.atomic_call_v b ab_i [ Builder.param b "head"; Ir.Imm 1 ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  let c = Stx_compiler.Pipeline.compile p in
  Alcotest.(check bool) "lookup is read-only" true
    (Stx_compiler.Pipeline.is_read_only c ~ab:ab_l);
  Alcotest.(check bool) "insert writes" false
    (Stx_compiler.Pipeline.is_read_only c ~ab:ab_i)

let test_read_only_through_calls () =
  (* a wrapper that calls a writer is itself not read-only *)
  let p = Ir.create_program () in
  Stx_tstruct.Tlist.register p;
  let b = Builder.create p "wrapper" ~params:[ "head" ] in
  ignore (Builder.call_v b Stx_tstruct.Tlist.delete_fn [ Builder.param b "head"; Ir.Imm 3 ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"wrapped_delete" ~func:"wrapper" in
  let b = Builder.create p "main" ~params:[ "head" ] in
  Builder.atomic_call b ab [ Builder.param b "head" ];
  Builder.ret b None;
  ignore (Builder.finish b);
  let c = Stx_compiler.Pipeline.compile p in
  Alcotest.(check bool) "writer through call detected" false
    (Stx_compiler.Pipeline.is_read_only c ~ab)

(* --- whole-transaction scheduling mode ----------------------------------- *)

let test_tx_sched_serializes () =
  let w = Option.get (Registry.find "list-hi") in
  let run mode =
    Machine.run ~seed:4
      ~cfg:(Config.with_cores 8 Config.default)
      ~mode
      (Workload.spec ~instrument:(Mode.uses_alps mode) ~scale:0.2 w)
  in
  let base = run Mode.Baseline in
  let sched = run Mode.Tx_sched in
  Alcotest.(check bool) "txsched acquires per-block locks" true
    (sched.Stats.lock_acquires > 0);
  Alcotest.(check bool) "txsched reduces aborts" true
    (sched.Stats.aborts < base.Stats.aborts);
  Alcotest.(check int) "same commits" base.Stats.commits sched.Stats.commits

(* --- TSV export ----------------------------------------------------------- *)

let test_export_writes_tsv () =
  let dir = Filename.temp_file "stx" "" in
  Sys.remove dir;
  let ctx = Stx_harness.Exp.create ~seed:2 ~scale:0.05 ~threads:2 () in
  let paths = Stx_harness.Export.write_all ctx ~dir in
  Alcotest.(check int) "four files" 4 (List.length paths);
  List.iter
    (fun path ->
      let ic = open_in path in
      let header = input_line ic in
      let row = input_line ic in
      close_in ic;
      Alcotest.(check bool) "header has tabs" true (String.contains header '\t');
      Alcotest.(check bool) "row has data" true (String.length row > 2))
    paths

(* --- per-atomic-block statistics ------------------------------------------ *)

let test_per_ab_stats () =
  let w = Option.get (Registry.find "intruder") in
  let s =
    Machine.run ~seed:2
      ~cfg:(Config.with_cores 4 Config.default)
      ~mode:Mode.Baseline
      (Workload.spec ~instrument:false ~scale:0.1 w)
  in
  let ab0 = Stats.ab s 0 and ab1 = Stats.ab s 1 in
  Alcotest.(check int) "per-ab commits sum to total" s.Stats.commits
    (ab0.Stats.ab_commits + ab1.Stats.ab_commits);
  Alcotest.(check int) "per-ab aborts sum to total" s.Stats.aborts
    (ab0.Stats.ab_aborts + ab1.Stats.ab_aborts)

(* --- coherence upgrade cost ------------------------------------------------ *)

let test_write_upgrade_cost () =
  let cfg = Config.with_cores 2 Config.default in
  let h = Hierarchy.create cfg in
  (* both cores read the line: shared everywhere *)
  ignore (Hierarchy.access h ~core:0 ~line:42 ~write:false);
  ignore (Hierarchy.access h ~core:1 ~line:42 ~write:false);
  (* core 0 writes: pays at least the shared-level round trip *)
  let c = Hierarchy.access h ~core:0 ~line:42 ~write:true in
  Alcotest.(check bool) "upgrade cost" true (c >= cfg.Config.l3_latency);
  (* now exclusive: a second write is an L1 hit *)
  let c2 = Hierarchy.access h ~core:0 ~line:42 ~write:true in
  Alcotest.(check int) "exclusive write hits L1" cfg.Config.l1_latency c2

let test_mode_list_covers_tx_sched () =
  Alcotest.(check int) "five modes" 5 (List.length Mode.all);
  Alcotest.(check bool) "txsched parses" true
    (Mode.of_string "TxSched" = Some Mode.Tx_sched)

let suite =
  [
    Alcotest.test_case "read-only analysis" `Quick test_read_only_analysis;
    Alcotest.test_case "read-only through calls" `Quick test_read_only_through_calls;
    Alcotest.test_case "tx-sched serializes" `Quick test_tx_sched_serializes;
    Alcotest.test_case "tsv export" `Quick test_export_writes_tsv;
    Alcotest.test_case "per-ab stats" `Quick test_per_ab_stats;
    Alcotest.test_case "coherence upgrade cost" `Quick test_write_upgrade_cost;
    Alcotest.test_case "mode list covers tx-sched" `Quick test_mode_list_covers_tx_sched;
  ]

let _ = contains

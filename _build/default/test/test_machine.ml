open Stx_machine

let cfg = Config.default

let test_memory_roundtrip () =
  let m = Memory.create () in
  Memory.store m 8 42;
  Alcotest.(check int) "load back" 42 (Memory.load m 8);
  Alcotest.(check int) "fresh is zero" 0 (Memory.load m 9)

let test_memory_growth () =
  let m = Memory.create ~initial_words:16 () in
  Memory.store m 1_000_000 7;
  Alcotest.(check int) "grown load" 7 (Memory.load m 1_000_000);
  Alcotest.(check int) "unwritten beyond capacity" 0 (Memory.load m 999_999)

let test_memory_rejects_null () =
  let m = Memory.create () in
  Alcotest.check_raises "store to 0" (Invalid_argument "Memory: address must be positive")
    (fun () -> Memory.store m 0 1);
  Alcotest.check_raises "load of 0" (Invalid_argument "Memory: address must be positive")
    (fun () -> ignore (Memory.load m 0))

let test_line_of () =
  Alcotest.(check int) "line 0" 0 (Memory.line_of ~words_per_line:8 7);
  Alcotest.(check int) "line 1" 1 (Memory.line_of ~words_per_line:8 8)

let test_alloc_disjoint () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  let x = Alloc.alloc a ~thread:0 4 in
  let y = Alloc.alloc a ~thread:0 4 in
  Alcotest.(check bool) "disjoint" true (abs (x - y) >= 4);
  Alcotest.(check bool) "nonnull" true (x > 0 && y > 0)

let test_alloc_line_aligned () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  for _ = 1 to 20 do
    let p = Alloc.alloc a ~thread:1 3 in
    Alcotest.(check int) "aligned" 0 (p mod 8)
  done

let test_alloc_threads_never_share_lines () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  let lines t =
    List.init 30 (fun _ -> Alloc.alloc a ~thread:t 2 / 8)
  in
  let l0 = lines 0 and l1 = lines 1 in
  List.iter
    (fun l -> Alcotest.(check bool) "no shared line" false (List.mem l l1))
    l0

let test_alloc_large_object () =
  let m = Memory.create () in
  let a = Alloc.create ~arena_words:64 ~words_per_line:8 m in
  let p = Alloc.alloc a ~thread:0 1000 in
  Memory.store m (p + 999) 5;
  Alcotest.(check int) "large object usable" 5 (Memory.load m (p + 999))

let test_alloc_rejects_nonpositive () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  Alcotest.check_raises "zero alloc"
    (Invalid_argument "Alloc.alloc: size must be positive") (fun () ->
      ignore (Alloc.alloc a ~thread:0 0))

let test_cache_hit_after_insert () =
  let c = Cache.create ~lines:64 ~ways:4 in
  Alcotest.(check bool) "miss first" false (Cache.probe c 5);
  Cache.insert c 5;
  Alcotest.(check bool) "hit after insert" true (Cache.probe c 5)

let test_cache_lru_eviction () =
  let c = Cache.create ~lines:8 ~ways:2 in
  (* set count = 4; lines 0,4,8 map to set 0 *)
  Cache.insert c 0;
  Cache.insert c 4;
  Cache.insert c 8;
  (* 0 was LRU, should be evicted *)
  Alcotest.(check bool) "evicted" false (Cache.probe c 0);
  Alcotest.(check bool) "kept 4" true (Cache.probe c 4);
  Alcotest.(check bool) "kept 8" true (Cache.probe c 8)

let test_cache_probe_refreshes_lru () =
  let c = Cache.create ~lines:8 ~ways:2 in
  Cache.insert c 0;
  Cache.insert c 4;
  ignore (Cache.probe c 0);
  (* now 4 is LRU *)
  Cache.insert c 8;
  Alcotest.(check bool) "0 survives" true (Cache.probe c 0);
  Alcotest.(check bool) "4 evicted" false (Cache.probe c 4)

let test_cache_invalidate () =
  let c = Cache.create ~lines:8 ~ways:2 in
  Cache.insert c 3;
  Cache.invalidate c 3;
  Alcotest.(check bool) "gone" false (Cache.probe c 3)

let test_hierarchy_latency_ladder () =
  let h = Hierarchy.create cfg in
  let first = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "cold miss" cfg.Config.mem_latency first;
  let second = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "l1 hit" cfg.Config.l1_latency second

let test_hierarchy_l3_sharing () =
  let h = Hierarchy.create cfg in
  ignore (Hierarchy.access h ~core:0 ~line:100 ~write:false);
  let other = Hierarchy.access h ~core:1 ~line:100 ~write:false in
  Alcotest.(check int) "other core hits shared l3" cfg.Config.l3_latency other

let test_hierarchy_write_invalidates_peers () =
  let h = Hierarchy.create cfg in
  ignore (Hierarchy.access h ~core:0 ~line:100 ~write:false);
  ignore (Hierarchy.access h ~core:1 ~line:100 ~write:true);
  let again = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "coherence miss back to l3" cfg.Config.l3_latency again

let test_config_pp () =
  let s = Format.asprintf "%a" Config.pp cfg in
  Alcotest.(check bool) "mentions L1" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

let qcheck_cache_insert_then_probe =
  QCheck.Test.make ~name:"cache: inserted line probes true immediately" ~count:300
    QCheck.(small_nat)
    (fun line ->
      let c = Cache.create ~lines:64 ~ways:4 in
      Cache.insert c line;
      Cache.probe c line)

let qcheck_alloc_alignment =
  QCheck.Test.make ~name:"alloc: always line aligned" ~count:200
    QCheck.(pair (int_range 0 7) (int_range 1 64))
    (fun (thread, size) ->
      let m = Memory.create () in
      let a = Alloc.create ~words_per_line:8 m in
      Alloc.alloc a ~thread size mod 8 = 0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "memory growth" `Quick test_memory_growth;
    Alcotest.test_case "memory rejects null" `Quick test_memory_rejects_null;
    Alcotest.test_case "line_of" `Quick test_line_of;
    Alcotest.test_case "alloc disjoint" `Quick test_alloc_disjoint;
    Alcotest.test_case "alloc line aligned" `Quick test_alloc_line_aligned;
    Alcotest.test_case "alloc threads never share lines" `Quick
      test_alloc_threads_never_share_lines;
    Alcotest.test_case "alloc large object" `Quick test_alloc_large_object;
    Alcotest.test_case "alloc rejects nonpositive" `Quick test_alloc_rejects_nonpositive;
    Alcotest.test_case "cache hit after insert" `Quick test_cache_hit_after_insert;
    Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache probe refreshes lru" `Quick test_cache_probe_refreshes_lru;
    Alcotest.test_case "cache invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "hierarchy latency ladder" `Quick test_hierarchy_latency_ladder;
    Alcotest.test_case "hierarchy l3 sharing" `Quick test_hierarchy_l3_sharing;
    Alcotest.test_case "hierarchy write invalidates peers" `Quick
      test_hierarchy_write_invalidates_peers;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    q qcheck_cache_insert_then_probe;
    q qcheck_alloc_alignment;
  ]

open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim

(* Differential testing of the interpreter: random straight-line programs
   over a handful of registers and a small private scratch array are
   executed both by the simulated machine and by a direct OCaml reference
   evaluator; the full final state must agree. The same program is also run
   wrapped in an atomic block, checking that transactional write-buffering
   is invisible to single-threaded semantics. *)

let nregs = 6
let nslots = 12

type rop =
  | Const of int * int (* reg, value *)
  | Bin of Ir.binop * int * int * int (* dst, a, b *)
  | Store of int * int (* slot, src reg *)
  | Load of int * int (* dst reg, slot *)

let safe_binops =
  [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le |]

let gen_rop =
  QCheck.Gen.(
    frequency
      [
        (2, map2 (fun r v -> Const (r, v)) (int_bound (nregs - 1)) (int_range (-50) 50));
        ( 4,
          map3
            (fun op (d, a) b -> Bin (safe_binops.(op), d, a, b))
            (int_bound (Array.length safe_binops - 1))
            (pair (int_bound (nregs - 1)) (int_bound (nregs - 1)))
            (int_bound (nregs - 1)) );
        (2, map2 (fun s r -> Store (s, r)) (int_bound (nslots - 1)) (int_bound (nregs - 1)));
        (2, map2 (fun d s -> Load (d, s)) (int_bound (nregs - 1)) (int_bound (nslots - 1)));
      ])

let gen_prog = QCheck.Gen.(list_size (int_range 1 60) gen_rop)

(* reference semantics; values stay within native int like the machine *)
let reference ops =
  let regs = Array.make nregs 0 in
  let slots = Array.make nslots 0 in
  let eval op a b =
    match op with
    | Ir.Add -> a + b
    | Ir.Sub -> a - b
    | Ir.Mul -> a * b
    | Ir.And -> a land b
    | Ir.Or -> a lor b
    | Ir.Xor -> a lxor b
    | Ir.Eq -> if a = b then 1 else 0
    | Ir.Ne -> if a <> b then 1 else 0
    | Ir.Lt -> if a < b then 1 else 0
    | Ir.Le -> if a <= b then 1 else 0
    | _ -> assert false
  in
  List.iter
    (fun rop ->
      match rop with
      | Const (r, v) -> regs.(r) <- v
      | Bin (op, d, a, b) -> regs.(d) <- eval op regs.(a) regs.(b)
      | Store (s, r) -> slots.(s) <- regs.(r)
      | Load (d, s) -> regs.(d) <- slots.(s))
    ops;
  (regs, slots)

(* build a TIR function executing [ops] on (scratch, out) and dumping the
   final registers to out..out+nregs-1 *)
let build_body b ops =
  let reg i = Builder.reg b (Printf.sprintf "r%d" i) in
  for i = 0 to nregs - 1 do
    Builder.mov b (reg i) (Ir.Imm 0)
  done;
  List.iter
    (fun rop ->
      match rop with
      | Const (r, v) -> Builder.mov b (reg r) (Ir.Imm v)
      | Bin (op, d, a, bb) ->
        Builder.bin_to b (reg d) op (Ir.Reg (reg a)) (Ir.Reg (reg bb))
      | Store (s, r) ->
        Builder.store b
          ~addr:(Builder.idx b (Builder.param b "scratch") ~esize:1 (Ir.Imm s))
          (Ir.Reg (reg r))
      | Load (d, s) ->
        Builder.load_to b (reg d)
          (Builder.idx b (Builder.param b "scratch") ~esize:1 (Ir.Imm s)))
    ops;
  for i = 0 to nregs - 1 do
    Builder.store b
      ~addr:(Builder.idx b (Builder.param b "out") ~esize:1 (Ir.Imm i))
      (Ir.Reg (reg i))
  done

let run_machine ~transactional ops =
  let p = Ir.create_program () in
  let b = Builder.create p "body" ~params:[ "scratch"; "out" ] in
  build_body b ops;
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"body" ~func:"body" in
  let bm = Builder.create p "main" ~params:[ "scratch"; "out" ] in
  if transactional then
    Builder.atomic_call bm ab [ Builder.param bm "scratch"; Builder.param bm "out" ]
  else Builder.call bm "body" [ Builder.param bm "scratch"; Builder.param bm "out" ];
  Builder.ret bm None;
  ignore (Builder.finish bm);
  let compiled = Stx_compiler.Pipeline.compile p in
  let memo = ref (0, 0, None) in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args =
        (fun env ~threads ->
          let scratch = Alloc.alloc_shared env.Machine.alloc nslots in
          let out = Alloc.alloc_shared env.Machine.alloc nregs in
          memo := (scratch, out, Some env.Machine.memory);
          Array.make threads [| scratch; out |]);
    }
  in
  ignore
    (Machine.run ~seed:1
       ~cfg:(Config.with_cores 1 Config.default)
       ~mode:Mode.Staggered_hw spec);
  let scratch, out, mem = !memo in
  let mem = Option.get mem in
  ( Array.init nregs (fun i -> Memory.load mem (out + i)),
    Array.init nslots (fun i -> Memory.load mem (scratch + i)) )

let agree ~transactional ops =
  let ref_regs, ref_slots = reference ops in
  let m_regs, m_slots = run_machine ~transactional ops in
  ref_regs = m_regs && ref_slots = m_slots

let qcheck_plain =
  QCheck.Test.make ~name:"random programs: machine = reference (plain)" ~count:60
    (QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_prog)
    (fun ops -> agree ~transactional:false ops)

let qcheck_tx =
  QCheck.Test.make ~name:"random programs: machine = reference (transactional)"
    ~count:60
    (QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_prog)
    (fun ops -> agree ~transactional:true ops)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [ q qcheck_plain; q qcheck_tx ]

open Stx_tir
open Stx_dsa

(* Shared fixture: a genome-like program — a hash table whose buckets hold
   sorted lists, mirroring Figure 3's structure. *)

let node_ty = Types.make "lnode" [ ("key", Types.Scalar); ("next", Types.Ptr "lnode") ]

let ht_ty =
  Types.make "htable" [ ("nbuckets", Types.Scalar); ("buckets", Types.Ptr "bucket") ]

let bucket_ty = Types.make "bucket" [ ("head", Types.Ptr "lnode") ]

let build_fixture () =
  let p = Ir.create_program () in
  Ir.add_struct p node_ty;
  Ir.add_struct p ht_ty;
  Ir.add_struct p bucket_ty;
  (* list_find(head) walks nodes *)
  let b = Builder.create p "list_find" ~params:[ "head"; "key" ] in
  let cur = Builder.reg b "cur" in
  Builder.mov b cur (Builder.param b "head");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Reg cur)));
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "lnode" "next"));
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b);
  (* ht_insert(ht, key): loads nbuckets, indexes buckets, walks the list *)
  let b = Builder.create p "ht_insert" ~params:[ "ht"; "key" ] in
  let nb = Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "nbuckets") in
  let slot = Builder.bin b Ir.Rem (Builder.param b "key") nb in
  let buckets =
    Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "buckets")
  in
  let bucket = Builder.idx b buckets ~esize:1 slot in
  let head = Builder.load b (Builder.gep b bucket "bucket" "head") in
  let found = Builder.call_v b "list_find" [ head; Builder.param b "key" ] in
  Builder.ret b (Some found);
  ignore (Builder.finish b);
  Verify.program p;
  p

let find_access p dsa ~func ~nth_pred =
  (* nth load/store in layout order of [func] satisfying predicate index *)
  let f = Ir.find_func p func in
  let count = ref 0 in
  let result = ref None in
  Ir.iter_insts f (fun _ _ inst ->
      if Ir.is_mem_access inst.Ir.op then begin
        if !count = nth_pred && !result = None then result := Some inst.Ir.iid;
        incr count
      end);
  match !result with
  | Some iid -> Dsa.access_node dsa iid
  | None -> None

let test_list_nodes_unify () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  (* both loads in list_find touch the same DSNode (the list summary) *)
  match
    ( find_access p dsa ~func:"list_find" ~nth_pred:0,
      find_access p dsa ~func:"list_find" ~nth_pred:1 )
  with
  | Some (n1, f1), Some (n2, f2) ->
    Alcotest.(check bool) "same node" true (Dsnode.same n1 n2);
    Alcotest.(check bool) "different fields" true (f1 <> f2 || Dsnode.is_collapsed n1)
  | _ -> Alcotest.fail "accesses not analyzed"

let test_list_node_has_self_edge () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  match find_access p dsa ~func:"list_find" ~nth_pred:1 with
  | Some (n, _) ->
    let next_field = Types.field_index node_ty "next" in
    (match Dsnode.edge n next_field with
    | Some tgt -> Alcotest.(check bool) "self edge" true (Dsnode.same n tgt)
    | None -> Alcotest.fail "no next edge")
  | None -> Alcotest.fail "no access"

let test_ht_and_list_are_distinct_nodes () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  match
    ( find_access p dsa ~func:"ht_insert" ~nth_pred:0 (* nbuckets load *),
      find_access p dsa ~func:"list_find" ~nth_pred:0 )
  with
  | Some (ht_node, _), Some (list_node, _) ->
    Alcotest.(check bool) "distinct" false (Dsnode.same ht_node list_node);
    Alcotest.(check (option string)) "ht typed" (Some "htable") (Dsnode.ty ht_node)
  | _ -> Alcotest.fail "accesses not analyzed"

let test_caller_reaches_list_via_edges () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  (* In ht_insert's graph: htable --buckets--> bucket --head--> lnode clone.
     The head load in ht_insert must be linked from the bucket node. *)
  match find_access p dsa ~func:"ht_insert" ~nth_pred:2 (* head load *) with
  | Some (bucket_node, _) ->
    let head_field = 0 in
    (match Dsnode.edge bucket_node head_field with
    | Some _ -> ()
    | None -> Alcotest.fail "bucket has no head edge")
  | None -> Alcotest.fail "no access"

let test_callsite_map_translates () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  (* find the call instruction in ht_insert *)
  let f = Ir.find_func p "ht_insert" in
  let call_iid = ref None in
  Ir.iter_insts f (fun _ _ inst ->
      if Ir.callee inst.Ir.op = Some "list_find" then call_iid := Some inst.Ir.iid);
  let call_iid = Option.get !call_iid in
  (* list_find's own list node translates to a node in ht_insert's graph
     that differs from the callee's node object (it was cloned) *)
  match find_access p dsa ~func:"list_find" ~nth_pred:0 with
  | Some (callee_node, _) ->
    let caller_node = Dsa.map_callee_node dsa ~call_iid callee_node in
    Alcotest.(check bool) "mapped to a clone" false (Dsnode.same callee_node caller_node)
  | None -> Alcotest.fail "no callee access"

let test_param_argument_unification () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  (* the head loaded in ht_insert and the clone of list_find's node unify *)
  let f = Ir.find_func p "ht_insert" in
  let call_iid = ref None in
  Ir.iter_insts f (fun _ _ inst ->
      if Ir.callee inst.Ir.op = Some "list_find" then call_iid := Some inst.Ir.iid);
  let call_iid = Option.get !call_iid in
  match
    ( find_access p dsa ~func:"ht_insert" ~nth_pred:2 (* head load: bucket node *),
      find_access p dsa ~func:"list_find" ~nth_pred:0 )
  with
  | Some (bucket_node, _), Some (callee_list, _) ->
    let caller_list = Dsa.map_callee_node dsa ~call_iid callee_list in
    (match Dsnode.edge bucket_node 0 with
    | Some head_target ->
      Alcotest.(check bool) "head target unified with callee clone" true
        (Dsnode.same head_target caller_list)
    | None -> Alcotest.fail "no head edge")
  | _ -> Alcotest.fail "accesses not analyzed"

let test_unify_is_idempotent () =
  let a = Dsnode.fresh ~ty:"x" () and b = Dsnode.fresh ~ty:"x" () in
  Dsnode.unify a b;
  Dsnode.unify a b;
  Alcotest.(check bool) "same" true (Dsnode.same a b);
  Alcotest.(check (option string)) "type kept" (Some "x") (Dsnode.ty a)

let test_unify_type_mismatch_collapses () =
  let a = Dsnode.fresh ~ty:"x" () and b = Dsnode.fresh ~ty:"y" () in
  Dsnode.unify a b;
  Alcotest.(check bool) "collapsed" true (Dsnode.is_collapsed a)

let test_unify_cyclic_terminates () =
  (* a -> a (self loop), b -> b; unify must terminate *)
  let a = Dsnode.fresh () and b = Dsnode.fresh () in
  Dsnode.unify (Dsnode.edge_or_create a 1 ~ty:None) a;
  Dsnode.unify (Dsnode.edge_or_create b 1 ~ty:None) b;
  Dsnode.unify a b;
  Alcotest.(check bool) "merged" true (Dsnode.same a b)

let test_collapse_merges_edges () =
  let a = Dsnode.fresh () in
  let t1 = Dsnode.edge_or_create a 0 ~ty:None in
  let t2 = Dsnode.edge_or_create a 1 ~ty:None in
  Dsnode.collapse a;
  Alcotest.(check bool) "targets merged" true (Dsnode.same t1 t2);
  Alcotest.(check int) "single edge" 1 (List.length (Dsnode.edges a))

let test_accesses_analyzed_counts () =
  let p = build_fixture () in
  let dsa = Dsa.analyze p in
  Alcotest.(check bool) "several accesses" true (Dsa.accesses_analyzed dsa >= 5)

let qcheck_unify_commutative =
  QCheck.Test.make ~name:"unify commutes on fresh pairs" ~count:100
    QCheck.(pair bool bool)
    (fun (collapse_a, collapse_b) ->
      let mk c =
        let n = Dsnode.fresh ~ty:"t" () in
        if c then Dsnode.collapse n;
        n
      in
      let a1 = mk collapse_a and b1 = mk collapse_b in
      Dsnode.unify a1 b1;
      let a2 = mk collapse_a and b2 = mk collapse_b in
      Dsnode.unify b2 a2;
      Dsnode.is_collapsed a1 = Dsnode.is_collapsed a2
      && Dsnode.ty a1 = Dsnode.ty a2)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "list nodes unify into summary" `Quick test_list_nodes_unify;
    Alcotest.test_case "list node has self edge" `Quick test_list_node_has_self_edge;
    Alcotest.test_case "ht and list distinct" `Quick test_ht_and_list_are_distinct_nodes;
    Alcotest.test_case "caller reaches list via edges" `Quick
      test_caller_reaches_list_via_edges;
    Alcotest.test_case "callsite map translates" `Quick test_callsite_map_translates;
    Alcotest.test_case "param/arg unification" `Quick test_param_argument_unification;
    Alcotest.test_case "unify idempotent" `Quick test_unify_is_idempotent;
    Alcotest.test_case "type mismatch collapses" `Quick test_unify_type_mismatch_collapses;
    Alcotest.test_case "cyclic unify terminates" `Quick test_unify_cyclic_terminates;
    Alcotest.test_case "collapse merges edges" `Quick test_collapse_merges_edges;
    Alcotest.test_case "accesses analyzed counted" `Quick test_accesses_analyzed_counts;
    q qcheck_unify_commutative;
  ]

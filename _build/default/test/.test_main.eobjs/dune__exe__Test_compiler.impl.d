test/test_compiler.ml: Alcotest Anchors Array Builder Format Hashtbl Ir Layout List Option Pipeline String Stx_compiler Stx_tir Stx_workloads Types Unified Verify

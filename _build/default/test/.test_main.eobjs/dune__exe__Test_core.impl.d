test/test_core.ml: Abcontext Advisory_lock Alcotest Alloc Array Builder Config Ir List Memory Mode Option Policy QCheck QCheck_alcotest Softcpc Stx_compiler Stx_core Stx_htm Stx_machine Stx_tir Types

test/test_util.ml: Alcotest Array List QCheck QCheck_alcotest Rng Stat String Stx_util Table

test/test_diff.ml: Alloc Array Builder Config Ir List Machine Memory Mode Option Printf QCheck QCheck_alcotest Stx_compiler Stx_core Stx_machine Stx_sim Stx_tir

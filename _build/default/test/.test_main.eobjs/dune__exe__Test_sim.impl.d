test/test_sim.ml: Alcotest Alloc Array Builder Config Ir List Machine Memory Mode Option Printf QCheck QCheck_alcotest Stats Stx_compiler Stx_core Stx_machine Stx_sim Stx_tir Types

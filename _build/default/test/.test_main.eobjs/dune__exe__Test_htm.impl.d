test/test_htm.ml: Alcotest Alloc Config Htm Memory QCheck QCheck_alcotest Stx_htm Stx_machine

test/test_machine.ml: Alcotest Alloc Cache Config Format Hierarchy List Memory QCheck QCheck_alcotest String Stx_machine

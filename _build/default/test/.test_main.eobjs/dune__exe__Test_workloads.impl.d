test/test_workloads.ml: Alcotest Array Config List Machine Mode Option Registry Stats Stx_core Stx_machine Stx_sim Stx_tir Stx_workloads Workload

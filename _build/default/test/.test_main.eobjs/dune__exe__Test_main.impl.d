test/test_main.ml: Alcotest Test_compiler Test_core Test_diff Test_dsa Test_features Test_harness Test_htm Test_machine Test_sim Test_tir Test_tstruct Test_util Test_workloads

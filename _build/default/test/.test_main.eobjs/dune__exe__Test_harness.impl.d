test/test_harness.ml: Ablations Alcotest Exp List Mode Option Registry Reports String Stx_core Stx_harness Stx_sim Stx_workloads Timeline Workload

test/test_dsa.ml: Alcotest Builder Dsa Dsnode Ir List Option QCheck QCheck_alcotest Stx_dsa Stx_tir Types Verify

test/test_tir.ml: Alcotest Array Builder Dom Format Hashtbl Ir Layout List Pp QCheck QCheck_alcotest String Stx_tir Types Verify

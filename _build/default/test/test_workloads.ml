open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

(* Every benchmark at a reduced scale: builds, verifies, runs under both the
   baseline and the full staggered runtime, and produces sane statistics. *)

let scale = 0.12
let threads = 4

let run ?(mode = Mode.Baseline) ?(seed = 3) w =
  let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w in
  Machine.run ~seed ~cfg:(Config.with_cores threads Config.default) ~mode spec

let test_all_build_and_verify () =
  List.iter
    (fun w ->
      let p = w.Workload.build () in
      Stx_tir.Verify.program p;
      Alcotest.(check bool)
        (w.Workload.name ^ " has atomic blocks")
        true
        (Array.length p.Stx_tir.Ir.atomics > 0))
    Registry.all

let test_all_run_baseline () =
  List.iter
    (fun w ->
      let s = run w in
      Alcotest.(check bool) (w.Workload.name ^ " commits") true (s.Stats.commits > 0);
      Alcotest.(check bool)
        (w.Workload.name ^ " spends time in TM")
        true
        (Stats.pct_tx_time s > 10.))
    Registry.all

let test_all_run_staggered () =
  List.iter
    (fun w ->
      let base = run w in
      let stag = run ~mode:Mode.Staggered_hw w in
      (* same total work regardless of runtime; queue-driven benchmarks
         (tsp) vary by a few transactions with the interleaving, because
         an empty-pool pop skips the follow-up transactions *)
      Alcotest.(check bool)
        (w.Workload.name ^ " comparable commits")
        true
        (abs (base.Stats.commits - stag.Stats.commits) * 20 <= base.Stats.commits))
    Registry.all

let test_all_deterministic () =
  List.iter
    (fun w ->
      let a = run ~mode:Mode.Staggered_hw ~seed:11 w in
      let b = run ~mode:Mode.Staggered_hw ~seed:11 w in
      Alcotest.(check bool)
        (w.Workload.name ^ " deterministic")
        true
        ((a.Stats.commits, a.Stats.aborts, a.Stats.total_cycles, a.Stats.insts)
        = (b.Stats.commits, b.Stats.aborts, b.Stats.total_cycles, b.Stats.insts)))
    Registry.all

let test_work_is_split () =
  (* a 1-thread run and a 4-thread run commit the same number of txns for
     partitioned workloads *)
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let s1 =
        Machine.run ~seed:3
          ~cfg:(Config.with_cores 1 Config.default)
          ~mode:Mode.Baseline
          (Workload.spec ~instrument:false ~scale w)
      in
      let s4 = run w in
      Alcotest.(check bool)
        (name ^ " comparable work")
        true
        (* allow rounding from the per-thread split *)
        (abs (s1.Stats.commits - s4.Stats.commits) * 10 <= s1.Stats.commits * 2))
    [ "kmeans"; "vacation"; "list-lo"; "genome" ]

let test_registry_lookup () =
  Alcotest.(check int) "ten benchmarks" 10 (List.length Registry.all);
  Alcotest.(check int) "six in table 1" 6 (List.length Registry.table1_set);
  Alcotest.(check bool) "find works" true (Registry.find "memcached" <> None);
  Alcotest.(check bool) "find rejects" true (Registry.find "nope" = None);
  let unique = List.sort_uniq compare Registry.names in
  Alcotest.(check int) "names unique" 10 (List.length unique)

let test_scale_changes_work () =
  let w = Option.get (Registry.find "kmeans") in
  let small =
    Machine.run ~seed:1
      ~cfg:(Config.with_cores 2 Config.default)
      ~mode:Mode.Baseline
      (Workload.spec ~instrument:false ~scale:0.05 w)
  in
  let big =
    Machine.run ~seed:1
      ~cfg:(Config.with_cores 2 Config.default)
      ~mode:Mode.Baseline
      (Workload.spec ~instrument:false ~scale:0.2 w)
  in
  Alcotest.(check bool) "more work at higher scale" true
    (big.Stats.commits > small.Stats.commits)

let test_intruder_drains_queue () =
  let w = Option.get (Registry.find "intruder") in
  let s = run w in
  (* every packet is popped exactly once and every pop-tx commits; the
     number of decode commits equals the number of packets *)
  Alcotest.(check bool) "plenty of commits" true
    (s.Stats.commits >= Workload.scaled scale 1024)

let suite =
  [
    Alcotest.test_case "all benchmarks build and verify" `Quick
      test_all_build_and_verify;
    Alcotest.test_case "all benchmarks run (baseline)" `Slow test_all_run_baseline;
    Alcotest.test_case "all benchmarks run (staggered, same work)" `Slow
      test_all_run_staggered;
    Alcotest.test_case "all benchmarks deterministic" `Slow test_all_deterministic;
    Alcotest.test_case "work split across threads" `Slow test_work_is_split;
    Alcotest.test_case "registry lookups" `Quick test_registry_lookup;
    Alcotest.test_case "scale changes work" `Quick test_scale_changes_work;
    Alcotest.test_case "intruder drains its queue" `Quick test_intruder_drains_queue;
  ]

open Stx_tir
open Stx_compiler

(* Fixture mirroring Figure 3: an atomic block that hashes a key into a
   table of bucket lists and walks the chosen list. *)

let node_ty = Types.make "lnode" [ ("key", Types.Scalar); ("next", Types.Ptr "lnode") ]

let ht_ty =
  Types.make "htable" [ ("nbuckets", Types.Scalar); ("buckets", Types.Ptr "bucket") ]

let bucket_ty = Types.make "bucket" [ ("head", Types.Ptr "lnode") ]

let build_fixture () =
  let p = Ir.create_program () in
  Ir.add_struct p node_ty;
  Ir.add_struct p ht_ty;
  Ir.add_struct p bucket_ty;
  let b = Builder.create p "list_find" ~params:[ "head"; "key" ] in
  let cur = Builder.reg b "cur" in
  Builder.mov b cur (Builder.param b "head");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Reg cur)));
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "lnode" "next"));
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b);
  let b = Builder.create p "ht_insert" ~params:[ "ht"; "key" ] in
  let nb = Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "nbuckets") in
  let slot = Builder.bin b Ir.Rem (Builder.param b "key") nb in
  let buckets =
    Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "buckets")
  in
  let bucket = Builder.idx b buckets ~esize:1 slot in
  let head = Builder.load b (Builder.gep b bucket "bucket" "head") in
  let found = Builder.call_v b "list_find" [ head; Builder.param b "key" ] in
  Builder.ret b (Some found);
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"insert_ab" ~func:"ht_insert" in
  (p, ab)

let nth_access p func n =
  let f = Ir.find_func p func in
  let count = ref 0 in
  let res = ref None in
  Ir.iter_insts f (fun _ _ inst ->
      if Ir.is_mem_access inst.Ir.op then begin
        if !count = n && !res = None then res := Some inst.Ir.iid;
        incr count
      end);
  Option.get !res

let test_anchor_classification () =
  let p, _ = build_fixture () in
  let c = Pipeline.compile p in
  let anchor func n =
    match Anchors.entry_for c.Pipeline.anchors ~func ~iid:(nth_access p func n) with
    | Some e -> e.Anchors.le_is_anchor
    | None -> Alcotest.fail "entry missing"
  in
  Alcotest.(check bool) "nbuckets load is anchor" true (anchor "ht_insert" 0);
  Alcotest.(check bool) "buckets load is non-anchor" false (anchor "ht_insert" 1);
  Alcotest.(check bool) "head load is anchor" true (anchor "ht_insert" 2);
  Alcotest.(check bool) "key load is anchor" true (anchor "list_find" 0);
  Alcotest.(check bool) "next load is non-anchor" false (anchor "list_find" 1)

let test_pioneer_links () =
  let p, _ = build_fixture () in
  let c = Pipeline.compile p in
  (match
     Anchors.entry_for c.Pipeline.anchors ~func:"ht_insert"
       ~iid:(nth_access p "ht_insert" 1)
   with
  | Some e ->
    Alcotest.(check (option int)) "buckets load pioneer = nbuckets load"
      (Some (nth_access p "ht_insert" 0))
      e.Anchors.le_pioneer
  | None -> Alcotest.fail "missing");
  match
    Anchors.entry_for c.Pipeline.anchors ~func:"list_find"
      ~iid:(nth_access p "list_find" 1)
  with
  | Some e ->
    Alcotest.(check (option int)) "next load pioneer = key load"
      (Some (nth_access p "list_find" 0))
      e.Anchors.le_pioneer
  | None -> Alcotest.fail "missing"

let test_instrumentation_inserts_alps () =
  let p, _ = build_fixture () in
  let c = Pipeline.compile p in
  let _, anchors = Pipeline.static_stats c in
  Alcotest.(check int) "three anchors (as in Figure 3)" 3 anchors;
  (* every anchor is immediately preceded by its ALP *)
  Hashtbl.iter
    (fun anchor_iid site ->
      let found = ref false in
      Hashtbl.iter
        (fun _ (f : Ir.func) ->
          Array.iter
            (fun (b : Ir.block) ->
              Array.iteri
                (fun i inst ->
                  match inst.Ir.op with
                  | Ir.Alp a when a.Ir.alp_site = site ->
                    Alcotest.(check int) "alp anchors its load" anchor_iid
                      a.Ir.alp_anchor_iid;
                    Alcotest.(check bool) "followed by the anchor" true
                      (i + 1 < Array.length b.Ir.insts
                      && b.Ir.insts.(i + 1).Ir.iid = anchor_iid);
                    found := true
                  | _ -> ())
                b.Ir.insts)
            f.Ir.blocks)
        p.Ir.funcs;
      Alcotest.(check bool) "alp present" true !found)
    c.Pipeline.anchors.Anchors.anchor_sites

let test_instrumented_program_still_verifies () =
  let p, _ = build_fixture () in
  let _ = Pipeline.compile p in
  Verify.program p

let test_unified_table_parents () =
  let p, ab = build_fixture () in
  let c = Pipeline.compile p in
  let table = Pipeline.table_for c ~ab in
  let entry_of_iid iid =
    Array.to_list (Unified.entries table)
    |> List.find_opt (fun e -> e.Unified.ue_iid = iid)
  in
  (* the head-load anchor's parent is the nbuckets anchor (htable node) *)
  (match entry_of_iid (nth_access p "ht_insert" 2) with
  | Some e -> (
    match Unified.parent_of table e with
    | Some parent ->
      Alcotest.(check int) "head parent = nbuckets anchor"
        (nth_access p "ht_insert" 0) parent.Unified.ue_iid
    | None -> Alcotest.fail "head anchor has no parent")
  | None -> Alcotest.fail "head entry missing");
  (* the list key-load anchor's parent chain crosses the call boundary *)
  match entry_of_iid (nth_access p "list_find" 0) with
  | Some e -> (
    match Unified.parent_of table e with
    | Some parent ->
      Alcotest.(check int) "list anchor parent = head anchor"
        (nth_access p "ht_insert" 2) parent.Unified.ue_iid
    | None -> Alcotest.fail "list anchor has no parent")
  | None -> Alcotest.fail "list entry missing"

let test_search_by_pc () =
  let p, ab = build_fixture () in
  let c = Pipeline.compile p in
  let table = Pipeline.table_for c ~ab in
  let iid = nth_access p "list_find" 1 in
  let pc = Layout.pc_of_iid c.Pipeline.layout iid in
  (match Unified.search_by_pc table pc with
  | Some e -> Alcotest.(check int) "exact pc lookup" iid e.Unified.ue_iid
  | None -> Alcotest.fail "pc lookup failed");
  let low = Layout.truncate ~bits:12 pc in
  match Unified.search_by_truncated_pc table low with
  | Some e ->
    (* small program: no aliasing, so the truncated lookup agrees *)
    Alcotest.(check int) "truncated pc lookup" iid e.Unified.ue_iid
  | None -> Alcotest.fail "truncated lookup failed"

let test_anchor_of_resolves_pioneer () =
  let p, ab = build_fixture () in
  let c = Pipeline.compile p in
  let table = Pipeline.table_for c ~ab in
  let non_anchor =
    Array.to_list (Unified.entries table)
    |> List.find (fun e -> not e.Unified.ue_is_anchor)
  in
  match Unified.anchor_of table non_anchor with
  | Some a -> Alcotest.(check bool) "resolves to anchor" true a.Unified.ue_is_anchor
  | None -> Alcotest.fail "no anchor for non-anchor entry"

let test_entry_of_site () =
  let p, ab = build_fixture () in
  let c = Pipeline.compile p in
  let table = Pipeline.table_for c ~ab in
  Hashtbl.iter
    (fun _anchor_iid site ->
      match Unified.entry_of_site table site with
      | Some e ->
        Alcotest.(check (option int)) "site matches" (Some site) e.Unified.ue_site
      | None -> Alcotest.fail "site not in table")
    c.Pipeline.anchors.Anchors.anchor_sites

let test_naive_mode_instruments_everything () =
  let p, _ = build_fixture () in
  let c = Pipeline.compile ~mode:Anchors.Naive p in
  let analyzed, anchors = Pipeline.static_stats c in
  Alcotest.(check int) "all accesses instrumented" analyzed anchors;
  Alcotest.(check bool) "more than dsa mode" true (anchors > 3)

let test_pp_table () =
  let p, ab = build_fixture () in
  let c = Pipeline.compile p in
  let s = Format.asprintf "%a" Unified.pp (Pipeline.table_for c ~ab) in
  Alcotest.(check bool) "prints" true (String.length s > 40)

(* structural invariants of every benchmark's compiled tables *)
let test_invariants_all_benchmarks () =
  List.iter
    (fun w ->
      let c = Pipeline.compile (w.Stx_workloads.Workload.build ()) in
      Array.iter
        (fun table ->
          let entries = Unified.entries table in
          Array.iter
            (fun e ->
              (* pioneers resolve to anchors *)
              (match Unified.anchor_of table e with
              | Some a ->
                Alcotest.(check bool) "anchor_of yields anchor" true
                  a.Unified.ue_is_anchor
              | None ->
                Alcotest.(check bool) "only non-anchors may fail to resolve"
                  false e.Unified.ue_is_anchor);
              (* parents are anchors and never self *)
              (match Unified.parent_of table e with
              | Some p ->
                Alcotest.(check bool) "parent is anchor" true p.Unified.ue_is_anchor;
                Alcotest.(check bool) "parent not self" true
                  (p.Unified.ue_id <> e.Unified.ue_id)
              | None -> ());
              (* instrumented anchors carry a site and the site round-trips *)
              match e.Unified.ue_site with
              | Some site -> (
                match Unified.entry_of_site table site with
                | Some back ->
                  Alcotest.(check (option int)) "site roundtrip" (Some site)
                    back.Unified.ue_site
                | None -> Alcotest.fail "site must be in the table")
              | None -> ())
            entries)
        c.Pipeline.unified)
    Stx_workloads.Registry.all

let test_static_stats_sane_all_benchmarks () =
  List.iter
    (fun w ->
      let c = Pipeline.compile (w.Stx_workloads.Workload.build ()) in
      let lds, anchors = Pipeline.static_stats c in
      Alcotest.(check bool)
        (w.Stx_workloads.Workload.name ^ " has accesses")
        true (lds > 0);
      Alcotest.(check bool)
        (w.Stx_workloads.Workload.name ^ " anchors <= accesses")
        true
        (anchors > 0 && anchors <= lds))
    Stx_workloads.Registry.all

let suite =
  [
    Alcotest.test_case "anchor classification (Algorithm 1)" `Quick
      test_anchor_classification;
    Alcotest.test_case "pioneer links" `Quick test_pioneer_links;
    Alcotest.test_case "instrumentation inserts ALPs" `Quick
      test_instrumentation_inserts_alps;
    Alcotest.test_case "instrumented program verifies" `Quick
      test_instrumented_program_still_verifies;
    Alcotest.test_case "unified table parent chain (Figure 3)" `Quick
      test_unified_table_parents;
    Alcotest.test_case "search by pc" `Quick test_search_by_pc;
    Alcotest.test_case "anchor_of resolves pioneers" `Quick
      test_anchor_of_resolves_pioneer;
    Alcotest.test_case "entry_of_site" `Quick test_entry_of_site;
    Alcotest.test_case "naive mode instruments everything" `Quick
      test_naive_mode_instruments_everything;
    Alcotest.test_case "unified table prints" `Quick test_pp_table;
    Alcotest.test_case "table invariants, all benchmarks" `Slow
      test_invariants_all_benchmarks;
    Alcotest.test_case "static stats sane, all benchmarks" `Quick
      test_static_stats_sane_all_benchmarks;
  ]

open Stx_util

let check_float = Alcotest.(check (float 1e-9))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next a) in
  let ys = List.init 20 (fun _ -> Rng.next c) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_nonnegative () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "next >= 0" true (Rng.next r >= 0)
  done

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (x >= 0. && x < 2.5)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_stat_basic () =
  let s = Stat.create () in
  List.iter (Stat.add s) [ 1.; 2.; 3.; 4. ];
  check_float "mean" 2.5 (Stat.mean s);
  check_float "total" 10. (Stat.total s);
  check_float "min" 1. (Stat.min s);
  check_float "max" 4. (Stat.max s);
  Alcotest.(check int) "count" 4 (Stat.count s);
  check_float "variance" (5. /. 3.) (Stat.variance s)

let test_stat_empty () =
  let s = Stat.create () in
  check_float "mean of empty" 0. (Stat.mean s);
  check_float "variance of empty" 0. (Stat.variance s)

let test_harmonic_mean () =
  check_float "harmonic" 1.2 (Stat.harmonic_mean [ 1.; 1.; 2. ]);
  check_float "harmonic empty" 0. (Stat.harmonic_mean [])

let test_geometric_mean () =
  check_float "geometric" 2. (Stat.geometric_mean [ 1.; 2.; 4. ])

let test_ratio () =
  check_float "ratio" 0.5 (Stat.ratio 1 2);
  check_float "ratio div0" 0. (Stat.ratio 1 0);
  check_float "percent" 25. (Stat.percent 1 4)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "mentions alpha" true
    (contains s "alpha");
  Alcotest.(check bool) "mentions 22" true (contains s "22")

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt () =
  Alcotest.(check string) "fmt_f" "3.14" (Table.fmt_f 3.14159);
  Alcotest.(check string) "fmt_pct" "27%" (Table.fmt_pct 27.4)

let qcheck_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let qcheck_stat_mean_between_min_max =
  QCheck.Test.make ~name:"Stat.mean between min and max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stat.create () in
      List.iter (Stat.add s) xs;
      Stat.mean s >= Stat.min s -. 1e-9 && Stat.mean s <= Stat.max s +. 1e-9)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng next nonnegative" `Quick test_rng_nonnegative;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "stat basic" `Quick test_stat_basic;
    Alcotest.test_case "stat empty" `Quick test_stat_empty;
    Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "ratio helpers" `Quick test_ratio;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "float formatting" `Quick test_fmt;
    q qcheck_rng_int_bounds;
    q qcheck_stat_mean_between_min_max;
  ]

open Stx_tir
open Stx_machine
open Stx_core

(* Fixture: a compiled mini program whose unified anchor table gives the
   policy real entries to work with (a hashtable-of-lists atomic block with
   a parent chain, as in Figure 3). *)

let node_ty = Types.make "n" [ ("key", Types.Scalar); ("next", Types.Ptr "n") ]
let box_ty = Types.make "box" [ ("head", Types.Ptr "n") ]

let compile_fixture () =
  let p = Ir.create_program () in
  Ir.add_struct p node_ty;
  Ir.add_struct p box_ty;
  let b = Builder.create p "walk" ~params:[ "box" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "box") "box" "head");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b -> Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "n" "next"));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"walk" ~func:"walk" in
  Stx_compiler.Pipeline.compile p |> fun c -> (c, ab)

let table () =
  let c, ab = compile_fixture () in
  Stx_compiler.Pipeline.table_for c ~ab

(* anchors: the box-head load (parent) and the list-node load (child) *)
let anchors tbl =
  Array.to_list (Stx_compiler.Unified.entries tbl)
  |> List.filter (fun e -> e.Stx_compiler.Unified.ue_is_anchor)

let params = Policy.default_params

let fresh_ctx () =
  let tbl = table () in
  Abcontext.create ~ab:0 tbl

(* --- advisory locks ---------------------------------------------------- *)

let lock_fixture () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:8 mem in
  let htm = Stx_htm.Htm.create (Config.with_cores 4 Config.default) mem alloc in
  Advisory_lock.create ~count:16 htm alloc

let test_lock_acquire_release () =
  let locks = lock_fixture () in
  let idx = Advisory_lock.index_for locks ~addr:12345 in
  Alcotest.(check bool) "acquire" true (Advisory_lock.try_acquire locks ~core:2 ~idx);
  Alcotest.(check (option int)) "holder" (Some 2) (Advisory_lock.holder locks ~idx);
  Alcotest.(check bool) "second acquire fails" false
    (Advisory_lock.try_acquire locks ~core:3 ~idx);
  let contended = ref false in
  Advisory_lock.release locks ~core:2 ~idx ~contended;
  Alcotest.(check bool) "contention observed" true !contended;
  Alcotest.(check (option int)) "free" None (Advisory_lock.holder locks ~idx)

let test_lock_uncontended_flag () =
  let locks = lock_fixture () in
  ignore (Advisory_lock.try_acquire locks ~core:0 ~idx:3);
  let contended = ref true in
  Advisory_lock.release locks ~core:0 ~idx:3 ~contended;
  Alcotest.(check bool) "no contention" false !contended

let test_lock_release_requires_holder () =
  let locks = lock_fixture () in
  ignore (Advisory_lock.try_acquire locks ~core:0 ~idx:5);
  Alcotest.(check bool) "wrong releaser raises" true
    (try
       Advisory_lock.release locks ~core:1 ~idx:5 ~contended:(ref false);
       false
     with Invalid_argument _ -> true)

let test_lock_same_line_same_lock () =
  let locks = lock_fixture () in
  Alcotest.(check int) "same line maps to one lock"
    (Advisory_lock.index_for locks ~addr:800)
    (Advisory_lock.index_for locks ~addr:807)

let test_lock_waiter_counting () =
  let locks = lock_fixture () in
  Alcotest.(check int) "none" 0 (Advisory_lock.waiters locks ~idx:1);
  Advisory_lock.add_waiter locks ~idx:1;
  Advisory_lock.add_waiter locks ~idx:1;
  Alcotest.(check int) "two" 2 (Advisory_lock.waiters locks ~idx:1);
  Advisory_lock.remove_waiter locks ~idx:1;
  Advisory_lock.remove_waiter locks ~idx:1;
  Advisory_lock.remove_waiter locks ~idx:1;
  Alcotest.(check int) "never negative" 0 (Advisory_lock.waiters locks ~idx:1)

(* --- abcontext ---------------------------------------------------------- *)

let test_history_ring () =
  let ctx = fresh_ctx () in
  for i = 1 to 12 do
    Abcontext.append ctx
      (Some { Abcontext.r_anchor = Some i; Abcontext.r_addr = Some i })
  done;
  (* ring size 8: entries 5..12 remain *)
  Alcotest.(check int) "old entry gone" 0 (Abcontext.count_anchor ctx 4);
  Alcotest.(check int) "recent entry present" 1 (Abcontext.count_anchor ctx 12)

let test_counts () =
  let ctx = fresh_ctx () in
  for _ = 1 to 3 do
    Abcontext.append ctx
      (Some { Abcontext.r_anchor = Some 7; Abcontext.r_addr = Some 42 })
  done;
  Abcontext.append ctx None;
  Alcotest.(check int) "anchor count" 3 (Abcontext.count_anchor ctx 7);
  Alcotest.(check int) "addr count" 3 (Abcontext.count_addr ctx 42);
  Alcotest.(check int) "abort density" 3 (Abcontext.abort_density ctx)

let test_arm_and_tx_begin_restore () =
  let ctx = fresh_ctx () in
  Abcontext.arm ctx ~anchor:9 ~site:5 ~block_addr:64 ();
  Alcotest.(check bool) "consume" true (Abcontext.consume_active ctx ~site:5);
  Alcotest.(check bool) "consumed once" false (Abcontext.consume_active ctx ~site:5);
  Abcontext.on_tx_begin ctx;
  Alcotest.(check bool) "restored at next tx" true (Abcontext.consume_active ctx ~site:5)

let test_address_matched () =
  let ctx = fresh_ctx () in
  Abcontext.arm ctx ~site:5 ~block_addr:64 ();
  Alcotest.(check bool) "same line" true
    (Abcontext.address_matched ctx ~words_per_line:8 ~addr:71);
  Alcotest.(check bool) "other line" false
    (Abcontext.address_matched ctx ~words_per_line:8 ~addr:72);
  Abcontext.arm ctx ~site:5 ~block_addr:0 ();
  Alcotest.(check bool) "wildcard" true
    (Abcontext.address_matched ctx ~words_per_line:8 ~addr:72)

let test_probe_due_period () =
  let ctx = fresh_ctx () in
  Abcontext.arm ctx ~site:1 ~block_addr:0 ();
  let fired = ref 0 in
  for _ = 1 to 16 do
    if Abcontext.probe_due ctx ~period:4 then incr fired
  done;
  Alcotest.(check int) "one probe per period" 4 !fired;
  Abcontext.disarm ctx;
  Alcotest.(check bool) "no probe when disarmed" false
    (Abcontext.probe_due ctx ~period:1)

(* --- policy (Figure 6) -------------------------------------------------- *)

let drive_aborts ctx anchor ~addr ~times ~retries =
  let d = ref Policy.Training in
  for _ = 1 to times do
    d :=
      Policy.activate params ctx ~anchor:(Some anchor) ~conf_addr:addr
        ~line:(addr / 8) ~retries
  done;
  !d

let test_policy_training_then_precise () =
  let tbl = table () in
  let ctx = Abcontext.create ~ab:0 tbl in
  let anchor = List.hd (anchors tbl) in
  (* first two aborts: not enough evidence *)
  Alcotest.(check bool) "training first" true
    (drive_aborts ctx anchor ~addr:64 ~times:1 ~retries:0 = Policy.Training);
  Alcotest.(check bool) "still training" true
    (drive_aborts ctx anchor ~addr:64 ~times:1 ~retries:0 = Policy.Training);
  (* third and fourth: both PC and address recurrent -> precise *)
  ignore (drive_aborts ctx anchor ~addr:64 ~times:1 ~retries:0);
  let d = drive_aborts ctx anchor ~addr:64 ~times:1 ~retries:0 in
  Alcotest.(check bool) "precise mode" true (d = Policy.Precise);
  Alcotest.(check int) "block address set" 64 ctx.Abcontext.block_addr

let test_policy_coarse_on_wandering_addresses () =
  let tbl = table () in
  let ctx = Abcontext.create ~ab:0 tbl in
  let anchor = List.hd (anchors tbl) in
  let d = ref Policy.Training in
  List.iteri
    (fun i addr ->
      ignore i;
      d :=
        Policy.activate params ctx ~anchor:(Some anchor) ~conf_addr:addr
          ~line:(addr / 8) ~retries:0)
    [ 64; 128; 256; 512; 1024 ];
  Alcotest.(check bool) "coarse mode" true (!d = Policy.Coarse);
  Alcotest.(check int) "wild card address" 0 ctx.Abcontext.block_addr

let test_policy_promotion () =
  let tbl = table () in
  let ctx = Abcontext.create ~ab:0 tbl in
  (* the child anchor has a parent (box -> node edge) *)
  let child =
    anchors tbl
    |> List.find (fun e -> e.Stx_compiler.Unified.ue_parent <> None)
  in
  let parent = Option.get (Stx_compiler.Unified.parent_of tbl child) in
  (* wandering addresses, then an abort with many retries -> promote *)
  List.iter
    (fun addr ->
      ignore
        (Policy.activate params ctx ~anchor:(Some child) ~conf_addr:addr
           ~line:(addr / 8) ~retries:0))
    [ 64; 128; 256; 512 ];
  let d =
    Policy.activate params ctx ~anchor:(Some child) ~conf_addr:2048 ~line:256
      ~retries:(params.Policy.prom_thr + 1)
  in
  Alcotest.(check bool) "promoted" true (d = Policy.Promoted);
  Alcotest.(check int) "parent site armed"
    (Option.get parent.Stx_compiler.Unified.ue_site)
    ctx.Abcontext.armed_site

let test_policy_no_anchor_is_training () =
  let ctx = fresh_ctx () in
  let d =
    Policy.activate params ctx ~anchor:None ~conf_addr:64 ~line:8 ~retries:0
  in
  Alcotest.(check bool) "training" true (d = Policy.Training);
  Alcotest.(check int) "disarmed" Abcontext.no_site ctx.Abcontext.armed_site

let test_policy_decay_disarms () =
  let tbl = table () in
  let ctx = Abcontext.create ~ab:0 tbl in
  let anchor = List.hd (anchors tbl) in
  ignore (drive_aborts ctx anchor ~addr:64 ~times:4 ~retries:0);
  Alcotest.(check bool) "armed" true (ctx.Abcontext.armed_site <> Abcontext.no_site);
  (* uncontended-lock commits decay the evidence until the arm drops *)
  for _ = 1 to 10 do
    Policy.on_commit_uncontended_lock params ctx
  done;
  Alcotest.(check int) "disarmed by decay" Abcontext.no_site ctx.Abcontext.armed_site;
  Alcotest.(check int) "history cleared" 0 (Abcontext.abort_density ctx)

let test_policy_probe_streak_disarms () =
  let tbl = table () in
  let ctx = Abcontext.create ~ab:0 tbl in
  let anchor = List.hd (anchors tbl) in
  ignore (drive_aborts ctx anchor ~addr:64 ~times:4 ~retries:0);
  Policy.on_probe_commit ctx;
  Alcotest.(check bool) "one probe not enough" true
    (ctx.Abcontext.armed_site <> Abcontext.no_site);
  Policy.on_probe_commit ctx;
  Alcotest.(check int) "two probes disarm" Abcontext.no_site ctx.Abcontext.armed_site

let test_policy_resolve_anchor_via_pioneer () =
  let tbl = table () in
  let non_anchor =
    Array.to_list (Stx_compiler.Unified.entries tbl)
    |> List.find_opt (fun e -> not e.Stx_compiler.Unified.ue_is_anchor)
  in
  match non_anchor with
  | None -> () (* fixture may classify everything as anchors *)
  | Some e -> (
    match Stx_compiler.Unified.anchor_of tbl e with
    | Some a -> Alcotest.(check bool) "pioneer is anchor" true a.Stx_compiler.Unified.ue_is_anchor
    | None -> Alcotest.fail "pioneer resolution failed")

let test_addr_only_policy () =
  let ctx = fresh_ctx () in
  (* the count must exceed ADDR_THR before the decision, so the fourth
     abort is the first to arm *)
  for _ = 1 to 4 do
    Policy.activate_addr_only params ctx ~conf_addr:64 ~line:8
  done;
  Alcotest.(check int) "entry pseudo site" Abcontext.entry_site ctx.Abcontext.armed_site;
  Alcotest.(check int) "precise address" 64 ctx.Abcontext.block_addr

(* --- softcpc ------------------------------------------------------------ *)

let test_softcpc () =
  let m = Softcpc.create () in
  Alcotest.(check bool) "first note stores" true (Softcpc.note m ~line:5 ~site:3);
  Alcotest.(check bool) "second note skips" false (Softcpc.note m ~line:5 ~site:9);
  Alcotest.(check (option int)) "first writer wins" (Some 3) (Softcpc.lookup m ~line:5);
  Alcotest.(check (option int)) "absent" None (Softcpc.lookup m ~line:6);
  Alcotest.(check int) "size" 1 (Softcpc.size m)

(* --- mode ---------------------------------------------------------------- *)

let test_mode_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Mode.of_string (Mode.to_string m) = Some m))
    Mode.all;
  Alcotest.(check bool) "unknown" true (Mode.of_string "bogus" = None)

let qcheck_ring_counts_bounded =
  QCheck.Test.make ~name:"history counts never exceed ring size" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 5))
    (fun keys ->
      let ctx = fresh_ctx () in
      List.iter
        (fun k ->
          Abcontext.append ctx
            (Some { Abcontext.r_anchor = Some k; Abcontext.r_addr = Some k }))
        keys;
      List.for_all (fun k -> Abcontext.count_anchor ctx k <= 8) [ 0; 1; 2; 3; 4; 5 ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "lock acquire/release" `Quick test_lock_acquire_release;
    Alcotest.test_case "lock uncontended flag" `Quick test_lock_uncontended_flag;
    Alcotest.test_case "lock release requires holder" `Quick
      test_lock_release_requires_holder;
    Alcotest.test_case "same line same lock" `Quick test_lock_same_line_same_lock;
    Alcotest.test_case "lock waiter counting" `Quick test_lock_waiter_counting;
    Alcotest.test_case "history ring" `Quick test_history_ring;
    Alcotest.test_case "history counts" `Quick test_counts;
    Alcotest.test_case "arm/consume/restore" `Quick test_arm_and_tx_begin_restore;
    Alcotest.test_case "address matching" `Quick test_address_matched;
    Alcotest.test_case "probe period" `Quick test_probe_due_period;
    Alcotest.test_case "policy: training then precise" `Quick
      test_policy_training_then_precise;
    Alcotest.test_case "policy: coarse on wandering addresses" `Quick
      test_policy_coarse_on_wandering_addresses;
    Alcotest.test_case "policy: locking promotion" `Quick test_policy_promotion;
    Alcotest.test_case "policy: no anchor -> training" `Quick
      test_policy_no_anchor_is_training;
    Alcotest.test_case "policy: decay disarms" `Quick test_policy_decay_disarms;
    Alcotest.test_case "policy: probe streak disarms" `Quick
      test_policy_probe_streak_disarms;
    Alcotest.test_case "policy: pioneer resolution" `Quick
      test_policy_resolve_anchor_via_pioneer;
    Alcotest.test_case "policy: AddrOnly" `Quick test_addr_only_policy;
    Alcotest.test_case "software cpc map" `Quick test_softcpc;
    Alcotest.test_case "mode roundtrip" `Quick test_mode_roundtrip;
    q qcheck_ring_counts_bounded;
  ]

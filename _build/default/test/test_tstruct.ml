open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim
open Stx_tstruct

(* Helpers: run [threads] copies of a TIR main under a mode, returning the
   memory so invariants can be checked afterwards. *)

let run_spec ?(threads = 4) ?(seed = 11) ~mode ~build ~setup () =
  let p = Ir.create_program () in
  let finish = build p in
  let compiled = Stx_compiler.Pipeline.compile p in
  let memo = ref None in
  let shared = ref [] in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args =
        (fun env ~threads ->
          memo := Some env.Machine.memory;
          let roots = setup env in
          shared := roots;
          Array.init threads (fun tid -> Array.of_list (finish tid roots)));
    }
  in
  let cfg = Config.with_cores threads Config.default in
  let stats = Machine.run ~seed ~cfg ~mode spec in
  (stats, Option.get !memo, !shared)

(* result slots, one cache line apart so threads never share a line *)
let alloc_slots env threads =
  let base = Alloc.alloc_shared env.Machine.alloc (threads * 8) in
  Array.init threads (fun i -> base + (i * 8))

(* --- sorted list ------------------------------------------------------ *)

(* each thread does [ops] random lookup/insert/delete in transactions and
   accumulates (inserted - deleted) into its private slot *)
let list_main p ~key_range ~pct_lookup ~pct_insert =
  Tlist.register p;
  let ab_l = Ir.add_atomic p ~name:"lookup" ~func:Tlist.lookup_fn in
  let ab_i = Ir.add_atomic p ~name:"insert" ~func:Tlist.insert_fn in
  let ab_d = Ir.add_atomic p ~name:"delete" ~func:Tlist.delete_fn in
  let b = Builder.create p "main" ~params:[ "head"; "ops"; "slot" ] in
  let net = Builder.reg b "net" in
  Builder.mov b net (Ir.Imm 0);
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
      let key = Builder.rng b (Ir.Imm key_range) in
      let dice = Builder.rng b (Ir.Imm 100) in
      Builder.if_ b
        (Builder.bin b Ir.Lt dice (Ir.Imm pct_lookup))
        (fun b -> ignore (Builder.atomic_call_v b ab_l [ Builder.param b "head"; key ]))
        (fun b ->
          Builder.if_ b
            (Builder.bin b Ir.Lt dice (Ir.Imm (pct_lookup + pct_insert)))
            (fun b ->
              let r = Builder.atomic_call_v b ab_i [ Builder.param b "head"; key ] in
              Builder.bin_to b net Ir.Add (Ir.Reg net) r)
            (fun b ->
              let r = Builder.atomic_call_v b ab_d [ Builder.param b "head"; key ] in
              Builder.bin_to b net Ir.Sub (Ir.Reg net) r)));
  Builder.store b ~addr:(Builder.param b "slot") (Ir.Reg net);
  Builder.ret b None;
  ignore (Builder.finish b)

let check_sorted_unique l =
  let rec ok = function
    | a :: (b :: _ as rest) -> a < b && ok rest
    | _ -> true
  in
  ok l

let test_list_sequential_semantics () =
  let stats, mem, roots =
    run_spec ~threads:1 ~mode:Mode.Baseline
      ~build:(fun p ->
        list_main p ~key_range:32 ~pct_lookup:20 ~pct_insert:40;
        fun _tid roots -> match roots with [ head; slot ] -> [ head; 100; slot ] | _ -> [])
      ~setup:(fun env ->
        let head = Tlist.setup env.Machine.memory env.Machine.alloc ~keys:[ 5; 10; 15 ] in
        let slots = alloc_slots env 1 in
        [ head; slots.(0) ])
      ()
  in
  ignore stats;
  match roots with
  | [ head; slot ] ->
    let final = Tlist.to_list mem head in
    Alcotest.(check bool) "sorted unique" true (check_sorted_unique final);
    let net = Memory.load mem slot in
    Alcotest.(check int) "conservation" (3 + net) (List.length final)
  | _ -> Alcotest.fail "roots"

let test_list_concurrent_conservation () =
  List.iter
    (fun mode ->
      let _, mem, roots =
        run_spec ~threads:8 ~mode
          ~build:(fun p ->
            list_main p ~key_range:64 ~pct_lookup:60 ~pct_insert:20;
            fun tid roots ->
              match roots with
              | head :: slots -> [ head; 60; List.nth slots tid ]
              | _ -> [])
          ~setup:(fun env ->
            let keys = List.init 32 (fun i -> i * 2) in
            let head = Tlist.setup env.Machine.memory env.Machine.alloc ~keys in
            let slots = alloc_slots env 8 in
            head :: Array.to_list slots)
          ()
      in
      match roots with
      | head :: slots ->
        let final = Tlist.to_list mem head in
        Alcotest.(check bool)
          (Mode.to_string mode ^ " sorted unique")
          true (check_sorted_unique final);
        let net = List.fold_left (fun acc s -> acc + Memory.load mem s) 0 slots in
        Alcotest.(check int)
          (Mode.to_string mode ^ " conservation")
          (32 + net) (List.length final)
      | _ -> Alcotest.fail "roots")
    [ Mode.Baseline; Mode.Staggered_hw; Mode.Staggered_sw; Mode.Addr_only ]

(* --- hash table ------------------------------------------------------- *)

let test_hash_concurrent_conservation () =
  let _, mem, roots =
    run_spec ~threads:8 ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Thash.register p;
        let ab_i = Ir.add_atomic p ~name:"ht_insert" ~func:Thash.insert_fn in
        let ab_d = Ir.add_atomic p ~name:"ht_delete" ~func:Thash.delete_fn in
        let b = Builder.create p "main" ~params:[ "ht"; "ops"; "slot" ] in
        let net = Builder.reg b "net" in
        Builder.mov b net (Ir.Imm 0);
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
            let key = Builder.rng b (Ir.Imm 128) in
            Builder.if_ b
              (Builder.bin b Ir.Lt (Builder.rng b (Ir.Imm 100)) (Ir.Imm 50))
              (fun b ->
                let r = Builder.atomic_call_v b ab_i [ Builder.param b "ht"; key ] in
                Builder.bin_to b net Ir.Add (Ir.Reg net) r)
              (fun b ->
                let r = Builder.atomic_call_v b ab_d [ Builder.param b "ht"; key ] in
                Builder.bin_to b net Ir.Sub (Ir.Reg net) r));
        Builder.store b ~addr:(Builder.param b "slot") (Ir.Reg net);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots ->
          match roots with ht :: slots -> [ ht; 40; List.nth slots tid ] | _ -> [])
      ~setup:(fun env ->
        let keys = List.init 48 (fun i -> i * 3) in
        let ht =
          Thash.setup env.Machine.memory env.Machine.alloc ~nbuckets:16 ~keys
        in
        let slots = alloc_slots env 8 in
        ht :: Array.to_list slots)
      ()
  in
  match roots with
  | ht :: slots ->
    let net = List.fold_left (fun acc s -> acc + Memory.load mem s) 0 slots in
    Alcotest.(check int) "conservation" (48 + net) (Thash.size mem ht)
  | _ -> Alcotest.fail "roots"

(* --- queue ------------------------------------------------------------ *)

let test_queue_concurrent_push_pop () =
  let threads = 6 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Tqueue.register p;
        let ab_push = Ir.add_atomic p ~name:"push" ~func:Tqueue.push_fn in
        let ab_pop = Ir.add_atomic p ~name:"pop" ~func:Tqueue.pop_fn in
        let b = Builder.create p "main" ~params:[ "q"; "ops"; "tid_base"; "slot" ] in
        let pops = Builder.reg b "pops" in
        Builder.mov b pops (Ir.Imm 0);
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b i ->
            let v = Builder.bin b Ir.Add (Builder.param b "tid_base") i in
            Builder.atomic_call b ab_push [ Builder.param b "q"; v ];
            let r = Builder.atomic_call_v b ab_pop [ Builder.param b "q" ] in
            Builder.when_ b
              (Builder.bin b Ir.Ne r (Ir.Imm (-1)))
              (fun b -> Builder.bin_to b pops Ir.Add (Ir.Reg pops) (Ir.Imm 1)));
        Builder.store b ~addr:(Builder.param b "slot") (Ir.Reg pops);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots ->
          match roots with
          | q :: slots -> [ q; 30; tid * 1000; List.nth slots tid ]
          | _ -> [])
      ~setup:(fun env ->
        let q = Tqueue.setup env.Machine.memory env.Machine.alloc ~init:[] in
        let slots = alloc_slots env threads in
        q :: Array.to_list slots)
      ()
  in
  match roots with
  | q :: slots ->
    let popped = List.fold_left (fun acc s -> acc + Memory.load mem s) 0 slots in
    let remaining = List.length (Tqueue.to_list mem q) in
    Alcotest.(check int) "pushes = pops + remaining" (threads * 30) (popped + remaining)
  | _ -> Alcotest.fail "roots"

let test_queue_fifo_single_thread () =
  let _, mem, roots =
    run_spec ~threads:1 ~mode:Mode.Baseline
      ~build:(fun p ->
        Tqueue.register p;
        let ab_push = Ir.add_atomic p ~name:"push" ~func:Tqueue.push_fn in
        let b = Builder.create p "main" ~params:[ "q" ] in
        List.iter
          (fun v -> Builder.atomic_call b ab_push [ Builder.param b "q"; Ir.Imm v ])
          [ 3; 1; 4; 1; 5 ];
        Builder.ret b None;
        ignore (Builder.finish b);
        fun _ roots -> roots)
      ~setup:(fun env -> [ Tqueue.setup env.Machine.memory env.Machine.alloc ~init:[ 9 ] ])
      ()
  in
  match roots with
  | [ q ] ->
    Alcotest.(check (list int)) "fifo order" [ 9; 3; 1; 4; 1; 5 ] (Tqueue.to_list mem q)
  | _ -> Alcotest.fail "roots"

(* --- bst --------------------------------------------------------------- *)

let test_bst_concurrent_disjoint_inserts () =
  let threads = 4 and per = 25 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Tbst.register p;
        let ab = Ir.add_atomic p ~name:"insert" ~func:Tbst.insert_fn in
        let b = Builder.create p "main" ~params:[ "tree"; "base"; "n" ] in
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
            let k = Builder.bin b Ir.Add (Builder.param b "base") i in
            Builder.atomic_call b ab [ Builder.param b "tree"; k; k ]);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots -> match roots with [ t ] -> [ t; 1000 + (tid * per); per ] | _ -> [])
      ~setup:(fun env ->
        [ Tbst.setup env.Machine.memory env.Machine.alloc ~pairs:[ (500, 500) ] ])
      ()
  in
  match roots with
  | [ t ] ->
    let ks = Tbst.keys mem t in
    Alcotest.(check int) "all inserted" (1 + (threads * per)) (List.length ks);
    Alcotest.(check bool) "bst invariant" true (check_sorted_unique ks);
    for tid = 0 to threads - 1 do
      for i = 0 to per - 1 do
        let k = 1000 + (tid * per) + i in
        Alcotest.(check (option int)) "value" (Some k) (Tbst.host_lookup mem t k)
      done
    done
  | _ -> Alcotest.fail "roots"

let test_bst_concurrent_updates_sum () =
  let threads = 8 and per = 20 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Tbst.register p;
        let ab = Ir.add_atomic p ~name:"update" ~func:Tbst.update_fn in
        let b = Builder.create p "main" ~params:[ "tree"; "n" ] in
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b _ ->
            Builder.atomic_call b ab [ Builder.param b "tree"; Ir.Imm 42; Ir.Imm 1 ]);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun _ roots -> match roots with [ t ] -> [ t; per ] | _ -> [])
      ~setup:(fun env ->
        [ Tbst.setup env.Machine.memory env.Machine.alloc ~pairs:[ (42, 0); (7, 7) ] ])
      ()
  in
  match roots with
  | [ t ] ->
    Alcotest.(check (option int)) "no lost updates" (Some (threads * per))
      (Tbst.host_lookup mem t 42)
  | _ -> Alcotest.fail "roots"

(* --- priority queue ---------------------------------------------------- *)

let test_pq_drain_is_sorted_single_thread () =
  let _, mem, roots =
    run_spec ~threads:1 ~mode:Mode.Baseline
      ~build:(fun p ->
        Tpq.register p;
        let ab_pop = Ir.add_atomic p ~name:"pop" ~func:Tpq.pop_fn in
        let b = Builder.create p "main" ~params:[ "pq"; "out"; "n" ] in
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
            let d = Builder.atomic_call_v b ab_pop [ Builder.param b "pq" ] in
            Builder.store b ~addr:(Builder.idx b (Builder.param b "out") ~esize:1 i) d);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun _ roots -> match roots with [ q; out ] -> [ q; out; 6 ] | _ -> [])
      ~setup:(fun env ->
        let q =
          Tpq.setup env.Machine.memory env.Machine.alloc
            ~init:[ (5, 50); (1, 10); (3, 30); (2, 20); (9, 90); (4, 40) ]
        in
        let out = Alloc.alloc_shared env.Machine.alloc 8 in
        [ q; out ])
      ()
  in
  match roots with
  | [ q; out ] ->
    let drained = List.init 6 (fun i -> Memory.load mem (out + i)) in
    Alcotest.(check (list int)) "min-first order" [ 10; 20; 30; 40; 50; 90 ] drained;
    Alcotest.(check (list int)) "empty after drain" [] (Tpq.to_sorted mem q |> List.map fst)
  | _ -> Alcotest.fail "roots"

let test_pq_concurrent_conservation () =
  let threads = 6 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Tpq.register p;
        let ab_pop = Ir.add_atomic p ~name:"pop" ~func:Tpq.pop_fn in
        let ab_ins = Ir.add_atomic p ~name:"ins" ~func:Tpq.insert_fn in
        let b = Builder.create p "main" ~params:[ "pq"; "ops"; "slot" ] in
        let pops = Builder.reg b "pops" in
        Builder.mov b pops (Ir.Imm 0);
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
            let prio = Builder.rng b (Ir.Imm 1000) in
            Builder.atomic_call b ab_ins [ Builder.param b "pq"; prio; prio ];
            let r = Builder.atomic_call_v b ab_pop [ Builder.param b "pq" ] in
            Builder.when_ b
              (Builder.bin b Ir.Ne r (Ir.Imm (-1)))
              (fun b -> Builder.bin_to b pops Ir.Add (Ir.Reg pops) (Ir.Imm 1)));
        Builder.store b ~addr:(Builder.param b "slot") (Ir.Reg pops);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots ->
          match roots with q :: slots -> [ q; 25; List.nth slots tid ] | _ -> [])
      ~setup:(fun env ->
        let q =
          Tpq.setup env.Machine.memory env.Machine.alloc
            ~init:(List.init 10 (fun i -> (i * 7, i)))
        in
        let slots = alloc_slots env threads in
        q :: Array.to_list slots)
      ()
  in
  match roots with
  | q :: slots ->
    let pops = List.fold_left (fun acc s -> acc + Memory.load mem s) 0 slots in
    let left = List.length (Tpq.to_sorted mem q) in
    Alcotest.(check int) "conservation" (10 + (threads * 25)) (pops + left)
  | _ -> Alcotest.fail "roots"

(* --- calendar priority queue ------------------------------------------- *)

let test_calqueue_host_roundtrip () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:8 mem in
  let q =
    Tcalqueue.setup mem alloc ~nbuckets:8 ~capacity:7 ~width:10
      ~init:[ (5, 50); (35, 350); (12, 120) ]
  in
  Alcotest.(check int) "size" 3 (Tcalqueue.size mem q);
  Alcotest.(check (list int)) "bucket order" [ 0; 1; 3 ] (Tcalqueue.drain_order mem q)

let test_calqueue_overflow_drops () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:8 mem in
  let q = Tcalqueue.setup mem alloc ~nbuckets:2 ~capacity:2 ~width:10 ~init:[] in
  Alcotest.(check bool) "1st" true (Tcalqueue.host_insert mem q ~prio:1 ~data:1);
  Alcotest.(check bool) "2nd" true (Tcalqueue.host_insert mem q ~prio:2 ~data:2);
  Alcotest.(check bool) "overflow" false (Tcalqueue.host_insert mem q ~prio:3 ~data:3);
  Alcotest.(check int) "size capped" 2 (Tcalqueue.size mem q)

let test_calqueue_tir_pop_min_first () =
  let _, mem, roots =
    run_spec ~threads:1 ~mode:Mode.Baseline
      ~build:(fun p ->
        Tcalqueue.register p;
        let ab_pop = Ir.add_atomic p ~name:"pop" ~func:Tcalqueue.pop_fn in
        let b = Builder.create p "main" ~params:[ "q"; "out"; "n" ] in
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
            let d = Builder.atomic_call_v b ab_pop [ Builder.param b "q" ] in
            Builder.store b ~addr:(Builder.idx b (Builder.param b "out") ~esize:1 i) d);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun _ roots -> match roots with [ q; out ] -> [ q; out; 5 ] | _ -> [])
      ~setup:(fun env ->
        let q =
          Tcalqueue.setup env.Machine.memory env.Machine.alloc ~nbuckets:8
            ~capacity:7 ~width:10
            ~init:[ (35, 35); (5, 5); (12, 12); (3, 3) ]
        in
        let out = Alloc.alloc_shared env.Machine.alloc 8 in
        [ q; out ])
      ()
  in
  match roots with
  | [ _; out ] ->
    let drained = List.init 5 (fun i -> Memory.load mem (out + i)) in
    (* bucket-exact order: bucket 0 holds {3,5} (LIFO within the sorted
       bucket pops the largest first is wrong: sorted ascending, pop takes
       the last slot = max of the head bucket) then bucket 1, etc. *)
    Alcotest.(check bool) "min bucket first" true
      (match drained with
      | a :: b :: c :: d :: e :: _ ->
        List.sort compare [ a; b ] = [ 3; 5 ] && c = 12 && d = 35 && e = -1
      | _ -> false)
  | _ -> Alcotest.fail "roots"

let test_calqueue_concurrent_conservation () =
  let threads = 4 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Tcalqueue.register p;
        let ab_pop = Ir.add_atomic p ~name:"pop" ~func:Tcalqueue.pop_fn in
        let ab_ins = Ir.add_atomic p ~name:"ins" ~func:Tcalqueue.insert_fn in
        let b = Builder.create p "main" ~params:[ "q"; "ops"; "slot" ] in
        let net = Builder.reg b "net" in
        Builder.mov b net (Ir.Imm 0);
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
            let prio = Builder.rng b (Ir.Imm 300) in
            let ok = Builder.atomic_call_v b ab_ins [ Builder.param b "q"; prio; prio ] in
            Builder.bin_to b net Ir.Add (Ir.Reg net) ok;
            let r = Builder.atomic_call_v b ab_pop [ Builder.param b "q" ] in
            Builder.when_ b
              (Builder.bin b Ir.Ne r (Ir.Imm (-1)))
              (fun b -> Builder.bin_to b net Ir.Sub (Ir.Reg net) (Ir.Imm 1)));
        Builder.store b ~addr:(Builder.param b "slot") (Ir.Reg net);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots ->
          match roots with q :: slots -> [ q; 20; List.nth slots tid ] | _ -> [])
      ~setup:(fun env ->
        let q =
          Tcalqueue.setup env.Machine.memory env.Machine.alloc ~nbuckets:32
            ~capacity:23 ~width:10 ~init:[ (10, 1); (20, 2) ]
        in
        let slots = alloc_slots env threads in
        q :: Array.to_list slots)
      ()
  in
  match roots with
  | q :: slots ->
    let net = List.fold_left (fun acc s -> acc + Memory.load mem s) 0 slots in
    Alcotest.(check int) "conservation" (2 + net) (Tcalqueue.size mem q)
  | _ -> Alcotest.fail "roots"

(* --- red-black tree ------------------------------------------------------ *)

let test_rbt_host_invariants () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:8 mem in
  let rng = Stx_util.Rng.create 13 in
  let pairs = List.init 200 (fun _ -> (Stx_util.Rng.int rng 500, 1)) in
  let t = Trbt.setup mem alloc ~pairs in
  (match Trbt.check_invariants mem t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant: " ^ msg));
  let ks = Trbt.keys mem t in
  Alcotest.(check bool) "sorted unique" true (check_sorted_unique ks);
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "present" true (Trbt.host_lookup mem t k <> None))
    pairs

let test_rbt_tir_matches_host () =
  (* the same insert sequence through the TIR implementation must produce
     a valid tree with the same keys *)
  let inserts = [ 50; 20; 70; 10; 30; 60; 80; 5; 25; 35; 65; 90; 1; 2; 3; 4 ] in
  let _, mem, roots =
    run_spec ~threads:1 ~mode:Mode.Baseline
      ~build:(fun p ->
        Trbt.register p;
        let ab = Ir.add_atomic p ~name:"insert" ~func:Trbt.insert_fn in
        let b = Builder.create p "main" ~params:[ "tree" ] in
        List.iter
          (fun k -> Builder.atomic_call b ab [ Builder.param b "tree"; Ir.Imm k; Ir.Imm k ])
          inserts;
        Builder.ret b None;
        ignore (Builder.finish b);
        fun _ roots -> roots)
      ~setup:(fun env -> [ Trbt.setup env.Machine.memory env.Machine.alloc ~pairs:[] ])
      ()
  in
  match roots with
  | [ t ] ->
    (match Trbt.check_invariants mem t with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("invariant: " ^ msg));
    Alcotest.(check (list int)) "keys" (List.sort compare inserts) (Trbt.keys mem t)
  | _ -> Alcotest.fail "roots"

let test_rbt_concurrent_inserts_keep_invariants () =
  let threads = 6 and per = 30 in
  let _, mem, roots =
    run_spec ~threads ~mode:Mode.Staggered_hw
      ~build:(fun p ->
        Trbt.register p;
        let ab = Ir.add_atomic p ~name:"insert" ~func:Trbt.insert_fn in
        let b = Builder.create p "main" ~params:[ "tree"; "base"; "n" ] in
        Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
            let k = Builder.bin b Ir.Add (Builder.param b "base") i in
            Builder.atomic_call b ab [ Builder.param b "tree"; k; k ]);
        Builder.ret b None;
        ignore (Builder.finish b);
        fun tid roots ->
          match roots with [ t ] -> [ t; 1000 + (tid * per); per ] | _ -> [])
      ~setup:(fun env ->
        [ Trbt.setup env.Machine.memory env.Machine.alloc ~pairs:[ (500, 500) ] ])
      ()
  in
  match roots with
  | [ t ] ->
    (match Trbt.check_invariants mem t with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("invariant after concurrency: " ^ msg));
    Alcotest.(check int) "all inserted" (1 + (threads * per))
      (List.length (Trbt.keys mem t))
  | _ -> Alcotest.fail "roots"

let qcheck_rbt_random_inserts =
  QCheck.Test.make ~name:"rbt invariants hold for random host inserts" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 120) (int_range 0 300))
    (fun keys ->
      let mem = Memory.create () in
      let alloc = Alloc.create ~words_per_line:8 mem in
      let t = Trbt.setup mem alloc ~pairs:(List.map (fun k -> (k, k)) keys) in
      Trbt.check_invariants mem t = Ok ()
      && Trbt.keys mem t = List.sort_uniq compare keys)

let suite =
  [
    Alcotest.test_case "list sequential semantics" `Quick test_list_sequential_semantics;
    Alcotest.test_case "list concurrent conservation (all modes)" `Slow
      test_list_concurrent_conservation;
    Alcotest.test_case "hash concurrent conservation" `Quick
      test_hash_concurrent_conservation;
    Alcotest.test_case "queue concurrent push/pop" `Quick test_queue_concurrent_push_pop;
    Alcotest.test_case "queue fifo order" `Quick test_queue_fifo_single_thread;
    Alcotest.test_case "bst concurrent disjoint inserts" `Quick
      test_bst_concurrent_disjoint_inserts;
    Alcotest.test_case "bst concurrent updates sum" `Quick test_bst_concurrent_updates_sum;
    Alcotest.test_case "pq drain sorted" `Quick test_pq_drain_is_sorted_single_thread;
    Alcotest.test_case "pq concurrent conservation" `Quick test_pq_concurrent_conservation;
    Alcotest.test_case "calqueue host roundtrip" `Quick test_calqueue_host_roundtrip;
    Alcotest.test_case "calqueue overflow drops" `Quick test_calqueue_overflow_drops;
    Alcotest.test_case "calqueue pops min bucket first" `Quick
      test_calqueue_tir_pop_min_first;
    Alcotest.test_case "calqueue concurrent conservation" `Quick
      test_calqueue_concurrent_conservation;
    Alcotest.test_case "rbt host invariants" `Quick test_rbt_host_invariants;
    Alcotest.test_case "rbt tir matches host" `Quick test_rbt_tir_matches_host;
    Alcotest.test_case "rbt concurrent inserts keep invariants" `Quick
      test_rbt_concurrent_inserts_keep_invariants;
    QCheck_alcotest.to_alcotest qcheck_rbt_random_inserts;
  ]

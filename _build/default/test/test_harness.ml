open Stx_core
open Stx_workloads
open Stx_harness

(* Harness tests run at a small scale and thread count to stay fast. *)

let ctx () = Exp.create ~seed:2 ~scale:0.08 ~threads:4 ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_exp_memoizes () =
  let c = ctx () in
  let w = Option.get (Registry.find "ssca2") in
  let a = Exp.run c w Mode.Baseline in
  let b = Exp.run c w Mode.Baseline in
  Alcotest.(check bool) "same object" true (a == b)

let test_exp_speedup_of_sequential_is_one () =
  let c = ctx () in
  let w = Option.get (Registry.find "ssca2") in
  let seq = Exp.sequential c w in
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 (Exp.speedup c w seq)

let test_exp_rel_performance_baseline_is_one () =
  let c = ctx () in
  let w = Option.get (Registry.find "kmeans") in
  Alcotest.(check (float 1e-9)) "baseline ratio 1" 1.0
    (Exp.rel_performance c w Mode.Baseline)

let test_table1_renders () =
  let s = Reports.table1 (ctx ()) in
  List.iter
    (fun name -> Alcotest.(check bool) ("mentions " ^ name) true (contains s name))
    [ "list-hi"; "memcached"; "W/U"; "LA" ]

let test_table2_renders () =
  let s = Reports.table2 () in
  Alcotest.(check bool) "mentions L1" true (contains s "L1");
  Alcotest.(check bool) "mentions PC tag" true (contains s "PC tag")

let test_table4_covers_all_benchmarks () =
  let s = Reports.table4 (ctx ()) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        ("mentions " ^ w.Workload.name)
        true
        (contains s w.Workload.name))
    Registry.all

let test_fig7_has_harmonic_mean () =
  let s = Reports.fig7 (ctx ()) in
  Alcotest.(check bool) "harmonic mean line" true (contains s "Harmonic mean")

let test_fig8_renders () =
  let s = Reports.fig8 (ctx ()) in
  Alcotest.(check bool) "abort cut column" true (contains s "abort cut")

let test_anchor_tables_report () =
  let w = Option.get (Registry.find "genome") in
  let s = Reports.anchor_tables w in
  Alcotest.(check bool) "has anchors" true (contains s "unified anchor table")

let test_fig1_timelines () =
  let s = Reports.fig1 () in
  Alcotest.(check bool) "has lanes" true (contains s "t0 ");
  Alcotest.(check bool) "shows commits" true (contains s "C");
  Alcotest.(check bool) "legend" true (contains s "advisory lock")

let test_timeline_render_basics () =
  let tl = Timeline.create ~threads:2 in
  Timeline.handler tl ~time:0 (Stx_sim.Machine.Tx_begin { tid = 0; ab = 0; attempt = 0 });
  Timeline.handler tl ~time:50 (Stx_sim.Machine.Tx_commit { tid = 0; ab = 0; cycles = 50 });
  Timeline.handler tl ~time:20 (Stx_sim.Machine.Tx_begin { tid = 1; ab = 0; attempt = 0 });
  Timeline.handler tl ~time:40 (Stx_sim.Machine.Tx_abort { tid = 1; ab = 0; conf_line = None });
  let s = Timeline.render ~width:50 ~until_time:100 tl in
  Alcotest.(check bool) "t0 lane" true (contains s "t0 ");
  Alcotest.(check bool) "t1 lane" true (contains s "t1 ");
  Alcotest.(check bool) "commit marker" true (contains s "C");
  Alcotest.(check bool) "abort marker" true (contains s "X")

let test_ablation_reports_render () =
  (* the cheapest ablations at tiny scale; just exercise the rendering *)
  let s = Ablations.pc_tag_width ~seed:2 ~scale:0.05 () in
  Alcotest.(check bool) "tag table" true (contains s "tag bits")

let test_scaling_report () =
  let c = Exp.create ~seed:2 ~scale:0.05 ~threads:4 () in
  let w = Option.get (Registry.find "ssca2") in
  let s = Reports.scaling c w in
  Alcotest.(check bool) "has thread column" true (contains s "Threads")

let suite =
  [
    Alcotest.test_case "exp memoizes runs" `Quick test_exp_memoizes;
    Alcotest.test_case "sequential speedup is 1" `Quick
      test_exp_speedup_of_sequential_is_one;
    Alcotest.test_case "baseline relative performance is 1" `Quick
      test_exp_rel_performance_baseline_is_one;
    Alcotest.test_case "table1 renders" `Slow test_table1_renders;
    Alcotest.test_case "table2 renders" `Quick test_table2_renders;
    Alcotest.test_case "table4 covers all benchmarks" `Slow
      test_table4_covers_all_benchmarks;
    Alcotest.test_case "fig7 has harmonic mean" `Slow test_fig7_has_harmonic_mean;
    Alcotest.test_case "fig8 renders" `Slow test_fig8_renders;
    Alcotest.test_case "anchor tables report" `Quick test_anchor_tables_report;
    Alcotest.test_case "scaling report" `Quick test_scaling_report;
    Alcotest.test_case "fig1 timelines" `Quick test_fig1_timelines;
    Alcotest.test_case "timeline render basics" `Quick test_timeline_render_basics;
    Alcotest.test_case "ablation renders" `Slow test_ablation_reports_render;
  ]

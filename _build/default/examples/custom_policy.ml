(* Tuning the locking policy: run one benchmark under several policies and
   runtime knobs, showing how the public API exposes the Figure 6
   parameters (activation thresholds, promotion, probing) and the
   advisory-lock behaviour (waiter cap, timeout) for experimentation —
   the paper's "wider range of run-time policies" future work. *)

open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

let () =
  let w = Option.get (Registry.find "memcached") in
  let cfg = Config.with_cores 16 Config.default in
  let base =
    Machine.run ~seed:1 ~cfg ~mode:Mode.Baseline (Workload.spec ~instrument:false w)
  in
  Printf.printf "memcached baseline: %d cycles, %d aborts\n\n" base.Stats.total_cycles
    base.Stats.aborts;
  Printf.printf "%-34s %10s %8s %8s %8s\n" "configuration" "vs HTM" "aborts" "locks"
    "irrev";
  let show name ?policy ?max_waiters ?lock_timeout () =
    let s =
      Machine.run ~seed:1 ?policy ?max_waiters ?lock_timeout ~cfg
        ~mode:Mode.Staggered_hw (Workload.spec w)
    in
    Printf.printf "%-34s %9.2fx %8d %8d %8d\n" name
      (float_of_int base.Stats.total_cycles /. float_of_int s.Stats.total_cycles)
      s.Stats.aborts s.Stats.lock_acquires s.Stats.irrevocable_entries
  in
  show "default (paper thresholds)" ();
  show "eager activation (THR=1)"
    ~policy:{ Policy.default_params with Policy.pc_thr = 1; Policy.addr_thr = 1 }
    ();
  show "conservative activation (THR=4)"
    ~policy:{ Policy.default_params with Policy.pc_thr = 4; Policy.addr_thr = 4 }
    ();
  show "no promotion (PROM_THR=max)"
    ~policy:{ Policy.default_params with Policy.prom_thr = max_int }
    ();
  show "frequent probing (period 2)"
    ~policy:{ Policy.default_params with Policy.probe_period = 2 }
    ();
  show "deep convoys (waiters unbounded)" ~max_waiters:1_000_000 ();
  show "single-waiter stagger" ~max_waiters:1 ();
  show "impatient locks (timeout 1k)" ~lock_timeout:1_000 ()

(* Inspecting the compiler pass: build the genome benchmark, run the full
   pipeline, and print what each stage produced — the DSA-guided anchor
   selection (which loads/stores got an ALP and which were skipped as
   non-anchors), and the unified anchor table with its pioneer and parent
   links, reproducing the paper's Figure 3 walk-through. *)

open Stx_tir
open Stx_compiler
open Stx_workloads

let () =
  let w = Option.get (Registry.find "genome") in
  let prog = w.Workload.build () in
  let compiled = Pipeline.compile prog in
  let lds, anchors = Pipeline.static_stats compiled in
  Printf.printf "genome: %d loads/stores analyzed in atomic-reachable code, %d anchors\n\n"
    lds anchors;

  (* the local classification per function, Algorithm 1's output *)
  print_endline "local anchor tables (A = anchor, gets an ALP; others are skipped):";
  let names =
    Hashtbl.fold (fun n _ acc -> n :: acc) compiled.Pipeline.anchors.Anchors.locals []
    |> List.sort compare
  in
  List.iter
    (fun fname ->
      let lt = Hashtbl.find compiled.Pipeline.anchors.Anchors.locals fname in
      Printf.printf "  %s:\n" fname;
      Array.iter
        (fun (e : Anchors.entry) ->
          Printf.printf "    %s i%-4d %s\n"
            (if e.Anchors.le_is_anchor then "A" else " ")
            e.Anchors.le_iid
            (match (e.Anchors.le_is_anchor, e.Anchors.le_pioneer) with
            | true, _ -> (
              match
                Hashtbl.find_opt compiled.Pipeline.anchors.Anchors.anchor_sites
                  e.Anchors.le_iid
              with
              | Some site -> Printf.sprintf "(ALP site %d)" site
              | None -> "")
            | false, Some p -> Printf.sprintf "pioneer i%d" p
            | false, None -> ""))
        lt.Anchors.lt_entries)
    names;

  (* the per-atomic-block unified table with cross-function parents *)
  print_newline ();
  Array.iter
    (fun table -> Format.printf "%a@." Unified.pp table)
    compiled.Pipeline.unified;

  (* show one instrumented function so the inserted ALPs are visible *)
  print_endline "instrumented list-insert code (note the `alp` before each anchor):";
  Format.printf "%a@." Pp.func (Ir.find_func prog Stx_tstruct.Tlist.insert_fn)

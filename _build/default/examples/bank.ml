(* A domain scenario built on the public API: a bank with a set of
   accounts, transfer transactions between random accounts, and an audit
   transaction that sums every balance (a long read-only scan that plain
   HTM keeps aborting). The invariant — total money is conserved — is
   checked at the end, and the run shows how Staggered Transactions treat
   the two very different transaction shapes. *)

open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim

let accounts = 64
let transfers_per_thread = 150
let audit_every = 25 (* one audit per this many transfers *)

let build_program () =
  let p = Ir.create_program () in
  (* transfer(bank, from, to, amount) *)
  let b = Builder.create p "transfer" ~params:[ "bank"; "src"; "dst"; "amount" ] in
  let src_slot = Builder.idx b (Builder.param b "bank") ~esize:1 (Builder.param b "src") in
  let dst_slot = Builder.idx b (Builder.param b "bank") ~esize:1 (Builder.param b "dst") in
  let sv = Builder.load b src_slot in
  (* refuse to overdraw: the transfer simply does nothing *)
  Builder.when_ b
    (Builder.bin b Ir.Lt sv (Builder.param b "amount"))
    (fun b -> Builder.ret b (Some (Ir.Imm 0)));
  Builder.store b ~addr:src_slot (Builder.bin b Ir.Sub sv (Builder.param b "amount"));
  let dv = Builder.load b dst_slot in
  Builder.store b ~addr:dst_slot (Builder.bin b Ir.Add dv (Builder.param b "amount"));
  Builder.ret b (Some (Ir.Imm 1));
  ignore (Builder.finish b);
  let ab_transfer = Ir.add_atomic p ~name:"transfer" ~func:"transfer" in
  (* audit(bank): sum all balances in one transaction *)
  let b = Builder.create p "audit" ~params:[ "bank" ] in
  let sum = Builder.reg b "sum" in
  Builder.mov b sum (Ir.Imm 0);
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Ir.Imm accounts) (fun b i ->
      let v = Builder.load b (Builder.idx b (Builder.param b "bank") ~esize:1 i) in
      Builder.bin_to b sum Ir.Add (Ir.Reg sum) v);
  Builder.ret b (Some (Ir.Reg sum));
  ignore (Builder.finish b);
  let ab_audit = Ir.add_atomic p ~name:"audit" ~func:"audit" in
  (* worker: transfers with periodic audits; records the last audit total *)
  let b = Builder.create p "main" ~params:[ "bank"; "n"; "audit_slot" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
      let src = Builder.rng b (Ir.Imm accounts) in
      let dst = Builder.rng b (Ir.Imm accounts) in
      let amount = Builder.bin b Ir.Add (Builder.rng b (Ir.Imm 20)) (Ir.Imm 1) in
      ignore
        (Builder.atomic_call_v b ab_transfer [ Builder.param b "bank"; src; dst; amount ]);
      Builder.when_ b
        (Builder.bin b Ir.Eq
           (Builder.bin b Ir.Rem i (Ir.Imm audit_every))
           (Ir.Imm 0))
        (fun b ->
          let total = Builder.atomic_call_v b ab_audit [ Builder.param b "bank" ] in
          Builder.store b ~addr:(Builder.param b "audit_slot") total));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let () =
  let threads = 8 in
  let initial_balance = 100 in
  let run mode =
    let compiled = Stx_compiler.Pipeline.compile (build_program ()) in
    let state = ref (0, [||]) in
    let memo_mem = ref None in
    let spec =
      {
        Machine.compiled;
        Machine.thread_main = "main";
        Machine.thread_args =
          (fun env ~threads ->
            memo_mem := Some env.Machine.memory;
            let bank = Alloc.alloc_shared env.Machine.alloc accounts in
            for i = 0 to accounts - 1 do
              Memory.store env.Machine.memory (bank + i) initial_balance
            done;
            (* one result slot per thread, each on its own cache line *)
            let slots =
              Array.init threads (fun _ -> Alloc.alloc_shared env.Machine.alloc 8)
            in
            state := (bank, slots);
            Array.init threads (fun t ->
                [| bank; transfers_per_thread; slots.(t) |]))
      }
    in
    let cfg = Config.with_cores threads Config.default in
    let stats = Machine.run ~seed:21 ~cfg ~mode spec in
    let mem = Option.get !memo_mem in
    let bank, slots = !state in
    let total = ref 0 in
    for i = 0 to accounts - 1 do
      total := !total + Memory.load mem (bank + i)
    done;
    let audits = Array.map (Memory.load mem) slots in
    (stats, !total, audits)
  in
  print_endline "Bank scenario: transfers + long read-only audits";
  print_endline "------------------------------------------------";
  List.iter
    (fun mode ->
      let stats, total, audits = run mode in
      Printf.printf "\n%-12s %d commits, %d aborts, %d cycles\n"
        (Mode.to_string mode) stats.Stats.commits stats.Stats.aborts
        stats.Stats.total_cycles;
      Printf.printf "  money conserved: %d = %d  %s\n" total
        (accounts * initial_balance)
        (if total = accounts * initial_balance then "OK" else "VIOLATED!");
      let consistent = Array.for_all (fun a -> a = 0 || a = total) audits in
      Printf.printf "  audits consistent (each saw the full total): %s\n"
        (if consistent then "OK" else "VIOLATED!"))
    [ Mode.Baseline; Mode.Staggered_hw ]

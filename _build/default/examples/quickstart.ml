(* Quickstart: the Figure 1 scenario, end to end.

   Three (here: four) threads repeatedly run a transaction whose first half
   is private work and whose second half updates a shared counter — the
   conflicting access sits in the middle of the transaction. On plain HTM
   the concurrent transactions keep aborting each other; under Staggered
   Transactions the runtime learns the conflict point, activates the
   advisory locking point in front of it, and the conflicting portions
   serialize while the private halves overlap. The run prints the observed
   schedule so you can watch the staggering happen. *)

open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim

let counter_ty = Types.make "counter" [ ("value", Types.Scalar) ]

let build_program () =
  let p = Ir.create_program () in
  Ir.add_struct p counter_ty;
  (* the atomic block: private prefix, then the contended update *)
  let b = Builder.create p "deposit" ~params:[ "counter" ] in
  Builder.work b (Ir.Imm 150) (* the non-conflicting prefix *);
  let v = Builder.load b (Builder.gep b (Builder.param b "counter") "counter" "value") in
  Builder.work b (Ir.Imm 40);
  Builder.store b
    ~addr:(Builder.gep b (Builder.param b "counter") "counter" "value")
    (Builder.bin b Ir.Add v (Ir.Imm 1));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"deposit" ~func:"deposit" in
  let b = Builder.create p "main" ~params:[ "counter"; "rounds" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "rounds") (fun b _ ->
      Builder.atomic_call b ab [ Builder.param b "counter" ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let run mode =
  let compiled = Stx_compiler.Pipeline.compile (build_program ()) in
  let memo = ref 0 in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args =
        (fun env ~threads ->
          let addr = Alloc.alloc_shared env.Machine.alloc 1 in
          memo := addr;
          Array.make threads [| addr; 12 |]);
    }
  in
  let cfg = Config.with_cores 4 Config.default in
  let events = Buffer.create 256 in
  let stats =
    Machine.run ~seed:7 ~cfg ~mode spec ~on_event:(fun ~time ev ->
        let line =
          match ev with
          | Machine.Tx_abort { tid; _ } -> Some (Printf.sprintf "t%d  abort" tid)
          | Machine.Lock_acquired { tid; lock; _ } ->
            Some (Printf.sprintf "t%d  advisory lock %d acquired" tid lock)
          | Machine.Lock_waiting { tid; _ } ->
            Some (Printf.sprintf "t%d  staggering (waiting)" tid)
          | _ -> None
        in
        match line with
        | Some l when Buffer.length events < 2000 ->
          Buffer.add_string events (Printf.sprintf "  [%6d] %s\n" time l)
        | _ -> ())
  in
  (stats, Buffer.contents events)

let () =
  print_endline "Staggered Transactions quickstart (the Figure 1 scenario)";
  print_endline "---------------------------------------------------------";
  let base, _ = run Mode.Baseline in
  let stag, trace = run Mode.Staggered_hw in
  Printf.printf "\nplain HTM:       %d commits, %d aborts, %d cycles\n"
    base.Stats.commits base.Stats.aborts base.Stats.total_cycles;
  Printf.printf "staggered:       %d commits, %d aborts, %d cycles\n"
    stag.Stats.commits stag.Stats.aborts stag.Stats.total_cycles;
  Printf.printf "abort reduction: %.0f%%\n\n"
    (100. *. (1. -. float_of_int stag.Stats.aborts /. float_of_int (max 1 base.Stats.aborts)));
  print_endline "staggered schedule (aborts stop once the ALPs activate):";
  print_string trace

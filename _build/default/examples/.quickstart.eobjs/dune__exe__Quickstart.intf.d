examples/quickstart.mli:

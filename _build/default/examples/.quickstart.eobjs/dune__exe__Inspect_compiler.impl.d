examples/inspect_compiler.ml: Anchors Array Format Hashtbl Ir List Option Pipeline Pp Printf Registry Stx_compiler Stx_tir Stx_tstruct Stx_workloads Unified Workload

examples/bank.mli:

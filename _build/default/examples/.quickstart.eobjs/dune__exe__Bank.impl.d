examples/bank.ml: Alloc Array Builder Config Ir List Machine Memory Mode Option Printf Stats Stx_compiler Stx_core Stx_machine Stx_sim Stx_tir

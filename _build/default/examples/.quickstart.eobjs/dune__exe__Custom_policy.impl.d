examples/custom_policy.ml: Config Machine Mode Option Policy Printf Registry Stats Stx_core Stx_machine Stx_sim Stx_workloads Workload

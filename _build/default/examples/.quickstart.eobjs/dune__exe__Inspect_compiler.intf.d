examples/inspect_compiler.mli:

examples/quickstart.ml: Alloc Array Buffer Builder Config Ir Machine Mode Printf Stats Stx_compiler Stx_core Stx_machine Stx_sim Stx_tir Types

open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

type t = {
  seed : int;
  scale : float;
  threads : int;
  store : (string * string * int, Stats.t) Hashtbl.t;
}

let create ?(seed = 1) ?(scale = 1.0) ?(threads = 16) () =
  { seed; scale; threads; store = Hashtbl.create 64 }

let seed t = t.seed
let scale t = t.scale
let threads t = t.threads

let mode_key m = Mode.to_string m

let run_at t w mode ~threads =
  let key = (w.Workload.name, mode_key mode, threads) in
  match Hashtbl.find_opt t.store key with
  | Some s -> s
  | None ->
    let instrument = Mode.uses_alps mode in
    let spec = Workload.spec ~instrument ~scale:t.scale w in
    let cfg = Config.with_cores threads Config.default in
    let s = Machine.run ~seed:t.seed ~cfg ~mode spec in
    Hashtbl.add t.store key s;
    s

let run t w mode = run_at t w mode ~threads:t.threads

let sequential t w = run_at t w Mode.Baseline ~threads:1

let speedup t w (s : Stats.t) =
  let seq = sequential t w in
  Stx_util.Stat.ratio seq.Stats.total_cycles s.Stats.total_cycles

let rel_performance t w mode =
  let base = run t w Mode.Baseline in
  let s = run t w mode in
  Stx_util.Stat.ratio base.Stats.total_cycles s.Stats.total_cycles

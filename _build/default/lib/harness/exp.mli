open Stx_core
open Stx_sim
open Stx_workloads

(** Shared experiment context: one place that runs (benchmark, mode,
    threads) combinations and memoizes the results, so Table 1, Table 4,
    Figure 7 and Figure 8 all describe the same runs — as they do in the
    paper. *)

type t

val create : ?seed:int -> ?scale:float -> ?threads:int -> unit -> t
(** [threads] defaults to 16 (the paper's machine); [scale] to 1.0. *)

val seed : t -> int
val scale : t -> float
val threads : t -> int

val run : t -> Workload.t -> Mode.t -> Stats.t
(** Run (memoized) at the context's thread count. Baseline and AddrOnly
    run the uninstrumented binary; the staggered modes run the
    ALP-instrumented one, as in §6.2. *)

val run_at : t -> Workload.t -> Mode.t -> threads:int -> Stats.t
(** As {!run} at an explicit thread count (memoized separately). *)

val sequential : t -> Workload.t -> Stats.t
(** The 1-thread uninstrumented reference used for speedups. *)

val speedup : t -> Workload.t -> Stats.t -> float
(** Makespan of the sequential reference over this run's makespan. *)

val rel_performance : t -> Workload.t -> Mode.t -> float
(** Performance normalized to the 16-thread baseline HTM (Figure 7's
    y-axis): baseline cycles / mode cycles. *)

(** Ablation studies for the design choices DESIGN.md calls out: policy
    thresholds, waiter cap, PC-tag width, lock timeout, and probe period.
    Each returns a rendered report. *)

val policy_thresholds : ?seed:int -> ?scale:float -> unit -> string
(** PC_THR / ADDR_THR sweep (Figure 6 thresholds) on a high- and a
    medium-contention benchmark. *)

val waiter_cap : ?seed:int -> ?scale:float -> unit -> string
(** Advisory-lock convoy depth: 1 / 2 / 4 / unbounded. *)

val pc_tag_width : ?seed:int -> ?scale:float -> unit -> string
(** Conflicting-PC tag width (§4's space/accuracy trade-off): 6, 8, 12
    bits and full width, with anchor-identification accuracy. *)

val lock_timeout : ?seed:int -> ?scale:float -> unit -> string
(** Advisory-lock acquire timeout (§2's progress guarantee). *)

val probe_period : ?seed:int -> ?scale:float -> unit -> string
(** The speculation-probe duty cycle of the runtime extension. *)

val lazy_variant : ?seed:int -> ?scale:float -> unit -> string
(** Lazy (commit-time committer-wins) vs eager (requester-wins) conflict
    detection, with and without staggering (the paper's section-8 future
    work). *)

val read_only_skip : ?seed:int -> ?scale:float -> unit -> string
(** Policy refinement: never arm ALPs for compiler-proven read-only atomic
    blocks (they cannot abort anyone under requester-wins). *)

val all : ?seed:int -> ?scale:float -> unit -> string

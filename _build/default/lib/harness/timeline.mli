open Stx_sim

(** ASCII execution timelines — the Figure 1 diagram, reconstructed from a
    real run's event stream. Each thread is a lane; time flows left to
    right. Lane characters: ['.'] idle / non-transactional, ['='] inside a
    transaction, ['w'] waiting on an advisory lock, ['X'] the moment a
    transaction aborts, ['C'] a commit, ['L'] an advisory-lock
    acquisition. *)

type t

val create : threads:int -> t

val handler : t -> time:int -> Machine.event -> unit
(** Pass as [Machine.run]'s [on_event]. *)

val render : ?width:int -> ?from_time:int -> ?until_time:int -> t -> string
(** Render the [from_time, until_time) window (defaults to the whole run)
    into [width] (default 100) columns. *)

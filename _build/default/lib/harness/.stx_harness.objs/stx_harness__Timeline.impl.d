lib/harness/timeline.ml: Array Buffer Bytes List Machine Printf Stx_sim

lib/harness/timeline.mli: Machine Stx_sim

lib/harness/reports.mli: Exp Stx_workloads Workload

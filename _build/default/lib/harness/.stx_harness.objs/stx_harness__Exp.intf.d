lib/harness/exp.mli: Mode Stats Stx_core Stx_sim Stx_workloads Workload

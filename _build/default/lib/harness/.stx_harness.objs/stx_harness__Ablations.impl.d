lib/harness/ablations.ml: Config List Machine Mode Policy Registry Stat Stats String Stx_core Stx_machine Stx_sim Stx_util Stx_workloads Table Workload

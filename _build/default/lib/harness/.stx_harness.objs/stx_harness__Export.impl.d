lib/harness/export.ml: Exp Filename List Mode Printf Registry Stats String Stx_core Stx_sim Stx_workloads Sys Workload

lib/harness/ablations.mli:

lib/harness/exp.ml: Config Hashtbl Machine Mode Stats Stx_core Stx_machine Stx_sim Stx_util Stx_workloads Workload

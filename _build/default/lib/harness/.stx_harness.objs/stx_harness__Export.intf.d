lib/harness/export.mli: Exp

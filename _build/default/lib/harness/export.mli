(** Machine-readable (tab-separated) dumps of the evaluation data, for
    plotting the figures outside this repository. One file per
    table/figure, written into a directory. *)

val write_all : Exp.t -> dir:string -> string list
(** Writes [table1.tsv], [table4.tsv], [fig7.tsv] and [fig8.tsv]; returns
    the paths written. Creates [dir] if needed. *)

open Stx_util
open Stx_machine
open Stx_core
open Stx_sim
open Stx_workloads

let cfg16 = Config.default

let run_custom ?(seed = 1) ?(scale = 1.0) ?policy ?lock_timeout ?max_waiters
    ?(cfg = cfg16) ~mode w =
  (* the compiled anchor tables must be indexed with the same truncation the
     simulated hardware applies to its PC tags *)
  let pc_bits = cfg.Config.pc_tag_bits in
  let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale ~pc_bits w in
  Machine.run ~seed ?policy ?lock_timeout ?max_waiters ~cfg ~mode spec

let baseline_cycles ?seed ?scale w =
  (run_custom ?seed ?scale ~mode:Mode.Baseline w).Stats.total_cycles

let subjects names =
  List.filter_map Registry.find names

let policy_thresholds ?seed ?scale () =
  let t = Table.create [ "Benchmark"; "PC_THR"; "ADDR_THR"; "vs HTM"; "aborts" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun (pc_thr, addr_thr) ->
          let policy = { Policy.default_params with Policy.pc_thr; Policy.addr_thr } in
          let s = run_custom ?seed ?scale ~policy ~mode:Mode.Staggered_hw w in
          Table.add_row t
            [
              w.Workload.name;
              string_of_int pc_thr;
              string_of_int addr_thr;
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
              string_of_int s.Stats.aborts;
            ])
        [ (1, 1); (2, 2); (3, 3); (4, 4) ])
    (subjects [ "memcached"; "list-hi"; "vacation" ]);
  "Ablation: Figure 6 policy thresholds (activation evidence required).\n"
  ^ Table.render t

let waiter_cap ?seed ?scale () =
  let t = Table.create [ "Benchmark"; "cap"; "vs HTM"; "aborts"; "lock waits (cyc)" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun cap ->
          let s = run_custom ?seed ?scale ~max_waiters:cap ~mode:Mode.Staggered_hw w in
          Table.add_row t
            [
              w.Workload.name;
              (if cap >= 1000 then "inf" else string_of_int cap);
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
              string_of_int s.Stats.aborts;
              string_of_int s.Stats.lock_wait_cycles;
            ])
        [ 1; 2; 4; 1000 ])
    (subjects [ "intruder"; "memcached"; "list-lo"; "vacation" ]);
  "Ablation: advisory-lock convoy depth (waiters allowed per lock before\n"
  ^ "excess transactions proceed speculatively).\n" ^ Table.render t

let pc_tag_width ?seed ?(scale = 1.0) () =
  let t = Table.create [ "Benchmark"; "tag bits"; "accuracy"; "vs HTM" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ~scale w in
      List.iter
        (fun bits ->
          let cfg = { cfg16 with Config.pc_tag_bits = bits } in
          let s = run_custom ?seed ~scale ~cfg ~mode:Mode.Staggered_hw w in
          Table.add_row t
            [
              w.Workload.name;
              (if bits >= 62 then "full" else string_of_int bits);
              (if s.Stats.accuracy_total = 0 then "-"
               else Table.fmt_pct ~dec:1 (Stats.accuracy s));
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
            ])
        [ 6; 8; 12; 62 ])
    (subjects [ "genome"; "memcached"; "list-hi" ]);
  "Ablation: conflicting-PC tag width (the paper uses 12 bits for <2.4%\n"
  ^ "L1 space overhead; narrower tags alias more).\n" ^ Table.render t

let lock_timeout ?seed ?scale () =
  let t = Table.create [ "Benchmark"; "timeout"; "vs HTM"; "timeouts"; "aborts" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun timeout ->
          let s =
            run_custom ?seed ?scale ~lock_timeout:timeout ~mode:Mode.Staggered_hw w
          in
          Table.add_row t
            [
              w.Workload.name;
              string_of_int timeout;
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
              string_of_int s.Stats.lock_timeouts;
              string_of_int s.Stats.aborts;
            ])
        [ 500; 2_000; 20_000; 100_000 ])
    (subjects [ "intruder"; "memcached" ]);
  "Ablation: advisory-lock acquire timeout (short timeouts release waiters\n"
  ^ "early; under requester-wins a released waiter can shoot down the\n"
  ^ "holder).\n" ^ Table.render t

let probe_period ?seed ?scale () =
  let t = Table.create [ "Benchmark"; "period"; "vs HTM"; "locks"; "aborts" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun period ->
          let policy = { Policy.default_params with Policy.probe_period = period } in
          let s = run_custom ?seed ?scale ~policy ~mode:Mode.Staggered_hw w in
          Table.add_row t
            [
              w.Workload.name;
              string_of_int period;
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
              string_of_int s.Stats.lock_acquires;
              string_of_int s.Stats.aborts;
            ])
        [ 2; 4; 8; 32 ])
    (subjects [ "vacation"; "memcached"; "kmeans" ]);
  "Ablation: speculation-probe period (how often an armed context re-tests\n"
  ^ "plain speculation).\n" ^ Table.render t

let read_only_skip ?seed ?scale () =
  let t = Table.create [ "Benchmark"; "skip read-only"; "vs HTM"; "locks"; "aborts" ] in
  List.iter
    (fun w ->
      let base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun skip_read_only ->
          let policy = { Policy.default_params with Policy.skip_read_only } in
          let s = run_custom ?seed ?scale ~policy ~mode:Mode.Staggered_hw w in
          Table.add_row t
            [
              w.Workload.name;
              (if skip_read_only then "yes" else "no");
              Table.fmt_f (Stat.ratio base s.Stats.total_cycles);
              string_of_int s.Stats.lock_acquires;
              string_of_int s.Stats.aborts;
            ])
        [ false; true ])
    (subjects [ "list-lo"; "list-hi"; "vacation" ]);
  "Ablation: never arm ALPs for compiler-proven read-only atomic blocks
"
  ^ "(their transactions abort no one; serializing them only buys back
"
  ^ "their own wasted work).
" ^ Table.render t

let lazy_variant ?seed ?scale () =
  let t =
    Table.create [ "Benchmark"; "protocol"; "runtime"; "vs eager HTM"; "aborts" ]
  in
  List.iter
    (fun w ->
      let eager_base = baseline_cycles ?seed ?scale w in
      List.iter
        (fun (label, lazy_htm, mode) ->
          let cfg = { cfg16 with Config.lazy_htm } in
          let s = run_custom ?seed ?scale ~cfg ~mode w in
          Table.add_row t
            [
              w.Workload.name;
              (if lazy_htm then "lazy" else "eager");
              label;
              Table.fmt_f (Stat.ratio eager_base s.Stats.total_cycles);
              string_of_int s.Stats.aborts;
            ])
        [
          ("HTM", false, Mode.Baseline);
          ("Staggered", false, Mode.Staggered_hw);
          ("HTM", true, Mode.Baseline);
          ("Staggered", true, Mode.Staggered_hw);
        ])
    (subjects [ "kmeans"; "list-hi"; "memcached"; "ssca2" ]);
  "Ablation: lazy (commit-time, committer-wins) vs eager (requester-wins)\n"
  ^ "conflict detection - the paper's future-work variant (section 8).\n"
  ^ "Staggering helps on both, as predicted: the mechanism is independent\n"
  ^ "of the underlying conflict-resolution strategy.\n" ^ Table.render t

let all ?seed ?scale () =
  String.concat "\n"
    [
      policy_thresholds ?seed ?scale ();
      waiter_cap ?seed ?scale ();
      pc_tag_width ?seed ?scale ();
      lock_timeout ?seed ?scale ();
      probe_period ?seed ?scale ();
      lazy_variant ?seed ?scale ();
      read_only_skip ?seed ?scale ();
    ]

open Stx_sim

(* Per-thread chronological event list; rendering reconstructs the lane by
   replaying state changes over the window. *)

type mark = Begin | Commit | Abort | Wait_start | Lock

type t = { threads : int; mutable events : (int * int * mark) list (* reversed *) }

let create ~threads = { threads; events = [] }

let push t time tid mark = t.events <- (time, tid, mark) :: t.events

let handler t ~time ev =
  match ev with
  | Machine.Tx_begin { tid; _ } -> push t time tid Begin
  | Machine.Tx_commit { tid; _ } -> push t time tid Commit
  | Machine.Tx_abort { tid; _ } -> push t time tid Abort
  | Machine.Tx_irrevocable { tid; _ } -> push t time tid Begin
  | Machine.Lock_acquired { tid; _ } -> push t time tid Lock
  | Machine.Lock_waiting { tid; _ } -> push t time tid Wait_start
  | Machine.Lock_timeout { tid; _ } -> push t time tid Begin
  (* a timed-out waiter resumes its transaction *)

let render ?(width = 100) ?(from_time = 0) ?until_time t =
  let events = List.rev t.events in
  let tmax =
    match until_time with
    | Some u -> u
    | None -> List.fold_left (fun acc (tm, _, _) -> max acc tm) (from_time + 1) events
  in
  let span = max 1 (tmax - from_time) in
  let col time = min (width - 1) (max 0 ((time - from_time) * width / span)) in
  let lanes = Array.init t.threads (fun _ -> Bytes.make width '.') in
  (* state per thread: last state-change column and state *)
  let state = Array.make t.threads `Idle in
  let last_col = Array.make t.threads 0 in
  let fill tid upto ch =
    for c = last_col.(tid) to min (width - 1) upto do
      if Bytes.get lanes.(tid) c = '.' then Bytes.set lanes.(tid) c ch
    done
  in
  let background = function `Idle -> '.' | `Tx -> '=' | `Wait -> 'w' in
  let set_marker tid c ch = Bytes.set lanes.(tid) c ch in
  List.iter
    (fun (time, tid, mark) ->
      if tid >= 0 && tid < t.threads then begin
        let c = col time in
        fill tid (c - 1) (background state.(tid));
        (match mark with
        | Begin ->
          state.(tid) <- `Tx
        | Commit ->
          set_marker tid c 'C';
          state.(tid) <- `Idle
        | Abort ->
          set_marker tid c 'X';
          state.(tid) <- `Tx (* the retry begins immediately after backoff *)
        | Wait_start ->
          set_marker tid c 'w';
          state.(tid) <- `Wait
        | Lock ->
          set_marker tid c 'L';
          state.(tid) <- `Tx);
        last_col.(tid) <- c + 1
      end)
    events;
  Array.iteri (fun tid _ -> fill tid (width - 1) (background state.(tid))) lanes;
  let buf = Buffer.create ((width + 8) * t.threads) in
  Buffer.add_string buf
    (Printf.sprintf "cycles %d..%d  (. idle  = in-tx  w waiting  X abort  C commit  L lock)\n"
       from_time tmax);
  Array.iteri
    (fun tid lane ->
      Buffer.add_string buf (Printf.sprintf "t%-2d |%s|\n" tid (Bytes.to_string lane)))
    lanes;
  Buffer.contents buf

lib/sim/stats.mli: Hashtbl

lib/sim/stats.ml: Hashtbl List Option Stx_util

lib/sim/machine.mli: Alloc Config Memory Mode Policy Stats Stx_compiler Stx_core Stx_machine Stx_util

type core_caches = {
  l1 : Cache.t;
  l2 : Cache.t;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
}

type t = { cfg : Config.t; cores : core_caches array; l3 : Cache.t }

let create (cfg : Config.t) =
  let mk_core _ =
    {
      l1 = Cache.create ~lines:cfg.l1_lines ~ways:cfg.l1_ways;
      l2 = Cache.create ~lines:cfg.l2_lines ~ways:cfg.l2_ways;
      accesses = 0;
      l1_hits = 0;
      l2_hits = 0;
      l3_hits = 0;
    }
  in
  {
    cfg;
    cores = Array.init cfg.cores mk_core;
    l3 = Cache.create ~lines:cfg.l3_lines ~ways:cfg.l3_ways;
  }

let access t ~core ~line ~write =
  let c = t.cores.(core) in
  c.accesses <- c.accesses + 1;
  (* a write to a line cached elsewhere pays the coherence upgrade: the
     invalidation round-trip goes through the shared level *)
  let upgrade =
    write
    && Array.exists
         (fun i -> i != c && (Cache.holds i.l1 line || Cache.holds i.l2 line))
         t.cores
  in
  let latency =
    if Cache.probe c.l1 line then begin
      c.l1_hits <- c.l1_hits + 1;
      t.cfg.l1_latency
    end
    else if Cache.probe c.l2 line then begin
      c.l2_hits <- c.l2_hits + 1;
      Cache.insert c.l1 line;
      t.cfg.l2_latency
    end
    else if Cache.probe t.l3 line then begin
      c.l3_hits <- c.l3_hits + 1;
      Cache.insert c.l2 line;
      Cache.insert c.l1 line;
      t.cfg.l3_latency
    end
    else begin
      Cache.insert t.l3 line;
      Cache.insert c.l2 line;
      Cache.insert c.l1 line;
      t.cfg.mem_latency
    end
  in
  if write then
    Array.iteri
      (fun i other ->
        if i <> core then begin
          Cache.invalidate other.l1 line;
          Cache.invalidate other.l2 line
        end)
      t.cores;
  if upgrade then max latency t.cfg.Config.l3_latency else latency

let invalidate_core t ~core =
  let c = t.cores.(core) in
  Cache.clear c.l1;
  Cache.clear c.l2

let hit_rates t ~core =
  let c = t.cores.(core) in
  let r hits = if c.accesses = 0 then 0. else float_of_int hits /. float_of_int c.accesses in
  (r c.l1_hits, r c.l2_hits, r c.l3_hits)

(** The simulated machine's flat, word-addressed memory.

    One word stands for 8 bytes; addresses are word indices. Address 0 is
    reserved as the null pointer and never handed out by the allocator.
    The store grows on demand. *)

type addr = int

type t

val create : ?initial_words:int -> unit -> t

val load : t -> addr -> int
(** [load t a] reads word [a]. Reading past the high-water mark returns 0
    (fresh memory is zeroed). Raises [Invalid_argument] on [a <= 0]. *)

val store : t -> addr -> int -> unit
(** [store t a v] writes word [a], growing the store if needed.
    Raises [Invalid_argument] on [a <= 0]. *)

val size : t -> int
(** Current capacity in words (high-water, for diagnostics). *)

val line_of : words_per_line:int -> addr -> int
(** The cache-line index containing [addr]. *)

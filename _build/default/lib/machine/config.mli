(** Machine configuration: the simulated hardware of Table 2 of the paper
    plus the cost constants of the simulation's timing model. *)

type t = {
  cores : int;  (** number of cores = number of worker threads (paper: 16) *)
  words_per_line : int;  (** cache line size in words (64 B = 8 words) *)
  l1_lines : int;  (** private L1 data capacity in lines (64 KB) *)
  l1_ways : int;
  l1_latency : int;  (** cycles (paper: 2) *)
  l2_lines : int;  (** private L2 capacity in lines (1 MB) *)
  l2_ways : int;
  l2_latency : int;  (** cycles (paper: 10) *)
  l3_lines : int;  (** shared L3 capacity in lines (8 MB) *)
  l3_ways : int;
  l3_latency : int;  (** cycles (paper: 30) *)
  mem_latency : int;  (** cycles (50 ns at 2.5 GHz = 125) *)
  pc_tag_bits : int;  (** width of the per-line conflicting-PC tag (12) *)
  commit_cost : int;  (** cycles charged at transaction commit *)
  abort_cost : int;  (** cycles charged to roll back an aborted txn *)
  handler_cost : int;  (** cycles charged to run the abort handler/policy *)
  alp_inactive_cost : int;  (** an inactive ALP: a test and a non-taken branch *)
  spin_recheck_cost : int;  (** cycles between advisory-lock spin re-checks *)
  max_retries : int;  (** HTM attempts before irrevocable mode (paper: 10) *)
  backoff_base : int;  (** mean polite-backoff delay per retry, cycles *)
  lazy_htm : bool;
      (** commit-time (lazy) conflict detection with committer-wins,
          instead of the default eager requester-wins — the paper's §8
          future-work variant. Advisory locks work unchanged on both. *)
}

val default : t
(** The Table 2 machine: 16 cores, 64 KB L1 / 1 MB L2 / 8 MB L3,
    2/10/30/125-cycle latencies, 12-bit PC tags, 10 retries. *)

val with_cores : int -> t -> t

val pp : Format.formatter -> t -> unit
(** Render the configuration as the Table 2 reproduction. *)

(** Bump allocator over the simulated memory.

    Allocation is per-thread-arena'd: each thread bump-allocates out of its
    own chunk, so objects of different threads never share a cache line.
    This mirrors the paper's use of the Lockless allocator "to avoid the
    potential contention bottleneck in the default glibc memory allocator".
    Objects are aligned to cache-line boundaries by default so that HTM
    line-granularity conflicts coincide with object-granularity conflicts
    (the paper's data-structure-node assumption in §3.1). *)

type t

val create :
  ?arena_words:int -> ?line_align:bool -> words_per_line:int -> Memory.t -> t

val alloc : t -> thread:int -> int -> Memory.addr
(** [alloc t ~thread n] returns the address of [n] fresh zeroed words owned
    by [thread]. Raises [Invalid_argument] if [n <= 0]. *)

val alloc_shared : t -> int -> Memory.addr
(** Allocate from a common arena (for structures built during single-threaded
    setup). *)

val words_allocated : t -> int

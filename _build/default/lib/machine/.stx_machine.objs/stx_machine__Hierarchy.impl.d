lib/machine/hierarchy.ml: Array Cache Config

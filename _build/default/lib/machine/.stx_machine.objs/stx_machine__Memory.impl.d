lib/machine/memory.ml: Array

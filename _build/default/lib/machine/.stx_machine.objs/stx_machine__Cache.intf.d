lib/machine/cache.mli:

lib/machine/memory.mli:

lib/machine/hierarchy.mli: Config

lib/machine/alloc.mli: Memory

lib/machine/alloc.ml: Hashtbl Memory Stdlib

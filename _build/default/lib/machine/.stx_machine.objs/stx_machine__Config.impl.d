lib/machine/config.ml: Format

type t = {
  cores : int;
  words_per_line : int;
  l1_lines : int;
  l1_ways : int;
  l1_latency : int;
  l2_lines : int;
  l2_ways : int;
  l2_latency : int;
  l3_lines : int;
  l3_ways : int;
  l3_latency : int;
  mem_latency : int;
  pc_tag_bits : int;
  commit_cost : int;
  abort_cost : int;
  handler_cost : int;
  alp_inactive_cost : int;
  spin_recheck_cost : int;
  max_retries : int;
  backoff_base : int;
  lazy_htm : bool;
}

let default =
  {
    cores = 16;
    words_per_line = 8;
    (* 64 KB / 64 B = 1024 lines; 1 MB = 16384; 8 MB = 131072 *)
    l1_lines = 1024;
    l1_ways = 8;
    l1_latency = 2;
    l2_lines = 16384;
    l2_ways = 8;
    l2_latency = 10;
    l3_lines = 131072;
    l3_ways = 8;
    l3_latency = 30;
    mem_latency = 125;
    pc_tag_bits = 12;
    commit_cost = 10;
    abort_cost = 50;
    handler_cost = 100;
    alp_inactive_cost = 1;
    spin_recheck_cost = 20;
    max_retries = 10;
    backoff_base = 50;
    lazy_htm = false;
  }

let with_cores cores t = { t with cores }

let pp ppf t =
  let lines_kb n = n * t.words_per_line * 8 / 1024 in
  Format.fprintf ppf
    "@[<v>CPU cores   %d, in-order 1-op issue (simulated)@,\
     L1 cache    private, %d KB, %d-way, %d-byte line, %d-cycle@,\
     L2 cache    private, %d KB, %d-way, %d-cycle@,\
     L3 cache    shared, %d KB, %d-way, %d-cycle@,\
     Memory      %d-cycle@,\
     HTM         2-bit (r/w) per L1 line, %s@,\
     Stag.Trans. %d-bit PC tag per L1 cache line@]"
    t.cores (lines_kb t.l1_lines) t.l1_ways (t.words_per_line * 8) t.l1_latency
    (lines_kb t.l2_lines) t.l2_ways t.l2_latency (lines_kb t.l3_lines) t.l3_ways
    t.l3_latency t.mem_latency
    (if t.lazy_htm then "lazy committer-wins" else "eager requester-wins")
    t.pc_tag_bits

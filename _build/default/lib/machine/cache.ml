(* Each set is an array of way slots ordered most- to least-recently used.
   Slot value -1 means empty. *)

type t = { sets : int array array; mask : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~lines ~ways =
  if lines mod ways <> 0 then invalid_arg "Cache.create: lines mod ways <> 0";
  let nsets = lines / ways in
  if not (is_power_of_two nsets) then
    invalid_arg "Cache.create: set count must be a power of two";
  { sets = Array.init nsets (fun _ -> Array.make ways (-1)); mask = nsets - 1 }

let set_of t line = t.sets.(line land t.mask)

(* Move the element at index [i] to the front, shifting the prefix down. *)
let move_to_front set i =
  let v = set.(i) in
  Array.blit set 0 set 1 i;
  set.(0) <- v

let probe t line =
  let set = set_of t line in
  let rec find i =
    if i >= Array.length set then false
    else if set.(i) = line then begin
      move_to_front set i;
      true
    end
    else find (i + 1)
  in
  find 0

let holds t line =
  let set = set_of t line in
  Array.exists (fun v -> v = line) set

let insert t line =
  let set = set_of t line in
  let rec find i =
    if i >= Array.length set then None
    else if set.(i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> move_to_front set i
  | None ->
    (* evict LRU: shift everything down, install at front *)
    Array.blit set 0 set 1 (Array.length set - 1);
    set.(0) <- line

let invalidate t line =
  let set = set_of t line in
  let ways = Array.length set in
  let rec find i =
    if i >= ways then ()
    else if set.(i) = line then begin
      Array.blit set (i + 1) set i (ways - i - 1);
      set.(ways - 1) <- -1
    end
    else find (i + 1)
  in
  find 0

let clear t = Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.sets

open Stx_compiler

(** Per-thread, per-atomic-block runtime context (Figure 4 of the paper).

    Holds the currently active advisory-locking point, the probable
    conflicting address, the recent abort history, and a pointer to the
    atomic block's unified anchor table. *)

val no_site : int
(** Sentinel: no active ALP. *)

val entry_site : int
(** Pseudo ALP site at the very beginning of the atomic block, used by the
    AddrOnly configuration. *)

type record = {
  r_anchor : int option;  (** ue_id of the identified anchor, if any *)
  r_addr : int option;  (** conflicting cache-line index, if any *)
}

type t = {
  ab : int;
  table : Unified.table;
  mutable armed_site : int;
      (** the ALP the policy has activated for this atomic block; persists
          across transactions until the policy changes it *)
  mutable armed_anchor : int option;
      (** ue_id whose recurrence justified the arming (for decay) *)
  mutable armed_line : int option;
      (** conflicting line that justified an AddrOnly arming *)
  mutable active_site : int;
      (** the ALP that may still fire in the {e current} transaction:
          restored from [armed_site] at transaction begin, cleared once a
          lock is acquired ("to avoid additional locking attempts within
          the current transaction", Figure 5) *)
  mutable block_addr : int;  (** expected conflict address; 0 = wild card *)
  history : record option array;  (** abort-history ring *)
  mutable hist_len : int;
  mutable hist_pos : int;
  mutable tx_counter : int;  (** transactions begun (drives probing) *)
  mutable probe_streak : int;  (** consecutive successful speculation probes *)
}

val create : ?history_size:int -> ab:int -> Unified.table -> t
(** Default history size 8, as in the paper. *)

val arm : t -> ?anchor:int -> ?line:int -> site:int -> block_addr:int -> unit -> unit
(** Policy decision: activate ALP [site] for future instances; [anchor] /
    [line] record the evidence so decay can tell when support is gone. *)

val disarm : t -> unit
(** Back to training: no ALP fires. *)

val clear_history : t -> unit
(** Forget all evidence (used when a decayed activation is dropped, so that
    re-arming requires a fresh burst of aborts rather than one). *)

val on_tx_begin : t -> unit
(** Restore the per-transaction activation from the armed state. *)

val probe_due : t -> period:int -> bool
(** Count a transaction; true when this one should run as a speculation
    probe (armed, and the counter hits the period). *)

val append : t -> record option -> unit
(** Push a record (or an empty decay entry) into the ring. *)

val count_addr : t -> int -> int
(** Occurrences of a conflicting line in the history. *)

val count_anchor : t -> int -> int
(** Occurrences of an anchor (by ue_id) in the history. *)

val abort_density : t -> int
(** Abort records currently in the history — how saturated recent
    transactions were with conflicts. *)

val consume_active : t -> site:int -> bool
(** True when [site] is the active ALP; clears the activation so a
    transaction acquires at most one advisory lock (§2). *)

val address_matched : t -> words_per_line:int -> addr:int -> bool
(** `IsAddressMatched`: wild card, or same cache line as [block_addr]. *)

open Stx_htm

type t = {
  htm : Htm.t;
  base : int;
  n : int;
  words_per_line : int;
  contended : bool array; (* host-side bookkeeping, one flag per lock *)
  waiting : int array; (* current spinners per lock *)
}

let create ?(count = 256) htm alloc =
  let cfg = Htm.config htm in
  let wpl = cfg.Stx_machine.Config.words_per_line in
  (* one line per lock so waiters on different locks never interfere *)
  let base = Stx_machine.Alloc.alloc_shared alloc (count * wpl) in
  {
    htm;
    base;
    n = count;
    words_per_line = wpl;
    contended = Array.make count false;
    waiting = Array.make count 0;
  }

let count t = t.n

(* Fibonacci hashing of the cache-line index *)
let index_for t ~addr =
  let line = addr / t.words_per_line in
  let h = line * 0x9E3779B1 land max_int in
  h mod t.n

let lock_addr t i =
  if i < 0 || i >= t.n then invalid_arg "Advisory_lock.lock_addr: bad index";
  t.base + (i * t.words_per_line)

let try_acquire t ~core ~idx =
  let addr = lock_addr t idx in
  let ok = Htm.nt_cas t.htm ~core ~addr ~expected:0 ~desired:(core + 1) in
  if not ok then t.contended.(idx) <- true;
  ok

let release t ~core ~idx ~contended =
  let addr = lock_addr t idx in
  if Htm.nt_load t.htm ~addr <> core + 1 then
    invalid_arg "Advisory_lock.release: not the holder";
  contended := t.contended.(idx);
  t.contended.(idx) <- false;
  Htm.nt_store t.htm ~core ~addr ~value:0

let waiters t ~idx = t.waiting.(idx)
let add_waiter t ~idx = t.waiting.(idx) <- t.waiting.(idx) + 1
let remove_waiter t ~idx = t.waiting.(idx) <- max 0 (t.waiting.(idx) - 1)

let holder t ~idx =
  match Htm.nt_load t.htm ~addr:(lock_addr t idx) with
  | 0 -> None
  | v -> Some (v - 1)

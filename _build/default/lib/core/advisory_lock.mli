open Stx_htm

(** The advisory-lock table.

    A static array of lock words living in simulated memory, reached only
    through nontransactional operations, exactly as `AcquireLockFor` does
    in the paper (§5.1): the lock for a datum is chosen by hashing its
    cache-line address into the table. Locks are advisory — correctness
    never depends on them — so a waiter may time out and proceed.

    Each lock also carries a contention flag, set when an acquire attempt
    finds the lock busy; the holder samples and clears it at release so the
    policy can decay activations that no longer pay off ("an empty entry
    can be appended to the abort history", §5.2). *)

type t

val create : ?count:int -> Htm.t -> Stx_machine.Alloc.t -> t
(** [count] locks (default 256), allocated line-spread so two locks never
    share a cache line. *)

val count : t -> int

val index_for : t -> addr:int -> int
(** The lock index guarding [addr]'s cache line. *)

val lock_addr : t -> int -> int
(** Simulated-memory address of lock word [i]. *)

val try_acquire : t -> core:int -> idx:int -> bool
(** One nontransactional CAS attempt; marks contention on failure. *)

val release : t -> core:int -> idx:int -> contended:bool ref -> unit
(** Release lock [idx] (which [core] must hold); sets [contended] to
    whether any acquire attempt failed while it was held. *)

val waiters : t -> idx:int -> int
(** Spinners currently queued on lock [idx] (runtime bookkeeping the
    waiter-cap policy consults). *)

val add_waiter : t -> idx:int -> unit
val remove_waiter : t -> idx:int -> unit

val holder : t -> idx:int -> int option
(** Core currently holding lock [idx], if any. *)

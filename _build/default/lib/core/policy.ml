open Stx_compiler

type params = {
  pc_thr : int;
  addr_thr : int;
  prom_thr : int;
  probe_period : int;
  skip_read_only : bool;
}

let default_params =
  { pc_thr = 2; addr_thr = 2; prom_thr = 5; probe_period = 8; skip_read_only = true }

type decision = Precise | Coarse | Promoted | Training

let resolve_anchor table ~conf_pc =
  match conf_pc with
  | None -> None
  | Some pc -> (
    match Unified.search_by_truncated_pc table pc with
    | None -> None
    | Some e -> Unified.anchor_of table e)

let site_of (e : Unified.entry) = Option.value ~default:Abcontext.no_site e.Unified.ue_site

let activate params (ctx : Abcontext.t) ~anchor ~conf_addr ~line ~retries =
  let decision =
    match anchor with
    | None ->
      Abcontext.disarm ctx;
      Training
    | Some en ->
      let a = Abcontext.count_addr ctx line > params.addr_thr in
      (* anchors are counted by instruction identity: context-sensitive
         clones of one instruction are the same PC to the hardware *)
      let p = Abcontext.count_anchor ctx en.Unified.ue_iid > params.pc_thr in
      let anchor_id = en.Unified.ue_iid in
      if p && a then begin
        (* case 1: precise mode *)
        Abcontext.arm ctx ~anchor:anchor_id ~site:(site_of en) ~block_addr:conf_addr ();
        Precise
      end
      else if p then
        if retries < params.prom_thr then begin
          (* case 2: coarse grain — wild-card address *)
          Abcontext.arm ctx ~anchor:anchor_id ~site:(site_of en) ~block_addr:0 ();
          Coarse
        end
        else begin
          (* case 3: locking promotion — move to the parent anchor *)
          match Unified.parent_of ctx.Abcontext.table en with
          | Some parent ->
            Abcontext.arm ctx ~anchor:anchor_id ~site:(site_of parent) ~block_addr:0 ();
            Promoted
          | None ->
            Abcontext.arm ctx ~anchor:anchor_id ~site:(site_of en) ~block_addr:0 ();
            Coarse
        end
      else begin
        (* case 4: training mode *)
        Abcontext.disarm ctx;
        Training
      end
  in
  Abcontext.append ctx
    (Some
       {
         Abcontext.r_anchor = Option.map (fun e -> e.Unified.ue_iid) anchor;
         Abcontext.r_addr = Some line;
       });
  decision

(* A commit that held an uncontended lock appends an empty record, shifting
   the abort evidence out of the history; once the armed anchor no longer
   has threshold support, the ALP deactivates — "avoiding over-locking in
   the case of low contention" (§5.2). Contention returning re-arms it
   within a few aborts. *)
(* a speculation probe that commits ran conflict-free without the lock;
   two in a row deactivate the ALP outright (an abort resets the streak
   and, within a few occurrences, re-arms) *)
let on_probe_commit (ctx : Abcontext.t) =
  ctx.Abcontext.probe_streak <- ctx.Abcontext.probe_streak + 1;
  if ctx.Abcontext.probe_streak >= 2 then begin
    ctx.Abcontext.probe_streak <- 0;
    Abcontext.disarm ctx;
    Abcontext.clear_history ctx
  end

let on_commit_uncontended_lock params (ctx : Abcontext.t) =
  Abcontext.append ctx None;
  let supported =
    match ctx.Abcontext.armed_anchor with
    | Some ue -> Abcontext.count_anchor ctx ue > params.pc_thr
    | None -> (
      match ctx.Abcontext.armed_line with
      | Some line -> Abcontext.count_addr ctx line > params.addr_thr
      | None -> false)
  in
  if not supported then begin
    Abcontext.disarm ctx;
    (* drop the stale abort records too: re-arming should take a fresh
       burst of contention, not one more abort on top of old evidence *)
    Abcontext.clear_history ctx
  end

(* whole-transaction scheduling: arm on abort density alone (any conflict
   pattern), always at the very top of the atomic block, wildcard address *)
let activate_tx_sched params (ctx : Abcontext.t) ~line =
  if Abcontext.abort_density ctx >= params.pc_thr then
    Abcontext.arm ctx ~site:Abcontext.entry_site ~block_addr:0 ()
  else Abcontext.disarm ctx;
  Abcontext.append ctx (Some { Abcontext.r_anchor = None; Abcontext.r_addr = Some line })

let activate_addr_only params (ctx : Abcontext.t) ~conf_addr ~line =
  if Abcontext.count_addr ctx line > params.addr_thr then
    Abcontext.arm ctx ~line ~site:Abcontext.entry_site ~block_addr:conf_addr ()
  else Abcontext.disarm ctx;
  Abcontext.append ctx (Some { Abcontext.r_anchor = None; Abcontext.r_addr = Some line })

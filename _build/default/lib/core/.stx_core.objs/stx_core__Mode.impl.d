lib/core/mode.ml:

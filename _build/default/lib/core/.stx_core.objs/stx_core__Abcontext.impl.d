lib/core/abcontext.ml: Array Stx_compiler Unified

lib/core/policy.mli: Abcontext Stx_compiler Unified

lib/core/softcpc.mli:

lib/core/advisory_lock.ml: Array Htm Stx_htm Stx_machine

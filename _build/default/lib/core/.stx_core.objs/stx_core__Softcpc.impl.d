lib/core/softcpc.ml: Hashtbl

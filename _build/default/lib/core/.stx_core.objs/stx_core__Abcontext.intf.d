lib/core/abcontext.mli: Stx_compiler Unified

lib/core/mode.mli:

lib/core/policy.ml: Abcontext Option Stx_compiler Unified

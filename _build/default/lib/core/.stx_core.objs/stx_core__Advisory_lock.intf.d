lib/core/advisory_lock.mli: Htm Stx_htm Stx_machine

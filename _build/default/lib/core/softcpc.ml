type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 1024

let note t ~line ~site =
  if Hashtbl.mem t line then false
  else begin
    Hashtbl.add t line site;
    true
  end

let lookup t ~line = Hashtbl.find_opt t line

let size t = Hashtbl.length t

open Stx_compiler

let no_site = 0
let entry_site = -1

type record = { r_anchor : int option; r_addr : int option }

type t = {
  ab : int;
  table : Unified.table;
  mutable armed_site : int;
  mutable armed_anchor : int option;
  mutable armed_line : int option;
  mutable active_site : int;
  mutable block_addr : int;
  history : record option array;
  mutable hist_len : int;
  mutable hist_pos : int;
  mutable tx_counter : int;
  mutable probe_streak : int; (* consecutive successful speculation probes *)
}

let create ?(history_size = 8) ~ab table =
  if history_size <= 0 then invalid_arg "Abcontext.create: empty history";
  {
    ab;
    table;
    armed_site = no_site;
    armed_anchor = None;
    armed_line = None;
    active_site = no_site;
    block_addr = 0;
    history = Array.make history_size None;
    hist_len = 0;
    hist_pos = 0;
    tx_counter = 0;
    probe_streak = 0;
  }

let arm t ?anchor ?line ~site ~block_addr () =
  t.armed_site <- site;
  t.armed_anchor <- anchor;
  t.armed_line <- line;
  t.active_site <- site;
  t.block_addr <- block_addr

let disarm t =
  t.armed_site <- no_site;
  t.armed_anchor <- None;
  t.armed_line <- None;
  t.active_site <- no_site;
  t.block_addr <- 0

let clear_history t =
  Array.fill t.history 0 (Array.length t.history) None;
  t.hist_len <- 0;
  t.hist_pos <- 0

let on_tx_begin t = t.active_site <- t.armed_site

let probe_due t ~period =
  t.tx_counter <- t.tx_counter + 1;
  period > 0 && t.armed_site <> no_site && t.tx_counter mod period = 0

let append t r =
  t.history.(t.hist_pos) <- r;
  t.hist_pos <- (t.hist_pos + 1) mod Array.length t.history;
  if t.hist_len < Array.length t.history then t.hist_len <- t.hist_len + 1

let count t f =
  Array.fold_left
    (fun acc slot -> match slot with Some r when f r -> acc + 1 | _ -> acc)
    0 t.history

let count_addr t line = count t (fun r -> r.r_addr = Some line)

let abort_density t = count t (fun r -> r.r_addr <> None)
let count_anchor t ue = count t (fun r -> r.r_anchor = Some ue)

let consume_active t ~site =
  if t.active_site <> no_site && t.active_site = site then begin
    t.active_site <- no_site;
    true
  end
  else false

let address_matched t ~words_per_line ~addr =
  t.block_addr = 0 || t.block_addr / words_per_line = addr / words_per_line

open Stx_compiler

(** The locking policy (Figure 6): on every contention abort, decide which
    advisory-locking point to activate for future instances of the atomic
    block, based on how often the conflicting PC and the conflicting data
    address recur in the recent history.

    Four outcomes: {e precise} (recurrent PC and address — lock exactly
    that datum), {e coarse grain} (recurrent PC, wandering addresses — lock
    whatever the anchor touches next time), {e locking promotion}
    (contention persists in coarse mode — move to the anchor's parent,
    typically the enclosing structure), and {e training} (no pattern
    yet). *)

type params = {
  pc_thr : int;  (** occurrences needed to call the PC recurrent (paper: 2) *)
  addr_thr : int;  (** likewise for the address (paper: 2) *)
  prom_thr : int;  (** consecutive retries before promotion *)
  probe_period : int;
      (** while an ALP stays active, every [probe_period]-th transaction
          runs without it as a speculation probe: a committing probe decays
          the evidence (the armed ALP deactivates once support is gone), an
          aborting probe re-affirms it. This extends the paper's
          empty-entry decay — which only fires on uncontended commits — to
          serialization that keeps its own lock busy; without it a
          low-contention workload can stay serialized forever. *)
  skip_read_only : bool;
      (** never activate ALPs for atomic blocks the compiler proved
          read-only: such transactions cannot abort anyone, so serializing
          them only trades their own (re-executable) work for latency. *)
}

val default_params : params

type decision = Precise | Coarse | Promoted | Training

val activate :
  params ->
  Abcontext.t ->
  anchor:Unified.entry option ->
  conf_addr:int ->
  line:int ->
  retries:int ->
  decision
(** ActivateALPoint: [anchor] is the unified-table entry the abort was
    traced to (already resolved to an anchor through its pioneer); [line]
    is the conflicting cache-line index used for history counting;
    [retries] is the attempt count of the current transaction instance.
    Updates the context's activation and appends to the history. *)

val on_probe_commit : Abcontext.t -> unit
(** A speculation probe (an armed transaction deliberately run without its
    ALP) committed: after two consecutive successes the activation is
    dropped and the history cleared. *)

val on_commit_uncontended_lock : params -> Abcontext.t -> unit
(** A transaction committed while holding an advisory lock nobody else
    wanted: append an empty history entry so stale evidence decays, and
    deactivate the ALP once its supporting evidence has shifted out of the
    history (the paper's guard against over-locking, §5.2). *)

val resolve_anchor : Unified.table -> conf_pc:int option -> Unified.entry option
(** SearchByPC over the truncated conflicting PC, following non-anchor
    entries to their pioneer anchor. *)

val activate_tx_sched : params -> Abcontext.t -> line:int -> unit
(** Whole-transaction scheduling (the Tx_sched comparison mode): arm the
    atomic block's entry pseudo-ALP, wildcard, on abort density alone. *)

val activate_addr_only : params -> Abcontext.t -> conf_addr:int -> line:int -> unit
(** The "AddrOnly" comparison scheme (§6.2): a single fixed ALP at the top
    of the atomic block, precise mode only. *)

type t = Baseline | Addr_only | Tx_sched | Staggered_sw | Staggered_hw

let to_string = function
  | Baseline -> "HTM"
  | Addr_only -> "AddrOnly"
  | Tx_sched -> "TxSched"
  | Staggered_sw -> "Staggered+SW"
  | Staggered_hw -> "Staggered"

let of_string = function
  | "HTM" | "htm" | "baseline" -> Some Baseline
  | "AddrOnly" | "addronly" | "addr-only" -> Some Addr_only
  | "TxSched" | "txsched" | "tx-sched" -> Some Tx_sched
  | "Staggered+SW" | "staggered-sw" | "sw" -> Some Staggered_sw
  | "Staggered" | "staggered" | "hw" -> Some Staggered_hw
  | _ -> None

let all = [ Baseline; Addr_only; Tx_sched; Staggered_sw; Staggered_hw ]

let uses_alps = function
  | Baseline | Addr_only | Tx_sched -> false
  | Staggered_sw | Staggered_hw -> true

(** Software alternative to hardware conflicting-PC tracking (§4).

    A per-thread map from cache-line address to the ALP site that first
    touched it: every executed ALP records its site for the upcoming
    access's line (one nontransactional load to probe plus one
    nontransactional store when absent — the cycle cost is charged by the
    interpreter). On an abort, the conflicting line maps directly back to
    an ALP site without any PC support from the hardware. *)

type t

val create : unit -> t

val note : t -> line:int -> site:int -> bool
(** Record [site] for [line] if the line was previously absent. Returns
    whether a store was needed (for cost accounting). *)

val lookup : t -> line:int -> int option

val size : t -> int

(** The four runtime configurations compared in Figure 7. *)

type t =
  | Baseline  (** plain HTM, no instrumentation active *)
  | Addr_only  (** one fixed ALP per atomic block, precise mode only *)
  | Tx_sched
      (** whole-transaction scheduling in the style of Proactive
          Transaction Scheduling (§7 related work): once an atomic block
          shows repeated contention, every instance serializes behind a
          per-block lock for as long as the evidence holds — no partial
          overlap. The comparison point for the paper's "more parallelism"
          claim (Result 2). *)
  | Staggered_sw  (** Staggered Transactions with software anchor tracking *)
  | Staggered_hw  (** Staggered Transactions with the hardware PC tag *)

val to_string : t -> string
val of_string : string -> t option
val all : t list

val uses_alps : t -> bool
(** Whether compiler-inserted ALPs are consulted at run time. *)

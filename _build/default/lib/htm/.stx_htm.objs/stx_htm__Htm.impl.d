lib/htm/htm.ml: Alloc Array Config Hashtbl Memory Option Printf Stx_machine

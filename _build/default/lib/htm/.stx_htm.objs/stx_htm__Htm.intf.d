lib/htm/htm.mli: Alloc Config Memory Stx_machine

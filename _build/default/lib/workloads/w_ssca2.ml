open Stx_tir
open Stx_machine

(* ssca2: kernel 1 builds the graph by inserting edges into per-node
   adjacency arrays. Transactions are tiny (bump a degree counter, write
   one slot) and the node space is large, so two threads rarely touch the
   same node: the low-contention benchmark Staggered Transactions must not
   slow down. *)

let nodes = 1024
let max_degree = 8
let total_edges = 4096

let build () =
  let p = Ir.create_program () in
  (* add_edge(deg, adj, node, target) *)
  let b = Builder.create p "add_edge" ~params:[ "deg"; "adj"; "node"; "target" ] in
  let dslot = Builder.idx b (Builder.param b "deg") ~esize:1 (Builder.param b "node") in
  let d = Builder.load b dslot in
  Builder.when_ b
    (Builder.bin b Ir.Ge d (Ir.Imm max_degree))
    (fun b -> Builder.ret b (Some (Ir.Imm 0)));
  let base = Builder.bin b Ir.Mul (Builder.param b "node") (Ir.Imm max_degree) in
  let slot =
    Builder.idx b (Builder.param b "adj") ~esize:1 (Builder.bin b Ir.Add base d)
  in
  Builder.store b ~addr:slot (Builder.param b "target");
  Builder.store b ~addr:dslot (Builder.bin b Ir.Add d (Ir.Imm 1));
  Builder.ret b (Some (Ir.Imm 1));
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"add_edge" ~func:"add_edge" in
  let b = Builder.create p "main" ~params:[ "deg"; "adj"; "edges" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "edges") (fun b _ ->
      let u = Builder.rng b (Ir.Imm nodes) in
      let v = Builder.rng b (Ir.Imm nodes) in
      ignore
        (Builder.atomic_call_v b ab
           [ Builder.param b "deg"; Builder.param b "adj"; u; v ]));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let alloc = env.Stx_sim.Machine.alloc in
  let deg = Alloc.alloc_shared alloc nodes in
  let adj = Alloc.alloc_shared alloc (nodes * max_degree) in
  let per = Workload.split ~total:(Workload.scaled scale total_edges) ~threads in
  Array.make threads [| deg; adj; per |]

let bench =
  {
    Workload.name = "ssca2";
    Workload.source = "STAMP";
    Workload.description =
      Printf.sprintf "graph construction, %d nodes, tiny transactions" nodes;
    Workload.contention = "low";
    Workload.contention_source = "adjacency arrays";
    Workload.build = build;
    Workload.args;
  }

open Stx_tir
open Stx_machine

(* kmeans: the assignment phase's accumulation transactions. Each point
   update adds its coordinates into the chosen cluster's accumulator row
   (a count plus [dims] partial sums). Rows are contiguous arrays, so each
   cluster has a small stable set of cache lines: recurrent conflicting PC
   AND address — precise mode locks per cluster, "close to what fine-grain
   locking could achieve" (§6.2, Result 1). *)

let clusters = 16
let dims = 16
let total_points = 2048
let row_words = 1 + dims (* count + per-dimension sums *)

let build () =
  let p = Ir.create_program () in
  (* update_center(centers, cluster, x): one transaction *)
  let b = Builder.create p "update_center" ~params:[ "centers"; "cluster"; "x" ] in
  let row =
    Builder.idx b (Builder.param b "centers") ~esize:row_words (Builder.param b "cluster")
  in
  let cnt = Builder.load b row in
  Builder.store b ~addr:row (Builder.bin b Ir.Add cnt (Ir.Imm 1));
  Builder.for_ b ~from:(Ir.Imm 1) ~below:(Ir.Imm (dims + 1)) (fun b d ->
      let slot = Builder.idx b row ~esize:1 d in
      let v = Builder.load b slot in
      (* x stands in for the point's coordinate in every dimension *)
      Builder.store b ~addr:slot (Builder.bin b Ir.Add v (Builder.param b "x")));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"update_center" ~func:"update_center" in
  let b = Builder.create p "main" ~params:[ "centers"; "points" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "points") (fun b _ ->
      (* distance computation to pick the nearest cluster is private work *)
      Builder.work b (Ir.Imm 60);
      let c = Builder.rng b (Ir.Imm clusters) in
      let x = Builder.rng b (Ir.Imm 1000) in
      Builder.atomic_call b ab [ Builder.param b "centers"; c; x ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let alloc = env.Stx_sim.Machine.alloc in
  let centers = Alloc.alloc_shared alloc (clusters * row_words) in
  let per = Workload.split ~total:(Workload.scaled scale total_points) ~threads in
  Array.make threads [| centers; per |]

let bench =
  {
    Workload.name = "kmeans";
    Workload.source = "STAMP";
    Workload.description =
      Printf.sprintf "cluster-centre accumulation, %d clusters x %d dims" clusters dims;
    Workload.contention = "high";
    Workload.contention_source = "arrays";
    Workload.build = build;
    Workload.args;
  }

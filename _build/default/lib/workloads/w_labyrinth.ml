open Stx_tir
open Stx_machine

(* labyrinth: maze routing over a shared grid. Each transaction plans a
   path (a long private expansion over a snapshot) and then claims the
   path's cells. Transactions are long and the claimed cells wander across
   the grid, so conflicting addresses have no locality at all — only the
   conflicting PC recurs, driving coarse-grain locking. *)

let x = 16
let y = 16
let z = 3
let total_paths = 192
let plan_work = 700

let cells = x * y * z

let build () =
  let p = Ir.create_program () in
  (* route(grid, from, to, mark): plan, then claim a straight-ish path *)
  let b = Builder.create p "route" ~params:[ "grid"; "src"; "dst"; "mark" ] in
  Builder.work b (Ir.Imm plan_work);
  (* claim cells between src and dst, stepping by a fixed stride *)
  let cur = Builder.reg b "cur" in
  Builder.mov b cur (Builder.param b "src");
  let step = Builder.reg b "step" in
  Builder.if_ b
    (Builder.bin b Ir.Lt (Builder.param b "src") (Builder.param b "dst"))
    (fun b -> Builder.mov b step (Ir.Imm 7))
    (fun b -> Builder.mov b step (Ir.Imm (-7)));
  let continue_ b =
    Builder.bin b Ir.Gt
      (Builder.bin b Ir.Mul
         (Builder.bin b Ir.Sub (Builder.param b "dst") (Ir.Reg cur))
         (Ir.Reg step))
      (Ir.Imm 0)
  in
  Builder.while_ b continue_ (fun b ->
      let cell = Builder.idx b (Builder.param b "grid") ~esize:1 (Ir.Reg cur) in
      let occupied = Builder.load b cell in
      (* routing around an occupied cell costs extra planning *)
      Builder.when_ b
        (Builder.bin b Ir.Ne occupied (Ir.Imm 0))
        (fun b -> Builder.work b (Ir.Imm 20));
      Builder.store b ~addr:cell (Builder.param b "mark");
      Builder.bin_to b cur Ir.Add (Ir.Reg cur) (Ir.Reg step));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"route_path" ~func:"route" in
  let b = Builder.create p "main" ~params:[ "grid"; "paths" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "paths") (fun b i ->
      let src = Builder.rng b (Ir.Imm cells) in
      let dst = Builder.rng b (Ir.Imm cells) in
      let mark = Builder.bin b Ir.Add (Builder.thread_id b) (Builder.bin b Ir.Mul i (Ir.Imm 100)) in
      Builder.atomic_call b ab [ Builder.param b "grid"; src; dst; mark ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let grid = Alloc.alloc_shared env.Stx_sim.Machine.alloc cells in
  let per = Workload.split ~total:(Workload.scaled scale total_paths) ~threads in
  Array.make threads [| grid; per |]

let bench =
  {
    Workload.name = "labyrinth";
    Workload.source = "STAMP";
    Workload.description = Printf.sprintf "maze routing on a %dx%dx%d grid" x y z;
    Workload.contention = "high";
    Workload.contention_source = "routing grid";
    Workload.build = build;
    Workload.args;
  }

open Stx_tir
open Stx_machine
open Stx_tstruct

(* memcached 1.4.9 with the network front end elided (as in the paper):
   memslap-style get/set commands injected straight into the command
   processor. Every command transaction touches the key hash table and
   then updates the global statistics block in the middle of the
   transaction — a handful of hot counters on one or two cache lines.
   Those stable mid-transaction addresses are the paper's showcase for
   serializing just the statistics suffix while the hash lookups overlap. *)

let nbuckets = 64
let key_range = 512
let total_ops = 2048
let pct_get = 70

(* stats block layout: cmd_get, cmd_set, get_hits, get_misses, bytes *)
let stats_words = 5

let build () =
  let p = Ir.create_program () in
  Thash.register p;
  (* process_get(ht, stats, key) *)
  let b = Builder.create p "process_get" ~params:[ "ht"; "stats"; "key" ] in
  let hit = Builder.call_v b Thash.lookup_fn [ Builder.param b "ht"; Builder.param b "key" ] in
  let bump i delta =
    let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm i) in
    let v = Builder.load b slot in
    Builder.store b ~addr:slot (Builder.bin b Ir.Add v delta)
  in
  bump 0 (Ir.Imm 1);
  (* hits and misses update different counters on the stats lines *)
  Builder.if_ b hit
    (fun b ->
      let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm 2) in
      let v = Builder.load b slot in
      Builder.store b ~addr:slot (Builder.bin b Ir.Add v (Ir.Imm 1)))
    (fun b ->
      let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm 3) in
      let v = Builder.load b slot in
      Builder.store b ~addr:slot (Builder.bin b Ir.Add v (Ir.Imm 1)));
  bump 4 (Ir.Imm 64);
  Builder.ret b None;
  ignore (Builder.finish b);
  (* process_set(ht, stats, key) *)
  let b = Builder.create p "process_set" ~params:[ "ht"; "stats"; "key" ] in
  ignore (Builder.call_v b Thash.insert_fn [ Builder.param b "ht"; Builder.param b "key" ]);
  let bump i delta =
    let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm i) in
    let v = Builder.load b slot in
    Builder.store b ~addr:slot (Builder.bin b Ir.Add v delta)
  in
  bump 1 (Ir.Imm 1);
  bump 4 (Ir.Imm 128);
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_get = Ir.add_atomic p ~name:"process_get" ~func:"process_get" in
  let ab_set = Ir.add_atomic p ~name:"process_set" ~func:"process_set" in
  let b = Builder.create p "main" ~params:[ "ht"; "stats"; "ops" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
      let key = Builder.bin b Ir.Add (Builder.rng b (Ir.Imm key_range)) (Ir.Imm 1) in
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.rng b (Ir.Imm 100)) (Ir.Imm pct_get))
        (fun b ->
          Builder.atomic_call b ab_get
            [ Builder.param b "ht"; Builder.param b "stats"; key ])
        (fun b ->
          Builder.atomic_call b ab_set
            [ Builder.param b "ht"; Builder.param b "stats"; key ]));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let rng = env.Stx_sim.Machine.setup_rng in
  let keys = List.init 256 (fun _ -> 1 + Stx_util.Rng.int rng key_range) in
  let ht = Thash.setup mem alloc ~nbuckets ~keys in
  let stats = Alloc.alloc_shared alloc stats_words in
  let per = Workload.split ~total:(Workload.scaled scale total_ops) ~threads in
  Array.make threads [| ht; stats; per |]

let bench =
  {
    Workload.name = "memcached";
    Workload.source = "memcached-1.4.9";
    Workload.description = "get/set command processing with global statistics updates";
    Workload.contention = "high";
    Workload.contention_source = "statistics information";
    Workload.build = build;
    Workload.args;
  }

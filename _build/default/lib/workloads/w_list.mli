(** The IntSet sorted-list microbenchmarks (RSTM test suite): one shared
    64-node list, operations as single transactions. *)

val list_lo : Workload.t
(** 90 % lookup / 5 % insert / 5 % delete — medium contention. *)

val list_hi : Workload.t
(** 60 % lookup / 20 % insert / 20 % delete — high contention; the paper's
    worst-scaling benchmark. *)

(** The vacation benchmark. See the implementation header and DESIGN.md for the
    contention signature and the fidelity notes of this port. *)

val bench : Workload.t

open Stx_tir
open Stx_machine
open Stx_tstruct

(* tsp: branch-and-bound over a shared best-first task pool. The paper
   keeps candidate tours in a B+-tree priority queue with O(1) pop; the
   pool here is the bucketed queue of {!Tcalqueue}, which shares the
   property that matters: the head bucket (like the left-most leaf) is a
   stable hot address across many pops, so the policy can serialize pops
   precisely, while pushes scatter over other bucket lines. Expansion of a
   partial tour is private work between transactions; completed tours
   occasionally improve the global incumbent bound. *)

let total_tasks = 768
let expand_work = 120
let children = 2
let nbuckets = 64
let capacity = 23
let width = 16

let build () =
  let p = Ir.create_program () in
  Tcalqueue.register p;
  let ab_pop = Ir.add_atomic p ~name:"pool_pop" ~func:Tcalqueue.pop_fn in
  let ab_push = Ir.add_atomic p ~name:"pool_push" ~func:Tcalqueue.insert_fn in
  let b = Builder.create p "update_best" ~params:[ "best"; "tour" ] in
  let cur = Builder.load b (Builder.param b "best") in
  Builder.when_ b
    (Builder.bin b Ir.Lt (Builder.param b "tour") cur)
    (fun b ->
      Builder.store b ~addr:(Builder.param b "best") (Builder.param b "tour");
      Builder.ret b (Some (Ir.Imm 1)));
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b);
  let ab_best = Ir.add_atomic p ~name:"update_best" ~func:"update_best" in
  let b = Builder.create p "main" ~params:[ "pq"; "best"; "steps" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "steps") (fun b _ ->
      let task = Builder.atomic_call_v b ab_pop [ Builder.param b "pq" ] in
      Builder.when_ b
        (Builder.bin b Ir.Ne task (Ir.Imm (-1)))
        (fun b ->
          (* expand the partial tour privately *)
          Builder.work b (Ir.Imm expand_work);
          (* a fraction of expansions complete a tour and try the bound *)
          Builder.if_ b
            (Builder.bin b Ir.Lt (Builder.rng b (Ir.Imm 100)) (Ir.Imm 20))
            (fun b ->
              let tour = Builder.bin b Ir.Add task (Builder.rng b (Ir.Imm 50)) in
              ignore
                (Builder.atomic_call_v b ab_best [ Builder.param b "best"; tour ]))
            (fun b ->
              (* otherwise push children with refined bounds *)
              for _ = 1 to children do
                let bound = Builder.bin b Ir.Add task (Builder.rng b (Ir.Imm 40)) in
                ignore
                  (Builder.atomic_call_v b ab_push
                     [ Builder.param b "pq"; bound; bound ])
              done)));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let rng = env.Stx_sim.Machine.setup_rng in
  let n = Workload.scaled scale total_tasks in
  let pq =
    Tcalqueue.setup mem alloc ~nbuckets ~capacity ~width
      ~init:(List.init n (fun _ -> let pr = 100 + Stx_util.Rng.int rng 900 in (pr, pr)))
  in
  let best = Alloc.alloc_shared alloc 1 in
  Memory.store mem best max_int;
  let per = Workload.split ~total:n ~threads in
  Array.make threads [| pq; best; per |]

let bench =
  {
    Workload.name = "tsp";
    Workload.source = "ours";
    Workload.description = "branch-and-bound TSP over a bucketed best-first task pool";
    Workload.contention = "med";
    Workload.contention_source = "priority queue";
    Workload.build = build;
    Workload.args;
  }

lib/workloads/workload.ml: Float Ir Machine Stx_compiler Stx_sim Stx_tir Verify

lib/workloads/w_memcached.ml: Alloc Array Builder Ir List Stx_machine Stx_sim Stx_tir Stx_tstruct Stx_util Thash Workload

lib/workloads/w_labyrinth.mli: Workload

lib/workloads/w_genome.mli: Workload

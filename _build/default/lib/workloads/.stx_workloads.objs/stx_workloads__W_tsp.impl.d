lib/workloads/w_tsp.ml: Alloc Array Builder Ir List Memory Stx_machine Stx_sim Stx_tir Stx_tstruct Stx_util Tcalqueue Workload

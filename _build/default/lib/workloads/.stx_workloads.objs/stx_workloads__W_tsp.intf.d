lib/workloads/w_tsp.mli: Workload

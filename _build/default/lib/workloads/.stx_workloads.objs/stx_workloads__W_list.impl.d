lib/workloads/w_list.ml: Array Builder Ir List Printf Stx_sim Stx_tir Stx_tstruct Stx_util Tlist Workload

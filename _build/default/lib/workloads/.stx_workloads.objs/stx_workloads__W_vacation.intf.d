lib/workloads/w_vacation.mli: Workload

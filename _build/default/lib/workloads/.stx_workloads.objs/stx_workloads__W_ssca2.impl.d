lib/workloads/w_ssca2.ml: Alloc Array Builder Ir Printf Stx_machine Stx_sim Stx_tir Workload

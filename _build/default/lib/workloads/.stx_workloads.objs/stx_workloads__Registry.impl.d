lib/workloads/registry.ml: List W_genome W_intruder W_kmeans W_labyrinth W_list W_memcached W_ssca2 W_tsp W_vacation Workload

lib/workloads/w_labyrinth.ml: Alloc Array Builder Ir Printf Stx_machine Stx_sim Stx_tir Workload

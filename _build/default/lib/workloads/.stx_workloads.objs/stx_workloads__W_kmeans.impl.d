lib/workloads/w_kmeans.ml: Alloc Array Builder Ir Printf Stx_machine Stx_sim Stx_tir Workload

lib/workloads/w_kmeans.mli: Workload

lib/workloads/w_ssca2.mli: Workload

lib/workloads/workload.mli: Ir Machine Stx_sim Stx_tir

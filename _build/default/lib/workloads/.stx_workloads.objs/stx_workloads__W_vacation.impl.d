lib/workloads/w_vacation.ml: Array Builder Ir List Printf Stx_sim Stx_tir Stx_tstruct Trbt Workload

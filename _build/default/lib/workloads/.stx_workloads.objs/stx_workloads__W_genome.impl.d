lib/workloads/w_genome.ml: Array Builder Ir List Printf Stx_sim Stx_tir Stx_tstruct Thash Workload

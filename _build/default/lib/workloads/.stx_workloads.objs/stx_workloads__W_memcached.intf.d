lib/workloads/w_memcached.mli: Workload

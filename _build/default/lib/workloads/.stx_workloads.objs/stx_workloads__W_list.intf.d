lib/workloads/w_list.mli: Workload

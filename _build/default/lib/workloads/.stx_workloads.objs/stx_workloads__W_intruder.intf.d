lib/workloads/w_intruder.mli: Workload

open Stx_tir
open Stx_tstruct

(* genome's dominant transaction (Figure 3 of the paper): insert a chunk of
   gene segments into a fixed-size chained hash table. The table is
   deliberately overloaded (long bucket chains), so conflict chains arise
   across bucket lists: thread 1 touches lists A, B, D; thread 2 D and C...
   Conflicting PCs sit in the list-traversal loop while the addresses
   wander, which is exactly what locking promotion resolves by locking the
   table as a whole (§5.2). *)

let nbuckets = 128
let segment_range = 2048
let chunk = 4
let total_chunks = 768

let build () =
  let p = Ir.create_program () in
  Thash.register p;
  (* one atomic block inserting a chunk of four segments *)
  let b = Builder.create p "insert_chunk" ~params:[ "ht"; "k0"; "k1"; "k2"; "k3" ] in
  List.iter
    (fun k ->
      ignore (Builder.call_v b Thash.insert_fn [ Builder.param b "ht"; Builder.param b k ]))
    [ "k0"; "k1"; "k2"; "k3" ];
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"insert_chunk" ~func:"insert_chunk" in
  let b = Builder.create p "main" ~params:[ "ht"; "chunks" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "chunks") (fun b _ ->
      let k0 = Builder.rng b (Ir.Imm segment_range) in
      let k1 = Builder.rng b (Ir.Imm segment_range) in
      let k2 = Builder.rng b (Ir.Imm segment_range) in
      let k3 = Builder.rng b (Ir.Imm segment_range) in
      Builder.atomic_call b ab [ Builder.param b "ht"; k0; k1; k2; k3 ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let ht =
    Thash.setup env.Stx_sim.Machine.memory env.Stx_sim.Machine.alloc ~nbuckets ~keys:[]
  in
  let per = Workload.split ~total:(Workload.scaled scale total_chunks) ~threads in
  Array.make threads [| ht; per |]

let bench =
  {
    Workload.name = "genome";
    Workload.source = "STAMP";
    Workload.description =
      Printf.sprintf "gene-segment dedup into a %d-bucket chained hash table" nbuckets;
    Workload.contention = "med";
    Workload.contention_source = "hash table of lists";
    Workload.build = build;
    Workload.args;
  }

let _ = chunk

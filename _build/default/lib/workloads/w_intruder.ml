open Stx_tir
open Stx_machine
open Stx_tstruct

(* intruder: network-intrusion detection, structured as in STAMP. A small
   transaction pops a packet from the shared capture queue
   (TMstream_getPacket); a long transaction then reassembles the flow —
   most of it private decoding work plus a write to the packet's flow slot
   — and enqueues the completed flow on the detector queue near the END
   (TMdecoder_process). That late enqueue on a stable queue-tail address
   is the paper's showcase: staggering serializes just the enqueue while
   the decoding keeps overlapping. *)

let total_packets = 1024
let flows = 256
let decode_work = 180

let build () =
  let p = Ir.create_program () in
  Tqueue.register p;
  let ab_pop = Ir.add_atomic p ~name:"stream_get_packet" ~func:Tqueue.pop_fn in
  (* decoder_process(outq, flowtab, packet): the long transaction *)
  let b = Builder.create p "decoder_process" ~params:[ "outq"; "flowtab"; "packet" ] in
  Builder.work b (Ir.Imm decode_work);
  let flow = Builder.bin b Ir.Rem (Builder.param b "packet") (Ir.Imm flows) in
  (* reassembly state for this packet's flow *)
  let slot = Builder.idx b (Builder.param b "flowtab") ~esize:1 flow in
  let seen = Builder.load b slot in
  Builder.store b ~addr:slot (Builder.bin b Ir.Add seen (Ir.Imm 1));
  Builder.work b (Ir.Imm (decode_work / 3));
  (* the flow is complete: hand it to the detector near the end of the tx *)
  Builder.call b Tqueue.push_fn [ Builder.param b "outq"; flow ];
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_decode = Ir.add_atomic p ~name:"decoder_process" ~func:"decoder_process" in
  let b = Builder.create p "main" ~params:[ "inq"; "outq"; "flowtab" ] in
  let go = Builder.reg b "go" in
  Builder.mov b go (Ir.Imm 1);
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg go) (Ir.Imm 0))
    (fun b ->
      let packet = Builder.atomic_call_v b ab_pop [ Builder.param b "inq" ] in
      Builder.if_ b
        (Builder.bin b Ir.Eq packet (Ir.Imm (-1)))
        (fun b -> Builder.mov b go (Ir.Imm 0))
        (fun b ->
          Builder.atomic_call b ab_decode
            [ Builder.param b "outq"; Builder.param b "flowtab"; packet ]));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let args ~scale env ~threads =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let rng = env.Stx_sim.Machine.setup_rng in
  let n = Workload.scaled scale total_packets in
  let inq =
    Tqueue.setup mem alloc ~init:(List.init n (fun _ -> 1 + Stx_util.Rng.int rng 100_000))
  in
  let outq = Tqueue.setup mem alloc ~init:[] in
  let flowtab = Alloc.alloc_shared alloc flows in
  Array.make threads [| inq; outq; flowtab |]

let bench =
  {
    Workload.name = "intruder";
    Workload.source = "STAMP";
    Workload.description = "packet capture + flow reassembly with a late enqueue";
    Workload.contention = "high";
    Workload.contention_source = "task queue";
    Workload.build = build;
    Workload.args;
  }

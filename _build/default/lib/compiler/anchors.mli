open Stx_tir
open Stx_dsa

(** Local anchor tables (Algorithm 1 of the paper) and ALP instrumentation.

    A load/store is an {e anchor} if it may be the initial access to its
    DSNode on some execution path: walking the dominator tree depth-first,
    an access is a non-anchor exactly when an earlier access to the same
    DSNode dominates it, in which case its {e pioneer} is that access's
    canonical anchor. Anchors on a node reached through a pointer loaded
    via another node's anchor have that anchor as {e parent} (filled at the
    local level here; cross-function parents are completed by
    {!Unified}). *)

type entry = {
  le_iid : int;  (** the load/store instruction *)
  le_is_anchor : bool;
  le_node : Dsnode.t;  (** DSNode accessed *)
  le_pioneer : int option;  (** iid of the canonical anchor for non-anchors *)
  mutable le_parent : int option;  (** iid of the parent anchor, if local *)
}

type local_table = { lt_func : string; lt_entries : entry array (** layout order *) }

type mode =
  | Dsa_guided  (** the paper's pass: anchors chosen per Algorithm 1 *)
  | Naive  (** instrument every load and store (§6.1 comparison) *)

type t = {
  locals : (string, local_table) Hashtbl.t;  (** atomic-reachable functions *)
  anchor_sites : (int, int) Hashtbl.t;  (** anchor iid -> ALP site id *)
  site_anchor : (int, int) Hashtbl.t;  (** ALP site id -> anchor iid *)
  loads_stores_analyzed : int;
  anchors_instrumented : int;
}

val build : ?insert:bool -> Ir.program -> Dsa.t -> mode:mode -> t
(** Build local tables for every atomic-reachable function and insert an
    [Alp] instruction before each anchor, mutating the program in place.
    [insert:false] builds the tables (and the static statistics) without
    touching the code — the uninstrumented baseline binary. Call before
    {!Layout.assign}. *)

val entry_for : t -> func:string -> iid:int -> entry option

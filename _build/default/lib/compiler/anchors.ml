open Stx_tir
open Stx_dsa

type entry = {
  le_iid : int;
  le_is_anchor : bool;
  le_node : Dsnode.t;
  le_pioneer : int option;
  mutable le_parent : int option;
}

type local_table = { lt_func : string; lt_entries : entry array }

type mode = Dsa_guided | Naive

type t = {
  locals : (string, local_table) Hashtbl.t;
  anchor_sites : (int, int) Hashtbl.t;
  site_anchor : (int, int) Hashtbl.t;
  loads_stores_analyzed : int;
  anchors_instrumented : int;
}

(* Algorithm 1: classify the loads/stores of one function by a depth-first
   walk of its dominator tree. *)
let build_local prog dsa ~mode fname =
  let f = Ir.find_func prog fname in
  let dom = Dom.compute f in
  (* per-DSNode lists of (entry, block, inst index), in discovery order *)
  let by_node : (int, (entry * int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let all = ref [] in
  let classify bi ii (inst : Ir.inst) =
    match Dsa.access_node dsa inst.Ir.iid with
    | None -> ()
    | Some (node, _field) ->
      let nid = Dsnode.id node in
      let bucket =
        match Hashtbl.find_opt by_node nid with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add by_node nid l;
          l
      in
      let dominating =
        if mode = Naive then None
        else
          List.find_opt
            (fun (_, mb, mi) -> Dom.inst_dominates dom (mb, mi) (bi, ii))
            (List.rev !bucket)
      in
      let e =
        match dominating with
        | Some (m, _, _) ->
          (* pioneer must be an anchor: follow the found entry's own pioneer *)
          let pioneer =
            if m.le_is_anchor then Some m.le_iid else m.le_pioneer
          in
          {
            le_iid = inst.Ir.iid;
            le_is_anchor = false;
            le_node = node;
            le_pioneer = pioneer;
            le_parent = None;
          }
        | None ->
          {
            le_iid = inst.Ir.iid;
            le_is_anchor = true;
            le_node = node;
            le_pioneer = None;
            le_parent = None;
          }
      in
      bucket := (e, bi, ii) :: !bucket;
      all := e :: !all
  in
  (* dominator-tree DFS preorder over blocks; instructions in block order *)
  List.iter
    (fun bi ->
      Array.iteri
        (fun ii inst -> if Ir.is_mem_access inst.Ir.op then classify bi ii inst)
        f.Ir.blocks.(bi).Ir.insts)
    (Dom.preorder dom);
  (* stage 2: parents along graph edges (self edges excluded: a list node's
     own anchor is not its parent — that link is to the structure above) *)
  let rep_anchor nid =
    match Hashtbl.find_opt by_node nid with
    | None -> None
    | Some l ->
      List.rev !l
      |> List.find_opt (fun (e, _, _) -> e.le_is_anchor)
      |> Option.map (fun (e, _, _) -> e)
  in
  Hashtbl.iter
    (fun nid bucket ->
      match !bucket with
      | [] -> ()
      | (sample, _, _) :: _ ->
        let n = Dsnode.find sample.le_node in
        if Dsnode.id n = nid then
          List.iter
            (fun (_, m) ->
              let mid = Dsnode.id m in
              if mid <> nid then
                match (rep_anchor nid, Hashtbl.find_opt by_node mid) with
                | Some parent, Some targets ->
                  List.iter
                    (fun (e, _, _) ->
                      if e.le_is_anchor && e.le_parent = None then
                        e.le_parent <- Some parent.le_iid)
                    !targets
                | _ -> ())
            (Dsnode.edges n))
    by_node;
  (* entries in layout order *)
  let by_iid = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace by_iid e.le_iid e) !all;
  let ordered = ref [] in
  Ir.iter_insts f (fun _ _ inst ->
      match Hashtbl.find_opt by_iid inst.Ir.iid with
      | Some e -> ordered := e :: !ordered
      | None -> ());
  { lt_func = fname; lt_entries = Array.of_list (List.rev !ordered) }

(* Insert an [Alp] pseudo-instruction immediately before each anchor. *)
let instrument prog anchor_iids =
  let sites = Hashtbl.create 64 in
  let site_anchor = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          let needs =
            Array.exists (fun i -> Hashtbl.mem anchor_iids i.Ir.iid) b.Ir.insts
          in
          if needs then begin
            let out = ref [] in
            Array.iter
              (fun (inst : Ir.inst) ->
                (if Hashtbl.mem anchor_iids inst.Ir.iid then
                   match Ir.pointer_reg inst.Ir.op with
                   | Some addr_reg ->
                     let site = Ir.fresh_alp_site prog in
                     Hashtbl.replace sites inst.Ir.iid site;
                     Hashtbl.replace site_anchor site inst.Ir.iid;
                     let alp =
                       {
                         Ir.alp_site = site;
                         Ir.alp_addr = addr_reg;
                         Ir.alp_anchor_iid = inst.Ir.iid;
                       }
                     in
                     out := { Ir.iid = Ir.fresh_iid prog; Ir.op = Ir.Alp alp } :: !out
                   | None -> ());
                out := inst :: !out)
              b.Ir.insts;
            b.Ir.insts <- Array.of_list (List.rev !out)
          end)
        f.Ir.blocks)
    prog.Ir.funcs;
  (sites, site_anchor)

let build ?(insert = true) prog dsa ~mode =
  let reach = Verify.atomic_reachable prog in
  let locals = Hashtbl.create 16 in
  let analyzed = ref 0 in
  let anchor_iids = Hashtbl.create 64 in
  let names = Hashtbl.fold (fun n () acc -> n :: acc) reach [] |> List.sort compare in
  List.iter
    (fun fname ->
      if Hashtbl.mem prog.Ir.funcs fname then begin
        let lt = build_local prog dsa ~mode fname in
        Hashtbl.replace locals fname lt;
        Array.iter
          (fun e ->
            incr analyzed;
            if e.le_is_anchor then Hashtbl.replace anchor_iids e.le_iid ())
          lt.lt_entries
      end)
    names;
  let anchor_sites, site_anchor =
    if insert then instrument prog anchor_iids
    else (Hashtbl.create 1, Hashtbl.create 1)
  in
  {
    locals;
    anchor_sites;
    site_anchor;
    loads_stores_analyzed = !analyzed;
    anchors_instrumented =
      (if insert then Hashtbl.length anchor_sites else Hashtbl.length anchor_iids);
  }

let entry_for t ~func ~iid =
  match Hashtbl.find_opt t.locals func with
  | None -> None
  | Some lt -> Array.find_opt (fun e -> e.le_iid = iid) lt.lt_entries

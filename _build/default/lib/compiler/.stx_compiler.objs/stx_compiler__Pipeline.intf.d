lib/compiler/pipeline.mli: Anchors Ir Layout Stx_dsa Stx_tir Unified

lib/compiler/pipeline.ml: Anchors Array Hashtbl Ir Layout Stx_dsa Stx_tir Unified Verify

lib/compiler/anchors.ml: Array Dom Dsa Dsnode Hashtbl Ir List Option Stx_dsa Stx_tir Verify

lib/compiler/anchors.mli: Dsa Dsnode Hashtbl Ir Stx_dsa Stx_tir

lib/compiler/unified.ml: Anchors Array Dsa Dsnode Format Hashtbl Ir Layout List Option Printf Stx_dsa Stx_tir

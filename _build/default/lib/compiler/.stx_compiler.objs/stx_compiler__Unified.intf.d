lib/compiler/unified.mli: Anchors Dsa Format Ir Layout Stx_dsa Stx_tir

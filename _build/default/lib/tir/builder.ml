open Ir

type pending_block = {
  pb_label : string;
  mutable pb_insts : inst list; (* reversed *)
  mutable pb_term : term option;
}

type t = {
  prog : program;
  name : string;
  params : string array;
  regs : (string, reg) Hashtbl.t;
  mutable nregs : int;
  mutable done_blocks : pending_block list; (* reversed *)
  mutable cur : pending_block;
  mutable fresh_label : int;
  mutable fresh_reg : int;
}

let create prog name ~params =
  let regs = Hashtbl.create 16 in
  List.iteri (fun i p -> Hashtbl.add regs p i) params;
  {
    prog;
    name;
    params = Array.of_list params;
    regs;
    nregs = List.length params;
    done_blocks = [];
    cur = { pb_label = "entry"; pb_insts = []; pb_term = None };
    fresh_label = 0;
    fresh_reg = 0;
  }

let param t p =
  match Hashtbl.find_opt t.regs p with
  | Some r when r < Array.length t.params -> Reg r
  | _ -> invalid_arg (Printf.sprintf "Builder.param: %s has no param %s" t.name p)

let reg t n =
  match Hashtbl.find_opt t.regs n with
  | Some r -> r
  | None ->
    let r = t.nregs in
    t.nregs <- r + 1;
    Hashtbl.add t.regs n r;
    r

let rv t n = Reg (reg t n)

let imm n = Imm n

let fresh t =
  let n = Printf.sprintf "%%t%d" t.fresh_reg in
  t.fresh_reg <- t.fresh_reg + 1;
  reg t n

let fresh_label t prefix =
  let l = Printf.sprintf "%s.%d" prefix t.fresh_label in
  t.fresh_label <- t.fresh_label + 1;
  l

let emit t op =
  if t.cur.pb_term <> None then
    invalid_arg
      (Printf.sprintf "Builder: emitting into terminated block %s in %s"
         t.cur.pb_label t.name);
  t.cur.pb_insts <- { iid = fresh_iid t.prog; op } :: t.cur.pb_insts

(* materialize an operand as a register (addresses must live in registers) *)
let as_reg t = function
  | Reg r -> r
  | Imm _ as v ->
    let r = fresh t in
    emit t (Mov (r, v));
    r

let mov t d v = emit t (Mov (d, v))

let bin_to t d op a b = emit t (Bin (op, d, a, b))

let bin t op a b =
  let d = fresh t in
  bin_to t d op a b;
  Reg d

let load_to t d a = emit t (Load (d, as_reg t a))

let load t a =
  let d = fresh t in
  load_to t d a;
  Reg d

let store t ~addr v = emit t (Store (as_reg t addr, v))

let gep t base sname fname =
  let s = find_struct t.prog sname in
  let fi = Types.field_index s fname in
  let d = fresh t in
  emit t (Gep (d, as_reg t base, sname, fi));
  Reg d

let idx t base ~esize i =
  let d = fresh t in
  emit t (Idx (d, as_reg t base, esize, i));
  Reg d

let alloc t sname =
  ignore (find_struct t.prog sname);
  let d = fresh t in
  emit t (Alloc (d, sname));
  Reg d

let alloc_arr t sname n =
  ignore (find_struct t.prog sname);
  let d = fresh t in
  emit t (Alloc_arr (d, sname, n));
  Reg d

let call t f args = emit t (Call (None, f, args))

let call_v t f args =
  let d = fresh t in
  emit t (Call (Some d, f, args));
  Reg d

let atomic_call t ab args = emit t (Atomic_call (None, ab, args))

let atomic_call_v t ab args =
  let d = fresh t in
  emit t (Atomic_call (Some d, ab, args));
  Reg d

let rng t bound =
  let d = fresh t in
  emit t (Intr (Some d, Rng, [ bound ]));
  Reg d

let thread_id t =
  let d = fresh t in
  emit t (Intr (Some d, Thread_id, []));
  Reg d

let work t n = emit t (Intr (None, Work, [ n ]))

let print t v = emit t (Intr (None, Print, [ v ]))

let abort_tx t = emit t (Intr (None, Abort_tx, []))

let close_block t =
  t.done_blocks <- t.cur :: t.done_blocks

let block t label =
  if t.cur.pb_term = None then
    invalid_arg
      (Printf.sprintf "Builder.block: previous block %s of %s not terminated"
         t.cur.pb_label t.name);
  close_block t;
  t.cur <- { pb_label = label; pb_insts = []; pb_term = None }

let terminate t term =
  if t.cur.pb_term <> None then
    invalid_arg
      (Printf.sprintf "Builder: double terminator in block %s of %s"
         t.cur.pb_label t.name);
  t.cur.pb_term <- Some term

let jmp t l = terminate t (Jmp l)
let br t c l1 l2 = terminate t (Br (c, l1, l2))
let ret t v = terminate t (Ret v)

let terminated t = t.cur.pb_term <> None

let if_ t c then_ else_ =
  let lt = fresh_label t "then"
  and le = fresh_label t "else"
  and lj = fresh_label t "join" in
  br t c lt le;
  block t lt;
  then_ t;
  if not (terminated t) then jmp t lj;
  block t le;
  else_ t;
  if not (terminated t) then jmp t lj;
  block t lj

let when_ t c body = if_ t c body (fun _ -> ())

let while_ t cond body =
  let lh = fresh_label t "while.head"
  and lb = fresh_label t "while.body"
  and lx = fresh_label t "while.exit" in
  jmp t lh;
  block t lh;
  let c = cond t in
  br t c lb lx;
  block t lb;
  body t;
  if not (terminated t) then jmp t lh;
  block t lx

let for_ t ~from ~below body =
  let i = fresh t in
  mov t i from;
  while_ t
    (fun t -> bin t Lt (Reg i) below)
    (fun t ->
      body t (Reg i);
      bin_to t i Add (Reg i) (Imm 1))

let finish t =
  if t.cur.pb_term = None then
    invalid_arg
      (Printf.sprintf "Builder.finish: block %s of %s not terminated"
         t.cur.pb_label t.name);
  close_block t;
  let blocks =
    List.rev_map
      (fun pb ->
        {
          blabel = pb.pb_label;
          insts = Array.of_list (List.rev pb.pb_insts);
          term = (match pb.pb_term with Some tm -> tm | None -> assert false);
        })
      t.done_blocks
  in
  let f =
    {
      fname = t.name;
      params = t.params;
      nregs = t.nregs;
      blocks = Array.of_list blocks;
    }
  in
  add_func t.prog f;
  f

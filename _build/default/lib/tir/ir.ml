type reg = int

type operand = Reg of reg | Imm of int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type intr = Rng | Thread_id | Work | Print | Abort_tx

type op =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Load of reg * reg
  | Store of reg * operand
  | Gep of reg * reg * string * int
  | Idx of reg * reg * int * operand
  | Alloc of reg * string
  | Alloc_arr of reg * string * operand
  | Call of reg option * string * operand list
  | Atomic_call of reg option * int * operand list
  | Intr of reg option * intr * operand list
  | Alp of alp

and alp = { alp_site : int; alp_addr : reg; alp_anchor_iid : int }

type inst = { iid : int; op : op }

type term = Jmp of string | Br of operand * string * string | Ret of operand option

type block = { blabel : string; mutable insts : inst array; mutable term : term }

type func = {
  fname : string;
  params : string array;
  mutable nregs : int;
  mutable blocks : block array;
}

type atomic = { ab_id : int; ab_name : string; ab_func : string }

type program = {
  structs : (string, Types.strct) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable atomics : atomic array;
  mutable next_iid : int;
  mutable next_alp_site : int;
}

let create_program () =
  let structs = Hashtbl.create 16 in
  Hashtbl.add structs Types.word.Types.sname Types.word;
  {
    structs;
    funcs = Hashtbl.create 16;
    atomics = [||];
    next_iid = 0;
    next_alp_site = 1;
  }

let add_struct p (s : Types.strct) =
  if Hashtbl.mem p.structs s.Types.sname then
    invalid_arg ("Ir.add_struct: duplicate struct " ^ s.Types.sname);
  Hashtbl.add p.structs s.Types.sname s

let find_struct p name =
  match Hashtbl.find_opt p.structs name with
  | Some s -> s
  | None -> invalid_arg ("Ir.find_struct: unknown struct " ^ name)

let add_func p f =
  if Hashtbl.mem p.funcs f.fname then
    invalid_arg ("Ir.add_func: duplicate function " ^ f.fname);
  Hashtbl.add p.funcs f.fname f

let find_func p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func: unknown function " ^ name)

let add_atomic p ~name ~func =
  let ab_id = Array.length p.atomics in
  p.atomics <- Array.append p.atomics [| { ab_id; ab_name = name; ab_func = func } |];
  ab_id

let fresh_iid p =
  let i = p.next_iid in
  p.next_iid <- i + 1;
  i

let fresh_alp_site p =
  let i = p.next_alp_site in
  p.next_alp_site <- i + 1;
  i

let block_index f label =
  let n = Array.length f.blocks in
  let rec find i =
    if i >= n then raise Not_found
    else if f.blocks.(i).blabel = label then i
    else find (i + 1)
  in
  find 0

let iter_insts f k =
  Array.iteri
    (fun bi b -> Array.iteri (fun ii inst -> k bi ii inst) b.insts)
    f.blocks

let is_mem_access = function Load _ | Store _ -> true | _ -> false

let pointer_reg = function Load (_, p) | Store (p, _) -> Some p | _ -> None

let defined_reg = function
  | Mov (d, _) | Bin (_, d, _, _) | Load (d, _) | Gep (d, _, _, _)
  | Idx (d, _, _, _) | Alloc (d, _) | Alloc_arr (d, _, _) ->
    Some d
  | Call (d, _, _) | Atomic_call (d, _, _) | Intr (d, _, _) -> d
  | Store _ | Alp _ -> None

let callee = function Call (_, f, _) -> Some f | _ -> None

(** Human-readable rendering of TIR programs, for debugging and for the
    anchor-table listing that reproduces Figure 3. *)

val operand : Format.formatter -> Ir.operand -> unit
val op : Format.formatter -> Ir.op -> unit
val inst : Format.formatter -> Ir.inst -> unit
val term : Format.formatter -> Ir.term -> unit
val func : Format.formatter -> Ir.func -> unit
val program : Format.formatter -> Ir.program -> unit

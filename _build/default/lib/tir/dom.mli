(** Control-flow graph and dominator tree for a TIR function.

    Algorithm 1 of the paper classifies loads/stores by a depth-first
    traversal of the dominator tree and by dominance queries between
    instructions; this module provides both. Dominators are computed with
    the iterative algorithm of Cooper, Harvey and Kennedy. *)

type t

val compute : Ir.func -> t

val successors : Ir.func -> int -> int list
(** Successor block indices of block [i]. *)

val reachable : t -> int -> bool

val idom : t -> int -> int
(** Immediate dominator of a reachable block; the entry is its own idom.
    Raises [Invalid_argument] for unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: block [a] dominates block [b] (reflexive). False if
    either block is unreachable. *)

val inst_dominates : t -> int * int -> int * int -> bool
(** [(ba, ia)] dominates [(bb, ib)]: same block and earlier, or the block
    strictly dominates. Irreflexive in the same-instruction case. *)

val preorder : t -> int list
(** Depth-first preorder of the dominator tree (reachable blocks only),
    children visited in block-index order. *)

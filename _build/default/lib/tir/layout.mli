(** Program-counter assignment ("binary layout").

    After instrumentation the compiler "knows the real PC of each
    instruction" (§3.4); this module models that step. Every instruction of
    every function receives a distinct PC; PCs advance by 4 per instruction
    to mimic average x86 encoding, so the low 12 bits used by the hardware
    conflicting-PC tag genuinely alias once code regions grow past 4 KB —
    the fidelity the accuracy experiment (Table 3) depends on. *)

type loc = { l_func : string; l_block : int; l_inst : int }

type t

val assign : Ir.program -> t
(** Lay out all functions (sorted by name for determinism). *)

val pc_of_iid : t -> int -> int
(** Raises [Not_found] for an unknown iid. *)

val loc_of_pc : t -> int -> loc option

val iid_at_pc : t -> int -> int option

val truncate : bits:int -> int -> int
(** Keep the low [bits] bits, as the hardware PC tag does. *)

val num_insts : t -> int

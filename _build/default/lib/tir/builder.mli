(** Imperative construction of TIR functions.

    A builder owns one function under construction: instructions append to
    the current basic block, labels may be referenced before they are
    defined, and [finish] freezes the function and registers it with the
    program. Registers are named; temporaries are generated on demand.

    Structured-control helpers ([if_], [while_], [for_]) generate the
    block scaffolding so workload code stays readable. *)

type t

val create : Ir.program -> string -> params:string list -> t

val param : t -> string -> Ir.operand
(** Operand for a named parameter. Raises [Invalid_argument] if unknown. *)

val reg : t -> string -> Ir.reg
(** Named local register, created on first use. *)

val rv : t -> string -> Ir.operand
(** [rv t n] is [Reg (reg t n)]. *)

val imm : int -> Ir.operand

(* instruction emission; [*_to] forms write a named destination register *)

val mov : t -> Ir.reg -> Ir.operand -> unit
val bin : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
val bin_to : t -> Ir.reg -> Ir.binop -> Ir.operand -> Ir.operand -> unit
val load : t -> Ir.operand -> Ir.operand
val load_to : t -> Ir.reg -> Ir.operand -> unit
val store : t -> addr:Ir.operand -> Ir.operand -> unit

val gep : t -> Ir.operand -> string -> string -> Ir.operand
(** [gep t base struct_name field_name] — field address. *)

val idx : t -> Ir.operand -> esize:int -> Ir.operand -> Ir.operand
(** [idx t base ~esize i] — address of element [i] of an array whose
    elements are [esize] words. *)

val alloc : t -> string -> Ir.operand
val alloc_arr : t -> string -> Ir.operand -> Ir.operand
val call : t -> string -> Ir.operand list -> unit
val call_v : t -> string -> Ir.operand list -> Ir.operand
val atomic_call : t -> int -> Ir.operand list -> unit
val atomic_call_v : t -> int -> Ir.operand list -> Ir.operand
val rng : t -> Ir.operand -> Ir.operand
(** Uniform int in [0, bound). *)

val thread_id : t -> Ir.operand
val work : t -> Ir.operand -> unit
val print : t -> Ir.operand -> unit
val abort_tx : t -> unit

(* control flow *)

val block : t -> string -> unit
(** Begin a new basic block. The current block must already be terminated. *)

val jmp : t -> string -> unit
val br : t -> Ir.operand -> string -> string -> unit
val ret : t -> Ir.operand option -> unit

val if_ : t -> Ir.operand -> (t -> unit) -> (t -> unit) -> unit
(** [if_ t c then_ else_] — branches join after both arms (arms may also
    return). *)

val when_ : t -> Ir.operand -> (t -> unit) -> unit

val while_ : t -> (t -> Ir.operand) -> (t -> unit) -> unit
(** [while_ t cond body] — loop while [cond] evaluates nonzero. *)

val for_ : t -> from:Ir.operand -> below:Ir.operand -> (t -> Ir.operand -> unit) -> unit
(** [for_ t ~from ~below body] — counted loop; body receives the index. *)

val finish : t -> Ir.func
(** Freeze and register the function. The current block must be
    terminated. *)

type t = {
  nblocks : int;
  reach : bool array;
  idoms : int array; (* -1 for unreachable *)
  (* interval numbering of the dominator tree for O(1) dominance queries *)
  tin : int array;
  tout : int array;
  pre : int list;
}

let successors (f : Ir.func) i =
  match f.Ir.blocks.(i).Ir.term with
  | Ir.Jmp l -> [ Ir.block_index f l ]
  | Ir.Br (_, l1, l2) ->
    let a = Ir.block_index f l1 and b = Ir.block_index f l2 in
    if a = b then [ a ] else [ a; b ]
  | Ir.Ret _ -> []

(* reverse postorder of the CFG from the entry *)
let rpo f =
  let n = Array.length f.Ir.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (successors f i);
      order := i :: !order
    end
  in
  dfs 0;
  (!order, visited)

let compute (f : Ir.func) =
  let n = Array.length f.Ir.blocks in
  let order, reach = rpo f in
  let rpo_num = Array.make n (-1) in
  List.iteri (fun k b -> rpo_num.(b) <- k) order;
  let preds = Array.make n [] in
  Array.iteri
    (fun i _ ->
      if reach.(i) then
        List.iter (fun s -> preds.(s) <- i :: preds.(s)) (successors f i))
    f.Ir.blocks;
  let idoms = Array.make n (-1) in
  idoms.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let processed = List.filter (fun p -> idoms.(p) <> -1) preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idoms.(b) <> new_idom then begin
              idoms.(b) <- new_idom;
              changed := true
            end
        end)
      order
  done;
  (* dominator-tree children, then DFS numbering *)
  let children = Array.make n [] in
  Array.iteri
    (fun b id -> if b <> 0 && id <> -1 then children.(id) <- b :: children.(id))
    idoms;
  Array.iteri (fun i c -> children.(i) <- List.sort compare c) children;
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let pre = ref [] in
  let rec dfs b =
    incr clock;
    tin.(b) <- !clock;
    pre := b :: !pre;
    List.iter dfs children.(b);
    incr clock;
    tout.(b) <- !clock
  in
  if reach.(0) then dfs 0;
  { nblocks = n; reach; idoms; tin; tout; pre = List.rev !pre }

let reachable t i = i >= 0 && i < t.nblocks && t.reach.(i)

let idom t i =
  if not (reachable t i) then invalid_arg "Dom.idom: unreachable block";
  t.idoms.(i)

let dominates t a b =
  reachable t a && reachable t b && t.tin.(a) <= t.tin.(b) && t.tout.(b) <= t.tout.(a)

let inst_dominates t (ba, ia) (bb, ib) =
  if ba = bb then ia < ib
  else reachable t ba && reachable t bb && t.tin.(ba) < t.tin.(bb) && t.tout.(bb) < t.tout.(ba)

let preorder t = t.pre

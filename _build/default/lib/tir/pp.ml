let operand ppf = function
  | Ir.Reg r -> Format.fprintf ppf "r%d" r
  | Ir.Imm n -> Format.fprintf ppf "#%d" n

let binop_name = function
  | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul" | Ir.Div -> "div"
  | Ir.Rem -> "rem" | Ir.And -> "and" | Ir.Or -> "or" | Ir.Xor -> "xor"
  | Ir.Shl -> "shl" | Ir.Shr -> "shr" | Ir.Eq -> "eq" | Ir.Ne -> "ne"
  | Ir.Lt -> "lt" | Ir.Le -> "le" | Ir.Gt -> "gt" | Ir.Ge -> "ge"

let intr_name = function
  | Ir.Rng -> "rng"
  | Ir.Thread_id -> "thread_id"
  | Ir.Work -> "work"
  | Ir.Print -> "print"
  | Ir.Abort_tx -> "abort_tx"

let args ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    operand ppf l

let op ppf = function
  | Ir.Mov (d, v) -> Format.fprintf ppf "r%d = %a" d operand v
  | Ir.Bin (b, d, x, y) ->
    Format.fprintf ppf "r%d = %s %a, %a" d (binop_name b) operand x operand y
  | Ir.Load (d, a) -> Format.fprintf ppf "r%d = load [r%d]" d a
  | Ir.Store (a, v) -> Format.fprintf ppf "store [r%d], %a" a operand v
  | Ir.Gep (d, b, s, f) -> Format.fprintf ppf "r%d = gep r%d, %s.%d" d b s f
  | Ir.Idx (d, b, e, i) -> Format.fprintf ppf "r%d = idx r%d, %d * %a" d b e operand i
  | Ir.Alloc (d, s) -> Format.fprintf ppf "r%d = alloc %s" d s
  | Ir.Alloc_arr (d, s, n) -> Format.fprintf ppf "r%d = alloc_arr %s[%a]" d s operand n
  | Ir.Call (d, f, a) ->
    (match d with
    | Some d -> Format.fprintf ppf "r%d = call %s(%a)" d f args a
    | None -> Format.fprintf ppf "call %s(%a)" f args a)
  | Ir.Atomic_call (d, ab, a) ->
    (match d with
    | Some d -> Format.fprintf ppf "r%d = atomic %d(%a)" d ab args a
    | None -> Format.fprintf ppf "atomic %d(%a)" ab args a)
  | Ir.Intr (d, i, a) ->
    (match d with
    | Some d -> Format.fprintf ppf "r%d = %s(%a)" d (intr_name i) args a
    | None -> Format.fprintf ppf "%s(%a)" (intr_name i) args a)
  | Ir.Alp a ->
    Format.fprintf ppf "alp site=%d addr=r%d anchor=i%d" a.Ir.alp_site a.Ir.alp_addr
      a.Ir.alp_anchor_iid

let inst ppf (i : Ir.inst) = Format.fprintf ppf "i%-4d %a" i.Ir.iid op i.Ir.op

let term ppf = function
  | Ir.Jmp l -> Format.fprintf ppf "jmp %s" l
  | Ir.Br (c, l1, l2) -> Format.fprintf ppf "br %a, %s, %s" operand c l1 l2
  | Ir.Ret None -> Format.fprintf ppf "ret"
  | Ir.Ret (Some v) -> Format.fprintf ppf "ret %a" operand v

let func ppf (f : Ir.func) =
  Format.fprintf ppf "@[<v>func %s(%s) [%d regs]@," f.Ir.fname
    (String.concat ", " (Array.to_list f.Ir.params))
    f.Ir.nregs;
  Array.iter
    (fun b ->
      Format.fprintf ppf "%s:@," b.Ir.blabel;
      Array.iter (fun i -> Format.fprintf ppf "  %a@," inst i) b.Ir.insts;
      Format.fprintf ppf "  %a@," term b.Ir.term)
    f.Ir.blocks;
  Format.fprintf ppf "@]"

let program ppf (p : Ir.program) =
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) p.Ir.funcs [] in
  List.iter
    (fun n -> Format.fprintf ppf "%a@." func (Ir.find_func p n))
    (List.sort compare names);
  Array.iter
    (fun a ->
      Format.fprintf ppf "atomic %d %S -> %s@." a.Ir.ab_id a.Ir.ab_name a.Ir.ab_func)
    p.Ir.atomics

type loc = { l_func : string; l_block : int; l_inst : int }

type t = {
  pc_of : (int, int) Hashtbl.t; (* iid -> pc *)
  at_pc : (int, loc * int) Hashtbl.t; (* pc -> loc, iid *)
  mutable count : int;
}

let base_pc = 0x1000
let stride = 4

let assign (p : Ir.program) =
  let t = { pc_of = Hashtbl.create 256; at_pc = Hashtbl.create 256; count = 0 } in
  let pc = ref base_pc in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) p.Ir.funcs [] in
  let names = List.sort compare names in
  List.iter
    (fun name ->
      let f = Ir.find_func p name in
      Ir.iter_insts f (fun bi ii inst ->
          Hashtbl.replace t.pc_of inst.Ir.iid !pc;
          Hashtbl.replace t.at_pc !pc
            ({ l_func = name; l_block = bi; l_inst = ii }, inst.Ir.iid);
          pc := !pc + stride;
          t.count <- t.count + 1))
    names;
  t

let pc_of_iid t iid = Hashtbl.find t.pc_of iid

let loc_of_pc t pc = Option.map fst (Hashtbl.find_opt t.at_pc pc)

let iid_at_pc t pc = Option.map snd (Hashtbl.find_opt t.at_pc pc)

let truncate ~bits pc = pc land ((1 lsl bits) - 1)

let num_insts t = t.count

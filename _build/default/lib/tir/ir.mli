(** The transactional IR (TIR).

    A register-based, non-SSA IR with explicit struct-typed address
    computation, standing in for the LLVM IR the paper's compiler pass
    operates on. Programs consist of functions of basic blocks; a set of
    functions is designated as atomic blocks (static transactions), invoked
    through [AtomicCall], which the simulator wraps in the HTM
    begin/commit/retry protocol.

    Every instruction carries a stable unique id ([iid]), assigned at build
    time, so analyses can refer to instructions across the instrumentation
    rewrite. Program counters are assigned by {!Layout} after
    instrumentation ("after the binary code has been generated, the
    compiler knows the real PC of each instruction"). *)

type reg = int

type operand = Reg of reg | Imm of int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type intr =
  | Rng  (** [Rng [bound]]: uniform int in [0, bound) from the thread's stream *)
  | Thread_id  (** the executing thread's index *)
  | Work  (** [Work [n]]: charge [n] cycles of pure computation *)
  | Print  (** debug print of the argument *)
  | Abort_tx  (** explicit transaction abort (workload-level retry) *)

type op =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Load of reg * reg  (** dst <- [addr] *)
  | Store of reg * operand  (** [addr] <- value *)
  | Gep of reg * reg * string * int
      (** dst = base + field-offset within named struct *)
  | Idx of reg * reg * int * operand
      (** dst = base + elem_size * index (array addressing) *)
  | Alloc of reg * string  (** heap-allocate one struct *)
  | Alloc_arr of reg * string * operand  (** allocate [n] structs contiguously *)
  | Call of reg option * string * operand list
  | Atomic_call of reg option * int * operand list
      (** run atomic block [ab_id] transactionally *)
  | Intr of reg option * intr * operand list
  | Alp of alp  (** advisory locking point — inserted by the compiler pass *)

and alp = {
  alp_site : int;  (** unique static ALP site id *)
  alp_addr : reg;  (** the pointer register of the following anchor *)
  alp_anchor_iid : int;  (** iid of the anchored load/store *)
}

type inst = { iid : int; op : op }

type term =
  | Jmp of string
  | Br of operand * string * string  (** nonzero -> first target *)
  | Ret of operand option

type block = { blabel : string; mutable insts : inst array; mutable term : term }

type func = {
  fname : string;
  params : string array;  (** parameter names; they occupy regs 0..n-1 *)
  mutable nregs : int;
  mutable blocks : block array;  (** entry is [blocks.(0)] *)
}

type atomic = { ab_id : int; ab_name : string; ab_func : string }

type program = {
  structs : (string, Types.strct) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable atomics : atomic array;
  mutable next_iid : int;
  mutable next_alp_site : int;
}

val create_program : unit -> program
(** Fresh empty program with the built-in [word] struct registered. *)

val add_struct : program -> Types.strct -> unit
val find_struct : program -> string -> Types.strct
val add_func : program -> func -> unit
val find_func : program -> string -> func

val add_atomic : program -> name:string -> func:string -> int
(** Register an atomic block; returns its [ab_id]. *)

val fresh_iid : program -> int
val fresh_alp_site : program -> int

val block_index : func -> string -> int
(** Index of the block labelled [l]; raises [Not_found]. *)

val iter_insts : func -> (int -> int -> inst -> unit) -> unit
(** [iter_insts f k] calls [k block_idx inst_idx inst] in layout order. *)

val is_mem_access : op -> bool
(** True for [Load] and [Store] — the instructions Algorithm 1 considers. *)

val pointer_reg : op -> reg option
(** The pointer operand of a [Load]/[Store], if any. *)

val defined_reg : op -> reg option
(** The register written by the instruction, if any. *)

val callee : op -> string option
(** Direct callee of a [Call]. *)

(** Struct types of the transactional IR.

    Every field occupies one word. A field is either a scalar or a pointer
    to a named struct; that per-field pointer typing is what makes the Data
    Structure Analysis field-sensitive, exactly as LLVM's
    getelementptr-derived type information does for Lattner's DSA. *)

type fkind =
  | Scalar
  | Ptr of string  (** name of the pointed-to struct *)

type field = { fname : string; fkind : fkind }

type strct = { sname : string; sfields : field array }

val make : string -> (string * fkind) list -> strct

val size : strct -> int
(** Size in words — one word per field. *)

val field_index : strct -> string -> int
(** Raises [Not_found] if the struct has no such field. *)

val field : strct -> int -> field
(** Raises [Invalid_argument] if the index is out of bounds. *)

val word : strct
(** The built-in one-scalar-field struct used for raw word arrays. *)

lib/tir/ir.ml: Array Hashtbl Types

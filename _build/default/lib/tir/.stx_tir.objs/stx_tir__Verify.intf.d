lib/tir/verify.mli: Hashtbl Ir

lib/tir/layout.mli: Ir

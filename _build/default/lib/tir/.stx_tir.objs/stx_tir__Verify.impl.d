lib/tir/verify.ml: Array Hashtbl Ir List Option Printf Types

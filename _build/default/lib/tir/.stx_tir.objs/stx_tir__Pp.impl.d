lib/tir/pp.ml: Array Format Hashtbl Ir List String

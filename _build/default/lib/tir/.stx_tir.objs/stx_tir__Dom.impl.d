lib/tir/dom.ml: Array Ir List

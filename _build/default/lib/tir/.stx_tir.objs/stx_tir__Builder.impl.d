lib/tir/builder.ml: Array Hashtbl Ir List Printf Types

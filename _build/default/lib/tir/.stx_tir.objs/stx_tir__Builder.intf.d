lib/tir/builder.mli: Ir

lib/tir/dom.mli: Ir

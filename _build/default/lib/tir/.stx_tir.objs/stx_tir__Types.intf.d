lib/tir/types.mli:

lib/tir/types.ml: Array List Printf

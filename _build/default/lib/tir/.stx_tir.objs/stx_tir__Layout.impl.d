lib/tir/layout.ml: Hashtbl Ir List Option

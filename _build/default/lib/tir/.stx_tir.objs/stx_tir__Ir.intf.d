lib/tir/ir.mli: Hashtbl Types

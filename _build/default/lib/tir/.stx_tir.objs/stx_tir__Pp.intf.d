lib/tir/pp.mli: Format Ir

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_operand f loc = function
  | Ir.Imm _ -> ()
  | Ir.Reg r ->
    if r < 0 || r >= f.Ir.nregs then
      fail "%s: register %d out of range in %s" loc r f.Ir.fname

let check_reg f loc r =
  if r < 0 || r >= f.Ir.nregs then
    fail "%s: register %d out of range in %s" loc r f.Ir.fname

let check_struct p loc sname fidx =
  match Hashtbl.find_opt p.Ir.structs sname with
  | None -> fail "%s: unknown struct %s" loc sname
  | Some s ->
    if fidx < 0 || fidx >= Types.size s then
      fail "%s: struct %s has no field %d" loc sname fidx

let check_label f loc l =
  match Ir.block_index f l with
  | (_ : int) -> ()
  | exception Not_found -> fail "%s: unknown label %s in %s" loc l f.Ir.fname

let check_inst p f loc (inst : Ir.inst) =
  let op = check_operand f loc and rg = check_reg f loc in
  match inst.Ir.op with
  | Ir.Mov (d, v) ->
    rg d;
    op v
  | Ir.Bin (_, d, a, b) ->
    rg d;
    op a;
    op b
  | Ir.Load (d, a) ->
    rg d;
    rg a
  | Ir.Store (a, v) ->
    rg a;
    op v
  | Ir.Gep (d, b, sname, fidx) ->
    rg d;
    rg b;
    check_struct p loc sname fidx
  | Ir.Idx (d, b, esize, i) ->
    rg d;
    rg b;
    op i;
    if esize <= 0 then fail "%s: nonpositive element size" loc
  | Ir.Alloc (d, sname) ->
    rg d;
    check_struct p loc sname 0
  | Ir.Alloc_arr (d, sname, n) ->
    rg d;
    check_struct p loc sname 0;
    op n
  | Ir.Call (d, callee, args) -> begin
    Option.iter rg d;
    List.iter op args;
    match Hashtbl.find_opt p.Ir.funcs callee with
    | None -> fail "%s: call to unknown function %s" loc callee
    | Some cf ->
      if List.length args <> Array.length cf.Ir.params then
        fail "%s: call to %s with %d args, expected %d" loc callee
          (List.length args) (Array.length cf.Ir.params)
  end
  | Ir.Atomic_call (d, ab, args) ->
    Option.iter rg d;
    List.iter op args;
    if ab < 0 || ab >= Array.length p.Ir.atomics then
      fail "%s: unknown atomic block %d" loc ab;
    let root = p.Ir.atomics.(ab).Ir.ab_func in
    let rf = Ir.find_func p root in
    if List.length args <> Array.length rf.Ir.params then
      fail "%s: atomic call to %s with %d args, expected %d" loc root
        (List.length args) (Array.length rf.Ir.params)
  | Ir.Intr (d, _, args) ->
    Option.iter rg d;
    List.iter op args
  | Ir.Alp a -> rg a.Ir.alp_addr

let check_func p (f : Ir.func) =
  if Array.length f.Ir.blocks = 0 then fail "function %s has no blocks" f.Ir.fname;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      if Hashtbl.mem seen b.Ir.blabel then
        fail "duplicate label %s in %s" b.Ir.blabel f.Ir.fname;
      Hashtbl.add seen b.Ir.blabel ())
    f.Ir.blocks;
  Array.iteri
    (fun bi b ->
      let loc = Printf.sprintf "%s.%s" f.Ir.fname b.Ir.blabel in
      Array.iter (check_inst p f loc) b.Ir.insts;
      match b.Ir.term with
      | Ir.Jmp l -> check_label f loc l
      | Ir.Br (c, l1, l2) ->
        check_operand f loc c;
        check_label f loc l1;
        check_label f loc l2
      | Ir.Ret v ->
        Option.iter (check_operand f loc) v;
        ignore bi)
    f.Ir.blocks

let direct_callees (f : Ir.func) =
  let acc = ref [] in
  Ir.iter_insts f (fun _ _ inst ->
      match Ir.callee inst.Ir.op with Some c -> acc := c :: !acc | None -> ());
  !acc

let atomic_reachable p =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match Hashtbl.find_opt p.Ir.funcs name with
      | None -> ()
      | Some f -> List.iter visit (direct_callees f)
    end
  in
  Array.iter (fun a -> visit a.Ir.ab_func) p.Ir.atomics;
  seen

let check_no_nested_atomic p =
  let reach = atomic_reachable p in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt p.Ir.funcs name with
      | None -> fail "atomic block references unknown function %s" name
      | Some f ->
        Ir.iter_insts f (fun _ _ inst ->
            match inst.Ir.op with
            | Ir.Atomic_call _ ->
              fail "nested atomic call in %s (reachable from an atomic block)" name
            | _ -> ()))
    reach

let program p =
  Hashtbl.iter (fun _ f -> check_func p f) p.Ir.funcs;
  check_no_nested_atomic p

lib/dsa/dsnode.mli:

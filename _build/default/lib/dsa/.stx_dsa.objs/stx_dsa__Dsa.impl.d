lib/dsa/dsa.ml: Array Dsnode Hashtbl Ir List Option Stx_tir Types

lib/dsa/dsa.mli: Dsnode Ir Stx_tir

lib/dsa/dsnode.ml: Hashtbl List Option

type row = Cells of string list | Sep

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let fmt_f ?(dec = 2) x = Printf.sprintf "%.*f" dec x
let fmt_pct ?(dec = 0) x = Printf.sprintf "%.*f%%" dec x

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || String.contains "+-.%x" c) s

let render t =
  let ncols = List.length t.headers in
  let normalize cells =
    let rec take n = function
      | _ when n = 0 -> []
      | [] -> List.init n (fun _ -> "")
      | c :: rest -> c :: take (n - 1) rest
    in
    take ncols cells
  in
  let rows = List.rev_map (function Cells c -> Cells (normalize c) | Sep -> Sep) t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen = function
    | Sep -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells
  in
  List.iter widen rows;
  let buf = Buffer.create 256 in
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    if looks_numeric c then String.make n ' ' ^ c else c ^ String.make n ' '
  in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  line '-';
  emit t.headers;
  line '=';
  List.iter (function Cells c -> emit c | Sep -> line '-') rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

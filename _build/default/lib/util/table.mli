(** Minimal ASCII table renderer for the experiment harness. Columns are
    sized to their widest cell; numeric-looking cells are right-aligned. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    are truncated. *)

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string
(** Render including a border and header rule, newline-terminated. *)

val print : t -> unit

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float with [dec] (default 2) decimals. *)

val fmt_pct : ?dec:int -> float -> string
(** Percent with a ["%"] suffix (default 0 decimals). *)

lib/util/table.mli:

lib/util/rng.mli:

lib/util/stat.mli:

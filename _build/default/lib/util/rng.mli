(** Deterministic pseudo-random number generation for the simulator.

    Every source of nondeterminism in a simulation run is drawn from one of
    these streams, keyed by an explicit seed, so a run is exactly
    reproducible. The generator is SplitMix64 (Steele, Lea & Flood 2014):
    fast, well distributed, and trivially splittable into independent
    per-thread streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh stream from [seed]. *)

val split : t -> t
(** [split t] derives an independent stream, advancing [t]. Used to give
    each simulated thread its own stream from one master seed. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative int (62 bits). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val pick : t -> 'a array -> 'a
(** [pick t a] chooses a uniform element. Requires [a] nonempty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

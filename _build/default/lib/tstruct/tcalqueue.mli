open Stx_machine
open Stx_tir

(** Bucketed (calendar-style) min-priority queue — the stand-in for the
    paper's B+-tree priority queue. Priorities map to fixed buckets, each
    a bounded array with a count; pop takes from the lowest nonempty
    bucket, insert drops into its priority's bucket. Like the B+-tree's
    left-most leaf, the head bucket's count word is a {e stable} hot
    address across many pops (precise-mode lockable), while inserts
    scatter across bucket lines. Ordering is exact between buckets and
    FIFO-of-stack within one (fine for best-first search).

    TIR functions:
    - [stx_cq_insert cq prio data] → 1, or 0 when the bucket overflowed
      (the item is dropped; size buckets generously)
    - [stx_cq_pop cq] → data of a minimum-bucket entry, or -1 when empty *)

val cq : Types.strct

val register : Ir.program -> unit

val insert_fn : string
val pop_fn : string

val setup :
  Memory.t -> Alloc.t -> nbuckets:int -> capacity:int -> width:int ->
  init:(int * int) list -> int

val host_insert : Memory.t -> int -> prio:int -> data:int -> bool
val size : Memory.t -> int -> int
val drain_order : Memory.t -> int -> int list
(** Bucket indices of remaining items, ascending (for validation). *)

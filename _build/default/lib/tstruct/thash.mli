open Stx_machine
open Stx_tir

(** Fixed-size chained hash table over {!Tlist} buckets — genome's
    "fixed-sized hash table... overloaded and prone to contention" and
    memcached's key store.

    TIR functions: [stx_ht_lookup ht key], [stx_ht_insert ht key],
    [stx_ht_delete ht key] — each hashes the key to a bucket sentinel and
    delegates to the list functions, reproducing Figure 3's anchor chain
    (htable → bucket array → list nodes). *)

val table : Types.strct
(** [htable { nbuckets; buckets }]. *)

val register : Ir.program -> unit

val lookup_fn : string
val insert_fn : string
val delete_fn : string

val setup : Memory.t -> Alloc.t -> nbuckets:int -> keys:int list -> int
(** Allocate the table (bucket sentinels contiguous) and pre-insert
    [keys]; returns the table address. *)

val mem : Memory.t -> int -> int -> bool
val size : Memory.t -> int -> int
(** Total number of keys, for validation. *)

open Stx_machine
open Stx_tir

(** Min-priority queue backed by an unbalanced BST keyed on priority — the
    task pool of the branch-and-bound TSP solver. Pops chase the left
    spine (the hot left-most node, as in the paper's B+-tree queue);
    inserts descend to scattered leaves. Duplicate priorities go right.

    TIR functions:
    - [stx_pq_insert pq prio data]
    - [stx_pq_pop pq] → data of the minimum-priority entry, or -1 when
      empty *)

val pq : Types.strct
val node : Types.strct

val register : Ir.program -> unit

val insert_fn : string
val pop_fn : string

val setup : Memory.t -> Alloc.t -> init:(int * int) list -> int
val host_insert : Memory.t -> Alloc.t -> int -> prio:int -> data:int -> unit
val to_sorted : Memory.t -> int -> (int * int) list
(** All (prio, data) pairs in priority order, for validation. *)

open Stx_machine
open Stx_tir

(** Red-black tree with parent pointers — vacation's actual table
    structure in the paper (CLRS-style insert with recolouring and
    rotations, all in TIR). Rebalancing adds transactional writes near the
    root, which is precisely the extra conflict surface the plain BST
    substitution lacked.

    TIR functions:
    - [stx_rbt_lookup tree key] → value, or -1 when absent
    - [stx_rbt_insert tree key val] → 1 if inserted (with fixup), 0 if the
      key existed (value updated)
    - [stx_rbt_update tree key delta] → new value, or -1 when absent *)

val tree : Types.strct
val node : Types.strct

val register : Ir.program -> unit

val lookup_fn : string
val insert_fn : string
val update_fn : string

val setup : Memory.t -> Alloc.t -> pairs:(int * int) list -> int
(** Build a tree by host-side inserts (same algorithm as the TIR code). *)

val host_lookup : Memory.t -> int -> int -> int option
val keys : Memory.t -> int -> int list

val check_invariants : Memory.t -> int -> (unit, string) result
(** BST order, root blackness, no red-red edges, equal black heights, and
    parent-pointer consistency. *)

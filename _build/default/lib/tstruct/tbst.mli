open Stx_machine
open Stx_tir

(** Unbalanced binary search tree with a root-holder struct — the
    relational tables of vacation. (The paper's vacation uses red-black
    trees; a BST preserves the conflict signature — root-to-leaf pointer
    chases with wandering conflict addresses — without the rebalancing
    machinery. See DESIGN.md.)

    TIR functions:
    - [stx_bst_lookup tree key] → value, or -1 when absent
    - [stx_bst_insert tree key val] → 1 if inserted, 0 if the key existed
      (value updated)
    - [stx_bst_update tree key delta] → new value, or -1 when absent *)

val tree : Types.strct
val node : Types.strct

val register : Ir.program -> unit

val lookup_fn : string
val insert_fn : string
val update_fn : string

val setup : Memory.t -> Alloc.t -> pairs:(int * int) list -> int
(** Build a balanced tree from the key/value pairs. *)

val host_lookup : Memory.t -> int -> int -> int option
val keys : Memory.t -> int -> int list
(** In-order key list (for validating the BST invariant). *)

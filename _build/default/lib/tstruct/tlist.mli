open Stx_machine
open Stx_tir

(** Sorted singly-linked integer list with a sentinel head — the IntSet
    microbenchmark structure (list-lo / list-hi) and the bucket chain of
    the hash table.

    TIR functions registered by {!register}:
    - [stx_list_lookup head key] → 1 if present else 0
    - [stx_list_insert head key] → 1 if inserted, 0 if duplicate
    - [stx_list_delete head key] → 1 if removed, 0 if absent

    All three traverse from the sentinel, so the DSA summarizes every node
    into one DSNode whose anchor sits in the traversal loop — the paper's
    canonical coarse-grain / promotion case. *)

val node : Types.strct
(** [lnode { key; next }]. A sentinel is just a node with an unused key. *)

val register : Ir.program -> unit
(** Add the struct and the three functions. Idempotent per program. *)

val lookup_fn : string
val insert_fn : string
val delete_fn : string

(* host-side helpers *)

val setup : Memory.t -> Alloc.t -> keys:int list -> int
(** Build a sorted list with the given keys; returns the sentinel address. *)

val to_list : Memory.t -> int -> int list
(** Read back the keys, in order. *)

val mem : Memory.t -> int -> int -> bool

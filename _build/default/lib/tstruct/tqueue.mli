open Stx_machine
open Stx_tir

(** Linked FIFO queue — intruder's shared task queue. Head and tail words
    sit in one struct, so enqueues and dequeues conflict on stable
    addresses, typically late in long transactions: the paper's precise-
    mode showcase.

    TIR functions: [stx_q_push q v] and [stx_q_pop q] (returns -1 when
    empty). *)

val queue : Types.strct
val qnode : Types.strct

val register : Ir.program -> unit

val push_fn : string
val pop_fn : string

val setup : Memory.t -> Alloc.t -> init:int list -> int
val to_list : Memory.t -> int -> int list
val host_push : Memory.t -> Alloc.t -> int -> int -> unit

open Stx_tir

let red = 1
let black = 0

let node =
  Types.make "rbnode"
    [
      ("key", Types.Scalar);
      ("value", Types.Scalar);
      ("color", Types.Scalar);
      ("left", Types.Ptr "rbnode");
      ("right", Types.Ptr "rbnode");
      ("parent", Types.Ptr "rbnode");
    ]

let tree = Types.make "rbtree" [ ("root", Types.Ptr "rbnode") ]

let lookup_fn = "stx_rbt_lookup"
let insert_fn = "stx_rbt_insert"
let update_fn = "stx_rbt_update"
let rot_left_fn = "stx_rbt_rot_left"
let rot_right_fn = "stx_rbt_rot_right"

let fld b base name = Builder.gep b base "rbnode" name
let load_fld b base name = Builder.load b (fld b base name)

(* --- lookup / update (plain BST walks) ---------------------------------- *)

let emit_walk b cur =
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = load_fld b (Ir.Reg cur) "key" in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.jmp b "found");
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "key") k)
        (fun b -> Builder.load_to b cur (fld b (Ir.Reg cur) "left"))
        (fun b -> Builder.load_to b cur (fld b (Ir.Reg cur) "right")))

let build_lookup p =
  let b = Builder.create p lookup_fn ~params:[ "tree"; "key" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "rbtree" "root");
  emit_walk b cur;
  Builder.ret b (Some (Ir.Imm (-1)));
  Builder.block b "found";
  Builder.ret b (Some (load_fld b (Ir.Reg cur) "value"));
  ignore (Builder.finish b)

let build_update p =
  let b = Builder.create p update_fn ~params:[ "tree"; "key"; "delta" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "rbtree" "root");
  emit_walk b cur;
  Builder.ret b (Some (Ir.Imm (-1)));
  Builder.block b "found";
  let v = load_fld b (Ir.Reg cur) "value" in
  let nv = Builder.bin b Ir.Add v (Builder.param b "delta") in
  Builder.store b ~addr:(fld b (Ir.Reg cur) "value") nv;
  Builder.ret b (Some nv);
  ignore (Builder.finish b)

(* --- rotations (CLRS) ---------------------------------------------------- *)

(* rotate left around x: [side]="right" lifts x's right child over x *)
let build_rotation p fname ~side ~other =
  let b = Builder.create p fname ~params:[ "tree"; "x" ] in
  let x = Builder.param b "x" in
  let y = Builder.reg b "y" in
  Builder.load_to b y (fld b x side);
  (* x.side = y.other; fix its parent *)
  let y_other = load_fld b (Ir.Reg y) other in
  Builder.store b ~addr:(fld b x side) y_other;
  Builder.when_ b
    (Builder.bin b Ir.Ne y_other (Ir.Imm 0))
    (fun b -> Builder.store b ~addr:(fld b y_other "parent") x);
  (* y.parent = x.parent; re-hang y where x was *)
  let xp = load_fld b x "parent" in
  Builder.store b ~addr:(fld b (Ir.Reg y) "parent") xp;
  Builder.if_ b
    (Builder.bin b Ir.Eq xp (Ir.Imm 0))
    (fun b ->
      Builder.store b
        ~addr:(Builder.gep b (Builder.param b "tree") "rbtree" "root")
        (Ir.Reg y))
    (fun b ->
      let xp_left = load_fld b xp "left" in
      Builder.if_ b
        (Builder.bin b Ir.Eq xp_left x)
        (fun b -> Builder.store b ~addr:(fld b xp "left") (Ir.Reg y))
        (fun b -> Builder.store b ~addr:(fld b xp "right") (Ir.Reg y)));
  (* y.other = x; x.parent = y *)
  Builder.store b ~addr:(fld b (Ir.Reg y) other) x;
  Builder.store b ~addr:(fld b x "parent") (Ir.Reg y);
  Builder.ret b None;
  ignore (Builder.finish b)

(* --- insert with fixup ---------------------------------------------------- *)

(* one direction of the fixup loop body; [side]/[other] select the CLRS
   left- or right-leaning case *)
let emit_fixup_case b z ~side ~other ~rot_side ~rot_other =
  let zp = Builder.reg b "zp" and zpp = Builder.reg b "zpp" in
  Builder.load_to b zp (fld b (Ir.Reg z) "parent");
  Builder.load_to b zpp (fld b (Ir.Reg zp) "parent");
  let y = Builder.reg b "y" in
  Builder.load_to b y (fld b (Ir.Reg zpp) other);
  (* uncle's colour, null-safe *)
  let ycolor = Builder.reg b "ycolor" in
  Builder.mov b ycolor (Ir.Imm black);
  Builder.when_ b
    (Builder.bin b Ir.Ne (Ir.Reg y) (Ir.Imm 0))
    (fun b -> Builder.load_to b ycolor (fld b (Ir.Reg y) "color"));
  Builder.if_ b
    (Builder.bin b Ir.Eq (Ir.Reg ycolor) (Ir.Imm red))
    (fun b ->
      (* case 1: red uncle — recolour and continue from the grandparent *)
      Builder.store b ~addr:(fld b (Ir.Reg zp) "color") (Ir.Imm black);
      Builder.store b ~addr:(fld b (Ir.Reg y) "color") (Ir.Imm black);
      Builder.store b ~addr:(fld b (Ir.Reg zpp) "color") (Ir.Imm red);
      Builder.mov b z (Ir.Reg zpp))
    (fun b ->
      (* case 2: z is the inner child — rotate it to the outside *)
      let zp_side = load_fld b (Ir.Reg zp) other in
      Builder.when_ b
        (Builder.bin b Ir.Eq zp_side (Ir.Reg z))
        (fun b ->
          Builder.mov b z (Ir.Reg zp);
          Builder.call b rot_side [ Builder.param b "tree"; Ir.Reg z ]);
      (* case 3: outer child — recolour and rotate the grandparent *)
      let zp2 = Builder.reg b "zp2" and zpp2 = Builder.reg b "zpp2" in
      Builder.load_to b zp2 (fld b (Ir.Reg z) "parent");
      Builder.load_to b zpp2 (fld b (Ir.Reg zp2) "parent");
      Builder.store b ~addr:(fld b (Ir.Reg zp2) "color") (Ir.Imm black);
      Builder.store b ~addr:(fld b (Ir.Reg zpp2) "color") (Ir.Imm red);
      Builder.call b rot_other [ Builder.param b "tree"; Ir.Reg zpp2 ]);
  ignore (side, rot_side)

let build_insert p =
  let b = Builder.create p insert_fn ~params:[ "tree"; "key"; "val" ] in
  let parent = Builder.reg b "parent" and cur = Builder.reg b "cur" in
  Builder.mov b parent (Ir.Imm 0);
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "rbtree" "root");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = load_fld b (Ir.Reg cur) "key" in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b ->
          Builder.store b ~addr:(fld b (Ir.Reg cur) "value") (Builder.param b "val");
          Builder.ret b (Some (Ir.Imm 0)));
      Builder.mov b parent (Ir.Reg cur);
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "key") k)
        (fun b -> Builder.load_to b cur (fld b (Ir.Reg cur) "left"))
        (fun b -> Builder.load_to b cur (fld b (Ir.Reg cur) "right")));
  (* link the new red node under [parent] *)
  let z = Builder.reg b "z" in
  Builder.mov b z (Builder.alloc b "rbnode");
  Builder.store b ~addr:(fld b (Ir.Reg z) "key") (Builder.param b "key");
  Builder.store b ~addr:(fld b (Ir.Reg z) "value") (Builder.param b "val");
  Builder.store b ~addr:(fld b (Ir.Reg z) "color") (Ir.Imm red);
  Builder.store b ~addr:(fld b (Ir.Reg z) "left") (Ir.Imm 0);
  Builder.store b ~addr:(fld b (Ir.Reg z) "right") (Ir.Imm 0);
  Builder.store b ~addr:(fld b (Ir.Reg z) "parent") (Ir.Reg parent);
  Builder.if_ b
    (Builder.bin b Ir.Eq (Ir.Reg parent) (Ir.Imm 0))
    (fun b ->
      Builder.store b ~addr:(fld b (Ir.Reg z) "color") (Ir.Imm black);
      Builder.store b
        ~addr:(Builder.gep b (Builder.param b "tree") "rbtree" "root")
        (Ir.Reg z);
      Builder.ret b (Some (Ir.Imm 1)))
    (fun b ->
      let pk = load_fld b (Ir.Reg parent) "key" in
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "key") pk)
        (fun b -> Builder.store b ~addr:(fld b (Ir.Reg parent) "left") (Ir.Reg z))
        (fun b -> Builder.store b ~addr:(fld b (Ir.Reg parent) "right") (Ir.Reg z)));
  (* fixup: while z's parent is red (null-safe short circuit by hand) *)
  Builder.while_ b
    (fun b ->
      let go = Builder.reg b "go" in
      Builder.mov b go (Ir.Imm 0);
      let zp = Builder.load b (fld b (Ir.Reg z) "parent") in
      Builder.when_ b
        (Builder.bin b Ir.Ne zp (Ir.Imm 0))
        (fun b ->
          let c = Builder.load b (fld b zp "color") in
          Builder.bin_to b go Ir.Eq c (Ir.Imm red));
      Ir.Reg go)
    (fun b ->
      let zp = Builder.reg b "zp_h" and zpp = Builder.reg b "zpp_h" in
      Builder.load_to b zp (fld b (Ir.Reg z) "parent");
      Builder.load_to b zpp (fld b (Ir.Reg zp) "parent");
      let zpp_left = load_fld b (Ir.Reg zpp) "left" in
      Builder.if_ b
        (Builder.bin b Ir.Eq zpp_left (Ir.Reg zp))
        (fun b ->
          emit_fixup_case b z ~side:"left" ~other:"right" ~rot_side:rot_left_fn
            ~rot_other:rot_right_fn)
        (fun b ->
          emit_fixup_case b z ~side:"right" ~other:"left" ~rot_side:rot_right_fn
            ~rot_other:rot_left_fn));
  let root = Builder.load b (Builder.gep b (Builder.param b "tree") "rbtree" "root") in
  Builder.store b ~addr:(fld b root "color") (Ir.Imm black);
  Builder.ret b (Some (Ir.Imm 1));
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "rbnode") then begin
    Ir.add_struct p node;
    Ir.add_struct p tree
  end;
  if not (Hashtbl.mem p.Ir.funcs lookup_fn) then begin
    build_rotation p rot_left_fn ~side:"right" ~other:"left";
    build_rotation p rot_right_fn ~side:"left" ~other:"right";
    build_lookup p;
    build_update p;
    build_insert p
  end

(* --- host-side mirror ----------------------------------------------------- *)

let get mem n f = Hostmem.get mem node n f
let set mem n f v = Hostmem.set mem node n f v

let host_rotate mem t x ~side ~other =
  let y = get mem x side in
  let yo = get mem y other in
  set mem x side yo;
  if yo <> 0 then set mem yo "parent" x;
  let xp = get mem x "parent" in
  set mem y "parent" xp;
  if xp = 0 then Hostmem.set mem tree t "root" y
  else if get mem xp "left" = x then set mem xp "left" y
  else set mem xp "right" y;
  set mem y other x;
  set mem x "parent" y

let host_insert mem alloc t key value =
  let rec find parent cur =
    if cur = 0 then parent
    else if get mem cur "key" = key then begin
      set mem cur "value" value;
      -1
    end
    else if key < get mem cur "key" then find cur (get mem cur "left")
    else find cur (get mem cur "right")
  in
  let parent = find 0 (Hostmem.get mem tree t "root") in
  if parent >= 0 then begin
    let z = Hostmem.alloc_struct alloc node in
    set mem z "key" key;
    set mem z "value" value;
    set mem z "color" red;
    set mem z "left" 0;
    set mem z "right" 0;
    set mem z "parent" parent;
    if parent = 0 then begin
      set mem z "color" black;
      Hostmem.set mem tree t "root" z
    end
    else begin
      if key < get mem parent "key" then set mem parent "left" z
      else set mem parent "right" z;
      let zr = ref z in
      let continue () =
        let zp = get mem !zr "parent" in
        zp <> 0 && get mem zp "color" = red
      in
      while continue () do
        let zp = get mem !zr "parent" in
        let zpp = get mem zp "parent" in
        let side, other = if get mem zpp "left" = zp then ("left", "right") else ("right", "left") in
        let y = get mem zpp other in
        if y <> 0 && get mem y "color" = red then begin
          set mem zp "color" black;
          set mem y "color" black;
          set mem zpp "color" red;
          zr := zpp
        end
        else begin
          if get mem zp other = !zr then begin
            zr := zp;
            host_rotate mem t !zr ~side:other ~other:side
          end;
          let zp2 = get mem !zr "parent" in
          let zpp2 = get mem zp2 "parent" in
          set mem zp2 "color" black;
          set mem zpp2 "color" red;
          host_rotate mem t zpp2 ~side ~other
        end
      done;
      set mem (Hostmem.get mem tree t "root") "color" black
    end
  end

let setup mem alloc ~pairs =
  let t = Hostmem.alloc_struct alloc tree in
  Hostmem.set mem tree t "root" 0;
  List.iter (fun (k, v) -> host_insert mem alloc t k v) pairs;
  t

let host_lookup mem t key =
  let rec walk n =
    if n = 0 then None
    else if get mem n "key" = key then Some (get mem n "value")
    else if key < get mem n "key" then walk (get mem n "left")
    else walk (get mem n "right")
  in
  walk (Hostmem.get mem tree t "root")

let keys mem t =
  let rec inorder n acc =
    if n = 0 then acc
    else inorder (get mem n "left") (get mem n "key" :: inorder (get mem n "right") acc)
  in
  inorder (Hostmem.get mem tree t "root") []

let check_invariants mem t =
  let root = Hostmem.get mem tree t "root" in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if root = 0 then Ok ()
  else if get mem root "color" <> black then err "root is red"
  else begin
    let exception Bad of string in
    (* returns black height; checks order, colours and parent links *)
    let rec walk n lo hi =
      if n = 0 then 1
      else begin
        let k = get mem n "key" in
        (match lo with Some l when k <= l -> raise (Bad "order (low)") | _ -> ());
        (match hi with Some h when k >= h -> raise (Bad "order (high)") | _ -> ());
        let l = get mem n "left" and r = get mem n "right" in
        if l <> 0 && get mem l "parent" <> n then raise (Bad "left parent link");
        if r <> 0 && get mem r "parent" <> n then raise (Bad "right parent link");
        if get mem n "color" = red then begin
          if l <> 0 && get mem l "color" = red then raise (Bad "red-red (left)");
          if r <> 0 && get mem r "color" = red then raise (Bad "red-red (right)")
        end;
        let bl = walk l lo (Some k) in
        let br = walk r (Some k) hi in
        if bl <> br then raise (Bad "black height");
        bl + if get mem n "color" = black then 1 else 0
      end
    in
    match walk root None None with
    | (_ : int) -> Ok ()
    | exception Bad msg -> err "%s" msg
  end

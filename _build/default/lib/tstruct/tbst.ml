open Stx_tir

let node =
  Types.make "bstnode"
    [
      ("key", Types.Scalar);
      ("value", Types.Scalar);
      ("left", Types.Ptr "bstnode");
      ("right", Types.Ptr "bstnode");
    ]

let tree = Types.make "bsttree" [ ("root", Types.Ptr "bstnode") ]

let lookup_fn = "stx_bst_lookup"
let insert_fn = "stx_bst_insert"
let update_fn = "stx_bst_update"

(* walk to the node with [key]; shared by lookup and update *)
let emit_walk b cur =
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "bstnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.jmp b "found");
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "key") k)
        (fun b -> Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "bstnode" "left"))
        (fun b -> Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "bstnode" "right")))

let build_lookup p =
  let b = Builder.create p lookup_fn ~params:[ "tree"; "key" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "bsttree" "root");
  emit_walk b cur;
  Builder.ret b (Some (Ir.Imm (-1)));
  Builder.block b "found";
  let v = Builder.load b (Builder.gep b (Ir.Reg cur) "bstnode" "value") in
  Builder.ret b (Some v);
  ignore (Builder.finish b)

let build_update p =
  let b = Builder.create p update_fn ~params:[ "tree"; "key"; "delta" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "bsttree" "root");
  emit_walk b cur;
  Builder.ret b (Some (Ir.Imm (-1)));
  Builder.block b "found";
  let v = Builder.load b (Builder.gep b (Ir.Reg cur) "bstnode" "value") in
  let nv = Builder.bin b Ir.Add v (Builder.param b "delta") in
  Builder.store b ~addr:(Builder.gep b (Ir.Reg cur) "bstnode" "value") nv;
  Builder.ret b (Some nv);
  ignore (Builder.finish b)

let build_insert p =
  let b = Builder.create p insert_fn ~params:[ "tree"; "key"; "val" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "tree") "bsttree" "root");
  Builder.when_ b
    (Builder.bin b Ir.Eq (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let n = Builder.alloc b "bstnode" in
      Builder.store b ~addr:(Builder.gep b n "bstnode" "key") (Builder.param b "key");
      Builder.store b ~addr:(Builder.gep b n "bstnode" "value") (Builder.param b "val");
      Builder.store b ~addr:(Builder.gep b n "bstnode" "left") (Ir.Imm 0);
      Builder.store b ~addr:(Builder.gep b n "bstnode" "right") (Ir.Imm 0);
      Builder.store b
        ~addr:(Builder.gep b (Builder.param b "tree") "bsttree" "root")
        n;
      Builder.ret b (Some (Ir.Imm 1)));
  Builder.while_ b
    (fun _ -> Ir.Imm 1)
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "bstnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b ->
          Builder.store b
            ~addr:(Builder.gep b (Ir.Reg cur) "bstnode" "value")
            (Builder.param b "val");
          Builder.ret b (Some (Ir.Imm 0)));
      let field = Builder.reg b "field" in
      (* choose the child side; if empty, link a fresh node there *)
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "key") k)
        (fun b -> Builder.mov b field (Builder.gep b (Ir.Reg cur) "bstnode" "left"))
        (fun b -> Builder.mov b field (Builder.gep b (Ir.Reg cur) "bstnode" "right"));
      let child = Builder.load b (Ir.Reg field) in
      Builder.when_ b
        (Builder.bin b Ir.Eq child (Ir.Imm 0))
        (fun b ->
          let n = Builder.alloc b "bstnode" in
          Builder.store b ~addr:(Builder.gep b n "bstnode" "key") (Builder.param b "key");
          Builder.store b ~addr:(Builder.gep b n "bstnode" "value") (Builder.param b "val");
          Builder.store b ~addr:(Builder.gep b n "bstnode" "left") (Ir.Imm 0);
          Builder.store b ~addr:(Builder.gep b n "bstnode" "right") (Ir.Imm 0);
          Builder.store b ~addr:(Ir.Reg field) n;
          Builder.ret b (Some (Ir.Imm 1)));
      Builder.mov b cur child);
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "bstnode") then begin
    Ir.add_struct p node;
    Ir.add_struct p tree
  end;
  if not (Hashtbl.mem p.Ir.funcs lookup_fn) then begin
    build_lookup p;
    build_update p;
    build_insert p
  end

let setup mem alloc ~pairs =
  let t = Hostmem.alloc_struct alloc tree in
  let sorted = List.sort_uniq (fun (a, _) (b, _) -> compare a b) pairs in
  let arr = Array.of_list sorted in
  let rec build lo hi =
    if lo > hi then 0
    else begin
      let mid = (lo + hi) / 2 in
      let k, v = arr.(mid) in
      let n = Hostmem.alloc_struct alloc node in
      Hostmem.set mem node n "key" k;
      Hostmem.set mem node n "value" v;
      Hostmem.set mem node n "left" (build lo (mid - 1));
      Hostmem.set mem node n "right" (build (mid + 1) hi);
      n
    end
  in
  Hostmem.set mem tree t "root" (build 0 (Array.length arr - 1));
  t

let host_lookup mem t key =
  let rec walk addr =
    if addr = 0 then None
    else
      let k = Hostmem.get mem node addr "key" in
      if k = key then Some (Hostmem.get mem node addr "value")
      else if key < k then walk (Hostmem.get mem node addr "left")
      else walk (Hostmem.get mem node addr "right")
  in
  walk (Hostmem.get mem tree t "root")

let keys mem t =
  let rec inorder addr acc =
    if addr = 0 then acc
    else
      let acc = inorder (Hostmem.get mem node addr "right") acc in
      let acc = Hostmem.get mem node addr "key" :: acc in
      inorder (Hostmem.get mem node addr "left") acc
  in
  inorder (Hostmem.get mem tree t "root") []

open Stx_tir

let node =
  Types.make "pqnode"
    [
      ("prio", Types.Scalar);
      ("data", Types.Scalar);
      ("left", Types.Ptr "pqnode");
      ("right", Types.Ptr "pqnode");
    ]

let pq = Types.make "pq" [ ("root", Types.Ptr "pqnode") ]

let insert_fn = "stx_pq_insert"
let pop_fn = "stx_pq_pop"

let emit_new_node b =
  let n = Builder.alloc b "pqnode" in
  Builder.store b ~addr:(Builder.gep b n "pqnode" "prio") (Builder.param b "prio");
  Builder.store b ~addr:(Builder.gep b n "pqnode" "data") (Builder.param b "data");
  Builder.store b ~addr:(Builder.gep b n "pqnode" "left") (Ir.Imm 0);
  Builder.store b ~addr:(Builder.gep b n "pqnode" "right") (Ir.Imm 0);
  n

let build_insert p =
  let b = Builder.create p insert_fn ~params:[ "pq"; "prio"; "data" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "pq") "pq" "root");
  Builder.when_ b
    (Builder.bin b Ir.Eq (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let n = emit_new_node b in
      Builder.store b ~addr:(Builder.gep b (Builder.param b "pq") "pq" "root") n;
      Builder.ret b None);
  Builder.while_ b
    (fun _ -> Ir.Imm 1)
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "pqnode" "prio") in
      let field = Builder.reg b "field" in
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.param b "prio") k)
        (fun b -> Builder.mov b field (Builder.gep b (Ir.Reg cur) "pqnode" "left"))
        (fun b -> Builder.mov b field (Builder.gep b (Ir.Reg cur) "pqnode" "right"));
      let child = Builder.load b (Ir.Reg field) in
      Builder.when_ b
        (Builder.bin b Ir.Eq child (Ir.Imm 0))
        (fun b ->
          let n = emit_new_node b in
          Builder.store b ~addr:(Ir.Reg field) n;
          Builder.ret b None);
      Builder.mov b cur child);
  Builder.ret b None;
  ignore (Builder.finish b)

let build_pop p =
  let b = Builder.create p pop_fn ~params:[ "pq" ] in
  let cur = Builder.reg b "cur" and parent = Builder.reg b "parent" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "pq") "pq" "root");
  Builder.when_ b
    (Builder.bin b Ir.Eq (Ir.Reg cur) (Ir.Imm 0))
    (fun b -> Builder.ret b (Some (Ir.Imm (-1))));
  Builder.mov b parent (Ir.Imm 0);
  let l = Builder.reg b "l" in
  Builder.load_to b l (Builder.gep b (Ir.Reg cur) "pqnode" "left");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg l) (Ir.Imm 0))
    (fun b ->
      Builder.mov b parent (Ir.Reg cur);
      Builder.mov b cur (Ir.Reg l);
      Builder.load_to b l (Builder.gep b (Ir.Reg cur) "pqnode" "left"));
  (* cur is the minimum: replace it with its right child *)
  let r = Builder.load b (Builder.gep b (Ir.Reg cur) "pqnode" "right") in
  Builder.if_ b
    (Builder.bin b Ir.Eq (Ir.Reg parent) (Ir.Imm 0))
    (fun b -> Builder.store b ~addr:(Builder.gep b (Builder.param b "pq") "pq" "root") r)
    (fun b -> Builder.store b ~addr:(Builder.gep b (Ir.Reg parent) "pqnode" "left") r);
  let d = Builder.load b (Builder.gep b (Ir.Reg cur) "pqnode" "data") in
  Builder.ret b (Some d);
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "pqnode") then begin
    Ir.add_struct p node;
    Ir.add_struct p pq
  end;
  if not (Hashtbl.mem p.Ir.funcs insert_fn) then begin
    build_insert p;
    build_pop p
  end

let host_insert mem alloc q ~prio ~data =
  let n = Hostmem.alloc_struct alloc node in
  Hostmem.set mem node n "prio" prio;
  Hostmem.set mem node n "data" data;
  Hostmem.set mem node n "left" 0;
  Hostmem.set mem node n "right" 0;
  let root = Hostmem.get mem pq q "root" in
  if root = 0 then Hostmem.set mem pq q "root" n
  else begin
    let rec place cur =
      let k = Hostmem.get mem node cur "prio" in
      let field = if prio < k then "left" else "right" in
      let child = Hostmem.get mem node cur field in
      if child = 0 then Hostmem.set mem node cur field n else place child
    in
    place root
  end

let setup mem alloc ~init =
  let q = Hostmem.alloc_struct alloc pq in
  Hostmem.set mem pq q "root" 0;
  List.iter (fun (prio, data) -> host_insert mem alloc q ~prio ~data) init;
  q

let to_sorted mem q =
  let rec inorder addr acc =
    if addr = 0 then acc
    else
      let acc = inorder (Hostmem.get mem node addr "right") acc in
      let acc =
        (Hostmem.get mem node addr "prio", Hostmem.get mem node addr "data") :: acc
      in
      inorder (Hostmem.get mem node addr "left") acc
  in
  inorder (Hostmem.get mem pq q "root") []

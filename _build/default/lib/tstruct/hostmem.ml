open Stx_machine
open Stx_tir

let set mem s addr field v = Memory.store mem (addr + Types.field_index s field) v
let get mem s addr field = Memory.load mem (addr + Types.field_index s field)
let alloc_struct alloc s = Alloc.alloc_shared alloc (Types.size s)
let alloc_array alloc s n = Alloc.alloc_shared alloc (n * Types.size s)
let elem s base i = base + (i * Types.size s)

open Stx_tir

let table =
  Types.make "htable" [ ("nbuckets", Types.Scalar); ("buckets", Types.Ptr "lnode") ]

let lookup_fn = "stx_ht_lookup"
let insert_fn = "stx_ht_insert"
let delete_fn = "stx_ht_delete"

(* each operation: load nbuckets, index the sentinel array, run the list op *)
let build_op p fname list_fn =
  let b = Builder.create p fname ~params:[ "ht"; "key" ] in
  let nb = Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "nbuckets") in
  let slot = Builder.bin b Ir.Rem (Builder.param b "key") nb in
  let buckets = Builder.load b (Builder.gep b (Builder.param b "ht") "htable" "buckets") in
  let sentinel = Builder.idx b buckets ~esize:(Types.size Tlist.node) slot in
  let r = Builder.call_v b list_fn [ sentinel; Builder.param b "key" ] in
  Builder.ret b (Some r);
  ignore (Builder.finish b)

let register p =
  Tlist.register p;
  if not (Hashtbl.mem p.Ir.structs "htable") then Ir.add_struct p table;
  if not (Hashtbl.mem p.Ir.funcs lookup_fn) then begin
    build_op p lookup_fn Tlist.lookup_fn;
    build_op p insert_fn Tlist.insert_fn;
    build_op p delete_fn Tlist.delete_fn
  end

let bucket_of mem ht key =
  let nb = Hostmem.get mem table ht "nbuckets" in
  let buckets = Hostmem.get mem table ht "buckets" in
  Hostmem.elem Tlist.node buckets (key mod nb)

let host_insert mem alloc ht key =
  let sentinel = bucket_of mem ht key in
  let rec find prev =
    let next = Hostmem.get mem Tlist.node prev "next" in
    if next = 0 then prev
    else if Hostmem.get mem Tlist.node next "key" >= key then prev
    else find next
  in
  let prev = find sentinel in
  let next = Hostmem.get mem Tlist.node prev "next" in
  let dup = next <> 0 && Hostmem.get mem Tlist.node next "key" = key in
  if not dup then begin
    let n = Hostmem.alloc_struct alloc Tlist.node in
    Hostmem.set mem Tlist.node n "key" key;
    Hostmem.set mem Tlist.node n "next" next;
    Hostmem.set mem Tlist.node prev "next" n
  end

let setup mem alloc ~nbuckets ~keys =
  let ht = Hostmem.alloc_struct alloc table in
  let buckets = Hostmem.alloc_array alloc Tlist.node nbuckets in
  for i = 0 to nbuckets - 1 do
    let s = Hostmem.elem Tlist.node buckets i in
    Hostmem.set mem Tlist.node s "key" 0;
    Hostmem.set mem Tlist.node s "next" 0
  done;
  Hostmem.set mem table ht "nbuckets" nbuckets;
  Hostmem.set mem table ht "buckets" buckets;
  List.iter (fun k -> host_insert mem alloc ht k) keys;
  ht

let mem memory ht key = Tlist.mem memory (bucket_of memory ht key) key

let size memory ht =
  let nb = Hostmem.get memory table ht "nbuckets" in
  let buckets = Hostmem.get memory table ht "buckets" in
  let total = ref 0 in
  for i = 0 to nb - 1 do
    total := !total + List.length (Tlist.to_list memory (Hostmem.elem Tlist.node buckets i))
  done;
  !total

open Stx_machine
open Stx_tir

(** Host-side access to struct fields in simulated memory, for workload
    setup (built before the simulated threads start, so no cycles are
    charged) and for test validation. Field offsets mirror the TIR layout:
    one word per field, in declaration order. *)

val set : Memory.t -> Types.strct -> int -> string -> int -> unit
(** [set mem s addr field v] writes [addr.field <- v]. *)

val get : Memory.t -> Types.strct -> int -> string -> int

val alloc_struct : Alloc.t -> Types.strct -> int
(** Shared-arena allocation of one struct. *)

val alloc_array : Alloc.t -> Types.strct -> int -> int
(** Contiguous array of [n] structs; returns the base address. *)

val elem : Types.strct -> int -> int -> int
(** [elem s base i] — address of element [i] in an array of [s]. *)

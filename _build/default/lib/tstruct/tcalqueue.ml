open Stx_tir

let cq =
  Types.make "calqueue"
    [
      ("nbuckets", Types.Scalar);
      ("capacity", Types.Scalar);
      ("width", Types.Scalar);
      ("buckets", Types.Ptr "word");
    ]

let insert_fn = "stx_cq_insert"
let pop_fn = "stx_cq_pop"

(* bucket layout: [count; item_0 .. item_{capacity-1}]; with capacity 7 a
   bucket is exactly one cache line *)

let build_insert p =
  let b = Builder.create p insert_fn ~params:[ "cq"; "prio"; "data" ] in
  let nb = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "nbuckets") in
  let cap = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "capacity") in
  let w = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "width") in
  let bkts = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "buckets") in
  let slot = Builder.reg b "slot" in
  Builder.mov b slot (Builder.bin b Ir.Div (Builder.param b "prio") w);
  Builder.when_ b
    (Builder.bin b Ir.Ge (Ir.Reg slot) nb)
    (fun b -> Builder.mov b slot (Builder.bin b Ir.Sub nb (Ir.Imm 1)));
  let stride = Builder.bin b Ir.Add cap (Ir.Imm 1) in
  let base = Builder.idx b bkts ~esize:1 (Builder.bin b Ir.Mul (Ir.Reg slot) stride) in
  let cnt = Builder.load b base in
  Builder.when_ b
    (Builder.bin b Ir.Ge cnt cap)
    (fun b -> Builder.ret b (Some (Ir.Imm 0)));
  (* keep the bucket sorted ascending: scan for the insertion point (the
     O(log n)-ish read work of a tree push), shift the tail, drop in *)
  let pos = Builder.reg b "pos" in
  Builder.mov b pos (Ir.Imm 0);
  Builder.while_ b
    (fun b ->
      let in_range = Builder.bin b Ir.Lt (Ir.Reg pos) cnt in
      Builder.bin b Ir.And in_range
        (let item = Builder.idx b base ~esize:1 (Builder.bin b Ir.Add (Ir.Reg pos) (Ir.Imm 1)) in
         let v = Builder.load b item in
         Builder.bin b Ir.Le v (Builder.param b "data")))
    (fun b -> Builder.bin_to b pos Ir.Add (Ir.Reg pos) (Ir.Imm 1));
  let i = Builder.reg b "i" in
  Builder.mov b i cnt;
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Gt (Ir.Reg i) (Ir.Reg pos))
    (fun b ->
      let src = Builder.idx b base ~esize:1 (Ir.Reg i) in
      let dst = Builder.idx b base ~esize:1 (Builder.bin b Ir.Add (Ir.Reg i) (Ir.Imm 1)) in
      Builder.store b ~addr:dst (Builder.load b src);
      Builder.bin_to b i Ir.Sub (Ir.Reg i) (Ir.Imm 1));
  let item = Builder.idx b base ~esize:1 (Builder.bin b Ir.Add (Ir.Reg pos) (Ir.Imm 1)) in
  Builder.store b ~addr:item (Builder.param b "data");
  Builder.store b ~addr:base (Builder.bin b Ir.Add cnt (Ir.Imm 1));
  Builder.ret b (Some (Ir.Imm 1));
  ignore (Builder.finish b)

let build_pop p =
  let b = Builder.create p pop_fn ~params:[ "cq" ] in
  let nb = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "nbuckets") in
  let cap = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "capacity") in
  let bkts = Builder.load b (Builder.gep b (Builder.param b "cq") "calqueue" "buckets") in
  let stride = Builder.bin b Ir.Add cap (Ir.Imm 1) in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:nb (fun b slot ->
      let base = Builder.idx b bkts ~esize:1 (Builder.bin b Ir.Mul slot stride) in
      let cnt = Builder.load b base in
      Builder.when_ b
        (Builder.bin b Ir.Gt cnt (Ir.Imm 0))
        (fun b ->
          let item = Builder.idx b base ~esize:1 cnt in
          let d = Builder.load b item in
          Builder.store b ~addr:base (Builder.bin b Ir.Sub cnt (Ir.Imm 1));
          Builder.ret b (Some d)));
  Builder.ret b (Some (Ir.Imm (-1)));
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "calqueue") then Ir.add_struct p cq;
  if not (Hashtbl.mem p.Ir.funcs insert_fn) then begin
    build_insert p;
    build_pop p
  end

let fields mem q =
  ( Hostmem.get mem cq q "nbuckets",
    Hostmem.get mem cq q "capacity",
    Hostmem.get mem cq q "width",
    Hostmem.get mem cq q "buckets" )

let host_insert mem q ~prio ~data =
  let nb, cap, w, bkts = fields mem q in
  let slot = min (prio / w) (nb - 1) in
  let base = bkts + (slot * (cap + 1)) in
  let cnt = Stx_machine.Memory.load mem base in
  if cnt >= cap then false
  else begin
    Stx_machine.Memory.store mem (base + 1 + cnt) data;
    Stx_machine.Memory.store mem base (cnt + 1);
    true
  end

let setup mem alloc ~nbuckets ~capacity ~width ~init =
  let q = Hostmem.alloc_struct alloc cq in
  let bkts = Stx_machine.Alloc.alloc_shared alloc (nbuckets * (capacity + 1)) in
  Hostmem.set mem cq q "nbuckets" nbuckets;
  Hostmem.set mem cq q "capacity" capacity;
  Hostmem.set mem cq q "width" width;
  Hostmem.set mem cq q "buckets" bkts;
  List.iter (fun (prio, data) -> ignore (host_insert mem q ~prio ~data)) init;
  q

let size mem q =
  let nb, cap, _, bkts = fields mem q in
  let total = ref 0 in
  for slot = 0 to nb - 1 do
    total := !total + Stx_machine.Memory.load mem (bkts + (slot * (cap + 1)))
  done;
  !total

let drain_order mem q =
  let nb, cap, _, bkts = fields mem q in
  let acc = ref [] in
  for slot = nb - 1 downto 0 do
    let cnt = Stx_machine.Memory.load mem (bkts + (slot * (cap + 1))) in
    for _ = 1 to cnt do
      acc := slot :: !acc
    done
  done;
  !acc

lib/tstruct/tlist.mli: Alloc Ir Memory Stx_machine Stx_tir Types

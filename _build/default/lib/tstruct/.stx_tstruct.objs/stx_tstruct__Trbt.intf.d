lib/tstruct/trbt.mli: Alloc Ir Memory Stx_machine Stx_tir Types

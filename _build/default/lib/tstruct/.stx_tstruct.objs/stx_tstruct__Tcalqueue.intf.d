lib/tstruct/tcalqueue.mli: Alloc Ir Memory Stx_machine Stx_tir Types

lib/tstruct/hostmem.mli: Alloc Memory Stx_machine Stx_tir Types

lib/tstruct/tqueue.mli: Alloc Ir Memory Stx_machine Stx_tir Types

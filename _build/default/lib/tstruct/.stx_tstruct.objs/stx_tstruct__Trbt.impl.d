lib/tstruct/trbt.ml: Builder Hashtbl Hostmem Ir List Printf Stx_tir Types

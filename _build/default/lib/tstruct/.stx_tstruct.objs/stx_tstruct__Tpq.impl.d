lib/tstruct/tpq.ml: Builder Hashtbl Hostmem Ir List Stx_tir Types

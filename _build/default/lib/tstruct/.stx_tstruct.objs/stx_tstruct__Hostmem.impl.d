lib/tstruct/hostmem.ml: Alloc Memory Stx_machine Stx_tir Types

lib/tstruct/thash.mli: Alloc Ir Memory Stx_machine Stx_tir Types

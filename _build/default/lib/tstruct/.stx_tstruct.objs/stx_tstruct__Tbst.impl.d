lib/tstruct/tbst.ml: Array Builder Hashtbl Hostmem Ir List Stx_tir Types

lib/tstruct/tlist.ml: Builder Hashtbl Hostmem Ir List Stx_tir Types

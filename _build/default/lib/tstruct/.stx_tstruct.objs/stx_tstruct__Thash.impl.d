lib/tstruct/thash.ml: Builder Hashtbl Hostmem Ir List Stx_tir Tlist Types

lib/tstruct/tqueue.ml: Builder Hashtbl Hostmem Ir List Stx_tir Types

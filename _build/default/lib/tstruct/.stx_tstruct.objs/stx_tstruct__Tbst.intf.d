lib/tstruct/tbst.mli: Alloc Ir Memory Stx_machine Stx_tir Types

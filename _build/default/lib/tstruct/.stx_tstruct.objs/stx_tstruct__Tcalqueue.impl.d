lib/tstruct/tcalqueue.ml: Builder Hashtbl Hostmem Ir List Stx_machine Stx_tir Types

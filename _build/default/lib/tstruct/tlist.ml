open Stx_tir

let node = Types.make "lnode" [ ("key", Types.Scalar); ("next", Types.Ptr "lnode") ]

let lookup_fn = "stx_list_lookup"
let insert_fn = "stx_list_insert"
let delete_fn = "stx_list_delete"

let build_lookup p =
  let b = Builder.create p lookup_fn ~params:[ "head"; "key" ] in
  let cur = Builder.reg b "cur" in
  Builder.load_to b cur (Builder.gep b (Builder.param b "head") "lnode" "next");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Imm 1)));
      Builder.when_ b
        (Builder.bin b Ir.Gt k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Imm 0)));
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "lnode" "next"));
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b)

let build_insert p =
  let b = Builder.create p insert_fn ~params:[ "head"; "key" ] in
  let prev = Builder.reg b "prev" and cur = Builder.reg b "cur" in
  Builder.mov b prev (Builder.param b "head");
  Builder.load_to b cur (Builder.gep b (Ir.Reg prev) "lnode" "next");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Imm 0)));
      Builder.when_ b
        (Builder.bin b Ir.Gt k (Builder.param b "key"))
        (fun b -> Builder.jmp b "splice");
      Builder.mov b prev (Ir.Reg cur);
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "lnode" "next"));
  Builder.jmp b "splice";
  Builder.block b "splice";
  let n = Builder.alloc b "lnode" in
  Builder.store b ~addr:(Builder.gep b n "lnode" "key") (Builder.param b "key");
  Builder.store b ~addr:(Builder.gep b n "lnode" "next") (Ir.Reg cur);
  Builder.store b ~addr:(Builder.gep b (Ir.Reg prev) "lnode" "next") n;
  Builder.ret b (Some (Ir.Imm 1));
  ignore (Builder.finish b)

let build_delete p =
  let b = Builder.create p delete_fn ~params:[ "head"; "key" ] in
  let prev = Builder.reg b "prev" and cur = Builder.reg b "cur" in
  Builder.mov b prev (Builder.param b "head");
  Builder.load_to b cur (Builder.gep b (Ir.Reg prev) "lnode" "next");
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let k = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "key") in
      Builder.when_ b
        (Builder.bin b Ir.Eq k (Builder.param b "key"))
        (fun b ->
          let nxt = Builder.load b (Builder.gep b (Ir.Reg cur) "lnode" "next") in
          Builder.store b ~addr:(Builder.gep b (Ir.Reg prev) "lnode" "next") nxt;
          Builder.ret b (Some (Ir.Imm 1)));
      Builder.when_ b
        (Builder.bin b Ir.Gt k (Builder.param b "key"))
        (fun b -> Builder.ret b (Some (Ir.Imm 0)));
      Builder.mov b prev (Ir.Reg cur);
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "lnode" "next"));
  Builder.ret b (Some (Ir.Imm 0));
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "lnode") then Ir.add_struct p node;
  if not (Hashtbl.mem p.Ir.funcs lookup_fn) then begin
    build_lookup p;
    build_insert p;
    build_delete p
  end

let setup mem alloc ~keys =
  let sentinel = Hostmem.alloc_struct alloc node in
  Hostmem.set mem node sentinel "key" 0;
  Hostmem.set mem node sentinel "next" 0;
  let sorted = List.sort_uniq compare keys in
  let prev = ref sentinel in
  List.iter
    (fun k ->
      let n = Hostmem.alloc_struct alloc node in
      Hostmem.set mem node n "key" k;
      Hostmem.set mem node n "next" 0;
      Hostmem.set mem node !prev "next" n;
      prev := n)
    sorted;
  sentinel

let to_list memory sentinel =
  let rec walk addr acc =
    if addr = 0 then List.rev acc
    else walk (Hostmem.get memory node addr "next") (Hostmem.get memory node addr "key" :: acc)
  in
  walk (Hostmem.get memory node sentinel "next") []

let mem memory sentinel key = List.mem key (to_list memory sentinel)

open Stx_tir

let qnode = Types.make "qnode" [ ("data", Types.Scalar); ("next", Types.Ptr "qnode") ]
let queue = Types.make "queue" [ ("head", Types.Ptr "qnode"); ("tail", Types.Ptr "qnode") ]

let push_fn = "stx_q_push"
let pop_fn = "stx_q_pop"

let build_push p =
  let b = Builder.create p push_fn ~params:[ "q"; "v" ] in
  let n = Builder.alloc b "qnode" in
  Builder.store b ~addr:(Builder.gep b n "qnode" "data") (Builder.param b "v");
  Builder.store b ~addr:(Builder.gep b n "qnode" "next") (Ir.Imm 0);
  let t = Builder.load b (Builder.gep b (Builder.param b "q") "queue" "tail") in
  Builder.if_ b
    (Builder.bin b Ir.Eq t (Ir.Imm 0))
    (fun b ->
      Builder.store b ~addr:(Builder.gep b (Builder.param b "q") "queue" "head") n;
      Builder.store b ~addr:(Builder.gep b (Builder.param b "q") "queue" "tail") n)
    (fun b ->
      Builder.store b ~addr:(Builder.gep b t "qnode" "next") n;
      Builder.store b ~addr:(Builder.gep b (Builder.param b "q") "queue" "tail") n);
  Builder.ret b None;
  ignore (Builder.finish b)

let build_pop p =
  let b = Builder.create p pop_fn ~params:[ "q" ] in
  let h = Builder.load b (Builder.gep b (Builder.param b "q") "queue" "head") in
  Builder.when_ b
    (Builder.bin b Ir.Eq h (Ir.Imm 0))
    (fun b -> Builder.ret b (Some (Ir.Imm (-1))));
  let nxt = Builder.load b (Builder.gep b h "qnode" "next") in
  Builder.store b ~addr:(Builder.gep b (Builder.param b "q") "queue" "head") nxt;
  Builder.when_ b
    (Builder.bin b Ir.Eq nxt (Ir.Imm 0))
    (fun b ->
      Builder.store b ~addr:(Builder.gep b (Builder.param b "q") "queue" "tail") (Ir.Imm 0);
      Builder.jmp b "out");
  Builder.jmp b "out";
  Builder.block b "out";
  let d = Builder.load b (Builder.gep b h "qnode" "data") in
  Builder.ret b (Some d);
  ignore (Builder.finish b)

let register p =
  if not (Hashtbl.mem p.Ir.structs "qnode") then begin
    Ir.add_struct p qnode;
    Ir.add_struct p queue
  end;
  if not (Hashtbl.mem p.Ir.funcs push_fn) then begin
    build_push p;
    build_pop p
  end

let host_push mem alloc q v =
  let n = Hostmem.alloc_struct alloc qnode in
  Hostmem.set mem qnode n "data" v;
  Hostmem.set mem qnode n "next" 0;
  let t = Hostmem.get mem queue q "tail" in
  if t = 0 then begin
    Hostmem.set mem queue q "head" n;
    Hostmem.set mem queue q "tail" n
  end
  else begin
    Hostmem.set mem qnode t "next" n;
    Hostmem.set mem queue q "tail" n
  end

let setup mem alloc ~init =
  let q = Hostmem.alloc_struct alloc queue in
  Hostmem.set mem queue q "head" 0;
  Hostmem.set mem queue q "tail" 0;
  List.iter (fun v -> host_push mem alloc q v) init;
  q

let to_list mem q =
  let rec walk addr acc =
    if addr = 0 then List.rev acc
    else walk (Hostmem.get mem qnode addr "next") (Hostmem.get mem qnode addr "data" :: acc)
  in
  walk (Hostmem.get mem queue q "head") []

(* The benchmark harness.

   Part 1 (Bechamel): one Test.make per table/figure of the paper - each
   regenerates that table/figure at a reduced workload scale so the
   end-to-end cost of the experiment pipeline (compile + simulate +
   report) is measured; plus micro-benchmarks of the simulator's hot
   primitives.

   Part 2: the full-scale reproduction of every table and figure, printed
   so `dune exec bench/main.exe` leaves the complete evaluation in its
   output. *)

open Bechamel
open Toolkit

let micro_scale = 0.05

let ctx () = Stx_harness.Exp.create ~seed:1 ~scale:micro_scale ~threads:8 ()

(* fresh context per invocation: memoization must not turn timing into a
   no-op *)
let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> ignore (Stx_harness.Reports.table1 (ctx ()))));
    Test.make ~name:"table2" (Staged.stage (fun () -> ignore (Stx_harness.Reports.table2 ())));
    Test.make ~name:"table3" (Staged.stage (fun () -> ignore (Stx_harness.Reports.table3 (ctx ()))));
    Test.make ~name:"table4" (Staged.stage (fun () -> ignore (Stx_harness.Reports.table4 (ctx ()))));
    Test.make ~name:"fig7" (Staged.stage (fun () -> ignore (Stx_harness.Reports.fig7 (ctx ()))));
    Test.make ~name:"fig8" (Staged.stage (fun () -> ignore (Stx_harness.Reports.fig8 (ctx ()))));
  ]

let micro_tests =
  let open Stx_machine in
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:8 mem in
  let cfg = Config.with_cores 4 Config.default in
  let htm = Stx_htm.Htm.create cfg mem alloc in
  let hier = Hierarchy.create cfg in
  let rng = Stx_util.Rng.create 7 in
  let counter = ref 0 in
  [
    Test.make ~name:"htm tx (begin+ld+st+commit)"
      (Staged.stage (fun () ->
           incr counter;
           let addr = 64 + (!counter mod 64 * 8) in
           Stx_htm.Htm.tx_begin htm ~core:0;
           ignore (Stx_htm.Htm.tx_load htm ~core:0 ~addr ~pc:1);
           Stx_htm.Htm.tx_store htm ~core:0 ~addr ~value:1 ~pc:2;
           ignore (Stx_htm.Htm.tx_commit htm ~core:0)));
    Test.make ~name:"cache hierarchy access"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Hierarchy.access hier ~core:0 ~line:(!counter mod 4096) ~write:false)));
    Test.make ~name:"rng next" (Staged.stage (fun () -> ignore (Stx_util.Rng.next rng)));
  ]

let run_bechamel () =
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:None () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let report name tests =
    Printf.printf "\n-- bechamel: %s --\n%!" name;
    let grouped = Test.make_grouped ~name tests in
    let results = analyze (benchmark grouped) in
    Hashtbl.iter
      (fun label result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-42s %12.0f ns/run\n" label est
        | _ -> Printf.printf "  %-42s (no estimate)\n" label)
      results
  in
  report "experiment pipeline (micro scale)" table_tests;
  report "simulator primitives" micro_tests

let run_full ~jobs () =
  (* no result store here: the point of this driver is to exercise the
     whole pipeline, but the sweep itself fans out over the domain pool *)
  let c = Stx_harness.Exp.create ~seed:1 ~scale:1.0 ~threads:16 ~jobs () in
  Stx_harness.Exp.prefetch ~progress:true c
    (Stx_harness.Exp.standard_cells c @ Stx_harness.Reports.table3_cells c);
  let section title body = Printf.printf "\n==== %s ====\n%s\n%!" title body in
  section "Table 2 (simulator configuration)" (Stx_harness.Reports.table2 ());
  section "Figure 1 (staggering schematic, from real runs)"
    (Stx_harness.Reports.fig1 ());
  section "Table 1 (baseline HTM contention)" (Stx_harness.Reports.table1 c);
  section "Table 3 (instrumentation statistics)" (Stx_harness.Reports.table3 c);
  section "Table 4 (benchmark characteristics)" (Stx_harness.Reports.table4 c);
  section "Figure 7 (performance comparison)" (Stx_harness.Reports.fig7 c);
  section "Figure 8 (aborts and wasted cycles)" (Stx_harness.Reports.fig8 c);
  section "Serialization granularity (Result 2)" (Stx_harness.Reports.granularity c)

(* --trace FILE: run the reference workload once with a full-capture
   trace, export Chrome trace_event JSON and reconcile stream vs stats;
   --policy LABEL reruns it under a non-default HTM policy bundle *)
let run_traced ~policy ~file () =
  let open Stx_workloads in
  let w =
    match Registry.find "list-hi" with
    | Some w -> w
    | None -> failwith "list-hi workload missing from the registry"
  in
  let threads = 8 in
  let tr = Stx_trace.Trace.create ~threads () in
  let mode = Stx_core.Mode.Staggered_hw in
  let spec = Workload.spec ~instrument:(Stx_core.Mode.uses_alps mode) ~scale:1.0 w in
  let stats =
    Stx_sim.Machine.run ~seed:1 ~htm_policy:policy
      ~cfg:(Stx_machine.Config.with_cores threads Stx_machine.Config.default)
      ~mode
      ~on_event:(Stx_trace.Trace.handler tr)
      spec
  in
  Stx_trace.Trace.write_chrome tr ~file;
  Printf.printf "trace: %d events (%d commits, %d aborts) -> %s\n%!"
    (Stx_trace.Trace.length tr) stats.Stx_sim.Stats.commits
    stats.Stx_sim.Stats.aborts file;
  match Stx_trace.Trace.check tr stats with
  | Ok () -> Printf.printf "trace check: ok\n%!"
  | Error errs ->
    Printf.printf "trace check: FAILED\n";
    List.iter (fun e -> Printf.printf "  %s\n" e) errs;
    exit 1

let () =
  let skip_bechamel = Array.mem "--tables-only" Sys.argv in
  let flag_value name =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let jobs =
    (* --jobs N: domain-pool width for the full reproduction part *)
    match flag_value "--jobs" with
    | None -> Domain.recommended_domain_count ()
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> n
      | _ -> failwith "--jobs expects a positive integer")
  in
  let policy =
    match flag_value "--policy" with
    | None -> Stx_policy.default
    | Some l -> (
      match Stx_policy.of_label l with
      | Ok p -> p
      | Error e -> failwith ("--policy: " ^ e))
  in
  if Array.mem "--sim-speed" Sys.argv then begin
    let scale =
      match flag_value "--scale" with
      | None -> 0.2
      | Some v -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 -> f
        | _ -> failwith "--scale expects a positive float")
    in
    let entries = Stx_harness.Bench.sim_suite ~scale () in
    print_string (Stx_harness.Bench.render_sim entries)
  end
  else
    match flag_value "--trace" with
    | Some file -> run_traced ~policy ~file ()
    | None ->
      if not skip_bechamel then run_bechamel ();
      run_full ~jobs ()

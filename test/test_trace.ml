open Stx_core
open Stx_sim
open Stx_workloads
module Trace = Stx_trace.Trace

(* The trace recorder, its invariant checker, and the Chrome exporter.
   Runs stay tiny (low scale, 4 threads) to keep the suite fast. *)

let threads = 4

let run_traced ?capacity ?(scale = 0.05) ~mode w =
  let tr = Trace.create ?capacity ~threads () in
  let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w in
  let stats =
    Machine.run ~seed:3
      ~cfg:(Stx_machine.Config.with_cores threads Stx_machine.Config.default)
      ~mode
      ~on_event:(Trace.handler tr)
      spec
  in
  (tr, stats)

let all_modes =
  [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* every workload x every mode: the replayed event stream must reconcile
   with the inline counters *)
let test_check_green_everywhere () =
  List.iter
    (fun w ->
      List.iter
        (fun mode ->
          let tr, stats = run_traced ~mode w in
          match Trace.check tr stats with
          | Ok () -> ()
          | Error errs ->
            Alcotest.failf "%s / %s:\n  %s" w.Workload.name (Mode.to_string mode)
              (String.concat "\n  " errs))
        all_modes)
    Registry.all

(* deliberately corrupting any counter must trip the checker *)
let test_check_detects_corruption () =
  let w = Option.get (Registry.find "list-hi") in
  let tr, stats = run_traced ~mode:Mode.Staggered_hw w in
  let expect_divergence name bump restore =
    bump ();
    (match Trace.check tr stats with
    | Ok () -> Alcotest.failf "corrupted %s went undetected" name
    | Error _ -> ());
    restore ();
    match Trace.check tr stats with
    | Ok () -> ()
    | Error errs ->
      Alcotest.failf "restore of %s left divergence: %s" name
        (String.concat "; " errs)
  in
  expect_divergence "commits"
    (fun () -> stats.Stats.commits <- stats.Stats.commits + 1)
    (fun () -> stats.Stats.commits <- stats.Stats.commits - 1);
  expect_divergence "aborts"
    (fun () -> stats.Stats.aborts <- stats.Stats.aborts - 1)
    (fun () -> stats.Stats.aborts <- stats.Stats.aborts + 1);
  expect_divergence "lock_acquires"
    (fun () -> stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1)
    (fun () -> stats.Stats.lock_acquires <- stats.Stats.lock_acquires - 1);
  expect_divergence "useful_cycles"
    (fun () -> stats.Stats.useful_cycles <- stats.Stats.useful_cycles + 7)
    (fun () -> stats.Stats.useful_cycles <- stats.Stats.useful_cycles - 7);
  let ab0 = Stats.ab stats 0 in
  expect_divergence "per-ab commits"
    (fun () -> ab0.Stats.ab_commits <- ab0.Stats.ab_commits + 1)
    (fun () -> ab0.Stats.ab_commits <- ab0.Stats.ab_commits - 1)

(* a ring-mode trace is bounded — and refuses to vouch for anything *)
let test_ring_bounds_and_refuses () =
  let w = Option.get (Registry.find "list-hi") in
  let tr, stats = run_traced ~capacity:128 ~mode:Mode.Staggered_hw w in
  Alcotest.(check int) "ring length" 128 (Trace.length tr);
  Alcotest.(check bool) "dropped some" true (Trace.dropped tr > 0);
  match Trace.check tr stats with
  | Ok () -> Alcotest.fail "a truncated trace must not reconcile"
  | Error (e :: _) ->
    Alcotest.(check bool) "mentions dropped events" true (contains e "dropped")
  | Error [] -> Alcotest.fail "empty error list"

let test_attribution_accounts_every_conflict () =
  let w = Option.get (Registry.find "memcached") in
  let tr, stats = run_traced ~mode:Mode.Baseline w in
  let a = Trace.abort_attribution tr in
  Alcotest.(check int) "conflict aborts" stats.Stats.conflict_aborts
    a.Trace.conflict_aborts;
  let attributed =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 a.Trace.agg_matrix
  in
  Alcotest.(check int) "matrix + unattributed covers all"
    a.Trace.conflict_aborts
    (attributed + a.Trace.unattributed);
  Alcotest.(check int) "by_ab sums to total" a.Trace.conflict_aborts
    (List.fold_left (fun acc (_, c) -> acc + c) 0 a.Trace.by_ab);
  (* no self-aborts: requester-wins dooms *other* cores *)
  Array.iteri
    (fun i row ->
      Alcotest.(check int) (Printf.sprintf "no self-abort t%d" i) 0 row.(i))
    a.Trace.agg_matrix

(* --- Chrome JSON round trip ------------------------------------------- *)

(* a deliberately small JSON reader: just enough to prove the exporter's
   output is well-formed and re-count its events (no json library in the
   dependency set, by design) *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail_at msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () <> c then fail_at (Printf.sprintf "expected %c" c); advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do advance () done;
          Buffer.add_char b '?'
        | c -> Buffer.add_char b c; advance ());
        go ()
      | '\000' -> fail_at "unterminated string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  and literal lit v = String.iter expect lit; v
  and number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do advance () done;
    if !pos = start then fail_at "expected a value";
    Num (float_of_string (String.sub s start (!pos - start)))
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then (advance (); Arr [])
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); items (v :: acc)
        | ']' -> advance (); Arr (List.rev (v :: acc))
        | _ -> fail_at "expected , or ]"
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then (advance (); Obj [])
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ((k, v) :: acc)
        | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
        | _ -> fail_at "expected , or }"
      in
      members []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail_at "trailing garbage";
  v

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_chrome_roundtrip () =
  let w = Option.get (Registry.find "list-hi") in
  let tr, stats = run_traced ~mode:Mode.Staggered_hw w in
  let file = Filename.temp_file "stx_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Trace.write_chrome tr ~file;
      let text =
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let doc = parse_json text in
      let events =
        match field "traceEvents" doc with
        | Some (Arr l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (List.length events > 0);
      let count p = List.length (List.filter p events) in
      let abort_instants =
        count (fun e ->
            field "ph" e = Some (Str "i") && field "name" e = Some (Str "abort"))
      in
      Alcotest.(check int) "abort instants = Stats.aborts" stats.Stats.aborts
        abort_instants;
      let commit_spans =
        count (fun e ->
            field "ph" e = Some (Str "X")
            &&
            match field "args" e with
            | Some a -> field "outcome" a = Some (Str "commit")
            | None -> false)
      in
      Alcotest.(check int) "commit spans = Stats.commits" stats.Stats.commits
        commit_spans;
      let lanes =
        count (fun e -> field "name" e = Some (Str "thread_name"))
      in
      Alcotest.(check int) "one metadata lane per core" threads lanes;
      (* spans never run backwards *)
      List.iter
        (fun e ->
          match (field "ph" e, field "dur" e) with
          | Some (Str "X"), Some (Num d) ->
            Alcotest.(check bool) "non-negative duration" true (d >= 0.)
          | _ -> ())
        events)

(* --- %TM accounting under merge ---------------------------------------- *)

(* two sequential shards on the same cores: the old total_cycles * threads
   denominator maxed while the numerator summed, reporting > 100% TM *)
let test_merge_keeps_pct_tx_time_bounded () =
  let mk () =
    let s = Stats.create ~threads:4 in
    s.Stats.total_cycles <- 1000;
    s.Stats.thread_cycles <- 4000;
    s.Stats.tx_mode_cycles <- 3600;
    s
  in
  let one = mk () in
  Alcotest.(check (float 1e-6)) "single shard" 90.0 (Stats.pct_tx_time one);
  let m = Stats.merge (mk ()) (mk ()) in
  Alcotest.(check (float 1e-6)) "merged stays 90%" 90.0 (Stats.pct_tx_time m);
  Alcotest.(check bool) "merged <= 100%" true (Stats.pct_tx_time m <= 100.0)

let test_merged_real_runs_stay_bounded () =
  let w = Option.get (Registry.find "ssca2") in
  let _, a = run_traced ~mode:Mode.Staggered_hw w in
  let _, b = run_traced ~mode:Mode.Baseline w in
  let m = Stats.merge a b in
  Alcotest.(check bool) "merged %TM <= 100" true (Stats.pct_tx_time m <= 100.0);
  Alcotest.(check int) "thread_cycles sum" (a.Stats.thread_cycles + b.Stats.thread_cycles)
    m.Stats.thread_cycles

let suite =
  [
    Alcotest.test_case "checker green on every workload x mode" `Slow
      test_check_green_everywhere;
    Alcotest.test_case "checker detects corrupted counters" `Quick
      test_check_detects_corruption;
    Alcotest.test_case "ring mode bounds memory, refuses to check" `Quick
      test_ring_bounds_and_refuses;
    Alcotest.test_case "attribution accounts every conflict" `Quick
      test_attribution_accounts_every_conflict;
    Alcotest.test_case "chrome JSON round trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "merge keeps %TM bounded" `Quick
      test_merge_keeps_pct_tx_time_bounded;
    Alcotest.test_case "merged real runs stay bounded" `Quick
      test_merged_real_runs_stay_bounded;
  ]

open Stx_machine

let cfg = Config.default

let test_memory_roundtrip () =
  let m = Memory.create () in
  Memory.store m 8 42;
  Alcotest.(check int) "load back" 42 (Memory.load m 8);
  Alcotest.(check int) "fresh is zero" 0 (Memory.load m 9)

let test_memory_growth () =
  let m = Memory.create ~initial_words:16 () in
  Memory.store m 1_000_000 7;
  Alcotest.(check int) "grown load" 7 (Memory.load m 1_000_000);
  Alcotest.(check int) "unwritten beyond capacity" 0 (Memory.load m 999_999)

let test_memory_rejects_null () =
  let m = Memory.create () in
  Alcotest.check_raises "store to 0" (Invalid_argument "Memory: address must be positive")
    (fun () -> Memory.store m 0 1);
  Alcotest.check_raises "load of 0" (Invalid_argument "Memory: address must be positive")
    (fun () -> ignore (Memory.load m 0))

let test_line_of () =
  Alcotest.(check int) "line 0" 0 (Memory.line_of ~words_per_line:8 7);
  Alcotest.(check int) "line 1" 1 (Memory.line_of ~words_per_line:8 8)

let test_alloc_disjoint () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  let x = Alloc.alloc a ~thread:0 4 in
  let y = Alloc.alloc a ~thread:0 4 in
  Alcotest.(check bool) "disjoint" true (abs (x - y) >= 4);
  Alcotest.(check bool) "nonnull" true (x > 0 && y > 0)

let test_alloc_line_aligned () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  for _ = 1 to 20 do
    let p = Alloc.alloc a ~thread:1 3 in
    Alcotest.(check int) "aligned" 0 (p mod 8)
  done

let test_alloc_threads_never_share_lines () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  let lines t =
    List.init 30 (fun _ -> Alloc.alloc a ~thread:t 2 / 8)
  in
  let l0 = lines 0 and l1 = lines 1 in
  List.iter
    (fun l -> Alcotest.(check bool) "no shared line" false (List.mem l l1))
    l0

let test_alloc_large_object () =
  let m = Memory.create () in
  let a = Alloc.create ~arena_words:64 ~words_per_line:8 m in
  let p = Alloc.alloc a ~thread:0 1000 in
  Memory.store m (p + 999) 5;
  Alcotest.(check int) "large object usable" 5 (Memory.load m (p + 999))

let test_alloc_rejects_nonpositive () =
  let m = Memory.create () in
  let a = Alloc.create ~words_per_line:8 m in
  Alcotest.check_raises "zero alloc"
    (Invalid_argument "Alloc.alloc: size must be positive") (fun () ->
      ignore (Alloc.alloc a ~thread:0 0))

let test_cache_hit_after_insert () =
  let c = Cache.create ~lines:64 ~ways:4 in
  Alcotest.(check bool) "miss first" false (Cache.probe c 5);
  Cache.insert c 5;
  Alcotest.(check bool) "hit after insert" true (Cache.probe c 5)

let test_cache_lru_eviction () =
  let c = Cache.create ~lines:8 ~ways:2 in
  (* set count = 4; lines 0,4,8 map to set 0 *)
  Cache.insert c 0;
  Cache.insert c 4;
  Cache.insert c 8;
  (* 0 was LRU, should be evicted *)
  Alcotest.(check bool) "evicted" false (Cache.probe c 0);
  Alcotest.(check bool) "kept 4" true (Cache.probe c 4);
  Alcotest.(check bool) "kept 8" true (Cache.probe c 8)

let test_cache_probe_refreshes_lru () =
  let c = Cache.create ~lines:8 ~ways:2 in
  Cache.insert c 0;
  Cache.insert c 4;
  ignore (Cache.probe c 0);
  (* now 4 is LRU *)
  Cache.insert c 8;
  Alcotest.(check bool) "0 survives" true (Cache.probe c 0);
  Alcotest.(check bool) "4 evicted" false (Cache.probe c 4)

let test_cache_invalidate () =
  let c = Cache.create ~lines:8 ~ways:2 in
  Cache.insert c 3;
  Cache.invalidate c 3;
  Alcotest.(check bool) "gone" false (Cache.probe c 3)

let test_hierarchy_latency_ladder () =
  let h = Hierarchy.create cfg in
  let first = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "cold miss" cfg.Config.mem_latency first;
  let second = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "l1 hit" cfg.Config.l1_latency second

let test_hierarchy_l3_sharing () =
  let h = Hierarchy.create cfg in
  ignore (Hierarchy.access h ~core:0 ~line:100 ~write:false);
  let other = Hierarchy.access h ~core:1 ~line:100 ~write:false in
  Alcotest.(check int) "other core hits shared l3" cfg.Config.l3_latency other

let test_hierarchy_write_invalidates_peers () =
  let h = Hierarchy.create cfg in
  ignore (Hierarchy.access h ~core:0 ~line:100 ~write:false);
  ignore (Hierarchy.access h ~core:1 ~line:100 ~write:true);
  let again = Hierarchy.access h ~core:0 ~line:100 ~write:false in
  Alcotest.(check int) "coherence miss back to l3" cfg.Config.l3_latency again

(* -- Linetbl: the flat open-addressed table behind the HTM sets -- *)

let test_linetbl_insert_member () =
  let t = Linetbl.create ~capacity_hint:4 () in
  Alcotest.(check bool) "empty" false (Linetbl.mem t 5);
  Linetbl.add t 5 50;
  Linetbl.add t 9 90;
  Alcotest.(check bool) "member 5" true (Linetbl.mem t 5);
  Alcotest.(check bool) "member 9" true (Linetbl.mem t 9);
  Alcotest.(check bool) "non-member" false (Linetbl.mem t 6);
  Alcotest.(check int) "length" 2 (Linetbl.length t);
  Alcotest.(check int) "value via idx" 50 (Linetbl.value_at t (Linetbl.idx t 5));
  Alcotest.(check int) "missing idx" (-1) (Linetbl.idx t 6);
  Linetbl.add t 5 51;
  Alcotest.(check int) "overwrite keeps length" 2 (Linetbl.length t);
  Alcotest.(check int) "overwritten value" 51 (Linetbl.value_at t (Linetbl.idx t 5))

let test_linetbl_add_if_absent () =
  let t = Linetbl.create () in
  Alcotest.(check bool) "first add is new" true (Linetbl.add_if_absent t 3 30);
  Alcotest.(check bool) "second add is not" false (Linetbl.add_if_absent t 3 99);
  Alcotest.(check int) "original value kept" 30 (Linetbl.value_at t (Linetbl.idx t 3))

let test_linetbl_reset_reuse () =
  let t = Linetbl.create ~capacity_hint:8 () in
  for round = 1 to 3 do
    for k = 0 to 9 do
      Linetbl.add t (k * 7) (round * k)
    done;
    Alcotest.(check int) "filled" 10 (Linetbl.length t);
    Linetbl.reset t;
    Alcotest.(check int) "reset empties" 0 (Linetbl.length t);
    for k = 0 to 9 do
      Alcotest.(check bool) "reset forgets" false (Linetbl.mem t (k * 7))
    done
  done

let test_linetbl_growth_at_capacity () =
  (* hint of 4 preallocates 16 slots; pushing far past the 50% load
     bound must grow transparently rather than overflow or drop keys *)
  let t = Linetbl.create ~capacity_hint:4 () in
  let n = 1000 in
  for k = 0 to n - 1 do
    Linetbl.add t k (k * 2)
  done;
  Alcotest.(check int) "all inserted" n (Linetbl.length t);
  Alcotest.(check bool) "capacity grew" true (Linetbl.capacity t >= 2 * n);
  for k = 0 to n - 1 do
    Alcotest.(check int) "survived growth" (k * 2)
      (Linetbl.value_at t (Linetbl.idx t k))
  done

let test_linetbl_iteration_order () =
  (* commit and stm_publish walk the write set in this order; it must be
     insertion order and must survive growth *)
  let keys = [ 40; 3; 177; 12; 9000; 1; 64; 2048 ] in
  let t = Linetbl.create ~capacity_hint:2 () in
  List.iteri (fun i k -> Linetbl.add t k i) keys;
  let seen = ref [] in
  Linetbl.iter (fun k v -> seen := (k, v) :: !seen) t;
  Alcotest.(check (list (pair int int)))
    "insertion order" (List.mapi (fun i k -> (k, i)) keys) (List.rev !seen);
  (* force growth, then re-check the prefix order is untouched *)
  for k = 10_000 to 11_000 do
    Linetbl.add t k 0
  done;
  List.iteri
    (fun i k ->
      Alcotest.(check int) "order survives growth" k (Linetbl.key_of_order t i);
      Alcotest.(check int) "value survives growth" i (Linetbl.value_of_order t i))
    keys

let test_linetbl_rejects_negative () =
  let t = Linetbl.create () in
  Alcotest.check_raises "negative key" (Invalid_argument "Linetbl.set: negative key")
    (fun () -> Linetbl.add t (-1) 0);
  Alcotest.(check bool) "mem of negative is false" false (Linetbl.mem t (-3))

let qcheck_linetbl_model =
  (* model check against Hashtbl over adversarial small keys (lots of
     collisions at 16 slots) *)
  QCheck.Test.make ~name:"linetbl: agrees with Hashtbl model" ~count:200
    QCheck.(list (pair (int_range 0 40) small_nat))
    (fun ops ->
      let t = Linetbl.create () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Linetbl.add t k v;
          Hashtbl.replace h k v)
        ops;
      Hashtbl.length h = Linetbl.length t
      && Hashtbl.fold
           (fun k v ok -> ok && Linetbl.idx t k >= 0
                          && Linetbl.value_at t (Linetbl.idx t k) = v)
           h true)

(* -- Bitmat: the dense line x core bit matrix -- *)

let test_bitmat_set_test_clear () =
  let b = Bitmat.create ~cols:128 ~rows_hint:16 () in
  Alcotest.(check bool) "initially clear" false (Bitmat.test b ~row:3 ~col:70);
  Bitmat.set b ~row:3 ~col:70;
  Bitmat.set b ~row:3 ~col:0;
  Alcotest.(check bool) "set high col" true (Bitmat.test b ~row:3 ~col:70);
  Alcotest.(check bool) "set col 0" true (Bitmat.test b ~row:3 ~col:0);
  Alcotest.(check bool) "other row clear" false (Bitmat.test b ~row:4 ~col:70);
  Bitmat.clear b ~row:3 ~col:70;
  Alcotest.(check bool) "cleared" false (Bitmat.test b ~row:3 ~col:70);
  Alcotest.(check bool) "col 0 untouched" true (Bitmat.test b ~row:3 ~col:0)

let test_bitmat_row_growth () =
  let b = Bitmat.create ~cols:16 ~rows_hint:16 () in
  Bitmat.set b ~row:5 ~col:2;
  Bitmat.set b ~row:100_000 ~col:7;
  Alcotest.(check bool) "old row survives growth" true (Bitmat.test b ~row:5 ~col:2);
  Alcotest.(check bool) "grown row" true (Bitmat.test b ~row:100_000 ~col:7);
  Alcotest.(check bool) "read past capacity is false" false
    (Bitmat.test b ~row:10_000_000 ~col:3)

let test_bitmat_row_queries () =
  let b = Bitmat.create ~cols:128 () in
  Alcotest.(check bool) "fresh row empty" true (Bitmat.row_is_empty b ~row:9);
  Bitmat.set b ~row:9 ~col:63;
  Alcotest.(check bool) "not empty" false (Bitmat.row_is_empty b ~row:9);
  Alcotest.(check bool) "has other than 5" true (Bitmat.row_has_other b ~row:9 ~except:5);
  Alcotest.(check bool) "has no other than 63" false
    (Bitmat.row_has_other b ~row:9 ~except:63);
  Bitmat.set b ~row:9 ~col:2;
  Alcotest.(check bool) "now another besides 63" true
    (Bitmat.row_has_other b ~row:9 ~except:63);
  let cols = ref [] in
  Bitmat.iter_row b ~row:9 (fun c -> cols := c :: !cols);
  Alcotest.(check (list int)) "iter_row ascending" [ 2; 63 ] (List.rev !cols)

let qcheck_bitmat_model =
  QCheck.Test.make ~name:"bitmat: agrees with set-of-pairs model" ~count:200
    QCheck.(list (triple bool (int_range 0 200) (int_range 0 99)))
    (fun ops ->
      let b = Bitmat.create ~cols:100 ~rows_hint:16 () in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (set, row, col) ->
          if set then begin
            Bitmat.set b ~row ~col;
            Hashtbl.replace m (row, col) ()
          end
          else begin
            Bitmat.clear b ~row ~col;
            Hashtbl.remove m (row, col)
          end)
        ops;
      List.for_all
        (fun (_, row, col) -> Bitmat.test b ~row ~col = Hashtbl.mem m (row, col))
        ops)

let test_config_pp () =
  let s = Format.asprintf "%a" Config.pp cfg in
  Alcotest.(check bool) "mentions L1" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

let qcheck_cache_insert_then_probe =
  QCheck.Test.make ~name:"cache: inserted line probes true immediately" ~count:300
    QCheck.(small_nat)
    (fun line ->
      let c = Cache.create ~lines:64 ~ways:4 in
      Cache.insert c line;
      Cache.probe c line)

let qcheck_alloc_alignment =
  QCheck.Test.make ~name:"alloc: always line aligned" ~count:200
    QCheck.(pair (int_range 0 7) (int_range 1 64))
    (fun (thread, size) ->
      let m = Memory.create () in
      let a = Alloc.create ~words_per_line:8 m in
      Alloc.alloc a ~thread size mod 8 = 0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "memory growth" `Quick test_memory_growth;
    Alcotest.test_case "memory rejects null" `Quick test_memory_rejects_null;
    Alcotest.test_case "line_of" `Quick test_line_of;
    Alcotest.test_case "alloc disjoint" `Quick test_alloc_disjoint;
    Alcotest.test_case "alloc line aligned" `Quick test_alloc_line_aligned;
    Alcotest.test_case "alloc threads never share lines" `Quick
      test_alloc_threads_never_share_lines;
    Alcotest.test_case "alloc large object" `Quick test_alloc_large_object;
    Alcotest.test_case "alloc rejects nonpositive" `Quick test_alloc_rejects_nonpositive;
    Alcotest.test_case "cache hit after insert" `Quick test_cache_hit_after_insert;
    Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache probe refreshes lru" `Quick test_cache_probe_refreshes_lru;
    Alcotest.test_case "cache invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "hierarchy latency ladder" `Quick test_hierarchy_latency_ladder;
    Alcotest.test_case "hierarchy l3 sharing" `Quick test_hierarchy_l3_sharing;
    Alcotest.test_case "hierarchy write invalidates peers" `Quick
      test_hierarchy_write_invalidates_peers;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    Alcotest.test_case "linetbl insert/member" `Quick test_linetbl_insert_member;
    Alcotest.test_case "linetbl add_if_absent" `Quick test_linetbl_add_if_absent;
    Alcotest.test_case "linetbl reset and reuse" `Quick test_linetbl_reset_reuse;
    Alcotest.test_case "linetbl growth at capacity bound" `Quick
      test_linetbl_growth_at_capacity;
    Alcotest.test_case "linetbl deterministic iteration order" `Quick
      test_linetbl_iteration_order;
    Alcotest.test_case "linetbl rejects negative keys" `Quick
      test_linetbl_rejects_negative;
    Alcotest.test_case "bitmat set/test/clear" `Quick test_bitmat_set_test_clear;
    Alcotest.test_case "bitmat row growth" `Quick test_bitmat_row_growth;
    Alcotest.test_case "bitmat row queries" `Quick test_bitmat_row_queries;
    q qcheck_cache_insert_then_probe;
    q qcheck_alloc_alignment;
    q qcheck_linetbl_model;
    q qcheck_bitmat_model;
  ]

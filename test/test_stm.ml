open Stx_machine
open Stx_htm
open Stx_stm
open Stx_core
open Stx_sim

(* --- unit-level interop: Stm against a live Htm ----------------------- *)

let cfg = Config.with_cores 4 Config.default

let setup ?(wire_publish = true) () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:cfg.Config.words_per_line mem in
  let htm = Htm.create cfg mem alloc in
  let stm = Stm.create htm mem alloc in
  if wire_publish then
    Htm.set_on_publish htm (Some (fun ~line -> Stm.note_published stm ~line));
  (mem, htm, stm)

let test_stm_commit_publishes_and_dooms_hw () =
  let mem, htm, stm = setup () in
  (* a speculative hardware reader of line 64... *)
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  (* ...loses to a committing software writer of the same line *)
  Stm.tx_begin stm ~core:1;
  Stm.tx_store stm ~core:1 ~addr:64 ~value:42;
  Alcotest.(check int) "nothing published before commit" 0 (Memory.load mem 64);
  Alcotest.(check bool) "software commit wins" true (Stm.tx_commit stm ~core:1);
  Alcotest.(check int) "durable value published" 42 (Memory.load mem 64);
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Stm_conflict { conf_addr; aggressor }) ->
    Alcotest.(check int) "conflict addr" 64 conf_addr;
    Alcotest.(check int) "aggressor core" 1 aggressor
  | _ -> Alcotest.fail "hardware reader should be doomed with Stm_conflict");
  ignore (Htm.tx_cleanup htm ~core:0)

let test_stm_defers_to_hw_writer () =
  let mem, htm, stm = setup () in
  (* a speculative hardware writer owns line 64 *)
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:7 ~pc:1;
  (* the software transaction must not publish over the buffered update *)
  Stm.tx_begin stm ~core:1;
  Stm.tx_store stm ~core:1 ~addr:64 ~value:99;
  Alcotest.(check bool) "software commit refuses" false (Stm.tx_commit stm ~core:1);
  Alcotest.(check bool) "reason is hw-owned" true
    (Stm.tx_cleanup stm ~core:1 = Stm.Hw_owned);
  Alcotest.(check bool) "hardware writer survives" true
    (Htm.status htm ~core:0 = Htm.Active);
  Alcotest.(check bool) "hardware commit ok" true (Htm.tx_commit htm ~core:0);
  Alcotest.(check int) "hardware value endures" 7 (Memory.load mem 64)

let test_stm_opacity_on_reread () =
  let _, _, stm = setup () in
  Stm.tx_begin stm ~core:0;
  ignore (Stm.tx_load stm ~core:0 ~addr:64);
  (* a concurrent software commit invalidates the snapshot *)
  Stm.tx_begin stm ~core:1;
  Stm.tx_store stm ~core:1 ~addr:64 ~value:5;
  Alcotest.(check bool) "writer commits" true (Stm.tx_commit stm ~core:1);
  (* the reader is doomed the moment it re-touches the line: it can never
     observe the new value inside the old snapshot *)
  ignore (Stm.tx_load stm ~core:0 ~addr:64);
  Alcotest.(check bool) "reader doomed on re-read" true
    (Stm.status stm ~core:0 = Stm.Doomed Stm.Validation);
  Alcotest.(check bool) "commit refuses" false (Stm.tx_commit stm ~core:0);
  Alcotest.(check bool) "cleanup reports validation" true
    (Stm.tx_cleanup stm ~core:0 = Stm.Validation)

let test_stm_commit_revalidates_read_set () =
  let _, _, stm = setup () in
  Stm.tx_begin stm ~core:0;
  ignore (Stm.tx_load stm ~core:0 ~addr:64);
  Stm.tx_begin stm ~core:1;
  Stm.tx_store stm ~core:1 ~addr:64 ~value:5;
  Alcotest.(check bool) "writer commits" true (Stm.tx_commit stm ~core:1);
  (* no re-read: the stale snapshot must still be caught at commit *)
  Alcotest.(check bool) "reader fails commit validation" false
    (Stm.tx_commit stm ~core:0);
  Alcotest.(check bool) "reason is validation" true
    (Stm.tx_cleanup stm ~core:0 = Stm.Validation)

let test_hw_publication_dooms_stm_reader () =
  let _, htm, stm = setup () in
  Stm.tx_begin stm ~core:0;
  ignore (Stm.tx_load stm ~core:0 ~addr:64);
  (* a hardware commit publishes into the software read set; the
     on_publish hook stamps the stripe so validation must fail *)
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:3 ~pc:1;
  Alcotest.(check bool) "hardware commit ok" true (Htm.tx_commit htm ~core:1);
  Alcotest.(check bool) "software reader fails validation" false
    (Stm.tx_commit stm ~core:0);
  Alcotest.(check bool) "reason is validation" true
    (Stm.tx_cleanup stm ~core:0 = Stm.Validation)

let test_stm_read_own_write () =
  let mem, _, stm = setup () in
  Memory.store mem 64 1;
  Stm.tx_begin stm ~core:0;
  Stm.tx_store stm ~core:0 ~addr:64 ~value:17;
  Alcotest.(check int) "buffered write read back" 17
    (Stm.tx_load stm ~core:0 ~addr:64);
  Alcotest.(check int) "memory untouched before commit" 1 (Memory.load mem 64);
  Alcotest.(check bool) "commit ok" true (Stm.tx_commit stm ~core:0);
  Alcotest.(check int) "published" 17 (Memory.load mem 64)

let test_disjoint_stm_commits_both_win () =
  let mem, _, stm = setup () in
  Stm.tx_begin stm ~core:0;
  Stm.tx_begin stm ~core:1;
  (* far-apart addresses so the stripes differ *)
  Stm.tx_store stm ~core:0 ~addr:64 ~value:1;
  Stm.tx_store stm ~core:1 ~addr:4096 ~value:2;
  Alcotest.(check bool) "first commits" true (Stm.tx_commit stm ~core:0);
  Alcotest.(check bool) "second commits" true (Stm.tx_commit stm ~core:1);
  Alcotest.(check int) "first value" 1 (Memory.load mem 64);
  Alcotest.(check int) "second value" 2 (Memory.load mem 4096)

let test_stripe_of_line_pinned () =
  (* pin the published stripe mapping: Fibonacci hashing of the line
     index — [line * 0x9E3779B1 land max_int mod nslots]. Version probes
     in a live tier must agree with the pure function. *)
  let expect ~nslots ~line =
    line * 0x9E3779B1 land max_int mod nslots
  in
  List.iter
    (fun (nslots, line) ->
      Alcotest.(check int)
        (Printf.sprintf "stripe nslots=%d line=%d" nslots line)
        (expect ~nslots ~line)
        (Stm.stripe_of_line ~nslots ~line))
    [ (256, 0); (256, 1); (256, 8); (256, 12345); (64, 7); (1, 999) ];
  (* concrete golden values so a hash change cannot slip through *)
  Alcotest.(check int) "golden line 1" 177 (Stm.stripe_of_line ~nslots:256 ~line:1);
  Alcotest.(check int) "golden line 2" 98 (Stm.stripe_of_line ~nslots:256 ~line:2);
  Alcotest.(check bool) "in range" true
    (List.for_all
       (fun line ->
         let s = Stm.stripe_of_line ~nslots:256 ~line in
         s >= 0 && s < 256)
       (List.init 1000 (fun i -> i * 13)));
  (* the live tier's version words are laid out by exactly this mapping *)
  let _, _, stm = setup () in
  let base = Stm.version_addr stm ~line:0 - Stm.stripe_of_line ~nslots:(Stm.nslots stm) ~line:0 in
  List.iter
    (fun line ->
      Alcotest.(check int)
        (Printf.sprintf "version_addr agrees for line %d" line)
        (base + Stm.stripe_of_line ~nslots:(Stm.nslots stm) ~line)
        (Stm.version_addr stm ~line))
    [ 0; 1; 5; 64; 4096 ]

(* --- machine-level: the htm-stm-lock ladder --------------------------- *)

let stm_policy ?(hw_retries = 1) ?(stm_retries = 4) () =
  Stx_policy.make
    ~fallback:
      (Stx_policy.Fallback.Stm_tier
         { retries = Some hw_retries; stm_retries })
    ()

let test_hot_counter_no_livelock () =
  (* every thread hammers one counter with a tiny hardware budget, so the
     bulk of the traffic funnels through the software tier; the attempt
     budget must bound every transaction's retries (no livelock) and the
     final count must be exact *)
  let threads = 8 and iters = 30 in
  let cfg = Config.with_cores threads Config.default in
  let memo = ref None in
  let spec0 = Test_sim.counter_spec ~iters () in
  let spec =
    {
      spec0 with
      Machine.thread_args =
        (fun env ~threads ->
          let r = spec0.Machine.thread_args env ~threads in
          memo := Some env.Machine.memory;
          r);
    }
  in
  let stats =
    Machine.run ~seed:11 ~htm_policy:(stm_policy ()) ~cfg ~mode:Mode.Staggered_hw
      spec
  in
  let v = Memory.load (Option.get !memo) !Test_sim.counter_addr in
  Alcotest.(check int) "exact final count" (threads * iters) v;
  Alcotest.(check int) "every increment committed once" (threads * iters)
    stats.Stats.commits;
  Alcotest.(check bool) "software tier engaged" true
    (stats.Stats.stm_commits + stats.Stats.stm_aborts > 0)

let test_stm_disabled_leaves_counters_zero () =
  let _, v = Test_sim.run_counter_value ~threads:4 ~iters:20 ~mode:Mode.Staggered_hw () in
  Alcotest.(check int) "baseline still correct" 80 v;
  let stats = Test_sim.run_counter ~threads:4 ~iters:20 ~mode:Mode.Staggered_hw () in
  Alcotest.(check int) "no stm commits without the tier" 0 stats.Stats.stm_commits;
  Alcotest.(check int) "no stm aborts without the tier" 0 stats.Stats.stm_aborts;
  Alcotest.(check int) "no stm-conflict aborts without the tier" 0
    stats.Stats.stm_conflict_aborts

(* trace + metrics reconciliation on real workloads under the hybrid *)

let reconcile_workload name =
  let w =
    match Stx_workloads.Registry.find name with
    | Some w -> w
    | None -> Alcotest.fail ("unknown workload " ^ name)
  in
  let threads = 4 in
  let mode = Mode.Staggered_hw in
  let spec = Stx_workloads.Workload.spec ~instrument:true ~scale:0.05 w in
  let cfg = Config.with_cores threads Config.default in
  let tr = Stx_trace.Trace.create ~threads () in
  let r =
    Stx_metrics.Run.simulate ~seed:3 ~htm_policy:(stm_policy ~hw_retries:2 ())
      ~cfg ~mode
      ~on_event:(Stx_trace.Trace.handler tr) spec
  in
  let s = r.Stx_metrics.Run.stats in
  (match Stx_trace.Trace.check tr s with
  | Ok () -> ()
  | Error es ->
    Alcotest.fail (name ^ ": trace check: " ^ String.concat "; " es));
  (match Stx_metrics.Collect.check r.Stx_metrics.Run.metrics s with
  | Ok () -> ()
  | Error es ->
    Alcotest.fail (name ^ ": metrics check: " ^ String.concat "; " es));
  s

let test_reconcile_list_hi () = ignore (reconcile_workload "list-hi")
let test_reconcile_intruder () = ignore (reconcile_workload "intruder")

let test_reconcile_genome_exercises_tier () =
  let s = reconcile_workload "genome" in
  Alcotest.(check bool) "software tier exercised" true
    (s.Stats.stm_commits + s.Stats.stm_aborts > 0)

(* the raw codec round-trips the software-tier events *)

let test_codec_roundtrip_stm_events () =
  let tr = Stx_trace.Trace.create ~threads:2 () in
  let ev time e = Stx_trace.Trace.handler tr ~time e in
  ev 0 (Machine.Tx_begin { tid = 0; ab = 1; attempt = 0; probe = false });
  ev 5
    (Machine.Tx_abort
       {
         tid = 0; ab = 1; kind = Machine.Stm_conflict; conf_line = Some 2;
         conf_pc = None; aggressor = Some 1; cycles = 5; rset = 1; wset = 0;
         probe = false;
       });
  ev 6 (Machine.Stm_begin { tid = 0; ab = 1; attempt = 1 });
  ev 20
    (Machine.Stm_abort
       {
         tid = 0; ab = 1; kind = Machine.Stm_validation; cycles = 14;
         vcycles = 4; rset = 2; wset = 1;
       });
  ev 21 (Machine.Stm_begin { tid = 0; ab = 1; attempt = 2 });
  ev 40
    (Machine.Stm_commit
       { tid = 0; ab = 1; cycles = 19; vcycles = 6; rset = 2; wset = 1 });
  let file = Filename.temp_file "stx-stm-trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Stx_trace.Trace.write_events tr ~file;
      let tr', _meta = Stx_trace.Trace.read_events ~file in
      Alcotest.(check bool) "events identical after round-trip" true
        (Stx_trace.Trace.events tr = Stx_trace.Trace.events tr'))

let suite =
  [
    Alcotest.test_case "stm commit publishes and dooms hw readers" `Quick
      test_stm_commit_publishes_and_dooms_hw;
    Alcotest.test_case "stm defers to a hw writer" `Quick
      test_stm_defers_to_hw_writer;
    Alcotest.test_case "opacity: doomed on re-read" `Quick
      test_stm_opacity_on_reread;
    Alcotest.test_case "commit re-validates the read set" `Quick
      test_stm_commit_revalidates_read_set;
    Alcotest.test_case "hw publication dooms stm reader" `Quick
      test_hw_publication_dooms_stm_reader;
    Alcotest.test_case "read own buffered write" `Quick test_stm_read_own_write;
    Alcotest.test_case "disjoint stm commits both win" `Quick
      test_disjoint_stm_commits_both_win;
    Alcotest.test_case "stripe_of_line mapping is pinned" `Quick
      test_stripe_of_line_pinned;
    Alcotest.test_case "hot counter: no livelock, exact count" `Quick
      test_hot_counter_no_livelock;
    Alcotest.test_case "stm counters stay zero without the tier" `Quick
      test_stm_disabled_leaves_counters_zero;
    Alcotest.test_case "list-hi reconciles under htm-stm-lock" `Quick
      test_reconcile_list_hi;
    Alcotest.test_case "intruder reconciles under htm-stm-lock" `Quick
      test_reconcile_intruder;
    Alcotest.test_case "genome reconciles and exercises the tier" `Quick
      test_reconcile_genome_exercises_tier;
    Alcotest.test_case "raw codec round-trips stm events" `Quick
      test_codec_roundtrip_stm_events;
  ]

open Stx_core
open Stx_machine
open Stx_sim

(* The policy engine's contract, tested from both ends: the default
   bundle must reproduce the pre-policy simulator bit-for-bit (the
   golden digests below were captured from the seed implementation on
   every workload x mode cell), and every non-default policy must keep
   the whole measurement pipeline — trace reconciliation, metrics
   reconciliation, the store codec — internally consistent. *)

(* ---------------------------------------------------------------- *)
(* stats fingerprint: a digest over every counter, frequency table
   and per-block record, byte-stable across runs *)

let fingerprint (s : Stats.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string b (str ^ "\n")) fmt in
  line "threads %d" s.Stats.threads;
  line "commits %d" s.Stats.commits;
  line "aborts %d" s.Stats.aborts;
  line "conflict_aborts %d" s.Stats.conflict_aborts;
  line "lock_sub_aborts %d" s.Stats.lock_sub_aborts;
  line "explicit_aborts %d" s.Stats.explicit_aborts;
  line "irrevocable_entries %d" s.Stats.irrevocable_entries;
  line "useful_cycles %d" s.Stats.useful_cycles;
  line "wasted_cycles %d" s.Stats.wasted_cycles;
  line "tx_mode_cycles %d" s.Stats.tx_mode_cycles;
  line "lock_wait_cycles %d" s.Stats.lock_wait_cycles;
  line "backoff_cycles %d" s.Stats.backoff_cycles;
  line "total_cycles %d" s.Stats.total_cycles;
  line "thread_cycles %d" s.Stats.thread_cycles;
  line "lock_acquires %d" s.Stats.lock_acquires;
  line "lock_timeouts %d" s.Stats.lock_timeouts;
  line "alps_executed %d" s.Stats.alps_executed;
  line "alps_lock_attempts %d" s.Stats.alps_lock_attempts;
  line "accuracy_hits %d" s.Stats.accuracy_hits;
  line "accuracy_total %d" s.Stats.accuracy_total;
  line "precise %d" s.Stats.precise;
  line "coarse %d" s.Stats.coarse;
  line "promoted %d" s.Stats.promoted;
  line "training %d" s.Stats.training;
  line "insts %d" s.Stats.insts;
  line "tx_insts %d" s.Stats.tx_insts;
  line "committed_tx_insts %d" s.Stats.committed_tx_insts;
  let freq name tbl =
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b) in
    line "%s %d" name (List.length entries);
    List.iter (fun (k, v) -> line "%d %d" k v) entries
  in
  freq "conf_addr" s.Stats.conf_addr_freq;
  freq "conf_pc" s.Stats.conf_pc_freq;
  let abs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Stats.per_ab []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b) in
  line "per_ab %d" (List.length abs);
  List.iter (fun (id, (a : Stats.ab_stat)) ->
      line "%d %d %d %d %d" id a.Stats.ab_commits a.Stats.ab_aborts
        a.Stats.ab_locks a.Stats.ab_irrevocable) abs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---------------------------------------------------------------- *)
(* golden equality: default bundle vs the pre-policy simulator        *)

let golden_seed = 3
let golden_scale = 0.05
let golden_threads = 4

(* captured from the pre-policy simulator at (seed 3, scale 0.05,
   4 threads); key is (workload, Mode.to_string) *)
let golden_digests =
  [
    (("genome", "HTM"), "9409e906789c82ad8e800c6c0e585bea");
    (("genome", "AddrOnly"), "3e0644e859e0910e4b5192d35751866a");
    (("genome", "Staggered+SW"), "cd4004fcc01ffa996889658ab66fe325");
    (("genome", "Staggered"), "831ce78ac4af764675663dc7eb383acb");
    (("intruder", "HTM"), "6ab683dbd03a87f6e1fade882e2d2ba1");
    (("intruder", "AddrOnly"), "d2d79ce9ba5f4eb7764dfee1f4164601");
    (("intruder", "Staggered+SW"), "38e293d2df993f9d3fa497497b31b5cb");
    (("intruder", "Staggered"), "c6f0dadb14391968689357c7f7fec5d3");
    (("kmeans", "HTM"), "0d9fab242116682029c82af8a56cf630");
    (("kmeans", "AddrOnly"), "6848ea595a808bb15911623cfd3c0063");
    (("kmeans", "Staggered+SW"), "ede044b2f9222342521dd24857f23bad");
    (("kmeans", "Staggered"), "e89666b71e18e89c57b6df9928b57db1");
    (("labyrinth", "HTM"), "930ff8366190ddb9070b8bb446168281");
    (("labyrinth", "AddrOnly"), "a93828a566c00ab3f5906696bf7befba");
    (("labyrinth", "Staggered+SW"), "b65f0249167035e3d2aff0d2663966b1");
    (("labyrinth", "Staggered"), "066bb2f20c551c8d46201098ec22ee06");
    (("ssca2", "HTM"), "92cfca71849b9eb6dd8699906b7af4d4");
    (("ssca2", "AddrOnly"), "92cfca71849b9eb6dd8699906b7af4d4");
    (("ssca2", "Staggered+SW"), "24a1d930d4ddee94e4ac3756e766b22e");
    (("ssca2", "Staggered"), "baf5bb27cd9587d8dabc2e6d04488a64");
    (("vacation", "HTM"), "08ab271a8660ca5c656ffafd136445ed");
    (("vacation", "AddrOnly"), "08ab271a8660ca5c656ffafd136445ed");
    (("vacation", "Staggered+SW"), "da41c84ec8234bb8699ce37199c3cbbd");
    (("vacation", "Staggered"), "d6e6d3bec62639dfe99ccc34715c0c10");
    (("list-lo", "HTM"), "9e015cb7809593c0b4ab593de3428999");
    (("list-lo", "AddrOnly"), "9e015cb7809593c0b4ab593de3428999");
    (("list-lo", "Staggered+SW"), "47d33952ca515efaa3057b21347e307c");
    (("list-lo", "Staggered"), "430825c67d3bd86f302a34df00b678b9");
    (("list-hi", "HTM"), "97897e3a55091dd08a2d694cb475f09a");
    (("list-hi", "AddrOnly"), "97897e3a55091dd08a2d694cb475f09a");
    (("list-hi", "Staggered+SW"), "f80e4a8be305b9c91e1333ee3200fe16");
    (("list-hi", "Staggered"), "42e95bb70448514197b3e9053ee179b4");
    (("tsp", "HTM"), "3691b7a2b636f32f32b2a0b5e0f0cf7c");
    (("tsp", "AddrOnly"), "ee952d1d358df26f1bf3dfbf21e93ddd");
    (("tsp", "Staggered+SW"), "a3579d934d7386ea63cd69b0e7eb40d1");
    (("tsp", "Staggered"), "68e95c3c789a7fb2d72c8154097d5ccb");
    (("memcached", "HTM"), "7d3186b760e0cce1cb14e1f22f687be8");
    (("memcached", "AddrOnly"), "4f486b85c6bf48b649638f0597f05fc9");
    (("memcached", "Staggered+SW"), "53c08d42ed888cba47fadf18b731b57a");
    (("memcached", "Staggered"), "e6d09eef10ddf41f8721c4188b5d801d");
  ]

(* the four cells captured per workload: the modes of Figure 7 *)
let golden_modes =
  [ Mode.Baseline; Mode.Addr_only; Mode.Staggered_sw; Mode.Staggered_hw ]

let run_cell ?(htm_policy = Stx_policy.default) ~seed ~scale ~threads ~mode w =
  let spec =
    Stx_workloads.Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w
  in
  let cfg = Config.with_cores threads Config.default in
  Machine.run ~seed ~htm_policy ~cfg ~mode spec

let test_default_bundle_is_golden () =
  List.iter
    (fun w ->
      List.iter
        (fun mode ->
          let name = w.Stx_workloads.Workload.name in
          let key = (name, Mode.to_string mode) in
          let expected =
            match List.assoc_opt key golden_digests with
            | Some d -> d
            | None ->
              Alcotest.fail
                (Printf.sprintf "no golden digest for %s/%s" name
                   (Mode.to_string mode))
          in
          let s =
            run_cell ~seed:golden_seed ~scale:golden_scale
              ~threads:golden_threads ~mode w
          in
          Alcotest.(check string)
            (Printf.sprintf "golden %s/%s" name (Mode.to_string mode))
            expected (fingerprint s);
          Alcotest.(check int)
            (Printf.sprintf "no capacity aborts %s/%s" name
               (Mode.to_string mode))
            0 s.Stats.capacity_aborts;
          (* the run files its totals under its own policy label *)
          let p =
            Stats.policy_tally s (Stx_policy.label Stx_policy.default)
          in
          Alcotest.(check int)
            "per-policy commits" s.Stats.commits p.Stats.p_commits;
          Alcotest.(check int)
            "per-policy aborts" s.Stats.aborts p.Stats.p_aborts)
        golden_modes)
    Stx_workloads.Registry.all

(* ---------------------------------------------------------------- *)
(* every non-default policy keeps trace + metrics reconciliation      *)

let non_default_policies =
  [
    Stx_policy.make ~resolution:Stx_policy.Resolution.Responder_wins ();
    Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp ();
    Stx_policy.make
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = 8; write_lines = 4 })
      ();
    Stx_policy.make
      ~fallback:
        (Stx_policy.Fallback.Backoff
           { retries = 8; base = 16; max_exp = 6; seed = 11 })
      ();
    (* all three axes off the default point at once *)
    Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = 16; write_lines = 8 })
      ~fallback:(Stx_policy.Fallback.Polite { retries = Some 4 })
      ();
  ]

let check_workloads = [ "genome"; "intruder"; "list-hi" ]

let test_non_default_policies_reconcile () =
  List.iter
    (fun name ->
      let w =
        match Stx_workloads.Registry.find name with
        | Some w -> w
        | None -> Alcotest.fail ("missing workload " ^ name)
      in
      List.iter
        (fun htm_policy ->
          let mode = Mode.Staggered_hw in
          let threads = 4 in
          let spec =
            Stx_workloads.Workload.spec ~instrument:(Mode.uses_alps mode)
              ~scale:0.05 w
          in
          let cfg = Config.with_cores threads Config.default in
          let tr = Stx_trace.Trace.create ~threads () in
          let r =
            Stx_metrics.Run.simulate ~seed:3 ~htm_policy ~cfg ~mode
              ~on_event:(Stx_trace.Trace.handler tr) spec
          in
          let s = r.Stx_metrics.Run.stats in
          let label = Stx_policy.label htm_policy in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s made progress" name label)
            true (s.Stats.commits > 0);
          (match Stx_trace.Trace.check tr s with
          | Ok () -> ()
          | Error errs ->
            Alcotest.fail
              (Printf.sprintf "%s/%s trace check: %s" name label
                 (String.concat "; " errs)));
          match Stx_metrics.Collect.check r.Stx_metrics.Run.metrics s with
          | Ok () -> ()
          | Error errs ->
            Alcotest.fail
              (Printf.sprintf "%s/%s metrics check: %s" name label
                 (String.concat "; " errs)))
        non_default_policies)
    check_workloads

(* ---------------------------------------------------------------- *)
(* capacity aborts: deterministic for a fixed seed, and routed        *)
(* straight to the irrevocable fallback                               *)

let tight = Stx_policy.Capacity.Bounded { read_lines = 2; write_lines = 1 }

let test_capacity_deterministic () =
  let w = Option.get (Stx_workloads.Registry.find "genome") in
  let htm_policy = Stx_policy.make ~capacity:tight () in
  let run () =
    run_cell ~htm_policy ~seed:3 ~scale:golden_scale ~threads:4
      ~mode:Mode.Baseline w
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "capacity aborts occurred" true
    (a.Stats.capacity_aborts > 0);
  Alcotest.(check string) "bit-for-bit repeatable" (fingerprint a)
    (fingerprint b);
  (* a capacity abort is a footprint problem, not contention: the tx
     must not retry in hardware (footprints don't shrink), so every
     capacity abort feeds an irrevocable entry *)
  Alcotest.(check bool) "capacity aborts go irrevocable" true
    (a.Stats.irrevocable_entries >= a.Stats.capacity_aborts);
  let p = Stats.policy_tally a (Stx_policy.label htm_policy) in
  Alcotest.(check int) "per-policy capacity tally" a.Stats.capacity_aborts
    p.Stats.p_capacity

(* ---------------------------------------------------------------- *)
(* timestamp karma: the hot shared-counter workload terminates with    *)
(* every increment applied — no livelock                               *)

let test_timestamp_no_livelock () =
  let threads = 8 and iters = 25 in
  let memo = ref None in
  let spec0 = Test_sim.counter_spec ~iters () in
  let spec =
    {
      spec0 with
      Machine.thread_args =
        (fun env ~threads ->
          let r = spec0.Machine.thread_args env ~threads in
          memo := Some env.Machine.memory;
          r);
    }
  in
  let cfg = Config.with_cores threads Config.default in
  let htm_policy =
    Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp ()
  in
  let stats = Machine.run ~seed:7 ~htm_policy ~cfg ~mode:Mode.Baseline spec in
  let v = Memory.load (Option.get !memo) !Test_sim.counter_addr in
  Alcotest.(check int) "every increment applied" (threads * iters) v;
  Alcotest.(check int) "every tx committed" (threads * iters)
    stats.Stats.commits;
  Alcotest.(check int) "no capacity aborts" 0 stats.Stats.capacity_aborts

(* responder-wins on the same workload also terminates correctly: the
   fallback ladder guarantees progress even when requesters suicide *)
let test_responder_wins_terminates () =
  let threads = 4 and iters = 20 in
  let memo = ref None in
  let spec0 = Test_sim.counter_spec ~iters () in
  let spec =
    {
      spec0 with
      Machine.thread_args =
        (fun env ~threads ->
          let r = spec0.Machine.thread_args env ~threads in
          memo := Some env.Machine.memory;
          r);
    }
  in
  let cfg = Config.with_cores threads Config.default in
  let htm_policy =
    Stx_policy.make ~resolution:Stx_policy.Resolution.Responder_wins ()
  in
  let stats = Machine.run ~seed:7 ~htm_policy ~cfg ~mode:Mode.Baseline spec in
  let v = Memory.load (Option.get !memo) !Test_sim.counter_addr in
  Alcotest.(check int) "every increment applied" (threads * iters) v;
  Alcotest.(check int) "every tx committed" (threads * iters)
    stats.Stats.commits

(* ---------------------------------------------------------------- *)
(* Htm-level: capacity and nt-store dooms report true set sizes        *)

let htm_setup policy =
  let cfg = Config.with_cores 4 Config.default in
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:cfg.Config.words_per_line mem in
  (mem, Stx_htm.Htm.create ~policy cfg mem alloc)

let test_capacity_doom_set_sizes () =
  let open Stx_htm in
  let policy =
    Stx_policy.make
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = 1; write_lines = 1 })
      ()
  in
  let _, htm = htm_setup policy in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  (* second distinct line exceeds the 1-line read budget *)
  ignore (Htm.tx_load htm ~core:0 ~addr:128 ~pc:2);
  (match Htm.status htm ~core:0 with
  | Htm.Doomed Htm.Capacity -> ()
  | _ -> Alcotest.fail "expected a capacity doom");
  (* the doomed footprint counts the line that did not fit, never 0/0 *)
  Alcotest.(check (pair int int))
    "set sizes at the moment the budget broke" (2, 0)
    (Htm.last_set_sizes htm ~core:0);
  (match Htm.tx_cleanup htm ~core:0 with
  | Htm.Capacity -> ()
  | _ -> Alcotest.fail "cleanup should return Capacity")

let test_capacity_doom_write_budget () =
  let open Stx_htm in
  let policy =
    Stx_policy.make
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = 8; write_lines = 1 })
      ()
  in
  let _, htm = htm_setup policy in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_store htm ~core:0 ~addr:128 ~value:2 ~pc:2;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed Htm.Capacity -> ()
  | _ -> Alcotest.fail "expected a capacity doom");
  Alcotest.(check (pair int int))
    "write budget overflow counted" (0, 2)
    (Htm.last_set_sizes htm ~core:0)

let test_nt_store_doom_set_sizes () =
  let open Stx_htm in
  let _, htm = htm_setup Stx_policy.default in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  Htm.tx_store htm ~core:0 ~addr:128 ~value:5 ~pc:2;
  (* an nt store by another core dooms the transaction; the recorded
     footprint must be the 1-read/1-write state, not post-reset 0/0 *)
  Htm.nt_store htm ~core:1 ~addr:64 ~value:9;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "expected a conflict doom");
  Alcotest.(check (pair int int))
    "set sizes at nt-store doom" (1, 1)
    (Htm.last_set_sizes htm ~core:0)

(* under responder-wins an nt store still wins: it cannot roll back *)
let test_nt_store_wins_under_responder () =
  let open Stx_htm in
  let policy =
    Stx_policy.make ~resolution:Stx_policy.Resolution.Responder_wins ()
  in
  let mem, htm = htm_setup policy in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.nt_store htm ~core:1 ~addr:64 ~value:9;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "nt store must doom the transaction");
  Alcotest.(check int) "nt value in memory" 9 (Memory.load mem 64)

(* requester suicide under responder-wins: the established owner keeps
   running, the requester dooms itself *)
let test_responder_wins_suicide () =
  let open Stx_htm in
  let policy =
    Stx_policy.make ~resolution:Stx_policy.Resolution.Responder_wins ()
  in
  let _, htm = htm_setup policy in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  Alcotest.(check bool) "owner survives" true
    (Htm.status htm ~core:0 = Htm.Active);
  (match Htm.status htm ~core:1 with
  | Htm.Doomed (Htm.Conflict { aggressor; _ }) ->
    Alcotest.(check int) "owner recorded as aggressor" 0 aggressor
  | _ -> Alcotest.fail "requester should have doomed itself");
  ignore (Htm.tx_cleanup htm ~core:1);
  Alcotest.(check bool) "owner commits" true (Htm.tx_commit htm ~core:0)

(* timestamp karma at the Htm level: the older transaction survives in
   both roles *)
let test_timestamp_older_wins () =
  let open Stx_htm in
  let policy =
    Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp ()
  in
  let _, htm = htm_setup policy in
  (* core 0 begins first (older), core 1 second (younger) *)
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  (* younger requester hits the older owner's line: requester loses *)
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  Alcotest.(check bool) "older survives as responder" true
    (Htm.status htm ~core:0 = Htm.Active);
  (match Htm.status htm ~core:1 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "younger requester should lose");
  ignore (Htm.tx_cleanup htm ~core:1);
  (* now the older core requests into a younger owner's line: wins *)
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:1 ~addr:128 ~value:3 ~pc:3;
  Htm.tx_store htm ~core:0 ~addr:128 ~value:4 ~pc:4;
  Alcotest.(check bool) "older survives as requester" true
    (Htm.status htm ~core:0 = Htm.Active);
  (match Htm.status htm ~core:1 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "younger owner should be doomed")

(* ---------------------------------------------------------------- *)
(* Stats.merge over the new fields is associative                     *)

let mk_stats ~capacity ~tallies () =
  let s = Stats.create ~threads:2 in
  s.Stats.capacity_aborts <- capacity;
  List.iter
    (fun (label, c, a, cap, irr) ->
      let p = Stats.policy_tally s label in
      p.Stats.p_commits <- c;
      p.Stats.p_aborts <- a;
      p.Stats.p_capacity <- cap;
      p.Stats.p_irrevocable <- irr)
    tallies;
  s

let tally_list (s : Stats.t) =
  Hashtbl.fold
    (fun label (p : Stats.pol_stat) acc ->
      (label, (p.Stats.p_commits, p.Stats.p_aborts, p.Stats.p_capacity,
               p.Stats.p_irrevocable))
      :: acc)
    s.Stats.per_policy []
  |> List.sort compare

let test_merge_associative () =
  let a =
    mk_stats ~capacity:3 ~tallies:[ ("requester-wins+unbounded+polite", 10, 4, 0, 1) ] ()
  in
  let b =
    mk_stats ~capacity:5
      ~tallies:
        [
          ("requester-wins+unbounded+polite", 7, 2, 0, 0);
          ("timestamp+bounded:8:4+polite", 3, 9, 5, 2);
        ]
      ()
  in
  let c =
    mk_stats ~capacity:1 ~tallies:[ ("timestamp+bounded:8:4+polite", 1, 1, 1, 1) ] ()
  in
  let left = Stats.merge (Stats.merge a b) c in
  let right = Stats.merge a (Stats.merge b c) in
  Alcotest.(check int) "capacity sum" 9 left.Stats.capacity_aborts;
  Alcotest.(check int) "capacity assoc" left.Stats.capacity_aborts
    right.Stats.capacity_aborts;
  Alcotest.(check
      (list (pair string (pair (pair int int) (pair int int)))))
    "per-policy assoc"
    (List.map (fun (l, (c, a, cap, i)) -> (l, ((c, a), (cap, i)))) (tally_list left))
    (List.map (fun (l, (c, a, cap, i)) -> (l, ((c, a), (cap, i)))) (tally_list right));
  Alcotest.(check (list (pair string (pair (pair int int) (pair int int)))))
    "per-policy sums"
    [
      ("requester-wins+unbounded+polite", ((17, 6), (0, 1)));
      ("timestamp+bounded:8:4+polite", ((4, 10), (6, 3)));
    ]
    (List.map (fun (l, (c, a, cap, i)) -> (l, ((c, a), (cap, i)))) (tally_list left))

(* ---------------------------------------------------------------- *)
(* store codec round-trips the new fields; job digests see the policy *)

let test_store_roundtrip_policy_fields () =
  let open Stx_runner in
  let w = Option.get (Stx_workloads.Registry.find "genome") in
  let htm_policy = Stx_policy.make ~capacity:tight () in
  let spec =
    Stx_workloads.Workload.spec ~instrument:false ~scale:golden_scale w
  in
  let cfg = Config.with_cores 4 Config.default in
  let r =
    Stx_metrics.Run.simulate ~seed:3 ~htm_policy ~cfg ~mode:Mode.Baseline spec
  in
  Alcotest.(check bool) "run has capacity aborts" true
    (r.Stx_metrics.Run.stats.Stats.capacity_aborts > 0);
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stxr-policy-%d" (Unix.getpid ()))
  in
  let st = Store.create ~dir () in
  Store.save st ~key:"policy-roundtrip" r;
  (match Store.load st ~key:"policy-roundtrip" with
  | None -> Alcotest.fail "stored result did not load"
  | Some r' ->
    Alcotest.(check string) "stats round-trip"
      (fingerprint r.Stx_metrics.Run.stats)
      (fingerprint r'.Stx_metrics.Run.stats);
    Alcotest.(check int) "capacity_aborts round-trip"
      r.Stx_metrics.Run.stats.Stats.capacity_aborts
      r'.Stx_metrics.Run.stats.Stats.capacity_aborts;
    Alcotest.(check
        (list (pair string (pair (pair int int) (pair int int)))))
      "per-policy round-trip"
      (List.map
         (fun (l, (c, a, cap, i)) -> (l, ((c, a), (cap, i))))
         (tally_list r.Stx_metrics.Run.stats))
      (List.map
         (fun (l, (c, a, cap, i)) -> (l, ((c, a), (cap, i))))
         (tally_list r'.Stx_metrics.Run.stats)));
  (* stale cache entries of older formats must read as misses, never
     as malformed decodes of the new sections *)
  Alcotest.(check bool) "load of absent key is a miss" true
    (Store.load st ~key:"no-such-entry" = None)

let test_job_digest_sees_policy () =
  let open Stx_runner in
  let mk policy =
    Job.make ~policy ~workload:"genome" ~mode:Mode.Baseline ~threads:4 ~seed:3
      ~scale:0.05 ()
  in
  let d0 = Job.digest (mk Stx_policy.default) in
  let d1 =
    Job.digest (mk (Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp ()))
  in
  let d2 = Job.digest (mk (Stx_policy.make ~capacity:tight ())) in
  Alcotest.(check bool) "timestamp digest differs" true (d0 <> d1);
  Alcotest.(check bool) "capacity digest differs" true (d0 <> d2);
  Alcotest.(check bool) "non-default digests differ" true (d1 <> d2)

(* ---------------------------------------------------------------- *)
(* label/parse round trips                                            *)

let test_label_roundtrip () =
  let bundles =
    Stx_policy.default
    :: non_default_policies
  in
  List.iter
    (fun p ->
      let l = Stx_policy.label p in
      (* labels must stay inside the metrics-registry value charset *)
      String.iter
        (fun ch ->
          let ok =
            (ch >= 'a' && ch <= 'z')
            || (ch >= 'A' && ch <= 'Z')
            || (ch >= '0' && ch <= '9')
            || ch = '_' || ch = '.' || ch = ':' || ch = '+' || ch = '-'
          in
          if not ok then
            Alcotest.fail (Printf.sprintf "label %S has bad char %c" l ch))
        l;
      match Stx_policy.of_label l with
      | Ok p' ->
        Alcotest.(check bool) ("round trip " ^ l) true (Stx_policy.equal p p')
      | Error e -> Alcotest.fail (Printf.sprintf "of_label %S: %s" l e))
    bundles;
  (* a bare resolution parses with default remaining axes *)
  (match Stx_policy.of_label "timestamp" with
  | Ok p ->
    Alcotest.(check bool) "bare resolution" true
      (Stx_policy.equal p
         (Stx_policy.make ~resolution:Stx_policy.Resolution.Timestamp ()))
  | Error e -> Alcotest.fail e);
  match Stx_policy.of_label "nonsense+unbounded+polite" with
  | Ok _ -> Alcotest.fail "nonsense label should not parse"
  | Error _ -> ()

let test_retry_budget () =
  let open Stx_policy.Fallback in
  Alcotest.(check int) "polite default" 10
    (retry_budget (Polite { retries = None }) ~default:10);
  Alcotest.(check int) "polite explicit" 3
    (retry_budget (Polite { retries = Some 3 }) ~default:10);
  Alcotest.(check int) "backoff" 5
    (retry_budget (Backoff { retries = 5; base = 16; max_exp = 8; seed = 0 })
       ~default:10)

let suite =
  [
    Alcotest.test_case "default bundle reproduces seed stats (40 cells)"
      `Slow test_default_bundle_is_golden;
    Alcotest.test_case "non-default policies reconcile trace+metrics" `Quick
      test_non_default_policies_reconcile;
    Alcotest.test_case "capacity aborts deterministic, go irrevocable" `Quick
      test_capacity_deterministic;
    Alcotest.test_case "timestamp karma: no livelock on hot counter" `Quick
      test_timestamp_no_livelock;
    Alcotest.test_case "responder-wins terminates hot counter" `Quick
      test_responder_wins_terminates;
    Alcotest.test_case "capacity doom reports true read footprint" `Quick
      test_capacity_doom_set_sizes;
    Alcotest.test_case "capacity doom reports true write footprint" `Quick
      test_capacity_doom_write_budget;
    Alcotest.test_case "nt-store doom reports true set sizes" `Quick
      test_nt_store_doom_set_sizes;
    Alcotest.test_case "nt store wins under responder-wins" `Quick
      test_nt_store_wins_under_responder;
    Alcotest.test_case "responder-wins requester suicides" `Quick
      test_responder_wins_suicide;
    Alcotest.test_case "timestamp: older transaction wins both roles" `Quick
      test_timestamp_older_wins;
    Alcotest.test_case "merge associative over capacity + per-policy" `Quick
      test_merge_associative;
    Alcotest.test_case "store codec round-trips policy fields" `Quick
      test_store_roundtrip_policy_fields;
    Alcotest.test_case "job digest is policy-sensitive" `Quick
      test_job_digest_sees_policy;
    Alcotest.test_case "policy labels round-trip and stay in charset" `Quick
      test_label_roundtrip;
    Alcotest.test_case "fallback retry budgets" `Quick test_retry_budget;
  ]

let () =
  Alcotest.run "staggered_tm"
    [ ("util", Test_util.suite); ("machine", Test_machine.suite); ("tir", Test_tir.suite); ("dsa", Test_dsa.suite); ("compiler", Test_compiler.suite); ("htm", Test_htm.suite); ("sim", Test_sim.suite); ("tstruct", Test_tstruct.suite); ("core", Test_core.suite); ("workloads", Test_workloads.suite); ("harness", Test_harness.suite); ("trace", Test_trace.suite); ("analysis", Test_analysis.suite); ("runner", Test_runner.suite); ("metrics", Test_metrics.suite); ("differential", Test_diff.suite); ("features", Test_features.suite); ("policy", Test_policy.suite) ]

open Stx_tir
open Stx_sim
open Stx_compiler
open Stx_analysis

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

let compile_workload ?(anchor_mode = Anchors.Dsa_guided) w =
  let spec = Stx_workloads.Workload.spec ~anchor_mode ~scale:0.12 w in
  spec.Machine.compiled

let word_field = ("v", Stx_tir.Types.Scalar)

(* two atomic blocks over two provably disjoint structures *)
let build_disjoint_program () =
  let p = Ir.create_program () in
  Ir.add_struct p (Types.make "cell" [ word_field ]);
  let b = Builder.create p "bump_a" ~params:[ "pa" ] in
  let v = Builder.load b (Builder.param b "pa") in
  let v' = Builder.bin b Ir.Add v (Ir.Imm 1) in
  Builder.store b ~addr:(Builder.param b "pa") v';
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_a = Ir.add_atomic p ~name:"bump_a" ~func:"bump_a" in
  let b = Builder.create p "bump_b" ~params:[ "pb" ] in
  let v = Builder.load b (Builder.param b "pb") in
  let v' = Builder.bin b Ir.Add v (Ir.Imm 1) in
  Builder.store b ~addr:(Builder.param b "pb") v';
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_b = Ir.add_atomic p ~name:"bump_b" ~func:"bump_b" in
  let b = Builder.create p "main" ~params:[ "a"; "b" ] in
  Builder.atomic_call b ab_a [ Builder.param b "a" ];
  Builder.atomic_call b ab_b [ Builder.param b "b" ];
  Builder.ret b None;
  ignore (Builder.finish b);
  (p, ab_a, ab_b)

(* ------------------------------------------------------------------ *)
(* summaries                                                           *)

let test_summary_disjoint () =
  let p, _, _ = build_disjoint_program () in
  let c = Pipeline.compile ~instrument:false p in
  let sums = Summary.compute c.Pipeline.prog c.Pipeline.dsa in
  let sa = Summary.find sums "bump_a" in
  Alcotest.(check int) "bump_a reads one node" 1 (List.length (Summary.reads sa));
  Alcotest.(check int) "bump_a writes one node" 1
    (List.length (Summary.writes sa));
  Alcotest.(check bool) "bump_a may write" true
    (Summary.may_write sums "bump_a");
  (* main absorbs both atomic callees *)
  let sm = Summary.find sums "main" in
  Alcotest.(check int) "main writes both nodes" 2
    (List.length (Summary.writes sm))

let test_conflict_disjoint_graph () =
  let p, ab_a, ab_b = build_disjoint_program () in
  let c = Pipeline.compile ~instrument:false p in
  let sums = Summary.compute c.Pipeline.prog c.Pipeline.dsa in
  let g = Conflict.compute c.Pipeline.prog c.Pipeline.dsa sums in
  Alcotest.(check bool) "self conflict a" true
    (Conflict.may_doom g ~src:(Conflict.Ab ab_a) ~dst:ab_a);
  Alcotest.(check bool) "self conflict b" true
    (Conflict.may_doom g ~src:(Conflict.Ab ab_b) ~dst:ab_b);
  Alcotest.(check bool) "no cross conflict a->b" false
    (Conflict.may_doom g ~src:(Conflict.Ab ab_a) ~dst:ab_b);
  Alcotest.(check bool) "no cross conflict b->a" false
    (Conflict.may_doom g ~src:(Conflict.Ab ab_b) ~dst:ab_a);
  Alcotest.(check bool) "outside dooms nobody" false
    (Conflict.may_doom g ~src:Conflict.Outside ~dst:ab_a)

(* ------------------------------------------------------------------ *)
(* lints over the real workloads                                       *)

let test_lint_clean_all_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun m ->
          let c = compile_workload ~anchor_mode:m w in
          let a =
            Driver.analyze ~name:w.Stx_workloads.Workload.name c
          in
          Alcotest.(check int)
            (w.Stx_workloads.Workload.name ^ " error diagnostics")
            0
            (Diag.count Diag.Error a.Driver.a_diags))
        [ Anchors.Dsa_guided; Anchors.Naive ])
    Stx_workloads.Registry.all

let test_read_only_agrees_all_workloads () =
  List.iter
    (fun w ->
      let c = compile_workload w in
      let sums = Summary.compute c.Pipeline.prog c.Pipeline.dsa in
      Array.iter
        (fun (a : Ir.atomic) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s read-only agreement"
               w.Stx_workloads.Workload.name a.Ir.ab_name)
            c.Pipeline.read_only.(a.Ir.ab_id)
            (not (Summary.may_write sums a.Ir.ab_func)))
        c.Pipeline.prog.Ir.atomics)
    Stx_workloads.Registry.all

(* flipping the claimed classification must trip STX104 *)
let test_read_only_mutation_trips_lint () =
  let w =
    match Stx_workloads.Registry.find "list-hi" with
    | Some w -> w
    | None -> Alcotest.fail "list-hi missing"
  in
  let c = compile_workload w in
  let sums = Summary.compute c.Pipeline.prog c.Pipeline.dsa in
  Alcotest.(check int) "baseline: no STX104" 0
    (List.length (Lints.read_only c sums));
  (* claim a writing block read-only: unsound -> error *)
  let writing =
    let i = ref (-1) in
    Array.iteri (fun ab ro -> if (not ro) && !i < 0 then i := ab)
      c.Pipeline.read_only;
    !i
  in
  Alcotest.(check bool) "workload has a writing block" true (writing >= 0);
  let claimed = Array.copy c.Pipeline.read_only in
  claimed.(writing) <- true;
  let diags = Lints.read_only ~claimed c sums in
  Alcotest.(check int) "one diagnostic" 1 (List.length diags);
  Alcotest.(check bool) "it is an error" true (Diag.has_errors diags);
  (* deny a read-only block its classification: pessimization -> warning *)
  let ro_block =
    let i = ref (-1) in
    Array.iteri (fun ab ro -> if ro && !i < 0 then i := ab)
      c.Pipeline.read_only;
    !i
  in
  Alcotest.(check bool) "workload has a read-only block" true (ro_block >= 0);
  let claimed = Array.copy c.Pipeline.read_only in
  claimed.(ro_block) <- false;
  let diags = Lints.read_only ~claimed c sums in
  Alcotest.(check int) "one diagnostic" 1 (List.length diags);
  Alcotest.(check bool) "it is a warning" false (Diag.has_errors diags)

(* ------------------------------------------------------------------ *)
(* missed-anchor core on fabricated tables                             *)

let entry ?(anchor = false) ?site ?pioneer ~id ~iid ~node () =
  {
    Unified.ue_id = id;
    ue_iid = iid;
    ue_func = "f";
    ue_is_anchor = anchor;
    ue_site = site;
    ue_parent = None;
    ue_pioneer = pioneer;
    ue_node = node;
  }

let test_missed_anchor_fabricated () =
  let always_prone ~store:_ _ = true in
  let never_prone ~store:_ _ = false in
  let is_store _ = false in
  (* a prone access with no anchor and no pioneer: error *)
  let orphan = [| entry ~id:0 ~iid:10 ~node:7 () |] in
  let diags =
    Lints.missed_anchor_entries ~instrumented:true ~ab:0 ~is_store
      ~prone:always_prone orphan
  in
  Alcotest.(check int) "orphan flagged" 1 (List.length diags);
  Alcotest.(check bool) "as an error" true (Diag.has_errors diags);
  (* same table, but the node is not conflict-prone: clean *)
  let diags =
    Lints.missed_anchor_entries ~instrumented:true ~ab:0 ~is_store
      ~prone:never_prone orphan
  in
  Alcotest.(check int) "not prone, not flagged" 0 (List.length diags);
  (* prone access covered by a pioneer with an ALP site: clean *)
  let covered =
    [|
      entry ~anchor:true ~site:3 ~id:0 ~iid:10 ~node:7 ();
      entry ~pioneer:0 ~id:1 ~iid:11 ~node:7 ();
    |]
  in
  let diags =
    Lints.missed_anchor_entries ~instrumented:true ~ab:0 ~is_store
      ~prone:always_prone covered
  in
  Alcotest.(check int) "covered table clean" 0 (List.length diags);
  (* instrumented pipeline whose anchor lost its ALP site: error *)
  let siteless =
    [|
      entry ~anchor:true ~id:0 ~iid:10 ~node:7 ();
      entry ~pioneer:0 ~id:1 ~iid:11 ~node:7 ();
    |]
  in
  let diags =
    Lints.missed_anchor_entries ~instrumented:true ~ab:0 ~is_store
      ~prone:always_prone siteless
  in
  Alcotest.(check int) "siteless anchor flagged for both entries" 2
    (List.length diags)

(* ------------------------------------------------------------------ *)
(* truncated-PC collisions                                             *)

(* Two loads of the same node exactly 1024 instructions apart: their PCs
   differ by 4096, so the low 12 bits coincide and the hardware tag
   cannot tell them apart. *)
let build_collision_program () =
  let p = Ir.create_program () in
  Ir.add_struct p (Types.make "cell" [ word_field ]);
  let b = Builder.create p "root" ~params:[ "ptr" ] in
  let acc = Builder.reg b "acc" in
  Builder.load_to b acc (Builder.param b "ptr");
  (* 1023 filler instructions *)
  for i = 1 to 1023 do
    Builder.mov b acc (Ir.Imm i)
  done;
  Builder.load_to b acc (Builder.param b "ptr");
  Builder.store b ~addr:(Builder.param b "ptr") (Ir.Reg acc);
  Builder.ret b None;
  ignore (Builder.finish b);
  ignore (Ir.add_atomic p ~name:"root" ~func:"root");
  p

let test_truncated_pc_collision () =
  let p = build_collision_program () in
  let c = Pipeline.compile ~instrument:false p in
  let table = Pipeline.table_for c ~ab:0 in
  let entries = Unified.entries table in
  (* sanity: the two loads really fold onto one tag *)
  let pc_of e = Stx_tir.Layout.pc_of_iid c.Pipeline.layout e.Unified.ue_iid in
  let load0 = entries.(0) and load1 = entries.(1) in
  Alcotest.(check int) "pcs 4096 apart" 4096 (abs (pc_of load1 - pc_of load0));
  let tag = Stx_tir.Layout.truncate ~bits:c.Pipeline.pc_bits (pc_of load0) in
  Alcotest.(check int) "same tag" tag
    (Stx_tir.Layout.truncate ~bits:c.Pipeline.pc_bits (pc_of load1));
  (* the hardware lookup resolves to the first entry in table order *)
  (match Unified.search_by_truncated_pc table tag with
  | Some e -> Alcotest.(check int) "resolves to first entry" load0.Unified.ue_id
                e.Unified.ue_id
  | None -> Alcotest.fail "truncated lookup found nothing");
  (* the collision is reported *)
  Alcotest.(check bool) "tag ambiguous" true (Unified.tag_ambiguous table tag);
  Alcotest.(check int) "one shadowed entry" 1 (Unified.collision_count table);
  (match Unified.collisions table with
  | [ (t, ids) ] ->
    Alcotest.(check int) "collision tag" tag t;
    Alcotest.(check (list int)) "colliding ids in resolution order"
      [ load0.Unified.ue_id; load1.Unified.ue_id ]
      ids
  | other ->
    Alcotest.fail
      (Printf.sprintf "expected one collision group, got %d"
         (List.length other)));
  (* and surfaces as an STX105 warning *)
  let diags = Lints.truncated_pc c in
  Alcotest.(check int) "STX105 emitted" 1 (List.length diags);
  Alcotest.(check bool) "as a warning, not an error" false
    (Diag.has_errors diags)

let test_no_collision_on_workloads () =
  (* the shipped workloads are small enough to fit 12 bits cleanly; the
     lint must not cry wolf on multi-context tables (same iid, several
     entries) *)
  List.iter
    (fun w ->
      let c = compile_workload w in
      Array.iter
        (fun table ->
          Alcotest.(check int)
            (w.Stx_workloads.Workload.name ^ " collision-free")
            0
            (Unified.collision_count table))
        c.Pipeline.unified)
    Stx_workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* trace validation                                                    *)

let traced_run ?(threads = 4) ?(mode = Stx_core.Mode.Baseline) ~scale w =
  let spec =
    Stx_workloads.Workload.spec
      ~instrument:(Stx_core.Mode.uses_alps mode)
      ~scale w
  in
  let tr = Stx_trace.Trace.create ~threads () in
  let stats =
    Machine.run ~seed:7
      ~cfg:(Stx_machine.Config.with_cores threads Stx_machine.Config.default)
      ~mode
      ~on_event:(Stx_trace.Trace.handler tr)
      spec
  in
  (spec, tr, stats)

let test_validation_sound_on_real_run () =
  let w =
    match Stx_workloads.Registry.find "list-hi" with
    | Some w -> w
    | None -> Alcotest.fail "list-hi missing"
  in
  let spec, tr, _ = traced_run ~scale:0.3 w in
  let a = Driver.analyze ~name:"list-hi" spec.Machine.compiled in
  let v = Driver.validate a tr in
  Alcotest.(check bool) "saw conflicts" true (v.Validate.v_conflict_aborts > 0);
  Alcotest.(check bool) "sound" true (Validate.sound v);
  Alcotest.(check bool) "some predicted edge observed" true
    (v.Validate.v_observed > 0);
  Alcotest.(check bool) "precision within [0,1]" true
    (let pr = Validate.precision v in
     pr >= 0.0 && pr <= 1.0)

let test_validation_detects_unpredicted_edge () =
  (* a fabricated abort between provably disjoint blocks must be flagged *)
  let p, ab_a, ab_b = build_disjoint_program () in
  let c = Pipeline.compile ~instrument:false p in
  let sums = Summary.compute c.Pipeline.prog c.Pipeline.dsa in
  let g = Conflict.compute c.Pipeline.prog c.Pipeline.dsa sums in
  let tr = Stx_trace.Trace.create ~threads:2 () in
  let push = Stx_trace.Trace.handler tr in
  push ~time:0 (Machine.Tx_begin { tid = 0; ab = ab_a; attempt = 1; probe = false });
  push ~time:0 (Machine.Tx_begin { tid = 1; ab = ab_b; attempt = 1; probe = false });
  push ~time:5
    (Machine.Tx_abort
       {
         tid = 1;
         ab = ab_b;
         kind = Machine.Conflict;
         conf_line = Some 64;
         conf_pc = None;
         aggressor = Some 0;
         cycles = 5;
         rset = 1;
         wset = 1;
         probe = false;
       });
  let v = Validate.run g tr in
  Alcotest.(check bool) "unsound" false (Validate.sound v);
  Alcotest.(check int) "one unpredicted edge" 1
    (List.length v.Validate.v_unsound);
  match v.Validate.v_unsound with
  | [ e ] ->
    Alcotest.(check bool) "attributed to bump_a" true
      (e.Validate.e_src = Conflict.Ab ab_a);
    Alcotest.(check int) "victim is bump_b" ab_b e.Validate.e_dst
  | _ -> Alcotest.fail "expected exactly one unsound edge"

(* ------------------------------------------------------------------ *)
(* line plane: adversarial layouts                                     *)

(* two atomic blocks hammering DISTINCT fields of one shared object;
   [padded] pushes the second hot field onto its own cache line *)
let build_two_field_program ~padded () =
  let p = Ir.create_program () in
  let fields =
    if padded then
      ("x", Types.Scalar)
      :: (List.init 7 (fun i -> (Printf.sprintf "pad%d" i, Types.Scalar))
         @ [ ("y", Types.Scalar) ])
    else [ ("x", Types.Scalar); ("y", Types.Scalar) ]
  in
  Ir.add_struct p (Types.make "pair" fields);
  let mk fname field =
    let b = Builder.create p fname ~params:[ "p" ] in
    let addr = Builder.gep b (Builder.param b "p") "pair" field in
    let v = Builder.load b addr in
    let v' = Builder.bin b Ir.Add v (Ir.Imm 1) in
    Builder.store b ~addr v';
    Builder.ret b None;
    ignore (Builder.finish b);
    Ir.add_atomic p ~name:fname ~func:fname
  in
  let ab_x = mk "bump_x" "x" in
  let ab_y = mk "bump_y" "y" in
  let b = Builder.create p "main" ~params:[ "p" ] in
  Builder.atomic_call b ab_x [ Builder.param b "p" ];
  Builder.atomic_call b ab_y [ Builder.param b "p" ];
  Builder.ret b None;
  ignore (Builder.finish b);
  (p, ab_x, ab_y)

let has_code cd (d : Diag.t) = d.Diag.code = cd

let test_false_sharing_packed_vs_padded () =
  (* packed: x and y share line 0 -> STX106 + STX108 and the cross edge
     refines to a false-sharing pair *)
  let p, ab_x, ab_y = build_two_field_program ~padded:false () in
  let c = Pipeline.compile ~instrument:false p in
  let a = Driver.analyze ~name:"packed" c in
  Alcotest.(check bool) "packed: STX106 fired" true
    (List.exists (has_code "STX106") a.Driver.a_diags);
  Alcotest.(check bool) "packed: STX108 fix-it fired" true
    (List.exists (has_code "STX108") a.Driver.a_diags);
  let prs = Layout.pairs a.Driver.a_plane ~src:(Conflict.Ab ab_x) ~dst:ab_y in
  Alcotest.(check bool) "packed: cross edge has a false pair on line 0" true
    (List.exists
       (fun (pr : Layout.pair) ->
         pr.Layout.p_sharing = Layout.False_sharing
         && pr.Layout.p_line = Some 0)
       prs);
  (* padded: y moves onto its own line -> silent, cross edge refined away *)
  let p, ab_x, ab_y = build_two_field_program ~padded:true () in
  let c = Pipeline.compile ~instrument:false p in
  let a = Driver.analyze ~name:"padded" c in
  Alcotest.(check bool) "padded: no STX106" false
    (List.exists (has_code "STX106") a.Driver.a_diags);
  Alcotest.(check bool) "padded: no STX108" false
    (List.exists (has_code "STX108") a.Driver.a_diags);
  Alcotest.(check int) "padded: cross edge refined away" 0
    (List.length (Layout.pairs a.Driver.a_plane ~src:(Conflict.Ab ab_x) ~dst:ab_y))

(* ------------------------------------------------------------------ *)
(* line plane: capacity bounds and STX107                              *)

(* one atomic block that unconditionally reads [nobjs] provably
   disjoint line-aligned objects and writes the first: its whole
   footprint is must-execute, so the plane's lower bound is exact *)
let build_wide_program ~nobjs () =
  let p = Ir.create_program () in
  Ir.add_struct p (Types.make "cell" [ word_field ]);
  let params = List.init nobjs (Printf.sprintf "p%d") in
  let b = Builder.create p "sweep" ~params in
  let acc = Builder.reg b "acc" in
  Builder.mov b acc (Ir.Imm 0);
  List.iter
    (fun pr ->
      let v = Builder.load b (Builder.gep b (Builder.param b pr) "cell" "v") in
      Builder.bin_to b acc Ir.Add (Ir.Reg acc) v)
    params;
  Builder.store b
    ~addr:(Builder.gep b (Builder.param b "p0") "cell" "v")
    (Ir.Reg acc);
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"sweep" ~func:"sweep" in
  let b = Builder.create p "main" ~params:params in
  Builder.atomic_call b ab (List.map (Builder.param b) params);
  Builder.ret b None;
  ignore (Builder.finish b);
  (p, ab)

let test_capacity_bound_and_stx107 () =
  let p, ab = build_wide_program ~nobjs:6 () in
  let c = Pipeline.compile ~instrument:false p in
  let a = Driver.analyze ~name:"wide" c in
  let bound = Layout.capacity_bound a.Driver.a_plane ~ab in
  Alcotest.(check int) "min read lines" 6 bound.Layout.lb_min_read;
  Alcotest.(check int) "min write lines" 1 bound.Layout.lb_min_write;
  Alcotest.(check bool) "no aliased contribution" false bound.Layout.lb_aliased;
  let diags ~r ~w =
    Lints.capacity_overflow
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = r; write_lines = w })
      c a.Driver.a_plane
  in
  (* budget below the bound: the block can never commit -> error *)
  let d = diags ~r:4 ~w:4 in
  Alcotest.(check int) "always-overflow flagged" 1 (List.length d);
  Alcotest.(check bool) "as an error" true (Diag.has_errors d);
  (* budget exactly at the bound: no headroom -> info *)
  let d = diags ~r:6 ~w:4 in
  Alcotest.(check int) "no-headroom flagged" 1 (List.length d);
  Alcotest.(check bool) "as info, not error" false (Diag.has_errors d);
  (* roomy and unbounded budgets: silent *)
  Alcotest.(check int) "roomy budget silent" 0 (List.length (diags ~r:8 ~w:4));
  Alcotest.(check int) "unbounded silent" 0
    (List.length
       (Lints.capacity_overflow ~capacity:Stx_policy.Capacity.Unbounded c
          a.Driver.a_plane))

(* an STX107 always-overflow verdict is a claim about every execution:
   running the workload under the same budget must show Capacity aborts *)
let test_stx107_agrees_with_capacity_aborts () =
  let budget =
    Stx_policy.Capacity.Bounded { read_lines = 1; write_lines = 1 }
  in
  let checked = ref 0 in
  List.iter
    (fun name ->
      let w =
        match Stx_workloads.Registry.find name with
        | Some w -> w
        | None -> Alcotest.fail (name ^ " missing")
      in
      let spec = Stx_workloads.Workload.spec ~scale:0.12 w in
      let a = Driver.analyze ~name ~capacity:budget spec.Machine.compiled in
      let predicted =
        List.exists
          (fun (d : Diag.t) ->
            d.Diag.code = "STX107" && d.Diag.severity = Diag.Error)
          a.Driver.a_diags
      in
      if predicted then begin
        incr checked;
        let htm_policy = { Stx_policy.default with capacity = budget } in
        let stats =
          Machine.run ~seed:7 ~htm_policy
            ~cfg:(Stx_machine.Config.with_cores 4 Stx_machine.Config.default)
            ~mode:Stx_core.Mode.Baseline spec
        in
        Alcotest.(check bool) (name ^ ": capacity aborts observed") true
          (stats.Stx_sim.Stats.capacity_aborts > 0)
      end)
    [ "genome"; "intruder"; "vacation"; "tsp"; "memcached" ];
  Alcotest.(check bool) "STX107 always-overflow predicted on >=3 workloads"
    true (!checked >= 3)

(* ------------------------------------------------------------------ *)
(* line attribution across the whole registry                          *)

let test_line_attribution_all_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun mode ->
          let spec, tr, _ = traced_run ~threads:4 ~mode ~scale:0.12 w in
          let a =
            Driver.analyze ~name:w.Stx_workloads.Workload.name
              spec.Machine.compiled
          in
          let v = Driver.validate a tr in
          let name =
            Printf.sprintf "%s/%s" w.Stx_workloads.Workload.name
              (Stx_core.Mode.to_string mode)
          in
          Alcotest.(check bool) (name ^ " sound") true (Validate.sound v);
          Alcotest.(check bool) (name ^ " line-sound") true
            (Validate.line_sound v);
          (* every predicted abort is classified: the per-trace sharing
             counters must add up to the predicted-edge abort total *)
          let predicted_aborts =
            List.fold_left
              (fun acc (e : Validate.edge) ->
                if List.mem e v.Validate.v_unsound then acc
                else acc + e.Validate.e_count)
              0 v.Validate.v_edges
          in
          Alcotest.(check int) (name ^ " classification adds up")
            predicted_aborts
            (v.Validate.v_true_sharing + v.Validate.v_false_sharing
           + v.Validate.v_sharing_unknown);
          let fr = Validate.false_sharing_fraction v in
          Alcotest.(check bool) (name ^ " fraction in [0,1]") true
            (fr >= 0.0 && fr <= 1.0))
        [
          Stx_core.Mode.Baseline; Stx_core.Mode.Addr_only;
          Stx_core.Mode.Staggered_sw; Stx_core.Mode.Staggered_hw;
        ])
    Stx_workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* raw codec round-trip                                                *)

let test_codec_roundtrip () =
  let w =
    match Stx_workloads.Registry.find "list-lo" with
    | Some w -> w
    | None -> Alcotest.fail "list-lo missing"
  in
  let _, tr, stats = traced_run ~scale:0.2 w in
  let file = Filename.temp_file "stx_codec" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Stx_trace.Trace.write_events
        ~meta:[ ("workload", "list-lo"); ("seed", "7") ]
        tr ~file;
      let tr', meta = Stx_trace.Trace.read_events ~file in
      Alcotest.(check int) "same length" (Stx_trace.Trace.length tr)
        (Stx_trace.Trace.length tr');
      Alcotest.(check int) "same threads" (Stx_trace.Trace.threads tr)
        (Stx_trace.Trace.threads tr');
      Alcotest.(check (list (pair string string))) "meta preserved"
        [ ("workload", "list-lo"); ("seed", "7") ]
        meta;
      Alcotest.(check bool) "streams identical" true
        (Stx_trace.Trace.events tr = Stx_trace.Trace.events tr');
      (* the reloaded capture still reconciles against the run's stats *)
      match Stx_trace.Trace.check tr' stats with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs))

let test_codec_rejects_garbage () =
  let file = Filename.temp_file "stx_codec" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc "not-a-trace 9\n";
      close_out oc;
      Alcotest.(check bool) "Codec_error raised" true
        (try
           ignore (Stx_trace.Trace.read_events ~file);
           false
         with Stx_trace.Trace.Codec_error _ -> true))

let suite =
  [
    Alcotest.test_case "summary: disjoint program" `Quick test_summary_disjoint;
    Alcotest.test_case "conflict: disjoint graph" `Quick
      test_conflict_disjoint_graph;
    Alcotest.test_case "lint: clean on all workloads (both modes)" `Slow
      test_lint_clean_all_workloads;
    Alcotest.test_case "lint: read-only agrees on all workloads" `Slow
      test_read_only_agrees_all_workloads;
    Alcotest.test_case "lint: read-only mutation trips STX104" `Quick
      test_read_only_mutation_trips_lint;
    Alcotest.test_case "lint: missed-anchor on fabricated tables" `Quick
      test_missed_anchor_fabricated;
    Alcotest.test_case "lint: truncated-PC collision" `Quick
      test_truncated_pc_collision;
    Alcotest.test_case "lint: workload tables collision-free" `Slow
      test_no_collision_on_workloads;
    Alcotest.test_case "validate: sound on a real run" `Slow
      test_validation_sound_on_real_run;
    Alcotest.test_case "validate: detects unpredicted edge" `Quick
      test_validation_detects_unpredicted_edge;
    Alcotest.test_case "layout: packed fields flagged, padded silent" `Quick
      test_false_sharing_packed_vs_padded;
    Alcotest.test_case "layout: capacity bound and STX107 severities" `Quick
      test_capacity_bound_and_stx107;
    Alcotest.test_case "layout: STX107 agrees with Capacity aborts" `Slow
      test_stx107_agrees_with_capacity_aborts;
    Alcotest.test_case "validate: line attribution on all workloads" `Slow
      test_line_attribution_all_workloads;
    Alcotest.test_case "codec: round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: rejects garbage" `Quick test_codec_rejects_garbage;
  ]

open Stx_machine
open Stx_htm

let cfg = Config.with_cores 4 Config.default

let setup () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:cfg.Config.words_per_line mem in
  let htm = Htm.create cfg mem alloc in
  (mem, alloc, htm)

let test_commit_publishes () =
  let mem, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:7 ~pc:1;
  Alcotest.(check int) "not visible before commit" 0 (Memory.load mem 64);
  Alcotest.(check bool) "commit ok" true (Htm.tx_commit htm ~core:0);
  Alcotest.(check int) "visible after commit" 7 (Memory.load mem 64)

let test_tx_load_sees_own_writes () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:9 ~pc:1;
  Alcotest.(check int) "own write visible" 9 (Htm.tx_load htm ~core:0 ~addr:64 ~pc:2);
  ignore (Htm.tx_commit htm ~core:0)

let test_write_write_conflict () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  (* requester (core 1) wins *)
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict { conf_addr; _ }) ->
    Alcotest.(check int) "conflict addr" 64 conf_addr
  | _ -> Alcotest.fail "core 0 should be doomed");
  Alcotest.(check bool) "core 1 still active" true (Htm.status htm ~core:1 = Htm.Active);
  ignore (Htm.tx_cleanup htm ~core:0);
  Alcotest.(check bool) "winner commits" true (Htm.tx_commit htm ~core:1)

let test_read_write_conflict () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:5);
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:6;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "reader should be doomed by writer")

let test_write_read_conflict () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  ignore (Htm.tx_load htm ~core:1 ~addr:64 ~pc:2);
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "writer should be doomed by reader (requester wins)")

let test_read_read_no_conflict () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  ignore (Htm.tx_load htm ~core:1 ~addr:64 ~pc:2);
  Alcotest.(check bool) "both active" true
    (Htm.status htm ~core:0 = Htm.Active && Htm.status htm ~core:1 = Htm.Active);
  Alcotest.(check bool) "both commit" true
    (Htm.tx_commit htm ~core:0 && Htm.tx_commit htm ~core:1)

let test_line_granularity () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  (* addresses 64 and 65 share a cache line (8 words/line): false sharing *)
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_store htm ~core:1 ~addr:65 ~value:2 ~pc:2;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed _ -> ()
  | _ -> Alcotest.fail "same-line accesses must conflict");
  (* different lines do not conflict *)
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_store htm ~core:1 ~addr:72 ~value:2 ~pc:2;
  Alcotest.(check bool) "different lines fine" true (Htm.status htm ~core:0 = Htm.Active)

let test_conflicting_pc_tag () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:0x1ABC);
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:0x9999);
  (* second access must not overwrite the first-access tag *)
  Htm.tx_store htm ~core:1 ~addr:64 ~value:1 ~pc:7;
  match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict { conf_pc = Some pc; _ }) ->
    Alcotest.(check int) "12-bit truncated first-access pc" 0xABC pc
  | _ -> Alcotest.fail "expected conflict with pc tag"

let test_abort_discards_buffer () =
  let mem, _, htm = setup () in
  Memory.store mem 64 5;
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:99 ~pc:1;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  ignore (Htm.tx_cleanup htm ~core:0);
  Alcotest.(check int) "loser's write discarded" 5 (Memory.load mem 64);
  Alcotest.(check bool) "winner commits" true (Htm.tx_commit htm ~core:1);
  Alcotest.(check int) "winner's write applied" 2 (Memory.load mem 64)

let test_aborted_tx_stops_conflicting () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  (* core 0 is doomed; its stale sets must not doom core 2's accesses *)
  Htm.tx_begin htm ~core:2;
  Htm.tx_store htm ~core:2 ~addr:64 ~value:3 ~pc:3;
  (* core 1 was active and holding the line: it gets doomed by core 2 *)
  Alcotest.(check bool) "core2 active" true (Htm.status htm ~core:2 = Htm.Active);
  ignore (Htm.tx_cleanup htm ~core:0);
  ignore (Htm.tx_cleanup htm ~core:1);
  Alcotest.(check bool) "core2 commits" true (Htm.tx_commit htm ~core:2)

let test_nt_ops_bypass_isolation () =
  let mem, _, htm = setup () in
  Memory.store mem 128 42;
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  (* nt load inside core 0's tx sees committed memory, no read-set entry *)
  Alcotest.(check int) "nt load" 42 (Htm.nt_load htm ~addr:128);
  Alcotest.(check int) "read set only has line of 64" 1 (Htm.read_set_size htm ~core:0);
  (* another thread nt-stores to 128: core 0 unaffected *)
  Htm.nt_store htm ~core:1 ~addr:128 ~value:43;
  Alcotest.(check bool) "still active" true (Htm.status htm ~core:0 = Htm.Active);
  (* nt store to a transactionally-read line DOES abort *)
  Htm.nt_store htm ~core:1 ~addr:64 ~value:9;
  match Htm.status htm ~core:0 with
  | Htm.Doomed _ -> ()
  | _ -> Alcotest.fail "nt store to tx line must abort the tx"

let test_nt_store_in_own_tx_no_self_abort () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  Htm.nt_store htm ~core:0 ~addr:64 ~value:3;
  Alcotest.(check bool) "no self abort" true (Htm.status htm ~core:0 = Htm.Active)

let test_nt_cas () =
  let _, _, htm = setup () in
  Alcotest.(check bool) "cas 0->1" true
    (Htm.nt_cas htm ~core:0 ~addr:64 ~expected:0 ~desired:1);
  Alcotest.(check bool) "cas fails when stale" false
    (Htm.nt_cas htm ~core:1 ~addr:64 ~expected:0 ~desired:2);
  Alcotest.(check int) "value intact" 1 (Htm.nt_load htm ~addr:64)

let test_global_lock_subscription () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Alcotest.(check bool) "lock acquired" true (Htm.acquire_global_lock htm ~core:1);
  Alcotest.(check bool) "commit fails under lock" false (Htm.tx_commit htm ~core:0);
  (match Htm.status htm ~core:0 with
  | Htm.Doomed Htm.Lock_subscription -> ()
  | _ -> Alcotest.fail "expected lock-subscription abort");
  ignore (Htm.tx_cleanup htm ~core:0);
  Htm.release_global_lock htm;
  Alcotest.(check bool) "lock released" false (Htm.global_lock_held htm)

let test_irrevocable_store_aborts_txs () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  Alcotest.(check bool) "lock" true (Htm.acquire_global_lock htm ~core:1);
  (* irrevocable writer stomps the line core 0 read *)
  Htm.nt_store htm ~core:1 ~addr:64 ~value:5;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed _ -> ()
  | _ -> Alcotest.fail "irrevocable store must abort readers");
  Htm.release_global_lock htm

let test_explicit_abort () =
  let mem, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:9 ~pc:1;
  Htm.tx_self_abort htm ~core:0;
  (match Htm.tx_cleanup htm ~core:0 with
  | Htm.Explicit -> ()
  | _ -> Alcotest.fail "expected explicit reason");
  Alcotest.(check int) "write discarded" 0 (Memory.load mem 64)

let qcheck_serializability_two_txs =
  (* two single-location increments: with requester-wins, any interleaving
     where both commit must produce the serial result *)
  QCheck.Test.make ~name:"no lost update between two committing txs" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let mem, _, htm = setup () in
      Memory.store mem 64 0;
      (* tx0 reads, tx1 writes the same line, interleaved per (a, b) *)
      Htm.tx_begin htm ~core:0;
      Htm.tx_begin htm ~core:1;
      let v0 = Htm.tx_load htm ~core:0 ~addr:64 ~pc:1 in
      (if a mod 2 = 0 then
         match Htm.status htm ~core:1 with
         | Htm.Active -> Htm.tx_store htm ~core:1 ~addr:64 ~value:(b + 1) ~pc:2
         | _ -> ());
      let commit0 =
        match Htm.status htm ~core:0 with
        | Htm.Active ->
          Htm.tx_store htm ~core:0 ~addr:64 ~value:(v0 + 1) ~pc:3;
          (match Htm.status htm ~core:0 with
          | Htm.Active -> Htm.tx_commit htm ~core:0
          | _ -> false)
        | _ -> false
      in
      let commit1 =
        match Htm.status htm ~core:1 with
        | Htm.Active -> Htm.tx_commit htm ~core:1
        | _ -> false
      in
      (* at most one of two conflicting txs commits *)
      (not (commit0 && commit1)) || a mod 2 = 1)

(* --- lazy (commit-time, committer-wins) variant ------------------------- *)

let lazy_cfg = { (Config.with_cores 4 Config.default) with Config.lazy_htm = true }

let setup_lazy () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:lazy_cfg.Config.words_per_line mem in
  let htm = Htm.create lazy_cfg mem alloc in
  (mem, alloc, htm)

let test_lazy_no_doom_before_commit () =
  let _, _, htm = setup_lazy () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  Htm.tx_store htm ~core:1 ~addr:64 ~value:2 ~pc:2;
  (* in lazy mode conflicting accesses coexist until someone commits *)
  Alcotest.(check bool) "both alive" true
    (Htm.status htm ~core:0 = Htm.Active && Htm.status htm ~core:1 = Htm.Active)

let test_lazy_committer_wins () =
  let mem, _, htm = setup_lazy () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  Htm.tx_store htm ~core:0 ~addr:64 ~value:1 ~pc:1;
  ignore (Htm.tx_load htm ~core:1 ~addr:64 ~pc:2);
  Alcotest.(check bool) "committer succeeds" true (Htm.tx_commit htm ~core:0);
  (match Htm.status htm ~core:1 with
  | Htm.Doomed (Htm.Conflict { conf_pc = Some pc; _ }) ->
    Alcotest.(check int) "victim's own first-access pc" 2 pc
  | _ -> Alcotest.fail "reader must be doomed at commit");
  ignore (Htm.tx_cleanup htm ~core:1);
  Alcotest.(check int) "committer's value" 1 (Memory.load mem 64)

let test_lazy_read_read_fine () =
  let _, _, htm = setup_lazy () in
  Htm.tx_begin htm ~core:0;
  Htm.tx_begin htm ~core:1;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  ignore (Htm.tx_load htm ~core:1 ~addr:64 ~pc:2);
  Alcotest.(check bool) "both commit" true
    (Htm.tx_commit htm ~core:0 && Htm.tx_commit htm ~core:1)

let test_lazy_nt_store_still_eager () =
  let _, _, htm = setup_lazy () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  (* nontransactional stores are immediately visible, so they must doom
     conflicting transactions even under lazy detection *)
  Htm.nt_store htm ~core:1 ~addr:64 ~value:9;
  match Htm.status htm ~core:0 with
  | Htm.Doomed _ -> ()
  | _ -> Alcotest.fail "nt store must doom even in lazy mode"

(* --- last_set_sizes with pooled sets ----------------------------------
   The read/write Linetbls are reset (not reallocated) the moment a
   transaction commits or is doomed, so [last_set_sizes] is only correct
   if the sizes are captured before that reset — on every discard path,
   not just the plain conflict one. *)

let test_last_sizes_commit () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  ignore (Htm.tx_load htm ~core:0 ~addr:128 ~pc:2);
  Htm.tx_store htm ~core:0 ~addr:192 ~value:1 ~pc:3;
  Alcotest.(check bool) "commit ok" true (Htm.tx_commit htm ~core:0);
  Alcotest.(check (pair int int)) "sizes captured before the pooled reset"
    (2, 1)
    (Htm.last_set_sizes htm ~core:0);
  Alcotest.(check int) "live read set is reset" 0
    (Htm.read_set_size htm ~core:0)

let test_last_sizes_capacity () =
  let mem = Memory.create () in
  let alloc = Alloc.create ~words_per_line:cfg.Config.words_per_line mem in
  let policy =
    Stx_policy.make
      ~capacity:(Stx_policy.Capacity.Bounded { read_lines = 2; write_lines = 2 })
      ()
  in
  let htm = Htm.create ~policy cfg mem alloc in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  ignore (Htm.tx_load htm ~core:0 ~addr:128 ~pc:2);
  ignore (Htm.tx_load htm ~core:0 ~addr:192 ~pc:3);
  (match Htm.status htm ~core:0 with
  | Htm.Doomed Htm.Capacity -> ()
  | _ -> Alcotest.fail "third line must blow the read budget");
  Alcotest.(check (pair int int))
    "footprint includes the line that did not fit" (3, 0)
    (Htm.last_set_sizes htm ~core:0)

let test_last_sizes_nt_store_doom () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  Htm.tx_store htm ~core:0 ~addr:128 ~value:5 ~pc:2;
  Htm.nt_store htm ~core:1 ~addr:64 ~value:9;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Conflict _) -> ()
  | _ -> Alcotest.fail "nt store must doom the reader");
  Alcotest.(check (pair int int)) "sizes survive the nt-store doom" (1, 1)
    (Htm.last_set_sizes htm ~core:0)

let test_last_sizes_stm_conflict () =
  let _, _, htm = setup () in
  Htm.tx_begin htm ~core:0;
  ignore (Htm.tx_load htm ~core:0 ~addr:64 ~pc:1);
  Htm.stm_publish htm ~core:1 ~addr:64 ~value:3;
  (match Htm.status htm ~core:0 with
  | Htm.Doomed (Htm.Stm_conflict _) -> ()
  | _ -> Alcotest.fail "stm publish must doom the hardware reader");
  Alcotest.(check (pair int int)) "sizes survive the stm doom" (1, 0)
    (Htm.last_set_sizes htm ~core:0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "commit publishes" `Quick test_commit_publishes;
    Alcotest.test_case "tx load sees own writes" `Quick test_tx_load_sees_own_writes;
    Alcotest.test_case "write-write conflict, requester wins" `Quick
      test_write_write_conflict;
    Alcotest.test_case "read-write conflict" `Quick test_read_write_conflict;
    Alcotest.test_case "write-read conflict" `Quick test_write_read_conflict;
    Alcotest.test_case "read-read no conflict" `Quick test_read_read_no_conflict;
    Alcotest.test_case "line granularity" `Quick test_line_granularity;
    Alcotest.test_case "conflicting PC tag (first access, truncated)" `Quick
      test_conflicting_pc_tag;
    Alcotest.test_case "abort discards write buffer" `Quick test_abort_discards_buffer;
    Alcotest.test_case "doomed tx stops conflicting" `Quick
      test_aborted_tx_stops_conflicting;
    Alcotest.test_case "nt ops bypass isolation" `Quick test_nt_ops_bypass_isolation;
    Alcotest.test_case "nt store no self-abort" `Quick test_nt_store_in_own_tx_no_self_abort;
    Alcotest.test_case "nt cas" `Quick test_nt_cas;
    Alcotest.test_case "global lock subscription" `Quick test_global_lock_subscription;
    Alcotest.test_case "irrevocable store aborts txs" `Quick
      test_irrevocable_store_aborts_txs;
    Alcotest.test_case "explicit abort" `Quick test_explicit_abort;
    Alcotest.test_case "lazy: no doom before commit" `Quick
      test_lazy_no_doom_before_commit;
    Alcotest.test_case "lazy: committer wins" `Quick test_lazy_committer_wins;
    Alcotest.test_case "lazy: read-read fine" `Quick test_lazy_read_read_fine;
    Alcotest.test_case "lazy: nt store still eager" `Quick
      test_lazy_nt_store_still_eager;
    Alcotest.test_case "last_set_sizes: commit path" `Quick
      test_last_sizes_commit;
    Alcotest.test_case "last_set_sizes: capacity doom" `Quick
      test_last_sizes_capacity;
    Alcotest.test_case "last_set_sizes: nt-store doom" `Quick
      test_last_sizes_nt_store_doom;
    Alcotest.test_case "last_set_sizes: stm-publish doom" `Quick
      test_last_sizes_stm_conflict;
    q qcheck_serializability_two_txs;
  ]

open Stx_core
open Stx_runner

(* Tiny jobs so the suite stays fast: small workloads, low scale, few
   threads. Everything here is deterministic, which is the property the
   whole subsystem rests on. *)

let job ?policy ?(workload = "ssca2") ?(mode = Mode.Baseline) ?(threads = 2)
    ?(seed = 3) ?(scale = 0.05) () =
  Job.make ?policy ~workload ~mode ~threads ~seed ~scale ()

let small_batch () =
  [
    job ();
    job ~mode:Mode.Staggered_hw ();
    job ~workload:"kmeans" ();
    job ~workload:"kmeans" ~mode:Mode.Staggered_hw ();
  ]

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "stxr-test-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let outcomes_encoded batch =
  List.map
    (fun (j, out) ->
      match out with
      | Pool.Done s -> (Job.label j, Store.encode s)
      | Pool.Failed m -> (Job.label j, "failed: " ^ m)
      | Pool.Timed_out _ -> (Job.label j, "timeout"))
    batch.Sweep.results

(* --- pool ------------------------------------------------------------- *)

let test_pool_results_in_input_order () =
  let thunks = Array.init 16 (fun i () -> i * i) in
  let out = Pool.map ~jobs:4 thunks in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "value" (i * i) v
      | _ -> Alcotest.fail "job failed")
    out

let test_pool_jobs1_equals_jobs4 () =
  let specs = small_batch () in
  let seq = Sweep.run_batch ~jobs:1 specs in
  let par = Sweep.run_batch ~jobs:4 specs in
  Alcotest.(check (list (pair string string)))
    "identical results regardless of parallelism" (outcomes_encoded seq)
    (outcomes_encoded par)

let test_pool_exception_isolated () =
  let thunks =
    [|
      (fun () -> 1);
      (fun () -> failwith "boom");
      (fun () -> 3);
    |]
  in
  let out = Pool.map ~jobs:2 thunks in
  (match out.(1) with
  | Pool.Failed msg ->
    Alcotest.(check bool) "message kept" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected Failed");
  (match (out.(0), out.(2)) with
  | Pool.Done 1, Pool.Done 3 -> ()
  | _ -> Alcotest.fail "neighbours unaffected by the crash")

let test_pool_timeout () =
  let thunks =
    [| (fun () -> 1); (fun () -> Unix.sleepf 0.05; 2); (fun () -> 3) |]
  in
  let out = Pool.map ~jobs:2 ~timeout:0.01 thunks in
  (match out.(1) with
  | Pool.Timed_out elapsed ->
    Alcotest.(check bool) "elapsed recorded" true (elapsed >= 0.01)
  | _ -> Alcotest.fail "expected Timed_out");
  match (out.(0), out.(2)) with
  | Pool.Done 1, Pool.Done 3 -> ()
  | _ -> Alcotest.fail "fast jobs unaffected by the slow one"

let test_pool_callbacks_balanced () =
  let started = ref 0 and finished = ref 0 in
  let thunks = Array.init 10 (fun i () -> i) in
  ignore
    (Pool.map ~jobs:3
       ~on_start:(fun _ -> incr started)
       ~on_done:(fun _ _ -> incr finished)
       thunks);
  Alcotest.(check int) "every job started" 10 !started;
  Alcotest.(check int) "every job finished" 10 !finished

(* --- digest ----------------------------------------------------------- *)

let test_digest_sensitive_to_every_field () =
  let base = job () in
  let variants =
    [
      ("workload", job ~workload:"kmeans" ());
      ("mode", job ~mode:Mode.Staggered_hw ());
      ("threads", job ~threads:4 ());
      ("seed", job ~seed:4 ());
      ("scale", job ~scale:0.0500001 ());
    ]
  in
  List.iter
    (fun (field, j) ->
      Alcotest.(check bool)
        (field ^ " changes the digest")
        false
        (Job.digest base = Job.digest j))
    variants;
  Alcotest.(check string) "digest is a function of the spec" (Job.digest base)
    (Job.digest (job ()))

(* --- store ------------------------------------------------------------ *)

let test_store_round_trip () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  let stats = Sweep.run_job (job ()) in
  let key = Job.digest (job ()) in
  Alcotest.(check bool) "miss before save" true (Store.load st ~key = None);
  Store.save st ~key stats;
  match Store.load st ~key with
  | None -> Alcotest.fail "expected a hit after save"
  | Some loaded ->
    Alcotest.(check string) "byte-identical round trip" (Store.encode stats)
      (Store.encode loaded)

let test_store_cache_hit_skips_simulation () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  let specs = small_batch () in
  let cold = Sweep.run_batch ~store:st ~jobs:2 specs in
  Alcotest.(check int) "cold run simulates everything" 4 cold.Sweep.executed;
  Alcotest.(check int) "cold run has no hits" 0 cold.Sweep.cached;
  let warm = Sweep.run_batch ~store:st ~jobs:2 specs in
  Alcotest.(check int) "warm run simulates nothing" 0 warm.Sweep.executed;
  Alcotest.(check int) "warm run is all hits" 4 warm.Sweep.cached;
  Alcotest.(check (list (pair string string)))
    "cached results identical to fresh ones" (outcomes_encoded cold)
    (outcomes_encoded warm)

let test_store_corrupt_entries_are_misses () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  let stats = Sweep.run_job (job ()) in
  let key = Job.digest (job ()) in
  Store.save st ~key stats;
  let file = Store.path st ~key in
  let full = In_channel.with_open_bin file In_channel.input_all in
  (* truncated: cut the file mid-way, losing the "end" sentinel *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 2)));
  Alcotest.(check bool) "truncated entry is a miss" true
    (Store.load st ~key = None);
  (* garbage: syntactically wrong from the first line *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc "not a result file\n");
  Alcotest.(check bool) "garbage entry is a miss" true
    (Store.load st ~key = None);
  (* wrong magic version *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc
        ("staggered_tm-result v999\n"
        ^ String.concat "\n" (List.tl (String.split_on_char '\n' full))));
  Alcotest.(check bool) "foreign version is a miss" true
    (Store.load st ~key = None);
  (* and a batch over the corrupted store recomputes, then repairs it *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc "not a result file\n");
  let b = Sweep.run_batch ~store:st ~jobs:1 [ job () ] in
  Alcotest.(check int) "corrupted entry recomputed" 1 b.Sweep.executed;
  match Store.load st ~key with
  | Some repaired ->
    Alcotest.(check string) "store repaired" (Store.encode stats)
      (Store.encode repaired)
  | None -> Alcotest.fail "expected the recomputed entry to be saved"

let test_store_failures_not_cached () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  (* an unknown workload makes run_job raise inside the pool *)
  let failing =
    Job.make ~workload:"no-such-benchmark" ~mode:Mode.Baseline ~threads:2
      ~seed:1 ~scale:0.05 ()
  in
  let b = Sweep.run_batch ~store:st ~jobs:2 [ failing ] in
  (match b.Sweep.results with
  | [ (_, Pool.Failed _) ] -> ()
  | _ -> Alcotest.fail "expected a Failed outcome");
  Alcotest.(check bool) "failure left no store entry" true
    (Store.load st ~key:(Job.digest failing) = None)

let test_store_persists_metrics () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  let fresh = Sweep.run_job (job ~mode:Mode.Staggered_hw ()) in
  let key = Job.digest (job ~mode:Mode.Staggered_hw ()) in
  Store.save st ~key fresh;
  match Store.load st ~key with
  | None -> Alcotest.fail "expected a hit"
  | Some loaded ->
    Alcotest.(check (list string)) "registry survives the round trip" []
      (Stx_metrics.Registry.diff fresh.Stx_metrics.Run.metrics
         loaded.Stx_metrics.Run.metrics);
    (* and the persisted registry still reconciles with the stats *)
    (match
       Stx_metrics.Collect.check loaded.Stx_metrics.Run.metrics
         loaded.Stx_metrics.Run.stats
     with
    | Ok () -> ()
    | Error errs ->
      Alcotest.fail
        ("loaded registry diverges from loaded stats:\n  "
       ^ String.concat "\n  " errs))

let test_store_corrupt_metrics_section_is_miss () =
  let dir = fresh_dir () in
  let st = Store.create ~dir () in
  let r = Sweep.run_job (job ~mode:Mode.Staggered_hw ()) in
  let key = Job.digest (job ~mode:Mode.Staggered_hw ()) in
  Store.save st ~key r;
  let file = Store.path st ~key in
  let full = In_channel.with_open_bin file In_channel.input_all in
  let corrupt f =
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc (f full))
  in
  let replace_line pred repl s =
    String.split_on_char '\n' s
    |> List.map (fun l -> if pred l then repl l else l)
    |> String.concat "\n"
  in
  let starts p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  (* a histogram line whose bucket payload no longer adds up *)
  corrupt
    (replace_line (starts "hist stx_tx_retries") (fun l -> l ^ " 40 1"));
  Alcotest.(check bool) "tampered histogram is a miss" true
    (Store.load st ~key = None);
  (* a metrics count that disagrees with the lines that follow *)
  corrupt (fun _ ->
      replace_line (starts "metrics ") (fun _ -> "metrics 100000") full);
  Alcotest.(check bool) "oversized metrics section is a miss" true
    (Store.load st ~key = None);
  (* restore, and prove the original decodes again *)
  corrupt (fun _ -> full);
  Alcotest.(check bool) "pristine entry is a hit" true
    (Store.load st ~key <> None)

(* --- progress ---------------------------------------------------------- *)

let test_progress_wall_summary_injectable_clock () =
  let now = ref 0. in
  let buf = Filename.temp_file "stx-progress" ".log" in
  let oc = open_out buf in
  let p = Progress.create ~out:oc ~now:(fun () -> !now) ~total:3 () in
  Alcotest.(check bool) "no summary before any job" true
    (Progress.wall_summary p = None);
  (* three jobs: 0.100s, 0.200s, 1.600s of injected wall time *)
  Progress.job_started p "a";
  now := 0.1;
  Progress.job_finished p "a" ~status:"ok";
  Progress.job_started p "b";
  now := 0.3;
  Progress.job_finished p "b" ~status:"ok";
  Progress.job_started p "c";
  now := 1.9;
  Progress.job_finished p "c" ~status:"ok";
  (match Progress.wall_summary p with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
    (* the p50 rank lands on the 200ms observation: the bucket's observed
       maximum caps the quantile at the value actually recorded, so the
       report says 0.2s, not the bucket's 255ms upper bound *)
    Alcotest.(check string) "quantiles from the injected clock"
      "job wall-time p50 0.2s p95 1.6s max 1.6s" s);
  Progress.finish p;
  close_out oc;
  let log = In_channel.with_open_text buf In_channel.input_all in
  Sys.remove buf;
  Alcotest.(check bool) "closing line carries the summary" true
    (let sub = "job wall-time p50" in
     let rec find i =
       i + String.length sub <= String.length log
       && (String.sub log i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let test_store_blob_round_trip () =
  let st = Store.create ~dir:(fresh_dir ()) () in
  Alcotest.(check bool) "missing blob is None" true
    (Store.load_blob st ~key:"nothing" = None);
  (* blobs are raw bytes: binary content survives untouched *)
  let bytes = "<html>\x00\xff\nreport</html>" in
  Store.save_blob st ~key:"abc123" bytes;
  Alcotest.(check (option string)) "bytes round trip" (Some bytes)
    (Store.load_blob st ~key:"abc123");
  Store.save_blob st ~key:"abc123" "v2";
  Alcotest.(check (option string)) "overwrite wins" (Some "v2")
    (Store.load_blob st ~key:"abc123");
  (* the .blob namespace never collides with result entries *)
  Alcotest.(check bool) "not a result entry" true
    (Store.load st ~key:"abc123" = None)

let contains log sub =
  let rec find i =
    i + String.length sub <= String.length log
    && (String.sub log i (String.length sub) = sub || find (i + 1))
  in
  find 0

let test_progress_heartbeat_line () =
  let now = ref 0. in
  let buf = Filename.temp_file "stx-heartbeat" ".log" in
  let oc = open_out buf in
  let p = Progress.create ~out:oc ~now:(fun () -> !now) ~total:4 () in
  Progress.job_started p "a";
  Progress.job_started p "b";
  now := 0.5;
  Progress.job_finished p "a" ~status:"ok";
  Progress.job_started p "c";
  now := 1.0;
  Progress.heartbeat p;
  close_out oc;
  let log = In_channel.with_open_text buf In_channel.input_all in
  Sys.remove buf;
  Alcotest.(check bool) "done/total" true (contains log "heartbeat [1/4]");
  Alcotest.(check bool) "eta present" true (contains log "eta ");
  Alcotest.(check bool) "wall summary present" true
    (contains log "job wall-time p50");
  (* the in-flight list shows the most recently started first *)
  Alcotest.(check bool) "in-flight labels listed" true
    (contains log "running c b")

let test_pool_tick_fires_in_parallel_mode () =
  let ticks = Atomic.make 0 in
  let thunks = Array.init 2 (fun _ () -> Unix.sleepf 0.15) in
  let out =
    Pool.map ~jobs:2 ~tick:(0.02, fun () -> Atomic.incr ticks) thunks
  in
  Alcotest.(check int) "all jobs done" 2 (Array.length out);
  Array.iter
    (fun o -> Alcotest.(check bool) "done" true (o = Pool.Done ()))
    out;
  Alcotest.(check bool)
    (Printf.sprintf "ticked at least once (%d)" (Atomic.get ticks))
    true
    (Atomic.get ticks > 0)

let test_pool_tick_silent_inline () =
  let ticks = Atomic.make 0 in
  let thunks = Array.init 2 (fun _ () -> Unix.sleepf 0.05) in
  let _ = Pool.map ~jobs:1 ~tick:(0.01, fun () -> Atomic.incr ticks) thunks in
  Alcotest.(check int) "inline mode never ticks" 0 (Atomic.get ticks)

let test_batch_dedupes_duplicate_specs () =
  let j = job () in
  let b = Sweep.run_batch ~jobs:2 [ j; j; j ] in
  Alcotest.(check int) "one simulation for three copies" 1 b.Sweep.executed;
  Alcotest.(check int) "three results returned" 3
    (List.length b.Sweep.results)

let suite =
  [
    Alcotest.test_case "pool keeps input order" `Quick
      test_pool_results_in_input_order;
    Alcotest.test_case "jobs=1 and jobs=4 identical" `Quick
      test_pool_jobs1_equals_jobs4;
    Alcotest.test_case "exception isolated to its job" `Quick
      test_pool_exception_isolated;
    Alcotest.test_case "timeout recorded, others unaffected" `Quick
      test_pool_timeout;
    Alcotest.test_case "callbacks balanced" `Quick test_pool_callbacks_balanced;
    Alcotest.test_case "digest sensitive to every field" `Quick
      test_digest_sensitive_to_every_field;
    Alcotest.test_case "store round trip" `Quick test_store_round_trip;
    Alcotest.test_case "warm cache runs zero simulations" `Quick
      test_store_cache_hit_skips_simulation;
    Alcotest.test_case "corrupt/truncated entries are misses" `Quick
      test_store_corrupt_entries_are_misses;
    Alcotest.test_case "failures are not cached" `Quick
      test_store_failures_not_cached;
    Alcotest.test_case "metrics registry persisted with stats" `Quick
      test_store_persists_metrics;
    Alcotest.test_case "corrupt metrics section is a miss" `Quick
      test_store_corrupt_metrics_section_is_miss;
    Alcotest.test_case "blob round trip" `Quick test_store_blob_round_trip;
    Alcotest.test_case "progress wall-time summary (injected clock)" `Quick
      test_progress_wall_summary_injectable_clock;
    Alcotest.test_case "progress heartbeat line (injected clock)" `Quick
      test_progress_heartbeat_line;
    Alcotest.test_case "pool tick fires in parallel mode" `Quick
      test_pool_tick_fires_in_parallel_mode;
    Alcotest.test_case "pool tick silent in inline mode" `Quick
      test_pool_tick_silent_inline;
    Alcotest.test_case "duplicate specs deduped" `Quick
      test_batch_dedupes_duplicate_specs;
  ]

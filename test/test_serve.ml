open Stx_serve
module Rng = Stx_util.Rng

(* The serving harness's claims: seeded arrival and key streams are
   exactly reproducible, their distributions have the advertised shape,
   and a sharded open-loop run is one deterministic experiment — the
   jobs knob may only parallelize, never perturb. *)

(* --- key popularity ---------------------------------------------------- *)

let test_zipf_deterministic () =
  let s = Keys.create (Keys.Zipf 0.9) ~range:512 in
  let draw () =
    let rng = Rng.create 42 in
    List.init 200 (fun _ -> Keys.sample s rng)
  in
  Alcotest.(check (list int)) "same seed, same draws" (draw ()) (draw ());
  let other =
    let rng = Rng.create 43 in
    List.init 200 (fun _ -> Keys.sample s rng)
  in
  Alcotest.(check bool) "different seed differs" true (draw () <> other)

let test_zipf_rank_monotone () =
  let range = 8 in
  let s = Keys.create (Keys.Zipf 1.0) ~range in
  let rng = Rng.create 7 in
  let counts = Array.make range 0 in
  for _ = 1 to 20_000 do
    let k = Keys.sample s rng in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= range);
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  for r = 0 to range - 2 do
    if counts.(r) < counts.(r + 1) then
      Alcotest.failf "rank %d (%d draws) colder than rank %d (%d draws)" (r + 1)
        counts.(r) (r + 2)
        counts.(r + 1)
  done

let test_uniform_covers_range () =
  let range = 16 in
  let s = Keys.create Keys.Uniform ~range in
  let rng = Rng.create 5 in
  let seen = Array.make range false in
  for _ = 1 to 2_000 do
    let k = Keys.sample s rng in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= range);
    seen.(k - 1) <- true
  done;
  Alcotest.(check bool) "every key drawn" true (Array.for_all Fun.id seen)

let test_keys_of_string () =
  Alcotest.(check bool) "uniform" true (Keys.of_string "uniform" = Ok Keys.Uniform);
  Alcotest.(check bool) "zipf" true (Keys.of_string "zipf:0.9" = Ok (Keys.Zipf 0.9));
  Alcotest.(check bool) "bad theta" true (Result.is_error (Keys.of_string "zipf:-1"));
  Alcotest.(check bool) "garbage" true (Result.is_error (Keys.of_string "hot"))

(* --- arrival processes ------------------------------------------------- *)

let test_fixed_spacing () =
  let rng = Rng.create 1 in
  let ats =
    Arrival.generate ~rng ~horizon:10_000 (Arrival.Fixed { rate = 2.0 })
  in
  Alcotest.(check int) "count = horizon * rate / 1000" 20 (Array.length ats);
  Array.iteri (fun i at -> Alcotest.(check int) "evenly spaced" (i * 500) at) ats

let test_poisson_mean () =
  let rng = Rng.create 11 in
  let horizon = 500_000 in
  let rate = 2.0 in
  let ats = Arrival.generate ~rng ~horizon (Arrival.Poisson { rate }) in
  let n = Array.length ats in
  let mean = float_of_int horizon /. float_of_int n in
  let expected = 1000.0 /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean gap %.1f within 10%% of %.1f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.1 *. expected);
  let sorted = Array.copy ats in
  Array.sort compare sorted;
  Alcotest.(check bool) "non-decreasing" true (ats = sorted)

let test_bursty_windows () =
  let rng = Rng.create 3 in
  let on = 1_000 and off = 3_000 in
  let ats =
    Arrival.generate ~rng ~horizon:100_000
      (Arrival.Bursty { rate = 4.0; on; off })
  in
  Alcotest.(check bool) "some arrivals" true (Array.length ats > 50);
  Array.iter
    (fun at ->
      if at mod (on + off) >= on then
        Alcotest.failf "arrival at %d falls in a silent window" at)
    ats;
  (* arrivals span several on-windows, i.e. the process alternates *)
  let windows =
    Array.fold_left
      (fun acc at ->
        let w = at / (on + off) in
        if List.mem w acc then acc else w :: acc)
      [] ats
  in
  Alcotest.(check bool) "several bursts hit" true (List.length windows > 5)

let test_bursty_average_rate () =
  let rng = Rng.create 9 in
  let horizon = 400_000 in
  let ats =
    Arrival.generate ~rng ~horizon
      (Arrival.Bursty { rate = 2.0; on = 500; off = 1500 })
  in
  (* gating at the boosted in-burst rate keeps the long-run average *)
  let got = float_of_int (Array.length ats) *. 1000.0 /. float_of_int horizon in
  Alcotest.(check bool)
    (Printf.sprintf "average rate %.2f within 15%% of 2.0" got)
    true
    (Float.abs (got -. 2.0) < 0.3)

let test_arrival_extreme_rates_terminate () =
  (* a Fixed rate whose gap truncates to zero used to spin the generator
     forever; the per-cycle cap now bounds every admissible rate *)
  let rng = Rng.create 5 in
  let horizon = 1_000 in
  let ats =
    Arrival.generate ~rng ~horizon
      (Arrival.Fixed { rate = 1000.0 *. float_of_int Arrival.max_per_cycle })
  in
  Alcotest.(check int) "grid saturated: max_per_cycle arrivals every cycle"
    (horizon * Arrival.max_per_cycle)
    (Array.length ats);
  Alcotest.(check bool) "inadmissible rate rejected at parse time" true
    (Result.is_error (Arrival.of_string "fixed:8001"));
  Alcotest.(check bool) "infinite rate rejected" true
    (Result.is_error (Arrival.of_string "poisson:inf"));
  Alcotest.check_raises "generate refuses a hand-built inadmissible rate"
    (Invalid_argument
       "Arrival.generate: rate must be <= 8000 requests/kilocycle (the cycle \
        grid holds at most 8 arrivals per cycle)") (fun () ->
      ignore (Arrival.generate ~rng ~horizon (Arrival.Fixed { rate = 9000.0 })))

let arrival_gen =
  QCheck.Gen.(
    let rate = map (fun r -> Float.max 0.1 r) (float_bound_exclusive 8000.0) in
    oneof
      [
        map (fun rate -> Arrival.Fixed { rate }) rate;
        map (fun rate -> Arrival.Poisson { rate }) rate;
        map2
          (fun rate (on, off) -> Arrival.Bursty { rate; on; off })
          rate
          (pair (int_range 1 2_000) (int_range 0 2_000));
      ])

let arrival_arb =
  QCheck.make arrival_gen ~print:(fun a -> Arrival.to_string a)

let prop_arrival_sorted_and_capped =
  QCheck.Test.make ~name:"arrivals non-decreasing, per-cycle cap respected"
    ~count:100
    QCheck.(pair arrival_arb (int_range 1 20_000))
    (fun (a, horizon) ->
      let rng = Rng.create 17 in
      let ats = Arrival.generate ~rng ~horizon a in
      let ok = ref true in
      let at_cycle = ref 0 and last = ref (-1) in
      Array.iter
        (fun at ->
          if at < !last then ok := false;
          if at = !last then incr at_cycle else at_cycle := 1;
          if !at_cycle > Arrival.max_per_cycle then ok := false;
          last := at)
        ats;
      !ok)

let prop_fixed_count_tracks_rate =
  QCheck.Test.make ~name:"fixed arrival count ~ rate * horizon / 1000"
    ~count:100
    QCheck.(
      pair
        (map (fun r -> Float.max 0.1 r) (float_bound_exclusive 8000.0))
        (int_range 100 20_000))
    (fun (rate, horizon) ->
      let rng = Rng.create 23 in
      let n =
        Array.length (Arrival.generate ~rng ~horizon (Arrival.Fixed { rate }))
      in
      let expected = rate *. float_of_int horizon /. 1000.0 in
      Float.abs (float_of_int n -. expected) <= 2.0 +. (0.01 *. expected))

let test_arrival_of_string () =
  Alcotest.(check bool) "fixed" true
    (Arrival.of_string "fixed:2" = Ok (Arrival.Fixed { rate = 2.0 }));
  Alcotest.(check bool) "poisson" true
    (Arrival.of_string "poisson:0.5" = Ok (Arrival.Poisson { rate = 0.5 }));
  Alcotest.(check bool) "bursty" true
    (Arrival.of_string "bursty:4:100:300"
    = Ok (Arrival.Bursty { rate = 4.0; on = 100; off = 300 }));
  Alcotest.(check bool) "bad rate" true
    (Result.is_error (Arrival.of_string "poisson:-2"));
  Alcotest.(check bool) "bad shape" true
    (Result.is_error (Arrival.of_string "pareto:2"));
  List.iter
    (fun s ->
      match Arrival.of_string s with
      | Ok a -> Alcotest.(check string) "round-trip" s (Arrival.to_string a)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [ "fixed:2"; "poisson:0.5"; "bursty:4:100:300" ]

(* --- the serving driver ------------------------------------------------ *)

let serve_cfg ?(shards = 3) ?(threads = 8) ?shard_by () =
  match Stx_workloads.Registry.find_service "memcached" with
  | None -> Alcotest.fail "memcached service missing"
  | Some service ->
    Serve.config ~threads ~seed:13 ~keys:(Keys.Zipf 0.9) ~horizon:20_000
      ~shards ?shard_by
      ~arrival:(Arrival.Poisson { rate = 3.0 })
      service

let test_serve_clean_and_accounted () =
  let cfg = serve_cfg () in
  let report = Serve.run ~jobs:1 cfg in
  Alcotest.(check (list string)) "reconciliation clean" [] report.Serve.errors;
  Alcotest.(check bool) "nonempty" true (report.Serve.requests > 0);
  let reg = report.Serve.registry in
  Alcotest.(check int) "all offered requests completed"
    (Stx_metrics.Registry.counter_value reg "stx_req_offered" [])
    (Stx_metrics.Registry.counter_value reg "stx_req_completed" []);
  (match Serve.sojourn report with
  | None -> Alcotest.fail "no sojourn histogram"
  | Some h ->
    Alcotest.(check int) "one sojourn sample per request" report.Serve.requests
      (Stx_metrics.Hist.count h));
  Alcotest.(check int) "commits cover every request (plus any probes)"
    report.Serve.requests
    (min report.Serve.requests report.Serve.stats.Stx_sim.Stats.commits)

let test_serve_jobs_invariant () =
  let cfg = serve_cfg () in
  let a = Serve.run ~jobs:1 cfg in
  let b = Serve.run ~jobs:4 cfg in
  Alcotest.(check bool) "registries identical" true
    (Stx_metrics.Registry.equal a.Serve.registry b.Serve.registry);
  Alcotest.(check string) "reports identical" (Serve.render cfg a)
    (Serve.render cfg b)

let test_serve_repeat_identical () =
  let cfg = serve_cfg ~shards:2 ~threads:4 () in
  let a = Serve.run ~jobs:2 cfg in
  let b = Serve.run ~jobs:2 cfg in
  Alcotest.(check bool) "registries identical" true
    (Stx_metrics.Registry.equal a.Serve.registry b.Serve.registry)

let test_serve_shards_partition_load () =
  (* the same offered process split over more shards keeps the total
     request count in the same ballpark (thinning, not duplication) *)
  let r1 = Serve.run ~jobs:1 (serve_cfg ~shards:1 ()) in
  let r3 = Serve.run ~jobs:1 (serve_cfg ~shards:3 ()) in
  let lo = r1.Serve.requests * 2 / 3 and hi = r1.Serve.requests * 4 / 3 in
  Alcotest.(check bool)
    (Printf.sprintf "3-shard total %d within [%d, %d]" r3.Serve.requests lo hi)
    true
    (r3.Serve.requests >= lo && r3.Serve.requests <= hi)

let test_serve_key_sharding_partitions_exactly () =
  (* key sharding routes one full-rate stream: the shard totals must sum
     to exactly the single-shard request count, and every shard run must
     still reconcile *)
  let r1 = Serve.run ~jobs:1 (serve_cfg ~shards:1 ~shard_by:Serve.Key ()) in
  let r4 = Serve.run ~jobs:1 (serve_cfg ~shards:4 ~shard_by:Serve.Key ()) in
  Alcotest.(check (list string)) "1-shard clean" [] r1.Serve.errors;
  Alcotest.(check (list string)) "4-shard clean" [] r4.Serve.errors;
  Alcotest.(check int) "disjoint exact partition of the stream"
    r1.Serve.requests r4.Serve.requests;
  Alcotest.(check bool) "nonempty" true (r1.Serve.requests > 0)

let test_serve_key_sharding_deterministic () =
  let cfg = serve_cfg ~shards:2 ~threads:4 ~shard_by:Serve.Key () in
  let a = Serve.run ~jobs:1 cfg in
  let b = Serve.run ~jobs:2 cfg in
  Alcotest.(check bool) "jobs-invariant" true
    (Stx_metrics.Registry.equal a.Serve.registry b.Serve.registry);
  Alcotest.(check string) "reports identical" (Serve.render cfg a)
    (Serve.render cfg b)

let test_serve_shard_by_strings () =
  Alcotest.(check bool) "seed" true
    (Serve.shard_by_of_string "seed" = Ok Serve.Seed);
  Alcotest.(check bool) "key" true
    (Serve.shard_by_of_string "key" = Ok Serve.Key);
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Serve.shard_by_of_string "hash"));
  Alcotest.(check string) "round-trip" "key"
    (Serve.shard_by_to_string Serve.Key)

(* --- the request events in the trace codec ----------------------------- *)

let test_trace_roundtrip_req_events () =
  let module Machine = Stx_sim.Machine in
  let module Trace = Stx_trace.Trace in
  let tr = Trace.create ~threads:2 () in
  let feed time ev = Trace.handler tr ~time ev in
  feed 5 (Machine.Req_dispatch { tid = 0; req = 0; ab = 1 });
  feed 6 (Machine.Tx_begin { tid = 0; ab = 1; attempt = 0; probe = false });
  feed 30
    (Machine.Tx_commit
       {
         tid = 0;
         ab = 1;
         cycles = 24;
         irrevocable = false;
         rset = 2;
         wset = 1;
         probe = false;
       });
  feed 30 (Machine.Req_done { tid = 0; req = 0; ab = 1 });
  let file = Filename.temp_file "stx_serve_trace" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.write_events ~meta:[ ("kind", "serve-test") ] tr ~file;
      let tr', meta = Trace.read_events ~file in
      Alcotest.(check bool) "meta preserved" true
        (List.mem_assoc "kind" meta && List.assoc "kind" meta = "serve-test");
      Alcotest.(check bool) "events preserved" true
        (Trace.events tr = Trace.events tr'))

(* --- memcached parameterization ---------------------------------------- *)

let run_bench w =
  let spec = Stx_workloads.Workload.spec ~instrument:true w in
  Stx_sim.Machine.run ~seed:3
    ~cfg:(Stx_machine.Config.with_cores 4 Stx_machine.Config.default)
    ~mode:Stx_core.Mode.Staggered_hw spec

let test_memcached_default_params_unchanged () =
  let module M = Stx_workloads.W_memcached in
  let a = run_bench M.bench in
  let b = run_bench (M.bench_with M.default_params) in
  Alcotest.(check int) "commits" a.Stx_sim.Stats.commits b.Stx_sim.Stats.commits;
  Alcotest.(check int) "aborts" a.Stx_sim.Stats.aborts b.Stx_sim.Stats.aborts;
  Alcotest.(check int) "makespan" a.Stx_sim.Stats.total_cycles
    b.Stx_sim.Stats.total_cycles

let test_memcached_params_take_effect () =
  let module M = Stx_workloads.W_memcached in
  let small =
    run_bench (M.bench_with { M.default_params with M.total_ops = 256 })
  in
  let dflt = run_bench M.bench in
  Alcotest.(check bool)
    (Printf.sprintf "256-op run commits less (%d < %d)"
       small.Stx_sim.Stats.commits dflt.Stx_sim.Stats.commits)
    true
    (small.Stx_sim.Stats.commits < dflt.Stx_sim.Stats.commits)

let suite =
  [
    Alcotest.test_case "zipf: deterministic under a seed" `Quick
      test_zipf_deterministic;
    Alcotest.test_case "zipf: frequency monotone in rank" `Quick
      test_zipf_rank_monotone;
    Alcotest.test_case "uniform keys cover the range" `Quick
      test_uniform_covers_range;
    Alcotest.test_case "key model parsing" `Quick test_keys_of_string;
    Alcotest.test_case "fixed arrivals evenly spaced" `Quick test_fixed_spacing;
    Alcotest.test_case "poisson inter-arrival mean" `Quick test_poisson_mean;
    Alcotest.test_case "bursty arrivals only in on-windows" `Quick
      test_bursty_windows;
    Alcotest.test_case "bursty long-run average rate" `Quick
      test_bursty_average_rate;
    Alcotest.test_case "arrival parsing and round-trip" `Quick
      test_arrival_of_string;
    Alcotest.test_case "extreme arrival rates terminate" `Quick
      test_arrival_extreme_rates_terminate;
    QCheck_alcotest.to_alcotest prop_arrival_sorted_and_capped;
    QCheck_alcotest.to_alcotest prop_fixed_count_tracks_rate;
    Alcotest.test_case "serve: clean reconciliation, full accounting" `Quick
      test_serve_clean_and_accounted;
    Alcotest.test_case "serve: jobs count never changes the result" `Quick
      test_serve_jobs_invariant;
    Alcotest.test_case "serve: repeat runs identical" `Quick
      test_serve_repeat_identical;
    Alcotest.test_case "serve: shards partition the offered load" `Quick
      test_serve_shards_partition_load;
    Alcotest.test_case "key sharding partitions the stream exactly" `Quick
      test_serve_key_sharding_partitions_exactly;
    Alcotest.test_case "key sharding deterministic across jobs" `Quick
      test_serve_key_sharding_deterministic;
    Alcotest.test_case "shard-by parse/print" `Quick
      test_serve_shard_by_strings;
    Alcotest.test_case "trace codec round-trips request events" `Quick
      test_trace_roundtrip_req_events;
    Alcotest.test_case "memcached: default params reproduce the bench" `Quick
      test_memcached_default_params_unchanged;
    Alcotest.test_case "memcached: params take effect" `Quick
      test_memcached_params_take_effect;
  ]

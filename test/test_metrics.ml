open Stx_metrics

(* The metrics layer rests on three contracts: histograms merge like
   Stats.merge (associative, order-independent), the registry renders
   deterministically, and the online collector is byte-equivalent to
   replaying the same run's trace capture. Each section below pins one
   of them. *)

let hist_of l =
  let h = Hist.create () in
  List.iter (Hist.add h) l;
  h

(* --- histogram units --------------------------------------------------- *)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check bool) "empty" true (Hist.is_empty h);
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check int) "sum" 0 (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 0 (Hist.max_value h);
  Alcotest.(check int) "quantile" 0 (Hist.p99 h);
  Alcotest.(check (float 0.)) "mean" 0. (Hist.mean h)

let test_hist_negative_rejected () =
  let h = Hist.create () in
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Hist.add: negative value") (fun () -> Hist.add h (-1))

let test_hist_exact_fields () =
  let h = hist_of [ 5; 0; 17; 5; 1024 ] in
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "sum" 1051 (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1024 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 210.2 (Hist.mean h)

let test_hist_single_value_quantiles () =
  let h = hist_of [ 42 ] in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%g collapses to the one value" q)
        42 (Hist.quantile h q))
    [ 0.; 0.5; 0.9; 0.99; 1. ]

let test_hist_quantile_clamped_to_extrema () =
  (* 100 observations of 3 and one of 200: p50's covering bucket is
     [2..3] whose upper bound is 3; p100 must be exactly max *)
  let h = hist_of (200 :: List.init 100 (fun _ -> 3)) in
  Alcotest.(check int) "p50" 3 (Hist.p50 h);
  Alcotest.(check int) "q=1 is max" 200 (Hist.quantile h 1.);
  Alcotest.(check int) "q=0 is >= min" 3 (Hist.quantile h 0.)

let test_hist_restore_round_trip () =
  let h = hist_of [ 0; 1; 2; 3; 900; 900; 7 ] in
  match
    Hist.restore ~count:(Hist.count h) ~sum:(Hist.sum h)
      ~min_value:(Hist.min_value h) ~max_value:(Hist.max_value h)
      (Hist.buckets_full h)
  with
  | None -> Alcotest.fail "restore rejected its own encode"
  | Some h' -> Alcotest.(check bool) "equal" true (Hist.equal h h')

let test_hist_restore_rejects_inconsistent () =
  let reject name ~count ~sum ~min_value ~max_value pairs =
    Alcotest.(check bool) name true
      (Hist.restore ~count ~sum ~min_value ~max_value pairs = None)
  in
  reject "count mismatch" ~count:3 ~sum:6 ~min_value:2 ~max_value:4
    [ (2, 2, 3) ];
  reject "descending bucket indices" ~count:2 ~sum:10 ~min_value:2 ~max_value:8
    [ (4, 1, 8); (2, 1, 3) ];
  reject "index out of range" ~count:1 ~sum:1 ~min_value:1 ~max_value:1
    [ (99, 1, 1) ];
  reject "max outside its bucket" ~count:1 ~sum:2 ~min_value:2 ~max_value:9
    [ (2, 1, 2) ];
  reject "bucket max outside its bucket" ~count:1 ~sum:2 ~min_value:2
    ~max_value:2 [ (2, 1, 5) ];
  reject "top bucket max disagrees with global max" ~count:1 ~sum:2
    ~min_value:2 ~max_value:3 [ (2, 1, 2) ];
  reject "nonempty empty hist" ~count:0 ~sum:3 ~min_value:0 ~max_value:0 []

(* --- histogram properties ---------------------------------------------- *)

let values = QCheck.(list_of_size (QCheck.Gen.int_range 0 80) (int_range 0 100_000))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:100
    (QCheck.triple values values values) (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      Hist.equal
        (Hist.merge (Hist.merge ha hb) hc)
        (Hist.merge ha (Hist.merge hb hc)))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge = histogram of concatenation" ~count:100
    (QCheck.pair values values) (fun (a, b) ->
      Hist.equal (Hist.merge (hist_of a) (hist_of b)) (hist_of (a @ b)))

let prop_bucket_boundaries =
  QCheck.Test.make ~name:"every value inside its bucket's bounds" ~count:500
    QCheck.(int_range 0 1_000_000_000)
    (fun v ->
      let k = Hist.bucket_index v in
      Hist.bucket_lower k <= v && v <= Hist.bucket_upper k)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:100
    (QCheck.triple values (QCheck.float_range 0. 1.) (QCheck.float_range 0. 1.))
    (fun (l, q1, q2) ->
      l = []
      ||
      let h = hist_of l in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Hist.quantile h lo <= Hist.quantile h hi)

let prop_quantile_within_bucket_of_truth =
  QCheck.Test.make ~name:"quantile within one bucket of the order statistic"
    ~count:100
    QCheck.(pair values (float_range 0. 1.))
    (fun (l, q) ->
      l = []
      ||
      let h = hist_of l in
      let sorted = List.sort compare l in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let truth = List.nth sorted (rank - 1) in
      let got = Hist.quantile h q in
      Hist.bucket_index got = Hist.bucket_index truth
      || got >= Hist.min_value h && got <= Hist.max_value h)

let prop_quantile_is_observed =
  (* the per-bucket observed max guarantees a quantile is never a bucket
     bound nobody recorded — it is always one of the added values *)
  QCheck.Test.make ~name:"quantile is always an observed value" ~count:200
    QCheck.(pair values (float_range 0. 1.))
    (fun (l, q) ->
      l = []
      ||
      let h = hist_of l in
      List.mem (Hist.quantile h q) l)

(* --- json -------------------------------------------------------------- *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Str "x \"quoted\" \\ slash \n tab \t");
        ("c", Json.List [ Json.Null; Json.Bool true; Json.Float 2.5 ]);
        ("d", Json.Obj [ ("nested", Json.Int (-7)) ]);
      ]
  in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok doc' ->
    Alcotest.(check string) "print-parse-print stable" s (Json.to_string doc')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "{\"a\" 1}"; "\"\\x\"" ]

let test_json_int_float_distinction () =
  match Json.parse "{\"i\":3,\"f\":3.0}" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "i" doc with
    | Some (Json.Int 3) -> ()
    | _ -> Alcotest.fail "3 should parse as Int");
    (match Json.member "f" doc with
    | Some (Json.Float f) -> Alcotest.(check (float 0.)) "float" 3.0 f
    | _ -> Alcotest.fail "3.0 should parse as Float")

(* --- registry ---------------------------------------------------------- *)

let sample_registry () =
  let r = Registry.create () in
  Registry.inc r "stx_commits" [];
  Registry.inc r ~by:4 "stx_commits" [];
  Registry.set_gauge r "stx_depth" [ ("q", "a") ] 7;
  Registry.set_gauge r "stx_depth" [ ("q", "a") ] 3;
  List.iter (Registry.observe r "stx_lat" [ ("outcome", "commit") ]) [ 0; 5; 6 ];
  r

let test_registry_semantics () =
  let r = sample_registry () in
  Alcotest.(check int) "counter sums" 5 (Registry.counter_value r "stx_commits" []);
  Alcotest.(check int) "gauge high-water" 7
    (Registry.gauge_value r "stx_depth" [ ("q", "a") ]);
  Alcotest.(check int) "absent counter is 0" 0
    (Registry.counter_value r "nope" []);
  (match Registry.histogram r "stx_lat" [ ("outcome", "commit") ] with
  | Some h -> Alcotest.(check int) "hist count" 3 (Hist.count h)
  | None -> Alcotest.fail "histogram missing");
  Alcotest.(check int) "cardinality" 3 (Registry.cardinality r)

let test_registry_label_order_irrelevant () =
  let r = Registry.create () in
  Registry.inc r "m" [ ("a", "1"); ("b", "2") ];
  Registry.inc r "m" [ ("b", "2"); ("a", "1") ];
  Alcotest.(check int) "one cell" 1 (Registry.cardinality r);
  Alcotest.(check int) "both increments landed" 2
    (Registry.counter_value r "m" [ ("b", "2"); ("a", "1") ])

let test_registry_rejects_bad_names () =
  let r = Registry.create () in
  Alcotest.check_raises "bad metric name"
    (Invalid_argument "Registry: bad metric name \"0bad\"") (fun () ->
      Registry.inc r "0bad" []);
  Alcotest.check_raises "empty label value"
    (Invalid_argument "Registry: bad label value \"\"") (fun () ->
      Registry.inc r "m" [ ("k", "") ]);
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Registry: duplicate label \"k\"") (fun () ->
      Registry.inc r "m" [ ("k", "1"); ("k", "2") ])

let test_registry_type_clash_raises () =
  let r = Registry.create () in
  Registry.inc r "m" [];
  Alcotest.check_raises "counter used as histogram"
    (Invalid_argument "Registry: m is a counter, used as a histogram")
    (fun () -> Registry.observe r "m" [] 1)

let test_registry_merge () =
  let a = sample_registry () and b = sample_registry () in
  Registry.set_gauge b "stx_depth" [ ("q", "a") ] 11;
  let m = Registry.merge a b in
  Alcotest.(check int) "counters sum" 10 (Registry.counter_value m "stx_commits" []);
  Alcotest.(check int) "gauges max" 11
    (Registry.gauge_value m "stx_depth" [ ("q", "a") ]);
  (match Registry.histogram m "stx_lat" [ ("outcome", "commit") ] with
  | Some h ->
    Alcotest.(check int) "hists merge" 6 (Hist.count h);
    Alcotest.(check int) "hist sum" 22 (Hist.sum h)
  | None -> Alcotest.fail "merged histogram missing");
  (* the merge is fresh: mutating it must not touch the inputs *)
  Registry.inc m "stx_commits" [];
  Alcotest.(check int) "input untouched" 5
    (Registry.counter_value a "stx_commits" [])

let test_registry_equal_and_diff () =
  let a = sample_registry () and b = sample_registry () in
  Alcotest.(check bool) "equal" true (Registry.equal a b);
  Alcotest.(check (list string)) "no diff" [] (Registry.diff a b);
  Registry.inc b "stx_commits" [];
  Alcotest.(check bool) "unequal after inc" false (Registry.equal a b);
  Alcotest.(check (list string)) "diff names the counter"
    [ "stx_commits{-}: counter 5 vs 6" ] (Registry.diff a b)

let test_registry_json_golden () =
  Alcotest.(check string) "snapshot"
    ("{\"schema\":\"stx-metrics\",\"version\":1,\"metrics\":["
   ^ "{\"name\":\"stx_commits\",\"labels\":{},\"type\":\"counter\",\"value\":5},"
   ^ "{\"name\":\"stx_depth\",\"labels\":{\"q\":\"a\"},\"type\":\"gauge\",\"value\":7},"
   ^ "{\"name\":\"stx_lat\",\"labels\":{\"outcome\":\"commit\"},\"type\":\"histogram\","
   ^ "\"count\":3,\"sum\":11,\"min\":0,\"max\":6,\"buckets\":[[0,1,0],[3,2,6]]}]}")
    (Registry.to_json_string (sample_registry ()))

let test_registry_prometheus_golden () =
  Alcotest.(check string) "exposition"
    "# TYPE stx_commits counter\n\
     stx_commits 5\n\
     # TYPE stx_depth gauge\n\
     stx_depth{q=\"a\"} 7\n\
     # TYPE stx_lat histogram\n\
     stx_lat_bucket{outcome=\"commit\",le=\"0\"} 1\n\
     stx_lat_bucket{outcome=\"commit\",le=\"7\"} 3\n\
     stx_lat_bucket{outcome=\"commit\",le=\"+Inf\"} 3\n\
     stx_lat_sum{outcome=\"commit\"} 11\n\
     stx_lat_count{outcome=\"commit\"} 3\n"
    (Registry.to_prometheus (sample_registry ()))

let test_registry_codec_round_trip () =
  let r = sample_registry () in
  match Registry.decode (Registry.encode r) with
  | None -> Alcotest.fail "decode rejected its own encode"
  | Some r' -> Alcotest.(check bool) "equal" true (Registry.equal r r')

(* values with every character the exposition format escapes, plus the
   bytes the store codec's own framing uses *)
let hairy_values =
  [ "back\\slash"; "dou\"ble"; "new\nline"; "sp ace,co=mma\ttab\rcr"; "plain" ]

let test_registry_prometheus_escaping () =
  let r = Registry.create () in
  Registry.inc r "m" [ ("v", "a\\b\"c\nd") ];
  Alcotest.(check string) "escaped exposition"
    "# TYPE m counter\nm{v=\"a\\\\b\\\"c\\nd\"} 1\n" (Registry.to_prometheus r);
  (* a raw newline in a value would add a line to the exposition; the
     escaped form is always exactly TYPE line + sample line *)
  List.iter
    (fun v ->
      let r = Registry.create () in
      Registry.inc r "m" [ ("k", v) ];
      let lines =
        Registry.to_prometheus r |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) ("line count for " ^ String.escaped v) 2
        (List.length lines))
    hairy_values

let test_registry_codec_escapes_label_values () =
  let r = Registry.create () in
  List.iteri
    (fun i v ->
      Registry.inc r "m" ~by:(i + 1) [ ("k", v) ];
      Registry.set_gauge r "g" [ ("k", v) ] (i + 10);
      Registry.observe r "h" [ ("k", v) ] i)
    hairy_values;
  (* encode must still be one line per metric... *)
  List.iter
    (fun ln ->
      Alcotest.(check bool) "no embedded newline" false (String.contains ln '\n'))
    (Registry.encode r);
  (* ...and decode must reproduce the registry exactly *)
  match Registry.decode (Registry.encode r) with
  | None -> Alcotest.fail "decode rejected escaped label values"
  | Some r' ->
    Alcotest.(check (list string)) "round trip" [] (Registry.diff r r')

let test_registry_codec_rejects_corruption () =
  let lines = Registry.encode (sample_registry ()) in
  let reject name ls =
    Alcotest.(check bool) name true (Registry.decode ls = None)
  in
  reject "garbage line" (lines @ [ "wibble" ]);
  reject "non-numeric counter" [ "counter stx_commits - five" ];
  reject "bad hist payload" [ "hist stx_lat - 3 11 0 6 2 0 1 0" ];
  reject "inconsistent hist"
    [ "hist stx_lat - 99 11 0 6 2 0 1 0 3 2 6" ]

(* --- online vs trace replay, every workload x mode --------------------- *)

(* same tiny-but-contended configuration as test_trace.ml *)
let seed = 3
let scale = 0.05
let threads = 4

let all_modes =
  [
    Stx_core.Mode.Baseline;
    Stx_core.Mode.Addr_only;
    Stx_core.Mode.Staggered_sw;
    Stx_core.Mode.Staggered_hw;
  ]

let measured = Hashtbl.create 64

let run_with_trace (w : Stx_workloads.Workload.t) mode =
  let key = (w.Stx_workloads.Workload.name, mode) in
  match Hashtbl.find_opt measured key with
  | Some r -> r
  | None ->
    let spec =
      Stx_workloads.Workload.spec
        ~instrument:(Stx_core.Mode.uses_alps mode)
        ~scale w
    in
    let tr = Stx_trace.Trace.create ~threads () in
    let cfg = Stx_machine.Config.with_cores threads Stx_machine.Config.default in
    let r =
      Run.simulate ~seed ~cfg ~mode
        ~on_event:(Stx_trace.Trace.handler tr)
        spec
    in
    Hashtbl.add measured key (r, tr);
    (r, tr)

let test_online_equals_replay () =
  List.iter
    (fun (w : Stx_workloads.Workload.t) ->
      List.iter
        (fun mode ->
          let cell =
            Printf.sprintf "%s/%s" w.Stx_workloads.Workload.name
              (Stx_core.Mode.to_string mode)
          in
          let r, tr = run_with_trace w mode in
          let replayed = Collect.of_trace tr in
          match Registry.diff r.Run.metrics replayed with
          | [] -> ()
          | errs ->
            Alcotest.fail
              (cell ^ ": online and replayed registries diverge:\n  "
             ^ String.concat "\n  " errs))
        all_modes)
    Stx_workloads.Registry.all

let test_collect_check_reconciles () =
  List.iter
    (fun (w : Stx_workloads.Workload.t) ->
      List.iter
        (fun mode ->
          let cell =
            Printf.sprintf "%s/%s" w.Stx_workloads.Workload.name
              (Stx_core.Mode.to_string mode)
          in
          let r, _ = run_with_trace w mode in
          match Collect.check r.Run.metrics r.Run.stats with
          | Ok () -> ()
          | Error errs ->
            Alcotest.fail
              (cell ^ ": registry fails to reconcile with stats:\n  "
             ^ String.concat "\n  " errs))
        all_modes)
    Stx_workloads.Registry.all

let test_run_merge_matches_stats_merge () =
  let a, _ = run_with_trace (List.hd Stx_workloads.Registry.all) Stx_core.Mode.Baseline in
  let b, _ =
    run_with_trace (List.hd Stx_workloads.Registry.all) Stx_core.Mode.Staggered_hw
  in
  let m = Run.merge a b in
  Alcotest.(check int) "commits sum"
    (a.Run.stats.Stx_sim.Stats.commits + b.Run.stats.Stx_sim.Stats.commits)
    m.Run.stats.Stx_sim.Stats.commits;
  Alcotest.(check int) "registry counter sums"
    (Registry.counter_value a.Run.metrics "stx_commits" []
    + Registry.counter_value b.Run.metrics "stx_commits" [])
    (Registry.counter_value m.Run.metrics "stx_commits" [])

(* --- GC pressure stamped at export time -------------------------------- *)

let test_gcstats_stamp () =
  let reg = Registry.create () in
  Registry.inc reg "stx_commits" [];
  let out = Gcstats.stamp reg in
  Alcotest.(check bool) "minor words counted" true
    (Registry.counter_value out "stx_gc_minor_words" [] > 0);
  Alcotest.(check bool) "major collections counted" true
    (Registry.counter_value out "stx_gc_major_collections" [] >= 0);
  Alcotest.(check int) "existing series carried over" 1
    (Registry.counter_value out "stx_commits" []);
  (* the live registry stays clean: online/replay equality depends on it *)
  Alcotest.(check int) "argument registry untouched" 0
    (Registry.counter_value reg "stx_gc_minor_words" []);
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "in the JSON snapshot" true
    (contains (Registry.to_json_string out) "stx_gc_minor_words");
  Alcotest.(check bool) "in the Prometheus exposition" true
    (contains (Registry.to_prometheus out) "stx_gc_major_collections")

(* --- the phase profile: the paper's claim, measured -------------------- *)

let genome () =
  match Stx_workloads.Registry.find "genome" with
  | Some w -> w
  | None -> Alcotest.fail "genome workload missing"

let test_baseline_has_no_suffix () =
  let r, _ = run_with_trace (genome ()) Stx_core.Mode.Baseline in
  Alcotest.(check int) "no advisory locks, no serialized suffix" 0
    (Collect.phase_total r.Run.metrics Collect.Suffix);
  Alcotest.(check int) "nor lock wait" 0
    (Collect.phase_total r.Run.metrics Collect.Lock_wait);
  Alcotest.(check bool) "but committed prefix cycles exist" true
    (Collect.phase_total r.Run.metrics Collect.Prefix > 0)

let test_staggered_has_nonzero_suffix () =
  let r, _ = run_with_trace (genome ()) Stx_core.Mode.Staggered_hw in
  Alcotest.(check bool) "serialized suffix present" true
    (Collect.phase_total r.Run.metrics Collect.Suffix > 0);
  Alcotest.(check bool) "speculative prefix still present" true
    (Collect.phase_total r.Run.metrics Collect.Prefix > 0)

(* --- bench snapshots and the regression gate --------------------------- *)

let entry ?(workload = "genome") ?(mode = "HTM") ?(throughput = 100.) () =
  {
    Stx_harness.Bench.workload;
    mode;
    throughput;
    abort_rate = 0.5;
    p99_latency = 1000;
    prefix_share = 0.8;
    suffix_share = 0.1;
  }

let sim_entry ?(workload = "genome") ?(events_per_sec = 1_000_000.)
    ?(words_per_event = 0.5) () =
  {
    Stx_harness.Bench.sim_workload = workload;
    sim_events = 100_000;
    sim_events_per_sec = events_per_sec;
    sim_minor_words_per_event = words_per_event;
  }

let snapshot ?(sims = []) entries =
  {
    Stx_harness.Bench.schema_version = Stx_harness.Bench.schema_version;
    seed = 3;
    scale = 0.05;
    threads = 4;
    entries;
    sims;
  }

let test_bench_json_round_trip () =
  let t =
    snapshot
      ~sims:[ sim_entry (); sim_entry ~workload:"intruder" ~words_per_event:0. () ]
      [ entry (); entry ~mode:"Staggered" ~throughput:123.456 () ]
  in
  match Stx_harness.Bench.of_json_string (Stx_harness.Bench.to_json_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check string) "stable reprint"
      (Stx_harness.Bench.to_json_string t)
      (Stx_harness.Bench.to_json_string t')

let test_bench_rejects_foreign_version () =
  let s =
    "{\"schema\":\"stx-bench\",\"version\":99,\"seed\":1,\"scale\":1.0,\
     \"threads\":4,\"entries\":[]}"
  in
  match Stx_harness.Bench.of_json_string s with
  | Ok _ -> Alcotest.fail "accepted a future schema version"
  | Error e ->
    Alcotest.(check bool) "message names the version" true
      (String.length e > 0)

let test_bench_v2_requires_sims () =
  (* a version-2 snapshot without the sim series is structurally invalid *)
  let s =
    "{\"schema\":\"stx-bench\",\"version\":2,\"seed\":1,\"scale\":1.0,\
     \"threads\":4,\"entries\":[]}"
  in
  match Stx_harness.Bench.of_json_string s with
  | Ok _ -> Alcotest.fail "accepted a v2 snapshot with no sims field"
  | Error e ->
    Alcotest.(check bool) "message names the field" true
      (String.length e > 0)

let verdict_of baseline_thr new_thr =
  let open Stx_harness.Bench in
  let cs =
    compare_runs
      ~baseline:(snapshot [ entry ~throughput:baseline_thr () ])
      (snapshot [ entry ~throughput:new_thr () ])
  in
  match cs with [ c ] -> c.verdict | _ -> Alcotest.fail "expected one cell"

let test_bench_verdicts () =
  let open Stx_harness.Bench in
  Alcotest.(check bool) "regression" true (verdict_of 100. 70. = Regressed);
  Alcotest.(check bool) "improvement" true (verdict_of 100. 130. = Improved);
  Alcotest.(check bool) "within threshold" true (verdict_of 100. 90. = Neutral);
  Alcotest.(check bool) "just inside the gate" true
    (verdict_of 100. 81. = Neutral)

let test_bench_added_removed_not_regressions () =
  let open Stx_harness.Bench in
  let cs =
    compare_runs
      ~baseline:(snapshot [ entry ~mode:"HTM" () ])
      (snapshot [ entry ~mode:"Staggered" () ])
  in
  Alcotest.(check int) "two cells" 2 (List.length cs);
  Alcotest.(check bool) "no regression" true (regressions cs = []);
  Alcotest.(check bool) "one added, one removed" true
    (List.exists (fun c -> c.verdict = Added) cs
    && List.exists (fun c -> c.verdict = Removed) cs)

let test_bench_gate_exit_condition () =
  let open Stx_harness.Bench in
  let baseline = snapshot [ entry (); entry ~mode:"Staggered" () ] in
  let regressed =
    snapshot [ entry ~throughput:10. (); entry ~mode:"Staggered" () ]
  in
  let cs = compare_runs ~baseline regressed in
  (match regressions cs with
  | [ c ] ->
    Alcotest.(check string) "the regressed cell" "HTM" c.c_mode;
    Alcotest.(check bool) "ratio recorded" true (c.ratio < 0.2)
  | _ -> Alcotest.fail "expected exactly one regression");
  Alcotest.check_raises "threshold validated"
    (Invalid_argument "Bench.compare_runs: threshold must be in (0, 1)")
    (fun () -> ignore (compare_runs ~threshold:1.5 ~baseline regressed))

let sim_verdict_of ~base ~fresh =
  let open Stx_harness.Bench in
  let cs =
    compare_sims ~baseline:(snapshot ~sims:[ base ] [])
      (snapshot ~sims:[ fresh ] [])
  in
  match cs with [ c ] -> c.s_verdict | _ -> Alcotest.fail "expected one cell"

let test_sim_compare_verdicts () =
  let open Stx_harness.Bench in
  Alcotest.(check bool) "slower past the gate regresses" true
    (sim_verdict_of ~base:(sim_entry ())
       ~fresh:(sim_entry ~events_per_sec:700_000. ())
    = Regressed);
  Alcotest.(check bool) "faster past the gate improves" true
    (sim_verdict_of ~base:(sim_entry ())
       ~fresh:(sim_entry ~events_per_sec:1_300_000. ())
    = Improved);
  Alcotest.(check bool) "more allocation past the gate regresses" true
    (sim_verdict_of ~base:(sim_entry ())
       ~fresh:(sim_entry ~words_per_event:0.8 ())
    = Regressed);
  Alcotest.(check bool) "less allocation past the gate improves" true
    (sim_verdict_of ~base:(sim_entry ())
       ~fresh:(sim_entry ~words_per_event:0.1 ())
    = Improved);
  Alcotest.(check bool) "within both gates is neutral" true
    (sim_verdict_of ~base:(sim_entry ())
       ~fresh:(sim_entry ~events_per_sec:1_100_000. ~words_per_event:0.55 ())
    = Neutral);
  Alcotest.(check bool) "zero-alloc baseline leaves only the speed leg" true
    (sim_verdict_of
       ~base:(sim_entry ~words_per_event:0. ())
       ~fresh:(sim_entry ~words_per_event:0.01 ())
    = Neutral);
  Alcotest.(check int) "regression list filters" 1
    (List.length
       (sim_regressions
          (compare_sims
             ~baseline:
               (snapshot ~sims:[ sim_entry (); sim_entry ~workload:"tsp" () ] [])
             (snapshot
                ~sims:
                  [
                    sim_entry ~events_per_sec:100. ();
                    sim_entry ~workload:"tsp" ();
                  ]
                []))))

let test_sim_alloc_budget () =
  let open Stx_harness.Bench in
  let ok = snapshot ~sims:[ sim_entry ~words_per_event:6.8 () ] [] in
  Alcotest.(check int) "under budget: no violations" 0
    (List.length (alloc_violations ok));
  let bad =
    snapshot
      ~sims:
        [
          sim_entry ~words_per_event:6.8 ();
          sim_entry ~workload:"tsp" ~words_per_event:minor_words_budget ();
        ]
      []
  in
  match alloc_violations bad with
  | [ e ] -> Alcotest.(check string) "the offender" "tsp" e.sim_workload
  | _ -> Alcotest.fail "expected exactly one violation"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "empty histogram" `Quick test_hist_empty;
    Alcotest.test_case "negative observation rejected" `Quick
      test_hist_negative_rejected;
    Alcotest.test_case "count/sum/min/max exact" `Quick test_hist_exact_fields;
    Alcotest.test_case "single-value quantiles collapse" `Quick
      test_hist_single_value_quantiles;
    Alcotest.test_case "quantiles clamped to extrema" `Quick
      test_hist_quantile_clamped_to_extrema;
    Alcotest.test_case "restore round trip" `Quick test_hist_restore_round_trip;
    Alcotest.test_case "restore rejects inconsistent parts" `Quick
      test_hist_restore_rejects_inconsistent;
    q prop_merge_associative;
    q prop_merge_is_concat;
    q prop_bucket_boundaries;
    q prop_quantile_monotone;
    q prop_quantile_within_bucket_of_truth;
    q prop_quantile_is_observed;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "json keeps int/float distinct" `Quick
      test_json_int_float_distinction;
    Alcotest.test_case "registry semantics" `Quick test_registry_semantics;
    Alcotest.test_case "label order canonicalized" `Quick
      test_registry_label_order_irrelevant;
    Alcotest.test_case "bad names rejected" `Quick
      test_registry_rejects_bad_names;
    Alcotest.test_case "type clash raises" `Quick
      test_registry_type_clash_raises;
    Alcotest.test_case "registry merge" `Quick test_registry_merge;
    Alcotest.test_case "equal and diff" `Quick test_registry_equal_and_diff;
    Alcotest.test_case "json snapshot golden" `Quick test_registry_json_golden;
    Alcotest.test_case "prometheus golden" `Quick
      test_registry_prometheus_golden;
    Alcotest.test_case "prometheus label escaping" `Quick
      test_registry_prometheus_escaping;
    Alcotest.test_case "codec escapes label values" `Quick
      test_registry_codec_escapes_label_values;
    Alcotest.test_case "store codec round trip" `Quick
      test_registry_codec_round_trip;
    Alcotest.test_case "store codec rejects corruption" `Quick
      test_registry_codec_rejects_corruption;
    Alcotest.test_case "online = trace replay (all workloads x modes)" `Slow
      test_online_equals_replay;
    Alcotest.test_case "registry reconciles with stats everywhere" `Slow
      test_collect_check_reconciles;
    Alcotest.test_case "Run.merge is pairwise" `Quick
      test_run_merge_matches_stats_merge;
    Alcotest.test_case "baseline commits are all prefix" `Quick
      test_baseline_has_no_suffix;
    Alcotest.test_case "staggered serializes a nonzero suffix" `Quick
      test_staggered_has_nonzero_suffix;
    Alcotest.test_case "bench snapshot round trip" `Quick
      test_bench_json_round_trip;
    Alcotest.test_case "bench rejects foreign versions" `Quick
      test_bench_rejects_foreign_version;
    Alcotest.test_case "bench verdicts at the threshold" `Quick
      test_bench_verdicts;
    Alcotest.test_case "added/removed cells are not regressions" `Quick
      test_bench_added_removed_not_regressions;
    Alcotest.test_case "the gate fires on an injected regression" `Quick
      test_bench_gate_exit_condition;
    Alcotest.test_case "v2 snapshots require the sim series" `Quick
      test_bench_v2_requires_sims;
    Alcotest.test_case "sim compare verdicts (speed and alloc legs)" `Quick
      test_sim_compare_verdicts;
    Alcotest.test_case "sim allocation budget violations" `Quick
      test_sim_alloc_budget;
    Alcotest.test_case "gc counters stamped at export" `Quick
      test_gcstats_stamp;
  ]

open Stx_tir

(* A small program used across the tests: a linked-list node type and a
   function that walks a list. *)

let node_ty = Types.make "node" [ ("value", Types.Scalar); ("next", Types.Ptr "node") ]

let build_list_walk () =
  let p = Ir.create_program () in
  Ir.add_struct p node_ty;
  let b = Builder.create p "walk" ~params:[ "head" ] in
  let cur = Builder.reg b "cur" in
  Builder.mov b cur (Builder.param b "head");
  let sum = Builder.reg b "sum" in
  Builder.mov b sum (Ir.Imm 0);
  Builder.while_ b
    (fun b -> Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0))
    (fun b ->
      let v = Builder.load b (Builder.gep b (Ir.Reg cur) "node" "value") in
      Builder.bin_to b sum Ir.Add (Ir.Reg sum) v;
      Builder.load_to b cur (Builder.gep b (Ir.Reg cur) "node" "next"));
  Builder.ret b (Some (Ir.Reg sum));
  let f = Builder.finish b in
  (p, f)

let test_types_basics () =
  Alcotest.(check int) "size" 2 (Types.size node_ty);
  Alcotest.(check int) "field index" 1 (Types.field_index node_ty "next");
  Alcotest.(check string) "field name" "value" (Types.field node_ty 0).Types.fname;
  Alcotest.check_raises "unknown field" Not_found (fun () ->
      ignore (Types.field_index node_ty "nope"))

let test_builder_produces_blocks () =
  let _, f = build_list_walk () in
  Alcotest.(check bool) "several blocks" true (Array.length f.Ir.blocks >= 4);
  Alcotest.(check string) "entry first" "entry" f.Ir.blocks.(0).Ir.blabel

let test_builder_verifies () =
  let p, _ = build_list_walk () in
  Verify.program p

let test_builder_rejects_unterminated () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[] in
  Alcotest.(check bool) "finish raises" true
    (try
       ignore (Builder.finish b);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_double_term () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[] in
  Builder.ret b None;
  Alcotest.(check bool) "second terminator raises" true
    (try
       Builder.ret b None;
       false
     with Invalid_argument _ -> true)

let test_builder_if_join () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[ "x" ] in
  let r = Builder.reg b "r" in
  Builder.if_ b (Builder.param b "x")
    (fun b -> Builder.mov b r (Ir.Imm 1))
    (fun b -> Builder.mov b r (Ir.Imm 2));
  Builder.ret b (Some (Ir.Reg r));
  ignore (Builder.finish b);
  Verify.program p

let test_verify_catches_bad_callee () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[] in
  Builder.call b "missing" [];
  Builder.ret b None;
  ignore (Builder.finish b);
  Alcotest.(check bool) "invalid" true
    (try
       Verify.program p;
       false
     with Verify.Invalid _ -> true)

let test_verify_catches_arity () =
  let p = Ir.create_program () in
  let b = Builder.create p "g" ~params:[ "a"; "b" ] in
  Builder.ret b None;
  ignore (Builder.finish b);
  let b = Builder.create p "f" ~params:[] in
  Builder.call b "g" [ Ir.Imm 1 ];
  Builder.ret b None;
  ignore (Builder.finish b);
  Alcotest.(check bool) "invalid arity" true
    (try
       Verify.program p;
       false
     with Verify.Invalid _ -> true)

let test_verify_rejects_nested_atomic () =
  let p = Ir.create_program () in
  let b = Builder.create p "inner" ~params:[] in
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_inner = Ir.add_atomic p ~name:"inner_ab" ~func:"inner" in
  let b = Builder.create p "outer" ~params:[] in
  Builder.atomic_call b ab_inner [];
  Builder.ret b None;
  ignore (Builder.finish b);
  ignore (Ir.add_atomic p ~name:"outer_ab" ~func:"outer");
  Alcotest.(check bool) "nested atomic rejected" true
    (try
       Verify.program p;
       false
     with Verify.Invalid _ -> true)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       f ();
       false
     with Verify.Invalid _ -> true)

let test_verify_use_before_def () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[] in
  let r = Builder.reg b "r" in
  let s = Builder.reg b "s" in
  Builder.mov b s (Ir.Reg r);
  Builder.ret b None;
  ignore (Builder.finish b);
  expect_invalid "straight-line use before def" (fun () -> Verify.program p)

let test_verify_one_armed_join () =
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[ "x" ] in
  let r = Builder.reg b "r" in
  Builder.if_ b (Builder.param b "x")
    (fun b -> Builder.mov b r (Ir.Imm 1))
    (fun _ -> ());
  Builder.ret b (Some (Ir.Reg r));
  ignore (Builder.finish b);
  expect_invalid "read of register assigned on one arm only" (fun () ->
      Verify.program p)

let test_verify_loop_carried_def_ok () =
  (* assigned before the loop, read and reassigned inside: fine *)
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[ "n" ] in
  let acc = Builder.reg b "acc" in
  Builder.mov b acc (Ir.Imm 0);
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "n") (fun b i ->
      Builder.bin_to b acc Ir.Add (Ir.Reg acc) i);
  Builder.ret b (Some (Ir.Reg acc));
  ignore (Builder.finish b);
  Verify.program p

let test_verify_rejects_stray_alp () =
  (* an ALP in a function no atomic block reaches is dead or misplaced *)
  let p = Ir.create_program () in
  let b = Builder.create p "f" ~params:[ "ptr" ] in
  let v = Builder.load b (Builder.param b "ptr") in
  ignore v;
  Builder.ret b None;
  let f = Builder.finish b in
  let alp =
    {
      Ir.iid = Ir.fresh_iid p;
      Ir.op = Ir.Alp { Ir.alp_site = 1; Ir.alp_addr = 0; Ir.alp_anchor_iid = 0 };
    }
  in
  let blk = f.Ir.blocks.(0) in
  blk.Ir.insts <- Array.append [| alp |] blk.Ir.insts;
  expect_invalid "stray ALP rejected" (fun () -> Verify.program p)

let test_atomic_reachable () =
  let p = Ir.create_program () in
  let b = Builder.create p "leaf" ~params:[] in
  Builder.ret b None;
  ignore (Builder.finish b);
  let b = Builder.create p "mid" ~params:[] in
  Builder.call b "leaf" [];
  Builder.ret b None;
  ignore (Builder.finish b);
  let b = Builder.create p "other" ~params:[] in
  Builder.ret b None;
  ignore (Builder.finish b);
  ignore (Ir.add_atomic p ~name:"ab" ~func:"mid");
  let reach = Verify.atomic_reachable p in
  Alcotest.(check bool) "mid reachable" true (Hashtbl.mem reach "mid");
  Alcotest.(check bool) "leaf reachable" true (Hashtbl.mem reach "leaf");
  Alcotest.(check bool) "other not reachable" false (Hashtbl.mem reach "other")

let test_dom_straight_line () =
  let _, f = build_list_walk () in
  let d = Dom.compute f in
  (* entry dominates every reachable block *)
  Array.iteri
    (fun i _ ->
      if Dom.reachable d i then
        Alcotest.(check bool) "entry dominates" true (Dom.dominates d 0 i))
    f.Ir.blocks

let test_dom_loop_head_dominates_body () =
  let _, f = build_list_walk () in
  let d = Dom.compute f in
  let head = Ir.block_index f "while.head.0" in
  let body = Ir.block_index f "while.body.1" in
  let exit = Ir.block_index f "while.exit.2" in
  Alcotest.(check bool) "head dom body" true (Dom.dominates d head body);
  Alcotest.(check bool) "head dom exit" true (Dom.dominates d head exit);
  Alcotest.(check bool) "body not dom exit" false (Dom.dominates d body exit)

let test_dom_inst_dominance_same_block () =
  let _, f = build_list_walk () in
  let d = Dom.compute f in
  Alcotest.(check bool) "earlier dominates later" true
    (Dom.inst_dominates d (0, 0) (0, 1));
  Alcotest.(check bool) "later does not dominate earlier" false
    (Dom.inst_dominates d (0, 1) (0, 0));
  Alcotest.(check bool) "irreflexive" false (Dom.inst_dominates d (0, 0) (0, 0))

let test_dom_preorder_starts_at_entry () =
  let _, f = build_list_walk () in
  let d = Dom.compute f in
  match Dom.preorder d with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "preorder must start at entry"

let test_layout_unique_pcs () =
  let p, _ = build_list_walk () in
  let l = Layout.assign p in
  let seen = Hashtbl.create 16 in
  let f = Ir.find_func p "walk" in
  Ir.iter_insts f (fun _ _ i ->
      let pc = Layout.pc_of_iid l i.Ir.iid in
      Alcotest.(check bool) "pc unique" false (Hashtbl.mem seen pc);
      Hashtbl.add seen pc ());
  Alcotest.(check bool) "counted" true (Layout.num_insts l > 0)

let test_layout_roundtrip () =
  let p, _ = build_list_walk () in
  let l = Layout.assign p in
  let f = Ir.find_func p "walk" in
  Ir.iter_insts f (fun bi ii i ->
      let pc = Layout.pc_of_iid l i.Ir.iid in
      match Layout.loc_of_pc l pc with
      | Some loc ->
        Alcotest.(check string) "func" "walk" loc.Layout.l_func;
        Alcotest.(check int) "block" bi loc.Layout.l_block;
        Alcotest.(check int) "inst" ii loc.Layout.l_inst
      | None -> Alcotest.fail "pc must resolve")

let test_layout_truncate () =
  Alcotest.(check int) "12-bit" 0xABC (Layout.truncate ~bits:12 0x1ABC);
  Alcotest.(check int) "identity under 4k" 0x5 (Layout.truncate ~bits:12 0x5)

let test_pp_renders () =
  let p, f = build_list_walk () in
  let s = Format.asprintf "%a" Pp.func f in
  Alcotest.(check bool) "mentions gep" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun _ -> true));
  let ps = Format.asprintf "%a" Pp.program p in
  Alcotest.(check bool) "program printed" true (String.length ps > 0)

let qcheck_dominance_transitive =
  (* on the list-walk CFG, dominance must be transitive *)
  QCheck.Test.make ~name:"dominance transitive on sample CFG" ~count:200
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let _, f = build_list_walk () in
      let d = Dom.compute f in
      let n = Array.length f.Ir.blocks in
      let a = a mod n and b = b mod n and c = c mod n in
      (not (Dom.dominates d a b && Dom.dominates d b c)) || Dom.dominates d a c)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "types basics" `Quick test_types_basics;
    Alcotest.test_case "builder produces blocks" `Quick test_builder_produces_blocks;
    Alcotest.test_case "builder output verifies" `Quick test_builder_verifies;
    Alcotest.test_case "builder rejects unterminated" `Quick
      test_builder_rejects_unterminated;
    Alcotest.test_case "builder rejects double terminator" `Quick
      test_builder_rejects_double_term;
    Alcotest.test_case "builder if join" `Quick test_builder_if_join;
    Alcotest.test_case "verify catches bad callee" `Quick test_verify_catches_bad_callee;
    Alcotest.test_case "verify catches arity" `Quick test_verify_catches_arity;
    Alcotest.test_case "verify rejects nested atomic" `Quick
      test_verify_rejects_nested_atomic;
    Alcotest.test_case "verify use before def" `Quick test_verify_use_before_def;
    Alcotest.test_case "verify one-armed join" `Quick test_verify_one_armed_join;
    Alcotest.test_case "verify loop-carried def ok" `Quick
      test_verify_loop_carried_def_ok;
    Alcotest.test_case "verify rejects stray alp" `Quick
      test_verify_rejects_stray_alp;
    Alcotest.test_case "atomic reachable set" `Quick test_atomic_reachable;
    Alcotest.test_case "dom entry dominates all" `Quick test_dom_straight_line;
    Alcotest.test_case "dom loop head dominates body" `Quick
      test_dom_loop_head_dominates_body;
    Alcotest.test_case "dom inst dominance same block" `Quick
      test_dom_inst_dominance_same_block;
    Alcotest.test_case "dom preorder starts at entry" `Quick
      test_dom_preorder_starts_at_entry;
    Alcotest.test_case "layout unique pcs" `Quick test_layout_unique_pcs;
    Alcotest.test_case "layout roundtrip" `Quick test_layout_roundtrip;
    Alcotest.test_case "layout truncate" `Quick test_layout_truncate;
    Alcotest.test_case "pp renders" `Quick test_pp_renders;
    q qcheck_dominance_transitive;
  ]

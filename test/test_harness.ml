open Stx_core
open Stx_workloads
open Stx_harness

(* Harness tests run at a small scale and thread count to stay fast. *)

let ctx () = Exp.create ~seed:2 ~scale:0.08 ~threads:4 ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_exp_memoizes () =
  let c = ctx () in
  let w = Option.get (Registry.find "ssca2") in
  let a = Exp.run c w Mode.Baseline in
  let b = Exp.run c w Mode.Baseline in
  Alcotest.(check bool) "same object" true (a == b)

let test_exp_speedup_of_sequential_is_one () =
  let c = ctx () in
  let w = Option.get (Registry.find "ssca2") in
  let seq = Exp.sequential c w in
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 (Exp.speedup c w seq)

let test_exp_rel_performance_baseline_is_one () =
  let c = ctx () in
  let w = Option.get (Registry.find "kmeans") in
  Alcotest.(check (float 1e-9)) "baseline ratio 1" 1.0
    (Exp.rel_performance c w Mode.Baseline)

let test_table1_renders () =
  let s = Reports.table1 (ctx ()) in
  List.iter
    (fun name -> Alcotest.(check bool) ("mentions " ^ name) true (contains s name))
    [ "list-hi"; "memcached"; "W/U"; "LA" ]

let test_table2_renders () =
  let s = Reports.table2 () in
  Alcotest.(check bool) "mentions L1" true (contains s "L1");
  Alcotest.(check bool) "mentions PC tag" true (contains s "PC tag")

let test_table4_covers_all_benchmarks () =
  let s = Reports.table4 (ctx ()) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        ("mentions " ^ w.Workload.name)
        true
        (contains s w.Workload.name))
    Registry.all

let test_fig7_has_harmonic_mean () =
  let s = Reports.fig7 (ctx ()) in
  Alcotest.(check bool) "harmonic mean line" true (contains s "Harmonic mean")

let test_fig8_renders () =
  let s = Reports.fig8 (ctx ()) in
  Alcotest.(check bool) "abort cut column" true (contains s "abort cut")

let test_anchor_tables_report () =
  let w = Option.get (Registry.find "genome") in
  let s = Reports.anchor_tables w in
  Alcotest.(check bool) "has anchors" true (contains s "unified anchor table")

let test_fig1_timelines () =
  let s = Reports.fig1 () in
  Alcotest.(check bool) "has lanes" true (contains s "t0 ");
  Alcotest.(check bool) "shows commits" true (contains s "C");
  Alcotest.(check bool) "legend" true (contains s "advisory lock")

let begin_ev tid time tl =
  Timeline.handler tl ~time
    (Stx_sim.Machine.Tx_begin { tid; ab = 0; attempt = 0; probe = false })

let commit_ev ?(irrevocable = false) tid time cycles tl =
  Timeline.handler tl ~time
    (Stx_sim.Machine.Tx_commit
       { tid; ab = 0; cycles; irrevocable; rset = 0; wset = 0; probe = false })

let abort_ev tid time cycles tl =
  Timeline.handler tl ~time
    (Stx_sim.Machine.Tx_abort
       {
         tid;
         ab = 0;
         kind = Stx_sim.Machine.Conflict;
         conf_line = None;
         conf_pc = None;
         aggressor = None;
         cycles;
         rset = 0;
         wset = 0;
         probe = false;
       })

(* the rendered lane body for one thread, without the "tN |...|" frame *)
let lane s tid =
  let prefix = Printf.sprintf "t%-2d |" tid in
  match
    List.find_opt
      (fun l -> String.length l > String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
      (String.split_on_char '\n' s)
  with
  | Some l ->
    String.sub l (String.length prefix) (String.length l - String.length prefix - 1)
  | None -> Alcotest.failf "no lane for thread %d in:\n%s" tid s

let test_timeline_render_basics () =
  let tl = Timeline.create ~threads:2 in
  begin_ev 0 0 tl;
  commit_ev 0 50 50 tl;
  begin_ev 1 20 tl;
  abort_ev 1 40 20 tl;
  let s = Timeline.render ~width:50 ~until_time:100 tl in
  Alcotest.(check bool) "t0 lane" true (contains s "t0 ");
  Alcotest.(check bool) "t1 lane" true (contains s "t1 ");
  Alcotest.(check bool) "commit marker" true (contains (lane s 0) "C");
  Alcotest.(check bool) "abort marker" true (contains (lane s 1) "X");
  (* what follows an abort is backoff, not more transaction *)
  Alcotest.(check bool) "post-abort backoff" true (contains (lane s 1) "b");
  Alcotest.(check bool) "post-abort not in-tx" false (contains (lane s 1) "Xb=")

let test_timeline_windowing () =
  let tl = Timeline.create ~threads:1 in
  begin_ev 0 5 tl;
  commit_ev 0 10 5 tl;
  (* both events precede the window: they may steer the lane state, but
     must not paint markers at column 0 *)
  let s = Timeline.render ~width:40 ~from_time:100 ~until_time:200 tl in
  let l = lane s 0 in
  Alcotest.(check bool) "no pre-window commit marker" false (contains l "C");
  Alcotest.(check string) "idle lane" (String.make 40 '.') l;
  (* a begin before the window opens the window in-tx, still without
     painting a marker *)
  let tl2 = Timeline.create ~threads:1 in
  begin_ev 0 5 tl2;
  commit_ev 0 150 145 tl2;
  let s2 = Timeline.render ~width:40 ~from_time:100 ~until_time:200 tl2 in
  let l2 = lane s2 0 in
  Alcotest.(check char) "window opens in-tx" '=' l2.[0];
  Alcotest.(check bool) "commit inside window marked" true (contains l2 "C")

let test_timeline_irrevocable_and_timeout () =
  let tl = Timeline.create ~threads:1 in
  let ev = Timeline.handler tl in
  begin_ev 0 0 tl;
  abort_ev 0 10 10 tl;
  ev ~time:20 (Stx_sim.Machine.Tx_irrevocable { tid = 0; ab = 0 });
  begin_ev 0 22 tl;
  commit_ev ~irrevocable:true 0 80 58 tl;
  let s = Timeline.render ~width:50 ~until_time:100 tl in
  let l = lane s 0 in
  Alcotest.(check bool) "irrevocable background" true (contains l "I");
  Alcotest.(check bool) "backoff/global-spin stall shown" true (contains l "b");
  (* the irrevocable attempt paints 'I' right up to its commit, not '=' *)
  Alcotest.(check char) "irrevocable up to the commit" 'I' l.[String.index l 'C' - 1];
  (* lock timeouts keep their own marker instead of masquerading as Begin *)
  let tl2 = Timeline.create ~threads:1 in
  let ev2 = Timeline.handler tl2 in
  begin_ev 0 0 tl2;
  ev2 ~time:20 (Stx_sim.Machine.Lock_waiting { tid = 0; lock = 3 });
  ev2 ~time:40 (Stx_sim.Machine.Lock_timeout { tid = 0; lock = 3 });
  commit_ev 0 80 80 tl2;
  let s2 = Timeline.render ~width:50 ~until_time:100 tl2 in
  let l2 = lane s2 0 in
  Alcotest.(check bool) "wait marker" true (contains l2 "w");
  Alcotest.(check bool) "timeout marker" true (contains l2 "T")

let test_ablation_reports_render () =
  (* the cheapest ablations at tiny scale; just exercise the rendering *)
  let s = Ablations.pc_tag_width ~seed:2 ~scale:0.05 () in
  Alcotest.(check bool) "tag table" true (contains s "tag bits")

let test_scaling_report () =
  let c = Exp.create ~seed:2 ~scale:0.05 ~threads:4 () in
  let w = Option.get (Registry.find "ssca2") in
  let s = Reports.scaling c w in
  Alcotest.(check bool) "has thread column" true (contains s "Threads")

(* --- htmlreport -------------------------------------------------------- *)

let render_report () =
  let w = Option.get (Registry.find "list-hi") in
  let seed = 3 and scale = 0.05 and threads = 4 in
  let mode = Mode.Staggered_hw in
  let policy = Stx_policy.default in
  let spec = Workload.spec ~instrument:(Mode.uses_alps mode) ~scale w in
  let cfg = Stx_machine.Config.with_cores threads Stx_machine.Config.default in
  let tr = Stx_trace.Trace.create ~threads () in
  let tc = Stx_telemetry.Collect.create ~window:1000 ~threads () in
  let r =
    Stx_metrics.Run.simulate ~seed ~htm_policy:policy ~cfg ~mode
      ~on_event:(fun ~time ev ->
        Stx_trace.Trace.handler tr ~time ev;
        Stx_telemetry.Collect.handler tc ~time ev)
      spec
  in
  let series =
    Stx_telemetry.Collect.finalize
      ~horizon:r.Stx_metrics.Run.stats.Stx_sim.Stats.total_cycles tc
  in
  Htmlreport.render
    {
      Htmlreport.workload = w.Workload.name;
      mode;
      seed;
      scale;
      threads;
      policy;
      series;
      episodes = Stx_telemetry.Episodes.detect series;
      stats = r.Stx_metrics.Run.stats;
      registry = r.Stx_metrics.Run.metrics;
      attribution = Stx_trace.Trace.abort_attribution tr;
      ab_name = string_of_int;
    }

let test_htmlreport_deterministic () =
  let a = render_report () and b = render_report () in
  Alcotest.(check bool) "byte-identical across renders" true (a = b)

let test_htmlreport_self_contained () =
  let html = render_report () in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("no external reference: " ^ marker) false
        (contains html marker))
    [ "http://"; "https://"; "<script"; "<link"; "src=" ];
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("section present: " ^ marker) true
        (contains html marker))
    [
      "<!DOCTYPE html>"; "<style>"; "<svg"; "Time series"; "Episodes";
      "Conflict hot spots"; "phase profile"; "</html>";
    ]

(* --- the zero-allocation budget ---------------------------------------
   One real workload through the interpreter must stay under the bench
   driver's absolute bound on minor-heap words per simulated event; a
   pooled-structure regression (a closure, an option, a Hashtbl creeping
   back into the hot path) shows up here as orders of magnitude, not
   noise. *)

let test_allocation_budget () =
  match Registry.find "genome" with
  | None -> Alcotest.fail "genome workload missing"
  | Some w ->
    let e = Bench.measure_sim ~cores:8 ~scale:0.1 w in
    Alcotest.(check bool) "events simulated" true (e.Bench.sim_events > 0);
    Alcotest.(check bool)
      (Printf.sprintf "%.2f minor words/event under the %.0f budget"
         e.Bench.sim_minor_words_per_event Bench.minor_words_budget)
      true
      (e.Bench.sim_minor_words_per_event < Bench.minor_words_budget)

let suite =
  [
    Alcotest.test_case "exp memoizes runs" `Quick test_exp_memoizes;
    Alcotest.test_case "allocation budget per simulated event" `Slow
      test_allocation_budget;
    Alcotest.test_case "sequential speedup is 1" `Quick
      test_exp_speedup_of_sequential_is_one;
    Alcotest.test_case "baseline relative performance is 1" `Quick
      test_exp_rel_performance_baseline_is_one;
    Alcotest.test_case "table1 renders" `Slow test_table1_renders;
    Alcotest.test_case "table2 renders" `Quick test_table2_renders;
    Alcotest.test_case "table4 covers all benchmarks" `Slow
      test_table4_covers_all_benchmarks;
    Alcotest.test_case "fig7 has harmonic mean" `Slow test_fig7_has_harmonic_mean;
    Alcotest.test_case "fig8 renders" `Slow test_fig8_renders;
    Alcotest.test_case "anchor tables report" `Quick test_anchor_tables_report;
    Alcotest.test_case "scaling report" `Quick test_scaling_report;
    Alcotest.test_case "fig1 timelines" `Quick test_fig1_timelines;
    Alcotest.test_case "timeline render basics" `Quick test_timeline_render_basics;
    Alcotest.test_case "timeline windowing" `Quick test_timeline_windowing;
    Alcotest.test_case "timeline irrevocable and timeout" `Quick
      test_timeline_irrevocable_and_timeout;
    Alcotest.test_case "ablation renders" `Slow test_ablation_reports_render;
    Alcotest.test_case "html report is deterministic" `Quick
      test_htmlreport_deterministic;
    Alcotest.test_case "html report is self-contained" `Quick
      test_htmlreport_self_contained;
  ]

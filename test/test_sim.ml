open Stx_tir
open Stx_machine
open Stx_core
open Stx_sim

(* A shared-counter workload: every thread atomically increments the same
   counter [iters] times. Maximum contention, trivially checkable result. *)

let counter_ty = Types.make "counter" [ ("value", Types.Scalar) ]

let build_counter_prog ~tx_work =
  let p = Ir.create_program () in
  Ir.add_struct p counter_ty;
  let b = Builder.create p "add_one" ~params:[ "counter" ] in
  let v = Builder.load b (Builder.gep b (Builder.param b "counter") "counter" "value") in
  Builder.work b (Ir.Imm tx_work);
  Builder.store b
    ~addr:(Builder.gep b (Builder.param b "counter") "counter" "value")
    (Builder.bin b Ir.Add v (Ir.Imm 1));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"add_one" ~func:"add_one" in
  let b = Builder.create p "main" ~params:[ "counter"; "iters" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "iters") (fun b _ ->
      Builder.atomic_call b ab [ Builder.param b "counter" ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let counter_addr = ref 0

let counter_spec ?(instrument = true) ?(tx_work = 50) ~iters () =
  let p = build_counter_prog ~tx_work in
  let compiled = Stx_compiler.Pipeline.compile ~instrument p in
  {
    Machine.compiled;
    Machine.thread_main = "main";
    Machine.thread_args =
      (fun env ~threads ->
        let addr = Alloc.alloc_shared env.Machine.alloc 1 in
        counter_addr := addr;
        Memory.store env.Machine.memory addr 0;
        Array.make threads [| addr; iters |]);
  }

let run_counter ?(threads = 4) ?(iters = 20) ?(seed = 7) ~mode () =
  let cfg = Config.with_cores threads Config.default in
  let final = ref 0 in
  let spec = counter_spec ~iters () in
  let stats = Machine.run ~seed ~cfg ~mode spec in
  (* re-run setup is not possible; read the counter through a fresh run's
     memory instead we capture the address used during the run *)
  ignore final;
  stats

(* run and also return the final counter value *)
let run_counter_value ?(threads = 4) ?(iters = 20) ?(seed = 7) ~mode () =
  let cfg = Config.with_cores threads Config.default in
  let memo = ref None in
  let spec0 = counter_spec ~iters () in
  let spec =
    {
      spec0 with
      Machine.thread_args =
        (fun env ~threads ->
          let r = spec0.Machine.thread_args env ~threads in
          memo := Some env.Machine.memory;
          r);
    }
  in
  let stats = Machine.run ~seed ~cfg ~mode spec in
  let v = Memory.load (Option.get !memo) !counter_addr in
  (stats, v)

let test_single_thread_correct () =
  let stats, v = run_counter_value ~threads:1 ~iters:50 ~mode:Mode.Baseline () in
  Alcotest.(check int) "final value" 50 v;
  Alcotest.(check int) "commits" 50 stats.Stats.commits;
  Alcotest.(check int) "no aborts alone" 0 stats.Stats.aborts

let test_multithread_correct_all_modes () =
  List.iter
    (fun mode ->
      let stats, v = run_counter_value ~threads:4 ~iters:25 ~mode () in
      Alcotest.(check int)
        (Mode.to_string mode ^ " final value")
        100 v;
      Alcotest.(check int) (Mode.to_string mode ^ " commits") 100 stats.Stats.commits)
    Mode.all

let test_contention_causes_aborts () =
  let stats, _ = run_counter_value ~threads:8 ~iters:25 ~mode:Mode.Baseline () in
  Alcotest.(check bool) "aborts happen" true (stats.Stats.aborts > 0);
  Alcotest.(check bool) "wasted cycles accrue" true (stats.Stats.wasted_cycles > 0)

let test_staggered_reduces_aborts () =
  let base, _ = run_counter_value ~threads:8 ~iters:50 ~mode:Mode.Baseline () in
  let stag, _ = run_counter_value ~threads:8 ~iters:50 ~mode:Mode.Staggered_hw () in
  Alcotest.(check bool)
    (Printf.sprintf "aborts reduced (%d -> %d)" base.Stats.aborts stag.Stats.aborts)
    true
    (stag.Stats.aborts < base.Stats.aborts);
  Alcotest.(check bool) "locks were used" true (stag.Stats.lock_acquires > 0)

let test_determinism () =
  let run () =
    let s, v = run_counter_value ~threads:6 ~iters:30 ~seed:42 ~mode:Mode.Staggered_hw () in
    (s.Stats.commits, s.Stats.aborts, s.Stats.total_cycles, s.Stats.insts, v)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_seed_changes_schedule () =
  let run seed =
    let s, _ = run_counter_value ~threads:6 ~iters:30 ~seed ~mode:Mode.Baseline () in
    s.Stats.total_cycles
  in
  (* different seeds give different backoff draws; cycles usually differ *)
  let distinct =
    List.sort_uniq compare [ run 1; run 2; run 3; run 4 ] |> List.length
  in
  Alcotest.(check bool) "some variation across seeds" true (distinct > 1)

let test_events_emitted () =
  let cfg = Config.with_cores 4 Config.default in
  let begins = ref 0 and commits = ref 0 and aborts = ref 0 in
  let spec = counter_spec ~iters:10 () in
  let _ =
    Machine.run ~seed:3 ~cfg ~mode:Mode.Staggered_hw
      ~on_event:(fun ~time:_ ev ->
        match ev with
        | Machine.Tx_begin _ -> incr begins
        | Machine.Tx_commit _ -> incr commits
        | Machine.Tx_abort _ -> incr aborts
        | _ -> ())
      spec
  in
  Alcotest.(check int) "commits observed" 40 !commits;
  Alcotest.(check bool) "begins >= commits" true (!begins >= !commits)

let test_irrevocable_fallback () =
  (* with 1 retry allowed, contended txs fall back to the global lock fast *)
  let cfg = { (Config.with_cores 8 Config.default) with Config.max_retries = 1 } in
  let spec = counter_spec ~iters:20 () in
  let memo = ref None in
  let spec =
    {
      spec with
      Machine.thread_args =
        (fun env ~threads ->
          let r = spec.Machine.thread_args env ~threads in
          memo := Some env.Machine.memory;
          r);
    }
  in
  let stats = Machine.run ~seed:5 ~cfg ~mode:Mode.Baseline spec in
  Alcotest.(check bool) "irrevocable entries" true (stats.Stats.irrevocable_entries > 0);
  Alcotest.(check int) "still correct" 160 (Memory.load (Option.get !memo) !counter_addr);
  Alcotest.(check int) "all committed" 160 stats.Stats.commits

let test_tx_stats_accounting () =
  let stats, _ = run_counter_value ~threads:4 ~iters:20 ~mode:Mode.Baseline () in
  Alcotest.(check bool) "tx cycles positive" true (stats.Stats.tx_mode_cycles > 0);
  Alcotest.(check bool) "useful cycles positive" true (stats.Stats.useful_cycles > 0);
  Alcotest.(check bool) "total cycles >= useful" true
    (stats.Stats.total_cycles > 0);
  Alcotest.(check bool) "insts counted" true (stats.Stats.insts > 0);
  Alcotest.(check bool) "tx insts subset" true
    (stats.Stats.tx_insts <= stats.Stats.insts)

let test_explicit_abort_retries () =
  (* a tx that aborts explicitly on its first attempt, then succeeds *)
  let p = Ir.create_program () in
  Ir.add_struct p counter_ty;
  let b = Builder.create p "flaky" ~params:[ "counter" ] in
  let v = Builder.load b (Builder.gep b (Builder.param b "counter") "counter" "value") in
  (* abort while the counter is even; the increment below makes it odd *)
  Builder.when_ b
    (Builder.bin b Ir.Eq (Builder.bin b Ir.Rem v (Ir.Imm 2)) (Ir.Imm 0))
    (fun b ->
      Builder.store b
        ~addr:(Builder.gep b (Builder.param b "counter") "counter" "value")
        (Builder.bin b Ir.Add v (Ir.Imm 1));
      Builder.abort_tx b);
  Builder.store b
    ~addr:(Builder.gep b (Builder.param b "counter") "counter" "value")
    (Builder.bin b Ir.Add v (Ir.Imm 1));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"flaky" ~func:"flaky" in
  let b = Builder.create p "main" ~params:[ "counter" ] in
  Builder.atomic_call b ab [ Builder.param b "counter" ];
  Builder.ret b None;
  ignore (Builder.finish b);
  let compiled = Stx_compiler.Pipeline.compile p in
  let memo = ref None in
  let addr_ref = ref 0 in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args =
        (fun env ~threads ->
          let addr = Alloc.alloc_shared env.Machine.alloc 1 in
          addr_ref := addr;
          memo := Some env.Machine.memory;
          Array.make threads [| addr |]);
    }
  in
  let cfg = Config.with_cores 1 Config.default in
  let stats = Machine.run ~cfg ~mode:Mode.Baseline spec in
  (* every speculative attempt stores +1 then aborts; the store is rolled
     back each time, so the parity never changes and the tx retries until
     the irrevocable fallback (whose nt-stores are immediate) finishes it *)
  Alcotest.(check int) "explicit abort every speculative attempt"
    cfg.Config.max_retries stats.Stats.explicit_aborts;
  Alcotest.(check int) "one commit" 1 stats.Stats.commits;
  Alcotest.(check int) "went irrevocable" 1 stats.Stats.irrevocable_entries;
  (* irrevocable: the even branch stores +1 (visible), Abort_tx is a no-op
     outside speculation, then the second store writes v+1 again *)
  Alcotest.(check int) "rollbacks left no trace" 1
    (Memory.load (Option.get !memo) !addr_ref)

let test_uninstrumented_faster_single_thread () =
  let cfg = Config.with_cores 1 Config.default in
  let run instrument =
    let spec = counter_spec ~instrument ~iters:200 () in
    (Machine.run ~seed:1 ~cfg ~mode:(if instrument then Mode.Staggered_hw else Mode.Baseline) spec)
      .Stats.total_cycles
  in
  let plain = run false and instr = run true in
  (* inactive ALPs cost a little, but less than 10% here *)
  Alcotest.(check bool)
    (Printf.sprintf "overhead small (%d vs %d)" plain instr)
    true
    (instr >= plain && float_of_int instr < 1.10 *. float_of_int plain)

let test_lazy_htm_counter_correct () =
  (* the whole protocol stack on the lazy variant: still serializable *)
  let cfg = { (Config.with_cores 6 Config.default) with Config.lazy_htm = true } in
  List.iter
    (fun mode ->
      let memo = ref None in
      let spec0 = counter_spec ~iters:20 () in
      let spec =
        {
          spec0 with
          Machine.thread_args =
            (fun env ~threads ->
              let r = spec0.Machine.thread_args env ~threads in
              memo := Some env.Machine.memory;
              r);
        }
      in
      let stats = Machine.run ~seed:9 ~cfg ~mode spec in
      Alcotest.(check int)
        (Mode.to_string mode ^ " lazy correct")
        120
        (Memory.load (Option.get !memo) !counter_addr);
      Alcotest.(check int) (Mode.to_string mode ^ " commits") 120 stats.Stats.commits)
    [ Mode.Baseline; Mode.Staggered_hw ]

let qcheck_counter_correct_any_schedule =
  QCheck.Test.make ~name:"counter correct for any seed/threads/mode" ~count:25
    QCheck.(triple (int_range 1 8) (int_range 1 100) (int_range 0 4))
    (fun (threads, seed, mode_i) ->
      let mode = List.nth Mode.all mode_i in
      let iters = 10 in
      let stats, v = run_counter_value ~threads ~iters ~seed ~mode () in
      v = threads * iters && stats.Stats.commits = threads * iters)

let run_trap_prog build_body =
  let p = Ir.create_program () in
  Ir.add_struct p counter_ty;
  let b = Builder.create p "main" ~params:[ "arg" ] in
  build_body b;
  Builder.ret b None;
  ignore (Builder.finish b);
  let compiled = Stx_compiler.Pipeline.compile p in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args = (fun _ ~threads -> Array.make threads [| 0 |]);
    }
  in
  Machine.run ~cfg:(Config.with_cores 1 Config.default) ~mode:Mode.Baseline spec

let expect_trap name build_body =
  Alcotest.(check bool) name true
    (try
       ignore (run_trap_prog build_body);
       false
     with Machine.Sim_error _ -> true)

let test_traps () =
  expect_trap "null dereference" (fun b ->
      ignore (Builder.load b (Ir.Imm 0)));
  expect_trap "division by zero" (fun b ->
      ignore (Builder.bin b Ir.Div (Ir.Imm 1) (Ir.Imm 0)));
  expect_trap "remainder by zero" (fun b ->
      ignore (Builder.bin b Ir.Rem (Ir.Imm 1) (Ir.Imm 0)));
  expect_trap "rng zero bound" (fun b -> ignore (Builder.rng b (Ir.Imm 0)))

let test_max_steps_backstop () =
  let p = Ir.create_program () in
  let b = Builder.create p "main" ~params:[] in
  Builder.while_ b (fun _ -> Ir.Imm 1) (fun b -> Builder.work b (Ir.Imm 1));
  Builder.ret b None;
  ignore (Builder.finish b);
  let compiled = Stx_compiler.Pipeline.compile p in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = "main";
      Machine.thread_args = (fun _ ~threads -> Array.make threads [||]);
    }
  in
  Alcotest.(check bool) "runaway trapped" true
    (try
       ignore
         (Machine.run ~max_steps:5000
            ~cfg:(Config.with_cores 1 Config.default)
            ~mode:Mode.Baseline spec);
       false
     with Machine.Sim_error _ -> true)

(* Stats.merge: sum counters, union frequency tables, max makespans *)

let stats_fixture ~threads ~commits ~total ~line ~ab_commits =
  let s = Stats.create ~threads in
  s.Stats.commits <- commits;
  s.Stats.aborts <- commits / 2;
  s.Stats.useful_cycles <- 10 * commits;
  s.Stats.total_cycles <- total;
  Stats.note_conflict s ~conf_line:line ~conf_pc:(Some (line land 0xfff));
  let ab = Stats.ab s 0 in
  ab.Stats.ab_commits <- ab_commits;
  s

let test_merge_sums_counters () =
  let a = stats_fixture ~threads:4 ~commits:10 ~total:1000 ~line:7 ~ab_commits:3 in
  let b = stats_fixture ~threads:2 ~commits:6 ~total:900 ~line:9 ~ab_commits:2 in
  let m = Stats.merge a b in
  Alcotest.(check int) "commits sum" 16 m.Stats.commits;
  Alcotest.(check int) "aborts sum" 8 m.Stats.aborts;
  Alcotest.(check int) "useful sum" 160 m.Stats.useful_cycles;
  Alcotest.(check int) "makespan is max" 1000 m.Stats.total_cycles;
  Alcotest.(check int) "threads is max" 4 m.Stats.threads

let test_merge_unions_freq_tables () =
  let a = stats_fixture ~threads:1 ~commits:2 ~total:10 ~line:7 ~ab_commits:1 in
  Stats.note_conflict a ~conf_line:7 ~conf_pc:None;
  let b = stats_fixture ~threads:1 ~commits:2 ~total:10 ~line:7 ~ab_commits:1 in
  let m = Stats.merge a b in
  (* line 7: twice in a, once in b *)
  Alcotest.(check (option int)) "addr counts sum" (Some 3)
    (Hashtbl.find_opt m.Stats.conf_addr_freq 7);
  Alcotest.(check (option int)) "pc counts sum" (Some 2)
    (Hashtbl.find_opt m.Stats.conf_pc_freq 7)

let test_merge_per_ab_and_neutrality () =
  let a = stats_fixture ~threads:2 ~commits:4 ~total:50 ~line:1 ~ab_commits:4 in
  let b = stats_fixture ~threads:2 ~commits:2 ~total:40 ~line:2 ~ab_commits:2 in
  let m = Stats.merge a b in
  Alcotest.(check int) "ab commits sum" 6 (Stats.ab m 0).Stats.ab_commits;
  (* merging with a fresh (all-zero) stats value changes nothing *)
  let z = Stats.merge a (Stats.create ~threads:1) in
  Alcotest.(check int) "zero is neutral: commits" a.Stats.commits z.Stats.commits;
  Alcotest.(check int) "zero is neutral: makespan" a.Stats.total_cycles
    z.Stats.total_cycles;
  Alcotest.(check (option int)) "zero is neutral: freq" (Some 1)
    (Hashtbl.find_opt z.Stats.conf_addr_freq 1);
  (* inputs are not mutated *)
  Alcotest.(check int) "left input untouched" 4 a.Stats.commits

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "merge sums counters, maxes makespan" `Quick
      test_merge_sums_counters;
    Alcotest.test_case "merge unions frequency tables" `Quick
      test_merge_unions_freq_tables;
    Alcotest.test_case "merge per-ab and neutrality" `Quick
      test_merge_per_ab_and_neutrality;
    Alcotest.test_case "single thread correct" `Quick test_single_thread_correct;
    Alcotest.test_case "multithread correct, all modes" `Quick
      test_multithread_correct_all_modes;
    Alcotest.test_case "contention causes aborts" `Quick test_contention_causes_aborts;
    Alcotest.test_case "staggered reduces aborts" `Quick test_staggered_reduces_aborts;
    Alcotest.test_case "deterministic for a seed" `Quick test_determinism;
    Alcotest.test_case "seed affects schedule" `Quick test_seed_changes_schedule;
    Alcotest.test_case "events emitted" `Quick test_events_emitted;
    Alcotest.test_case "irrevocable fallback" `Quick test_irrevocable_fallback;
    Alcotest.test_case "stats accounting sane" `Quick test_tx_stats_accounting;
    Alcotest.test_case "explicit abort retries and rolls back" `Quick
      test_explicit_abort_retries;
    Alcotest.test_case "instrumentation overhead small" `Quick
      test_uninstrumented_faster_single_thread;
    Alcotest.test_case "lazy HTM end to end correct" `Quick
      test_lazy_htm_counter_correct;
    Alcotest.test_case "program traps" `Quick test_traps;
    Alcotest.test_case "max-steps backstop" `Quick test_max_steps_backstop;
    q qcheck_counter_correct_any_schedule;
  ]

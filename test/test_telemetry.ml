open Stx_telemetry
module M = Stx_sim.Machine

(* The telemetry layer keeps the repo's online-vs-replay contract at
   window granularity: the series folded live from the machine's event
   hook must equal, bit for bit, the series replayed from the same run's
   trace capture. The sections below pin that contract on the full
   workload x mode matrix, the window-boundary arithmetic on synthetic
   events, the episode detectors on hand-built series, the codecs, and
   the serve harness's shard-merge jobs-invariance. *)

(* same tiny-but-contended configuration as test_trace/test_metrics *)
let seed = 3
let scale = 0.05
let threads = 4
let window = 500

let all_modes =
  [
    Stx_core.Mode.Baseline;
    Stx_core.Mode.Addr_only;
    Stx_core.Mode.Staggered_sw;
    Stx_core.Mode.Staggered_hw;
  ]

let measured = Hashtbl.create 64

let run_with_telemetry (w : Stx_workloads.Workload.t) mode =
  let key = (w.Stx_workloads.Workload.name, mode) in
  match Hashtbl.find_opt measured key with
  | Some r -> r
  | None ->
    let spec =
      Stx_workloads.Workload.spec
        ~instrument:(Stx_core.Mode.uses_alps mode)
        ~scale w
    in
    let tr = Stx_trace.Trace.create ~threads () in
    let tc = Collect.create ~window ~threads () in
    let cfg = Stx_machine.Config.with_cores threads Stx_machine.Config.default in
    let stats =
      M.run ~seed ~cfg ~mode
        ~on_event:(fun ~time ev ->
          Stx_trace.Trace.handler tr ~time ev;
          Collect.handler tc ~time ev)
        spec
    in
    let horizon = stats.Stx_sim.Stats.total_cycles in
    let online = Collect.finalize ~horizon tc in
    let r = (stats, tr, online) in
    Hashtbl.add measured key r;
    r

(* --- online vs trace replay, every workload x mode --------------------- *)

let test_online_equals_replay () =
  List.iter
    (fun (w : Stx_workloads.Workload.t) ->
      List.iter
        (fun mode ->
          let cell =
            Printf.sprintf "%s/%s" w.Stx_workloads.Workload.name
              (Stx_core.Mode.to_string mode)
          in
          let stats, tr, online = run_with_telemetry w mode in
          let replayed =
            Collect.of_trace ~window
              ~horizon:stats.Stx_sim.Stats.total_cycles tr
          in
          match Series.diff online replayed with
          | [] -> ()
          | errs ->
            Alcotest.fail
              (cell ^ ": online and replayed series diverge:\n  "
             ^ String.concat "\n  " errs))
        all_modes)
    Stx_workloads.Registry.all

let test_busy_sums_to_attempt_cycles () =
  (* span-splitting must conserve cycles: summing per-window busy over
     the whole series recovers every attempt's latency exactly *)
  List.iter
    (fun (w : Stx_workloads.Workload.t) ->
      let _, tr, online = run_with_telemetry w Stx_core.Mode.Staggered_hw in
      let from_events = ref 0 in
      Stx_trace.Trace.iter tr (fun ~time:_ ev ->
          match ev with
          | M.Tx_commit { cycles; _ }
          | M.Tx_abort { cycles; _ }
          | M.Stm_commit { cycles; _ }
          | M.Stm_abort { cycles; _ } -> from_events := !from_events + cycles
          | _ -> ());
      let from_windows =
        Array.fold_left
          (fun acc w -> acc + Series.busy_total w)
          0 online.Series.windows
      in
      Alcotest.(check int)
        (w.Stx_workloads.Workload.name ^ ": busy cycles conserved")
        !from_events from_windows)
    Stx_workloads.Registry.all

(* --- window-boundary arithmetic on synthetic events -------------------- *)

let commit ~tid ~cycles =
  M.Tx_commit
    { tid; ab = 0; cycles; irrevocable = false; rset = 1; wset = 1; probe = false }

let abort ~tid ~cycles =
  M.Tx_abort
    {
      tid;
      ab = 0;
      kind = M.Conflict;
      conf_line = Some 7;
      conf_pc = Some 3;
      aggressor = Some (1 - tid);
      cycles;
      rset = 1;
      wset = 1;
      probe = false;
    }

let test_boundary_point_and_span () =
  let c = Collect.create ~window:10 ~threads:2 () in
  (* commit exactly on a boundary: the point lands in window 1, but its
     10-cycle span is [0,10) — entirely window 0 *)
  Collect.handler c ~time:10 (commit ~tid:0 ~cycles:10);
  let s = Collect.finalize c in
  Alcotest.(check int) "commit counted in window 1" 1
    s.Series.windows.(1).Series.hw_commits;
  Alcotest.(check int) "span fully in window 0" 10
    s.Series.windows.(0).Series.busy.(0);
  Alcotest.(check int) "no span in window 1" 0
    s.Series.windows.(1).Series.busy.(0)

let test_span_split_across_windows () =
  let c = Collect.create ~window:10 ~threads:2 () in
  (* abort at 25 wasting 7 cycles: span [18,25) puts 2 cycles in window
     1 and 5 in window 2 *)
  Collect.handler c ~time:25 (abort ~tid:1 ~cycles:7);
  let s = Collect.finalize c in
  Alcotest.(check int) "window 1 share" 2 s.Series.windows.(1).Series.busy.(1);
  Alcotest.(check int) "window 2 share" 5 s.Series.windows.(2).Series.busy.(1);
  Alcotest.(check int) "abort in window 2" 1
    s.Series.windows.(2).Series.conflict_aborts;
  Alcotest.(check (list (pair int int)))
    "line tally" [ (7, 1) ]
    s.Series.windows.(2).Series.conf_lines

let test_span_clamped_at_zero () =
  let c = Collect.create ~window:10 ~threads:1 () in
  (* a 9-cycle attempt reported at time 3 can only have run [0,3) *)
  Collect.handler c ~time:3 (abort ~tid:0 ~cycles:9);
  let s = Collect.finalize c in
  Alcotest.(check int) "clamped span" 3 s.Series.windows.(0).Series.busy.(0)

let test_finalize_pads_and_stays_live () =
  let c = Collect.create ~window:10 ~threads:1 () in
  Collect.handler c ~time:4 (commit ~tid:0 ~cycles:2);
  (* horizon 35 is not a multiple of the window: ceil gives 4 windows *)
  let s = Collect.finalize ~horizon:35 c in
  Alcotest.(check int) "padded to ceil(35/10)" 4 (Series.length s);
  Alcotest.(check int) "tail window empty" 0
    (Series.commits s.Series.windows.(3));
  (* the collector keeps collecting after a snapshot *)
  Collect.handler c ~time:52 (commit ~tid:0 ~cycles:1);
  let s2 = Collect.finalize c in
  Alcotest.(check int) "later events extend the series" 6 (Series.length s2);
  Alcotest.(check int) "earlier snapshot unchanged" 4 (Series.length s)

(* --- episode detectors on hand-built series ---------------------------- *)

let mk_window ?(hw_commits = 0) ?(conflict_aborts = 0) ?(stm_cycles = 0)
    ?(lock_cycles = 0) ?(offered = 0) ?(completed = 0) ?(busy = [| 0 |])
    ?(conf_lines = []) () =
  {
    Series.hw_commits;
    irrevocable_commits = 0;
    stm_commits = 0;
    conflict_aborts;
    locksub_aborts = 0;
    capacity_aborts = 0;
    explicit_aborts = 0;
    stm_conflict_aborts = 0;
    stm_aborts = 0;
    lock_waits = 0;
    lock_acquires = 0;
    lock_timeouts = 0;
    busy;
    stm_cycles;
    lock_cycles;
    offered;
    completed;
    queue_peak = 0;
    sojourn = Stx_metrics.Hist.create ();
    conf_lines;
    conf_pcs = [];
  }

let mk_series windows =
  { Series.width = 10; threads = 1; windows = Array.of_list windows }

let saturations s =
  List.filter_map
    (function Episodes.Saturation { onset } -> Some onset | _ -> None)
    (Episodes.detect s)

let test_saturation_healthy_run_is_quiet () =
  (* per-window completions lag arrivals by one window, but the
     cumulative count catches up — no saturation *)
  let s =
    mk_series
      [
        mk_window ~offered:10 ~completed:0 ();
        mk_window ~offered:10 ~completed:10 ();
        mk_window ~offered:0 ~completed:10 ();
      ]
  in
  Alcotest.(check (list int)) "no onset" [] (saturations s)

let test_saturation_onset_detected () =
  (* keeps up for one window, then completions flatline for good: by
     window 2's end only 14 of the 20 due-by-then have completed *)
  let s =
    mk_series
      [
        mk_window ~offered:10 ~completed:10 ();
        mk_window ~offered:10 ~completed:2 ();
        mk_window ~offered:10 ~completed:2 ();
        mk_window ~offered:10 ~completed:2 ();
      ]
  in
  Alcotest.(check (list int)) "onset at the first falling-behind window" [ 2 ]
    (saturations s)

let test_saturation_requires_staying_below () =
  (* a transient dip that recovers by the end is not saturation *)
  let s =
    mk_series
      [
        mk_window ~offered:10 ~completed:0 ();
        mk_window ~offered:10 ~completed:0 ();
        mk_window ~offered:10 ~completed:30 ();
      ]
  in
  Alcotest.(check (list int)) "recovered" [] (saturations s)

let test_storm_run_merging_and_dominants () =
  let quiet = mk_window () in
  let stormy lines n = mk_window ~conflict_aborts:n ~conf_lines:lines () in
  let s =
    mk_series
      [
        quiet;
        stormy [ (5, 4); (9, 2) ] 6;
        stormy [ (9, 5) ] 5;
        quiet;
        stormy [ (5, 4) ] 4;
      ]
  in
  (* mean over nonzero windows = 5, threshold = max 4 (2*15/3) = 10..
     no: 2*15/3 = 10, so only storms >= 10 — override explicitly *)
  let storms =
    List.filter_map
      (function
        | Episodes.Conflict_storm { first; last; aborts; peak; line; _ } ->
          Some (first, last, aborts, peak, line)
        | _ -> None)
      (Episodes.detect ~storm_threshold:4 s)
  in
  match storms with
  | [ (a_first, a_last, a_aborts, a_peak, a_line); (b_first, b_last, _, _, _) ]
    ->
    Alcotest.(check (pair int int)) "first run spans windows 1-2" (1, 2)
      (a_first, a_last);
    Alcotest.(check int) "first run aborts" 11 a_aborts;
    Alcotest.(check int) "first run peak" 6 a_peak;
    (* line 9 has 2+5=7 vs line 5's 4 across the merged run *)
    Alcotest.(check (option int)) "dominant line merged" (Some 9) a_line;
    Alcotest.(check (pair int int)) "second run is the lone window" (4, 4)
      (b_first, b_last)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 storms, got %d" (List.length l))

let test_storm_threshold_floor () =
  (* a whisper of conflicts never reads as a storm: the bar is >= 4 *)
  let s = mk_series [ mk_window ~conflict_aborts:1 (); mk_window () ] in
  Alcotest.(check int) "floor" 4 (Episodes.storm_threshold s);
  Alcotest.(check int) "no storms" 0 (List.length (Episodes.detect s))

let test_tier_shift_detection () =
  let htm = mk_window ~busy:[| 10 |] () in
  let stm = mk_window ~busy:[| 10 |] ~stm_cycles:8 () in
  let idle = mk_window ~busy:[| 0 |] () in
  let s = mk_series [ htm; stm; idle; htm ] in
  let shifts =
    List.filter_map
      (function
        | Episodes.Tier_shift { window; from_; to_ } ->
          Some (window, Episodes.tier_name from_, Episodes.tier_name to_)
        | _ -> None)
      (Episodes.detect s)
  in
  (* idle windows are skipped: the stm->htm shift lands on window 3 *)
  Alcotest.(check (list (triple int string string)))
    "htm->stm then stm->htm"
    [ (1, "htm", "stm"); (3, "stm", "htm") ]
    shifts

(* --- codecs ------------------------------------------------------------ *)

let test_jsonl_round_trip () =
  let _, _, online =
    run_with_telemetry
      (List.hd Stx_workloads.Registry.all)
      Stx_core.Mode.Staggered_hw
  in
  match Series.of_jsonl (Series.to_jsonl ~meta:[ ("k", "v") ] online) with
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)
  | Ok back -> (
    match Series.diff online back with
    | [] -> ()
    | errs ->
      Alcotest.fail ("round trip diverged:\n  " ^ String.concat "\n  " errs))

let test_csv_shape () =
  let _, _, online =
    run_with_telemetry
      (List.hd Stx_workloads.Registry.all)
      Stx_core.Mode.Staggered_hw
  in
  let csv = Series.to_csv ~meta:[ ("workload", "x") ] online in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  let data = List.filter (fun l -> l.[0] <> '#') lines in
  (* header + one row per window *)
  Alcotest.(check int) "rows" (Series.length online + 1) (List.length data);
  let cols s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun row ->
      Alcotest.(check int) "column count" (cols (List.hd data)) (cols row))
    data

(* --- serve: shard-merged series independent of --jobs ------------------ *)

let test_serve_merge_jobs_invariant () =
  let module Serve = Stx_serve.Serve in
  let service =
    match Stx_workloads.Registry.find_service "memcached" with
    | Some s -> s
    | None -> Alcotest.fail "memcached service missing"
  in
  let cfg =
    Serve.config ~threads:4 ~seed:7 ~horizon:6_000 ~shards:3
      ~telemetry_window:500
      ~arrival:(Stx_serve.Arrival.Poisson { rate = 6.0 })
      service
  in
  let series jobs =
    match (Serve.run ~jobs cfg).Serve.telemetry with
    | Some s -> s
    | None -> Alcotest.fail "telemetry missing from serve report"
  in
  let sequential = series 1 and parallel = series 3 in
  match Series.diff sequential parallel with
  | [] -> ()
  | errs ->
    Alcotest.fail
      ("jobs changed the merged series:\n  " ^ String.concat "\n  " errs)

let suite =
  [
    Alcotest.test_case "online equals trace replay (all cells)" `Slow
      test_online_equals_replay;
    Alcotest.test_case "busy cycles conserved across windows" `Slow
      test_busy_sums_to_attempt_cycles;
    Alcotest.test_case "boundary: point vs span" `Quick
      test_boundary_point_and_span;
    Alcotest.test_case "span split across windows" `Quick
      test_span_split_across_windows;
    Alcotest.test_case "span clamped at time zero" `Quick
      test_span_clamped_at_zero;
    Alcotest.test_case "finalize pads and stays live" `Quick
      test_finalize_pads_and_stays_live;
    Alcotest.test_case "saturation: healthy run quiet" `Quick
      test_saturation_healthy_run_is_quiet;
    Alcotest.test_case "saturation: onset detected" `Quick
      test_saturation_onset_detected;
    Alcotest.test_case "saturation: must stay below" `Quick
      test_saturation_requires_staying_below;
    Alcotest.test_case "storms: runs merge, dominants merge" `Quick
      test_storm_run_merging_and_dominants;
    Alcotest.test_case "storms: threshold floor" `Quick
      test_storm_threshold_floor;
    Alcotest.test_case "tier shifts" `Quick test_tier_shift_detection;
    Alcotest.test_case "jsonl round trip" `Slow test_jsonl_round_trip;
    Alcotest.test_case "csv shape" `Slow test_csv_shape;
    Alcotest.test_case "serve series independent of jobs" `Slow
      test_serve_merge_jobs_invariant;
  ]

type tier = Htm | Stm | Lock

type t =
  | Saturation of { onset : int }
  | Conflict_storm of {
      first : int;
      last : int;
      aborts : int;
      peak : int;
      line : int option;
      pc : int option;
    }
  | Tier_shift of { window : int; from_ : tier; to_ : tier }

let tier_name = function Htm -> "htm" | Stm -> "stm" | Lock -> "lock"

(* --- saturation ------------------------------------------------------- *)

(* A window "misses" when completions by its end sit under 90% of the
   arrivals through the END OF THE PREVIOUS window. Cumulative counts
   (not per-window ones) make a growing backlog — the actual signature
   of saturation — monotone in the comparison, and the one-window grace
   absorbs the arrival-to-completion pipeline lag a healthy run always
   shows. Only the loaded portion of the run is judged: the open-loop
   harness drains its queue after the arrival horizon, so the tail
   always catches up eventually and says nothing about saturation.
   Onset is the first miss of the unbroken miss run ending at the last
   arrival window. *)
let saturation (s : Series.t) =
  let n = Array.length s.windows in
  let coff = Array.make (max 1 n) 0 and ccomp = Array.make (max 1 n) 0 in
  let off = ref 0 and comp = ref 0 in
  for i = 0 to n - 1 do
    off := !off + s.windows.(i).offered;
    comp := !comp + s.windows.(i).completed;
    coff.(i) <- !off;
    ccomp.(i) <- !comp
  done;
  let last_off = ref (-1) in
  for i = 0 to n - 1 do
    if s.windows.(i).offered > 0 then last_off := i
  done;
  let misses i =
    let due = if i = 0 then 0 else coff.(i - 1) in
    due > 0 && 10 * ccomp.(i) < 9 * due
  in
  let onset = ref None in
  (try
     for i = !last_off downto 0 do
       if misses i then onset := Some i else raise Exit
     done
   with Exit -> ());
  match !onset with Some i -> [ Saturation { onset = i } ] | None -> []

(* --- conflict storms -------------------------------------------------- *)

let storm_threshold (s : Series.t) =
  let total = ref 0 and nz = ref 0 in
  Array.iter
    (fun (w : Series.window) ->
      if w.conflict_aborts > 0 then begin
        total := !total + w.conflict_aborts;
        incr nz
      end)
    s.windows;
  if !nz = 0 then 4 else max 4 (2 * !total / !nz)

let merge_tally acc l =
  List.iter
    (fun (id, c) ->
      Hashtbl.replace acc id (c + Option.value ~default:0 (Hashtbl.find_opt acc id)))
    l

let dominant tbl =
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.fold_left
       (fun best (id, c) ->
         match best with
         | Some (_, bc) when bc >= c -> best
         | _ -> Some (id, c))
       None
  |> Option.map fst

let storms ~threshold (s : Series.t) =
  let n = Array.length s.windows in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.windows.(!i).conflict_aborts >= threshold then begin
      let first = !i in
      let j = ref !i in
      while !j + 1 < n && s.windows.(!j + 1).conflict_aborts >= threshold do
        incr j
      done;
      let last = !j in
      let aborts = ref 0 and peak = ref 0 in
      let lines = Hashtbl.create 8 and pcs = Hashtbl.create 8 in
      for k = first to last do
        let w = s.windows.(k) in
        aborts := !aborts + w.conflict_aborts;
        if w.conflict_aborts > !peak then peak := w.conflict_aborts;
        merge_tally lines w.conf_lines;
        merge_tally pcs w.conf_pcs
      done;
      out :=
        Conflict_storm
          {
            first;
            last;
            aborts = !aborts;
            peak = !peak;
            line = dominant lines;
            pc = dominant pcs;
          }
        :: !out;
      i := last + 1
    end
    else incr i
  done;
  List.rev !out

(* --- tier shifts ------------------------------------------------------ *)

(* Dominant tier of a busy window by occupancy cycles; ties resolve
   htm > stm > lock so a pure-HTM run never reports a shift. *)
let dominant_tier (w : Series.window) =
  if Series.busy_total w = 0 then None
  else
    let htm = Series.htm_cycles w in
    if htm >= w.stm_cycles && htm >= w.lock_cycles then Some Htm
    else if w.stm_cycles >= w.lock_cycles then Some Stm
    else Some Lock

let tier_shifts (s : Series.t) =
  let out = ref [] in
  let prev = ref None in
  Array.iteri
    (fun i w ->
      match dominant_tier w with
      | None -> ()
      | Some tier ->
        (match !prev with
        | Some from_ when from_ <> tier ->
          out := Tier_shift { window = i; from_; to_ = tier } :: !out
        | _ -> ());
        prev := Some tier)
    s.windows;
  List.rev !out

(* --- driver ----------------------------------------------------------- *)

let onset = function
  | Saturation { onset } -> onset
  | Conflict_storm { first; _ } -> first
  | Tier_shift { window; _ } -> window

let rank = function Saturation _ -> 0 | Conflict_storm _ -> 1 | Tier_shift _ -> 2

let detect ?storm_threshold:thr (s : Series.t) =
  let threshold = match thr with Some t -> t | None -> storm_threshold s in
  saturation s @ storms ~threshold s @ tier_shifts s
  |> List.stable_sort (fun a b ->
         match compare (onset a) (onset b) with
         | 0 -> compare (rank a) (rank b)
         | c -> c)

let to_string (s : Series.t) = function
  | Saturation { onset } ->
    Printf.sprintf "saturation onset at window %d (cycle %d): achieved < 90%% of offered from here on"
      onset (onset * s.width)
  | Conflict_storm { first; last; aborts; peak; line; pc } ->
    let opt name = function
      | Some id -> Printf.sprintf ", dominant %s %d" name id
      | None -> ""
    in
    Printf.sprintf
      "conflict storm windows %d-%d (cycles %d-%d): %d conflict aborts, peak %d/window%s%s"
      first last (first * s.width) (((last + 1) * s.width) - 1) aborts peak
      (opt "line" line) (opt "pc" pc)
  | Tier_shift { window; from_; to_ } ->
    Printf.sprintf "tier shift at window %d (cycle %d): %s -> %s" window
      (window * s.width) (tier_name from_) (tier_name to_)

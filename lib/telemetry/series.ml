module Hist = Stx_metrics.Hist
module Json = Stx_metrics.Json

type window = {
  hw_commits : int;
  irrevocable_commits : int;
  stm_commits : int;
  conflict_aborts : int;
  locksub_aborts : int;
  capacity_aborts : int;
  explicit_aborts : int;
  stm_conflict_aborts : int;
  stm_aborts : int;
  lock_waits : int;
  lock_acquires : int;
  lock_timeouts : int;
  busy : int array;
  stm_cycles : int;
  lock_cycles : int;
  offered : int;
  completed : int;
  queue_peak : int;
  sojourn : Hist.t;
  conf_lines : (int * int) list;
  conf_pcs : (int * int) list;
}

type t = { width : int; threads : int; windows : window array }

let length t = Array.length t.windows
let commits w = w.hw_commits + w.irrevocable_commits + w.stm_commits

let aborts w =
  w.conflict_aborts + w.locksub_aborts + w.capacity_aborts + w.explicit_aborts
  + w.stm_conflict_aborts + w.stm_aborts

let busy_total w = Array.fold_left ( + ) 0 w.busy
let htm_cycles w = busy_total w - w.stm_cycles - w.lock_cycles

(* highest count wins; ties go to the lower id, so the choice is a
   function of the tally alone *)
let top tallies =
  List.fold_left
    (fun best (id, c) ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (id, c))
    None tallies

let top_line w = top w.conf_lines
let top_pc w = top w.conf_pcs

(* --- merge ------------------------------------------------------------ *)

let merge_tallies a b =
  let tbl = Hashtbl.create 16 in
  let add (id, c) =
    Hashtbl.replace tbl id (c + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let merge_window a b =
  {
    hw_commits = a.hw_commits + b.hw_commits;
    irrevocable_commits = a.irrevocable_commits + b.irrevocable_commits;
    stm_commits = a.stm_commits + b.stm_commits;
    conflict_aborts = a.conflict_aborts + b.conflict_aborts;
    locksub_aborts = a.locksub_aborts + b.locksub_aborts;
    capacity_aborts = a.capacity_aborts + b.capacity_aborts;
    explicit_aborts = a.explicit_aborts + b.explicit_aborts;
    stm_conflict_aborts = a.stm_conflict_aborts + b.stm_conflict_aborts;
    stm_aborts = a.stm_aborts + b.stm_aborts;
    lock_waits = a.lock_waits + b.lock_waits;
    lock_acquires = a.lock_acquires + b.lock_acquires;
    lock_timeouts = a.lock_timeouts + b.lock_timeouts;
    busy = Array.init (Array.length a.busy) (fun i -> a.busy.(i) + b.busy.(i));
    stm_cycles = a.stm_cycles + b.stm_cycles;
    lock_cycles = a.lock_cycles + b.lock_cycles;
    offered = a.offered + b.offered;
    completed = a.completed + b.completed;
    queue_peak = max a.queue_peak b.queue_peak;
    sojourn = Hist.merge a.sojourn b.sojourn;
    conf_lines = merge_tallies a.conf_lines b.conf_lines;
    conf_pcs = merge_tallies a.conf_pcs b.conf_pcs;
  }

let merge a b =
  if a.width <> b.width then
    invalid_arg "Series.merge: window widths differ"
  else if a.threads <> b.threads then
    invalid_arg "Series.merge: thread counts differ";
  let n = max (Array.length a.windows) (Array.length b.windows) in
  let pick s i = if i < Array.length s.windows then Some s.windows.(i) else None in
  let windows =
    Array.init n (fun i ->
        match (pick a i, pick b i) with
        | Some wa, Some wb -> merge_window wa wb
        | Some w, None | None, Some w -> w
        | None, None -> assert false)
  in
  { width = a.width; threads = a.threads; windows }

(* --- equality --------------------------------------------------------- *)

let diff a b =
  let errs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if a.width <> b.width then note "width: %d vs %d" a.width b.width;
  if a.threads <> b.threads then note "threads: %d vs %d" a.threads b.threads;
  if Array.length a.windows <> Array.length b.windows then
    note "windows: %d vs %d" (Array.length a.windows) (Array.length b.windows);
  let n = min (Array.length a.windows) (Array.length b.windows) in
  for i = 0 to n - 1 do
    let wa = a.windows.(i) and wb = b.windows.(i) in
    let eq what x y = if x <> y then note "window %d %s: %d vs %d" i what x y in
    eq "hw_commits" wa.hw_commits wb.hw_commits;
    eq "irrevocable_commits" wa.irrevocable_commits wb.irrevocable_commits;
    eq "stm_commits" wa.stm_commits wb.stm_commits;
    eq "conflict_aborts" wa.conflict_aborts wb.conflict_aborts;
    eq "locksub_aborts" wa.locksub_aborts wb.locksub_aborts;
    eq "capacity_aborts" wa.capacity_aborts wb.capacity_aborts;
    eq "explicit_aborts" wa.explicit_aborts wb.explicit_aborts;
    eq "stm_conflict_aborts" wa.stm_conflict_aborts wb.stm_conflict_aborts;
    eq "stm_aborts" wa.stm_aborts wb.stm_aborts;
    eq "lock_waits" wa.lock_waits wb.lock_waits;
    eq "lock_acquires" wa.lock_acquires wb.lock_acquires;
    eq "lock_timeouts" wa.lock_timeouts wb.lock_timeouts;
    eq "stm_cycles" wa.stm_cycles wb.stm_cycles;
    eq "lock_cycles" wa.lock_cycles wb.lock_cycles;
    eq "offered" wa.offered wb.offered;
    eq "completed" wa.completed wb.completed;
    eq "queue_peak" wa.queue_peak wb.queue_peak;
    if wa.busy <> wb.busy then note "window %d busy arrays differ" i;
    if not (Hist.equal wa.sojourn wb.sojourn) then
      note "window %d sojourn sketches differ" i;
    if wa.conf_lines <> wb.conf_lines then note "window %d line tallies differ" i;
    if wa.conf_pcs <> wb.conf_pcs then note "window %d pc tallies differ" i
  done;
  List.rev !errs

let equal a b = diff a b = []

(* --- CSV -------------------------------------------------------------- *)

let one_line s =
  String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s

let to_csv ?(meta = []) t =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter (fun (k, v) -> pf "# %s=%s\n" (one_line k) (one_line v)) meta;
  pf "# width=%d threads=%d windows=%d\n" t.width t.threads
    (Array.length t.windows);
  pf
    "window,start,commits,hw_commits,irrevocable_commits,stm_commits,aborts,conflict_aborts,locksub_aborts,capacity_aborts,explicit_aborts,stm_conflict_aborts,stm_aborts,lock_waits,lock_acquires,lock_timeouts,busy_cycles,stm_cycles,lock_cycles,offered,completed,queue_peak,sojourn_p50,sojourn_p99,top_line,top_pc";
  for c = 0 to t.threads - 1 do
    pf ",busy_c%d" c
  done;
  pf "\n";
  Array.iteri
    (fun i w ->
      let opt = function Some (id, _) -> string_of_int id | None -> "-" in
      pf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s"
        i (i * t.width) (commits w) w.hw_commits w.irrevocable_commits
        w.stm_commits (aborts w) w.conflict_aborts w.locksub_aborts
        w.capacity_aborts w.explicit_aborts w.stm_conflict_aborts w.stm_aborts
        w.lock_waits w.lock_acquires w.lock_timeouts (busy_total w)
        w.stm_cycles w.lock_cycles w.offered w.completed w.queue_peak
        (Hist.p50 w.sojourn) (Hist.p99 w.sojourn) (opt (top_line w))
        (opt (top_pc w));
      Array.iter (fun c -> pf ",%d" c) w.busy;
      pf "\n")
    t.windows;
  Buffer.contents b

(* --- JSONL ------------------------------------------------------------ *)

let schema = "stx-telemetry"
let version = 1

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Hist.count h));
      ("sum", Json.Int (Hist.sum h));
      ("min", Json.Int (Hist.min_value h));
      ("max", Json.Int (Hist.max_value h));
      ( "buckets",
        Json.List
          (List.map
             (fun (k, c, m) -> Json.List [ Json.Int k; Json.Int c; Json.Int m ])
             (Hist.buckets_full h)) );
    ]

let tallies_json l =
  Json.List (List.map (fun (id, c) -> Json.List [ Json.Int id; Json.Int c ]) l)

let window_json i w =
  Json.Obj
    [
      ("window", Json.Int i);
      ("hw_commits", Json.Int w.hw_commits);
      ("irrevocable_commits", Json.Int w.irrevocable_commits);
      ("stm_commits", Json.Int w.stm_commits);
      ("conflict_aborts", Json.Int w.conflict_aborts);
      ("locksub_aborts", Json.Int w.locksub_aborts);
      ("capacity_aborts", Json.Int w.capacity_aborts);
      ("explicit_aborts", Json.Int w.explicit_aborts);
      ("stm_conflict_aborts", Json.Int w.stm_conflict_aborts);
      ("stm_aborts", Json.Int w.stm_aborts);
      ("lock_waits", Json.Int w.lock_waits);
      ("lock_acquires", Json.Int w.lock_acquires);
      ("lock_timeouts", Json.Int w.lock_timeouts);
      ("busy", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) w.busy)));
      ("stm_cycles", Json.Int w.stm_cycles);
      ("lock_cycles", Json.Int w.lock_cycles);
      ("offered", Json.Int w.offered);
      ("completed", Json.Int w.completed);
      ("queue_peak", Json.Int w.queue_peak);
      ("sojourn", hist_json w.sojourn);
      ("conf_lines", tallies_json w.conf_lines);
      ("conf_pcs", tallies_json w.conf_pcs);
    ]

let to_jsonl ?(meta = []) t =
  let b = Buffer.create 4096 in
  let header =
    Json.Obj
      ([
         ("schema", Json.Str schema);
         ("version", Json.Int version);
         ("width", Json.Int t.width);
         ("threads", Json.Int t.threads);
         ("windows", Json.Int (Array.length t.windows));
       ]
      @ List.map (fun (k, v) -> (k, Json.Str v)) meta)
  in
  Buffer.add_string b (Json.to_string header);
  Buffer.add_char b '\n';
  Array.iteri
    (fun i w ->
      Buffer.add_string b (Json.to_string (window_json i w));
      Buffer.add_char b '\n')
    t.windows;
  Buffer.contents b

let ( let* ) = Option.bind

let hist_of_json j =
  let* count = Option.bind (Json.member "count" j) Json.as_int in
  let* sum = Option.bind (Json.member "sum" j) Json.as_int in
  let* mn = Option.bind (Json.member "min" j) Json.as_int in
  let* mx = Option.bind (Json.member "max" j) Json.as_int in
  let* bl = Option.bind (Json.member "buckets" j) Json.as_list in
  let* triples =
    List.fold_left
      (fun acc bj ->
        let* acc = acc in
        match Json.as_list bj with
        | Some [ k; c; m ] ->
          let* k = Json.as_int k in
          let* c = Json.as_int c in
          let* m = Json.as_int m in
          Some ((k, c, m) :: acc)
        | _ -> None)
      (Some []) bl
  in
  Hist.restore ~count ~sum ~min_value:mn ~max_value:mx (List.rev triples)

let tallies_of_json j =
  let* l = Json.as_list j in
  List.fold_left
    (fun acc p ->
      let* acc = acc in
      match Json.as_list p with
      | Some [ id; c ] ->
        let* id = Json.as_int id in
        let* c = Json.as_int c in
        Some ((id, c) :: acc)
      | _ -> None)
    (Some []) l
  |> Option.map List.rev

let window_of_json j =
  let geti k = Option.bind (Json.member k j) Json.as_int in
  let* hw_commits = geti "hw_commits" in
  let* irrevocable_commits = geti "irrevocable_commits" in
  let* stm_commits = geti "stm_commits" in
  let* conflict_aborts = geti "conflict_aborts" in
  let* locksub_aborts = geti "locksub_aborts" in
  let* capacity_aborts = geti "capacity_aborts" in
  let* explicit_aborts = geti "explicit_aborts" in
  let* stm_conflict_aborts = geti "stm_conflict_aborts" in
  let* stm_aborts = geti "stm_aborts" in
  let* lock_waits = geti "lock_waits" in
  let* lock_acquires = geti "lock_acquires" in
  let* lock_timeouts = geti "lock_timeouts" in
  let* busyl = Option.bind (Json.member "busy" j) Json.as_list in
  let* busy =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* c = Json.as_int c in
        Some (c :: acc))
      (Some []) busyl
    |> Option.map (fun l -> Array.of_list (List.rev l))
  in
  let* stm_cycles = geti "stm_cycles" in
  let* lock_cycles = geti "lock_cycles" in
  let* offered = geti "offered" in
  let* completed = geti "completed" in
  let* queue_peak = geti "queue_peak" in
  let* sojourn = Option.bind (Json.member "sojourn" j) hist_of_json in
  let* conf_lines = Option.bind (Json.member "conf_lines" j) tallies_of_json in
  let* conf_pcs = Option.bind (Json.member "conf_pcs" j) tallies_of_json in
  Some
    {
      hw_commits;
      irrevocable_commits;
      stm_commits;
      conflict_aborts;
      locksub_aborts;
      capacity_aborts;
      explicit_aborts;
      stm_conflict_aborts;
      stm_aborts;
      lock_waits;
      lock_acquires;
      lock_timeouts;
      busy;
      stm_cycles;
      lock_cycles;
      offered;
      completed;
      queue_peak;
      sojourn;
      conf_lines;
      conf_pcs;
    }

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty telemetry document"
  | header :: rest -> (
    match Json.parse header with
    | Error e -> Error ("header: " ^ e)
    | Ok h -> (
      match
        ( Option.bind (Json.member "schema" h) Json.as_string,
          Option.bind (Json.member "version" h) Json.as_int,
          Option.bind (Json.member "width" h) Json.as_int,
          Option.bind (Json.member "threads" h) Json.as_int )
      with
      | Some s, Some v, Some width, Some threads
        when s = schema && v = version ->
        let rec go i acc = function
          | [] -> Ok { width; threads; windows = Array.of_list (List.rev acc) }
          | l :: rest -> (
            match Json.parse l with
            | Error e -> Error (Printf.sprintf "window line %d: %s" i e)
            | Ok j -> (
              match window_of_json j with
              | Some w when Array.length w.busy = threads ->
                go (i + 1) (w :: acc) rest
              | _ -> Error (Printf.sprintf "window line %d: malformed window" i)))
        in
        go 0 [] rest
      | _ -> Error "not a stx-telemetry v1 header"))

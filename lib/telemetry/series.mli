(** Tumbling-window time series over simulated cycles.

    Every whole-run aggregate the repo reports — [Stats], the metrics
    registry, the serve SLO quantiles — answers "how much", never
    "when". A series answers "when": the run's horizon is cut into
    tumbling windows of a fixed width (cycles), and each window carries
    the counts, occupancies and (in serving runs) request-plane
    observations that fell inside it. The series is produced by
    {!Collect} (online from the {!Stx_sim.Machine} event hook, or
    offline by replaying a {!Stx_trace.Trace} capture — the two are
    equal by construction) and consumed by the {!Episodes} detectors,
    the CSV/JSONL codecs below, and the [stx_repro report] HTML
    renderer.

    Window [i] covers cycles [[i*width, (i+1)*width)]. A point event at
    time [t] lands in window [t / width]; a span of [c] cycles ending at
    [t] (an attempt's latency) is distributed over the windows it
    overlaps, so per-window occupancy cycles sum exactly to the run's
    totals no matter where the window boundaries cut. *)

type window = {
  hw_commits : int;  (** speculative hardware commits *)
  irrevocable_commits : int;  (** commits under the global lock *)
  stm_commits : int;  (** software-tier commits *)
  conflict_aborts : int;
  locksub_aborts : int;
  capacity_aborts : int;
  explicit_aborts : int;
  stm_conflict_aborts : int;  (** hw aborts inflicted by stm publishes *)
  stm_aborts : int;  (** software-tier aborts, all kinds *)
  lock_waits : int;  (** advisory-lock wait episodes begun *)
  lock_acquires : int;
  lock_timeouts : int;
  busy : int array;
      (** per-core cycles spent inside transactional attempts (either
          tier, committed or aborted, incl. irrevocable), span-split
          across windows *)
  stm_cycles : int;  (** software-tier occupancy cycles *)
  lock_cycles : int;  (** global-lock (irrevocable) occupancy cycles *)
  offered : int;  (** serving plane: requests that arrived *)
  completed : int;  (** serving plane: requests whose txn committed *)
  queue_peak : int;  (** serving plane: deepest queue seen at a dispatch *)
  sojourn : Stx_metrics.Hist.t;
      (** serving plane: sojourn sketch of requests completing in this
          window; empty in closed-loop runs *)
  conf_lines : (int * int) list;
      (** conflicting cache line -> conflict aborts, line ascending *)
  conf_pcs : (int * int) list;
      (** conflicting PC tag -> conflict aborts, tag ascending *)
}

type t = { width : int; threads : int; windows : window array }

val length : t -> int
val commits : window -> int
(** All tiers: [hw + irrevocable + stm]. *)

val aborts : window -> int
(** Both tiers: the five hardware kinds plus the software-tier aborts. *)

val busy_total : window -> int
val htm_cycles : window -> int
(** Busy cycles in neither the software tier nor under the global lock:
    [busy_total - stm_cycles - lock_cycles]. *)

val top_line : window -> (int * int) option
(** Dominant conflicting cache line (highest count, ties to the lower
    line id); [None] in a conflict-free window. *)

val top_pc : window -> (int * int) option

val merge : t -> t -> t
(** Pointwise sum of two series of the same width and thread count
    (counts and occupancies add, queue peaks max, sojourn sketches
    merge, line/PC tallies union-sum); the longer tail is kept as-is.
    Associative and commutative, so sharded serve runs merged in shard
    order are independent of [--jobs]. Raises [Invalid_argument] on a
    width or thread-count mismatch. *)

val equal : t -> t -> bool
val diff : t -> t -> string list
(** Human-readable divergences, [[]] iff {!equal}. *)

(** {2 Codecs}

    Both are deterministic functions of the series (plus the caller's
    [meta] pairs, emitted in the order given): equal series render
    byte-identically. *)

val to_csv : ?meta:(string * string) list -> t -> string
(** One row per window. Leading [# key=value] comment lines carry the
    meta; the header row names fixed columns plus one [busy_c<i>] column
    per core. Sojourn quantiles are rendered as p50/p99 columns; the
    full sketch only survives in the JSONL form. *)

val to_jsonl : ?meta:(string * string) list -> t -> string
(** Line 1 is a header object ([schema]/[version]/[width]/[threads] and
    the meta), then one JSON object per window with every field,
    including the full sojourn sketch and line/PC tallies. *)

val of_jsonl : string -> (t, string) result
(** Parse a {!to_jsonl} document back (meta is dropped). [Error] names
    the offending line. *)

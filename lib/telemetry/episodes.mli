(** Pure episode detectors over a {!Series.t}.

    Each detector is a total function of the series — no simulator or
    wall-clock state — so the episode list is as deterministic and
    shard-merge-stable as the series itself. Windows are identified by
    index; multiply by [Series.width] for cycles. *)

type tier = Htm | Stm | Lock

type t =
  | Saturation of { onset : int }
      (** First window from which achieved completions stay below 90% of
          offered arrivals for the rest of the loaded run: at its end
          and at the end of every later window up to the last arrival,
          cumulative completions sit under 90% of cumulative arrivals
          through the previous window. The one-window grace absorbs
          healthy pipeline lag; the cumulative counts make a growing
          backlog — the actual signature of saturation — monotone; the
          post-arrival drain tail (which always catches up) is not
          judged. Serving runs only. *)
  | Conflict_storm of {
      first : int;
      last : int;  (** inclusive *)
      aborts : int;  (** conflict aborts over the whole storm *)
      peak : int;  (** worst single window *)
      line : int option;  (** dominant conflicting cache line *)
      pc : int option;  (** dominant conflicting PC tag *)
    }
      (** A maximal run of consecutive windows each with conflict-abort
          density at or above the storm threshold. *)
  | Tier_shift of { window : int; from_ : tier; to_ : tier }
      (** The dominant execution tier (by occupancy cycles) changed
          between consecutive busy windows, e.g. the hybrid fallback
          collapsing onto the software tier or the global lock. *)

val storm_threshold : Series.t -> int
(** The default conflict-storm bar: twice the mean conflict-abort count
    over windows that had any conflicts, and never below 4, so quiet
    runs don't read single stray aborts as storms. *)

val detect : ?storm_threshold:int -> Series.t -> t list
(** All episodes, ordered by onset window (saturation first on ties). *)

val tier_name : tier -> string

val to_string : Series.t -> t -> string
(** One human-readable line, cycle-annotated. *)

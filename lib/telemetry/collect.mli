(** Build a {!Series.t} from a run, online or by replay.

    The collector is a fold over the {!Stx_sim.Machine} event stream:
    {!handler} has exactly the shape of [Machine.run]'s [?on_event], so
    the online path is [Machine.run ~on_event:(Collect.handler c) ...]
    (chain it with [Trace.handler] and the metrics collector as usual),
    and the offline path ({!of_trace}) replays a capture through the
    same fold. Because both paths run the identical state machine over
    the identical event stream, the two series are equal bit-for-bit —
    the same online-vs-replay contract the metrics registry keeps.

    Point events (commits, aborts, lock protocol steps, request
    completions) land in the window of their emission timestamp. Attempt
    latencies are spans: a commit or abort at time [t] for an attempt of
    [c] cycles contributes occupancy to every window overlapping
    [[t - c, t)], proportionally to the overlap, so per-window busy and
    tier occupancies sum exactly to the run's totals.

    The serving plane (offered arrivals, queue depth, sojourn times) is
    injector-side state the machine never sees, so it cannot be replayed
    from a trace: the serve harness feeds it in through the [note_*]
    calls, and closed-loop runs simply leave those fields zero. *)

type t

val create : ?window:int -> threads:int -> unit -> t
(** A fresh collector for a [threads]-core run with tumbling windows of
    [window] cycles (default 1000). Raises [Invalid_argument] when
    [window < 1] or [threads < 1]. *)

val window : t -> int
val threads : t -> int

val handler : t -> time:int -> Stx_sim.Machine.event -> unit
(** Fold one event. *)

val note_offered : t -> at:int -> unit
(** Serving plane: one request arrived at simulated time [at]. *)

val note_queue_depth : t -> at:int -> int -> unit
(** Serving plane: the arrival queue was [depth] deep when a dispatch
    decision was taken at [at]; windows keep the peak. *)

val note_sojourn : t -> at:int -> int -> unit
(** Serving plane: a request completing at [at] spent the given number
    of cycles between arrival and completion. *)

val finalize : ?horizon:int -> t -> Series.t
(** Snapshot the series built so far. With [horizon], the series is
    padded with empty windows out to [ceil(horizon / window)] so a quiet
    tail is visible rather than truncated. The collector stays usable;
    later events extend it. *)

val of_trace : ?window:int -> ?horizon:int -> Stx_trace.Trace.t -> Series.t
(** Replay a capture through the same fold: equal to the online series
    of the same run by construction (serving-plane fields excepted, as
    above). Thread count is taken from the trace. *)

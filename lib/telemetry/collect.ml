module M = Stx_sim.Machine
module Hist = Stx_metrics.Hist

(* Mutable per-window accumulator; reduced to a Series.window at
   finalize time. *)
type wb = {
  mutable hw_commits : int;
  mutable irrevocable_commits : int;
  mutable stm_commits : int;
  mutable conflict_aborts : int;
  mutable locksub_aborts : int;
  mutable capacity_aborts : int;
  mutable explicit_aborts : int;
  mutable stm_conflict_aborts : int;
  mutable stm_aborts : int;
  mutable lock_waits : int;
  mutable lock_acquires : int;
  mutable lock_timeouts : int;
  busy : int array;
  mutable stm_cycles : int;
  mutable lock_cycles : int;
  mutable offered : int;
  mutable completed : int;
  mutable queue_peak : int;
  sojourn : Hist.t;
  lines : (int, int) Hashtbl.t;
  pcs : (int, int) Hashtbl.t;
}

type t = {
  width : int;
  threads : int;
  mutable wins : wb array;  (* grows by doubling; [used] are live *)
  mutable used : int;
}

let fresh_wb threads =
  {
    hw_commits = 0;
    irrevocable_commits = 0;
    stm_commits = 0;
    conflict_aborts = 0;
    locksub_aborts = 0;
    capacity_aborts = 0;
    explicit_aborts = 0;
    stm_conflict_aborts = 0;
    stm_aborts = 0;
    lock_waits = 0;
    lock_acquires = 0;
    lock_timeouts = 0;
    busy = Array.make threads 0;
    stm_cycles = 0;
    lock_cycles = 0;
    offered = 0;
    completed = 0;
    queue_peak = 0;
    sojourn = Hist.create ();
    lines = Hashtbl.create 4;
    pcs = Hashtbl.create 4;
  }

let create ?(window = 1000) ~threads () =
  if window < 1 then invalid_arg "Telemetry.Collect.create: window < 1";
  if threads < 1 then invalid_arg "Telemetry.Collect.create: threads < 1";
  { width = window; threads; wins = [||]; used = 0 }

let window t = t.width
let threads t = t.threads

(* Window holding index [i], growing the array as the clock advances. *)
let win t i =
  if i >= t.used then begin
    if i >= Array.length t.wins then begin
      let cap = max 16 (max (i + 1) (2 * Array.length t.wins)) in
      let wins = Array.init cap (fun j ->
          if j < Array.length t.wins then t.wins.(j) else fresh_wb t.threads)
      in
      t.wins <- wins
    end;
    t.used <- i + 1
  end;
  t.wins.(i)

let at t time = win t (max 0 time / t.width)

(* Distribute a span of [cycles] ending at [time] over the windows it
   overlaps, calling [add] with each window's share. *)
let span t ~time ~cycles add =
  if cycles > 0 then begin
    let stop = max 0 time in
    let start = max 0 (stop - cycles) in
    let i0 = start / t.width in
    let i1 = if stop = start then i0 else (stop - 1) / t.width in
    for i = i0 to i1 do
      let lo = max start (i * t.width) in
      let hi = min stop ((i + 1) * t.width) in
      if hi > lo then add (win t i) (hi - lo)
    done
  end

let bump tbl key =
  Hashtbl.replace tbl key
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let handler t ~time (ev : M.event) =
  match ev with
  | M.Tx_commit { tid; cycles; irrevocable; _ } ->
    let w = at t time in
    if irrevocable then begin
      w.irrevocable_commits <- w.irrevocable_commits + 1;
      span t ~time ~cycles (fun w c -> w.lock_cycles <- w.lock_cycles + c)
    end
    else w.hw_commits <- w.hw_commits + 1;
    span t ~time ~cycles (fun w c -> w.busy.(tid) <- w.busy.(tid) + c)
  | M.Tx_abort { tid; kind; conf_line; conf_pc; cycles; _ } ->
    let w = at t time in
    (match kind with
    | M.Conflict ->
      w.conflict_aborts <- w.conflict_aborts + 1;
      Option.iter (bump w.lines) conf_line;
      Option.iter (bump w.pcs) conf_pc
    | M.Lock_subscription -> w.locksub_aborts <- w.locksub_aborts + 1
    | M.Capacity -> w.capacity_aborts <- w.capacity_aborts + 1
    | M.Explicit -> w.explicit_aborts <- w.explicit_aborts + 1
    | M.Stm_conflict -> w.stm_conflict_aborts <- w.stm_conflict_aborts + 1);
    span t ~time ~cycles (fun w c -> w.busy.(tid) <- w.busy.(tid) + c)
  | M.Stm_commit { tid; cycles; _ } ->
    (at t time).stm_commits <- (at t time).stm_commits + 1;
    span t ~time ~cycles (fun w c ->
        w.busy.(tid) <- w.busy.(tid) + c;
        w.stm_cycles <- w.stm_cycles + c)
  | M.Stm_abort { tid; cycles; _ } ->
    (at t time).stm_aborts <- (at t time).stm_aborts + 1;
    span t ~time ~cycles (fun w c ->
        w.busy.(tid) <- w.busy.(tid) + c;
        w.stm_cycles <- w.stm_cycles + c)
  | M.Lock_waiting _ ->
    let w = at t time in
    w.lock_waits <- w.lock_waits + 1
  | M.Lock_acquired _ ->
    let w = at t time in
    w.lock_acquires <- w.lock_acquires + 1
  | M.Lock_timeout _ ->
    let w = at t time in
    w.lock_timeouts <- w.lock_timeouts + 1
  | M.Req_done _ ->
    let w = at t time in
    w.completed <- w.completed + 1
  | M.Tx_begin _ | M.Tx_irrevocable _ | M.Alp_executed _ | M.Lock_attempt _
  | M.Lock_released _ | M.Backoff_start _ | M.Backoff_end _
  | M.Req_dispatch _ | M.Stm_begin _ ->
    ()

let note_offered t ~at:time =
  let w = at t time in
  w.offered <- w.offered + 1

let note_queue_depth t ~at:time depth =
  let w = at t time in
  if depth > w.queue_peak then w.queue_peak <- depth

let note_sojourn t ~at:time cycles =
  Hist.add (at t time).sojourn cycles

let tallies tbl =
  Hashtbl.fold (fun id c acc -> (id, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let snapshot_wb (w : wb) : Series.window =
  {
    hw_commits = w.hw_commits;
    irrevocable_commits = w.irrevocable_commits;
    stm_commits = w.stm_commits;
    conflict_aborts = w.conflict_aborts;
    locksub_aborts = w.locksub_aborts;
    capacity_aborts = w.capacity_aborts;
    explicit_aborts = w.explicit_aborts;
    stm_conflict_aborts = w.stm_conflict_aborts;
    stm_aborts = w.stm_aborts;
    lock_waits = w.lock_waits;
    lock_acquires = w.lock_acquires;
    lock_timeouts = w.lock_timeouts;
    busy = Array.copy w.busy;
    stm_cycles = w.stm_cycles;
    lock_cycles = w.lock_cycles;
    offered = w.offered;
    completed = w.completed;
    queue_peak = w.queue_peak;
    sojourn = Hist.merge w.sojourn (Hist.create ());
    conf_lines = tallies w.lines;
    conf_pcs = tallies w.pcs;
  }

let finalize ?horizon t =
  let n =
    match horizon with
    | None -> t.used
    | Some h -> max t.used ((max 0 h + t.width - 1) / t.width)
  in
  let empty = fresh_wb t.threads in
  let windows =
    Array.init n (fun i -> snapshot_wb (if i < t.used then t.wins.(i) else empty))
  in
  { Series.width = t.width; threads = t.threads; windows }

let of_trace ?window ?horizon tr =
  let c = create ?window ~threads:(Stx_trace.Trace.threads tr) () in
  Stx_trace.Trace.iter tr (fun ~time ev -> handler c ~time ev);
  finalize ?horizon c

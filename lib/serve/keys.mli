(** Key-popularity models for synthesized requests.

    Keys live in [1 .. range]. The Zipfian model gives rank [r] weight
    [1 / r^theta] (rank 1 is the hottest key); sampling walks a
    precomputed cumulative table by binary search, so a draw is O(log
    range) and exactly reproducible from the RNG stream. *)

type t =
  | Uniform
  | Zipf of float  (** skew exponent theta > 0 *)

val of_string : string -> (t, string) result
(** [uniform] or [zipf:THETA]. *)

val to_string : t -> string

type sampler

val create : t -> range:int -> sampler
(** Raises [Invalid_argument] if [range < 1] or a Zipf theta is not
    positive and finite. *)

val sample : sampler -> Stx_util.Rng.t -> int
(** A key in [1 .. range]. *)

(** Deterministic open-loop arrival processes.

    Rates are denominated in requests per kilocycle of simulated time, so
    they read naturally against the simulator's cycle clock (a rate of
    [2.0] is one request every 500 cycles on average). Every process is a
    pure function of its parameters, the horizon and the RNG stream, so a
    seeded arrival schedule is exactly reproducible. *)

type t =
  | Fixed of { rate : float }  (** evenly spaced, no randomness *)
  | Poisson of { rate : float }  (** exponential inter-arrival times *)
  | Bursty of { rate : float; on : int; off : int }
      (** Poisson arrivals gated to alternating windows of [on] active
          cycles and [off] silent cycles, starting active at time 0. The
          in-burst rate is raised by [(on + off) / on] so the long-run
          average still matches [rate]. *)

val rate : t -> float
(** Long-run average rate, requests per kilocycle. *)

val max_per_cycle : int
(** Most arrivals the generator will place on one cycle; an overfull
    cycle spills into the next. Bounds the admissible rate at
    [1000 * max_per_cycle] requests/kilocycle — {!of_string} rejects
    anything above it (a Fixed rate past the grid used to spin the
    generator forever) and {!generate} refuses hand-built values too. *)

val scale : t -> float -> t
(** Multiply the rate, keeping the shape (burst windows unchanged) —
    the sharding driver thins a process by [1/shards] with this. *)

val of_string : string -> (t, string) result
(** [fixed:RATE], [poisson:RATE], or [bursty:RATE:ON:OFF]. *)

val to_string : t -> string

val generate : rng:Stx_util.Rng.t -> horizon:int -> t -> int array
(** Arrival timestamps, non-decreasing, drawn on [0, horizon) — at most
    {!max_per_cycle} per cycle, with overfull cycles spilling forward
    (possibly to or past the horizon; the count is preserved). [Fixed]
    ignores the RNG; the others consume it. Raises [Invalid_argument] on
    a non-positive horizon or a rate {!of_string} would reject. *)

type t = Uniform | Zipf of float

let of_string s =
  match String.split_on_char ':' s with
  | [ "uniform" ] -> Ok Uniform
  | [ "zipf"; th ] -> (
    match float_of_string_opt th with
    | Some theta when theta > 0.0 && Float.is_finite theta -> Ok (Zipf theta)
    | Some _ -> Error "zipf theta must be positive"
    | None -> Error ("not a number: " ^ th))
  | _ -> Error "expected uniform or zipf:THETA"

let to_string = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta

type sampler =
  | S_uniform of int
  | S_zipf of float array  (** cumulative weights; key = index + 1 *)

let create t ~range =
  if range < 1 then invalid_arg "Keys.create: range must be positive";
  match t with
  | Uniform -> S_uniform range
  | Zipf theta ->
    if theta <= 0.0 || not (Float.is_finite theta) then
      invalid_arg "Keys.create: zipf theta must be positive";
    let cdf = Array.make range 0.0 in
    let acc = ref 0.0 in
    for r = 1 to range do
      acc := !acc +. (1.0 /. Float.pow (float_of_int r) theta);
      cdf.(r - 1) <- !acc
    done;
    S_zipf cdf

let sample s rng =
  match s with
  | S_uniform range -> 1 + Stx_util.Rng.int rng range
  | S_zipf cdf ->
    let total = cdf.(Array.length cdf - 1) in
    let u = Stx_util.Rng.float rng total in
    (* smallest index with cdf.(i) > u *)
    let lo = ref 0 and hi = ref (Array.length cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo + 1

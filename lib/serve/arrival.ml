type t =
  | Fixed of { rate : float }
  | Poisson of { rate : float }
  | Bursty of { rate : float; on : int; off : int }

let rate = function
  | Fixed { rate } | Poisson { rate } | Bursty { rate; _ } -> rate

(* The integer cycle grid can only hold so many arrivals per cycle: the
   generator caps co-timestamped arrivals at [max_per_cycle] and spills
   the overflow to the next cycle, so a rate above 1000 * max_per_cycle
   requests/kilocycle is unsatisfiable and rejected at parse time. This
   also bounds the generation loop: before the cap, a huge Fixed rate
   truncated the gap to (near) zero and [next ()] never advanced. *)
let max_per_cycle = 8
let max_rate = 1000.0 *. float_of_int max_per_cycle

let check_rate r =
  if r <= 0.0 || not (Float.is_finite r) then Error "rate must be positive"
  else if r > max_rate then
    Error
      (Printf.sprintf
         "rate must be <= %g requests/kilocycle (the cycle grid holds at \
          most %d arrivals per cycle)"
         max_rate max_per_cycle)
  else Ok r

let scale t f =
  match t with
  | Fixed { rate } -> Fixed { rate = rate *. f }
  | Poisson { rate } -> Poisson { rate = rate *. f }
  | Bursty b -> Bursty { b with rate = b.rate *. f }

let of_string s =
  let ( let* ) = Result.bind in
  let num v = match float_of_string_opt v with
    | Some f -> check_rate f
    | None -> Error ("not a number: " ^ v)
  in
  match String.split_on_char ':' s with
  | [ "fixed"; r ] ->
    let* rate = num r in
    Ok (Fixed { rate })
  | [ "poisson"; r ] ->
    let* rate = num r in
    Ok (Poisson { rate })
  | [ "bursty"; r; on; off ] -> (
    let* rate = num r in
    match (int_of_string_opt on, int_of_string_opt off) with
    | Some on, Some off when on > 0 && off >= 0 -> Ok (Bursty { rate; on; off })
    | _ -> Error "bursty windows must be ON > 0 and OFF >= 0 cycles")
  | _ -> Error "expected fixed:RATE, poisson:RATE, or bursty:RATE:ON:OFF"

let to_string = function
  | Fixed { rate } -> Printf.sprintf "fixed:%g" rate
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Bursty { rate; on; off } -> Printf.sprintf "bursty:%g:%d:%d" rate on off

(* mean inter-arrival gap in cycles for a rate in requests/kilocycle *)
let mean_gap rate = 1000.0 /. rate

let exponential rng ~mean =
  (* inversion; 1 - u keeps the argument of log away from 0 *)
  let u = Stx_util.Rng.float rng 1.0 in
  -.mean *. log (1.0 -. u)

let generate ~rng ~horizon t =
  if horizon <= 0 then invalid_arg "Arrival.generate: horizon must be positive";
  (match check_rate (rate t) with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Arrival.generate: " ^ e));
  let out = ref [] and n = ref 0 in
  (* enforce the per-cycle cap: the processes hand us non-decreasing raw
     timestamps; an overfull cycle spills into the next one (count is
     preserved, so a burst can land at or just past the horizon) *)
  let last = ref (-1) and at_last = ref 0 in
  let push time =
    let time = max time !last in
    let time =
      if time = !last && !at_last >= max_per_cycle then time + 1 else time
    in
    if time = !last then incr at_last
    else begin
      last := time;
      at_last := 1
    end;
    out := time :: !out;
    incr n
  in
  (match t with
  | Fixed { rate } ->
    let gap = mean_gap rate in
    let i = ref 0 in
    let next () = int_of_float (float_of_int !i *. gap) in
    while next () < horizon do
      push (next ());
      incr i
    done
  | Poisson { rate } ->
    let mean = mean_gap rate in
    let acc = ref (exponential rng ~mean) in
    while int_of_float !acc < horizon do
      push (int_of_float !acc);
      acc := !acc +. exponential rng ~mean
    done
  | Bursty { rate; on; off } ->
    (* draw a Poisson process on the active-time axis at the boosted
       in-burst rate, then map active time onto the wall clock by
       inserting the silent windows *)
    let boost = float_of_int (on + off) /. float_of_int on in
    let mean = mean_gap (rate *. boost) in
    let wall active =
      let k = active / on in
      (k * (on + off)) + (active - (k * on))
    in
    let acc = ref (exponential rng ~mean) in
    while wall (int_of_float !acc) < horizon do
      push (wall (int_of_float !acc));
      acc := !acc +. exponential rng ~mean
    done);
  let a = Array.make !n 0 in
  List.iteri (fun i v -> a.(!n - 1 - i) <- v) !out;
  a

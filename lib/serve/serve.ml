open Stx_core
open Stx_machine
open Stx_sim
open Stx_workloads
module Rng = Stx_util.Rng
module Hist = Stx_metrics.Hist
module Registry = Stx_metrics.Registry
module Collect = Stx_metrics.Collect

(* how the request stream is split across shards: [Seed] thins one
   arrival process into [shards] independent full-range sub-streams
   (variance reduction); [Key] partitions the key space into contiguous
   slices and routes every request to its owner, the way a sharded store
   actually scales out — under skewed keys the hot shard saturates first,
   which is the phenomenon the wide-core sweep is after *)
type shard_by = Seed | Key

let shard_by_to_string = function Seed -> "seed" | Key -> "key"

let shard_by_of_string = function
  | "seed" -> Ok Seed
  | "key" -> Ok Key
  | s -> Error ("expected seed or key, got " ^ s)

type config = {
  service : Workload.service;
  mode : Mode.t;
  htm_policy : Stx_policy.t;
  threads : int;
  seed : int;
  arrival : Arrival.t;
  keys : Keys.t;
  pct_get : int;
  key_range : int option;
  horizon : int;
  shards : int;
  shard_by : shard_by;
  telemetry_window : int option;
}

let config ?(mode = Mode.Staggered_hw) ?(htm_policy = Stx_policy.default)
    ?(threads = 16) ?(seed = 1) ?(keys = Keys.Uniform) ?(pct_get = 70)
    ?key_range ?(horizon = 100_000) ?(shards = 2) ?(shard_by = Seed)
    ?telemetry_window ~arrival service =
  if threads < 1 then invalid_arg "Serve.config: threads must be positive";
  if shards < 1 then invalid_arg "Serve.config: shards must be positive";
  if horizon < 1 then invalid_arg "Serve.config: horizon must be positive";
  if pct_get < 0 || pct_get > 100 then
    invalid_arg "Serve.config: pct_get must be in 0..100";
  (match telemetry_window with
  | Some w when w < 1 ->
    invalid_arg "Serve.config: telemetry window must be positive"
  | _ -> ());
  {
    service;
    mode;
    htm_policy;
    threads;
    seed;
    arrival;
    keys;
    pct_get;
    key_range;
    horizon;
    shards;
    shard_by;
    telemetry_window;
  }

type report = {
  requests : int;
  makespan : int;
  offered : float;
  achieved : float;
  saturated : bool;
  stats : Stats.t;
  registry : Registry.t;
  telemetry : Stx_telemetry.Series.t option;
  errors : string list;
}

(* one synthesized request and its lifecycle timestamps *)
type req = {
  at : int;  (* enqueue: the arrival timestamp *)
  write : bool;
  key : int;
  mutable dispatched : int;  (* first-dispatch time, -1 until then *)
  mutable completed : int;  (* commit time of its transaction *)
  mutable core : int;
}

(* contiguous range partition of the 1-based key space *)
let shard_of_key ~shards ~range key = (key - 1) * shards / range

(* number of elements of the sorted [ats] that are <= [now] *)
let arrived_by ats now =
  let lo = ref 0 and hi = ref (Array.length ats) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ats.(mid) <= now then lo := mid + 1 else hi := mid
  done;
  !lo

let run_shard cfg ~shard ~shard_seed =
  (* independent streams per concern, so the arrival schedule, the
     get/set mix and the key draws never perturb one another *)
  let master = Rng.create shard_seed in
  let arr_rng = Rng.split master in
  let mix_rng = Rng.split master in
  let key_rng = Rng.split master in
  (* in Key mode every shard runs from the same master seed; offset the
     machine seed so the shards' simulators are still de-correlated *)
  let sim_seed =
    match cfg.shard_by with
    | Seed -> Rng.next master
    | Key -> Rng.next master + shard
  in
  let key_range =
    Option.value cfg.key_range ~default:cfg.service.Workload.sv_key_range
  in
  let sampler = Keys.create cfg.keys ~range:key_range in
  let mk_req at =
    {
      at;
      write = Rng.int mix_rng 100 >= cfg.pct_get;
      key = Keys.sample sampler key_rng;
      dispatched = -1;
      completed = -1;
      core = -1;
    }
  in
  let reqs =
    match cfg.shard_by with
    | Seed ->
      let arrival =
        Arrival.scale cfg.arrival (1.0 /. float_of_int cfg.shards)
      in
      Array.map mk_req (Arrival.generate ~rng:arr_rng ~horizon:cfg.horizon arrival)
    | Key ->
      (* every shard regenerates the same full-rate stream — [run] hands
         each the same seed — and keeps the key slice it owns, so the
         union over shards is exactly the offered stream, disjointly
         routed *)
      let all =
        Array.map mk_req
          (Arrival.generate ~rng:arr_rng ~horizon:cfg.horizon cfg.arrival)
      in
      Array.of_list
        (List.filter
           (fun r ->
             shard_of_key ~shards:cfg.shards ~range:key_range r.key = shard)
           (Array.to_list all))
  in
  let ats = Array.map (fun r -> r.at) reqs in
  let n = Array.length reqs in
  let spec, synth =
    Workload.service_spec ~instrument:(Mode.uses_alps cfg.mode) ~key_range
      cfg.service
  in
  let sreg = Registry.create () in
  let telem =
    Option.map
      (fun w -> Stx_telemetry.Collect.create ~window:w ~threads:cfg.threads ())
      cfg.telemetry_window
  in
  (* the arrival schedule is fixed up front, so the offered-per-window
     counts can be folded in before the machine runs *)
  Option.iter
    (fun tc ->
      Array.iter (fun at -> Stx_telemetry.Collect.note_offered tc ~at) ats)
    telem;
  let max_depth = ref 0 in
  let next = ref 0 in
  let injector ~tid ~now =
    if !next >= n then Machine.Drained
    else
      let r = reqs.(!next) in
      if r.at > now then Machine.Idle_until r.at
      else begin
        let req = !next in
        let depth = arrived_by ats now - req in
        if depth > !max_depth then max_depth := depth;
        Registry.observe sreg "stx_req_queue_depth" [] depth;
        Option.iter
          (fun tc -> Stx_telemetry.Collect.note_queue_depth tc ~at:now depth)
          telem;
        let mk = Option.get !synth in
        let { Workload.rq_ab; rq_args } = mk ~write:r.write ~key:r.key in
        r.dispatched <- now;
        r.core <- tid;
        incr next;
        Machine.Inject { req; ab = rq_ab; args = rq_args }
      end
  in
  let collector = Collect.create ~policy:cfg.htm_policy () in
  let dispatch_events = ref 0 and done_events = ref 0 in
  let on_event ~time ev =
    Collect.handler collector ~time ev;
    Option.iter (fun tc -> Stx_telemetry.Collect.handler tc ~time ev) telem;
    match ev with
    | Machine.Req_dispatch _ -> incr dispatch_events
    | Machine.Req_done { req; _ } ->
      reqs.(req).completed <- time;
      incr done_events
    | _ -> ()
  in
  let mcfg = Config.with_cores cfg.threads Config.default in
  let stats =
    Machine.run ~seed:sim_seed ~htm_policy:cfg.htm_policy ~cfg:mcfg
      ~mode:cfg.mode ~on_event ~injector spec
  in
  (* fold the lifecycle into the serving-plane metrics *)
  Array.iter
    (fun r ->
      if r.completed >= 0 then begin
        Option.iter
          (fun tc ->
            Stx_telemetry.Collect.note_sojourn tc ~at:r.completed
              (r.completed - r.at))
          telem;
        Registry.observe sreg "stx_req_sojourn_cycles" [] (r.completed - r.at);
        Registry.observe sreg "stx_req_wait_cycles" [] (r.dispatched - r.at);
        Registry.observe sreg "stx_req_service_cycles" []
          (r.completed - r.dispatched);
        Registry.inc sreg
          ~by:(r.completed - r.dispatched)
          "stx_req_busy_cycles"
          [ ("core", string_of_int r.core) ]
      end)
    reqs;
  if n > 0 then Registry.inc sreg ~by:n "stx_req_offered" [];
  let completed =
    Array.fold_left (fun a r -> if r.completed >= 0 then a + 1 else a) 0 reqs
  in
  if completed > 0 then Registry.inc sreg ~by:completed "stx_req_completed" [];
  Registry.set_gauge sreg "stx_req_queue_depth_max" [] !max_depth;
  (* reconciliation: the serving plane's own invariants, then the event
     stream against the simulator's counters *)
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  if !dispatch_events <> n then
    err "shard %d: %d dispatch events for %d requests" shard !dispatch_events n;
  if !done_events <> n then
    err "shard %d: %d done events for %d requests" shard !done_events n;
  Array.iteri
    (fun i r ->
      if r.completed < 0 then err "shard %d: request %d never completed" shard i
      else if not (r.at <= r.dispatched && r.dispatched <= r.completed) then
        err "shard %d: request %d timestamps out of order (%d/%d/%d)" shard i
          r.at r.dispatched r.completed)
    reqs;
  (match Collect.check (Collect.registry collector) stats with
  | Ok () -> ()
  | Error es -> List.iter (fun e -> err "shard %d: %s" shard e) es);
  let registry = Registry.merge (Collect.registry collector) sreg in
  let series =
    Option.map
      (fun tc -> Stx_telemetry.Collect.finalize ~horizon:cfg.horizon tc)
      telem
  in
  (stats, registry, n, series, List.rev !errors)

let run ?jobs cfg =
  let seeds =
    match cfg.shard_by with
    | Seed ->
      let r = Rng.create cfg.seed in
      Array.init cfg.shards (fun _ -> Rng.next r)
    (* identical seeds: each shard re-derives the same request stream and
       keeps only its key slice *)
    | Key -> Array.make cfg.shards cfg.seed
  in
  let thunks =
    Array.init cfg.shards (fun i () ->
        run_shard cfg ~shard:i ~shard_seed:seeds.(i))
  in
  let outcomes = Stx_runner.Pool.map ?jobs thunks in
  let shards =
    Array.mapi
      (fun i -> function
        | Stx_runner.Pool.Done r -> r
        | Stx_runner.Pool.Failed msg ->
          failwith (Printf.sprintf "serve shard %d failed: %s" i msg)
        | Stx_runner.Pool.Timed_out s ->
          failwith (Printf.sprintf "serve shard %d timed out after %.1fs" i s))
      outcomes
  in
  let stats, registry, requests, telemetry, errors =
    Array.fold_left
      (fun (sa, ra, na, ta, ea) (s, r, n, t, e) ->
        match sa with
        | None -> (Some s, r, n, t, e)
        | Some sa ->
          let ta =
            match (ta, t) with
            | Some a, Some b -> Some (Stx_telemetry.Series.merge a b)
            | _ -> None
          in
          (Some (Stats.merge sa s), Registry.merge ra r, na + n, ta, ea @ e))
      (None, Registry.create (), 0, None, [])
      shards
  in
  let stats = Option.get stats in
  let makespan = stats.Stats.total_cycles in
  let per_kcycle count cycles =
    if cycles <= 0 then 0.0 else float_of_int count *. 1000.0 /. float_of_int cycles
  in
  let offered = per_kcycle requests cfg.horizon in
  let achieved = per_kcycle requests makespan in
  let saturated = requests > 0 && achieved < 0.9 *. offered in
  {
    requests;
    makespan;
    offered;
    achieved;
    saturated;
    stats;
    registry;
    telemetry;
    errors;
  }

let sojourn report = Registry.histogram report.registry "stx_req_sojourn_cycles" []

let occupancy report =
  if report.makespan <= 0 then 0.0
  else
    let busy =
      Registry.fold
        (fun name _ v acc ->
          match v with
          | Registry.Counter c when name = "stx_req_busy_cycles" -> acc + c
          | _ -> acc)
        report.registry 0
    in
    let denom = report.stats.Stats.threads * report.makespan in
    float_of_int busy /. float_of_int (max 1 denom)

let render cfg report =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%s / %s / %d threads x %d %s-shards / %s keys %s (%d%% get)\n"
    cfg.service.Workload.sv_bench.Workload.name
    (Mode.to_string cfg.mode) cfg.threads cfg.shards
    (shard_by_to_string cfg.shard_by)
    (Arrival.to_string cfg.arrival) (Keys.to_string cfg.keys) cfg.pct_get;
  pf "  requests           %d over %d cycles\n" report.requests cfg.horizon;
  pf "  offered            %.3f req/kcycle\n" report.offered;
  pf "  achieved           %.3f req/kcycle (makespan %d)%s\n" report.achieved
    report.makespan
    (if report.saturated then "  SATURATED" else "");
  let line name key =
    match Registry.histogram report.registry key [] with
    | None -> ()
    | Some h ->
      pf "  %-18s p50 %-7d p95 %-7d p99 %-7d p99.9 %-7d max %d\n" name
        (Hist.p50 h)
        (Hist.quantile h 0.95)
        (Hist.p99 h)
        (Hist.quantile h 0.999)
        (Hist.max_value h)
  in
  line "sojourn cycles" "stx_req_sojourn_cycles";
  line "wait cycles" "stx_req_wait_cycles";
  line "service cycles" "stx_req_service_cycles";
  pf "  queue depth max    %d\n"
    (Registry.gauge_value report.registry "stx_req_queue_depth_max" []);
  pf "  core occupancy     %.1f%%\n" (100.0 *. occupancy report);
  pf "  commits/aborts     %d/%d (irrevocable %d)\n" report.stats.Stats.commits
    report.stats.Stats.aborts report.stats.Stats.irrevocable_entries;
  (match report.errors with
  | [] -> pf "  reconciliation     ok\n"
  | es ->
    pf "  reconciliation     FAILED:\n";
    List.iter (fun e -> pf "    %s\n" e) es);
  Buffer.contents b

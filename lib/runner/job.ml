open Stx_core

type t = {
  workload : string;
  mode : Mode.t;
  threads : int;
  seed : int;
  scale : float;
}

let spec_version = 1

let make ~workload ~mode ~threads ~seed ~scale =
  if threads < 1 then invalid_arg "Job.make: threads < 1";
  if scale <= 0. then invalid_arg "Job.make: scale <= 0";
  { workload; mode; threads; seed; scale }

let label j =
  Printf.sprintf "%s/%s/t%d" j.workload (Mode.to_string j.mode) j.threads

(* %h is injective on floats (hex mantissa/exponent), so two jobs whose
   scales differ by any amount get different canonical strings *)
let canonical j =
  Printf.sprintf "staggered_tm-job-v%d|workload=%s|mode=%s|threads=%d|seed=%d|scale=%h"
    spec_version j.workload (Mode.to_string j.mode) j.threads j.seed j.scale

let digest j = Digest.to_hex (Digest.string (canonical j))

let compare a b = Stdlib.compare (canonical a) (canonical b)
let equal a b = compare a b = 0

open Stx_core

type t = {
  workload : string;
  mode : Mode.t;
  threads : int;
  seed : int;
  scale : float;
  policy : Stx_policy.t;
}

(* v2 added the HTM policy bundle to the spec *)
let spec_version = 2

let make ?(policy = Stx_policy.default) ~workload ~mode ~threads ~seed ~scale
    () =
  if threads < 1 then invalid_arg "Job.make: threads < 1";
  if scale <= 0. then invalid_arg "Job.make: scale <= 0";
  { workload; mode; threads; seed; scale; policy }

let label j =
  let base =
    Printf.sprintf "%s/%s/t%d" j.workload (Mode.to_string j.mode) j.threads
  in
  if Stx_policy.equal j.policy Stx_policy.default then base
  else base ^ "/" ^ Stx_policy.label j.policy

(* %h is injective on floats (hex mantissa/exponent), so two jobs whose
   scales differ by any amount get different canonical strings *)
let canonical j =
  Printf.sprintf
    "staggered_tm-job-v%d|workload=%s|mode=%s|threads=%d|seed=%d|scale=%h|policy=%s"
    spec_version j.workload (Mode.to_string j.mode) j.threads j.seed j.scale
    (Stx_policy.label j.policy)

let digest j = Digest.to_hex (Digest.string (canonical j))

let compare a b = Stdlib.compare (canonical a) (canonical b)
let equal a b = compare a b = 0

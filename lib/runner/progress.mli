(** Line-oriented progress for a batch of jobs: one line per completed
    job with done/total, the labels still in flight, and an ETA from the
    mean completion time so far. No terminal control sequences — safe to
    pipe into a log file. Not thread-safe by design: {!Pool.map} invokes
    its callbacks from the coordinating domain only. *)

type t

val create :
  ?out:out_channel -> ?now:(unit -> float) -> total:int -> unit -> t
(** [out] defaults to [stderr], keeping stdout clean for report text.
    [now] (default [Unix.gettimeofday]) is the clock — injectable so the
    ETA arithmetic is testable. *)

val note : t -> ('a, unit, string, unit) format4 -> 'a
(** Emit a free-form line (e.g. the cached/pending split of a batch). *)

val job_started : t -> string -> unit
val job_finished : t -> string -> status:string -> unit

val heartbeat : t -> unit
(** A keep-alive line between completions — done/total, ETA, the
    wall-time summary so far and the in-flight labels. Wired to
    {!Pool.map}'s [tick] by {!Sweep.run_batch} when stdout is not a
    terminal, so CI logs show life during long sweeps. *)

val finish : t -> unit
(** The closing line: jobs completed, batch wall time, and (once at
    least one job's start was observed) the {!wall_summary}. *)

val wall_summary : t -> string option
(** Per-job wall-time distribution — p50/p95/max over a
    {!Stx_metrics.Hist} of started-to-finished spans, at millisecond
    resolution. [None] before the first completed job that was also
    observed starting. *)

val eta : t -> float
(** Estimated seconds remaining: mean completion time so far, times the
    jobs left, divided by the jobs currently in flight (they drain in
    parallel). [nan] before the first completion. *)

(** A fixed-size pool of OCaml 5 domains draining a queue of jobs.

    Results come back as an array in {e input order}, independent of
    completion order, so a parallel sweep is observably identical to a
    sequential one whenever the jobs themselves are deterministic. A job
    that raises yields [Failed] instead of killing the sweep. *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; [Printexc.to_string] of it *)
  | Timed_out of float
      (** the job overran the wall-clock budget; carries the elapsed
          seconds. Domains cannot be pre-empted, so the timeout is
          cooperative: the job runs to completion (the simulator's own
          [max_steps] bounds runaways) but its result is discarded and
          recorded as [Timed_out]. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?on_start:(int -> unit) ->
  ?on_done:(int -> 'a outcome -> unit) ->
  ?tick:float * (unit -> unit) ->
  (unit -> 'a) array ->
  'a outcome array
(** [map ~jobs thunks] runs every thunk and returns their outcomes in
    input order. [jobs] (default [Domain.recommended_domain_count ()]) is
    clamped to [1 .. Array.length thunks]; with [jobs = 1] everything runs
    inline on the calling domain. [timeout] is a per-job wall-clock budget
    in seconds. [on_start]/[on_done] are invoked with the job's index from
    the calling (coordinating) domain only — never concurrently.
    [tick = (period, f)] invokes [f] — also on the coordinating domain,
    so it may share state with the other callbacks — roughly every
    [period] wall-clock seconds while jobs are in flight: the progress
    heartbeat hook. Inline mode ([jobs = 1]) never ticks: the calling
    domain is busy running the jobs themselves. *)

open Stx_machine
open Stx_core
open Stx_metrics
open Stx_workloads

let run_job (j : Job.t) : Run.t =
  match Registry.find j.Job.workload with
  | None -> invalid_arg ("Sweep.run_job: unknown workload " ^ j.Job.workload)
  | Some w ->
    let instrument = Mode.uses_alps j.Job.mode in
    let spec = Workload.spec ~instrument ~scale:j.Job.scale w in
    let cfg = Config.with_cores j.Job.threads Config.default in
    Run.simulate ~seed:j.Job.seed ~htm_policy:j.Job.policy ~cfg
      ~mode:j.Job.mode spec

type batch = {
  results : (Job.t * Run.t Pool.outcome) list;
  executed : int;
  cached : int;
}

let status_of = function
  | Pool.Done _ -> "done"
  | Pool.Failed msg -> "FAILED: " ^ msg
  | Pool.Timed_out s -> Printf.sprintf "TIMED OUT after %.1fs" s

let run_batch ?store ?jobs ?timeout ?(progress = false) ?heartbeat
    (specs : Job.t list) =
  (* dedupe on the digest: each distinct spec simulates (or loads) once,
     results fan back out to every occurrence in input order *)
  let seen = Hashtbl.create 64 in
  let uniq =
    List.filter
      (fun j ->
        let key = Job.digest j in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      specs
  in
  let cached, pending =
    List.partition_map
      (fun j ->
        match store with
        | None -> Right j
        | Some st -> (
          match Store.load st ~key:(Job.digest j) with
          | Some run -> Left (j, Pool.Done run)
          | None -> Right j))
      uniq
  in
  let reporter =
    if progress then begin
      let p = Progress.create ~total:(List.length pending) () in
      if cached <> [] || pending = [] then
        Progress.note p "%d unique jobs: %d cached, %d to run"
          (List.length uniq) (List.length cached) (List.length pending);
      Some p
    end
    else None
  in
  let pending_arr = Array.of_list pending in
  let thunks = Array.map (fun j () -> run_job j) pending_arr in
  let on_start i =
    Option.iter
      (fun p -> Progress.job_started p (Job.label pending_arr.(i)))
      reporter
  in
  let on_done i out =
    Option.iter
      (fun p ->
        Progress.job_finished p (Job.label pending_arr.(i))
          ~status:(status_of out))
      reporter
  in
  (* CI logs (stdout redirected) would otherwise be silent for minutes
     between completions of long jobs; a terminal user already sees the
     per-job lines scroll *)
  let hb_period =
    match heartbeat with
    | Some p -> p
    | None -> if Unix.isatty Unix.stdout then 0. else 10.
  in
  let tick =
    match reporter with
    | Some p when hb_period > 0. -> Some (hb_period, fun () -> Progress.heartbeat p)
    | _ -> None
  in
  let outcomes = Pool.map ?jobs ?timeout ~on_start ~on_done ?tick thunks in
  Option.iter (fun p -> if pending <> [] then Progress.finish p) reporter;
  (* persist fresh successes; failures and timeouts are never cached *)
  (match store with
  | None -> ()
  | Some st ->
    Array.iteri
      (fun i out ->
        match out with
        | Pool.Done run -> Store.save st ~key:(Job.digest pending_arr.(i)) run
        | Pool.Failed _ | Pool.Timed_out _ -> ())
      outcomes);
  let by_key = Hashtbl.create 64 in
  List.iter (fun (j, out) -> Hashtbl.replace by_key (Job.digest j) out) cached;
  Array.iteri
    (fun i out -> Hashtbl.replace by_key (Job.digest pending_arr.(i)) out)
    outcomes;
  let results =
    List.map (fun j -> (j, Hashtbl.find by_key (Job.digest j))) specs
  in
  { results; executed = Array.length pending_arr; cached = List.length cached }

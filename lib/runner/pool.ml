type 'a outcome =
  | Done of 'a
  | Failed of string
  | Timed_out of float

type event = Started of int | Finished of int | Tick

type 'a shared = {
  mu : Mutex.t;
  cond : Condition.t;  (* signalled by workers when an event is queued *)
  mutable next : int;  (* next job index to hand out *)
  mutable finished : int;
  events : event Queue.t;
  results : 'a outcome option array;
  thunks : (unit -> 'a) array;
  timeout : float option;
}

let classify sh thunk =
  let t0 = Unix.gettimeofday () in
  match thunk () with
  | v ->
    let elapsed = Unix.gettimeofday () -. t0 in
    (match sh.timeout with
    | Some limit when elapsed > limit -> Timed_out elapsed
    | _ -> Done v)
  | exception e -> Failed (Printexc.to_string e)

let push_event sh ev =
  Mutex.lock sh.mu;
  Queue.push ev sh.events;
  (match ev with
  | Finished _ -> sh.finished <- sh.finished + 1
  | Started _ | Tick -> ());
  Condition.signal sh.cond;
  Mutex.unlock sh.mu

let take_job sh =
  Mutex.lock sh.mu;
  let i =
    if sh.next < Array.length sh.thunks then begin
      let i = sh.next in
      sh.next <- sh.next + 1;
      Some i
    end
    else None
  in
  Mutex.unlock sh.mu;
  i

let worker sh =
  let rec loop () =
    match take_job sh with
    | None -> ()
    | Some i ->
      push_event sh (Started i);
      let out = classify sh sh.thunks.(i) in
      (* results are only read by the coordinator after it has seen the
         Finished event, which is queued under the same mutex *)
      sh.results.(i) <- Some out;
      push_event sh (Finished i);
      loop ()
  in
  loop ()

let dispatch sh ~on_start ~on_done ~on_tick = function
  | Started i -> on_start i
  | Finished i ->
    (match sh.results.(i) with
    | Some out -> on_done i out
    | None -> assert false)
  | Tick -> on_tick ()

let nop1 _ = ()
let nop2 _ _ = ()

(* The ticker is its own domain so the coordinator can keep blocking on
   the condition variable (the stdlib has no timed wait); it only
   *queues* Tick events — the callback itself always runs on the
   coordinating domain, like every other callback. Sleeps are sliced so
   shutdown never waits out a whole period. *)
let spawn_ticker sh ~stop ~period =
  Domain.spawn (fun () ->
      let slice = Float.min 0.05 (Float.max 0.001 (period /. 4.)) in
      let rec run since =
        if not (Atomic.get stop) then begin
          Unix.sleepf slice;
          let waited = since +. slice in
          if waited >= period then begin
            if not (Atomic.get stop) then push_event sh Tick;
            run 0.
          end
          else run waited
        end
      in
      run 0.)

let map ?(jobs = Domain.recommended_domain_count ()) ?timeout ?(on_start = nop1)
    ?(on_done = nop2) ?tick thunks =
  let n = Array.length thunks in
  let sh =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      next = 0;
      finished = 0;
      events = Queue.create ();
      results = Array.make n None;
      thunks;
      timeout;
    }
  in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then
      (* no domains: run inline on the calling domain, same observable
         behaviour (events in start/finish order per job) *)
      for i = 0 to n - 1 do
        on_start i;
        let out = classify sh thunks.(i) in
        sh.results.(i) <- Some out;
        on_done i out
      done
    else begin
      let domains = Array.init jobs (fun _ -> Domain.spawn (fun () -> worker sh)) in
      let stop = Atomic.make false in
      let ticker =
        Option.map (fun (period, _) -> spawn_ticker sh ~stop ~period) tick
      in
      let on_tick =
        match tick with Some (_, f) -> f | None -> fun () -> ()
      in
      (* The calling domain is the coordinator: it drains worker events and
         runs the callbacks, so progress reporting never races. *)
      let rec drain () =
        Mutex.lock sh.mu;
        while Queue.is_empty sh.events && sh.finished < n do
          Condition.wait sh.cond sh.mu
        done;
        let pending = Queue.fold (fun acc ev -> ev :: acc) [] sh.events in
        Queue.clear sh.events;
        let all_done = sh.finished >= n in
        Mutex.unlock sh.mu;
        List.iter (dispatch sh ~on_start ~on_done ~on_tick) (List.rev pending);
        if not (all_done && pending = []) then drain ()
      in
      drain ();
      Atomic.set stop true;
      Array.iter Domain.join domains;
      Option.iter Domain.join ticker
    end;
    Array.map
      (function Some out -> out | None -> Failed "job was never scheduled")
      sh.results
  end

open Stx_metrics

(** A content-addressed on-disk store of simulation results, making
    re-runs of the evaluation incremental across process invocations.

    Entries are keyed by {!Job.digest} and live under
    [<dir>/v<format_version>/<key>.stxr] — by default
    [~/.cache/staggered_tm/] (respecting [XDG_CACHE_HOME], overridable
    with the [STAGGERED_TM_CACHE] environment variable or [?dir]).
    Writes are atomic (write to a temp file in the same directory, then
    rename), so concurrent or killed runs never publish a partial entry;
    corrupted, truncated, or foreign files decode to a cache miss.

    Invalidation: the key covers every job-spec field plus
    {!Job.spec_version}; this module's {!format_version} versions the
    file encoding (a bump retires the whole [v<n>/] subdirectory). Bump
    {!Job.spec_version} whenever a change to the simulator, compiler, or
    workloads alters what a given job spec computes — stored results are
    only as fresh as that discipline. *)

type t

val format_version : int
(** Version of the on-disk encoding, part of the storage path. *)

val default_dir : unit -> string

val create : ?dir:string -> unit -> t
(** Open (creating directories as needed) the store rooted at [dir]
    (default {!default_dir}). *)

val dir : t -> string
(** The version-qualified directory entries are stored in. *)

val path : t -> key:string -> string

val load : t -> key:string -> Run.t option
(** [None] on missing, unreadable, or undecodable entries. *)

val save : t -> key:string -> Run.t -> unit
(** Atomically publish the measured run under [key]. *)

val encode : Run.t -> string
(** The deterministic text encoding (frequency tables key-sorted, the
    metrics registry in its own key-sorted section) — also a convenient
    total representation for equality checks in tests. *)

val decode : string -> Run.t option

(** {2 Opaque artifacts}

    Raw byte blobs cached alongside the result entries — rendered
    deliverables such as the [stx_repro report] HTML, keyed by a digest
    of whatever parameters determine their bytes. Same atomic
    write-then-rename discipline; a [.blob] suffix keeps them out of the
    [.stxr] result namespace. *)

val blob_path : t -> key:string -> string

val save_blob : t -> key:string -> string -> unit
(** Atomically publish the bytes under [key]. *)

val load_blob : t -> key:string -> string option
(** [None] on missing or unreadable blobs. *)

open Stx_metrics

(** The experiment engine's front door: execute a batch of simulation
    jobs on a {!Pool} of domains, consulting and feeding the {!Store}.

    The simulator is deterministic per job, every job builds its own
    compiled program and machine state, and outcomes are returned in
    input order — so a batch at [jobs = 4] is result-identical to the
    same batch at [jobs = 1], and a cached result is byte-identical to a
    fresh one. *)

val run_job : Job.t -> Run.t
(** Resolve the workload, compile it (with ALPs iff the mode uses them),
    and run the simulation with the metrics collector attached. Raises
    [Invalid_argument] on an unknown workload name. *)

type batch = {
  results : (Job.t * Run.t Pool.outcome) list;
      (** one entry per input job, in input order *)
  executed : int;  (** distinct simulations actually run *)
  cached : int;  (** distinct jobs answered from the store *)
}

val run_batch :
  ?store:Store.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?progress:bool ->
  ?heartbeat:float ->
  Job.t list ->
  batch
(** Duplicate specs (by digest) are computed once and fanned back out.
    Fresh successful results are saved to [store]; [Failed] and
    [Timed_out] outcomes are never cached, so a later run retries them.
    [progress] (default off) reports per-job completion lines on stderr
    from the coordinating domain. [heartbeat] is the period in seconds
    of {!Progress.heartbeat} keep-alive lines between completions; [0.]
    disables them, and the default is 10 s when stdout is not a
    terminal (CI logs) and off when it is. Heartbeats only fire in
    parallel mode — see {!Pool.map}'s [tick]. *)

type t = {
  out : out_channel;
  total : int;
  now : unit -> float;
  t0 : float;
  mutable completed : int;
  mutable running : string list;  (* most recently started first *)
}

let create ?(out = stderr) ?(now = Unix.gettimeofday) ~total () =
  { out; total; now; t0 = now (); completed = 0; running = [] }

let note t fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.fprintf t.out "%s\n%!" msg)
    fmt

let eta t =
  if t.completed = 0 then nan
  else
    let elapsed = t.now () -. t.t0 in
    let per_job = elapsed /. float_of_int t.completed in
    (* the remaining jobs drain across every worker still in flight, not
       one after another: serial extrapolation over-estimates a parallel
       batch by roughly the worker count *)
    let workers = max 1 (List.length t.running) in
    per_job *. float_of_int (t.total - t.completed) /. float_of_int workers

let fmt_span s =
  if Float.is_nan s then "?"
  else if s < 60. then Printf.sprintf "%.1fs" s
  else Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)

let remove_first x l =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go l

let job_started t label = t.running <- label :: t.running

let job_finished t label ~status =
  t.completed <- t.completed + 1;
  t.running <- remove_first label t.running;
  let running =
    match t.running with
    | [] -> ""
    | l ->
      let shown = List.filteri (fun i _ -> i < 3) l in
      let more = List.length l - List.length shown in
      Printf.sprintf "; running %s%s" (String.concat " " shown)
        (if more > 0 then Printf.sprintf " +%d" more else "")
  in
  Printf.fprintf t.out "[%d/%d] %s %s (eta %s%s)\n%!" t.completed t.total
    label status (fmt_span (eta t)) running

let finish t =
  let elapsed = t.now () -. t.t0 in
  Printf.fprintf t.out "%d/%d jobs in %s\n%!" t.completed t.total
    (fmt_span elapsed)

module Hist = Stx_metrics.Hist

type t = {
  out : out_channel;
  total : int;
  now : unit -> float;
  t0 : float;
  mutable completed : int;
  mutable running : (string * float) list;  (* most recently started first *)
  durations : Hist.t;  (* per-job wall time, milliseconds *)
}

let create ?(out = stderr) ?(now = Unix.gettimeofday) ~total () =
  {
    out;
    total;
    now;
    t0 = now ();
    completed = 0;
    running = [];
    durations = Hist.create ();
  }

let note t fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.fprintf t.out "%s\n%!" msg)
    fmt

let eta t =
  if t.completed = 0 then nan
  else
    let elapsed = t.now () -. t.t0 in
    let per_job = elapsed /. float_of_int t.completed in
    (* the remaining jobs drain across every worker still in flight, not
       one after another: serial extrapolation over-estimates a parallel
       batch by roughly the worker count *)
    let workers = max 1 (List.length t.running) in
    per_job *. float_of_int (t.total - t.completed) /. float_of_int workers

let fmt_span s =
  if Float.is_nan s then "?"
  else if s < 60. then Printf.sprintf "%.1fs" s
  else Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)

let remove_first label l =
  let rec go = function
    | [] -> (None, [])
    | ((y, _) as entry) :: rest ->
      if y = label then (Some entry, rest)
      else
        let found, rest' = go rest in
        (found, entry :: rest')
  in
  go l

let job_started t label = t.running <- (label, t.now ()) :: t.running

let running_suffix t =
  match t.running with
  | [] -> ""
  | l ->
    let shown = List.filteri (fun i _ -> i < 3) l in
    let more = List.length l - List.length shown in
    Printf.sprintf "; running %s%s"
      (String.concat " " (List.map fst shown))
      (if more > 0 then Printf.sprintf " +%d" more else "")

let job_finished t label ~status =
  t.completed <- t.completed + 1;
  let started, running = remove_first label t.running in
  t.running <- running;
  (match started with
  | Some (_, at) ->
    Hist.add t.durations (int_of_float (Float.max 0. ((t.now () -. at) *. 1000.)))
  | None -> ());
  Printf.fprintf t.out "[%d/%d] %s %s (eta %s%s)\n%!" t.completed t.total
    label status (fmt_span (eta t)) (running_suffix t)

let wall_summary t =
  if Hist.is_empty t.durations then None
  else
    let span_of_ms ms = fmt_span (float_of_int ms /. 1000.) in
    Some
      (Printf.sprintf "job wall-time p50 %s p95 %s max %s"
         (span_of_ms (Hist.p50 t.durations))
         (span_of_ms (Hist.quantile t.durations 0.95))
         (span_of_ms (Hist.max_value t.durations)))

let heartbeat t =
  let summary =
    match wall_summary t with None -> "" | Some s -> "; " ^ s
  in
  Printf.fprintf t.out "heartbeat [%d/%d] eta %s%s%s\n%!" t.completed t.total
    (fmt_span (eta t)) summary (running_suffix t)

let finish t =
  let elapsed = t.now () -. t.t0 in
  let summary =
    match wall_summary t with None -> "" | Some s -> Printf.sprintf " (%s)" s
  in
  Printf.fprintf t.out "%d/%d jobs in %s%s\n%!" t.completed t.total
    (fmt_span elapsed) summary

open Stx_core

(** The unit of work of the experiment engine: one deterministic
    simulation, fully described by its inputs. Two jobs with equal specs
    produce byte-identical statistics, which is what makes the on-disk
    result store ({!Store}) sound. *)

type t = private {
  workload : string;  (** registry name, e.g. ["genome"] *)
  mode : Mode.t;
  threads : int;  (** simulated cores *)
  seed : int;
  scale : float;  (** workload size multiplier *)
  policy : Stx_policy.t;  (** HTM policy bundle the machine runs under *)
}

val make :
  ?policy:Stx_policy.t ->
  workload:string ->
  mode:Mode.t ->
  threads:int ->
  seed:int ->
  scale:float ->
  unit ->
  t
(** [policy] defaults to {!Stx_policy.default}. Raises
    [Invalid_argument] on [threads < 1] or [scale <= 0]. *)

val label : t -> string
(** Short human-readable form, ["genome/Staggered/t16"] — used by
    {!Progress}. Jobs under a non-default policy append its
    {!Stx_policy.label} as a fourth segment. *)

val canonical : t -> string
(** The canonical spec string the digest is computed over. Includes
    {!spec_version} and every field; [scale] is rendered with ["%h"] so
    distinct floats never collide. *)

val digest : t -> string
(** Hex content digest of {!canonical} — the store key. Sensitive to every
    field of the spec and to {!spec_version}. *)

val spec_version : int
(** Bump when the meaning of a job spec changes (new field, changed
    semantics), invalidating all previously stored results. *)

val compare : t -> t -> int
val equal : t -> t -> bool

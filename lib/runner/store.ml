open Stx_sim
open Stx_metrics

(* v5 widened histogram bucket payloads to (index, count, observed max)
   triples and added the stm counter section; v4 added the
   capacity-abort counter and the per-policy tally section; v3 appended
   the metrics-registry section to every entry *)
let format_version = 5

let magic = Printf.sprintf "staggered_tm-result v%d" format_version

let default_dir () =
  match Sys.getenv_opt "STAGGERED_TM_CACHE" with
  | Some d when d <> "" -> d
  | _ ->
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".cache"
        | _ -> Filename.get_temp_dir_name ())
    in
    Filename.concat base "staggered_tm"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a benign race *)
  end

type t = { dir : string }

let create ?dir () =
  let root = match dir with Some d -> d | None -> default_dir () in
  (* results of incompatible format versions live side by side *)
  let dir = Filename.concat root (Printf.sprintf "v%d" format_version) in
  mkdir_p dir;
  { dir }

let dir t = t.dir

let path t ~key = Filename.concat t.dir (key ^ ".stxr")

(* --- codec -------------------------------------------------------------
   A line-oriented text format: magic line, one "name value" line per
   scalar counter, length-prefixed sections for the frequency tables and
   the per-atomic-block records (entries key-sorted so encoding is a
   function of the stats value alone), and a trailing "end" sentinel so a
   truncated file can never decode. *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let encode (r : Run.t) =
  let s = r.Run.stats in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string b str; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "threads %d" s.Stats.threads;
  line "commits %d" s.Stats.commits;
  line "aborts %d" s.Stats.aborts;
  line "conflict_aborts %d" s.Stats.conflict_aborts;
  line "lock_sub_aborts %d" s.Stats.lock_sub_aborts;
  line "explicit_aborts %d" s.Stats.explicit_aborts;
  line "capacity_aborts %d" s.Stats.capacity_aborts;
  line "stm_conflict_aborts %d" s.Stats.stm_conflict_aborts;
  line "stm_commits %d" s.Stats.stm_commits;
  line "stm_aborts %d" s.Stats.stm_aborts;
  line "stm_validation_aborts %d" s.Stats.stm_validation_aborts;
  line "stm_hw_owned_aborts %d" s.Stats.stm_hw_owned_aborts;
  line "stm_locksub_aborts %d" s.Stats.stm_locksub_aborts;
  line "stm_validation_cycles %d" s.Stats.stm_validation_cycles;
  line "irrevocable_entries %d" s.Stats.irrevocable_entries;
  line "useful_cycles %d" s.Stats.useful_cycles;
  line "wasted_cycles %d" s.Stats.wasted_cycles;
  line "tx_mode_cycles %d" s.Stats.tx_mode_cycles;
  line "lock_wait_cycles %d" s.Stats.lock_wait_cycles;
  line "backoff_cycles %d" s.Stats.backoff_cycles;
  line "total_cycles %d" s.Stats.total_cycles;
  line "thread_cycles %d" s.Stats.thread_cycles;
  line "lock_acquires %d" s.Stats.lock_acquires;
  line "lock_timeouts %d" s.Stats.lock_timeouts;
  line "alps_executed %d" s.Stats.alps_executed;
  line "alps_lock_attempts %d" s.Stats.alps_lock_attempts;
  line "accuracy_hits %d" s.Stats.accuracy_hits;
  line "accuracy_total %d" s.Stats.accuracy_total;
  line "precise %d" s.Stats.precise;
  line "coarse %d" s.Stats.coarse;
  line "promoted %d" s.Stats.promoted;
  line "training %d" s.Stats.training;
  line "insts %d" s.Stats.insts;
  line "tx_insts %d" s.Stats.tx_insts;
  line "committed_tx_insts %d" s.Stats.committed_tx_insts;
  let freq name tbl =
    let entries = sorted_bindings tbl in
    line "%s %d" name (List.length entries);
    List.iter (fun (k, v) -> line "%d %d" k v) entries
  in
  freq "conf_addr" s.Stats.conf_addr_freq;
  freq "conf_pc" s.Stats.conf_pc_freq;
  let abs = sorted_bindings s.Stats.per_ab in
  line "per_ab %d" (List.length abs);
  List.iter
    (fun (id, (a : Stats.ab_stat)) ->
      line "%d %d %d %d %d" id a.Stats.ab_commits a.Stats.ab_aborts
        a.Stats.ab_locks a.Stats.ab_irrevocable)
    abs;
  (* policy labels never contain spaces (the label charset is
     [a-zA-Z0-9_.:+-]), so a space-separated record is unambiguous *)
  let pols =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Stats.per_policy []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
  in
  line "per_policy %d" (List.length pols);
  List.iter
    (fun (lbl, (p : Stats.pol_stat)) ->
      line "%s %d %d %d %d" lbl p.Stats.p_commits p.Stats.p_aborts
        p.Stats.p_capacity p.Stats.p_irrevocable)
    pols;
  let mlines = Registry.encode r.Run.metrics in
  line "metrics %d" (List.length mlines);
  List.iter (fun l -> line "%s" l) mlines;
  line "end";
  Buffer.contents b

exception Malformed

let decode text =
  let lines = String.split_on_char '\n' text in
  let lines = ref lines in
  let next () =
    match !lines with
    | l :: rest ->
      lines := rest;
      l
    | [] -> raise Malformed
  in
  let scalar name =
    match String.split_on_char ' ' (next ()) with
    | [ n; v ] when n = name -> (
      match int_of_string_opt v with Some i -> i | None -> raise Malformed)
    | _ -> raise Malformed
  in
  let int_pair line =
    match String.split_on_char ' ' line with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> (a, b)
      | _ -> raise Malformed)
    | _ -> raise Malformed
  in
  try
    if next () <> magic then raise Malformed;
    let threads = scalar "threads" in
    let s = Stats.create ~threads in
    s.Stats.commits <- scalar "commits";
    s.Stats.aborts <- scalar "aborts";
    s.Stats.conflict_aborts <- scalar "conflict_aborts";
    s.Stats.lock_sub_aborts <- scalar "lock_sub_aborts";
    s.Stats.explicit_aborts <- scalar "explicit_aborts";
    s.Stats.capacity_aborts <- scalar "capacity_aborts";
    s.Stats.stm_conflict_aborts <- scalar "stm_conflict_aborts";
    s.Stats.stm_commits <- scalar "stm_commits";
    s.Stats.stm_aborts <- scalar "stm_aborts";
    s.Stats.stm_validation_aborts <- scalar "stm_validation_aborts";
    s.Stats.stm_hw_owned_aborts <- scalar "stm_hw_owned_aborts";
    s.Stats.stm_locksub_aborts <- scalar "stm_locksub_aborts";
    s.Stats.stm_validation_cycles <- scalar "stm_validation_cycles";
    s.Stats.irrevocable_entries <- scalar "irrevocable_entries";
    s.Stats.useful_cycles <- scalar "useful_cycles";
    s.Stats.wasted_cycles <- scalar "wasted_cycles";
    s.Stats.tx_mode_cycles <- scalar "tx_mode_cycles";
    s.Stats.lock_wait_cycles <- scalar "lock_wait_cycles";
    s.Stats.backoff_cycles <- scalar "backoff_cycles";
    s.Stats.total_cycles <- scalar "total_cycles";
    s.Stats.thread_cycles <- scalar "thread_cycles";
    s.Stats.lock_acquires <- scalar "lock_acquires";
    s.Stats.lock_timeouts <- scalar "lock_timeouts";
    s.Stats.alps_executed <- scalar "alps_executed";
    s.Stats.alps_lock_attempts <- scalar "alps_lock_attempts";
    s.Stats.accuracy_hits <- scalar "accuracy_hits";
    s.Stats.accuracy_total <- scalar "accuracy_total";
    s.Stats.precise <- scalar "precise";
    s.Stats.coarse <- scalar "coarse";
    s.Stats.promoted <- scalar "promoted";
    s.Stats.training <- scalar "training";
    s.Stats.insts <- scalar "insts";
    s.Stats.tx_insts <- scalar "tx_insts";
    s.Stats.committed_tx_insts <- scalar "committed_tx_insts";
    let freq name tbl =
      let n = scalar name in
      for _ = 1 to n do
        let k, v = int_pair (next ()) in
        Hashtbl.replace tbl k v
      done
    in
    freq "conf_addr" s.Stats.conf_addr_freq;
    freq "conf_pc" s.Stats.conf_pc_freq;
    let n = scalar "per_ab" in
    for _ = 1 to n do
      match String.split_on_char ' ' (next ()) |> List.map int_of_string_opt with
      | [ Some id; Some c; Some a; Some l; Some i ] ->
        let ab = Stats.ab s id in
        ab.Stats.ab_commits <- c;
        ab.Stats.ab_aborts <- a;
        ab.Stats.ab_locks <- l;
        ab.Stats.ab_irrevocable <- i
      | _ -> raise Malformed
    done;
    let n = scalar "per_policy" in
    for _ = 1 to n do
      match String.split_on_char ' ' (next ()) with
      | [ lbl; c; a; cap; i ] -> (
        match
          ( int_of_string_opt c,
            int_of_string_opt a,
            int_of_string_opt cap,
            int_of_string_opt i )
        with
        | Some c, Some a, Some cap, Some i ->
          let p = Stats.policy_tally s lbl in
          p.Stats.p_commits <- c;
          p.Stats.p_aborts <- a;
          p.Stats.p_capacity <- cap;
          p.Stats.p_irrevocable <- i
        | _ -> raise Malformed)
      | _ -> raise Malformed
    done;
    let n = scalar "metrics" in
    let mlines = List.init n (fun _ -> next ()) in
    let metrics =
      match Registry.decode mlines with
      | Some reg -> reg
      | None -> raise Malformed
    in
    if next () <> "end" then raise Malformed;
    Some { Run.stats = s; metrics }
  with Malformed -> None

(* ---------------------------------------------------------------------- *)

let read_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Some text
  | exception _ -> None (* missing or unreadable: a miss, never an error *)

(* write-then-rename: readers (and a kill -9) only ever see a complete
   entry; the temp file lives in the same directory so the rename cannot
   cross filesystems *)
let write_file t file text =
  let tmp =
    Filename.temp_file ~temp_dir:t.dir ("." ^ Filename.basename file) ".tmp"
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text);
    Sys.rename tmp file
  with
  | () -> ()
  | exception e ->
    cleanup ();
    raise e

let load t ~key =
  match read_file (path t ~key) with
  | Some text -> decode text
  | None -> None

let save t ~key run = write_file t (path t ~key) (encode run)

(* --- opaque artifacts --------------------------------------------------
   Rendered deliverables (e.g. the stx_repro report HTML) cached next to
   the result entries. Blobs are raw bytes under the same atomicity
   discipline; the .blob suffix keeps them out of the .stxr namespace. *)

let blob_path t ~key = Filename.concat t.dir (key ^ ".blob")
let save_blob t ~key text = write_file t (blob_path t ~key) text
let load_blob t ~key = read_file (blob_path t ~key)

open Stx_tir

type t = {
  prog : Ir.program;
  dsa : Stx_dsa.Dsa.t;
  anchors : Anchors.t;
  mode : Anchors.mode;
  instrumented : bool;
  unified : Unified.table array;
  layout : Layout.t;
  pc_bits : int;
  read_only : bool array;
}

(* an atomic block is read-only when no store is reachable from its root:
   its transactions can be aborted but never abort anyone else *)
let compute_read_only prog =
  let memo = Hashtbl.create 16 in
  let rec writes fname =
    match Hashtbl.find_opt memo fname with
    | Some r -> r
    | None ->
      Hashtbl.add memo fname false (* break recursion cycles optimistically *);
      let f = Ir.find_func prog fname in
      let found = ref false in
      Ir.iter_insts f (fun _ _ inst ->
          match inst.Ir.op with
          | Ir.Store _ | Ir.Alloc _ | Ir.Alloc_arr _ -> found := true
          | _ -> (
            match Ir.callee inst.Ir.op with
            | Some g when Hashtbl.mem prog.Ir.funcs g -> if writes g then found := true
            | _ -> ()));
      Hashtbl.replace memo fname !found;
      !found
  in
  Array.map (fun (a : Ir.atomic) -> not (writes a.Ir.ab_func)) prog.Ir.atomics

let compile ?(pc_bits = 12) ?(mode = Anchors.Dsa_guided) ?(instrument = true) prog =
  Verify.program prog;
  let dsa = Stx_dsa.Dsa.analyze prog in
  let anchors = Anchors.build ~insert:instrument prog dsa ~mode in
  let unified = Unified.build prog dsa anchors in
  let layout = Layout.assign prog in
  Array.iter (fun table -> Unified.index_by_pc table layout ~pc_bits) unified;
  {
    prog;
    dsa;
    anchors;
    mode;
    instrumented = instrument;
    unified;
    layout;
    pc_bits;
    read_only = compute_read_only prog;
  }

let table_for t ~ab = t.unified.(ab)

let is_read_only t ~ab = t.read_only.(ab)

let static_stats t =
  (t.anchors.Anchors.loads_stores_analyzed, t.anchors.Anchors.anchors_instrumented)

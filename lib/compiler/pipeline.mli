open Stx_tir

(** The whole compile flow in one call: verification, Data Structure
    Analysis, anchor classification, ALP instrumentation, binary layout,
    and PC-indexed unified anchor tables — everything the runtime needs to
    execute a program under Staggered Transactions. *)

type t = {
  prog : Ir.program;  (** the (instrumented) program *)
  dsa : Stx_dsa.Dsa.t;
  anchors : Anchors.t;
  mode : Anchors.mode;  (** anchor-selection mode this compile used *)
  instrumented : bool;  (** whether ALPs were inserted *)
  unified : Unified.table array;  (** indexed by atomic-block id *)
  layout : Layout.t;
  pc_bits : int;
  read_only : bool array;
      (** per atomic block: no store (or allocation) is reachable from its
          root, so its transactions never abort anyone else *)
}

val compile : ?pc_bits:int -> ?mode:Anchors.mode -> ?instrument:bool -> Ir.program -> t
(** Instruments [prog] in place. [pc_bits] defaults to 12 (the paper's
    hardware tag width); [mode] defaults to [Dsa_guided]; [instrument:false]
    analyzes without inserting ALPs (the plain-HTM baseline binary). *)

val table_for : t -> ab:int -> Unified.table

val is_read_only : t -> ab:int -> bool

val static_stats : t -> int * int
(** (loads/stores analyzed, anchors instrumented) — the "Static Stats"
    columns of Table 3. *)

open Stx_tir
open Stx_dsa

type entry = {
  ue_id : int;
  ue_iid : int;
  ue_func : string;
  ue_is_anchor : bool;
  ue_site : int option;
  mutable ue_parent : int option;
  ue_pioneer : int option;
  ue_node : int;
}

type table = {
  t_ab : int;
  mutable t_entries : entry array;
  by_pc : (int, int) Hashtbl.t;
  by_low : (int, int) Hashtbl.t; (* truncated pc -> first entry id *)
  by_site : (int, int) Hashtbl.t;
  mutable t_collisions : (int * int list) list;
      (* truncated tags shared by several entries, with the entry ids in
         table (= resolution) order; filled by index_by_pc *)
}

let ab_id t = t.t_ab
let entries t = t.t_entries

let build prog dsa (anch : Anchors.t) =
  let build_one (ab : Ir.atomic) =
    let acc = ref [] in
    let next_id = ref 0 in
    (* first anchor entry id per root-context node *)
    let rep_of_node : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let anchors_on_node : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
    (* remember one representative Dsnode.t per translated node id, for the
       edge-based parent completion *)
    let node_obj : (int, Dsnode.t) Hashtbl.t = Hashtbl.create 32 in
    let add_entry e =
      acc := e :: !acc;
      if e.ue_is_anchor then begin
        if not (Hashtbl.mem rep_of_node e.ue_node) then
          Hashtbl.replace rep_of_node e.ue_node e.ue_id;
        let l =
          match Hashtbl.find_opt anchors_on_node e.ue_node with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add anchors_on_node e.ue_node l;
            l
        in
        l := e.ue_id :: !l
      end
    in
    let rec visit fname translate active =
      if List.mem fname active then ()
      else
        match Hashtbl.find_opt anch.Anchors.locals fname with
        | None -> ()
        | Some lt ->
          (* map anchor iid -> ue_id within this visit, for pioneers *)
          let local_ids = Hashtbl.create 16 in
          Array.iter
            (fun (le : Anchors.entry) ->
              let node = translate le.Anchors.le_node in
              let nid = Dsnode.id node in
              Hashtbl.replace node_obj nid node;
              let ue_id = !next_id in
              incr next_id;
              let pioneer =
                Option.bind le.Anchors.le_pioneer (Hashtbl.find_opt local_ids)
              in
              let e =
                {
                  ue_id;
                  ue_iid = le.Anchors.le_iid;
                  ue_func = fname;
                  ue_is_anchor = le.Anchors.le_is_anchor;
                  ue_site = Hashtbl.find_opt anch.Anchors.anchor_sites le.Anchors.le_iid;
                  ue_parent = None;
                  ue_pioneer = pioneer;
                  ue_node = nid;
                }
              in
              Hashtbl.replace local_ids le.Anchors.le_iid ue_id;
              add_entry e)
            lt.Anchors.lt_entries;
          (* recurse into call sites in layout order *)
          let f = Ir.find_func prog fname in
          Ir.iter_insts f (fun _ _ inst ->
              match Ir.callee inst.Ir.op with
              | Some g when Hashtbl.mem anch.Anchors.locals g ->
                let call_iid = inst.Ir.iid in
                let translate' n =
                  translate (Dsa.map_callee_node dsa ~call_iid n)
                in
                visit g translate' (fname :: active)
              | _ -> ())
    in
    visit ab.Ir.ab_func (fun n -> Dsnode.find n) [];
    let arr = Array.of_list (List.rev !acc) in
    (* parent completion from root-context graph edges: anchors on the
       target of an edge n -> m (n <> m) get n's representative anchor *)
    let nodes = Hashtbl.fold (fun nid n l -> (nid, n) :: l) node_obj [] in
    let nodes = List.sort (fun (a, _) (b, _) -> compare a b) nodes in
    List.iter
      (fun (nid, n) ->
        match Hashtbl.find_opt rep_of_node nid with
        | None -> ()
        | Some parent_id ->
          List.iter
            (fun (_, m) ->
              let mid = Dsnode.id m in
              if mid <> nid then
                match Hashtbl.find_opt anchors_on_node mid with
                | None -> ()
                | Some l ->
                  List.iter
                    (fun eid ->
                      let e = arr.(eid) in
                      if e.ue_parent = None && eid <> parent_id then
                        e.ue_parent <- Some parent_id)
                    (List.rev !l))
            (Dsnode.edges n))
      nodes;
    let t =
      {
        t_ab = ab.Ir.ab_id;
        t_entries = arr;
        by_pc = Hashtbl.create 64;
        by_low = Hashtbl.create 64;
        by_site = Hashtbl.create 64;
        t_collisions = [];
      }
    in
    Array.iter
      (fun e ->
        match e.ue_site with
        | Some s -> Hashtbl.replace t.by_site s e.ue_id
        | None -> ())
      arr;
    t
  in
  Array.map build_one prog.Ir.atomics

let index_by_pc t layout ~pc_bits =
  Hashtbl.reset t.by_pc;
  Hashtbl.reset t.by_low;
  let sharers : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      match Layout.pc_of_iid layout e.ue_iid with
      | pc ->
        if not (Hashtbl.mem t.by_pc pc) then Hashtbl.add t.by_pc pc e.ue_id;
        let low = Layout.truncate ~bits:pc_bits pc in
        if not (Hashtbl.mem t.by_low low) then Hashtbl.add t.by_low low e.ue_id;
        (match Hashtbl.find_opt sharers low with
        | Some l -> l := e.ue_id :: !l
        | None -> Hashtbl.add sharers low (ref [ e.ue_id ]))
      | exception Not_found -> ())
    t.t_entries;
  t.t_collisions <-
    Hashtbl.fold
      (fun low l acc ->
        (* entries of one table may legitimately share a full PC (the same
           instruction visited through several call paths); only distinct
           PCs folding onto one tag are a hardware ambiguity *)
        let ids = List.sort_uniq compare !l in
        let pcs =
          List.sort_uniq compare
            (List.map (fun i -> Layout.pc_of_iid layout t.t_entries.(i).ue_iid) ids)
        in
        if List.length pcs > 1 then (low, List.rev !l) :: acc else acc)
      sharers []
    |> List.sort compare

let search_by_pc t pc =
  Option.map (fun i -> t.t_entries.(i)) (Hashtbl.find_opt t.by_pc pc)

let search_by_truncated_pc t low =
  Option.map (fun i -> t.t_entries.(i)) (Hashtbl.find_opt t.by_low low)

let collisions t = t.t_collisions

let collision_count t =
  List.fold_left (fun acc (_, ids) -> acc + List.length ids - 1) 0 t.t_collisions

let tag_ambiguous t low = List.mem_assoc low t.t_collisions

let entry_of_site t site =
  Option.map (fun i -> t.t_entries.(i)) (Hashtbl.find_opt t.by_site site)

let anchor_of t e =
  if e.ue_is_anchor then Some e
  else Option.map (fun i -> t.t_entries.(i)) e.ue_pioneer

let parent_of t e = Option.map (fun i -> t.t_entries.(i)) e.ue_parent

let pp ppf t =
  Format.fprintf ppf "@[<v>unified anchor table for atomic block %d@," t.t_ab;
  Array.iter
    (fun e ->
      let kind = if e.ue_is_anchor then "A" else " " in
      let rel =
        if e.ue_is_anchor then
          match e.ue_parent with
          | Some p -> Printf.sprintf "parent %d" p
          | None -> "parent -"
        else
          match e.ue_pioneer with
          | Some p -> Printf.sprintf "pioneer %d" p
          | None -> "pioneer -"
      in
      Format.fprintf ppf "  %s %3d  i%-5d %-24s node %-4d %s@," kind e.ue_id e.ue_iid
        e.ue_func e.ue_node rel)
    t.t_entries;
  Format.fprintf ppf "@]"

open Stx_tir
open Stx_dsa

(** Unified per-atomic-block anchor tables (§3.3).

    Walking top-down from each atomic block's root function, local anchor
    tables are cloned and merged, translating each entry's DSNode along the
    composed call-site node mappings from the bottom-up DSA. The result is
    context-sensitive: the same instruction may have different parents in
    different atomic blocks. Parent links missing at the local level (the
    pointer was passed in as an argument) are completed here from the
    root-context graph edges. After {!Layout.assign}, tables are indexed by
    PC — including by truncated PC, modelling the hardware's 12-bit
    conflicting-PC tag. *)

type entry = {
  ue_id : int;  (** index within this table *)
  ue_iid : int;  (** the load/store instruction *)
  ue_func : string;
  ue_is_anchor : bool;
  ue_site : int option;  (** ALP site id when this entry is an anchor *)
  mutable ue_parent : int option;  (** ue_id of the parent anchor *)
  ue_pioneer : int option;  (** ue_id of the canonical anchor (non-anchors) *)
  ue_node : int;  (** root-context DSNode id (diagnostics/grouping) *)
}

type table

val ab_id : table -> int
val entries : table -> entry array

val build : Ir.program -> Dsa.t -> Anchors.t -> table array
(** One table per atomic block, indexed by [ab_id]. Call after
    {!Anchors.build} (tables refer to ALP sites). *)

val index_by_pc : table -> Layout.t -> pc_bits:int -> unit
(** Populate the PC indexes once instruction addresses are known. *)

val search_by_pc : table -> int -> entry option
(** Exact (full-width) PC lookup of a load/store entry. *)

val search_by_truncated_pc : table -> int -> entry option
(** Lookup by the low [pc_bits] bits only, as the hardware tag provides;
    ambiguities resolve to the first entry in table order (a modelled
    source of inaccuracy). *)

val collisions : table -> (int * int list) list
(** Truncated tags onto which entries with several {e distinct} full PCs
    fold, each with the colliding entry ids in table order — the first id
    is the one {!search_by_truncated_pc} silently resolves to. Tags in
    ascending order. Empty until {!index_by_pc} has run. *)

val collision_count : table -> int
(** Entries shadowed behind another entry's identical truncated tag: the
    number of table rows {!search_by_truncated_pc} can never return. *)

val tag_ambiguous : table -> int -> bool
(** Whether a truncated-PC lookup of this tag is a guess between several
    distinct instructions. *)

val entry_of_site : table -> int -> entry option
(** The entry describing the anchor with the given ALP site id. *)

val anchor_of : table -> entry -> entry option
(** Resolve an entry to its anchor: itself if it is one, else its
    pioneer. *)

val parent_of : table -> entry -> entry option

val pp : Format.formatter -> table -> unit
(** Figure 3-style listing: each entry with anchor/pioneer/parent. *)

(** Streaming statistics accumulators and summary helpers used by the
    simulator's bookkeeping and the experiment harness. *)

type t
(** A running accumulator over a stream of float observations
    (Welford's algorithm: numerically stable mean/variance). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observations; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] if empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] if empty. *)

val total : t -> float

val harmonic_mean : float list -> float
(** Harmonic mean of positive values (the paper summarizes speedup
    improvements this way); 0 on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val ratio : int -> int -> float
(** [ratio num den] is [num /. den], or 0 when [den = 0]. *)

val percent : int -> int -> float
(** [percent part whole] in 0..100; 0 when [whole = 0]. *)

val ranked : ('k, int) Hashtbl.t -> ('k * int) list
(** A frequency table as a ranking: count descending, count ties broken
    by key ascending (polymorphic compare — keys are ints or strings in
    practice). [Hashtbl.fold] order varies with the hash seed and the
    OCaml version, so every report that prints a ranking must come
    through here to stay byte-stable. *)

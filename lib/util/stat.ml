type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.total

let harmonic_mean = function
  | [] -> 0.
  | xs ->
    let n = float_of_int (List.length xs) in
    let denom = List.fold_left (fun acc x -> acc +. (1. /. x)) 0. xs in
    n /. denom

let geometric_mean = function
  | [] -> 0.
  | xs ->
    let n = float_of_int (List.length xs) in
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. n)

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den
let percent part whole = 100. *. ratio part whole

let ranked tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, c1) (k2, c2) ->
         if c1 <> c2 then compare (c2 : int) c1 else compare k1 k2)

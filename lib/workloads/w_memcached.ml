open Stx_tir
open Stx_machine
open Stx_tstruct

(* memcached 1.4.9 with the network front end elided (as in the paper):
   memslap-style get/set commands injected straight into the command
   processor. Every command transaction touches the key hash table and
   then updates the global statistics block in the middle of the
   transaction — a handful of hot counters on one or two cache lines.
   Those stable mid-transaction addresses are the paper's showcase for
   serializing just the statistics suffix while the hash lookups overlap.

   The workload constants are parameters with the paper's values as
   defaults, so the closed-loop benchmark and the open-loop serving
   harness (Stx_serve) drive one definition. *)

type params = {
  nbuckets : int;  (** hash-table buckets *)
  key_range : int;  (** keys are drawn from [1 .. key_range] *)
  total_ops : int;  (** closed-loop op budget, split across threads *)
  pct_get : int;  (** closed-loop get percentage (the rest are sets) *)
}

let default_params =
  { nbuckets = 64; key_range = 512; total_ops = 2048; pct_get = 70 }

(* stats block layout: cmd_get, cmd_set, get_hits, get_misses, bytes *)
let stats_words = 5

let build_with p_ () =
  let p = Ir.create_program () in
  Thash.register p;
  (* process_get(ht, stats, key) *)
  let b = Builder.create p "process_get" ~params:[ "ht"; "stats"; "key" ] in
  let hit = Builder.call_v b Thash.lookup_fn [ Builder.param b "ht"; Builder.param b "key" ] in
  let bump i delta =
    let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm i) in
    let v = Builder.load b slot in
    Builder.store b ~addr:slot (Builder.bin b Ir.Add v delta)
  in
  bump 0 (Ir.Imm 1);
  (* hits and misses update different counters on the stats lines *)
  Builder.if_ b hit
    (fun b ->
      let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm 2) in
      let v = Builder.load b slot in
      Builder.store b ~addr:slot (Builder.bin b Ir.Add v (Ir.Imm 1)))
    (fun b ->
      let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm 3) in
      let v = Builder.load b slot in
      Builder.store b ~addr:slot (Builder.bin b Ir.Add v (Ir.Imm 1)));
  bump 4 (Ir.Imm 64);
  Builder.ret b None;
  ignore (Builder.finish b);
  (* process_set(ht, stats, key) *)
  let b = Builder.create p "process_set" ~params:[ "ht"; "stats"; "key" ] in
  ignore (Builder.call_v b Thash.insert_fn [ Builder.param b "ht"; Builder.param b "key" ]);
  let bump i delta =
    let slot = Builder.idx b (Builder.param b "stats") ~esize:1 (Ir.Imm i) in
    let v = Builder.load b slot in
    Builder.store b ~addr:slot (Builder.bin b Ir.Add v delta)
  in
  bump 1 (Ir.Imm 1);
  bump 4 (Ir.Imm 128);
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab_get = Ir.add_atomic p ~name:"process_get" ~func:"process_get" in
  let ab_set = Ir.add_atomic p ~name:"process_set" ~func:"process_set" in
  let b = Builder.create p "main" ~params:[ "ht"; "stats"; "ops" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
      let key =
        Builder.bin b Ir.Add (Builder.rng b (Ir.Imm p_.key_range)) (Ir.Imm 1)
      in
      Builder.if_ b
        (Builder.bin b Ir.Lt (Builder.rng b (Ir.Imm 100)) (Ir.Imm p_.pct_get))
        (fun b ->
          Builder.atomic_call b ab_get
            [ Builder.param b "ht"; Builder.param b "stats"; key ])
        (fun b ->
          Builder.atomic_call b ab_set
            [ Builder.param b "ht"; Builder.param b "stats"; key ]));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

(* shared setup: hash table pre-filled from the seed stream, plus the
   global statistics block — identical for closed-loop and serving runs *)
let setup_shared p_ env =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let rng = env.Stx_sim.Machine.setup_rng in
  let keys = List.init 256 (fun _ -> 1 + Stx_util.Rng.int rng p_.key_range) in
  let ht = Thash.setup mem alloc ~nbuckets:p_.nbuckets ~keys in
  let stats = Alloc.alloc_shared alloc stats_words in
  (ht, stats)

let args_with p_ ~scale env ~threads =
  let ht, stats = setup_shared p_ env in
  let per = Workload.split ~total:(Workload.scaled scale p_.total_ops) ~threads in
  Array.make threads [| ht; stats; per |]

let bench_with p_ =
  {
    Workload.name = "memcached";
    Workload.source = "memcached-1.4.9";
    Workload.description = "get/set command processing with global statistics updates";
    Workload.contention = "high";
    Workload.contention_source = "statistics information";
    Workload.build = build_with p_;
    Workload.args = args_with p_;
  }

let bench = bench_with default_params

let service_with p_ =
  {
    Workload.sv_bench = bench_with p_;
    Workload.sv_key_range = p_.key_range;
    Workload.sv_setup =
      (fun ~key_range ~abs env ~threads:_ ->
        let ht, stats = setup_shared { p_ with key_range } env in
        let ab_get = abs "process_get" and ab_set = abs "process_set" in
        fun ~write ~key ->
          {
            Workload.rq_ab = (if write then ab_set else ab_get);
            Workload.rq_args = [| ht; stats; key |];
          });
  }

let service = service_with default_params

open Stx_tir
open Stx_sim

(** Common shape of a benchmark: a fresh TIR program plus a setup function
    that builds the shared structures in simulated memory and splits a
    fixed total amount of work across the threads (so a 1-thread run and a
    16-thread run do the same work, making speedups meaningful). *)

type t = {
  name : string;
  source : string;  (** provenance, as in Table 4: STAMP, IntSet, etc. *)
  description : string;
  contention : string;  (** expected class: "low" / "med" / "high" *)
  contention_source : string;  (** the hot structure, as in Table 1 *)
  build : unit -> Ir.program;
      (** a fresh, uninstrumented program (compiled per configuration) *)
  args : scale:float -> Machine.setup_env -> threads:int -> int array array;
      (** build shared state; returns each thread's argument vector for the
          function named ["main"] *)
}

val spec :
  ?instrument:bool ->
  ?anchor_mode:Stx_compiler.Anchors.mode ->
  ?scale:float ->
  ?pc_bits:int ->
  t ->
  Machine.spec
(** Compile a fresh copy of the program (with or without ALPs) and package
    it for {!Machine.run}. [anchor_mode] selects the anchor classification
    ([Dsa_guided] by default, [Naive] instruments every access); [scale]
    multiplies the workload size; [pc_bits] must match the machine's
    PC-tag width (default 12). *)

val scaled : float -> int -> int
(** [scaled scale n] = [max 1 (round (scale * n))]. *)

val split : total:int -> threads:int -> int
(** Per-thread share of [total] units of work (at least 1). *)

(** {2 Request-driven serving}

    A service is the open-loop face of a workload: the same shared
    structures and atomic blocks, but driven one request at a time by the
    serving harness ({!Stx_serve}) through {!Machine.run}'s injector
    instead of a fixed per-thread op budget. *)

type request = { rq_ab : int; rq_args : int array }
(** One synthesized request: invoke atomic block [rq_ab] with
    [rq_args]. *)

type service = {
  sv_bench : t;  (** the underlying workload (program, provenance) *)
  sv_key_range : int;  (** default key universe; keys are [1 .. range] *)
  sv_setup :
    key_range:int ->
    abs:(string -> int) ->
    Machine.setup_env ->
    threads:int ->
    (write:bool -> key:int -> request);
      (** build the shared state and return the request synthesizer;
          [abs] resolves an atomic block's name to its id *)
}

val service_entry : string
(** Name of the no-op thread entry compiled into serving specs
    (["stx_serve_idle"]). *)

val service_spec :
  ?instrument:bool ->
  ?anchor_mode:Stx_compiler.Anchors.mode ->
  ?pc_bits:int ->
  ?key_range:int ->
  service ->
  Machine.spec * (write:bool -> key:int -> request) option ref
(** Compile the service's program with a no-op serving entry appended and
    package it for {!Machine.run}. The returned ref is filled with the
    request synthesizer when the machine runs the spec's setup (i.e.
    inside [Machine.run], before any injector poll); [key_range]
    overrides the service's default key universe. *)

open Stx_tir
open Stx_sim

(** Common shape of a benchmark: a fresh TIR program plus a setup function
    that builds the shared structures in simulated memory and splits a
    fixed total amount of work across the threads (so a 1-thread run and a
    16-thread run do the same work, making speedups meaningful). *)

type t = {
  name : string;
  source : string;  (** provenance, as in Table 4: STAMP, IntSet, etc. *)
  description : string;
  contention : string;  (** expected class: "low" / "med" / "high" *)
  contention_source : string;  (** the hot structure, as in Table 1 *)
  build : unit -> Ir.program;
      (** a fresh, uninstrumented program (compiled per configuration) *)
  args : scale:float -> Machine.setup_env -> threads:int -> int array array;
      (** build shared state; returns each thread's argument vector for the
          function named ["main"] *)
}

val spec :
  ?instrument:bool ->
  ?anchor_mode:Stx_compiler.Anchors.mode ->
  ?scale:float ->
  ?pc_bits:int ->
  t ->
  Machine.spec
(** Compile a fresh copy of the program (with or without ALPs) and package
    it for {!Machine.run}. [anchor_mode] selects the anchor classification
    ([Dsa_guided] by default, [Naive] instruments every access); [scale]
    multiplies the workload size; [pc_bits] must match the machine's
    PC-tag width (default 12). *)

val scaled : float -> int -> int
(** [scaled scale n] = [max 1 (round (scale * n))]. *)

val split : total:int -> threads:int -> int
(** Per-thread share of [total] units of work (at least 1). *)

open Stx_tir
open Stx_tstruct

(* The IntSet sorted-list microbenchmark of the RSTM suite: a single
   64-node shared list; every operation is one transaction. list-lo does
   90/5/5 lookup/insert/delete, list-hi 60/20/20. Traversals read long
   prefixes of the list, so writers abort every reader behind them: the
   canonical wandering-address, stable-PC pattern that needs coarse-grain
   locking (the paper locks the whole list, §6.2). *)

let nodes = 64
let key_range = 80
let total_ops = 4096

let build_prog ~pct_lookup ~pct_insert () =
  let p = Ir.create_program () in
  Tlist.register p;
  let ab_l = Ir.add_atomic p ~name:"list_lookup" ~func:Tlist.lookup_fn in
  let ab_i = Ir.add_atomic p ~name:"list_insert" ~func:Tlist.insert_fn in
  let ab_d = Ir.add_atomic p ~name:"list_delete" ~func:Tlist.delete_fn in
  let b = Builder.create p "main" ~params:[ "head"; "ops" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "ops") (fun b _ ->
      let key = Builder.rng b (Ir.Imm key_range) in
      let dice = Builder.rng b (Ir.Imm 100) in
      Builder.if_ b
        (Builder.bin b Ir.Lt dice (Ir.Imm pct_lookup))
        (fun b -> ignore (Builder.atomic_call_v b ab_l [ Builder.param b "head"; key ]))
        (fun b ->
          Builder.if_ b
            (Builder.bin b Ir.Lt dice (Ir.Imm (pct_lookup + pct_insert)))
            (fun b ->
              ignore (Builder.atomic_call_v b ab_i [ Builder.param b "head"; key ]))
            (fun b ->
              ignore (Builder.atomic_call_v b ab_d [ Builder.param b "head"; key ]))));
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let setup_list ~key_range env =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let rng = env.Stx_sim.Machine.setup_rng in
  (* every other key, so inserts and deletes both find work *)
  let keys =
    List.init nodes (fun _ -> 1 + Stx_util.Rng.int rng key_range)
    |> List.sort_uniq compare
  in
  Tlist.setup mem alloc ~keys

let args ~scale env ~threads =
  let head = setup_list ~key_range env in
  let per = Workload.split ~total:(Workload.scaled scale total_ops) ~threads in
  Array.make threads [| head; per |]

let make name ~pct_lookup ~pct_insert ~pct_delete ~contention =
  {
    Workload.name;
    Workload.source = "IntSet";
    Workload.description =
      Printf.sprintf "%d-node sorted list, %d%%/%d%%/%d%% lookup/insert/delete" nodes
        pct_lookup pct_insert pct_delete;
    Workload.contention;
    Workload.contention_source = "linked-list";
    Workload.build = build_prog ~pct_lookup ~pct_insert;
    Workload.args;
  }

let list_lo = make "list-lo" ~pct_lookup:90 ~pct_insert:5 ~pct_delete:5 ~contention:"med"
let list_hi = make "list-hi" ~pct_lookup:60 ~pct_insert:20 ~pct_delete:20 ~contention:"high"

(* serving face: a read request is a lookup; a write request alternates
   between insert and delete by key parity, so the list's size stays
   roughly stable under sustained load. The lookup/update ratio comes
   from the driver's mix, so both list flavours share one service. *)
let service_of bench =
  {
    Workload.sv_bench = bench;
    Workload.sv_key_range = key_range;
    Workload.sv_setup =
      (fun ~key_range ~abs env ~threads:_ ->
        let head = setup_list ~key_range env in
        let ab_l = abs "list_lookup" in
        let ab_i = abs "list_insert" in
        let ab_d = abs "list_delete" in
        fun ~write ~key ->
          let ab =
            if not write then ab_l else if key land 1 = 0 then ab_i else ab_d
          in
          { Workload.rq_ab = ab; Workload.rq_args = [| head; key |] });
  }

let service_lo = service_of list_lo
let service_hi = service_of list_hi

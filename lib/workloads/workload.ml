open Stx_tir
open Stx_sim

type t = {
  name : string;
  source : string;
  description : string;
  contention : string;
  contention_source : string;
  build : unit -> Ir.program;
  args : scale:float -> Machine.setup_env -> threads:int -> int array array;
}

let scaled scale n = max 1 (int_of_float (Float.round (scale *. float_of_int n)))

let split ~total ~threads = max 1 (total / max 1 threads)

let spec ?(instrument = true) ?(anchor_mode = Stx_compiler.Anchors.Dsa_guided)
    ?(scale = 1.0) ?(pc_bits = 12) t =
  let prog = t.build () in
  Verify.program prog;
  let compiled =
    Stx_compiler.Pipeline.compile ~pc_bits ~mode:anchor_mode ~instrument prog
  in
  {
    Machine.compiled;
    Machine.thread_main = "main";
    Machine.thread_args = (fun env ~threads -> t.args ~scale env ~threads);
  }

(* ------------------------------------------------------------------ *)
(* request-driven serving                                              *)

type request = { rq_ab : int; rq_args : int array }

type service = {
  sv_bench : t;
  sv_key_range : int;
  sv_setup :
    key_range:int ->
    abs:(string -> int) ->
    Machine.setup_env ->
    threads:int ->
    (write:bool -> key:int -> request);
}

let service_entry = "stx_serve_idle"

let service_spec ?(instrument = true)
    ?(anchor_mode = Stx_compiler.Anchors.Dsa_guided) ?(pc_bits = 12) ?key_range
    sv =
  let key_range = Option.value key_range ~default:sv.sv_key_range in
  if key_range < 1 then
    invalid_arg "Workload.service_spec: key_range must be positive";
  let prog = sv.sv_bench.build () in
  (* the serving entry point: each core's own program is a no-op — all
     real work arrives through the machine's request injector *)
  let b = Builder.create prog service_entry ~params:[] in
  Builder.ret b None;
  ignore (Builder.finish b);
  Verify.program prog;
  let compiled =
    Stx_compiler.Pipeline.compile ~pc_bits ~mode:anchor_mode ~instrument prog
  in
  let abs name =
    match
      Array.find_opt (fun a -> a.Ir.ab_name = name) prog.Ir.atomics
    with
    | Some a -> a.Ir.ab_id
    | None ->
      invalid_arg ("Workload.service_spec: unknown atomic block " ^ name)
  in
  let synth = ref None in
  let spec =
    {
      Machine.compiled;
      Machine.thread_main = service_entry;
      Machine.thread_args =
        (fun env ~threads ->
          synth := Some (sv.sv_setup ~key_range ~abs env ~threads);
          Array.make threads [||]);
    }
  in
  (spec, synth)

open Stx_tir
open Stx_sim

type t = {
  name : string;
  source : string;
  description : string;
  contention : string;
  contention_source : string;
  build : unit -> Ir.program;
  args : scale:float -> Machine.setup_env -> threads:int -> int array array;
}

let scaled scale n = max 1 (int_of_float (Float.round (scale *. float_of_int n)))

let split ~total ~threads = max 1 (total / max 1 threads)

let spec ?(instrument = true) ?(anchor_mode = Stx_compiler.Anchors.Dsa_guided)
    ?(scale = 1.0) ?(pc_bits = 12) t =
  let prog = t.build () in
  Verify.program prog;
  let compiled =
    Stx_compiler.Pipeline.compile ~pc_bits ~mode:anchor_mode ~instrument prog
  in
  {
    Machine.compiled;
    Machine.thread_main = "main";
    Machine.thread_args = (fun env ~threads -> t.args ~scale env ~threads);
  }

let all =
  [
    W_genome.bench;
    W_intruder.bench;
    W_kmeans.bench;
    W_labyrinth.bench;
    W_ssca2.bench;
    W_vacation.bench;
    W_list.list_lo;
    W_list.list_hi;
    W_tsp.bench;
    W_memcached.bench;
  ]

let table1_set =
  [
    W_list.list_hi;
    W_tsp.bench;
    W_memcached.bench;
    W_intruder.bench;
    W_kmeans.bench;
    W_vacation.bench;
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all

let services =
  [
    W_memcached.service;
    W_vacation.service;
    W_list.service_lo;
    W_list.service_hi;
  ]

let find_service name =
  List.find_opt (fun s -> s.Workload.sv_bench.Workload.name = name) services

let service_names =
  List.map (fun s -> s.Workload.sv_bench.Workload.name) services

(** The IntSet sorted-list microbenchmarks (RSTM test suite): one shared
    64-node list, operations as single transactions. *)

val list_lo : Workload.t
(** 90 % lookup / 5 % insert / 5 % delete — medium contention. *)

val list_hi : Workload.t
(** 60 % lookup / 20 % insert / 20 % delete — high contention; the paper's
    worst-scaling benchmark. *)

val service_lo : Workload.service
val service_hi : Workload.service
(** Open-loop faces of {!list_lo} / {!list_hi}: read requests look up,
    write requests insert or delete by key parity. The read/write ratio
    comes from the driver's mix, so the two differ only in provenance. *)

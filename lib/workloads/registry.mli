(** All benchmarks of the evaluation, in the paper's Table 4 order. *)

val all : Workload.t list

val table1_set : Workload.t list
(** The six benchmarks of Table 1 (contention characterization). *)

val find : string -> Workload.t option
val names : string list

val services : Workload.service list
(** The workloads with an open-loop serving face (see {!Stx_serve}). *)

val find_service : string -> Workload.service option
val service_names : string list

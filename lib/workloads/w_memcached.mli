(** The memcached benchmark. See the implementation header and DESIGN.md for the
    contention signature and the fidelity notes of this port. *)

type params = {
  nbuckets : int;  (** hash-table buckets *)
  key_range : int;  (** keys are drawn from [1 .. key_range] *)
  total_ops : int;  (** closed-loop op budget, split across threads *)
  pct_get : int;  (** closed-loop get percentage (the rest are sets) *)
}

val default_params : params
(** The paper's configuration: 64 buckets, 512 keys, 2048 ops, 70% gets. *)

val bench_with : params -> Workload.t
(** The closed-loop benchmark under explicit parameters. *)

val bench : Workload.t
(** [bench_with default_params]. *)

val service_with : params -> Workload.service
(** The open-loop service under explicit parameters: get/set requests
    against the same hash table and statistics block as {!bench_with}. *)

val service : Workload.service
(** [service_with default_params]. *)

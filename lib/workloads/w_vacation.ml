open Stx_tir
open Stx_tstruct

(* vacation: a travel-reservation database over red-black trees (cars,
   flights, rooms), as in the paper. Most transactions are multi-table
   queries; a minority reserve (decrement availability, whose rebalancing
   writes land near the root). Contention is low and the touched nodes
   wander over the trees, so the baseline already scales — the interesting
   result is that staggering must not hurt while still trimming the
   residual aborts (Result 1 / Figure 8). *)

let relations = 128
let total_txns = 2048
let queries_per_txn = 4
let pct_reserve = 30

let build () =
  let p = Ir.create_program () in
  Trbt.register p;
  (* one customer session: several lookups across tables, maybe a
     reservation (an in-place availability update) *)
  let b =
    Builder.create p "session" ~params:[ "cars"; "flights"; "rooms"; "key"; "reserve" ]
  in
  List.iter
    (fun tbl ->
      ignore (Builder.call_v b Trbt.lookup_fn [ Builder.param b tbl; Builder.param b "key" ]))
    [ "cars"; "flights"; "rooms"; "cars" ];
  Builder.when_ b (Builder.param b "reserve") (fun b ->
      ignore
        (Builder.call_v b Trbt.update_fn
           [ Builder.param b "flights"; Builder.param b "key"; Ir.Imm (-1) ]);
      ignore
        (Builder.call_v b Trbt.update_fn
           [ Builder.param b "rooms"; Builder.param b "key"; Ir.Imm (-1) ]));
  Builder.ret b None;
  ignore (Builder.finish b);
  let ab = Ir.add_atomic p ~name:"customer_session" ~func:"session" in
  let b = Builder.create p "main" ~params:[ "cars"; "flights"; "rooms"; "txns" ] in
  Builder.for_ b ~from:(Ir.Imm 0) ~below:(Builder.param b "txns") (fun b _ ->
      let key = Builder.bin b Ir.Add (Builder.rng b (Ir.Imm relations)) (Ir.Imm 1) in
      let reserve =
        Builder.bin b Ir.Lt (Builder.rng b (Ir.Imm 100)) (Ir.Imm pct_reserve)
      in
      Builder.atomic_call b ab
        [
          Builder.param b "cars";
          Builder.param b "flights";
          Builder.param b "rooms";
          key;
          reserve;
        ]);
  Builder.ret b None;
  ignore (Builder.finish b);
  p

let setup_tables ~key_range env =
  let mem = env.Stx_sim.Machine.memory and alloc = env.Stx_sim.Machine.alloc in
  let pairs = List.init key_range (fun i -> (i + 1, 100)) in
  let cars = Trbt.setup mem alloc ~pairs in
  let flights = Trbt.setup mem alloc ~pairs in
  let rooms = Trbt.setup mem alloc ~pairs in
  (cars, flights, rooms)

let args ~scale env ~threads =
  let cars, flights, rooms = setup_tables ~key_range:relations env in
  let per = Workload.split ~total:(Workload.scaled scale total_txns) ~threads in
  Array.make threads [| cars; flights; rooms; per |]

let bench =
  {
    Workload.name = "vacation";
    Workload.source = "STAMP";
    Workload.description =
      Printf.sprintf "travel reservations over %d-entry search trees (%d%% reserving)"
        relations pct_reserve;
    Workload.contention = "med";
    Workload.contention_source = "red-black trees";
    Workload.build = build;
    Workload.args;
  }

(* serving face: one customer session per request; a write request is a
   reserving session *)
let service =
  {
    Workload.sv_bench = bench;
    Workload.sv_key_range = relations;
    Workload.sv_setup =
      (fun ~key_range ~abs env ~threads:_ ->
        let cars, flights, rooms = setup_tables ~key_range env in
        let ab = abs "customer_session" in
        fun ~write ~key ->
          {
            Workload.rq_ab = ab;
            Workload.rq_args =
              [| cars; flights; rooms; key; (if write then 1 else 0) |];
          });
  }

let _ = queries_per_txn

(** The vacation benchmark. See the implementation header and DESIGN.md for the
    contention signature and the fidelity notes of this port. *)

val bench : Workload.t

val service : Workload.service
(** Open-loop face: one customer session per request; write requests
    reserve. *)

open Stx_machine
open Stx_htm

(* A TL2-style software transaction tier.

   Shared state lives in the simulated memory so the software tier is
   subject to the same coherence story as everything else: a striped
   table of per-cache-line version words (one word per stripe, encoded
   [2*version + lock_bit]) and a global version clock held host-side
   (the clock itself is only ever advanced inside a commit, which the
   discrete-event machine executes atomically, so it needs no simulated
   word). Reads validate against the clock value snapshotted at begin;
   writes buffer; commit locks the write stripes, re-validates the read
   set, publishes through {!Htm.stm_publish} (dooming speculative
   hardware holders), and stamps fresh versions.

   Like the hardware tier, the per-core sets are preallocated flat
   tables ([Linetbl]) reused across attempts, and the commit-time stripe
   walk sorts into a per-instance scratch array — the steady state
   allocates nothing. *)

type abort_kind = Validation | Hw_owned | Locksub | Explicit

type status = Idle | Active | Doomed of abort_kind

type core_state = {
  mutable st : status;
  mutable rv : int; (* clock snapshot at begin; reads validate against it *)
  read_set : Linetbl.t; (* line -> version word at first read *)
  write_lines : Linetbl.t; (* line -> 0 *)
  wbuf : Linetbl.t; (* addr -> buffered value *)
  mutable last_rset : int; (* set sizes when the buffered state was *)
  mutable last_wset : int; (* last discarded (commit or doom) *)
}

type t = {
  htm : Htm.t;
  memory : Memory.t;
  words_per_line : int;
  nslots : int;
  base : int; (* first version word *)
  mutable clock : int;
  cores : core_state array;
  mutable scratch : int array; (* sorted line/addr walks at commit *)
}

let create ?(nslots = 256) htm memory alloc =
  let cfg = Htm.config htm in
  let base = Alloc.alloc_shared alloc nslots in
  let mk _ =
    {
      st = Idle;
      rv = 0;
      read_set = Linetbl.create ~capacity_hint:64 ();
      write_lines = Linetbl.create ~capacity_hint:64 ();
      wbuf = Linetbl.create ~capacity_hint:64 ();
      last_rset = 0;
      last_wset = 0;
    }
  in
  {
    htm;
    memory;
    words_per_line = cfg.Config.words_per_line;
    nslots;
    base;
    clock = 0;
    cores = Array.init cfg.Config.cores mk;
    scratch = Array.make 64 0;
  }

let nslots t = t.nslots
let clock t = t.clock
let status t ~core = t.cores.(core).st

(* Fibonacci hashing of the cache-line index, as the advisory-lock table
   does; distinct lines may alias to one stripe, which can only produce
   spurious validation aborts, never a missed conflict. Exposed as a pure
   function so static analyses (the STX109 stripe-aliasing lint) and the
   simulator can never disagree on the mapping. *)
let stripe_of_line ~nslots ~line = line * 0x9E3779B1 land max_int mod nslots

let slot_of t ~line = stripe_of_line ~nslots:t.nslots ~line

let version_addr t ~line = t.base + slot_of t ~line

let line_of t addr = Memory.line_of ~words_per_line:t.words_per_line addr

let discard c =
  c.last_rset <- Linetbl.length c.read_set;
  c.last_wset <- Linetbl.length c.write_lines;
  Linetbl.reset c.read_set;
  Linetbl.reset c.write_lines;
  Linetbl.reset c.wbuf

let doom t ~core kind =
  let c = t.cores.(core) in
  discard c;
  c.st <- Doomed kind

let tx_begin t ~core =
  let c = t.cores.(core) in
  (match c.st with
  | Idle -> ()
  | Active | Doomed _ -> invalid_arg "Stm.tx_begin: transaction already in flight");
  c.st <- Active;
  c.rv <- t.clock;
  Linetbl.reset c.read_set;
  Linetbl.reset c.write_lines;
  Linetbl.reset c.wbuf

let tx_load t ~core ~addr =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_load: core has no active transaction"
  | Doomed _ ->
    (* dead transaction: hand back committed memory, the value is never
       observable *)
    Memory.load t.memory addr
  | Active ->
    let wi = Linetbl.idx c.wbuf addr in
    if wi >= 0 then Linetbl.value_at c.wbuf wi
    else begin
      let line = line_of t addr in
      let va = version_addr t ~line in
      let w = Memory.load t.memory va in
      let ri = Linetbl.idx c.read_set line in
      if ri >= 0 then begin
        if w <> Linetbl.value_at c.read_set ri then doom t ~core Validation;
        Memory.load t.memory addr
      end
      else if w land 1 = 1 || w asr 1 > c.rv then begin
        doom t ~core Validation;
        Memory.load t.memory addr
      end
      else begin
        Linetbl.add c.read_set line w;
        Memory.load t.memory addr
      end
    end

let tx_store t ~core ~addr ~value =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_store: core has no active transaction"
  | Doomed _ -> ()
  | Active ->
    Linetbl.add c.write_lines (line_of t addr) 0;
    Linetbl.add c.wbuf addr value

(* copy a table's keys into the scratch prefix and insertion-sort them;
   set sizes are tens of entries, where insertion sort beats anything
   allocating *)
let sorted_keys_into t tbl =
  let n = Linetbl.length tbl in
  if Array.length t.scratch < n then t.scratch <- Array.make (2 * n) 0;
  let a = t.scratch in
  for i = 0 to n - 1 do
    a.(i) <- Linetbl.key_of_order tbl i
  done;
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done;
  n

let iter_read_lines t ~core f =
  let n = sorted_keys_into t t.cores.(core).read_set in
  for i = 0 to n - 1 do
    f t.scratch.(i)
  done

let iter_write_lines t ~core f =
  let n = sorted_keys_into t t.cores.(core).write_lines in
  for i = 0 to n - 1 do
    f t.scratch.(i)
  done

let iter_write_addrs t ~core f =
  let n = sorted_keys_into t t.cores.(core).wbuf in
  for i = 0 to n - 1 do
    f t.scratch.(i)
  done

let read_set_lines t ~core =
  let acc = ref [] in
  iter_read_lines t ~core (fun l -> acc := l :: !acc);
  List.rev !acc

let write_set_lines t ~core =
  let acc = ref [] in
  iter_write_lines t ~core (fun l -> acc := l :: !acc);
  List.rev !acc

let write_addrs t ~core =
  let acc = ref [] in
  iter_write_addrs t ~core (fun a -> acc := a :: !acc);
  List.rev !acc

let tx_commit t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_commit: core has no active transaction"
  | Doomed _ -> false
  | Active ->
    if Htm.global_lock_held t.htm then begin
      doom t ~core Locksub;
      false
    end
    else begin
      (* the hardware tier keeps priority on lines it is speculatively
         writing: defer rather than publish over a buffered update *)
      let hw_owned =
        let n = Linetbl.length c.write_lines in
        let rec go i =
          i < n
          && (Htm.writers_present t.htm
                ~line:(Linetbl.key_of_order c.write_lines i)
              || go (i + 1))
        in
        go 0
      in
      if hw_owned then begin
        doom t ~core Hw_owned;
        false
      end
      else begin
        (* write lines can alias to one stripe; sort the stripe indexes
           into scratch and dedup in place to lock each one exactly once *)
        let n = Linetbl.length c.write_lines in
        if Array.length t.scratch < n then t.scratch <- Array.make (2 * n) 0;
        for i = 0 to n - 1 do
          t.scratch.(i) <- slot_of t ~line:(Linetbl.key_of_order c.write_lines i)
        done;
        let a = t.scratch in
        for i = 1 to n - 1 do
          let x = a.(i) in
          let j = ref (i - 1) in
          while !j >= 0 && a.(!j) > x do
            a.(!j + 1) <- a.(!j);
            decr j
          done;
          a.(!j + 1) <- x
        done;
        let nslots =
          let k = ref 0 in
          for i = 0 to n - 1 do
            if !k = 0 || a.(!k - 1) <> a.(i) then begin
              a.(!k) <- a.(i);
              incr k
            end
          done;
          !k
        in
        let own_slot line =
          let s = slot_of t ~line in
          let rec go i = i < nslots && (a.(i) = s || go (i + 1)) in
          go 0
        in
        for i = 0 to nslots - 1 do
          let va = t.base + a.(i) in
          Memory.store t.memory va (Memory.load t.memory va lor 1)
        done;
        let valid =
          let rs = c.read_set in
          let rec go i =
            i >= Linetbl.length rs
            ||
            let line = Linetbl.key_of_order rs i in
            let recorded = Linetbl.value_of_order rs i in
            let w = Memory.load t.memory (version_addr t ~line) in
            let w = if own_slot line then w land lnot 1 else w in
            w = recorded && go (i + 1)
          in
          go 0
        in
        if not valid then begin
          for i = 0 to nslots - 1 do
            let va = t.base + a.(i) in
            Memory.store t.memory va (Memory.load t.memory va land lnot 1)
          done;
          doom t ~core Validation;
          false
        end
        else begin
          t.clock <- t.clock + 1;
          let wv = t.clock in
          for i = 0 to Linetbl.length c.wbuf - 1 do
            Htm.stm_publish t.htm ~core
              ~addr:(Linetbl.key_of_order c.wbuf i)
              ~value:(Linetbl.value_of_order c.wbuf i)
          done;
          for i = 0 to nslots - 1 do
            Memory.store t.memory (t.base + a.(i)) (2 * wv)
          done;
          discard c;
          c.st <- Idle;
          true
        end
      end
    end

let tx_self_abort t ~core =
  match t.cores.(core).st with
  | Active -> doom t ~core Explicit
  | Idle | Doomed _ -> invalid_arg "Stm.tx_self_abort: transaction not active"

let tx_cleanup t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Doomed kind ->
    c.st <- Idle;
    kind
  | Idle | Active -> invalid_arg "Stm.tx_cleanup: transaction not doomed"

let last_set_sizes t ~core =
  let c = t.cores.(core) in
  (c.last_rset, c.last_wset)

(* a hardware publication (lazy commit or nontransactional store) landed
   on [line]: advance the clock and stamp the stripe so software readers
   serialized before the publication fail validation *)
let note_published t ~line =
  t.clock <- t.clock + 1;
  Memory.store t.memory (version_addr t ~line) (2 * t.clock)

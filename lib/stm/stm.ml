open Stx_machine
open Stx_htm

(* A TL2-style software transaction tier.

   Shared state lives in the simulated memory so the software tier is
   subject to the same coherence story as everything else: a striped
   table of per-cache-line version words (one word per stripe, encoded
   [2*version + lock_bit]) and a global version clock held host-side
   (the clock itself is only ever advanced inside a commit, which the
   discrete-event machine executes atomically, so it needs no simulated
   word). Reads validate against the clock value snapshotted at begin;
   writes buffer; commit locks the write stripes, re-validates the read
   set, publishes through {!Htm.stm_publish} (dooming speculative
   hardware holders), and stamps fresh versions. *)

type abort_kind = Validation | Hw_owned | Locksub | Explicit

type status = Idle | Active | Doomed of abort_kind

type core_state = {
  mutable st : status;
  mutable rv : int; (* clock snapshot at begin; reads validate against it *)
  read_set : (int, int) Hashtbl.t; (* line -> version word at first read *)
  write_lines : (int, unit) Hashtbl.t;
  wbuf : (int, int) Hashtbl.t; (* addr -> buffered value *)
  mutable last_rset : int; (* set sizes when the buffered state was *)
  mutable last_wset : int; (* last discarded (commit or doom) *)
}

type t = {
  htm : Htm.t;
  memory : Memory.t;
  words_per_line : int;
  nslots : int;
  base : int; (* first version word *)
  mutable clock : int;
  cores : core_state array;
}

let create ?(nslots = 256) htm memory alloc =
  let cfg = Htm.config htm in
  let base = Alloc.alloc_shared alloc nslots in
  let mk _ =
    {
      st = Idle;
      rv = 0;
      read_set = Hashtbl.create 64;
      write_lines = Hashtbl.create 64;
      wbuf = Hashtbl.create 64;
      last_rset = 0;
      last_wset = 0;
    }
  in
  {
    htm;
    memory;
    words_per_line = cfg.Config.words_per_line;
    nslots;
    base;
    clock = 0;
    cores = Array.init cfg.Config.cores mk;
  }

let nslots t = t.nslots
let clock t = t.clock
let status t ~core = t.cores.(core).st

(* Fibonacci hashing of the cache-line index, as the advisory-lock table
   does; distinct lines may alias to one stripe, which can only produce
   spurious validation aborts, never a missed conflict. Exposed as a pure
   function so static analyses (the STX109 stripe-aliasing lint) and the
   simulator can never disagree on the mapping. *)
let stripe_of_line ~nslots ~line = line * 0x9E3779B1 land max_int mod nslots

let slot_of t ~line = stripe_of_line ~nslots:t.nslots ~line

let version_addr t ~line = t.base + slot_of t ~line

let line_of t addr = Memory.line_of ~words_per_line:t.words_per_line addr

let discard c =
  c.last_rset <- Hashtbl.length c.read_set;
  c.last_wset <- Hashtbl.length c.write_lines;
  Hashtbl.reset c.read_set;
  Hashtbl.reset c.write_lines;
  Hashtbl.reset c.wbuf

let doom t ~core kind =
  let c = t.cores.(core) in
  discard c;
  c.st <- Doomed kind

let tx_begin t ~core =
  let c = t.cores.(core) in
  (match c.st with
  | Idle -> ()
  | Active | Doomed _ -> invalid_arg "Stm.tx_begin: transaction already in flight");
  c.st <- Active;
  c.rv <- t.clock;
  Hashtbl.reset c.read_set;
  Hashtbl.reset c.write_lines;
  Hashtbl.reset c.wbuf

let tx_load t ~core ~addr =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_load: core has no active transaction"
  | Doomed _ ->
    (* dead transaction: hand back committed memory, the value is never
       observable *)
    Memory.load t.memory addr
  | Active -> (
    match Hashtbl.find_opt c.wbuf addr with
    | Some v -> v
    | None -> (
      let line = line_of t addr in
      let va = version_addr t ~line in
      let w = Memory.load t.memory va in
      match Hashtbl.find_opt c.read_set line with
      | Some recorded ->
        if w <> recorded then begin
          doom t ~core Validation;
          Memory.load t.memory addr
        end
        else Memory.load t.memory addr
      | None ->
        if w land 1 = 1 || w asr 1 > c.rv then begin
          doom t ~core Validation;
          Memory.load t.memory addr
        end
        else begin
          Hashtbl.add c.read_set line w;
          Memory.load t.memory addr
        end))

let tx_store t ~core ~addr ~value =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_store: core has no active transaction"
  | Doomed _ -> ()
  | Active ->
    Hashtbl.replace c.write_lines (line_of t addr) ();
    Hashtbl.replace c.wbuf addr value

let read_set_lines t ~core =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.cores.(core).read_set []
  |> List.sort compare

let write_set_lines t ~core =
  Hashtbl.fold (fun l () acc -> l :: acc) t.cores.(core).write_lines []
  |> List.sort compare

let write_addrs t ~core =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.cores.(core).wbuf []
  |> List.sort compare

let tx_commit t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Idle -> invalid_arg "Stm.tx_commit: core has no active transaction"
  | Doomed _ -> false
  | Active ->
    if Htm.global_lock_held t.htm then begin
      doom t ~core Locksub;
      false
    end
    else if
      (* the hardware tier keeps priority on lines it is speculatively
         writing: defer rather than publish over a buffered update *)
      Hashtbl.fold
        (fun line () acc -> acc || Htm.writers_mask t.htm ~line <> 0)
        c.write_lines false
    then begin
      doom t ~core Hw_owned;
      false
    end
    else begin
      (* write lines can alias to one stripe; lock each stripe once *)
      let slots =
        Hashtbl.fold (fun line () acc -> slot_of t ~line :: acc) c.write_lines []
        |> List.sort_uniq compare
      in
      List.iter
        (fun s ->
          let a = t.base + s in
          Memory.store t.memory a (Memory.load t.memory a lor 1))
        slots;
      let own_slot line = List.mem (slot_of t ~line) slots in
      let valid =
        Hashtbl.fold
          (fun line recorded acc ->
            acc
            &&
            let w = Memory.load t.memory (version_addr t ~line) in
            let w = if own_slot line then w land lnot 1 else w in
            w = recorded)
          c.read_set true
      in
      if not valid then begin
        List.iter
          (fun s ->
            let a = t.base + s in
            Memory.store t.memory a (Memory.load t.memory a land lnot 1))
          slots;
        doom t ~core Validation;
        false
      end
      else begin
        t.clock <- t.clock + 1;
        let wv = t.clock in
        Hashtbl.iter
          (fun addr value -> Htm.stm_publish t.htm ~core ~addr ~value)
          c.wbuf;
        List.iter
          (fun s -> Memory.store t.memory (t.base + s) (2 * wv))
          slots;
        discard c;
        c.st <- Idle;
        true
      end
    end

let tx_self_abort t ~core =
  match t.cores.(core).st with
  | Active -> doom t ~core Explicit
  | Idle | Doomed _ -> invalid_arg "Stm.tx_self_abort: transaction not active"

let tx_cleanup t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Doomed kind ->
    c.st <- Idle;
    kind
  | Idle | Active -> invalid_arg "Stm.tx_cleanup: transaction not doomed"

let last_set_sizes t ~core =
  let c = t.cores.(core) in
  (c.last_rset, c.last_wset)

(* a hardware publication (lazy commit or nontransactional store) landed
   on [line]: advance the clock and stamp the stripe so software readers
   serialized before the publication fail validation *)
let note_published t ~line =
  t.clock <- t.clock + 1;
  Memory.store t.memory (version_addr t ~line) (2 * t.clock)

open Stx_machine
open Stx_htm

(** A TL2-style software transaction tier for the hybrid fallback.

    When a hardware transaction exhausts its retry budget (or cannot fit —
    a [Capacity] abort), the [htm-stm-lock] fallback routes it here before
    the irrevocable global lock: reads validate against a global version
    clock, writes buffer, and commit acquires per-stripe locks,
    re-validates, and publishes. Shared metadata — a striped table of
    per-cache-line version words, each encoding [2*version + lock_bit] —
    lives in the simulated memory, so version probes cost real (modelled)
    memory latency.

    Interop with the hardware tier is two-directional and asymmetric:

    - a committing software transaction publishes through
      {!Htm.stm_publish}, dooming every speculative hardware reader or
      writer of its lines ([Stm_conflict] — committed values always win);
      but it {e defers} to lines a hardware transaction is speculatively
      {e writing} ([Hw_owned] self-abort) so a buffered hardware update is
      never published over;
    - every hardware publication calls back into {!note_published}
      (via [Htm.set_on_publish]), advancing the clock and stamping the
      stripe so concurrent software readers stay opaque.

    The discrete-event machine executes an entire commit atomically inside
    one simulated step, so stripe locks are never {e observed} held; they
    exist so the protocol (and its cost accounting) matches what real
    hardware would execute. *)

type abort_kind =
  | Validation
      (** a read-set stripe changed since it was first read (or was
          already newer than the begin snapshot) — includes stripe
          aliasing false positives *)
  | Hw_owned
      (** a write line is speculatively written by a hardware
          transaction; the software tier defers *)
  | Locksub  (** the irrevocable global lock was held at commit time *)
  | Explicit  (** the program executed an explicit abort *)

type status = Idle | Active | Doomed of abort_kind

type t

val create : ?nslots:int -> Htm.t -> Memory.t -> Alloc.t -> t
(** Allocates [nslots] (default 256) version words out of [Alloc]'s
    shared region. Cache lines hash onto stripes with the same Fibonacci
    scheme as the advisory-lock table; aliasing can only cause spurious
    validation aborts, never a missed conflict. *)

val nslots : t -> int

val stripe_of_line : nslots:int -> line:int -> int
(** The pure stripe mapping: the index (in [0, nslots)) of the versioned
    write-lock covering cache line [line] — Fibonacci hashing of the line
    index, identical to the advisory-lock table's scheme. {!version_addr}
    and every commit-time lock/validation probe use exactly this
    function; it is exposed so external consumers (the STX109 lint, the
    simulator's cost accounting) cannot drift from the tier itself.
    Distinct lines may alias onto one stripe: aliasing can only cause
    spurious validation aborts, never a missed conflict. *)

val clock : t -> int
(** Current global version clock (monotonic; advanced by every software
    commit and every hardware publication). *)

val status : t -> core:int -> status

val version_addr : t -> line:int -> int
(** Simulated address of the version word covering [line] — the machine
    charges memory latency against it for validation probes. *)

val tx_begin : t -> core:int -> unit
(** Start a software transaction: snapshot the clock, clear the sets.
    The core must be [Idle]. *)

val tx_load : t -> core:int -> addr:int -> int
(** Software transactional load: reads through the write buffer; on the
    first touch of a line, probes its version word and self-dooms
    ([Validation]) if the stripe is locked or newer than the begin
    snapshot; on a repeat touch, re-checks the recorded word. A doomed
    transaction gets the committed memory word back (dead value). *)

val tx_store : t -> core:int -> addr:int -> value:int -> unit
(** Buffer a write; nothing is published or locked until commit. *)

val tx_commit : t -> core:int -> bool
(** The TL2 commit: refuse if the global lock is held ([Locksub]) or any
    write line is hardware-owned ([Hw_owned]); otherwise lock the write
    stripes, re-validate the read set (unlocking and self-dooming with
    [Validation] on failure), advance the clock, publish each buffered
    word through {!Htm.stm_publish}, and stamp the stripes with the new
    version. Returns [false] — leaving the core [Doomed] — on any
    failure; [true] after publication. *)

val tx_self_abort : t -> core:int -> unit
(** Explicit abort by the program (the core becomes [Doomed]). *)

val tx_cleanup : t -> core:int -> abort_kind
(** Acknowledge a doomed transaction: return the reason and go [Idle]. *)

val read_set_lines : t -> core:int -> int list
(** Lines currently in the read set, sorted — the machine walks these to
    charge validation latency {e before} committing. *)

val write_set_lines : t -> core:int -> int list

val write_addrs : t -> core:int -> int list
(** Buffered store addresses, sorted — for publication cost accounting. *)

val iter_read_lines : t -> core:int -> (int -> unit) -> unit
(** Allocation-free equivalent of {!read_set_lines}: applies the
    callback to each read-set line in ascending order (sorted into an
    internal scratch array, invalidated by the next iter/commit). *)

val iter_write_lines : t -> core:int -> (int -> unit) -> unit
val iter_write_addrs : t -> core:int -> (int -> unit) -> unit

val last_set_sizes : t -> core:int -> int * int
(** Read/write-set sizes captured the last time the buffered state was
    discarded (commit or doom), mirroring [Htm.last_set_sizes]. *)

val note_published : t -> line:int -> unit
(** A hardware publication landed on [line]: advance the clock and stamp
    the covering stripe. Wired to [Htm.set_on_publish] by the runtime. *)

(** Static well-formedness checks over a whole TIR program.

    Run before analysis or execution; errors here are programming mistakes
    in workload construction, so they raise immediately. Checks: register
    indices in range, branch targets exist, struct/field references valid,
    callees exist with matching arity, atomic-block ids valid, no nested
    atomic calls (no function reachable from an atomic block may contain
    [Atomic_call]), unique block labels, definite assignment (a register a
    reachable instruction reads must be written on every path from the
    entry; parameters count as written), and [Alp] placement ([Alp]
    instructions only in atomic-reachable functions). *)

exception Invalid of string

val program : Ir.program -> unit
(** Raises [Invalid] with a description of the first problem found. *)

val atomic_reachable : Ir.program -> (string, unit) Hashtbl.t
(** Names of functions reachable (by direct call) from any atomic block's
    root function, including the roots. *)

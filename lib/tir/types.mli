(** Struct types of the transactional IR.

    Every field occupies one word. A field is either a scalar or a pointer
    to a named struct; that per-field pointer typing is what makes the Data
    Structure Analysis field-sensitive, exactly as LLVM's
    getelementptr-derived type information does for Lattner's DSA. *)

type fkind =
  | Scalar
  | Ptr of string  (** name of the pointed-to struct *)

type field = { fname : string; fkind : fkind }

type strct = { sname : string; sfields : field array }

val make : string -> (string * fkind) list -> strct

val size : strct -> int
(** Size in words — one word per field. *)

val field_index : strct -> string -> int
(** Raises [Not_found] if the struct has no such field. *)

val field : strct -> int -> field
(** Raises [Invalid_argument] if the index is out of bounds. *)

val line_of_field : words_per_line:int -> int -> int
(** The intra-object cache-line index a field at the given word offset
    lands on, for line-aligned objects (the allocator's default
    placement). Raises [Invalid_argument] when [words_per_line <= 0]. *)

val lines_spanned : words_per_line:int -> strct -> int
(** Cache lines a line-aligned instance of the struct occupies (at least
    1). Raises [Invalid_argument] when [words_per_line <= 0]. *)

val word : strct
(** The built-in one-scalar-field struct used for raw word arrays. *)

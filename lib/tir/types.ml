type fkind = Scalar | Ptr of string

type field = { fname : string; fkind : fkind }

type strct = { sname : string; sfields : field array }

let make sname fields =
  {
    sname;
    sfields = Array.of_list (List.map (fun (fname, fkind) -> { fname; fkind }) fields);
  }

let size s = Array.length s.sfields

let field_index s name =
  let n = Array.length s.sfields in
  let rec find i =
    if i >= n then raise Not_found
    else if s.sfields.(i).fname = name then i
    else find (i + 1)
  in
  find 0

let field s i =
  if i < 0 || i >= Array.length s.sfields then
    invalid_arg (Printf.sprintf "Types.field: %s has no field %d" s.sname i);
  s.sfields.(i)

(* Data-layout accessors: every field is one word, objects allocated by
   the runtime start on a cache-line boundary (Alloc's default), so a
   field's intra-object line and a struct's line span are pure functions
   of the word offset. *)

let line_of_field ~words_per_line off =
  if words_per_line <= 0 then invalid_arg "Types.line_of_field";
  off / words_per_line

let lines_spanned ~words_per_line s =
  if words_per_line <= 0 then invalid_arg "Types.lines_spanned";
  Stdlib.max 1 ((size s + words_per_line - 1) / words_per_line)

let word = make "word" [ ("value", Scalar) ]

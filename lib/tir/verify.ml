exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_operand f loc = function
  | Ir.Imm _ -> ()
  | Ir.Reg r ->
    if r < 0 || r >= f.Ir.nregs then
      fail "%s: register %d out of range in %s" loc r f.Ir.fname

let check_reg f loc r =
  if r < 0 || r >= f.Ir.nregs then
    fail "%s: register %d out of range in %s" loc r f.Ir.fname

let check_struct p loc sname fidx =
  match Hashtbl.find_opt p.Ir.structs sname with
  | None -> fail "%s: unknown struct %s" loc sname
  | Some s ->
    if fidx < 0 || fidx >= Types.size s then
      fail "%s: struct %s has no field %d" loc sname fidx

let check_label f loc l =
  match Ir.block_index f l with
  | (_ : int) -> ()
  | exception Not_found -> fail "%s: unknown label %s in %s" loc l f.Ir.fname

let check_inst p f loc (inst : Ir.inst) =
  let op = check_operand f loc and rg = check_reg f loc in
  match inst.Ir.op with
  | Ir.Mov (d, v) ->
    rg d;
    op v
  | Ir.Bin (_, d, a, b) ->
    rg d;
    op a;
    op b
  | Ir.Load (d, a) ->
    rg d;
    rg a
  | Ir.Store (a, v) ->
    rg a;
    op v
  | Ir.Gep (d, b, sname, fidx) ->
    rg d;
    rg b;
    check_struct p loc sname fidx
  | Ir.Idx (d, b, esize, i) ->
    rg d;
    rg b;
    op i;
    if esize <= 0 then fail "%s: nonpositive element size" loc
  | Ir.Alloc (d, sname) ->
    rg d;
    check_struct p loc sname 0
  | Ir.Alloc_arr (d, sname, n) ->
    rg d;
    check_struct p loc sname 0;
    op n
  | Ir.Call (d, callee, args) -> begin
    Option.iter rg d;
    List.iter op args;
    match Hashtbl.find_opt p.Ir.funcs callee with
    | None -> fail "%s: call to unknown function %s" loc callee
    | Some cf ->
      if List.length args <> Array.length cf.Ir.params then
        fail "%s: call to %s with %d args, expected %d" loc callee
          (List.length args) (Array.length cf.Ir.params)
  end
  | Ir.Atomic_call (d, ab, args) ->
    Option.iter rg d;
    List.iter op args;
    if ab < 0 || ab >= Array.length p.Ir.atomics then
      fail "%s: unknown atomic block %d" loc ab;
    let root = p.Ir.atomics.(ab).Ir.ab_func in
    let rf = Ir.find_func p root in
    if List.length args <> Array.length rf.Ir.params then
      fail "%s: atomic call to %s with %d args, expected %d" loc root
        (List.length args) (Array.length rf.Ir.params)
  | Ir.Intr (d, _, args) ->
    Option.iter rg d;
    List.iter op args
  | Ir.Alp a -> rg a.Ir.alp_addr

(* Definite assignment: every register a reachable instruction reads must
   be written on every path from the entry (parameters are written by the
   call itself). Forward must-dataflow over the CFG — in(b) is the
   intersection of out(pred) — then a straight-line walk of each block.
   Catches both plain use-before-def and the subtler join-point reads
   where only one branch arm assigned. *)
let reads_of = function
  | Ir.Mov (_, v) -> [ v ]
  | Ir.Bin (_, _, a, b) -> [ a; b ]
  | Ir.Load (_, a) -> [ Ir.Reg a ]
  | Ir.Store (a, v) -> [ Ir.Reg a; v ]
  | Ir.Gep (_, b, _, _) -> [ Ir.Reg b ]
  | Ir.Idx (_, b, _, i) -> [ Ir.Reg b; i ]
  | Ir.Alloc _ -> []
  | Ir.Alloc_arr (_, _, n) -> [ n ]
  | Ir.Call (_, _, args) | Ir.Atomic_call (_, _, args) | Ir.Intr (_, _, args) ->
    args
  | Ir.Alp a -> [ Ir.Reg a.Ir.alp_addr ]

let check_def_before_use (f : Ir.func) =
  let nblocks = Array.length f.Ir.blocks in
  let nregs = f.Ir.nregs in
  if nregs > 0 then begin
    (* reachable blocks, by DFS over CFG successors *)
    let reachable = Array.make nblocks false in
    let rec visit i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit (Dom.successors f i)
      end
    in
    visit 0;
    let preds = Array.make nblocks [] in
    Array.iteri
      (fun i _ ->
        if reachable.(i) then
          List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Dom.successors f i))
      f.Ir.blocks;
    let entry_in = Array.make nregs false in
    for r = 0 to Array.length f.Ir.params - 1 do
      if r < nregs then entry_in.(r) <- true
    done;
    let defined_in b =
      let s = Array.make nregs false in
      Array.iter
        (fun i ->
          match Ir.defined_reg i.Ir.op with Some d -> s.(d) <- true | None -> ())
        f.Ir.blocks.(b).Ir.insts;
      s
    in
    let gen = Array.init nblocks defined_in in
    (* out(b) starts at top so the intersection only shrinks *)
    let out = Array.init nblocks (fun _ -> Array.make nregs true) in
    let in_of b =
      (* the entry executes first with only its parameters assigned, no
         matter what any back edge would bring in *)
      if b = 0 then Array.copy entry_in
      else
        match preds.(b) with
        | [] -> Array.copy entry_in
        | p :: rest ->
          let s = Array.copy out.(p) in
          List.iter
            (fun q -> Array.iteri (fun r v -> s.(r) <- v && out.(q).(r)) s)
            rest;
          s
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 0 to nblocks - 1 do
        if reachable.(b) then begin
          let i = in_of b in
          let o = Array.mapi (fun r v -> v || gen.(b).(r)) i in
          if o <> out.(b) then begin
            out.(b) <- o;
            changed := true
          end
        end
      done
    done;
    Array.iteri
      (fun b blk ->
        if reachable.(b) then begin
          let loc = Printf.sprintf "%s.%s" f.Ir.fname blk.Ir.blabel in
          let live = in_of b in
          let use v =
            match v with
            | Ir.Imm _ -> ()
            | Ir.Reg r ->
              if r >= 0 && r < nregs && not live.(r) then
                fail "%s: register %d read before assignment on some path in %s"
                  loc r f.Ir.fname
          in
          Array.iter
            (fun inst ->
              List.iter use (reads_of inst.Ir.op);
              match Ir.defined_reg inst.Ir.op with
              | Some d -> if d >= 0 && d < nregs then live.(d) <- true
              | None -> ())
            blk.Ir.insts;
          match blk.Ir.term with
          | Ir.Jmp _ -> ()
          | Ir.Br (c, _, _) -> use c
          | Ir.Ret v -> Option.iter use v
        end)
      f.Ir.blocks
  end

let check_func p (f : Ir.func) =
  if Array.length f.Ir.blocks = 0 then fail "function %s has no blocks" f.Ir.fname;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      if Hashtbl.mem seen b.Ir.blabel then
        fail "duplicate label %s in %s" b.Ir.blabel f.Ir.fname;
      Hashtbl.add seen b.Ir.blabel ())
    f.Ir.blocks;
  Array.iteri
    (fun bi b ->
      let loc = Printf.sprintf "%s.%s" f.Ir.fname b.Ir.blabel in
      Array.iter (check_inst p f loc) b.Ir.insts;
      match b.Ir.term with
      | Ir.Jmp l -> check_label f loc l
      | Ir.Br (c, l1, l2) ->
        check_operand f loc c;
        check_label f loc l1;
        check_label f loc l2
      | Ir.Ret v ->
        Option.iter (check_operand f loc) v;
        ignore bi)
    f.Ir.blocks

let direct_callees (f : Ir.func) =
  let acc = ref [] in
  Ir.iter_insts f (fun _ _ inst ->
      match Ir.callee inst.Ir.op with Some c -> acc := c :: !acc | None -> ());
  !acc

let atomic_reachable p =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match Hashtbl.find_opt p.Ir.funcs name with
      | None -> ()
      | Some f -> List.iter visit (direct_callees f)
    end
  in
  Array.iter (fun a -> visit a.Ir.ab_func) p.Ir.atomics;
  seen

let check_no_nested_atomic p =
  let reach = atomic_reachable p in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt p.Ir.funcs name with
      | None -> fail "atomic block references unknown function %s" name
      | Some f ->
        Ir.iter_insts f (fun _ _ inst ->
            match inst.Ir.op with
            | Ir.Atomic_call _ ->
              fail "nested atomic call in %s (reachable from an atomic block)" name
            | _ -> ()))
    reach

(* ALPs guard anchors inside transactions; one in code no atomic block can
   reach is either dead instrumentation or a misplaced insertion *)
let check_alp_placement p =
  let reach = atomic_reachable p in
  Hashtbl.iter
    (fun name (f : Ir.func) ->
      if not (Hashtbl.mem reach name) then
        Ir.iter_insts f (fun _ _ inst ->
            match inst.Ir.op with
            | Ir.Alp a ->
              fail "Alp site %d in %s, which no atomic block reaches" a.Ir.alp_site
                name
            | _ -> ()))
    p.Ir.funcs

let program p =
  Hashtbl.iter
    (fun _ f ->
      check_func p f;
      check_def_before_use f)
    p.Ir.funcs;
  check_no_nested_atomic p;
  check_alp_placement p

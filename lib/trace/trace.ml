open Stx_sim

type entry = { time : int; ev : Machine.event }

type t = {
  n_threads : int;
  capacity : int; (* 0 = unbounded (full capture) *)
  mutable arr : entry array;
  mutable len : int;
  mutable head : int;
  mutable n_dropped : int;
}

let dummy = { time = 0; ev = Machine.Backoff_start { tid = 0 } }

let create ?capacity ~threads () =
  let capacity =
    match capacity with
    | None -> 0
    | Some c ->
      if c <= 0 then invalid_arg "Trace.create: capacity must be positive";
      c
  in
  let initial = if capacity = 0 then 1024 else capacity in
  {
    n_threads = threads;
    capacity;
    arr = Array.make initial dummy;
    len = 0;
    head = 0;
    n_dropped = 0;
  }

let handler t ~time ev =
  let e = { time; ev } in
  if t.capacity = 0 then begin
    if t.len = Array.length t.arr then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- e;
    t.len <- t.len + 1
  end
  else if t.len < t.capacity then begin
    t.arr.((t.head + t.len) mod t.capacity) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* ring full: the oldest event makes room *)
    t.arr.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    t.n_dropped <- t.n_dropped + 1
  end

let length t = t.len
let dropped t = t.n_dropped
let threads t = t.n_threads

let iter t f =
  let cap = Array.length t.arr in
  for i = 0 to t.len - 1 do
    let e = t.arr.((t.head + i) mod cap) in
    f ~time:e.time e.ev
  done

let events t =
  let acc = ref [] in
  iter t (fun ~time ev -> acc := (time, ev) :: !acc);
  List.rev !acc

(* --- invariant checking ------------------------------------------------ *)

(* per-thread replay state: what the protocol allows next *)
type attempt = {
  a_ab : int;
  a_stm : bool; (* a software-tier attempt: advisory locks are forbidden *)
  mutable a_lock : int option;
  mutable a_acquires : int;
}

type tstate = {
  mutable last_time : int;
  mutable open_attempt : attempt option;
  mutable waiting : int option; (* advisory lock index being spun on *)
  mutable backoff_since : int option;
  mutable open_req : int option; (* injected request being served *)
}

type ab_tally = {
  mutable t_commits : int;
  mutable t_aborts : int;
  mutable t_locks : int;
  mutable t_irrevocable : int;
}

let check t (stats : Stats.t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if t.n_dropped > 0 then begin
    err
      "%d events dropped by the ring buffer; a truncated stream cannot be \
       reconciled (use full capture)"
      t.n_dropped;
    Error (List.rev !errs)
  end
  else begin
    let n = t.n_threads in
    let states =
      Array.init n (fun _ ->
          {
            last_time = 0;
            open_attempt = None;
            waiting = None;
            backoff_since = None;
            open_req = None;
          })
    in
    let st tid =
      if tid < 0 || tid >= n then begin
        err "event names thread %d but the trace covers %d threads" tid n;
        None
      end
      else Some states.(tid)
    in
    let commits = ref 0 and aborts = ref 0 in
    let conflict_aborts = ref 0 and lock_sub_aborts = ref 0 and explicit_aborts = ref 0 in
    let capacity_aborts = ref 0 and stm_conflict_aborts = ref 0 in
    let stm_commits = ref 0 and stm_aborts = ref 0 in
    let stm_validation = ref 0 and stm_hw_owned = ref 0 and stm_locksub = ref 0 in
    let stm_vcycles = ref 0 in
    let irrevocable = ref 0 and acquires = ref 0 and timeouts = ref 0 in
    let alps = ref 0 and lock_attempts = ref 0 in
    let useful = ref 0 and wasted = ref 0 and backoff = ref 0 in
    let abs : (int, ab_tally) Hashtbl.t = Hashtbl.create 8 in
    let ab_tally id =
      match Hashtbl.find_opt abs id with
      | Some a -> a
      | None ->
        let a = { t_commits = 0; t_aborts = 0; t_locks = 0; t_irrevocable = 0 } in
        Hashtbl.add abs id a;
        a
    in
    iter t (fun ~time ev ->
        let tid =
          match ev with
          | Machine.Tx_begin { tid; _ }
          | Machine.Tx_commit { tid; _ }
          | Machine.Tx_abort { tid; _ }
          | Machine.Tx_irrevocable { tid; _ }
          | Machine.Alp_executed { tid; _ }
          | Machine.Lock_attempt { tid; _ }
          | Machine.Lock_acquired { tid; _ }
          | Machine.Lock_released { tid; _ }
          | Machine.Lock_waiting { tid; _ }
          | Machine.Lock_timeout { tid; _ }
          | Machine.Backoff_start { tid }
          | Machine.Backoff_end { tid }
          | Machine.Req_dispatch { tid; _ }
          | Machine.Req_done { tid; _ }
          | Machine.Stm_begin { tid; _ }
          | Machine.Stm_commit { tid; _ }
          | Machine.Stm_abort { tid; _ } -> tid
        in
        match st tid with
        | None -> ()
        | Some s ->
          if time < s.last_time then
            err "thread %d: clock went backwards (%d after %d)" tid time s.last_time;
          s.last_time <- time;
          (match ev with
          | Machine.Tx_begin { ab; _ } ->
            (match s.open_attempt with
            | Some _ -> err "thread %d: begin at %d while an attempt is open" tid time
            | None -> ());
            s.open_attempt <- Some { a_ab = ab; a_stm = false; a_lock = None; a_acquires = 0 }
          | Machine.Tx_commit { ab; cycles; irrevocable = irr; _ } ->
            (match s.open_attempt with
            | None -> err "thread %d: commit at %d with no open attempt" tid time
            | Some a ->
              if a.a_ab <> ab then
                err "thread %d: commit names ab%d but the open attempt is ab%d" tid
                  ab a.a_ab;
              if a.a_stm then
                err "thread %d: hardware commit at %d closes a software attempt" tid
                  time;
              if a.a_lock <> None then
                err "thread %d: advisory lock still held at commit (time %d)" tid time);
            incr commits;
            useful := !useful + cycles;
            let tally = ab_tally ab in
            tally.t_commits <- tally.t_commits + 1;
            if irr then tally.t_irrevocable <- tally.t_irrevocable + 1;
            s.open_attempt <- None;
            s.waiting <- None
          | Machine.Tx_abort { ab; kind; cycles; _ } ->
            (match s.open_attempt with
            | None -> err "thread %d: abort at %d with no open attempt" tid time
            | Some a ->
              if a.a_ab <> ab then
                err "thread %d: abort names ab%d but the open attempt is ab%d" tid ab
                  a.a_ab;
              if a.a_stm then
                err "thread %d: hardware abort at %d closes a software attempt" tid
                  time;
              if a.a_lock <> None then
                err "thread %d: advisory lock still held at abort (time %d)" tid time);
            incr aborts;
            (match kind with
            | Machine.Conflict -> incr conflict_aborts
            | Machine.Lock_subscription -> incr lock_sub_aborts
            | Machine.Capacity -> incr capacity_aborts
            | Machine.Explicit -> incr explicit_aborts
            | Machine.Stm_conflict -> incr stm_conflict_aborts);
            wasted := !wasted + cycles;
            (ab_tally ab).t_aborts <- (ab_tally ab).t_aborts + 1;
            s.open_attempt <- None;
            s.waiting <- None
          | Machine.Stm_begin { ab; _ } ->
            (match s.open_attempt with
            | Some _ ->
              err "thread %d: software begin at %d while an attempt is open" tid time
            | None -> ());
            s.open_attempt <- Some { a_ab = ab; a_stm = true; a_lock = None; a_acquires = 0 }
          | Machine.Stm_commit { ab; cycles; vcycles; _ } ->
            (match s.open_attempt with
            | None -> err "thread %d: software commit at %d with no open attempt" tid time
            | Some a ->
              if a.a_ab <> ab then
                err "thread %d: software commit names ab%d but the open attempt is ab%d"
                  tid ab a.a_ab;
              if not a.a_stm then
                err "thread %d: software commit at %d closes a hardware attempt" tid
                  time);
            if vcycles > cycles then
              err "thread %d: software commit at %d has vcycles %d > cycles %d" tid
                time vcycles cycles;
            incr commits;
            incr stm_commits;
            stm_vcycles := !stm_vcycles + vcycles;
            useful := !useful + cycles;
            (ab_tally ab).t_commits <- (ab_tally ab).t_commits + 1;
            s.open_attempt <- None;
            s.waiting <- None
          | Machine.Stm_abort { ab; kind; cycles; vcycles; _ } ->
            (match s.open_attempt with
            | None -> err "thread %d: software abort at %d with no open attempt" tid time
            | Some a ->
              if a.a_ab <> ab then
                err "thread %d: software abort names ab%d but the open attempt is ab%d"
                  tid ab a.a_ab;
              if not a.a_stm then
                err "thread %d: software abort at %d closes a hardware attempt" tid
                  time);
            if vcycles > cycles then
              err "thread %d: software abort at %d has vcycles %d > cycles %d" tid
                time vcycles cycles;
            incr aborts;
            incr stm_aborts;
            stm_vcycles := !stm_vcycles + vcycles;
            (match kind with
            | Machine.Stm_validation -> incr stm_validation
            | Machine.Stm_hw_owned -> incr stm_hw_owned
            | Machine.Stm_locksub -> incr stm_locksub
            | Machine.Stm_explicit -> ());
            wasted := !wasted + cycles;
            (ab_tally ab).t_aborts <- (ab_tally ab).t_aborts + 1;
            s.open_attempt <- None;
            s.waiting <- None
          | Machine.Tx_irrevocable _ ->
            if s.open_attempt <> None then
              err "thread %d: irrevocable entry at %d inside an open attempt" tid time;
            incr irrevocable
          | Machine.Alp_executed _ ->
            (match s.open_attempt with
            | None -> err "thread %d: ALP executed at %d outside a transaction" tid time
            | Some a ->
              if a.a_stm then
                err "thread %d: ALP executed at %d inside a software attempt" tid time);
            incr alps
          | Machine.Lock_attempt _ ->
            (match s.open_attempt with
            | None -> err "thread %d: lock attempt at %d outside a transaction" tid time
            | Some a ->
              if a.a_stm then
                err "thread %d: advisory lock attempt at %d inside a software attempt"
                  tid time;
              if a.a_lock <> None then
                err "thread %d: lock attempt at %d while already holding a lock" tid
                  time);
            incr lock_attempts
          | Machine.Lock_acquired { lock; _ } ->
            (match s.open_attempt with
            | None -> err "thread %d: lock acquired at %d outside a transaction" tid time
            | Some a ->
              if a.a_stm then
                err "thread %d: advisory lock acquired at %d inside a software attempt"
                  tid time;
              if a.a_lock <> None then
                err "thread %d: second advisory lock acquired at %d" tid time;
              if a.a_acquires >= 1 then
                err "thread %d: more than one advisory lock acquisition in one attempt"
                  tid;
              a.a_lock <- Some lock;
              a.a_acquires <- a.a_acquires + 1;
              (ab_tally a.a_ab).t_locks <- (ab_tally a.a_ab).t_locks + 1);
            incr acquires;
            s.waiting <- None
          | Machine.Lock_released { lock; _ } -> (
            match s.open_attempt with
            | None -> err "thread %d: lock released at %d outside a transaction" tid time
            | Some a -> (
              match a.a_lock with
              | Some l when l = lock -> a.a_lock <- None
              | _ -> err "thread %d: released lock %d it does not hold" tid lock))
          | Machine.Lock_waiting { lock; _ } ->
            if s.open_attempt = None then
              err "thread %d: lock wait at %d outside a transaction" tid time;
            s.waiting <- Some lock
          | Machine.Lock_timeout { lock; _ } ->
            if s.waiting <> Some lock then
              err "thread %d: timeout on lock %d it was not waiting for" tid lock;
            s.waiting <- None;
            incr timeouts
          | Machine.Backoff_start _ ->
            if s.open_attempt <> None then
              err "thread %d: backoff started at %d inside an open attempt" tid time;
            if s.backoff_since <> None then
              err "thread %d: nested backoff at %d" tid time;
            s.backoff_since <- Some time
          | Machine.Backoff_end _ -> (
            match s.backoff_since with
            | None -> err "thread %d: backoff ended at %d without a start" tid time
            | Some t0 ->
              backoff := !backoff + (time - t0);
              s.backoff_since <- None)
          | Machine.Req_dispatch { req; _ } ->
            (match s.open_req with
            | Some r ->
              err "thread %d: request %d dispatched at %d while request %d is \
                   in flight"
                tid req time r
            | None -> ());
            if s.open_attempt <> None then
              err "thread %d: request %d dispatched at %d inside an open attempt"
                tid req time;
            s.open_req <- Some req
          | Machine.Req_done { req; _ } -> (
            match s.open_req with
            | Some r when r = req -> s.open_req <- None
            | Some r ->
              err "thread %d: request %d done at %d but request %d is in flight"
                tid req time r;
              s.open_req <- None
            | None ->
              err "thread %d: request %d done at %d without a dispatch" tid req
                time)));
    Array.iteri
      (fun tid s ->
        if s.open_attempt <> None then
          err "thread %d: attempt still open at end of trace" tid;
        if s.backoff_since <> None then
          err "thread %d: backoff still open at end of trace" tid;
        match s.open_req with
        | Some r -> err "thread %d: request %d still in flight at end of trace" tid r
        | None -> ())
      states;
    (* reconcile the replayed counters against the inline ones *)
    let eq name trace stats =
      if trace <> stats then err "%s: trace says %d, stats say %d" name trace stats
    in
    eq "commits" !commits stats.Stats.commits;
    eq "aborts" !aborts stats.Stats.aborts;
    eq "conflict aborts" !conflict_aborts stats.Stats.conflict_aborts;
    eq "lock-subscription aborts" !lock_sub_aborts stats.Stats.lock_sub_aborts;
    eq "capacity aborts" !capacity_aborts stats.Stats.capacity_aborts;
    eq "explicit aborts" !explicit_aborts stats.Stats.explicit_aborts;
    eq "stm-conflict aborts" !stm_conflict_aborts stats.Stats.stm_conflict_aborts;
    eq "stm commits" !stm_commits stats.Stats.stm_commits;
    eq "stm aborts" !stm_aborts stats.Stats.stm_aborts;
    eq "stm validation aborts" !stm_validation stats.Stats.stm_validation_aborts;
    eq "stm hw-owned aborts" !stm_hw_owned stats.Stats.stm_hw_owned_aborts;
    eq "stm lock-subscription aborts" !stm_locksub stats.Stats.stm_locksub_aborts;
    eq "stm validation cycles" !stm_vcycles stats.Stats.stm_validation_cycles;
    eq "irrevocable entries" !irrevocable stats.Stats.irrevocable_entries;
    eq "lock acquires" !acquires stats.Stats.lock_acquires;
    eq "lock timeouts" !timeouts stats.Stats.lock_timeouts;
    eq "ALPs executed" !alps stats.Stats.alps_executed;
    eq "ALP lock attempts" !lock_attempts stats.Stats.alps_lock_attempts;
    eq "useful cycles" !useful stats.Stats.useful_cycles;
    eq "wasted cycles" !wasted stats.Stats.wasted_cycles;
    eq "backoff cycles" !backoff stats.Stats.backoff_cycles;
    if stats.Stats.tx_mode_cycles < !useful + !wasted + !backoff then
      err "tx_mode_cycles (%d) below useful+wasted+backoff (%d)"
        stats.Stats.tx_mode_cycles
        (!useful + !wasted + !backoff);
    if stats.Stats.thread_cycles > 0 && stats.Stats.tx_mode_cycles > stats.Stats.thread_cycles
    then
      err "tx_mode_cycles (%d) exceeds thread_cycles (%d)" stats.Stats.tx_mode_cycles
        stats.Stats.thread_cycles;
    Hashtbl.iter
      (fun id (tr : ab_tally) ->
        match Hashtbl.find_opt stats.Stats.per_ab id with
        | None -> err "ab%d: seen in trace but absent from stats" id
        | Some (st : Stats.ab_stat) ->
          eq (Printf.sprintf "ab%d commits" id) tr.t_commits st.Stats.ab_commits;
          eq (Printf.sprintf "ab%d aborts" id) tr.t_aborts st.Stats.ab_aborts;
          eq (Printf.sprintf "ab%d locks" id) tr.t_locks st.Stats.ab_locks;
          eq
            (Printf.sprintf "ab%d irrevocable" id)
            tr.t_irrevocable st.Stats.ab_irrevocable)
      abs;
    Hashtbl.iter
      (fun id (st : Stats.ab_stat) ->
        if
          (not (Hashtbl.mem abs id))
          && st.Stats.ab_commits + st.Stats.ab_aborts + st.Stats.ab_locks
             + st.Stats.ab_irrevocable
             > 0
        then err "ab%d: counted in stats but absent from trace" id)
      stats.Stats.per_ab;
    match List.rev !errs with [] -> Ok () | es -> Error es
  end

let check_exn t stats =
  match check t stats with
  | Ok () -> ()
  | Error es -> failwith ("trace/stats divergence:\n  " ^ String.concat "\n  " es)

(* --- abort attribution ------------------------------------------------- *)

type attribution = {
  agg_matrix : int array array;
  unattributed : int;
  by_line : (int * int) list;
  by_pc : (int * int) list;
  by_ab : (int * int) list;
  conflict_aborts : int;
}

let abort_attribution t =
  let n = t.n_threads in
  let matrix = Array.make_matrix n n 0 in
  let unattributed = ref 0 and total = ref 0 in
  let lines = Hashtbl.create 32 in
  let pcs = Hashtbl.create 32 in
  let abs = Hashtbl.create 8 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  iter t (fun ~time:_ ev ->
      match ev with
      | Machine.Tx_abort
          { tid; ab; kind = Machine.Conflict; conf_line; conf_pc; aggressor; _ } ->
        incr total;
        bump abs ab;
        (match conf_line with Some l -> bump lines l | None -> ());
        (match conf_pc with Some pc -> bump pcs pc | None -> ());
        (match aggressor with
        | Some a when a >= 0 && a < n && tid >= 0 && tid < n ->
          matrix.(a).(tid) <- matrix.(a).(tid) + 1
        | _ -> incr unattributed)
      | _ -> ());
  (* count ties broken by key, so the report is hash-seed independent *)
  let ranked = Stx_util.Stat.ranked in
  {
    agg_matrix = matrix;
    unattributed = !unattributed;
    by_line = ranked lines;
    by_pc = ranked pcs;
    by_ab = ranked abs;
    conflict_aborts = !total;
  }

(* --- Chrome trace_event export ----------------------------------------- *)

(* every generated string is ASCII, but stay safe anyway *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let b = Buffer.create 65536 in
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char b '}'
  in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let int i = string_of_int i in
  let bool v = if v then "true" else "false" in
  let opt_int = function Some i -> int i | None -> "null" in
  let args fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields)
    ^ "}"
  in
  let span ~name ~ts ~dur ~tid ~args:a =
    obj
      [
        ("name", str name); ("cat", str "sim"); ("ph", str "X"); ("ts", int ts);
        ("dur", int dur); ("pid", int 0); ("tid", int tid); ("args", a);
      ]
  in
  let instant ~name ~ts ~tid ~args:a =
    obj
      [
        ("name", str name); ("cat", str "sim"); ("ph", str "i"); ("ts", int ts);
        ("s", str "t"); ("pid", int 0); ("tid", int tid); ("args", a);
      ]
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  for tid = 0 to t.n_threads - 1 do
    obj
      [
        ("name", str "thread_name"); ("ph", str "M"); ("pid", int 0);
        ("tid", int tid);
        ("args", args [ ("name", str (Printf.sprintf "core %d" tid)) ]);
      ]
  done;
  let n = t.n_threads in
  let tx_open = Array.make n None (* (start, ab, attempt, probe) *) in
  let lock_open = Array.make n None (* (start, lock, line) *) in
  let wait_open = Array.make n None (* (start, lock) *) in
  let backoff_open = Array.make n None (* start *) in
  let req_open = Array.make n None (* (start, req) *) in
  let close_wait ~time ~tid ~outcome =
    if tid >= 0 && tid < n then
      match wait_open.(tid) with
      | Some (t0, lock) ->
        span
          ~name:(Printf.sprintf "wait lock%d" lock)
          ~ts:t0 ~dur:(time - t0) ~tid
          ~args:(args [ ("lock", int lock); ("outcome", str outcome) ]);
        wait_open.(tid) <- None
      | None -> ()
  in
  let close_tx ~time ~tid ~ab ~outcome extra =
    if tid >= 0 && tid < n then
      match tx_open.(tid) with
      | Some (t0, _, attempt, probe) ->
        span
          ~name:(Printf.sprintf "ab%d" ab)
          ~ts:t0 ~dur:(time - t0) ~tid
          ~args:
            (args
               ([ ("attempt", int attempt); ("probe", bool probe);
                  ("outcome", str outcome) ]
               @ extra));
        tx_open.(tid) <- None
      | None -> ()
  in
  iter t (fun ~time ev ->
      match ev with
      | Machine.Tx_begin { tid; ab; attempt; probe } ->
        if tid >= 0 && tid < n then tx_open.(tid) <- Some (time, ab, attempt, probe)
      | Machine.Tx_commit { tid; ab; irrevocable; rset; wset; _ } ->
        close_tx ~time ~tid ~ab ~outcome:"commit"
          [ ("irrevocable", bool irrevocable); ("rset", int rset);
            ("wset", int wset) ]
      | Machine.Tx_abort
          { tid; ab; kind; conf_line; conf_pc; aggressor; rset; wset; _ } ->
        close_wait ~time ~tid ~outcome:"abort";
        close_tx ~time ~tid ~ab ~outcome:"abort" [];
        let reason =
          match kind with
          | Machine.Conflict -> "conflict"
          | Machine.Lock_subscription -> "lock_subscription"
          | Machine.Capacity -> "capacity"
          | Machine.Explicit -> "explicit"
          | Machine.Stm_conflict -> "stm_conflict"
        in
        instant ~name:"abort" ~ts:time ~tid
          ~args:
            (args
               [
                 ("reason", str reason); ("victim", int tid);
                 ("aggressor", opt_int aggressor);
                 ("conf_line", opt_int conf_line); ("conf_pc", opt_int conf_pc);
                 ("rset", int rset); ("wset", int wset);
               ])
      | Machine.Tx_irrevocable { tid; ab } ->
        instant ~name:"irrevocable" ~ts:time ~tid ~args:(args [ ("ab", int ab) ])
      | Machine.Alp_executed { tid; ab; site; fired } ->
        instant ~name:"alp" ~ts:time ~tid
          ~args:(args [ ("ab", int ab); ("site", int site); ("fired", bool fired) ])
      | Machine.Lock_attempt _ -> ()
      | Machine.Lock_acquired { tid; lock; line } ->
        close_wait ~time ~tid ~outcome:"acquired";
        if tid >= 0 && tid < n then lock_open.(tid) <- Some (time, lock, line)
      | Machine.Lock_released { tid; lock; committed } ->
        if tid >= 0 && tid < n then (
          match lock_open.(tid) with
          | Some (t0, l, line) when l = lock ->
            span
              ~name:(Printf.sprintf "lock%d" lock)
              ~ts:t0 ~dur:(time - t0) ~tid
              ~args:(args [ ("line", int line); ("committed", bool committed) ]);
            lock_open.(tid) <- None
          | _ -> ())
      | Machine.Lock_waiting { tid; lock } ->
        if tid >= 0 && tid < n then wait_open.(tid) <- Some (time, lock)
      | Machine.Lock_timeout { tid; _ } -> close_wait ~time ~tid ~outcome:"timeout"
      | Machine.Backoff_start { tid } ->
        if tid >= 0 && tid < n then backoff_open.(tid) <- Some time
      | Machine.Backoff_end { tid } ->
        if tid >= 0 && tid < n then (
          match backoff_open.(tid) with
          | Some t0 ->
            span ~name:"backoff" ~ts:t0 ~dur:(time - t0) ~tid ~args:(args []);
            backoff_open.(tid) <- None
          | None -> ())
      | Machine.Req_dispatch { tid; req; _ } ->
        if tid >= 0 && tid < n then req_open.(tid) <- Some (time, req)
      | Machine.Req_done { tid; req; ab } ->
        if tid >= 0 && tid < n then (
          match req_open.(tid) with
          | Some (t0, r) when r = req ->
            span ~name:"request" ~ts:t0 ~dur:(time - t0) ~tid
              ~args:(args [ ("req", int req); ("ab", int ab) ]);
            req_open.(tid) <- None
          | _ -> ())
      | Machine.Stm_begin { tid; ab; attempt } ->
        if tid >= 0 && tid < n then tx_open.(tid) <- Some (time, ab, attempt, false)
      | Machine.Stm_commit { tid; ab; vcycles; rset; wset; _ } ->
        close_tx ~time ~tid ~ab ~outcome:"commit"
          [ ("tier", str "stm"); ("vcycles", int vcycles); ("rset", int rset);
            ("wset", int wset) ]
      | Machine.Stm_abort { tid; ab; kind; vcycles; rset; wset; _ } ->
        close_tx ~time ~tid ~ab ~outcome:"abort" [ ("tier", str "stm") ];
        let reason =
          match kind with
          | Machine.Stm_validation -> "stm_validation"
          | Machine.Stm_hw_owned -> "stm_hw_owned"
          | Machine.Stm_locksub -> "stm_lock_subscription"
          | Machine.Stm_explicit -> "stm_explicit"
        in
        instant ~name:"abort" ~ts:time ~tid
          ~args:
            (args
               [
                 ("reason", str reason); ("victim", int tid);
                 ("vcycles", int vcycles); ("rset", int rset); ("wset", int wset);
               ]));
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome t ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json t))

(* --- raw event codec ---------------------------------------------------- *)

(* One event per line, whitespace-separated, a versioned header up front.
   The Chrome export is for human eyes; this form round-trips, so a capture
   written by one process (stx_run --raw-trace) can be replayed by another
   (stx_repro lint --validate-trace). Option fields print as "-". *)

let codec_magic = "stx-trace"

(* v2 added read/write-set sizes to commit and abort lines; v3 added the
   "capacity" abort kind (bounded-capacity policy overflow); v4 added the
   req-dispatch/req-done lines of request-driven serving runs; v5 added
   the "stmconf" abort kind and the stm-begin/stm-commit/stm-abort lines
   of the software fallback tier *)
let codec_version = 5

let opt = function None -> "-" | Some v -> string_of_int v
let flag b = if b then "1" else "0"

let kind_tag = function
  | Machine.Conflict -> "conflict"
  | Machine.Lock_subscription -> "locksub"
  | Machine.Capacity -> "capacity"
  | Machine.Explicit -> "explicit"
  | Machine.Stm_conflict -> "stmconf"

let stm_kind_tag = function
  | Machine.Stm_validation -> "validation"
  | Machine.Stm_hw_owned -> "hwowned"
  | Machine.Stm_locksub -> "locksub"
  | Machine.Stm_explicit -> "explicit"

let event_line time ev =
  match ev with
  | Machine.Tx_begin { tid; ab; attempt; probe } ->
    Printf.sprintf "%d begin %d %d %d %s" time tid ab attempt (flag probe)
  | Machine.Tx_commit { tid; ab; cycles; irrevocable; rset; wset; probe } ->
    Printf.sprintf "%d commit %d %d %d %s %d %d %s" time tid ab cycles
      (flag irrevocable) rset wset (flag probe)
  | Machine.Tx_abort
      { tid; ab; kind; conf_line; conf_pc; aggressor; cycles; rset; wset; probe }
    ->
    Printf.sprintf "%d abort %d %d %s %s %s %s %d %d %d %s" time tid ab
      (kind_tag kind) (opt conf_line) (opt conf_pc) (opt aggressor) cycles rset
      wset (flag probe)
  | Machine.Tx_irrevocable { tid; ab } ->
    Printf.sprintf "%d irrevocable %d %d" time tid ab
  | Machine.Alp_executed { tid; ab; site; fired } ->
    Printf.sprintf "%d alp %d %d %d %s" time tid ab site (flag fired)
  | Machine.Lock_attempt { tid; lock; line } ->
    Printf.sprintf "%d lock-attempt %d %d %d" time tid lock line
  | Machine.Lock_acquired { tid; lock; line } ->
    Printf.sprintf "%d lock-acquired %d %d %d" time tid lock line
  | Machine.Lock_released { tid; lock; committed } ->
    Printf.sprintf "%d lock-released %d %d %s" time tid lock (flag committed)
  | Machine.Lock_waiting { tid; lock } ->
    Printf.sprintf "%d lock-waiting %d %d" time tid lock
  | Machine.Lock_timeout { tid; lock } ->
    Printf.sprintf "%d lock-timeout %d %d" time tid lock
  | Machine.Backoff_start { tid } -> Printf.sprintf "%d backoff-start %d" time tid
  | Machine.Backoff_end { tid } -> Printf.sprintf "%d backoff-end %d" time tid
  | Machine.Req_dispatch { tid; req; ab } ->
    Printf.sprintf "%d req-dispatch %d %d %d" time tid req ab
  | Machine.Req_done { tid; req; ab } ->
    Printf.sprintf "%d req-done %d %d %d" time tid req ab
  | Machine.Stm_begin { tid; ab; attempt } ->
    Printf.sprintf "%d stm-begin %d %d %d" time tid ab attempt
  | Machine.Stm_commit { tid; ab; cycles; vcycles; rset; wset } ->
    Printf.sprintf "%d stm-commit %d %d %d %d %d %d" time tid ab cycles vcycles
      rset wset
  | Machine.Stm_abort { tid; ab; kind; cycles; vcycles; rset; wset } ->
    Printf.sprintf "%d stm-abort %d %d %s %d %d %d %d" time tid ab
      (stm_kind_tag kind) cycles vcycles rset wset

let write_events ?(meta = []) t ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d\n" codec_magic codec_version;
      Printf.fprintf oc "threads %d\n" t.n_threads;
      Printf.fprintf oc "dropped %d\n" t.n_dropped;
      List.iter
        (fun (k, v) ->
          if String.contains k ' ' || String.contains k '\n' || String.contains v '\n'
          then invalid_arg "Trace.write_events: meta keys/values must be line-safe";
          Printf.fprintf oc "meta %s %s\n" k v)
        meta;
      Printf.fprintf oc "events %d\n" t.len;
      iter t (fun ~time ev -> output_string oc (event_line time ev ^ "\n")))

exception Codec_error of string

let codec_fail fmt = Printf.ksprintf (fun s -> raise (Codec_error s)) fmt

let parse_event line lineno =
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let num s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> codec_fail "line %d: expected an integer, got %S" lineno s
  in
  let num_opt s = if s = "-" then None else Some (num s) in
  let bool s =
    match s with
    | "0" -> false
    | "1" -> true
    | _ -> codec_fail "line %d: expected a 0/1 flag, got %S" lineno s
  in
  let kind s =
    match s with
    | "conflict" -> Machine.Conflict
    | "locksub" -> Machine.Lock_subscription
    | "capacity" -> Machine.Capacity
    | "explicit" -> Machine.Explicit
    | "stmconf" -> Machine.Stm_conflict
    | _ -> codec_fail "line %d: unknown abort kind %S" lineno s
  in
  let stm_kind s =
    match s with
    | "validation" -> Machine.Stm_validation
    | "hwowned" -> Machine.Stm_hw_owned
    | "locksub" -> Machine.Stm_locksub
    | "explicit" -> Machine.Stm_explicit
    | _ -> codec_fail "line %d: unknown software abort kind %S" lineno s
  in
  match fields with
  | time :: "begin" :: [ tid; ab; attempt; probe ] ->
    ( num time,
      Machine.Tx_begin
        { tid = num tid; ab = num ab; attempt = num attempt; probe = bool probe } )
  | time :: "commit" :: [ tid; ab; cycles; irrevocable; rset; wset; probe ] ->
    ( num time,
      Machine.Tx_commit
        {
          tid = num tid;
          ab = num ab;
          cycles = num cycles;
          irrevocable = bool irrevocable;
          rset = num rset;
          wset = num wset;
          probe = bool probe;
        } )
  | time
    :: "abort"
    :: [ tid; ab; k; conf_line; conf_pc; aggressor; cycles; rset; wset; probe ]
    ->
    ( num time,
      Machine.Tx_abort
        {
          tid = num tid;
          ab = num ab;
          kind = kind k;
          conf_line = num_opt conf_line;
          conf_pc = num_opt conf_pc;
          aggressor = num_opt aggressor;
          cycles = num cycles;
          rset = num rset;
          wset = num wset;
          probe = bool probe;
        } )
  | time :: "irrevocable" :: [ tid; ab ] ->
    (num time, Machine.Tx_irrevocable { tid = num tid; ab = num ab })
  | time :: "alp" :: [ tid; ab; site; fired ] ->
    ( num time,
      Machine.Alp_executed
        { tid = num tid; ab = num ab; site = num site; fired = bool fired } )
  | time :: "lock-attempt" :: [ tid; lock; line ] ->
    ( num time,
      Machine.Lock_attempt { tid = num tid; lock = num lock; line = num line } )
  | time :: "lock-acquired" :: [ tid; lock; line ] ->
    ( num time,
      Machine.Lock_acquired { tid = num tid; lock = num lock; line = num line } )
  | time :: "lock-released" :: [ tid; lock; committed ] ->
    ( num time,
      Machine.Lock_released
        { tid = num tid; lock = num lock; committed = bool committed } )
  | time :: "lock-waiting" :: [ tid; lock ] ->
    (num time, Machine.Lock_waiting { tid = num tid; lock = num lock })
  | time :: "lock-timeout" :: [ tid; lock ] ->
    (num time, Machine.Lock_timeout { tid = num tid; lock = num lock })
  | time :: "backoff-start" :: [ tid ] ->
    (num time, Machine.Backoff_start { tid = num tid })
  | time :: "backoff-end" :: [ tid ] ->
    (num time, Machine.Backoff_end { tid = num tid })
  | time :: "req-dispatch" :: [ tid; req; ab ] ->
    (num time, Machine.Req_dispatch { tid = num tid; req = num req; ab = num ab })
  | time :: "req-done" :: [ tid; req; ab ] ->
    (num time, Machine.Req_done { tid = num tid; req = num req; ab = num ab })
  | time :: "stm-begin" :: [ tid; ab; attempt ] ->
    ( num time,
      Machine.Stm_begin { tid = num tid; ab = num ab; attempt = num attempt } )
  | time :: "stm-commit" :: [ tid; ab; cycles; vcycles; rset; wset ] ->
    ( num time,
      Machine.Stm_commit
        {
          tid = num tid;
          ab = num ab;
          cycles = num cycles;
          vcycles = num vcycles;
          rset = num rset;
          wset = num wset;
        } )
  | time :: "stm-abort" :: [ tid; ab; k; cycles; vcycles; rset; wset ] ->
    ( num time,
      Machine.Stm_abort
        {
          tid = num tid;
          ab = num ab;
          kind = stm_kind k;
          cycles = num cycles;
          vcycles = num vcycles;
          rset = num rset;
          wset = num wset;
        } )
  | _ -> codec_fail "line %d: unparseable event %S" lineno line

let read_events ~file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      let next () =
        incr lineno;
        match input_line ic with
        | l -> l
        | exception End_of_file -> codec_fail "line %d: unexpected end of file" !lineno
      in
      (match String.split_on_char ' ' (next ()) with
      | [ magic; v ] when magic = codec_magic ->
        if int_of_string_opt v <> Some codec_version then
          codec_fail "unsupported %s version %s (expected %d)" codec_magic v
            codec_version
      | _ -> codec_fail "not an %s capture" codec_magic);
      let threads =
        match String.split_on_char ' ' (next ()) with
        | [ "threads"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> n
          | _ -> codec_fail "bad threads header")
        | _ -> codec_fail "missing threads header"
      in
      let dropped =
        match String.split_on_char ' ' (next ()) with
        | [ "dropped"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | _ -> codec_fail "bad dropped header")
        | _ -> codec_fail "missing dropped header"
      in
      let meta = ref [] in
      let rec header () =
        let line = next () in
        match String.split_on_char ' ' line with
        | "meta" :: k :: rest ->
          meta := (k, String.concat " " rest) :: !meta;
          header ()
        | [ "events"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | _ -> codec_fail "bad events header")
        | _ -> codec_fail "line %d: expected meta or events header" !lineno
      in
      let count = header () in
      let t = create ~threads () in
      for _ = 1 to count do
        let time, ev = parse_event (next ()) !lineno in
        handler t ~time ev
      done;
      t.n_dropped <- dropped;
      (t, List.rev !meta))

open Stx_sim

(** Structured, cycle-stamped recording of one simulation's event stream.

    A trace is the ground truth a run leaves behind: every protocol event
    {!Stx_sim.Machine} emits, in emission order, with the emitting thread's
    local clock. Three consumers build on it — the Chrome [trace_event]
    exporter (one lane per core, loadable in [chrome://tracing] or
    Perfetto), the abort-attribution report behind [stx_repro hotspots],
    and {!check}, an invariant checker that replays the stream and
    reconciles it against the run's {!Stx_sim.Stats} so the two accounting
    paths (counters bumped inline vs. events emitted inline) cannot drift
    apart silently.

    Events are globally ordered by emission, which interleaves threads in
    scheduler order; within one thread timestamps are non-decreasing, but
    a later event of another thread may carry an earlier local clock. *)

type t

val create : ?capacity:int -> threads:int -> unit -> t
(** A fresh recorder for a [threads]-core run. Without [capacity] the
    trace captures every event (full-capture mode — required by {!check});
    with [capacity] it keeps the most recent [capacity] events in a ring,
    counting the overwritten ones in {!dropped}. *)

val handler : t -> time:int -> Machine.event -> unit
(** Record one event. [Trace.handler t] has exactly the shape of
    [Machine.run]'s [?on_event], so wiring a run up is
    [Machine.run ~on_event:(Trace.handler t) ...]. *)

val length : t -> int
(** Events currently held (at most [capacity] in ring mode). *)

val dropped : t -> int
(** Events overwritten by the ring; always 0 in full-capture mode. *)

val threads : t -> int

val iter : t -> (time:int -> Machine.event -> unit) -> unit
(** Oldest to newest. *)

val events : t -> (int * Machine.event) list
(** The retained [(time, event)] stream, oldest first. *)

(** {2 Invariant checking} *)

val check : t -> Stats.t -> (unit, string list) result
(** Replay the stream and verify (a) the HTM protocol shape — per-thread
    clocks non-decreasing, every begin closed by exactly one commit or
    abort, no advisory lock held when a commit or abort is emitted, at
    most one advisory lock per attempt, every acquire matched by a
    release, backoff intervals properly bracketed and outside attempts —
    and (b) that independently recomputing the counters from events
    reproduces [stats]: commits, aborts by reason, irrevocable entries,
    lock acquires/timeouts, ALP executions and lock attempts, useful,
    wasted and backoff cycles, the per-atomic-block tallies, and that
    [tx_mode_cycles] is bounded below by useful+wasted+backoff and above
    by [thread_cycles]. A trace with [dropped > 0] fails immediately:
    a truncated stream cannot be reconciled. [Error] carries one message
    per violated invariant. *)

val check_exn : t -> Stats.t -> unit
(** @raise Failure with the joined messages when {!check} returns
    [Error]. *)

(** {2 Abort attribution} *)

type attribution = {
  agg_matrix : int array array;
      (** [agg_matrix.(aggressor).(victim)] counts conflict aborts the
          aggressor core inflicted on the victim core *)
  unattributed : int;  (** conflict aborts without a usable aggressor id *)
  by_line : (int * int) list;
      (** conflicting cache line -> conflict aborts, descending *)
  by_pc : (int * int) list;
      (** conflicting PC tag -> conflict aborts, descending *)
  by_ab : (int * int) list;
      (** atomic block -> conflict aborts, descending *)
  conflict_aborts : int;  (** total conflict aborts in the trace *)
}

val abort_attribution : t -> attribution
(** Who aborted whom, where: the raw material of [stx_repro hotspots]. *)

(** {2 Chrome trace_event export} *)

val to_chrome_json : t -> string
(** The retained stream as a Chrome [trace_event] JSON document (the
    [{"traceEvents": [...]}] object form): one lane per core ([tid]),
    complete ["X"] spans for transaction attempts (named after the atomic
    block, with outcome/attempt/probe args), advisory-lock holds, lock
    waits and backoff intervals, and instant ["i"] events for every abort
    (reason, victim, aggressor, conflicting line/PC), irrevocable entry
    and executed ALP. Timestamps map one simulated cycle to one
    microsecond. Load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome : t -> file:string -> unit
(** {!to_chrome_json} to [file] (truncating). *)

(** {2 Raw event codec}

    The Chrome export is for human eyes; this line-oriented text form
    round-trips, so a capture written by one run ([stx_run --raw-trace])
    can be replayed later by another process ([stx_repro lint
    --validate-trace]). *)

exception Codec_error of string

val write_events : ?meta:(string * string) list -> t -> file:string -> unit
(** Write the retained stream with a versioned header and optional
    [meta] key/value pairs (e.g. workload, mode, seed — single-line
    values only). *)

val read_events : file:string -> t * (string * string) list
(** Parse a {!write_events} capture back into a full-capture trace plus
    its metadata. The original ring-drop count is preserved, so {!check}
    still refuses a truncated capture.
    @raise Codec_error on malformed input or an unsupported version. *)

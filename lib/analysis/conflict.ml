open Stx_tir
open Stx_dsa

type iset = (int, unit) Hashtbl.t

type source = Ab of int | Outside

type fset = (int * int, unit) Hashtbl.t  (* (global id, field) *)

type t = {
  c_nabs : int;
  c_resolution : Stx_policy.Resolution.t;
  c_reads : iset array;  (* per ab, whole-program plane *)
  c_writes : iset array;
  c_out_reads : iset;
  c_out_writes : iset;
  c_read_fields : fset array;  (* field refinement of c_reads *)
  c_write_fields : fset array;
  c_out_read_fields : fset;
  c_out_write_fields : fset;
  c_node_of_gid : (int, Dsnode.t) Hashtbl.t;  (* witness node per global id *)
  c_to_global : (int, iset) Hashtbl.t array;  (* local node id -> global ids *)
  c_all_reads : iset;  (* union over blocks *)
  c_all_writes : iset;
  c_matrix : int list array array;  (* witnesses; row c_nabs = outside *)
}

let iset () : iset = Hashtbl.create 16
let iadd (s : iset) x = Hashtbl.replace s x ()
let imem (s : iset) x = Hashtbl.mem s x

let inter a b =
  Hashtbl.fold (fun x () acc -> if imem b x then x :: acc else acc) a []

let union_into ~into s = Hashtbl.iter (fun x () -> iadd into x) s

(* Functions execution can start from: never the target of a call, plus
   the conventional thread entry point. *)
let roots prog =
  let called : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ f ->
      Ir.iter_insts f (fun _ _ inst ->
          match inst.Ir.op with
          | Ir.Call (_, g, _) -> Hashtbl.replace called g ()
          | Ir.Atomic_call (_, ab, _) ->
            Hashtbl.replace called prog.Ir.atomics.(ab).Ir.ab_func ()
          | _ -> ()))
    prog.Ir.funcs;
  let rs =
    Hashtbl.fold
      (fun name _ acc -> if Hashtbl.mem called name then acc else name :: acc)
      prog.Ir.funcs []
  in
  let rs =
    if Hashtbl.mem prog.Ir.funcs "main" && not (List.mem "main" rs) then
      "main" :: rs
    else rs
  in
  match rs with
  | [] -> Hashtbl.fold (fun name _ acc -> name :: acc) prog.Ir.funcs []
  | rs -> List.sort compare rs

let compute ?(resolution = Stx_policy.Resolution.Requester_wins) prog dsa
    (sums : Summary.t) =
  let nabs = Array.length prog.Ir.atomics in
  let c_reads = Array.init nabs (fun _ -> iset ()) in
  let c_writes = Array.init nabs (fun _ -> iset ()) in
  let c_out_reads = iset () in
  let c_out_writes = iset () in
  let c_read_fields : fset array = Array.init nabs (fun _ -> Hashtbl.create 16) in
  let c_write_fields : fset array = Array.init nabs (fun _ -> Hashtbl.create 16) in
  let c_out_read_fields : fset = Hashtbl.create 16 in
  let c_out_write_fields : fset = Hashtbl.create 16 in
  let c_node_of_gid : (int, Dsnode.t) Hashtbl.t = Hashtbl.create 64 in
  let c_to_global = Array.init nabs (fun _ -> Hashtbl.create 16) in
  let record_global ~ab lid gid =
    let tbl = c_to_global.(ab) in
    let s =
      match Hashtbl.find_opt tbl lid with
      | Some s -> s
      | None ->
        let s = iset () in
        Hashtbl.add tbl lid s;
        s
    in
    iadd s gid
  in
  (* Walk from the entry functions, composing call-site node mappings the
     way Unified does, so block footprints land in one common plane. *)
  let rec visit fname translate active =
    if List.mem fname active then ()
    else
      let f = Ir.find_func prog fname in
      let active = fname :: active in
      (* global representative: record a witness node per global id so the
         line plane can recover type/shape information from an id alone.
         A field index folds to 0 when the *global* node is collapsed —
         unification may collapse a node some plane still saw as typed. *)
      let register n =
        let g = Dsnode.find n in
        let gi = Dsnode.id g in
        if not (Hashtbl.mem c_node_of_gid gi) then Hashtbl.add c_node_of_gid gi g;
        g
      in
      let grep n = register (translate n) in
      let gfield g fld = if Dsnode.is_collapsed g then 0 else fld in
      Ir.iter_insts f (fun _ _ inst ->
          match inst.Ir.op with
          | Ir.Load _ -> (
            match Dsa.access_node dsa inst.Ir.iid with
            | Some (n, fld) ->
              let g = grep n in
              iadd c_out_reads (Dsnode.id g);
              Hashtbl.replace c_out_read_fields (Dsnode.id g, gfield g fld) ()
            | None -> ())
          | Ir.Store _ -> (
            match Dsa.access_node dsa inst.Ir.iid with
            | Some (n, fld) ->
              let g = grep n in
              iadd c_out_writes (Dsnode.id g);
              Hashtbl.replace c_out_write_fields (Dsnode.id g, gfield g fld) ()
            | None -> ())
          | Ir.Call (_, g, _) when Hashtbl.mem prog.Ir.funcs g ->
            let tr n = translate (Dsa.map_callee_node dsa ~call_iid:inst.Ir.iid n) in
            visit g tr active
          | Ir.Atomic_call (_, ab, _) ->
            let g = prog.Ir.atomics.(ab).Ir.ab_func in
            let tr n = translate (Dsa.map_callee_node dsa ~call_iid:inst.Ir.iid n) in
            let s = Summary.find sums g in
            let lift dst n =
              let lid = Dsnode.id (Dsnode.find n) in
              let gi = Dsnode.id (register (tr n)) in
              iadd dst gi;
              record_global ~ab lid gi
            in
            let lift_field dst (n, fld) =
              let gr = register (tr n) in
              Hashtbl.replace dst (Dsnode.id gr, gfield gr fld) ()
            in
            List.iter (lift c_reads.(ab)) (Summary.reads s);
            List.iter (lift c_writes.(ab)) (Summary.writes s);
            List.iter (lift_field c_read_fields.(ab)) (Summary.read_fields s);
            List.iter (lift_field c_write_fields.(ab)) (Summary.write_fields s)
          | _ -> ())
  in
  List.iter (fun r -> visit r Dsnode.find []) (roots prog);
  let c_all_reads = iset () and c_all_writes = iset () in
  Array.iter (union_into ~into:c_all_reads) c_reads;
  Array.iter (union_into ~into:c_all_writes) c_writes;
  (* Requester-wins: src's writes doom dst's readers and writers; src's
     transactional reads doom dst's writers; outside reads doom nobody.
     Responder-wins inverts the roles — dst dooms itself when its own
     request hits src's established footprint — and timestamp allows
     either direction depending on transaction age. On transactional
     pairs the three formulas are extensionally equal (intersection
     commutes and read/read pairs never conflict), so the matrix itself
     is resolution-invariant; that invariance is what keeps the trace
     validator sound under every policy. The parameter fixes which
     formula is actually evaluated and is recorded for downstream
     consumers ({!resolution}). *)
  let witnesses src_reads src_writes j =
    let w =
      inter src_writes c_reads.(j)
      @ inter src_writes c_writes.(j)
      @ match src_reads with
        | Some r -> inter r c_writes.(j)
        | None -> []
    in
    List.sort_uniq compare w
  in
  let responder_witnesses i j =
    inter c_writes.(j) c_reads.(i)
    @ inter c_writes.(j) c_writes.(i)
    @ inter c_reads.(j) c_writes.(i)
  in
  let tx_witnesses i j =
    match resolution with
    | Stx_policy.Resolution.Requester_wins ->
      witnesses (Some c_reads.(i)) c_writes.(i) j
    | Stx_policy.Resolution.Responder_wins ->
      List.sort_uniq compare (responder_witnesses i j)
    | Stx_policy.Resolution.Timestamp ->
      List.sort_uniq compare
        (witnesses (Some c_reads.(i)) c_writes.(i) j
        @ responder_witnesses i j)
  in
  (* the outside row is policy-independent: nontransactional stores win
     under every resolution (they cannot abort), nt loads doom nobody *)
  let c_matrix =
    Array.init (nabs + 1) (fun i ->
        Array.init nabs (fun j ->
            if i < nabs then tx_witnesses i j
            else witnesses None c_out_writes j))
  in
  {
    c_nabs = nabs;
    c_resolution = resolution;
    c_reads;
    c_writes;
    c_out_reads;
    c_out_writes;
    c_read_fields;
    c_write_fields;
    c_out_read_fields;
    c_out_write_fields;
    c_node_of_gid;
    c_to_global;
    c_all_reads;
    c_all_writes;
    c_matrix;
  }

let n_abs t = t.c_nabs
let resolution t = t.c_resolution

let row t = function Ab i -> t.c_matrix.(i) | Outside -> t.c_matrix.(t.c_nabs)

let witness t ~src ~dst = (row t src).(dst)
let may_doom t ~src ~dst = witness t ~src ~dst <> []

let edges t =
  let acc = ref [] in
  for j = t.c_nabs - 1 downto 0 do
    if t.c_matrix.(t.c_nabs).(j) <> [] then acc := (Outside, j) :: !acc
  done;
  for i = t.c_nabs - 1 downto 0 do
    for j = t.c_nabs - 1 downto 0 do
      if t.c_matrix.(i).(j) <> [] then acc := (Ab i, j) :: !acc
    done
  done;
  !acc

let footprint t ~ab = (Hashtbl.length t.c_reads.(ab), Hashtbl.length t.c_writes.(ab))
let outside_footprint t = (Hashtbl.length t.c_out_reads, Hashtbl.length t.c_out_writes)

let fset_elems (s : fset) =
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) s [])

let read_fields t ~ab = fset_elems t.c_read_fields.(ab)
let write_fields t ~ab = fset_elems t.c_write_fields.(ab)
let outside_read_fields t = fset_elems t.c_out_read_fields
let outside_write_fields t = fset_elems t.c_out_write_fields
let node_of_global t gid = Hashtbl.find_opt t.c_node_of_gid gid

let to_global t ~ab lid =
  match Hashtbl.find_opt t.c_to_global.(ab) lid with
  | None -> []
  | Some s -> List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) s [])

let prone t ~ab ~store lid =
  List.exists
    (fun g ->
      imem t.c_all_writes g || imem t.c_out_writes g
      || (store && imem t.c_all_reads g))
    (to_global t ~ab lid)

let never_written t ~ab lid =
  match to_global t ~ab lid with
  | [] -> false (* never reached by the walk: claim nothing *)
  | gs ->
    List.for_all
      (fun g -> not (imem t.c_all_writes g || imem t.c_out_writes g))
      gs

(* bind the analysis-side line plane before [open Stx_tir] shadows the
   short name with the PC-assignment Layout of the IR *)
module Lplane = Layout

open Stx_tir
open Stx_compiler

type t = {
  a_name : string;
  a_pipeline : Pipeline.t;
  a_summary : Summary.t;
  a_graph : Conflict.t;
  a_plane : Lplane.t;
  a_capacity : Stx_policy.Capacity.t option;
  a_diags : Diag.t list;
}

type format = Text | Tsv

let analyze ?(name = "program") ?resolution ?capacity ?words_per_line
    (p : Pipeline.t) =
  Verify.program p.Pipeline.prog;
  let summary = Summary.compute p.Pipeline.prog p.Pipeline.dsa in
  let graph =
    Conflict.compute ?resolution p.Pipeline.prog p.Pipeline.dsa summary
  in
  let plane = Lplane.build ?words_per_line p.Pipeline.prog p.Pipeline.dsa graph in
  let diags = Lints.all ?capacity ~plane p summary graph in
  {
    a_name = name;
    a_pipeline = p;
    a_summary = summary;
    a_graph = graph;
    a_plane = plane;
    a_capacity = capacity;
    a_diags = diags;
  }

let has_errors t = Diag.has_errors t.a_diags

let mode_label = function
  | Anchors.Dsa_guided -> "dsa"
  | Anchors.Naive -> "naive"

let render_text t =
  let buf = Buffer.create 1024 in
  let p = t.a_pipeline in
  let prog = p.Pipeline.prog in
  let nabs = Array.length prog.Ir.atomics in
  let resolution_label =
    match Conflict.resolution t.a_graph with
    | Stx_policy.Resolution.Requester_wins -> "" (* the default: omit *)
    | r -> ", resolution=" ^ Stx_policy.Resolution.to_string r
  in
  Buffer.add_string buf
    (Printf.sprintf "== static conflict analysis: %s (mode=%s%s%s) ==\n"
       t.a_name (mode_label p.Pipeline.mode)
       (if p.Pipeline.instrumented then "" else ", uninstrumented")
       resolution_label);
  Buffer.add_string buf "-- atomic-block footprints (whole-program nodes) --\n";
  Array.iter
    (fun (a : Ir.atomic) ->
      let r, w = Conflict.footprint t.a_graph ~ab:a.Ir.ab_id in
      Buffer.add_string buf
        (Printf.sprintf "  ab%d %-16s reads=%-3d writes=%-3d%s\n" a.Ir.ab_id
           a.Ir.ab_name r w
           (if p.Pipeline.read_only.(a.Ir.ab_id) then "  [read-only]" else "")))
    prog.Ir.atomics;
  let orr, ow = Conflict.outside_footprint t.a_graph in
  Buffer.add_string buf
    (Printf.sprintf "  outside%-13s reads=%-3d writes=%-3d\n" "" orr ow);
  Buffer.add_string buf "-- conflict graph (row dooms column) --\n";
  Buffer.add_string buf "          ";
  for j = 0 to nabs - 1 do
    Buffer.add_string buf (Printf.sprintf " ab%-3d" j)
  done;
  Buffer.add_char buf '\n';
  let row label src =
    Buffer.add_string buf (Printf.sprintf "  %-8s" label);
    for j = 0 to nabs - 1 do
      Buffer.add_string buf
        (if Conflict.may_doom t.a_graph ~src ~dst:j then "  x   " else "  .   ")
    done;
    Buffer.add_char buf '\n'
  in
  for i = 0 to nabs - 1 do
    row (Printf.sprintf "ab%d" i) (Conflict.Ab i)
  done;
  row "outside" Conflict.Outside;
  Buffer.add_string buf
    (Printf.sprintf "-- diagnostics: %d error(s), %d warning(s), %d info --\n"
       (Diag.count Diag.Error t.a_diags)
       (Diag.count Diag.Warning t.a_diags)
       (Diag.count Diag.Info t.a_diags));
  List.iter
    (fun d ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (Diag.render_text d);
      Buffer.add_char buf '\n')
    t.a_diags;
  Buffer.contents buf

let render_tsv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("name\t" ^ Diag.tsv_header ^ "\n");
  List.iter
    (fun d ->
      Buffer.add_string buf (t.a_name ^ "\t" ^ Diag.render_tsv d ^ "\n"))
    t.a_diags;
  Buffer.contents buf

let render ?(format = Text) t =
  match format with Text -> render_text t | Tsv -> render_tsv t

(* the line-granular layout section: must-execute line-footprint bounds
   per block and the line-level refinement of every conflict edge *)
let render_layout ?(format = Text) t =
  let prog = t.a_pipeline.Pipeline.prog in
  let plane = t.a_plane in
  let pair_stats prs =
    List.fold_left
      (fun (tr, fa) (p : Lplane.pair) ->
        match p.Lplane.p_sharing with
        | Lplane.True_sharing -> (tr + 1, fa)
        | Lplane.False_sharing -> (tr, fa + 1))
      (0, 0) prs
  in
  match format with
  | Text ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "== line plane: %s (%d words/line) ==\n" t.a_name
         (Lplane.words_per_line plane));
    Buffer.add_string buf
      "-- must-execute line footprints (lower bounds) --\n";
    Array.iter
      (fun (a : Ir.atomic) ->
        let b = Lplane.capacity_bound plane ~ab:a.Ir.ab_id in
        Buffer.add_string buf
          (Printf.sprintf "  ab%d %-16s reads>=%-3d writes>=%-3d%s\n"
             a.Ir.ab_id a.Ir.ab_name b.Lplane.lb_min_read
             b.Lplane.lb_min_write
             (if b.Lplane.lb_aliased then "  [aliased placements]" else "")))
      prog.Ir.atomics;
    (match t.a_capacity with
    | Some (Stx_policy.Capacity.Bounded { read_lines; write_lines }) ->
      Buffer.add_string buf
        (Printf.sprintf "  checked against bounded:%d:%d (STX107)\n"
           read_lines write_lines)
    | Some Stx_policy.Capacity.Unbounded | None -> ());
    Buffer.add_string buf
      "-- conflict-edge refinement (line-colliding field pairs) --\n";
    List.iter
      (fun (src, dst, prs) ->
        let tr, fa = pair_stats prs in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s -> ab%-3d %2d pair(s): %d true, %d false%s\n"
             (Validate.source_label src) dst (List.length prs) tr fa
             (if prs = [] then "  [edge refined away: no line collision]"
              else "")))
      (Lplane.edges plane);
    Buffer.contents buf
  | Tsv ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "name\tkind\tab_or_src\tdst\tread_or_pairs\twrite_or_true\taliased_or_false\n";
    Array.iter
      (fun (a : Ir.atomic) ->
        let b = Lplane.capacity_bound plane ~ab:a.Ir.ab_id in
        Buffer.add_string buf
          (Printf.sprintf "%s\tbound\tab%d\t-\t%d\t%d\t%b\n" t.a_name
             a.Ir.ab_id b.Lplane.lb_min_read b.Lplane.lb_min_write
             b.Lplane.lb_aliased))
      prog.Ir.atomics;
    List.iter
      (fun (src, dst, prs) ->
        let tr, fa = pair_stats prs in
        Buffer.add_string buf
          (Printf.sprintf "%s\tlineedge\t%s\tab%d\t%d\t%d\t%d\n" t.a_name
             (Validate.source_label src) dst (List.length prs) tr fa))
      (Lplane.edges plane);
    Buffer.contents buf

let validate t trace =
  Validate.run ~ctx:(t.a_pipeline, t.a_plane) t.a_graph trace

let render_validation ?(format = Text) t (v : Validate.t) =
  match format with
  | Text ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "== trace validation: %s ==\n" t.a_name);
    Buffer.add_string buf
      (Printf.sprintf
         "conflict aborts: %d (unattributed %d, ambiguous %d)\n"
         v.Validate.v_conflict_aborts v.Validate.v_unattributed
         v.Validate.v_ambiguous);
    List.iter
      (fun (e : Validate.edge) ->
        let sharing =
          if e.Validate.e_true + e.Validate.e_false + e.Validate.e_unknown = 0
          then ""
          else
            Printf.sprintf "  [%d true / %d false / %d unresolved]"
              e.Validate.e_true e.Validate.e_false e.Validate.e_unknown
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s -> ab%-3d %6d abort(s)%s\n"
             (Validate.source_label e.Validate.e_src)
             e.Validate.e_dst e.Validate.e_count sharing))
      v.Validate.v_edges;
    let attributed = v.Validate.v_true_sharing + v.Validate.v_false_sharing in
    if attributed + v.Validate.v_sharing_unknown > 0 then begin
      Buffer.add_string buf
        (Printf.sprintf
           "line attribution: %d true sharing, %d false sharing \
            (false-sharing fraction %.2f), %d unresolved\n"
           v.Validate.v_true_sharing v.Validate.v_false_sharing
           (Validate.false_sharing_fraction v)
           v.Validate.v_sharing_unknown);
      if Validate.line_sound v then
        Buffer.add_string buf
          "line soundness: OK (every resolved conflict covered by a \
           predicted line-colliding pair)\n"
      else
        Buffer.add_string buf
          (Printf.sprintf
             "line soundness: VIOLATED — %d abort(s) predicted at node \
              level but covered by no line-colliding pair\n"
             v.Validate.v_line_unsound)
    end;
    if Validate.sound v then
      Buffer.add_string buf "soundness: OK (every dynamic edge predicted)\n"
    else begin
      Buffer.add_string buf "soundness: VIOLATED — unpredicted edges:\n";
      List.iter
        (fun (e : Validate.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-8s -> ab%-3d %6d abort(s)  [UNPREDICTED]\n"
               (Validate.source_label e.Validate.e_src)
               e.Validate.e_dst e.Validate.e_count))
        v.Validate.v_unsound
    end;
    Buffer.add_string buf
      (Printf.sprintf "precision: %d/%d static edges observed (%.2f)\n"
         v.Validate.v_observed v.Validate.v_predicted (Validate.precision v));
    Buffer.contents buf
  | Tsv ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "name\tedge\tsrc\tdst\tcount\tpredicted\ttrue\tfalse\tunresolved\n";
    let line pred (e : Validate.edge) =
      Buffer.add_string buf
        (Printf.sprintf "%s\tedge\t%s\tab%d\t%d\t%s\t%d\t%d\t%d\n" t.a_name
           (Validate.source_label e.Validate.e_src)
           e.Validate.e_dst e.Validate.e_count pred e.Validate.e_true
           e.Validate.e_false e.Validate.e_unknown)
    in
    List.iter (line "yes")
      (List.filter
         (fun e -> not (List.mem e v.Validate.v_unsound))
         v.Validate.v_edges);
    List.iter (line "no") v.Validate.v_unsound;
    Buffer.add_string buf
      (Printf.sprintf "%s\tprecision\t-\t-\t%d\t%d\t-\t-\t-\n" t.a_name
         v.Validate.v_observed v.Validate.v_predicted);
    (* count = aborts attributed at line granularity, predicted =
       line-soundness violations among them *)
    Buffer.add_string buf
      (Printf.sprintf "%s\tsharing\t-\t-\t%d\t%d\t%d\t%d\t%d\n" t.a_name
         (v.Validate.v_true_sharing + v.Validate.v_false_sharing)
         v.Validate.v_line_unsound v.Validate.v_true_sharing
         v.Validate.v_false_sharing v.Validate.v_sharing_unknown);
    Buffer.contents buf

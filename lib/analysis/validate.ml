open Stx_sim
open Stx_trace

type edge = { e_src : Conflict.source; e_dst : int; e_count : int }

type t = {
  v_edges : edge list;
  v_unsound : edge list;
  v_conflict_aborts : int;
  v_unattributed : int;
  v_ambiguous : int;
  v_predicted : int;
  v_observed : int;
}

let source_label = function
  | Conflict.Ab ab -> Printf.sprintf "ab%d" ab
  | Conflict.Outside -> "outside"

let run graph trace =
  let nt = Trace.threads trace in
  (* Per thread, newest-first list of (event index, source) transitions:
     [Some ab] while a block's transaction is (re)running, [None] for
     outside code. An aborted attempt keeps its block as a plausible
     source — its speculative accesses may already have doomed someone —
     so only a commit pushes [None]. *)
  let hist = Array.make nt [ (0, None) ] in
  let begin_idx = Array.make nt 0 in
  let counts : (Conflict.source * int, int ref) Hashtbl.t = Hashtbl.create 32 in
  let unsound : (Conflict.source * int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let observed : (Conflict.source * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> incr r
    | None -> Hashtbl.add tbl key (ref 1)
  in
  let conflicts = ref 0 in
  let unattributed = ref 0 in
  let ambiguous = ref 0 in
  let idx = ref 0 in
  Trace.iter trace (fun ~time:_ ev ->
      let i = !idx in
      incr idx;
      match ev with
      | Machine.Tx_begin { tid; ab; _ } -> (
        match hist.(tid) with
        | (_, Some cur) :: _ when cur = ab ->
          (* retry: the attempt window opened at the first begin *)
          ()
        | _ ->
          begin_idx.(tid) <- i;
          hist.(tid) <- (i, Some ab) :: hist.(tid))
      | Machine.Tx_commit { tid; _ } -> hist.(tid) <- (i, None) :: hist.(tid)
      | Machine.Tx_abort { tid; ab; kind = Machine.Conflict; aggressor; _ }
        -> (
        incr conflicts;
        match aggressor with
        | Some a when a >= 0 && a < nt && a <> tid ->
          (* candidate sources: what the aggressor ran inside the
             victim's attempt window, newest first *)
          let b = begin_idx.(tid) in
          let rec collect = function
            | [] -> []
            | (start, src) :: rest ->
              if start <= b then [ src ] else src :: collect rest
          in
          let cands = List.sort_uniq compare (collect hist.(a)) in
          if List.length cands > 1 then incr ambiguous;
          let to_src = function
            | Some s -> Conflict.Ab s
            | None -> Conflict.Outside
          in
          let predicting =
            List.filter
              (fun src -> Conflict.may_doom graph ~src ~dst:ab)
              (List.map to_src cands)
          in
          (* prefer attributing to a block over outside code *)
          let order = function Conflict.Ab _ -> 0 | Conflict.Outside -> 1 in
          (match List.sort (fun a b -> compare (order a) (order b)) predicting with
          | src :: _ ->
            bump counts (src, ab);
            Hashtbl.replace observed (src, ab) ()
          | [] ->
            let src = to_src (List.hd cands) in
            bump counts (src, ab);
            bump unsound (src, ab))
        | _ -> incr unattributed)
      | _ -> ());
  let dump tbl =
    Hashtbl.fold
      (fun (src, dst) r acc -> { e_src = src; e_dst = dst; e_count = !r } :: acc)
      tbl []
    |> List.sort (fun a b ->
           let c = compare b.e_count a.e_count in
           if c <> 0 then c else compare (a.e_src, a.e_dst) (b.e_src, b.e_dst))
  in
  let static = Conflict.edges graph in
  let observed_static =
    List.length (List.filter (fun e -> Hashtbl.mem observed e) static)
  in
  {
    v_edges = dump counts;
    v_unsound = dump unsound;
    v_conflict_aborts = !conflicts;
    v_unattributed = !unattributed;
    v_ambiguous = !ambiguous;
    v_predicted = List.length static;
    v_observed = observed_static;
  }

let sound t = t.v_unsound = []

let precision t =
  if t.v_predicted = 0 then 1.0
  else float_of_int t.v_observed /. float_of_int t.v_predicted

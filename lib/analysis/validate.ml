open Stx_sim
open Stx_trace

type edge = {
  e_src : Conflict.source;
  e_dst : int;
  e_count : int;
  e_true : int;
  e_false : int;
  e_unknown : int;
}

type t = {
  v_edges : edge list;
  v_unsound : edge list;
  v_conflict_aborts : int;
  v_unattributed : int;
  v_ambiguous : int;
  v_predicted : int;
  v_observed : int;
  v_true_sharing : int;
  v_false_sharing : int;
  v_sharing_unknown : int;
  v_line_unsound : int;
}

let source_label = function
  | Conflict.Ab ab -> Printf.sprintf "ab%d" ab
  | Conflict.Outside -> "outside"

(* Resolve the victim side of a conflict abort to (whole-program node
   ids, field): the event's [conf_pc] is the hardware's truncated tag of
   the victim's FIRST access to the conflicting line, so the unified
   table of the victim's block can map it back to an entry — unless the
   tag is ambiguous (STX105 territory) or the instruction is not a
   table entry. The entry's root-context node translates through
   [Conflict.to_global]; its field comes from the DSA and is stable
   across graph planes (it is fixed by the access instruction itself). *)
let resolve_victim (pipeline : Stx_compiler.Pipeline.t) graph ~ab ~conf_pc =
  match conf_pc with
  | None -> None
  | Some tag -> (
    let table = Stx_compiler.Pipeline.table_for pipeline ~ab in
    if Stx_compiler.Unified.tag_ambiguous table tag then None
    else
      (* The tag names an instruction, not a calling context: one iid can
         appear in several table entries (one per context), each mapping
         the access to a different whole-program node. The dynamic
         instance went through exactly one of them, but the tag cannot
         tell which — union the global ids of every matching entry. The
         field is the same across contexts (fixed by the instruction). *)
      let matching =
        Array.to_list (Stx_compiler.Unified.entries table)
        |> List.filter (fun (e : Stx_compiler.Unified.entry) ->
               Stx_tir.Layout.truncate
                 ~bits:pipeline.Stx_compiler.Pipeline.pc_bits
                 (Stx_tir.Layout.pc_of_iid
                    pipeline.Stx_compiler.Pipeline.layout
                    e.Stx_compiler.Unified.ue_iid)
               = tag)
      in
      match matching with
      | [] -> None
      | e :: _ -> (
        match
          Stx_dsa.Dsa.access_node pipeline.Stx_compiler.Pipeline.dsa
            e.Stx_compiler.Unified.ue_iid
        with
        | None -> None
        | Some (_, field) -> (
          let gids =
            List.concat_map
              (fun (e : Stx_compiler.Unified.entry) ->
                Conflict.to_global graph ~ab e.Stx_compiler.Unified.ue_node)
              matching
            |> List.sort_uniq compare
          in
          match gids with [] -> None | _ -> Some (gids, field))))

let run ?ctx graph trace =
  let nt = Trace.threads trace in
  (* Per thread, newest-first list of (event index, source) transitions:
     [Some ab] while a block's transaction is (re)running, [None] for
     outside code. An aborted attempt keeps its block as a plausible
     source — its speculative accesses may already have doomed someone —
     so only a commit pushes [None]. *)
  let hist = Array.make nt [ (0, None) ] in
  let begin_idx = Array.make nt 0 in
  let counts : (Conflict.source * int, int ref) Hashtbl.t = Hashtbl.create 32 in
  let unsound : (Conflict.source * int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let sharing : (Conflict.source * int, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let observed : (Conflict.source * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> incr r
    | None -> Hashtbl.add tbl key (ref 1)
  in
  let sharing_of key =
    match Hashtbl.find_opt sharing key with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0, ref 0) in
      Hashtbl.add sharing key c;
      c
  in
  let conflicts = ref 0 in
  let unattributed = ref 0 in
  let ambiguous = ref 0 in
  let true_sharing = ref 0 in
  let false_sharing = ref 0 in
  let sharing_unknown = ref 0 in
  let line_unsound = ref 0 in
  (* attribute the abort's line granularity once the (src, dst) edge is
     settled: which predicted line-colliding pair covers the access the
     victim was doomed on? The interval heuristic cannot always tell
     WHICH predicting source doomed the victim, so every predicting
     candidate is tried — the plane is unsound on this abort only when
     none of them covers the access (true wins over false, keeping the
     false-sharing fraction a lower bound). *)
  let classify key ~srcs ~ab ~conf_pc =
    match ctx with
    | None -> ()
    | Some (pipeline, plane) -> (
      let tr, fa, un = sharing_of key in
      match resolve_victim pipeline graph ~ab ~conf_pc with
      | None ->
        incr sharing_unknown;
        incr un
      | Some (gids, field) -> (
        let best =
          List.fold_left
            (fun acc src ->
              match
                Layout.classify_conflict plane ~src ~dst:ab ~gids ~field
              with
              | Layout.Attributed Layout.True_sharing -> `True
              | Layout.Attributed Layout.False_sharing ->
                if acc = `True then `True else `False
              | Layout.Unpredicted -> acc)
            `None srcs
        in
        match best with
        | `True ->
          incr true_sharing;
          incr tr
        | `False ->
          incr false_sharing;
          incr fa
        | `None ->
          incr line_unsound;
          incr un))
  in
  let idx = ref 0 in
  Trace.iter trace (fun ~time:_ ev ->
      let i = !idx in
      incr idx;
      match ev with
      | Machine.Tx_begin { tid; ab; _ } -> (
        match hist.(tid) with
        | (_, Some cur) :: _ when cur = ab ->
          (* retry: the attempt window opened at the first begin *)
          ()
        | _ ->
          begin_idx.(tid) <- i;
          hist.(tid) <- (i, Some ab) :: hist.(tid))
      | Machine.Tx_commit { tid; _ } -> hist.(tid) <- (i, None) :: hist.(tid)
      | Machine.Tx_abort
          { tid; ab; kind = Machine.Conflict; aggressor; conf_pc; _ } -> (
        incr conflicts;
        match aggressor with
        | Some a when a >= 0 && a < nt && a <> tid ->
          (* candidate sources: what the aggressor ran inside the
             victim's attempt window, newest first *)
          let b = begin_idx.(tid) in
          let rec collect = function
            | [] -> []
            | (start, src) :: rest ->
              if start <= b then [ src ] else src :: collect rest
          in
          let cands = List.sort_uniq compare (collect hist.(a)) in
          if List.length cands > 1 then incr ambiguous;
          let to_src = function
            | Some s -> Conflict.Ab s
            | None -> Conflict.Outside
          in
          let predicting =
            List.filter
              (fun src -> Conflict.may_doom graph ~src ~dst:ab)
              (List.map to_src cands)
          in
          (* prefer attributing to a block over outside code *)
          let order = function Conflict.Ab _ -> 0 | Conflict.Outside -> 1 in
          (match List.sort (fun a b -> compare (order a) (order b)) predicting with
          | src :: _ as srcs ->
            bump counts (src, ab);
            Hashtbl.replace observed (src, ab) ();
            classify (src, ab) ~srcs ~ab ~conf_pc
          | [] ->
            let src = to_src (List.hd cands) in
            bump counts (src, ab);
            bump unsound (src, ab))
        | _ -> incr unattributed)
      | _ -> ());
  let dump tbl =
    Hashtbl.fold
      (fun (src, dst) r acc ->
        let tr, fa, un =
          match Hashtbl.find_opt sharing (src, dst) with
          | Some (t, f, u) -> (!t, !f, !u)
          | None -> (0, 0, 0)
        in
        { e_src = src; e_dst = dst; e_count = !r; e_true = tr; e_false = fa;
          e_unknown = un }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           let c = compare b.e_count a.e_count in
           if c <> 0 then c else compare (a.e_src, a.e_dst) (b.e_src, b.e_dst))
  in
  let static = Conflict.edges graph in
  let observed_static =
    List.length (List.filter (fun e -> Hashtbl.mem observed e) static)
  in
  {
    v_edges = dump counts;
    v_unsound = dump unsound;
    v_conflict_aborts = !conflicts;
    v_unattributed = !unattributed;
    v_ambiguous = !ambiguous;
    v_predicted = List.length static;
    v_observed = observed_static;
    v_true_sharing = !true_sharing;
    v_false_sharing = !false_sharing;
    v_sharing_unknown = !sharing_unknown;
    v_line_unsound = !line_unsound;
  }

let sound t = t.v_unsound = []

let line_sound t = t.v_line_unsound = 0

let precision t =
  if t.v_predicted = 0 then 1.0
  else float_of_int t.v_observed /. float_of_int t.v_predicted

let false_sharing_fraction t =
  let attributed = t.v_true_sharing + t.v_false_sharing in
  if attributed = 0 then 0.0
  else float_of_int t.v_false_sharing /. float_of_int attributed

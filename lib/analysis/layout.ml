open Stx_tir
open Stx_dsa

(* The line-granular layout plane. See the interface for the model; the
   ground truth it mirrors is Stx_machine.Alloc with its default
   line-aligned placement: every object starts on a line boundary and is
   padded to a whole number of lines, so intra-object offsets alone
   decide which fields share a hardware line. *)

type placement =
  | Exact of { span : int; line_of_field : int array }
  | Aliased of { reason : string }

type sharing = True_sharing | False_sharing

type pair = {
  p_gid : int;
  p_src_field : int;
  p_dst_field : int;
  p_line : int option;
  p_sharing : sharing;
}

type bound = { lb_min_read : int; lb_min_write : int; lb_aliased : bool }

type t = {
  l_wpl : int;
  l_prog : Ir.program;
  l_dsa : Dsa.t;
  l_conf : Conflict.t;
  l_place : (int, placement) Hashtbl.t; (* gid -> placement (cache) *)
  l_edges : (Conflict.source * int, pair list) Hashtbl.t;
  l_edge_order : (Conflict.source * int) list;
  l_lines : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* gid -> contended lines *)
  l_bounds : bound array; (* per atomic block *)
}

let words_per_line t = t.l_wpl

(* --- the placement model --------------------------------------------- *)

let placement_of_wpl ~words_per_line prog node =
  let n = Dsnode.find node in
  if Dsnode.is_collapsed n then
    Aliased { reason = "collapsed (field-insensitive) node" }
  else
    match Dsnode.ty n with
    | None -> Aliased { reason = "untyped node" }
    | Some sname -> (
      match Ir.find_struct prog sname with
      | exception Not_found -> Aliased { reason = "unknown struct " ^ sname }
      | s ->
        let sz = Types.size s in
        if Dsnode.is_array n && sz mod words_per_line <> 0 then
          Aliased
            {
              reason =
                Printf.sprintf
                  "array of %d-word %s packs elements across line boundaries"
                  sz sname;
            }
        else
          (* a lone struct is padded to a line multiple; an array whose
             stride is a line multiple starts every element on a line
             boundary — either way field offsets map to lines exactly *)
          Exact
            {
              span = Types.lines_spanned ~words_per_line s;
              line_of_field =
                Array.init sz (fun f -> Types.line_of_field ~words_per_line f);
            })

let placement_of_node t node = placement_of_wpl ~words_per_line:t.l_wpl t.l_prog node

let placement t ~gid =
  match Hashtbl.find_opt t.l_place gid with
  | Some p -> Some p
  | None -> (
    match Conflict.node_of_global t.l_conf gid with
    | None -> None
    | Some n ->
      let p = placement_of_node t n in
      Hashtbl.add t.l_place gid p;
      Some p)

let struct_of t ~gid =
  match Conflict.node_of_global t.l_conf gid with
  | None -> None
  | Some n ->
    if Dsnode.is_collapsed n then None
    else (
      match Dsnode.ty n with
      | None -> None
      | Some s -> (
        match Ir.find_struct t.l_prog s with
        | exception Not_found -> None
        | s -> Some s))

(* line class of a field under a placement; None = unresolved (aliased
   placement, or an offset the typed mapping does not cover) *)
let line_class pl f =
  match pl with
  | Aliased _ -> None
  | Exact { line_of_field; _ } ->
    if f >= 0 && f < Array.length line_of_field then Some line_of_field.(f)
    else None

(* --- edge refinement -------------------------------------------------- *)

let compare_pair a b =
  compare
    (a.p_gid, a.p_src_field, a.p_dst_field)
    (b.p_gid, b.p_src_field, b.p_dst_field)

let refine t ~src ~dst =
  let conf = t.l_conf in
  let sr, sw =
    match src with
    | Conflict.Ab i ->
      (Conflict.read_fields conf ~ab:i, Conflict.write_fields conf ~ab:i)
    | Conflict.Outside -> ([], Conflict.outside_write_fields conf)
  in
  let dr = Conflict.read_fields conf ~ab:dst in
  let dw = Conflict.write_fields conf ~ab:dst in
  let acc = Hashtbl.create 16 in
  let consider (g1, f1) (g2, f2) =
    if g1 = g2 then begin
      let pl = placement t ~gid:g1 in
      let collision =
        match pl with
        | None -> None (* the walk never saw the node: claim nothing *)
        | Some pl -> (
          match (line_class pl f1, line_class pl f2) with
          | Some l1, Some l2 -> if l1 = l2 then Some (Some l1) else None
          | _ -> Some None (* unresolved: may share a line *))
      in
      match collision with
      | None -> ()
      | Some line ->
        let s = if f1 = f2 then True_sharing else False_sharing in
        Hashtbl.replace acc (g1, f1, f2)
          { p_gid = g1; p_src_field = f1; p_dst_field = f2; p_line = line;
            p_sharing = s }
    end
  in
  (* a src write collides with dst reads and writes; a src (transactional)
     read only with dst writes — the same role split as the node matrix,
     and like it invariant under the resolution policy *)
  List.iter (fun a -> List.iter (consider a) dr) sw;
  List.iter (fun a -> List.iter (consider a) dw) sw;
  List.iter (fun a -> List.iter (consider a) dw) sr;
  List.sort compare_pair (Hashtbl.fold (fun _ p l -> p :: l) acc [])

let pairs t ~src ~dst =
  match Hashtbl.find_opt t.l_edges (src, dst) with
  | Some ps -> ps
  | None ->
    let ps = refine t ~src ~dst in
    Hashtbl.add t.l_edges (src, dst) ps;
    ps

let edges t = List.map (fun (src, dst) -> (src, dst, pairs t ~src ~dst)) t.l_edge_order

let conflict_lines t ~gid =
  match Hashtbl.find_opt t.l_lines gid with
  | None -> []
  | Some s -> List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) s [])

(* --- capacity lower bounds ------------------------------------------- *)

(* Basic blocks that dominate every reachable [Ret] run to completion on
   every committing execution; their loads/stores (and those of callees
   reached from them, translated into the block's root plane) must land
   in the transaction's read/write sets before commit. Distinct DSNodes
   are disjoint objects and objects are line-aligned, so distinct
   (node, line-class) keys are distinct hardware lines — a sound lower
   bound. Recursion truncates (cycle guard), which only shrinks it. *)
let compute_bound t ~ab =
  let prog = t.l_prog and dsa = t.l_dsa in
  let reads : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let writes : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let read_alias : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let write_alias : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let aliased = ref false in
  let add exact alias n fld =
    let n = Dsnode.find n in
    match placement_of_node t n with
    | Exact { line_of_field; _ } ->
      let f = if fld >= 0 && fld < Array.length line_of_field then fld else 0 in
      Hashtbl.replace exact (Dsnode.id n, line_of_field.(f)) ()
    | Aliased _ ->
      aliased := true;
      Hashtbl.replace alias (Dsnode.id n) ()
  in
  let rec visit fname translate active =
    if List.mem fname active then ()
    else begin
      let f = Ir.find_func prog fname in
      let active = fname :: active in
      let dom = Dom.compute f in
      let rets = ref [] in
      Array.iteri
        (fun bi blk ->
          match blk.Ir.term with
          | Ir.Ret _ when Dom.reachable dom bi -> rets := bi :: !rets
          | _ -> ())
        f.Ir.blocks;
      let must bi =
        !rets <> []
        && Dom.reachable dom bi
        && List.for_all (fun r -> Dom.dominates dom bi r) !rets
      in
      Array.iteri
        (fun bi blk ->
          if must bi then
            Array.iter
              (fun inst ->
                match inst.Ir.op with
                | Ir.Load _ -> (
                  match Dsa.access_node dsa inst.Ir.iid with
                  | Some (n, fld) -> add reads read_alias (translate n) fld
                  | None -> ())
                | Ir.Store _ -> (
                  match Dsa.access_node dsa inst.Ir.iid with
                  | Some (n, fld) -> add writes write_alias (translate n) fld
                  | None -> ())
                | Ir.Call (_, g, _) when Hashtbl.mem prog.Ir.funcs g ->
                  let tr n =
                    translate (Dsa.map_callee_node dsa ~call_iid:inst.Ir.iid n)
                  in
                  visit g tr active
                | Ir.Atomic_call (_, ab', _) ->
                  let g = prog.Ir.atomics.(ab').Ir.ab_func in
                  let tr n =
                    translate (Dsa.map_callee_node dsa ~call_iid:inst.Ir.iid n)
                  in
                  visit g tr active
                | _ -> ())
              blk.Ir.insts)
        f.Ir.blocks
    end
  in
  visit prog.Ir.atomics.(ab).Ir.ab_func Dsnode.find [];
  {
    lb_min_read = Hashtbl.length reads + Hashtbl.length read_alias;
    lb_min_write = Hashtbl.length writes + Hashtbl.length write_alias;
    lb_aliased = !aliased;
  }

let capacity_bound t ~ab = t.l_bounds.(ab)

(* --- dynamic attribution --------------------------------------------- *)

type attribution = Attributed of sharing | Unpredicted

let classify_conflict t ~src ~dst ~gids ~field =
  let ps = pairs t ~src ~dst in
  let relevant p =
    List.mem p.p_gid gids
    &&
    match placement t ~gid:p.p_gid with
    | Some (Exact _ as pl) -> (
      (* the victim's first touch of the conflicting line was [field]:
         any pair whose destination shares that field's line class can
         be the access that actually collided *)
      match (line_class pl field, line_class pl p.p_dst_field) with
      | Some lf, Some ld -> lf = ld
      | _ -> true)
    | Some (Aliased _) | None -> true
  in
  let rel = List.filter relevant ps in
  if rel = [] then Unpredicted
  else if List.exists (fun p -> p.p_sharing = True_sharing) rel then
    Attributed True_sharing
  else Attributed False_sharing

(* --- construction ----------------------------------------------------- *)

let build ?words_per_line prog dsa conf =
  let wpl =
    match words_per_line with
    | Some w ->
      if w <= 0 then invalid_arg "Layout.build: words_per_line must be positive";
      w
    | None -> Stx_machine.Config.default.Stx_machine.Config.words_per_line
  in
  let t =
    {
      l_wpl = wpl;
      l_prog = prog;
      l_dsa = dsa;
      l_conf = conf;
      l_place = Hashtbl.create 32;
      l_edges = Hashtbl.create 32;
      l_edge_order = Conflict.edges conf;
      l_lines = Hashtbl.create 32;
      l_bounds = [||];
    }
  in
  let t =
    { t with
      l_bounds =
        Array.init (Conflict.n_abs conf) (fun ab -> compute_bound t ~ab) }
  in
  (* eager refinement: fills the edge cache and the per-node contended
     lines in one deterministic pass *)
  List.iter
    (fun (src, dst) ->
      List.iter
        (fun p ->
          match p.p_line with
          | None -> ()
          | Some l ->
            let s =
              match Hashtbl.find_opt t.l_lines p.p_gid with
              | Some s -> s
              | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.add t.l_lines p.p_gid s;
                s
            in
            Hashtbl.replace s l ())
        (pairs t ~src ~dst))
    t.l_edge_order;
  t

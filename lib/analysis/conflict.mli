open Stx_tir
open Stx_dsa

(** The static conflict graph over atomic blocks.

    Each atomic block's may-read / may-write summary is lifted from its
    root function's graph plane into a common whole-program plane: a
    depth-first walk from the program's entry functions composes the
    DSA's call-site node mappings (exactly as {!Stx_compiler.Unified}
    does when building anchor tables), translating each block's footprint
    at every [Atomic_call] site it is reached through. Code executed
    outside any atomic block contributes a separate "outside" footprint.

    A directed edge [src -> dst] means a running instance of [src] can
    cause a hardware transaction of block [dst] to abort under the
    chosen conflict-resolution policy. For the default requester-wins
    protocol:

    - a transactional {e write} of [src] dooms any transaction that read
      {e or} wrote the node;
    - a transactional {e read} of [src] dooms any transaction that wrote
      the node;
    - a non-transactional (outside) {e write} dooms readers and writers,
      while outside reads doom nobody.

    Under responder-wins the roles invert ([dst] self-dooms when its own
    request hits [src]'s established footprint) and under timestamp
    either direction can abort [dst] depending on age — but on
    transactional pairs all three formulas compute the {e same} witness
    set (intersection commutes; read/read pairs never conflict), so the
    matrix is resolution-invariant and trace validation stays sound for
    every policy. The outside row is policy-independent outright:
    nontransactional stores win under every resolution.

    Self-edges ([src = dst]) are real: two threads in the same block
    conflict on shared nodes. *)

type t

type source = Ab of int | Outside

val compute :
  ?resolution:Stx_policy.Resolution.t -> Ir.program -> Dsa.t -> Summary.t -> t
(** [resolution] defaults to [Requester_wins] (the paper's hardware). *)

val n_abs : t -> int

val resolution : t -> Stx_policy.Resolution.t
(** The conflict-resolution policy the graph was computed under. *)

val may_doom : t -> src:source -> dst:int -> bool

val witness : t -> src:source -> dst:int -> int list
(** Whole-program node ids both footprints meet on (empty when no
    edge). *)

val edges : t -> (source * int) list
(** Every predicted edge, [Ab] sources first, then [Outside]. *)

val footprint : t -> ab:int -> int * int
(** [(may-read, may-write)] node counts in the whole-program plane. *)

val outside_footprint : t -> int * int

val read_fields : t -> ab:int -> (int * int) list
(** The field-granular may-read footprint of a block: sorted
    [(global node id, field)] pairs in the whole-program plane. Accesses
    to a node that is collapsed {e after} whole-program unification fold
    onto field 0, even when a callee plane still saw it typed. The node
    ids projected from these pairs are exactly the ids {!footprint}
    counts. *)

val write_fields : t -> ab:int -> (int * int) list
(** Field-granular may-write footprint, mirroring {!read_fields}. *)

val outside_read_fields : t -> (int * int) list
(** Field-granular footprint of code outside every atomic block. *)

val outside_write_fields : t -> (int * int) list

val node_of_global : t -> int -> Dsnode.t option
(** A witness {!Dsnode.t} for a whole-program node id seen during the
    walk (its type/shape drives the line-placement model); [None] for an
    id the walk never produced. *)

val to_global : t -> ab:int -> int -> int list
(** The whole-program node ids a block-local node id (a [ue_node] of the
    block's unified table) was translated to — one per call path the
    block is reached through. Empty for an id the walk never saw. *)

val prone : t -> ab:int -> store:bool -> int -> bool
(** Whether an access of the block-local node can be doomed by anyone:
    for a load, some block or outside code may write it; for a store,
    additionally some block may (transactionally) read it. *)

val never_written : t -> ab:int -> int -> bool
(** No block and no outside code ever writes the block-local node — an
    advisory lock guarding it serializes accesses to read-only data. *)

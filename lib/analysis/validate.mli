open Stx_trace

(** Trace-backed validation of the static conflict graph.

    Replays a captured event stream and attributes every dynamic
    conflict abort to the source the aggressor core could have been
    executing when it doomed the victim. The event stream does not
    timestamp the dooming access itself, so attribution works over an
    interval: the candidate sources are everything the aggressor ran —
    atomic blocks and outside code — between the victim's (first) begin
    of the aborted transaction and the abort event. An abort is
    {e predicted} when any candidate source has a static edge to the
    victim's block; it is a {e soundness violation} when none does.

    With a line plane ([ctx]), every predicted abort is additionally
    attributed at line granularity: the event's conflicting-PC tag
    resolves (through the victim block's unified table) to the first
    access the victim made to the conflicting line — unioning the
    whole-program nodes of {e every} table entry the tag matches, since
    the hardware tag names the instruction but not its calling context —
    and {!Layout.classify_conflict} decides whether a predicted
    line-colliding pair covering that access shares the field ({e true
    sharing}) or only the line ({e false sharing}). Because the interval
    heuristic cannot always tell which predicting source doomed the
    victim, every predicting candidate is tried and true sharing wins
    over false (the reported false-sharing fraction is a lower bound).
    An abort whose node-level edge was predicted but whose observed
    field no candidate's line-colliding pair reaches is a {e line-plane
    soundness violation} ([v_line_unsound]).

    Precision is the fraction of predicted static edges that were ever
    observed dynamically. *)

type edge = {
  e_src : Conflict.source;
  e_dst : int;
  e_count : int;
  e_true : int;  (** aborts attributed to same-field (true) sharing *)
  e_false : int;  (** aborts attributed to false sharing *)
  e_unknown : int;
      (** aborts whose victim access did not resolve (no/ambiguous tag)
          or that no line-colliding pair covers *)
}

type t = {
  v_edges : edge list;
      (** observed conflict edges, attributed (descending count) *)
  v_unsound : edge list;  (** observed but not statically predicted *)
  v_conflict_aborts : int;  (** total conflict aborts replayed *)
  v_unattributed : int;  (** conflict aborts with no usable aggressor *)
  v_ambiguous : int;  (** aborts whose attribution had several candidates *)
  v_predicted : int;  (** static edges in the conflict graph *)
  v_observed : int;  (** static edges observed at least once *)
  v_true_sharing : int;  (** predicted aborts attributed to true sharing *)
  v_false_sharing : int;  (** predicted aborts attributed to false sharing *)
  v_sharing_unknown : int;
      (** predicted aborts whose victim access did not resolve to a
          table entry (absent or ambiguous truncated tag) *)
  v_line_unsound : int;
      (** predicted aborts no line-colliding pair covers — zero iff the
          line plane is sound on this trace *)
}

val run : ?ctx:Stx_compiler.Pipeline.t * Layout.t -> Conflict.t -> Trace.t -> t
(** Without [ctx] the sharing counters stay zero (node-level validation
    only, the seed behaviour). *)

val sound : t -> bool
(** No dynamic conflict edge escaped the static graph. *)

val line_sound : t -> bool
(** Every resolved dynamic conflict was covered by a predicted
    line-colliding pair ([v_line_unsound = 0]). *)

val precision : t -> float
(** [v_observed / v_predicted]; [1.0] when nothing was predicted. *)

val false_sharing_fraction : t -> float
(** [v_false_sharing / (v_true_sharing + v_false_sharing)]; [0.0] when
    nothing was attributed at line granularity. *)

val source_label : Conflict.source -> string
(** ["ab3"] or ["outside"]. *)

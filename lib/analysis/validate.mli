open Stx_trace

(** Trace-backed validation of the static conflict graph.

    Replays a captured event stream and attributes every dynamic
    conflict abort to the source the aggressor core could have been
    executing when it doomed the victim. The event stream does not
    timestamp the dooming access itself, so attribution works over an
    interval: the candidate sources are everything the aggressor ran —
    atomic blocks and outside code — between the victim's (first) begin
    of the aborted transaction and the abort event. An abort is
    {e predicted} when any candidate source has a static edge to the
    victim's block; it is a {e soundness violation} when none does.

    Precision is the fraction of predicted static edges that were ever
    observed dynamically. *)

type edge = { e_src : Conflict.source; e_dst : int; e_count : int }

type t = {
  v_edges : edge list;
      (** observed conflict edges, attributed (descending count) *)
  v_unsound : edge list;  (** observed but not statically predicted *)
  v_conflict_aborts : int;  (** total conflict aborts replayed *)
  v_unattributed : int;  (** conflict aborts with no usable aggressor *)
  v_ambiguous : int;  (** aborts whose attribution had several candidates *)
  v_predicted : int;  (** static edges in the conflict graph *)
  v_observed : int;  (** static edges observed at least once *)
}

val run : Conflict.t -> Trace.t -> t

val sound : t -> bool
(** No dynamic conflict edge escaped the static graph. *)

val precision : t -> float
(** [v_observed / v_predicted]; [1.0] when nothing was predicted. *)

val source_label : Conflict.source -> string
(** ["ab3"] or ["outside"]. *)

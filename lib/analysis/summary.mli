open Stx_tir
open Stx_dsa

(** Bottom-up interprocedural may-read / may-write summaries.

    One summary per function: the set of DSNodes any execution of the
    function may load from or store to, including everything its callees
    (direct and atomic) may access, each callee contribution translated
    into the caller's points-to graph along the call-site node mappings
    the bottom-up DSA recorded. Summaries are computed in the same
    callees-first SCC order as the DSA itself ({!Stx_dsa.Dsa.call_sccs}),
    iterating recursive components to a fixpoint.

    Node sets are keyed by representative node id; for a function [f] the
    ids live in [f]'s own graph plane, so the summary of an atomic root
    is directly comparable with the [ue_node] ids of that block's
    {!Stx_compiler.Unified} table. *)

type fsum = {
  s_reads : (int, Dsnode.t) Hashtbl.t;  (** node id -> node, may-load *)
  s_writes : (int, Dsnode.t) Hashtbl.t;  (** node id -> node, may-store *)
  s_read_fields : (int * int, Dsnode.t * int) Hashtbl.t;
      (** (node id, field) -> witness — the field-granular refinement of
          [s_reads]; accesses to a collapsed node fold onto field 0 *)
  s_write_fields : (int * int, Dsnode.t * int) Hashtbl.t;
      (** field-granular refinement of [s_writes] *)
  mutable s_allocates : bool;
      (** an [Alloc]/[Alloc_arr] is reachable (counts as a write for
          read-only classification, mirroring [Pipeline]) *)
  mutable s_unknown_writes : bool;
      (** a reachable store the DSA did not classify — forces the
          function out of the read-only class conservatively *)
}

type t

val compute : Ir.program -> Dsa.t -> t
(** Summaries for every function of the program. *)

val find : t -> string -> fsum
(** @raise Not_found for a function the program does not define. *)

val may_write : t -> string -> bool
(** The function (or a callee) may store, allocate, or perform an
    unclassified write — i.e. it is {e not} read-only. *)

val reads : fsum -> Dsnode.t list
val writes : fsum -> Dsnode.t list

val read_fields : fsum -> (Dsnode.t * int) list
(** May-load (node, field) pairs; a collapsed node appears as field 0.
    The node set projected from these pairs equals {!reads}. *)

val write_fields : fsum -> (Dsnode.t * int) list
(** May-store (node, field) pairs, mirroring {!read_fields}. *)

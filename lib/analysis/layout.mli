open Stx_tir
open Stx_dsa

(** The line-granular layout plane: a lowering of per-atomic-block field
    footprints through the allocator's placement model onto concrete
    cache-line sets.

    The static conflict graph ({!Conflict}) predicts edges at DSNode
    granularity, but the hardware detects conflicts at {e cache-line}
    granularity: two transactions touching {e distinct} fields of one
    object still collide when the fields share a line. This module
    refines every node-level conflict edge into a set of field {!pair}s
    and classifies each pair as {e true sharing} (same field) or
    {e false sharing} (distinct fields, same line) — the input to the
    STX106/STX108 lints and to the trace validator's abort attribution.

    The placement model mirrors {!Stx_machine.Alloc} exactly: with the
    default line-aligned allocator every object starts on a line boundary
    and is padded to a whole number of lines, so field [f] of a struct
    lands on intra-object line [f / words_per_line] ({!Exact}); arrays
    whose element stride is a multiple of the line size behave per
    element the same way; packed arrays (stride not a line multiple),
    collapsed nodes and untyped nodes give up field→line resolution
    ({!Aliased} — any two fields may share a line, which keeps every
    classification conservative rather than wrong).

    The same machinery yields a sound {e lower} bound on the distinct
    lines a completing execution of each block must touch
    ({!capacity_bound}, the STX107 input): accesses in basic blocks that
    dominate every reachable [Ret] of the block's root function (and of
    callees reached from such blocks) must execute before commit;
    distinct DSNodes are disjoint line-aligned objects, so distinct
    [(node, line-class)] pairs are distinct hardware lines. *)

type placement =
  | Exact of { span : int; line_of_field : int array }
      (** Instances are line-aligned and occupy [span] lines; field [f]
          lives on intra-object line [line_of_field.(f)]. For an array
          node the mapping is per element. *)
  | Aliased of { reason : string }
      (** No field→line resolution (collapsed / untyped / packed array):
          assume any two fields may share a line. *)

type sharing =
  | True_sharing  (** same field — a genuine data conflict *)
  | False_sharing
      (** distinct fields on one line — an artifact of line-granular
          detection that padding could remove *)

type pair = {
  p_gid : int;  (** whole-program node id both sides touch *)
  p_src_field : int;
  p_dst_field : int;
  p_line : int option;
      (** the shared intra-object line class ([Exact] placement);
          [None] when the node's placement is [Aliased] *)
  p_sharing : sharing;
}

type bound = {
  lb_min_read : int;
      (** distinct lines every completing execution must load *)
  lb_min_write : int;  (** distinct lines it must store *)
  lb_aliased : bool;
      (** an [Aliased]-placement node contributed (counted as one line,
          so the bound is weaker but still sound) *)
}

type t

val build : ?words_per_line:int -> Ir.program -> Dsa.t -> Conflict.t -> t
(** Eagerly refines every edge of the conflict graph and bounds every
    block. [words_per_line] defaults to the Table 2 machine's
    ({!Stx_machine.Config.default}). *)

val words_per_line : t -> int

val placement : t -> gid:int -> placement option
(** Placement of a whole-program node id; [None] for an id the conflict
    walk never produced. *)

val placement_of_node : t -> Dsnode.t -> placement
(** The placement model applied directly to a node (any graph plane) —
    what {!placement} caches per global id. *)

val struct_of : t -> gid:int -> Types.strct option
(** The struct type behind a global node id, when it resolves to one the
    program defines (for diagnostics: field names, offsets). *)

val pairs : t -> src:Conflict.source -> dst:int -> pair list
(** The line-level refinement of a node-level edge: every
    line-colliding field pair, sorted by [(gid, src_field, dst_field)].
    Empty both for absent node-level edges and for node-level edges
    whose fields never share a line — the refinement may {e drop}
    edges. *)

val edges : t -> (Conflict.source * int * pair list) list
(** Every node-level edge with its refinement, in {!Conflict.edges}
    order (including edges whose refinement is empty). *)

val conflict_lines : t -> gid:int -> int list
(** The distinct intra-object line classes of [Exact]-placement nodes
    that carry at least one conflicting pair, across every edge — the
    contended lines of the object (sorted). Empty for [Aliased]
    placements. *)

val capacity_bound : t -> ab:int -> bound
(** The must-execute line-footprint lower bound of a block. A
    transaction can commit with exactly [budget] distinct lines in a
    set, so the block {e always} overflows a [bounded:R:W] policy iff
    [lb_min_read > R] or [lb_min_write > W]. *)

type attribution =
  | Attributed of sharing
      (** a predicted line-colliding pair covers the observed access *)
  | Unpredicted
      (** the node-level edge exists but no line-colliding pair reaches
          the observed field's line — a line-plane soundness violation
          if it ever happens on a dynamic edge *)

val classify_conflict :
  t -> src:Conflict.source -> dst:int -> gids:int list -> field:int
  -> attribution
(** Attribute a dynamic conflict abort: the victim's first access to the
    conflicting line resolved to block-local node → [gids] (its
    whole-program ids, one per call path, via {!Conflict.to_global}) and
    [field]. A pair is relevant when it lives on one of [gids] and its
    destination field shares the observed field's line class (any pair,
    for [Aliased] placements). True sharing wins over false when both
    are relevant, keeping the reported false-sharing fraction a lower
    bound. *)

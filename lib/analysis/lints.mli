open Stx_compiler

(** The five lints over a compiled program. Each returns its diagnostics
    unsorted; {!all} concatenates and sorts them. *)

val missed_anchor_entries :
  instrumented:bool ->
  ab:int ->
  is_store:(int -> bool) ->
  prone:(store:bool -> int -> bool) ->
  Unified.entry array ->
  Diag.t list
(** Core of the missed-anchor lint over a bare entry array (exposed so
    tests can fabricate tables): every entry whose block-local node is
    conflict-prone must resolve — itself or through its pioneer — to an
    anchor, and on an instrumented program that anchor must carry an ALP
    site. [STX101], error. *)

val missed_anchor : Pipeline.t -> Conflict.t -> Diag.t list

val dead_alp : Pipeline.t -> Conflict.t -> Diag.t list
(** Anchors guarding nodes nothing in the program ever writes: their
    advisory locks serialize read-only data and are pure overhead.
    [STX102], warning. *)

val lock_order : Pipeline.t -> Conflict.t -> Diag.t list
(** Cycles in the anchored-node acquisition order across atomic blocks
    (table order approximates execution order). The simulated runtime
    holds at most one advisory lock per attempt, so a cycle cannot
    deadlock it, but it convoys and would deadlock any runtime that
    stacks ALP locks. Resolution-aware via [Conflict.resolution]: a
    warning under requester-wins and responder-wins (whose mutual dooms
    can repeat indefinitely), downgraded to info under timestamp karma
    (the oldest transaction always progresses, so the cycle cannot
    livelock the hardware path). [STX103]. *)

val read_only : ?claimed:bool array -> Pipeline.t -> Summary.t -> Diag.t list
(** Cross-check the pipeline's per-block read-only classification
    against the may-write summaries. A block claimed read-only that may
    write is unsound (error); the reverse is pessimization (warning).
    [claimed] overrides [Pipeline.read_only] (for tests). [STX104]. *)

val truncated_pc : Pipeline.t -> Diag.t list
(** Unified-table tags where several distinct instruction PCs fold onto
    one hardware tag, so [search_by_truncated_pc] can return the wrong
    entry. [STX105], warning. *)

val all : Pipeline.t -> Summary.t -> Conflict.t -> Diag.t list

open Stx_compiler

(** The lints over a compiled program (STX101–STX105 on the node-level
    conflict graph, STX106–STX110 on the line-granular {!Layout} plane).
    Each returns its diagnostics unsorted; {!all} concatenates and sorts
    them. *)

val missed_anchor_entries :
  instrumented:bool ->
  ab:int ->
  is_store:(int -> bool) ->
  prone:(store:bool -> int -> bool) ->
  Unified.entry array ->
  Diag.t list
(** Core of the missed-anchor lint over a bare entry array (exposed so
    tests can fabricate tables): every entry whose block-local node is
    conflict-prone must resolve — itself or through its pioneer — to an
    anchor, and on an instrumented program that anchor must carry an ALP
    site. [STX101], error. *)

val missed_anchor : Pipeline.t -> Conflict.t -> Diag.t list

val dead_alp : Pipeline.t -> Conflict.t -> Diag.t list
(** Anchors guarding nodes nothing in the program ever writes: their
    advisory locks serialize read-only data and are pure overhead.
    [STX102], warning. *)

val lock_order : Pipeline.t -> Conflict.t -> Diag.t list
(** Cycles in the anchored-node acquisition order across atomic blocks
    (table order approximates execution order). The simulated runtime
    holds at most one advisory lock per attempt, so a cycle cannot
    deadlock it, but it convoys and would deadlock any runtime that
    stacks ALP locks. Resolution-aware via [Conflict.resolution]: a
    warning under requester-wins and responder-wins (whose mutual dooms
    can repeat indefinitely), downgraded to info under timestamp karma
    (the oldest transaction always progresses, so the cycle cannot
    livelock the hardware path). [STX103]. *)

val read_only : ?claimed:bool array -> Pipeline.t -> Summary.t -> Diag.t list
(** Cross-check the pipeline's per-block read-only classification
    against the may-write summaries. A block claimed read-only that may
    write is unsound (error); the reverse is pessimization (warning).
    [claimed] overrides [Pipeline.read_only] (for tests). [STX104]. *)

val truncated_pc : Pipeline.t -> Diag.t list
(** Unified-table tags where several distinct instruction PCs fold onto
    one hardware tag, so [search_by_truncated_pc] can return the wrong
    entry. [STX105], warning. *)

val false_sharing : Pipeline.t -> Layout.t -> Diag.t list
(** Distinct fields of one object placed on one cache line and touched
    by opposite sides of a conflict edge: the hardware collides
    transactions that never touch the same data. One diagnostic per
    [(node, line, field pair)], naming the witnessing edges. Only
    [Exact]-placement witnesses are reported (an aliased placement
    cannot name a concrete shared line). [STX106], warning. *)

val capacity_overflow :
  capacity:Stx_policy.Capacity.t -> Pipeline.t -> Layout.t -> Diag.t list
(** Per-block must-execute line footprints checked against a
    [bounded:R:W] capacity policy: a block whose sound lower bound
    already exceeds a budget {e always} aborts with [Capacity] and can
    only complete through the fallback (error); a bound exactly at a
    budget leaves no headroom (info). Empty under [Unbounded].
    [STX107]. *)

val padding_fixit : Pipeline.t -> Layout.t -> Diag.t list
(** The fix-it companion of {!false_sharing}: for each falsely-shared
    field pair, the smallest padding that moves the later field onto its
    own line. [STX108], info. *)

val stripe_aliasing :
  ?nslots:int -> ?min_aborts:int -> Stx_trace.Trace.t -> Diag.t list
(** Trace-backed: hot conflicting cache lines (at least [min_aborts]
    conflict aborts each, default 1) that hash onto the same STM
    write-lock stripe ({!Stx_stm.Stm.stripe_of_line}; [nslots] defaults
    to the tier's 256). Software-tier traffic on any of them locks and
    versions the same stripe, so validation aborts cross between
    unrelated lines. [STX109], warning. *)

val anchor_span : Pipeline.t -> Conflict.t -> Layout.t -> Diag.t list
(** Anchors whose guarded node spans several lines of which only some
    carry conflicting fields: the advisory lock serializes uncontended
    lines of every instance. [STX110], info. *)

val all :
  ?capacity:Stx_policy.Capacity.t -> ?plane:Layout.t -> Pipeline.t
  -> Summary.t -> Conflict.t -> Diag.t list
(** Every static lint. The line plane is built on demand when [plane]
    is not supplied; STX107 runs only when [capacity] is given (the
    budget to check against); the trace-backed {!stripe_aliasing} is
    not included — it needs a trace. *)

(** Diagnostics: stable codes, severities, and renderers.

    Codes are append-only and never recycled:

    - [STX101] (error) — conflict-prone access with no anchor coverage
    - [STX102] (warning) — advisory lock over never-written data
    - [STX103] (warning) — lock-order hazard between anchored nodes
    - [STX104] (error/warning) — read-only classification disagreement
    - [STX105] (warning) — truncated-PC tag collision in a unified table *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable machine code, e.g. ["STX101"] *)
  severity : severity;
  ab : int option;  (** atomic block concerned *)
  func : string option;  (** function of the offending instruction *)
  iid : int option;  (** offending instruction *)
  message : string;  (** single line, human-oriented *)
}

val make :
  ?ab:int -> ?func:string -> ?iid:int -> code:string -> severity:severity
  -> string -> t

val severity_label : severity -> string

val sort : t list -> t list
(** Errors first, then warnings, then infos; within a severity by code,
    block, function and instruction. *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val render_text : t -> string
(** One line: [error[STX101] ab=1 list_insert#37: message]. *)

val tsv_header : string

val render_tsv : t -> string
(** Tab-separated [severity code ab func iid message], missing fields as
    [-]; messages never contain tabs or newlines. *)

(** Diagnostics: stable codes, severities, and renderers.

    Codes are append-only and never recycled:

    - [STX101] (error) — conflict-prone access with no anchor coverage
    - [STX102] (warning) — advisory lock over never-written data
    - [STX103] (warning) — lock-order hazard between anchored nodes
    - [STX104] (error/warning) — read-only classification disagreement
    - [STX105] (warning) — truncated-PC tag collision in a unified table
    - [STX106] (warning) — false sharing: distinct hot fields on one line
    - [STX107] (error/info) — static capacity-overflow prediction against
      a [bounded:R:W] budget (error when the minimal line footprint
      already exceeds it)
    - [STX108] (info) — padding/coloring fix-it separating an STX106 pair
    - [STX109] (warning) — distinct hot lines aliasing onto one STM
      write-lock stripe
    - [STX110] (info) — advisory-lock anchor whose node spans lines never
      co-accessed with the conflicting field *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable machine code, e.g. ["STX101"] *)
  severity : severity;
  ab : int option;  (** atomic block concerned *)
  func : string option;  (** function of the offending instruction *)
  iid : int option;  (** offending instruction *)
  message : string;  (** single line, human-oriented *)
}

val make :
  ?ab:int -> ?func:string -> ?iid:int -> code:string -> severity:severity
  -> string -> t

val severity_label : severity -> string

val sort : t list -> t list
(** Errors first, then warnings, then infos; within a severity by code,
    block, function, instruction and message. The sort is stable, so the
    full ordering is deterministic for any input order. *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val render_text : t -> string
(** One line: [error[STX101] ab=1 list_insert#37: message]. Embedded
    tabs/newlines in the message render as spaces. *)

val tsv_header : string

val tsv_escape : string -> string
(** The escaping {!render_tsv} applies to free-form cells — tabs,
    newlines and backslashes become [\t], [\n], [\r], [\\] — exposed so
    other TSV emitters (e.g. [stx_repro profile --format tsv]) share one
    convention. *)

val render_tsv : t -> string
(** Tab-separated [severity code ab func iid message], missing fields as
    [-]. Tabs, newlines and backslashes embedded in the message are
    escaped ([\t], [\n], [\r], [\\]) so a row is always exactly one line
    of exactly six cells. *)

(* bind the analysis-side line plane before [open Stx_tir] shadows the
   short name with the PC-assignment Layout of the IR *)
module Lplane = Layout

open Stx_tir
open Stx_compiler

(* iid -> is-store, over the whole (instrumented) program *)
let store_map prog =
  let m = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ f ->
      Ir.iter_insts f (fun _ _ inst ->
          match inst.Ir.op with
          | Ir.Load _ -> Hashtbl.replace m inst.Ir.iid false
          | Ir.Store _ -> Hashtbl.replace m inst.Ir.iid true
          | _ -> ()))
    prog.Ir.funcs;
  m

(* ---------------------------------------------------------------- *)
(* STX101: conflict-prone access without anchor coverage             *)

let missed_anchor_entries ~instrumented ~ab ~is_store ~prone entries =
  let resolve (e : Unified.entry) =
    if e.Unified.ue_is_anchor then Some e
    else
      match e.Unified.ue_pioneer with
      | Some p -> Some entries.(p)
      | None -> None
  in
  Array.to_list entries
  |> List.concat_map (fun (e : Unified.entry) ->
         let store = is_store e.Unified.ue_iid in
         if not (prone ~store e.Unified.ue_node) then []
         else
           match resolve e with
           | None ->
             [
               Diag.make ~ab ~func:e.Unified.ue_func ~iid:e.Unified.ue_iid
                 ~code:"STX101" ~severity:Diag.Error
                 (Printf.sprintf
                    "conflict-prone %s of node %d reaches no anchor in its \
                     unified table"
                    (if store then "store" else "load")
                    e.Unified.ue_node);
             ]
           | Some a when instrumented && a.Unified.ue_site = None ->
             [
               Diag.make ~ab ~func:e.Unified.ue_func ~iid:e.Unified.ue_iid
                 ~code:"STX101" ~severity:Diag.Error
                 (Printf.sprintf
                    "conflict-prone %s of node %d resolves to anchor %s#%d \
                     which has no ALP site"
                    (if store then "store" else "load")
                    e.Unified.ue_node a.Unified.ue_func a.Unified.ue_iid);
             ]
           | Some _ -> [])

let missed_anchor (p : Pipeline.t) graph =
  let stores = store_map p.Pipeline.prog in
  let is_store iid = try Hashtbl.find stores iid with Not_found -> false in
  Array.to_list p.Pipeline.unified
  |> List.concat_map (fun table ->
         let ab = Unified.ab_id table in
         missed_anchor_entries ~instrumented:p.Pipeline.instrumented ~ab
           ~is_store
           ~prone:(fun ~store lid -> Conflict.prone graph ~ab ~store lid)
           (Unified.entries table))

(* ---------------------------------------------------------------- *)
(* STX102: advisory lock over never-written data                     *)

let dead_alp (p : Pipeline.t) graph =
  Array.to_list p.Pipeline.unified
  |> List.concat_map (fun table ->
         let ab = Unified.ab_id table in
         Array.to_list (Unified.entries table)
         |> List.concat_map (fun (e : Unified.entry) ->
                if
                  e.Unified.ue_is_anchor
                  && Conflict.never_written graph ~ab e.Unified.ue_node
                then
                  let site =
                    match e.Unified.ue_site with
                    | Some s -> Printf.sprintf " (ALP site %d)" s
                    | None -> ""
                  in
                  [
                    Diag.make ~ab ~func:e.Unified.ue_func
                      ~iid:e.Unified.ue_iid ~code:"STX102"
                      ~severity:Diag.Warning
                      (Printf.sprintf
                         "anchor%s guards node %d which nothing ever \
                          writes; its advisory lock only serializes \
                          read-only data"
                         site e.Unified.ue_node);
                  ]
                else []))

(* ---------------------------------------------------------------- *)
(* STX103: lock-order hazard                                         *)

(* Tarjan over an int-keyed adjacency table; returns SCCs of size >= 2. *)
let sccs_of adj =
  let index = Hashtbl.create 16 in
  let low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace low v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (try !(Hashtbl.find adj v) with Not_found -> []);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      if List.length comp >= 2 then out := List.sort compare comp :: !out
    end
  in
  Hashtbl.iter (fun v _ -> if not (Hashtbl.mem index v) then strongconnect v) adj;
  List.rev !out

let lock_order (p : Pipeline.t) graph =
  let adj : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let edge_abs : (int * int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_edge ab x y =
    let l =
      match Hashtbl.find_opt adj x with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add adj x l;
        l
    in
    if not (List.mem y !l) then l := y :: !l;
    if not (Hashtbl.mem adj y) then Hashtbl.add adj y (ref []);
    let abs =
      match Hashtbl.find_opt edge_abs (x, y) with
      | Some a -> a
      | None ->
        let a = ref [] in
        Hashtbl.add edge_abs (x, y) a;
        a
    in
    if not (List.mem ab !abs) then abs := ab :: !abs
  in
  Array.iter
    (fun table ->
      let ab = Unified.ab_id table in
      let anchors =
        Array.to_list (Unified.entries table)
        |> List.filter (fun (e : Unified.entry) -> e.Unified.ue_is_anchor)
      in
      let globals (e : Unified.entry) =
        Conflict.to_global graph ~ab e.Unified.ue_node
      in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              List.iter
                (fun ga ->
                  List.iter
                    (fun gb -> if ga <> gb then add_edge ab ga gb)
                    (globals b))
                (globals a))
            rest;
          pairs rest
      in
      pairs anchors)
    p.Pipeline.unified;
  (* the hazard's weight depends on the conflict-resolution policy the
     graph was computed under: requester-wins and responder-wins both
     allow the blocks of a cycle to doom each other (or themselves)
     indefinitely, while timestamp karma bounds the damage — the oldest
     transaction always progresses — so the cycle convoys but cannot
     livelock the hardware path *)
  let severity, hazard =
    match Conflict.resolution graph with
    | Stx_policy.Resolution.Requester_wins ->
      ( Diag.Warning,
        "convoy hazard (deadlock under a runtime that stacks ALP locks)" )
    | Stx_policy.Resolution.Responder_wins ->
      ( Diag.Warning,
        "convoy hazard (deadlock under a runtime that stacks ALP locks; \
         under responder-wins a requester that hits a held node suicides \
         instead of clearing it, compounding the convoy)" )
    | Stx_policy.Resolution.Timestamp ->
      ( Diag.Info,
        "convoy hazard (deadlock under a runtime that stacks ALP locks; \
         timestamp resolution bounds the livelock — the oldest \
         transaction always progresses)" )
  in
  sccs_of adj
  |> List.map (fun comp ->
         let in_comp g = List.mem g comp in
         let abs =
           Hashtbl.fold
             (fun (x, y) abs acc ->
               if in_comp x && in_comp y then !abs @ acc else acc)
             edge_abs []
           |> List.sort_uniq compare
         in
         Diag.make ~code:"STX103" ~severity
           (Printf.sprintf
              "anchored nodes {%s} are acquired in conflicting orders by \
               atomic blocks {%s}: %s"
              (String.concat "," (List.map string_of_int comp))
              (String.concat "," (List.map string_of_int abs))
              hazard))

(* ---------------------------------------------------------------- *)
(* STX104: read-only classification disagreement                     *)

let read_only ?claimed (p : Pipeline.t) sums =
  let claimed = match claimed with Some c -> c | None -> p.Pipeline.read_only in
  let prog = p.Pipeline.prog in
  Array.to_list prog.Ir.atomics
  |> List.concat_map (fun (a : Ir.atomic) ->
         let ab = a.Ir.ab_id in
         let f = a.Ir.ab_func in
         let ro = not (Summary.may_write sums f) in
         match (claimed.(ab), ro) with
         | true, false ->
           [
             Diag.make ~ab ~func:f ~code:"STX104" ~severity:Diag.Error
               (Printf.sprintf
                  "block '%s' is classified read-only but its may-write \
                   summary is non-empty: the runtime would skip conflict \
                   precautions unsoundly"
                  a.Ir.ab_name);
           ]
         | false, true ->
           [
             Diag.make ~ab ~func:f ~code:"STX104" ~severity:Diag.Warning
               (Printf.sprintf
                  "block '%s' never writes by its may-write summary but is \
                   not classified read-only (missed optimization)"
                  a.Ir.ab_name);
           ]
         | _ -> [])

(* ---------------------------------------------------------------- *)
(* STX105: truncated-PC tag collisions                               *)

let truncated_pc (p : Pipeline.t) =
  let pc_of iid =
    try Some (Layout.pc_of_iid p.Pipeline.layout iid) with Not_found -> None
  in
  Array.to_list p.Pipeline.unified
  |> List.concat_map (fun table ->
         let ab = Unified.ab_id table in
         let entries = Unified.entries table in
         Unified.collisions table
         |> List.map (fun (tag, ids) ->
                let describe id =
                  let e = entries.(id) in
                  match pc_of e.Unified.ue_iid with
                  | Some pc ->
                    Printf.sprintf "%d(%s#%d@0x%x)" id e.Unified.ue_func
                      e.Unified.ue_iid pc
                  | None ->
                    Printf.sprintf "%d(%s#%d)" id e.Unified.ue_func
                      e.Unified.ue_iid
                in
                Diag.make ~ab ~code:"STX105" ~severity:Diag.Warning
                  (Printf.sprintf
                     "truncated-PC tag 0x%03x is shared by entries %s; \
                      hardware lookups silently resolve to entry %s"
                     tag
                     (String.concat " " (List.map describe ids))
                     (describe (List.hd ids)))))

(* ---------------------------------------------------------------- *)
(* STX106/STX108: false sharing and its padding fix-it               *)

let src_label prog = function
  | Conflict.Ab i -> Printf.sprintf "'%s'" prog.Ir.atomics.(i).Ir.ab_name
  | Conflict.Outside -> "outside code"

let dst_label prog dst = Printf.sprintf "'%s'" prog.Ir.atomics.(dst).Ir.ab_name

let node_name plane gid =
  match Lplane.struct_of plane ~gid with
  | Some s -> Printf.sprintf "struct %s (node %d)" s.Types.sname gid
  | None -> Printf.sprintf "node %d" gid

let field_name plane gid f =
  match Lplane.struct_of plane ~gid with
  | Some s when f >= 0 && f < Types.size s ->
    Printf.sprintf "'%s' (word %d)" (Types.field s f).Types.fname f
  | _ -> Printf.sprintf "field %d" f

(* every false-sharing witness with an exact line: (gid, line, fa, fb)
   with fa < fb, plus the conflict edges it appears on, in first-seen
   (edge-order) order *)
let false_pairs plane =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (src, dst, prs) ->
      List.iter
        (fun pr ->
          match (pr.Lplane.p_line, pr.Lplane.p_sharing) with
          | Some line, Lplane.False_sharing ->
            let fa = min pr.Lplane.p_src_field pr.Lplane.p_dst_field in
            let fb = max pr.Lplane.p_src_field pr.Lplane.p_dst_field in
            let key = (pr.Lplane.p_gid, line, fa, fb) in
            (match Hashtbl.find_opt tbl key with
            | Some ws -> if not (List.mem (src, dst) !ws) then ws := (src, dst) :: !ws
            | None ->
              Hashtbl.add tbl key (ref [ (src, dst) ]);
              order := key :: !order)
          | _ -> ())
        prs)
    (Lplane.edges plane);
  List.rev_map
    (fun ((gid, line, fa, fb) as key) ->
      (gid, line, fa, fb, List.rev !(Hashtbl.find tbl key)))
    !order
  |> List.rev

let false_sharing (p : Pipeline.t) plane =
  let prog = p.Pipeline.prog in
  false_pairs plane
  |> List.map (fun (gid, line, fa, fb, witnesses) ->
         let edges_s =
           witnesses
           |> List.map (fun (src, dst) ->
                  Printf.sprintf "%s->%s" (src_label prog src)
                    (dst_label prog dst))
           |> List.sort_uniq compare |> String.concat ", "
         in
         Diag.make ~code:"STX106" ~severity:Diag.Warning
           (Printf.sprintf
              "distinct fields %s and %s of %s share cache line %d of \
               every instance; conflicting accesses (%s) collide without \
               touching the same data (false sharing)"
              (field_name plane gid fa) (field_name plane gid fb)
              (node_name plane gid) line edges_s))

let padding_fixit (_p : Pipeline.t) plane =
  let w = Lplane.words_per_line plane in
  (* one fix-it per (gid, field pair); the shared line is a function of
     the pair, so dropping it from the key only merges duplicates *)
  let seen = Hashtbl.create 16 in
  false_pairs plane
  |> List.concat_map (fun (gid, line, fa, fb, _) ->
         if Hashtbl.mem seen (gid, fa, fb) then []
         else begin
           Hashtbl.add seen (gid, fa, fb) ();
           let pad = w - (fb mod w) in
           [
             Diag.make ~code:"STX108" ~severity:Diag.Info
               (Printf.sprintf
                  "inserting %d pad word%s before field %s of %s moves it \
                   off line %d and onto its own line, separating it from \
                   %s (fix for the STX106 pair)"
                  pad
                  (if pad = 1 then "" else "s")
                  (field_name plane gid fb) (node_name plane gid) line
                  (field_name plane gid fa));
           ]
         end)

(* ---------------------------------------------------------------- *)
(* STX107: static capacity-overflow prediction                       *)

let capacity_overflow ~capacity (p : Pipeline.t) plane =
  match capacity with
  | Stx_policy.Capacity.Unbounded -> []
  | Stx_policy.Capacity.Bounded { read_lines; write_lines } ->
    Array.to_list p.Pipeline.prog.Ir.atomics
    |> List.concat_map (fun (a : Ir.atomic) ->
           let ab = a.Ir.ab_id in
           let b = Lplane.capacity_bound plane ~ab in
           let weak = if b.Lplane.lb_aliased then
               " (a lower bound: some accessed nodes have unresolved line \
                placement)" else "" in
           if
             b.Lplane.lb_min_read > read_lines
             || b.Lplane.lb_min_write > write_lines
           then
             [
               Diag.make ~ab ~func:a.Ir.ab_func ~code:"STX107"
                 ~severity:Diag.Error
                 (Printf.sprintf
                    "block '%s' always overflows bounded:%d:%d capacity: \
                     every committing execution loads >=%d and stores \
                     >=%d distinct lines%s; its transactions can only \
                     complete through the fallback"
                    a.Ir.ab_name read_lines write_lines b.Lplane.lb_min_read
                    b.Lplane.lb_min_write weak);
             ]
           else if
             (b.Lplane.lb_min_read = read_lines && read_lines > 0)
             || (b.Lplane.lb_min_write = write_lines && write_lines > 0)
           then
             [
               Diag.make ~ab ~func:a.Ir.ab_func ~code:"STX107"
                 ~severity:Diag.Info
                 (Printf.sprintf
                    "block '%s' has no capacity headroom under \
                     bounded:%d:%d: its must-execute footprint already \
                     loads %d and stores %d distinct lines%s; one more \
                     distinct line in a set aborts with Capacity"
                    a.Ir.ab_name read_lines write_lines b.Lplane.lb_min_read
                    b.Lplane.lb_min_write weak);
             ]
           else [])

(* ---------------------------------------------------------------- *)
(* STX109: STM write-lock stripe aliasing (trace-backed)             *)

let stripe_aliasing ?(nslots = 256) ?(min_aborts = 1) tr =
  let at = Stx_trace.Trace.abort_attribution tr in
  let groups : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (line, n) ->
      if n >= min_aborts then begin
        let s = Stx_stm.Stm.stripe_of_line ~nslots ~line in
        match Hashtbl.find_opt groups s with
        | Some l -> l := (line, n) :: !l
        | None -> Hashtbl.add groups s (ref [ (line, n) ])
      end)
    at.Stx_trace.Trace.by_line;
  Hashtbl.fold
    (fun stripe lines acc ->
      if List.length !lines >= 2 then (stripe, List.sort compare !lines) :: acc
      else acc)
    groups []
  |> List.sort compare
  |> List.map (fun (stripe, lines) ->
         let describe (line, n) = Printf.sprintf "%d (%d aborts)" line n in
         Diag.make ~code:"STX109" ~severity:Diag.Warning
           (Printf.sprintf
              "hot cache lines %s alias onto STM write-lock stripe %d/%d: \
               software-tier commits on any of them lock and version the \
               same stripe, so validation aborts cross between unrelated \
               lines"
              (String.concat ", " (List.map describe lines))
              stripe nslots))

(* ---------------------------------------------------------------- *)
(* STX110: anchor-span waste                                         *)

let anchor_span (p : Pipeline.t) graph plane =
  let seen = Hashtbl.create 16 in
  Array.to_list p.Pipeline.unified
  |> List.concat_map (fun table ->
         let ab = Unified.ab_id table in
         Array.to_list (Unified.entries table)
         |> List.concat_map (fun (e : Unified.entry) ->
                if not e.Unified.ue_is_anchor then []
                else
                  Conflict.to_global graph ~ab e.Unified.ue_node
                  |> List.concat_map (fun gid ->
                         if Hashtbl.mem seen (ab, e.Unified.ue_iid, gid) then
                           []
                         else begin
                           Hashtbl.add seen (ab, e.Unified.ue_iid, gid) ();
                           match Lplane.placement plane ~gid with
                           | Some (Lplane.Exact { span; _ }) when span > 1
                             -> (
                             match Lplane.conflict_lines plane ~gid with
                             | [] -> []
                             | contended
                               when List.length contended < span ->
                               let waste = span - List.length contended in
                               [
                                 Diag.make ~ab ~func:e.Unified.ue_func
                                   ~iid:e.Unified.ue_iid ~code:"STX110"
                                   ~severity:Diag.Info
                                   (Printf.sprintf
                                      "anchor guards %s spanning %d lines \
                                       while only line%s %s carr%s \
                                       conflicting fields; its advisory \
                                       lock serializes %d uncontended \
                                       line%s of every instance"
                                      (node_name plane gid) span
                                      (if List.length contended = 1 then ""
                                       else "s")
                                      (String.concat ","
                                         (List.map string_of_int contended))
                                      (if List.length contended = 1 then
                                         "ies"
                                       else "y")
                                      waste
                                      (if waste = 1 then "" else "s"));
                               ]
                             | _ -> [])
                           | _ -> []
                         end)))

let all ?capacity ?plane p sums graph =
  let plane =
    match plane with
    | Some pl -> pl
    | None -> Lplane.build p.Pipeline.prog p.Pipeline.dsa graph
  in
  let cap =
    match capacity with
    | None -> []
    | Some c -> capacity_overflow ~capacity:c p plane
  in
  Diag.sort
    (missed_anchor p graph @ dead_alp p graph @ lock_order p graph
   @ read_only p sums @ truncated_pc p @ false_sharing p plane @ cap
   @ padding_fixit p plane @ anchor_span p graph plane)

open Stx_tir
open Stx_dsa

type fsum = {
  s_reads : (int, Dsnode.t) Hashtbl.t;
  s_writes : (int, Dsnode.t) Hashtbl.t;
  s_read_fields : (int * int, Dsnode.t * int) Hashtbl.t;
  s_write_fields : (int * int, Dsnode.t * int) Hashtbl.t;
  mutable s_allocates : bool;
  mutable s_unknown_writes : bool;
}

type t = (string, fsum) Hashtbl.t

let fresh () =
  {
    s_reads = Hashtbl.create 8;
    s_writes = Hashtbl.create 8;
    s_read_fields = Hashtbl.create 8;
    s_write_fields = Hashtbl.create 8;
    s_allocates = false;
    s_unknown_writes = false;
  }

let add set node =
  let n = Dsnode.find node in
  Hashtbl.replace set (Dsnode.id n) n

(* A collapsed node has lost its field structure: every access folds onto
   field 0, matching how the DSA reports [access_node] on such nodes. *)
let add_field set node field =
  let n = Dsnode.find node in
  let f = if Dsnode.is_collapsed n then 0 else field in
  Hashtbl.replace set (Dsnode.id n, f) (n, f)

(* Snapshot before inserting: a self-recursive call absorbs a summary into
   itself, and adding to a hashtable mid-[iter] is unspecified. *)
let nodes set = Hashtbl.fold (fun _ n acc -> n :: acc) set []

let field_entries set = Hashtbl.fold (fun _ nf acc -> nf :: acc) set []

let size s =
  Hashtbl.length s.s_reads + Hashtbl.length s.s_writes
  + Hashtbl.length s.s_read_fields
  + Hashtbl.length s.s_write_fields
  + (if s.s_allocates then 1 else 0)
  + if s.s_unknown_writes then 1 else 0

let compute prog dsa =
  let sums : t = Hashtbl.create 16 in
  let get f =
    match Hashtbl.find_opt sums f with
    | Some s -> s
    | None ->
      let s = fresh () in
      Hashtbl.add sums f s;
      s
  in
  let absorb ~call_iid callee self =
    let c = get callee in
    let tr n = Dsa.map_callee_node dsa ~call_iid n in
    List.iter (fun n -> add self.s_reads (tr n)) (nodes c.s_reads);
    List.iter (fun n -> add self.s_writes (tr n)) (nodes c.s_writes);
    List.iter
      (fun (n, f) -> add_field self.s_read_fields (tr n) f)
      (field_entries c.s_read_fields);
    List.iter
      (fun (n, f) -> add_field self.s_write_fields (tr n) f)
      (field_entries c.s_write_fields);
    if c.s_allocates then self.s_allocates <- true;
    if c.s_unknown_writes then self.s_unknown_writes <- true
  in
  let transfer fname =
    let f = Ir.find_func prog fname in
    let self = get fname in
    Ir.iter_insts f (fun _ _ inst ->
        match inst.Ir.op with
        | Ir.Load _ -> (
          match Dsa.access_node dsa inst.Ir.iid with
          | Some (n, fld) ->
            add self.s_reads n;
            add_field self.s_read_fields n fld
          | None -> ())
        | Ir.Store _ -> (
          match Dsa.access_node dsa inst.Ir.iid with
          | Some (n, fld) ->
            add self.s_writes n;
            add_field self.s_write_fields n fld
          | None -> self.s_unknown_writes <- true)
        | Ir.Alloc _ | Ir.Alloc_arr _ -> self.s_allocates <- true
        | Ir.Call (_, g, _) when Hashtbl.mem prog.Ir.funcs g ->
          absorb ~call_iid:inst.Ir.iid g self
        | Ir.Atomic_call (_, ab, _) ->
          absorb ~call_iid:inst.Ir.iid prog.Ir.atomics.(ab).Ir.ab_func self
        | _ -> ())
  in
  List.iter
    (fun scc ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun fname ->
            let before = size (get fname) in
            transfer fname;
            if size (get fname) <> before then changed := true)
          scc
      done)
    (Dsa.call_sccs prog);
  sums

let find t f = Hashtbl.find t f

let may_write t f =
  match Hashtbl.find_opt t f with
  | None -> true
  | Some s ->
    Hashtbl.length s.s_writes > 0 || s.s_allocates || s.s_unknown_writes

let reads s = nodes s.s_reads
let writes s = nodes s.s_writes
let read_fields s = field_entries s.s_read_fields
let write_fields s = field_entries s.s_write_fields

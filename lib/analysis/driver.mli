open Stx_compiler
open Stx_trace

(** One-call entry point: run the whole static analysis over a compiled
    program and render the results. *)

type t = {
  a_name : string;
  a_pipeline : Pipeline.t;
  a_summary : Summary.t;
  a_graph : Conflict.t;
  a_plane : Layout.t;  (** the line-granular layout plane *)
  a_capacity : Stx_policy.Capacity.t option;
      (** the capacity budget STX107 was checked against, if any *)
  a_diags : Diag.t list;  (** sorted: errors first *)
}

type format = Text | Tsv

val analyze :
  ?name:string ->
  ?resolution:Stx_policy.Resolution.t ->
  ?capacity:Stx_policy.Capacity.t ->
  ?words_per_line:int ->
  Pipeline.t ->
  t
(** Summaries, conflict graph, line plane, and all lints. [resolution]
    (default [Requester_wins]) selects the conflict-resolution policy
    the graph — and the resolution-aware STX103 lint — are computed
    under. [capacity] enables the STX107 capacity-overflow prediction
    against that budget (omitted: no STX107 diagnostics).
    [words_per_line] overrides the machine line geometry the plane is
    lowered to (default {!Stx_machine.Config.default}). Also re-verifies
    the instrumented program ({!Stx_tir.Verify.program}), so a compiler
    pass that broke the IR fails here rather than in the simulator. *)

val has_errors : t -> bool

val render : ?format:format -> t -> string
(** [Text]: a report with per-block footprints, the conflict matrix and
    the diagnostics. [Tsv]: one machine-readable row per diagnostic,
    prefixed by the analysis name, with a header line. *)

val render_layout : ?format:format -> t -> string
(** The line-granular section: per-block must-execute line-footprint
    lower bounds (and the budget they were checked against, when
    [analyze] got a bounded [capacity]) plus the line-level refinement
    of every conflict edge — how many field pairs actually collide on a
    line, split into true and false sharing, with edges the refinement
    discharged entirely called out. [Tsv]: [bound] rows
    ([name bound ab - min_read min_write aliased]) and [lineedge] rows
    ([name lineedge src dst pairs true false]). *)

val validate : t -> Trace.t -> Validate.t
(** Runs {!Validate.run} with this analysis' pipeline and line plane as
    context, so every predicted abort is also attributed to true or
    false sharing. *)

val render_validation : ?format:format -> t -> Validate.t -> string
(** [Text]: observed/unsound edge listing (each edge annotated with its
    true/false/unresolved sharing split), the line-attribution summary
    with the false-sharing fraction and line-soundness verdict, plus
    the precision summary. [Tsv]:
    [name edge src dst count predicted true false unresolved] rows
    followed by [precision] and [sharing] summary rows. *)

open Stx_compiler
open Stx_trace

(** One-call entry point: run the whole static analysis over a compiled
    program and render the results. *)

type t = {
  a_name : string;
  a_pipeline : Pipeline.t;
  a_summary : Summary.t;
  a_graph : Conflict.t;
  a_diags : Diag.t list;  (** sorted: errors first *)
}

type format = Text | Tsv

val analyze : ?name:string -> ?resolution:Stx_policy.Resolution.t -> Pipeline.t -> t
(** Summaries, conflict graph, and all five lints. [resolution] (default
    [Requester_wins]) selects the conflict-resolution policy the graph —
    and the resolution-aware STX103 lint — are computed under. Also
    re-verifies the instrumented program ({!Stx_tir.Verify.program}), so
    a compiler pass that broke the IR fails here rather than in the
    simulator. *)

val has_errors : t -> bool

val render : ?format:format -> t -> string
(** [Text]: a report with per-block footprints, the conflict matrix and
    the diagnostics. [Tsv]: one machine-readable row per diagnostic,
    prefixed by the analysis name, with a header line. *)

val validate : t -> Trace.t -> Validate.t

val render_validation : ?format:format -> t -> Validate.t -> string
(** [Text]: observed/unsound edge listing plus the precision summary.
    [Tsv]: [name edge src dst count predicted] rows. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  ab : int option;
  func : string option;
  iid : int option;
  message : string;
}

let make ?ab ?func ?iid ~code ~severity message =
  { code; severity; ab; func; iid; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_diag a b =
  let c = compare (rank a.severity) (rank b.severity) in
  if c <> 0 then c
  else
    let c = compare a.code b.code in
    if c <> 0 then c
    else
      let c = compare a.ab b.ab in
      if c <> 0 then c
      else
        let c = compare a.func b.func in
        if c <> 0 then c
        else
          let c = compare a.iid b.iid in
          if c <> 0 then c else compare a.message b.message

(* stable: equal-keyed diagnostics keep their emission order, so renders
   can never flake on a sort-implementation detail *)
let sort l = List.stable_sort compare_diag l

let count sev l = List.length (List.filter (fun d -> d.severity = sev) l)
let has_errors l = List.exists (fun d -> d.severity = Error) l

let one_line s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let render_text d =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (severity_label d.severity);
  Buffer.add_char buf '[';
  Buffer.add_string buf d.code;
  Buffer.add_char buf ']';
  (match d.ab with
  | Some ab -> Buffer.add_string buf (Printf.sprintf " ab=%d" ab)
  | None -> ());
  (match (d.func, d.iid) with
  | Some f, Some i -> Buffer.add_string buf (Printf.sprintf " %s#%d" f i)
  | Some f, None -> Buffer.add_string buf (" " ^ f)
  | None, Some i -> Buffer.add_string buf (Printf.sprintf " #%d" i)
  | None, None -> ());
  Buffer.add_string buf ": ";
  Buffer.add_string buf (one_line d.message);
  Buffer.contents buf

let tsv_header = "severity\tcode\tab\tfunc\tiid\tmessage"

let opt_int = function Some i -> string_of_int i | None -> "-"
let opt_str = function Some s -> s | None -> "-"

(* a message is arbitrary text; the TSV cell must survive embedded field
   and record separators losslessly *)
let tsv_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_tsv d =
  String.concat "\t"
    [
      severity_label d.severity;
      d.code;
      opt_int d.ab;
      opt_str d.func;
      opt_int d.iid;
      tsv_escape d.message;
    ]

open Stx_machine

type abort_reason =
  | Conflict of {
      conf_addr : int;
      conf_pc : int option;
      conf_pc_full : int option;
      aggressor : int;
    }
  | Lock_subscription
  | Explicit

type status = Idle | Active | Doomed of abort_reason

type core_state = {
  mutable st : status;
  read_set : (int, unit) Hashtbl.t; (* lines *)
  write_set : (int, unit) Hashtbl.t;
  tags : (int, int) Hashtbl.t; (* line -> full pc of first tx access *)
  wbuf : (int, int) Hashtbl.t; (* addr -> speculative value *)
  mutable last_rset : int; (* set sizes when speculative state was *)
  mutable last_wset : int; (* last discarded (commit or doom) *)
}

type t = {
  cfg : Config.t;
  memory : Memory.t;
  cores : core_state array;
  readers : (int, int) Hashtbl.t; (* line -> bitmask of reader cores *)
  writers : (int, int) Hashtbl.t;
  lock_addr : int;
  mutable conflicts : int;
}

let create (cfg : Config.t) memory alloc =
  if cfg.Config.cores > 62 then invalid_arg "Htm.create: at most 62 cores";
  let mk _ =
    {
      st = Idle;
      read_set = Hashtbl.create 64;
      write_set = Hashtbl.create 64;
      tags = Hashtbl.create 64;
      wbuf = Hashtbl.create 64;
      last_rset = 0;
      last_wset = 0;
    }
  in
  let lock_addr = Alloc.alloc_shared alloc 1 in
  {
    cfg;
    memory;
    cores = Array.init cfg.Config.cores mk;
    readers = Hashtbl.create 1024;
    writers = Hashtbl.create 1024;
    lock_addr;
    conflicts = 0;
  }

let config t = t.cfg

let line_of t addr = Memory.line_of ~words_per_line:t.cfg.Config.words_per_line addr

let status t ~core = t.cores.(core).st

let mask_find tbl line = Option.value ~default:0 (Hashtbl.find_opt tbl line)

let mask_set tbl line core =
  Hashtbl.replace tbl line (mask_find tbl line lor (1 lsl core))

let mask_clear tbl line core =
  let m = mask_find tbl line land lnot (1 lsl core) in
  if m = 0 then Hashtbl.remove tbl line else Hashtbl.replace tbl line m

let discard_speculative t core =
  let c = t.cores.(core) in
  c.last_rset <- Hashtbl.length c.read_set;
  c.last_wset <- Hashtbl.length c.write_set;
  Hashtbl.iter (fun line () -> mask_clear t.readers line core) c.read_set;
  Hashtbl.iter (fun line () -> mask_clear t.writers line core) c.write_set;
  Hashtbl.reset c.read_set;
  Hashtbl.reset c.write_set;
  Hashtbl.reset c.tags;
  Hashtbl.reset c.wbuf

(* requester-wins: doom the victim, delivering the conflicting address, the
   victim's own PC tag for the line, and the aggressor (requester) core *)
let doom t ~requester ~victim ~conf_addr =
  let c = t.cores.(victim) in
  match c.st with
  | Active ->
    let line = line_of t conf_addr in
    let full = Hashtbl.find_opt c.tags line in
    let conf_pc =
      if t.cfg.Config.pc_tag_bits <= 0 then None
      else
        Option.map
          (fun pc ->
            if t.cfg.Config.pc_tag_bits >= 62 then pc
            else pc land ((1 lsl t.cfg.Config.pc_tag_bits) - 1))
          full
    in
    discard_speculative t victim;
    (* [conf_pc_full] is a simulator oracle used only to score the runtime's
       anchor identification (the "Accuracy" column of Table 3); the modelled
       hardware delivers only the truncated [conf_pc]. *)
    c.st <-
      Doomed (Conflict { conf_addr; conf_pc; conf_pc_full = full; aggressor = requester });
    t.conflicts <- t.conflicts + 1
  | Idle | Doomed _ -> ()

let doom_mask t ~requester ~mask ~conf_addr =
  let mask = mask land lnot (1 lsl requester) in
  if mask <> 0 then
    for v = 0 to Array.length t.cores - 1 do
      if mask land (1 lsl v) <> 0 then doom t ~requester ~victim:v ~conf_addr
    done

let require_active t core op =
  match t.cores.(core).st with
  | Active -> ()
  | Idle | Doomed _ ->
    invalid_arg (Printf.sprintf "Htm.%s: core %d has no active transaction" op core)

let tx_begin t ~core =
  let c = t.cores.(core) in
  (match c.st with
  | Idle -> ()
  | Active | Doomed _ -> invalid_arg "Htm.tx_begin: transaction already in flight");
  c.st <- Active

let tag_first_access c line pc =
  if not (Hashtbl.mem c.tags line) then Hashtbl.add c.tags line pc

let tx_load t ~core ~addr ~pc =
  require_active t core "tx_load";
  let c = t.cores.(core) in
  let line = line_of t addr in
  if not t.cfg.Config.lazy_htm then
    doom_mask t ~requester:core ~mask:(mask_find t.writers line) ~conf_addr:addr;
  tag_first_access c line pc;
  if not (Hashtbl.mem c.read_set line) then begin
    Hashtbl.add c.read_set line ();
    mask_set t.readers line core
  end;
  match Hashtbl.find_opt c.wbuf addr with
  | Some v -> v
  | None -> Memory.load t.memory addr

let tx_store t ~core ~addr ~value ~pc =
  require_active t core "tx_store";
  let c = t.cores.(core) in
  let line = line_of t addr in
  if not t.cfg.Config.lazy_htm then
    doom_mask t ~requester:core
      ~mask:(mask_find t.readers line lor mask_find t.writers line)
      ~conf_addr:addr;
  tag_first_access c line pc;
  if not (Hashtbl.mem c.write_set line) then begin
    Hashtbl.add c.write_set line ();
    mask_set t.writers line core
  end;
  Hashtbl.replace c.wbuf addr value

let tx_commit t ~core =
  require_active t core "tx_commit";
  let c = t.cores.(core) in
  (* late subscription to the global lock *)
  if Memory.load t.memory t.lock_addr <> 0 then begin
    discard_speculative t core;
    c.st <- Doomed Lock_subscription;
    false
  end
  else begin
    (* lazy mode: the committer wins — every transaction that read or
       wrote a line this write set touches is doomed now, at commit time *)
    if t.cfg.Config.lazy_htm then
      Hashtbl.iter
        (fun line () ->
          doom_mask t ~requester:core
            ~mask:(mask_find t.readers line lor mask_find t.writers line)
            ~conf_addr:(line * t.cfg.Config.words_per_line))
        c.write_set;
    Hashtbl.iter (fun addr v -> Memory.store t.memory addr v) c.wbuf;
    discard_speculative t core;
    c.st <- Idle;
    true
  end

let tx_self_abort t ~core =
  require_active t core "tx_self_abort";
  discard_speculative t core;
  t.cores.(core).st <- Doomed Explicit

let tx_cleanup t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Doomed reason ->
    (* speculative state was discarded when the transaction was doomed *)
    c.st <- Idle;
    reason
  | Idle | Active -> invalid_arg "Htm.tx_cleanup: transaction not doomed"

let read_set_size t ~core = Hashtbl.length t.cores.(core).read_set
let write_set_size t ~core = Hashtbl.length t.cores.(core).write_set

let last_set_sizes t ~core =
  let c = t.cores.(core) in
  (c.last_rset, c.last_wset)

let nt_load t ~addr = Memory.load t.memory addr

let nt_store t ~core ~addr ~value =
  let line = line_of t addr in
  doom_mask t ~requester:core
    ~mask:(mask_find t.readers line lor mask_find t.writers line)
    ~conf_addr:addr;
  Memory.store t.memory addr value

let nt_cas t ~core ~addr ~expected ~desired =
  if Memory.load t.memory addr = expected then begin
    nt_store t ~core ~addr ~value:desired;
    true
  end
  else false

let global_lock_addr t = t.lock_addr
let global_lock_held t = Memory.load t.memory t.lock_addr <> 0

let acquire_global_lock t ~core =
  nt_cas t ~core ~addr:t.lock_addr ~expected:0 ~desired:1

let release_global_lock t = Memory.store t.memory t.lock_addr 0

let conflicts_caused t = t.conflicts

open Stx_machine

type abort_reason =
  | Conflict of {
      conf_addr : int;
      conf_pc : int option;
      conf_pc_full : int option;
      aggressor : int;
    }
  | Lock_subscription
  | Capacity
  | Explicit
  | Stm_conflict of { conf_addr : int; aggressor : int }

type status = Idle | Active | Doomed of abort_reason

type core_state = {
  mutable st : status;
  read_set : (int, unit) Hashtbl.t; (* lines *)
  write_set : (int, unit) Hashtbl.t;
  tags : (int, int) Hashtbl.t; (* line -> full pc of first tx access *)
  wbuf : (int, int) Hashtbl.t; (* addr -> speculative value *)
  mutable last_rset : int; (* set sizes when speculative state was *)
  mutable last_wset : int; (* last discarded (commit or doom) *)
  mutable ts : int; (* begin timestamp (karma); 0 = never begun *)
}

type t = {
  cfg : Config.t;
  policy : Stx_policy.t;
  memory : Memory.t;
  cores : core_state array;
  readers : (int, int) Hashtbl.t; (* line -> bitmask of reader cores *)
  writers : (int, int) Hashtbl.t;
  lock_addr : int;
  mutable conflicts : int;
  mutable ts_counter : int;
  mutable on_publish : (line:int -> unit) option;
}

let create ?(policy = Stx_policy.default) (cfg : Config.t) memory alloc =
  if cfg.Config.cores > 62 then invalid_arg "Htm.create: at most 62 cores";
  let mk _ =
    {
      st = Idle;
      read_set = Hashtbl.create 64;
      write_set = Hashtbl.create 64;
      tags = Hashtbl.create 64;
      wbuf = Hashtbl.create 64;
      last_rset = 0;
      last_wset = 0;
      ts = 0;
    }
  in
  let lock_addr = Alloc.alloc_shared alloc 1 in
  {
    cfg;
    policy;
    memory;
    cores = Array.init cfg.Config.cores mk;
    readers = Hashtbl.create 1024;
    writers = Hashtbl.create 1024;
    lock_addr;
    conflicts = 0;
    ts_counter = 0;
    on_publish = None;
  }

let set_on_publish t f = t.on_publish <- f

let note_publish t line =
  match t.on_publish with Some f -> f ~line | None -> ()

let config t = t.cfg
let policy t = t.policy

let line_of t addr = Memory.line_of ~words_per_line:t.cfg.Config.words_per_line addr

let status t ~core = t.cores.(core).st

let mask_find tbl line = Option.value ~default:0 (Hashtbl.find_opt tbl line)

let mask_set tbl line core =
  Hashtbl.replace tbl line (mask_find tbl line lor (1 lsl core))

let mask_clear tbl line core =
  let m = mask_find tbl line land lnot (1 lsl core) in
  if m = 0 then Hashtbl.remove tbl line else Hashtbl.replace tbl line m

let discard_speculative t core =
  let c = t.cores.(core) in
  c.last_rset <- Hashtbl.length c.read_set;
  c.last_wset <- Hashtbl.length c.write_set;
  Hashtbl.iter (fun line () -> mask_clear t.readers line core) c.read_set;
  Hashtbl.iter (fun line () -> mask_clear t.writers line core) c.write_set;
  Hashtbl.reset c.read_set;
  Hashtbl.reset c.write_set;
  Hashtbl.reset c.tags;
  Hashtbl.reset c.wbuf

let truncate_pc t pc =
  if t.cfg.Config.pc_tag_bits >= 62 then pc
  else pc land ((1 lsl t.cfg.Config.pc_tag_bits) - 1)

(* requester-wins: doom the victim, delivering the conflicting address, the
   victim's own PC tag for the line, and the aggressor (requester) core *)
let doom t ~requester ~victim ~conf_addr =
  let c = t.cores.(victim) in
  match c.st with
  | Active ->
    let line = line_of t conf_addr in
    let full = Hashtbl.find_opt c.tags line in
    let conf_pc =
      if t.cfg.Config.pc_tag_bits <= 0 then None
      else Option.map (truncate_pc t) full
    in
    discard_speculative t victim;
    (* [conf_pc_full] is a simulator oracle used only to score the runtime's
       anchor identification (the "Accuracy" column of Table 3); the modelled
       hardware delivers only the truncated [conf_pc]. *)
    c.st <-
      Doomed (Conflict { conf_addr; conf_pc; conf_pc_full = full; aggressor = requester });
    t.conflicts <- t.conflicts + 1
  | Idle | Doomed _ -> ()

let doom_mask t ~requester ~mask ~conf_addr =
  let mask = mask land lnot (1 lsl requester) in
  if mask <> 0 then
    for v = 0 to Array.length t.cores - 1 do
      if mask land (1 lsl v) <> 0 then doom t ~requester ~victim:v ~conf_addr
    done

(* suicide: the requester dooms itself, naming the (surviving) responder as
   the aggressor. [full_pc] is the requester's own PC for the access (or its
   first-access tag for the line, at lazy commit). *)
let self_doom t ~core ~conf_addr ~full_pc ~aggressor =
  let c = t.cores.(core) in
  let conf_pc =
    if t.cfg.Config.pc_tag_bits <= 0 then None
    else Option.map (truncate_pc t) full_pc
  in
  discard_speculative t core;
  c.st <-
    Doomed (Conflict { conf_addr; conf_pc; conf_pc_full = full_pc; aggressor });
  t.conflicts <- t.conflicts + 1

let lowest_core mask =
  let rec go v = if mask land (1 lsl v) <> 0 then v else go (v + 1) in
  go 0

(* the oldest opponent in [mask] that outranks the requester's timestamp
   (smaller = older = wins), if any *)
let older_opponent t ~core mask =
  let my_ts = t.cores.(core).ts in
  let best = ref None in
  for v = 0 to Array.length t.cores - 1 do
    if mask land (1 lsl v) <> 0 then begin
      let ts = t.cores.(v).ts in
      if ts < my_ts then
        match !best with
        | Some (bts, _) when bts <= ts -> ()
        | _ -> best := Some (ts, v)
    end
  done;
  Option.map snd !best

(* Resolve a conflict between a speculative requester on [core] and the
   transactions in [mask] (every core in the readers/writers masks is
   [Active]: doomed and committed cores leave the masks when their
   speculative state is discarded). Returns [true] when the requester
   survives and the access may proceed. *)
let resolve t ~core ~conf_addr ~full_pc ~mask =
  let mask = mask land lnot (1 lsl core) in
  if mask = 0 then true
  else
    match t.policy.Stx_policy.resolution with
    | Stx_policy.Resolution.Requester_wins ->
      for v = 0 to Array.length t.cores - 1 do
        if mask land (1 lsl v) <> 0 then doom t ~requester:core ~victim:v ~conf_addr
      done;
      true
    | Stx_policy.Resolution.Responder_wins ->
      self_doom t ~core ~conf_addr ~full_pc ~aggressor:(lowest_core mask);
      false
    | Stx_policy.Resolution.Timestamp -> (
      match older_opponent t ~core mask with
      | Some v ->
        self_doom t ~core ~conf_addr ~full_pc ~aggressor:v;
        false
      | None ->
        for v = 0 to Array.length t.cores - 1 do
          if mask land (1 lsl v) <> 0 then doom t ~requester:core ~victim:v ~conf_addr
        done;
        true)

(* The transaction tried to grow a set past its budget: discard, then patch
   the captured sizes to include the line that did not fit — so the abort
   event reports the footprint at the moment the budget was exceeded rather
   than the post-reset 0/0. *)
let capacity_doom t ~core ~read =
  let c = t.cores.(core) in
  discard_speculative t core;
  if read then c.last_rset <- c.last_rset + 1 else c.last_wset <- c.last_wset + 1;
  c.st <- Doomed Capacity

let read_budget t =
  match t.policy.Stx_policy.capacity with
  | Stx_policy.Capacity.Unbounded -> max_int
  | Stx_policy.Capacity.Bounded { read_lines; _ } -> read_lines

let write_budget t =
  match t.policy.Stx_policy.capacity with
  | Stx_policy.Capacity.Unbounded -> max_int
  | Stx_policy.Capacity.Bounded { write_lines; _ } -> write_lines

let require_active t core op =
  match t.cores.(core).st with
  | Active -> ()
  | Idle | Doomed _ ->
    invalid_arg (Printf.sprintf "Htm.%s: core %d has no active transaction" op core)

let tx_begin ?(fresh = true) t ~core =
  let c = t.cores.(core) in
  (match c.st with
  | Idle -> ()
  | Active | Doomed _ -> invalid_arg "Htm.tx_begin: transaction already in flight");
  if fresh || c.ts = 0 then begin
    t.ts_counter <- t.ts_counter + 1;
    c.ts <- t.ts_counter
  end;
  c.st <- Active

let tag_first_access c line pc =
  if not (Hashtbl.mem c.tags line) then Hashtbl.add c.tags line pc

let tx_load t ~core ~addr ~pc =
  require_active t core "tx_load";
  let c = t.cores.(core) in
  let line = line_of t addr in
  let survived =
    t.cfg.Config.lazy_htm
    || resolve t ~core ~conf_addr:addr ~full_pc:(Some pc)
         ~mask:(mask_find t.writers line)
  in
  if not survived then
    (* self-doomed: the speculative state (including the write buffer) is
       gone; hand back committed memory, the value is dead anyway *)
    Memory.load t.memory addr
  else if Hashtbl.mem c.read_set line then begin
    tag_first_access c line pc;
    match Hashtbl.find_opt c.wbuf addr with
    | Some v -> v
    | None -> Memory.load t.memory addr
  end
  else if Hashtbl.length c.read_set >= read_budget t then begin
    capacity_doom t ~core ~read:true;
    Memory.load t.memory addr
  end
  else begin
    tag_first_access c line pc;
    Hashtbl.add c.read_set line ();
    mask_set t.readers line core;
    match Hashtbl.find_opt c.wbuf addr with
    | Some v -> v
    | None -> Memory.load t.memory addr
  end

let tx_store t ~core ~addr ~value ~pc =
  require_active t core "tx_store";
  let c = t.cores.(core) in
  let line = line_of t addr in
  let survived =
    t.cfg.Config.lazy_htm
    || resolve t ~core ~conf_addr:addr ~full_pc:(Some pc)
         ~mask:(mask_find t.readers line lor mask_find t.writers line)
  in
  if not survived then ()
  else if Hashtbl.mem c.write_set line then begin
    tag_first_access c line pc;
    Hashtbl.replace c.wbuf addr value
  end
  else if Hashtbl.length c.write_set >= write_budget t then
    capacity_doom t ~core ~read:false
  else begin
    tag_first_access c line pc;
    Hashtbl.add c.write_set line ();
    mask_set t.writers line core;
    Hashtbl.replace c.wbuf addr value
  end

let tx_commit t ~core =
  require_active t core "tx_commit";
  let c = t.cores.(core) in
  (* late subscription to the global lock *)
  if Memory.load t.memory t.lock_addr <> 0 then begin
    discard_speculative t core;
    c.st <- Doomed Lock_subscription;
    false
  end
  else begin
    (* lazy mode: conflicts surface at commit time — under requester-wins
       the committer dooms every transaction that touched a line this write
       set covers; under the other policies the committer itself may lose
       (so snapshot the lines first: a self-doom resets the set mid-walk) *)
    if t.cfg.Config.lazy_htm then begin
      match t.policy.Stx_policy.resolution with
      | Stx_policy.Resolution.Requester_wins ->
        Hashtbl.iter
          (fun line () ->
            doom_mask t ~requester:core
              ~mask:(mask_find t.readers line lor mask_find t.writers line)
              ~conf_addr:(line * t.cfg.Config.words_per_line))
          c.write_set
      | Stx_policy.Resolution.Responder_wins | Stx_policy.Resolution.Timestamp
        ->
        let lines = Hashtbl.fold (fun l () acc -> l :: acc) c.write_set [] in
        List.iter
          (fun line ->
            if c.st = Active then
              ignore
                (resolve t ~core
                   ~conf_addr:(line * t.cfg.Config.words_per_line)
                   ~full_pc:(Hashtbl.find_opt c.tags line)
                   ~mask:
                     (mask_find t.readers line lor mask_find t.writers line)))
          lines
    end;
    if c.st <> Active then false
    else begin
      Hashtbl.iter (fun addr v -> Memory.store t.memory addr v) c.wbuf;
      (* published lines are visible to the software tier too: bump their
         STM version words so a software reader that raced this commit
         fails validation instead of observing a torn snapshot *)
      Hashtbl.iter (fun line () -> note_publish t line) c.write_set;
      discard_speculative t core;
      c.st <- Idle;
      true
    end
  end

let tx_self_abort t ~core =
  require_active t core "tx_self_abort";
  discard_speculative t core;
  t.cores.(core).st <- Doomed Explicit

let tx_cleanup t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Doomed reason ->
    (* speculative state was discarded when the transaction was doomed *)
    c.st <- Idle;
    reason
  | Idle | Active -> invalid_arg "Htm.tx_cleanup: transaction not doomed"

let read_set_size t ~core = Hashtbl.length t.cores.(core).read_set
let write_set_size t ~core = Hashtbl.length t.cores.(core).write_set

let last_set_sizes t ~core =
  let c = t.cores.(core) in
  (c.last_rset, c.last_wset)

let nt_load t ~addr = Memory.load t.memory addr

(* a nontransactional store cannot be rolled back, so it wins under every
   resolution policy — like any nonspeculative agent's write *)
let nt_store t ~core ~addr ~value =
  let line = line_of t addr in
  doom_mask t ~requester:core
    ~mask:(mask_find t.readers line lor mask_find t.writers line)
    ~conf_addr:addr;
  note_publish t line;
  Memory.store t.memory addr value

let nt_cas t ~core ~addr ~expected ~desired =
  if Memory.load t.memory addr = expected then begin
    nt_store t ~core ~addr ~value:desired;
    true
  end
  else false

let global_lock_addr t = t.lock_addr
let global_lock_held t = Memory.load t.memory t.lock_addr <> 0

let acquire_global_lock t ~core =
  nt_cas t ~core ~addr:t.lock_addr ~expected:0 ~desired:1

let release_global_lock t = Memory.store t.memory t.lock_addr 0

let conflicts_caused t = t.conflicts

(* --- software-tier interop -------------------------------------------- *)

let readers_mask t ~line = mask_find t.readers line
let writers_mask t ~line = mask_find t.writers line

(* an STM commit wins against speculative hardware readers and writers for
   the same reason a nontransactional store does: its published values are
   already durable, so the hardware transactions it raced are doomed — with
   a dedicated reason so the runtime can count cross-tier friction *)
let stm_doom t ~aggressor ~victim ~conf_addr =
  let c = t.cores.(victim) in
  match c.st with
  | Active ->
    discard_speculative t victim;
    c.st <- Doomed (Stm_conflict { conf_addr; aggressor });
    t.conflicts <- t.conflicts + 1
  | Idle | Doomed _ -> ()

let stm_publish t ~core ~addr ~value =
  let line = line_of t addr in
  let mask =
    (mask_find t.readers line lor mask_find t.writers line)
    land lnot (1 lsl core)
  in
  if mask <> 0 then
    for v = 0 to Array.length t.cores - 1 do
      if mask land (1 lsl v) <> 0 then stm_doom t ~aggressor:core ~victim:v ~conf_addr:addr
    done;
  Memory.store t.memory addr value

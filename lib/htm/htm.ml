open Stx_machine

type abort_reason =
  | Conflict of {
      conf_addr : int;
      conf_pc : int option;
      conf_pc_full : int option;
      aggressor : int;
    }
  | Lock_subscription
  | Capacity
  | Explicit
  | Stm_conflict of { conf_addr : int; aggressor : int }

type status = Idle | Active | Doomed of abort_reason

(* All per-core speculative state lives in preallocated flat tables
   ([Linetbl]) that are [reset] (O(live entries)) instead of rebuilt, so
   a transaction attempt allocates nothing in the steady state.  The
   global reader/writer indexes are dense bit matrices (line x core)
   rather than Hashtbls of masks, which also lifts the old 62-core
   ceiling: a line's holder set is a short vector of mask words. *)
type core_state = {
  mutable st : status;
  read_set : Linetbl.t; (* line -> 0 *)
  write_set : Linetbl.t; (* line -> 0 *)
  tags : Linetbl.t; (* line -> full pc of first tx access *)
  wbuf : Linetbl.t; (* addr -> speculative value *)
  mutable last_rset : int; (* set sizes when speculative state was *)
  mutable last_wset : int; (* last discarded (commit or doom) *)
  mutable ts : int; (* begin timestamp (karma); 0 = never begun *)
}

type t = {
  cfg : Config.t;
  policy : Stx_policy.t;
  memory : Memory.t;
  line_shift : int; (* log2 words_per_line, -1 when not a power of two *)
  cores : core_state array;
  readers : Bitmat.t; (* line x core: speculative readers *)
  writers : Bitmat.t;
  mask_words : int; (* words per holder-mask vector *)
  mutable scratch : int array; (* write-set snapshot for lazy commit *)
  lock_addr : int;
  mutable conflicts : int;
  mutable ts_counter : int;
  mutable on_publish : (line:int -> unit) option;
}

let max_cores = 4096

let create ?(policy = Stx_policy.default) (cfg : Config.t) memory alloc =
  if cfg.Config.cores > max_cores then
    invalid_arg (Printf.sprintf "Htm.create: at most %d cores" max_cores);
  let budget_hint = function
    | Stx_policy.Capacity.Unbounded -> 64
    | Stx_policy.Capacity.Bounded { read_lines; write_lines } ->
      min 4096 (max read_lines write_lines + 1)
  in
  let hint = budget_hint policy.Stx_policy.capacity in
  let mk _ =
    {
      st = Idle;
      read_set = Linetbl.create ~capacity_hint:hint ();
      write_set = Linetbl.create ~capacity_hint:hint ();
      tags = Linetbl.create ~capacity_hint:(2 * hint) ();
      wbuf = Linetbl.create ~capacity_hint:hint ();
      last_rset = 0;
      last_wset = 0;
      ts = 0;
    }
  in
  let lock_addr = Alloc.alloc_shared alloc 1 in
  let readers = Bitmat.create ~cols:cfg.Config.cores ~rows_hint:4096 () in
  let wpl = cfg.Config.words_per_line in
  {
    cfg;
    policy;
    memory;
    line_shift =
      (if wpl > 0 && wpl land (wpl - 1) = 0 then begin
         let rec go s v = if v <= 1 then s else go (s + 1) (v lsr 1) in
         go 0 wpl
       end
       else -1);
    cores = Array.init cfg.Config.cores mk;
    readers;
    writers = Bitmat.create ~cols:cfg.Config.cores ~rows_hint:4096 ();
    mask_words = Bitmat.words_per_row readers;
    scratch = Array.make 64 0;
    lock_addr;
    conflicts = 0;
    ts_counter = 0;
    on_publish = None;
  }

let set_on_publish t f = t.on_publish <- f

let note_publish t line =
  match t.on_publish with Some f -> f ~line | None -> ()

let config t = t.cfg
let policy t = t.policy

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift
  else Memory.line_of ~words_per_line:t.cfg.Config.words_per_line addr

let status t ~core = t.cores.(core).st

let bpw = Bitmat.bits_per_word

(* Word [w] of the holder mask for [line] — writers, plus readers when
   [with_readers] — with the bit of [except] removed. *)
let union_word t ~line ~with_readers ~except w =
  let m =
    Bitmat.row_word t.writers ~row:line w
    lor if with_readers then Bitmat.row_word t.readers ~row:line w else 0
  in
  if w = except / bpw then m land lnot (1 lsl (except mod bpw)) else m

(* Any holder of [line] other than [core]?  The allocation-free fast
   path of every conflict check. *)
let holders_other t ~line ~with_readers ~core =
  Bitmat.row_has_other t.writers ~row:line ~except:core
  || (with_readers && Bitmat.row_has_other t.readers ~row:line ~except:core)

let discard_speculative t core =
  let c = t.cores.(core) in
  c.last_rset <- Linetbl.length c.read_set;
  c.last_wset <- Linetbl.length c.write_set;
  for i = 0 to Linetbl.length c.read_set - 1 do
    Bitmat.clear t.readers ~row:(Linetbl.key_of_order c.read_set i) ~col:core
  done;
  for i = 0 to Linetbl.length c.write_set - 1 do
    Bitmat.clear t.writers ~row:(Linetbl.key_of_order c.write_set i) ~col:core
  done;
  Linetbl.reset c.read_set;
  Linetbl.reset c.write_set;
  Linetbl.reset c.tags;
  Linetbl.reset c.wbuf

let truncate_pc t pc =
  if t.cfg.Config.pc_tag_bits >= 62 then pc
  else pc land ((1 lsl t.cfg.Config.pc_tag_bits) - 1)

(* requester-wins: doom the victim, delivering the conflicting address, the
   victim's own PC tag for the line, and the aggressor (requester) core *)
let doom t ~requester ~victim ~conf_addr =
  let c = t.cores.(victim) in
  match c.st with
  | Active ->
    let line = line_of t conf_addr in
    let ti = Linetbl.idx c.tags line in
    let full = if ti >= 0 then Some (Linetbl.value_at c.tags ti) else None in
    let conf_pc =
      if t.cfg.Config.pc_tag_bits <= 0 then None
      else Option.map (truncate_pc t) full
    in
    discard_speculative t victim;
    (* [conf_pc_full] is a simulator oracle used only to score the runtime's
       anchor identification (the "Accuracy" column of Table 3); the modelled
       hardware delivers only the truncated [conf_pc]. *)
    c.st <-
      Doomed (Conflict { conf_addr; conf_pc; conf_pc_full = full; aggressor = requester });
    t.conflicts <- t.conflicts + 1
  | Idle | Doomed _ -> ()

(* doom every holder of [line] other than [requester]; the masks are read
   word-by-word before dooming, so victims clearing their bits mid-walk
   cannot disturb the iteration *)
let doom_all t ~requester ~line ~with_readers ~conf_addr =
  let f v = doom t ~requester ~victim:v ~conf_addr in
  for w = 0 to t.mask_words - 1 do
    Bitmat.iter_word f (w * bpw)
      (union_word t ~line ~with_readers ~except:requester w)
  done

(* suicide: the requester dooms itself, naming the (surviving) responder as
   the aggressor. [full_pc] is the requester's own PC for the access (or its
   first-access tag for the line, at lazy commit); -1 for none. *)
let self_doom t ~core ~conf_addr ~full_pc ~aggressor =
  let c = t.cores.(core) in
  let full = if full_pc >= 0 then Some full_pc else None in
  let conf_pc =
    if t.cfg.Config.pc_tag_bits <= 0 then None
    else Option.map (truncate_pc t) full
  in
  discard_speculative t core;
  c.st <-
    Doomed (Conflict { conf_addr; conf_pc; conf_pc_full = full; aggressor });
  t.conflicts <- t.conflicts + 1

(* the lowest-numbered holder of [line] other than [core] (-1 if none) *)
let lowest_other t ~line ~with_readers ~core =
  let rec go w =
    if w >= t.mask_words then -1
    else
      let m = union_word t ~line ~with_readers ~except:core w in
      if m = 0 then go (w + 1) else (w * bpw) + Bitmat.ctz_pow2 (m land -m)
  in
  go 0

(* the oldest opponent holding [line] that outranks the requester's
   timestamp (smaller = older = wins), or -1 *)
let older_opponent t ~core ~line ~with_readers =
  let my_ts = t.cores.(core).ts in
  let best_ts = ref max_int in
  let best = ref (-1) in
  let f v =
    let ts = t.cores.(v).ts in
    if ts < my_ts && ts < !best_ts then begin
      best_ts := ts;
      best := v
    end
  in
  for w = 0 to t.mask_words - 1 do
    Bitmat.iter_word f (w * bpw) (union_word t ~line ~with_readers ~except:core w)
  done;
  !best

(* Resolve a conflict between a speculative requester on [core] and the
   transactions holding [line] (every core in the readers/writers index is
   [Active]: doomed and committed cores leave the index when their
   speculative state is discarded). Returns [true] when the requester
   survives and the access may proceed.  Callers check
   {!holders_other} first, so this is off the no-conflict fast path. *)
let resolve t ~core ~conf_addr ~full_pc ~line ~with_readers =
  match t.policy.Stx_policy.resolution with
  | Stx_policy.Resolution.Requester_wins ->
    doom_all t ~requester:core ~line ~with_readers ~conf_addr;
    true
  | Stx_policy.Resolution.Responder_wins ->
    self_doom t ~core ~conf_addr ~full_pc
      ~aggressor:(lowest_other t ~line ~with_readers ~core);
    false
  | Stx_policy.Resolution.Timestamp -> (
    match older_opponent t ~core ~line ~with_readers with
    | -1 ->
      doom_all t ~requester:core ~line ~with_readers ~conf_addr;
      true
    | v ->
      self_doom t ~core ~conf_addr ~full_pc ~aggressor:v;
      false)

(* The transaction tried to grow a set past its budget: discard, then patch
   the captured sizes to include the line that did not fit — so the abort
   event reports the footprint at the moment the budget was exceeded rather
   than the post-reset 0/0. *)
let capacity_doom t ~core ~read =
  let c = t.cores.(core) in
  discard_speculative t core;
  if read then c.last_rset <- c.last_rset + 1 else c.last_wset <- c.last_wset + 1;
  c.st <- Doomed Capacity

let read_budget t =
  match t.policy.Stx_policy.capacity with
  | Stx_policy.Capacity.Unbounded -> max_int
  | Stx_policy.Capacity.Bounded { read_lines; _ } -> read_lines

let write_budget t =
  match t.policy.Stx_policy.capacity with
  | Stx_policy.Capacity.Unbounded -> max_int
  | Stx_policy.Capacity.Bounded { write_lines; _ } -> write_lines

let require_active t core op =
  match t.cores.(core).st with
  | Active -> ()
  | Idle | Doomed _ ->
    invalid_arg (Printf.sprintf "Htm.%s: core %d has no active transaction" op core)

let tx_begin ?(fresh = true) t ~core =
  let c = t.cores.(core) in
  (match c.st with
  | Idle -> ()
  | Active | Doomed _ -> invalid_arg "Htm.tx_begin: transaction already in flight");
  if fresh || c.ts = 0 then begin
    t.ts_counter <- t.ts_counter + 1;
    c.ts <- t.ts_counter
  end;
  c.st <- Active

(* read through the local write buffer without allocating an option *)
let load_through c memory addr =
  let wi = Linetbl.idx c.wbuf addr in
  if wi >= 0 then Linetbl.value_at c.wbuf wi else Memory.load memory addr

let tx_load t ~core ~addr ~pc =
  require_active t core "tx_load";
  let c = t.cores.(core) in
  let line = line_of t addr in
  let survived =
    t.cfg.Config.lazy_htm
    || (not (holders_other t ~line ~with_readers:false ~core))
    || resolve t ~core ~conf_addr:addr ~full_pc:pc ~line ~with_readers:false
  in
  if not survived then
    (* self-doomed: the speculative state (including the write buffer) is
       gone; hand back committed memory, the value is dead anyway *)
    Memory.load t.memory addr
  else if Linetbl.mem c.read_set line then begin
    ignore (Linetbl.add_if_absent c.tags line pc);
    load_through c t.memory addr
  end
  else if Linetbl.length c.read_set >= read_budget t then begin
    capacity_doom t ~core ~read:true;
    Memory.load t.memory addr
  end
  else begin
    ignore (Linetbl.add_if_absent c.tags line pc);
    Linetbl.add c.read_set line 0;
    Bitmat.set t.readers ~row:line ~col:core;
    load_through c t.memory addr
  end

let tx_store t ~core ~addr ~value ~pc =
  require_active t core "tx_store";
  let c = t.cores.(core) in
  let line = line_of t addr in
  let survived =
    t.cfg.Config.lazy_htm
    || (not (holders_other t ~line ~with_readers:true ~core))
    || resolve t ~core ~conf_addr:addr ~full_pc:pc ~line ~with_readers:true
  in
  if not survived then ()
  else if Linetbl.mem c.write_set line then begin
    ignore (Linetbl.add_if_absent c.tags line pc);
    Linetbl.add c.wbuf addr value
  end
  else if Linetbl.length c.write_set >= write_budget t then
    capacity_doom t ~core ~read:false
  else begin
    ignore (Linetbl.add_if_absent c.tags line pc);
    Linetbl.add c.write_set line 0;
    Bitmat.set t.writers ~row:line ~col:core;
    Linetbl.add c.wbuf addr value
  end

let tx_commit t ~core =
  require_active t core "tx_commit";
  let c = t.cores.(core) in
  (* late subscription to the global lock *)
  if Memory.load t.memory t.lock_addr <> 0 then begin
    discard_speculative t core;
    c.st <- Doomed Lock_subscription;
    false
  end
  else begin
    (* lazy mode: conflicts surface at commit time — under requester-wins
       the committer dooms every transaction that touched a line this write
       set covers; under the other policies the committer itself may lose
       (so snapshot the lines first: a self-doom resets the set mid-walk) *)
    if t.cfg.Config.lazy_htm then begin
      match t.policy.Stx_policy.resolution with
      | Stx_policy.Resolution.Requester_wins ->
        for i = 0 to Linetbl.length c.write_set - 1 do
          let line = Linetbl.key_of_order c.write_set i in
          doom_all t ~requester:core ~line ~with_readers:true
            ~conf_addr:(line * t.cfg.Config.words_per_line)
        done
      | Stx_policy.Resolution.Responder_wins | Stx_policy.Resolution.Timestamp
        ->
        let n = Linetbl.length c.write_set in
        if Array.length t.scratch < n then
          t.scratch <- Array.make (2 * n) 0;
        for i = 0 to n - 1 do
          t.scratch.(i) <- Linetbl.key_of_order c.write_set i
        done;
        let i = ref 0 in
        while !i < n && c.st == Active do
          let line = t.scratch.(!i) in
          if holders_other t ~line ~with_readers:true ~core then begin
            let ti = Linetbl.idx c.tags line in
            let full = if ti >= 0 then Linetbl.value_at c.tags ti else -1 in
            ignore
              (resolve t ~core
                 ~conf_addr:(line * t.cfg.Config.words_per_line)
                 ~full_pc:full ~line ~with_readers:true)
          end;
          incr i
        done
    end;
    if (match c.st with Active -> false | Idle | Doomed _ -> true) then false
    else begin
      for i = 0 to Linetbl.length c.wbuf - 1 do
        Memory.store t.memory
          (Linetbl.key_of_order c.wbuf i)
          (Linetbl.value_of_order c.wbuf i)
      done;
      (* published lines are visible to the software tier too: bump their
         STM version words so a software reader that raced this commit
         fails validation instead of observing a torn snapshot *)
      (match t.on_publish with
      | None -> ()
      | Some f ->
        for i = 0 to Linetbl.length c.write_set - 1 do
          f ~line:(Linetbl.key_of_order c.write_set i)
        done);
      discard_speculative t core;
      c.st <- Idle;
      true
    end
  end

let tx_self_abort t ~core =
  require_active t core "tx_self_abort";
  discard_speculative t core;
  t.cores.(core).st <- Doomed Explicit

let tx_cleanup t ~core =
  let c = t.cores.(core) in
  match c.st with
  | Doomed reason ->
    (* speculative state was discarded when the transaction was doomed *)
    c.st <- Idle;
    reason
  | Idle | Active -> invalid_arg "Htm.tx_cleanup: transaction not doomed"

let read_set_size t ~core = Linetbl.length t.cores.(core).read_set
let write_set_size t ~core = Linetbl.length t.cores.(core).write_set

let last_set_sizes t ~core =
  let c = t.cores.(core) in
  (c.last_rset, c.last_wset)

let nt_load t ~addr = Memory.load t.memory addr

(* a nontransactional store cannot be rolled back, so it wins under every
   resolution policy — like any nonspeculative agent's write *)
let nt_store t ~core ~addr ~value =
  let line = line_of t addr in
  if holders_other t ~line ~with_readers:true ~core then
    doom_all t ~requester:core ~line ~with_readers:true ~conf_addr:addr;
  note_publish t line;
  Memory.store t.memory addr value

let nt_cas t ~core ~addr ~expected ~desired =
  if Memory.load t.memory addr = expected then begin
    nt_store t ~core ~addr ~value:desired;
    true
  end
  else false

let global_lock_addr t = t.lock_addr
let global_lock_held t = Memory.load t.memory t.lock_addr <> 0

let acquire_global_lock t ~core =
  nt_cas t ~core ~addr:t.lock_addr ~expected:0 ~desired:1

let release_global_lock t = Memory.store t.memory t.lock_addr 0

let conflicts_caused t = t.conflicts

(* Release the reader/writer index rows for reuse by the next run; [t]
   must not be used afterwards. *)
let retire t =
  Bitmat.retire t.readers;
  Bitmat.retire t.writers

(* --- software-tier interop -------------------------------------------- *)

let mask_of_row bm ~line =
  (* one-word legacy view; create refuses nothing, but callers are
     documented to use it only below 63 cores *)
  Bitmat.row_word bm ~row:line 0

let readers_mask t ~line = mask_of_row t.readers ~line
let writers_mask t ~line = mask_of_row t.writers ~line

let writers_present t ~line =
  not (Bitmat.row_is_empty t.writers ~row:line)

(* an STM commit wins against speculative hardware readers and writers for
   the same reason a nontransactional store does: its published values are
   already durable, so the hardware transactions it raced are doomed — with
   a dedicated reason so the runtime can count cross-tier friction *)
let stm_doom t ~aggressor ~victim ~conf_addr =
  let c = t.cores.(victim) in
  match c.st with
  | Active ->
    discard_speculative t victim;
    c.st <- Doomed (Stm_conflict { conf_addr; aggressor });
    t.conflicts <- t.conflicts + 1
  | Idle | Doomed _ -> ()

let stm_publish t ~core ~addr ~value =
  let line = line_of t addr in
  if holders_other t ~line ~with_readers:true ~core then begin
    let f v = stm_doom t ~aggressor:core ~victim:v ~conf_addr:addr in
    for w = 0 to t.mask_words - 1 do
      Bitmat.iter_word f (w * bpw)
        (union_word t ~line ~with_readers:true ~except:core w)
    done
  end;
  Memory.store t.memory addr value

open Stx_machine

(** The simulated hardware transactional memory.

    ASF-style best-effort HTM as configured in Table 2: read and write sets
    tracked at cache-line granularity (the r/w bits), lazy versioning (a
    per-core write buffer; speculative stores become visible only at
    commit), eager requester-wins conflict resolution, and a per-line PC
    tag recording the program counter of the line's first transactional
    access — delivered, truncated to the configured width, as the
    "conflicting PC" when that line is the source of an abort.

    Conflict resolution, set capacity, and (in the runtime above) the
    fallback schedule are pluggable via {!Stx_policy}: the bundle given to
    {!create} selects requester-wins (the paper's eager ASF point),
    responder-wins (the requester suicides), or timestamp/karma (the older
    transaction survives); and an optional bounded read/write-set budget
    whose overflow dooms the transaction with the [Capacity] reason. The
    default bundle reproduces the original hard-coded behaviour exactly.

    Nontransactional loads and stores — the feature Staggered Transactions
    requires (§4) — bypass the write buffer and the read/write sets: an
    nt-load sees only committed state and never aborts anyone; an nt-store
    applies immediately and, like any write by another agent, aborts every
    transaction holding the line (requester wins). Irrevocable execution
    uses the same operations.

    A single global lock word supports the runtime's irrevocable fallback;
    hardware transactions subscribe to it immediately before commit. *)

type abort_reason =
  | Conflict of {
      conf_addr : int;
      conf_pc : int option;
      conf_pc_full : int option;
      aggressor : int;
    }
      (** data conflict; [conf_pc] is the doomed core's (truncated) PC for
          the conflicting access, when the hardware provides it;
          [aggressor] is the surviving core — under requester-wins the
          requester whose access doomed the victim, under responder-wins
          or timestamp possibly the established owner the requester lost
          to *)
  | Lock_subscription  (** the global lock was held at commit time *)
  | Capacity
      (** the read/write-set budget of a [Bounded] capacity policy was
          exceeded *)
  | Explicit  (** the program executed an explicit abort *)
  | Stm_conflict of { conf_addr : int; aggressor : int }
      (** a concurrent software-tier commit ({!stm_publish}) published a
          line in this transaction's footprint; [aggressor] is the
          committing STM thread's core *)

type status = Idle | Active | Doomed of abort_reason

type t

val create : ?policy:Stx_policy.t -> Config.t -> Memory.t -> Alloc.t -> t
(** Allocates the global-lock word out of [Alloc]. [policy] (default
    {!Stx_policy.default}) fixes the conflict-resolution and capacity
    behaviour for the life of the HTM. Supports up to 4096 cores; the
    per-core flat set tables are sized from the policy's capacity
    budget and reused across attempts without allocating. *)

val config : t -> Config.t
val policy : t -> Stx_policy.t

val status : t -> core:int -> status

val tx_begin : ?fresh:bool -> t -> core:int -> unit
(** Start a transaction. The core must be [Idle]. [fresh] (default true)
    assigns a new begin timestamp; the runtime passes [~fresh:false] on
    retries so that, under the [Timestamp] resolution policy, a
    repeatedly-aborted transaction keeps its (old) priority instead of
    being reborn young — the karma that rules out livelock. *)

val tx_load : t -> core:int -> addr:int -> pc:int -> int
(** Transactional load: resolves conflicts with writers elsewhere per the
    resolution policy, then joins the read set (unless the budget of a
    [Bounded] capacity is exhausted — a [Capacity] self-doom), records
    the PC tag on first access, and reads through the local write buffer.
    The core must be [Active]. If the policy dooms the requester itself,
    the returned value is the committed memory word (the transaction is
    dead; the value is never observable). *)

val tx_store : t -> core:int -> addr:int -> value:int -> pc:int -> unit
(** Transactional store: resolves conflicts with readers and writers
    elsewhere per the resolution policy, joins the write set (or
    [Capacity]-dooms on budget exhaustion), and buffers the value. *)

val tx_commit : t -> core:int -> bool
(** Subscribe to the global lock, then atomically publish the write buffer.
    Returns [false] — leaving the core [Doomed] — if the lock was held. *)

val tx_self_abort : t -> core:int -> unit
(** Explicit abort by the program (the core becomes [Doomed]). *)

val tx_cleanup : t -> core:int -> abort_reason
(** Acknowledge a doomed transaction: discard speculative state, return the
    reason, and go [Idle]. *)

val read_set_size : t -> core:int -> int
val write_set_size : t -> core:int -> int

val last_set_sizes : t -> core:int -> int * int
(** Read/write-set sizes (lines) captured the last time the core's
    speculative state was discarded — at commit publication, or at the
    moment the transaction was doomed (by then the live sets have been
    reset, so a post-hoc {!read_set_size} would report 0). A
    [Capacity]-doomed transaction reports the footprint at the moment the
    budget was exceeded, counting the line that did not fit — never the
    post-reset 0/0. The simulator reads this when it emits commit/abort
    events. *)

val nt_load : t -> addr:int -> int
val nt_store : t -> core:int -> addr:int -> value:int -> unit
(** [core] identifies the requester so its own transaction (if any) is not
    self-aborted; pass the executing core. A nontransactional store cannot
    roll back, so it dooms conflicting transactions under {e every}
    resolution policy. *)

val nt_cas : t -> core:int -> addr:int -> expected:int -> desired:int -> bool

val global_lock_addr : t -> int
val global_lock_held : t -> bool
val acquire_global_lock : t -> core:int -> bool
(** Nontransactional test-and-set of the global lock; aborts transactions
    subscribed to it. *)

val release_global_lock : t -> unit

val conflicts_caused : t -> int
(** Total conflict aborts inflicted (by any resolution outcome, including
    self-dooms), for diagnostics. *)

(** {2 Software-tier interop}

    The hybrid fallback runs a TL2-style software tier ([Stx_stm]) beside
    the hardware. The two directions of the contract live here: a
    committing software transaction publishes through {!stm_publish},
    which dooms every speculative hardware reader or writer of the line
    ([Stm_conflict] — durable values always win); and every hardware
    publication (lazy commit or nontransactional store) announces its
    lines through the {!set_on_publish} hook so the software tier can
    advance its version clock and keep readers opaque. *)

val readers_mask : t -> line:int -> int
(** Bitmask of cores speculatively reading [line].  One-word legacy
    view: meaningful for the first 62 cores only (wider machines are
    tracked in a multi-word bit matrix; use {!writers_present} for a
    width-independent test). *)

val writers_mask : t -> line:int -> int
(** Bitmask of cores speculatively writing [line] (same 62-core caveat
    as {!readers_mask}). The software tier refuses to commit a write to
    a hardware-owned line (it defers instead of dooming the hardware
    optimistically). *)

val writers_present : t -> line:int -> bool
(** Any speculative hardware writer of [line], at any core count. *)

val stm_publish : t -> core:int -> addr:int -> value:int -> unit
(** Publish one committed software-tier word: dooms every speculative
    hardware reader/writer of the enclosing line with [Stm_conflict]
    (excepting [core] itself), then stores to memory. Does {e not} fire
    the {!set_on_publish} hook — the software tier stamps its own version
    words. *)

val set_on_publish : t -> (line:int -> unit) option -> unit
(** Install (or clear) the publication hook. Called once per write-set
    line when a hardware transaction commits, and once per
    nontransactional store, before any event is observable to other
    threads' loads. *)

val retire : t -> unit
(** Release the reader/writer index storage into the domain-local array
    pool; the HTM must not be used afterwards. *)

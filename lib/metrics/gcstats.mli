(** GC pressure as registry series, added when a snapshot is exported.

    The two series are cumulative process totals from [Gc.quick_stat]:

    - [stx_gc_minor_words] — words allocated on the minor heap
    - [stx_gc_major_collections] — completed major collection cycles

    They are stamped at export time rather than during collection so the
    online and trace-replay registries remain exactly equal (the
    reconciliation {!Collect} relies on). *)

val stamp : Registry.t -> Registry.t
(** A fresh copy of the registry with both GC counters added; the
    argument is not modified. *)

(** Mergeable log₂-bucketed histograms over non-negative integers.

    Bucket 0 holds the value 0 exactly; bucket [k >= 1] holds the range
    [2^(k-1) .. 2^k - 1], so boundaries are powers of two and a value's
    bucket is its bit width. Count, sum, min, max and a per-bucket max are
    tracked exactly; quantiles resolve to the largest value actually
    observed in the covering bucket, which makes them deterministic,
    monotone in the requested rank, always an observed value, and never
    more than one bucket (a factor of two) above the true nearest-rank
    order statistic.

    {!merge} is associative and commutative and builds a fresh value, the
    same discipline as [Stats.merge], so sharded runs aggregate to the
    same histogram regardless of grouping. *)

type t

val create : unit -> t
val is_empty : t -> bool

val add : t -> int -> unit
(** Record one observation. Raises [Invalid_argument] on a negative
    value: every quantity we histogram (cycles, sizes, retries) is a
    count, and a negative one is an instrumentation bug upstream. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value; 0 on an empty histogram. *)

val max_value : t -> int
(** Largest recorded value; 0 on an empty histogram. *)

val mean : t -> float
(** Exact ([sum]/[count]); 0 on an empty histogram. *)

val quantile : t -> float -> int
(** [quantile t q] for [0 <= q <= 1] by nearest rank over the buckets,
    reported as the largest observed value in the rank's bucket — always
    a value that was actually added; 0 on an empty histogram. Raises
    [Invalid_argument] outside [0,1]. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val merge : t -> t -> t
(** Fresh combined histogram; the arguments are not mutated. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], index ascending. *)

val buckets_full : t -> (int * int * int) list
(** Non-empty buckets as [(index, count, observed_max)], index ascending;
    the serialization shape. *)

val bucket_index : int -> int
(** The bucket a value falls into: 0 for 0, bit width otherwise. *)

val bucket_lower : int -> int
(** Smallest value of a bucket: 0 for bucket 0, [2^(k-1)] for [k >= 1]. *)

val bucket_upper : int -> int
(** Largest value of a bucket: 0 for bucket 0, [2^k - 1] for [k >= 1]. *)

val restore :
  count:int ->
  sum:int ->
  min_value:int ->
  max_value:int ->
  (int * int * int) list ->
  t option
(** Rebuild a histogram from its serialized
    [(index, count, observed_max)] parts (the store codec's decode path).
    [None] when the parts are not internally consistent: bucket counts
    must be positive, indices in range and strictly ascending, totalling
    [count]; each observed max must lie inside its bucket and the
    outermost ones must agree with the global extrema. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

open Stx_sim

(* Metric names. One source of truth: the collector writes them, the
   profile/bench readers and the reconciliation checker read them. *)

let m_latency = "stx_tx_latency_cycles"
let m_retries = "stx_tx_retries"
let m_rset = "stx_rset_lines"
let m_wset = "stx_wset_lines"
let m_lock_wait = "stx_lock_wait_cycles"
let m_backoff = "stx_backoff_cycles"
let m_irrevocable = "stx_irrevocable_cycles"
let m_phase = "stx_phase_cycles"
let m_commits = "stx_commits"
let m_aborts = "stx_aborts"
let m_irrevocable_entries = "stx_irrevocable_entries"
let m_lock_attempts = "stx_lock_attempts"
let m_lock_acquires = "stx_lock_acquires"
let m_lock_timeouts = "stx_lock_timeouts"
let m_alps_executed = "stx_alps_executed"
let m_alps_fired = "stx_alps_fired"
let m_stm_commits = "stx_stm_commits"
let m_stm_aborts = "stx_stm_aborts"
let m_stm_vcycles = "stx_stm_validation_cycles"

let outcome_commit = [ ("outcome", "commit") ]
let outcome_abort = [ ("outcome", "abort") ]

let kind_label = function
  | Machine.Conflict -> "conflict"
  | Machine.Lock_subscription -> "lock_subscription"
  | Machine.Capacity -> "capacity"
  | Machine.Explicit -> "explicit"
  | Machine.Stm_conflict -> "stm_conflict"

let stm_kind_label = function
  | Machine.Stm_validation -> "stm_validation"
  | Machine.Stm_hw_owned -> "stm_hw_owned"
  | Machine.Stm_locksub -> "stm_lock_subscription"
  | Machine.Stm_explicit -> "stm_explicit"

type phase = Prefix | Lock_wait | Suffix | Irrevocable | Stm | Backoff | Wasted

let phases = [ Prefix; Lock_wait; Suffix; Irrevocable; Stm; Backoff; Wasted ]

let phase_label = function
  | Prefix -> "prefix"
  | Lock_wait -> "lock_wait"
  | Suffix -> "suffix"
  | Irrevocable -> "irrevocable"
  | Stm -> "stm"
  | Backoff -> "backoff"
  | Wasted -> "wasted"

let phase_labels ~ab p =
  [ ("ab", string_of_int ab); ("phase", phase_label p) ]

(* --- the per-thread replay state machine ------------------------------ *)

(* One in-flight hardware or irrevocable attempt, as reconstructed from
   the stream. Timestamps are the emitting thread's local clock. *)
type attempt = {
  at_ab : int;
  at_attempt : int;
  mutable at_first_acquire : int option;  (* first advisory-lock acquire *)
  mutable at_wait_since : int option;  (* open Lock_waiting episode *)
  mutable at_wait : int;  (* completed episode cycles this attempt *)
}

type tstate = {
  mutable cur : attempt option;
  mutable backoff_since : int option;
  mutable cur_ab : int;  (* for attributing backoff between attempts *)
}

type t = {
  reg : Registry.t;
  threads : (int, tstate) Hashtbl.t;
  pol : (string * string) list;
      (* the policy label, appended to every series this collector writes *)
}

let create ?(policy = Stx_policy.default) () =
  {
    reg = Registry.create ();
    threads = Hashtbl.create 16;
    pol = [ ("policy", Stx_policy.label policy) ];
  }

let registry t = t.reg

let tstate t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { cur = None; backoff_since = None; cur_ab = 0 } in
    Hashtbl.add t.threads tid st;
    st

let add_phase t ~ab p c =
  if c > 0 then Registry.inc t.reg ~by:c m_phase (phase_labels ~ab p @ t.pol)

(* close an open wait episode, returning its span *)
let end_wait a ~time =
  match a.at_wait_since with
  | None -> None
  | Some t0 ->
    a.at_wait_since <- None;
    let d = time - t0 in
    a.at_wait <- a.at_wait + d;
    Some d

let handler t ~time ev =
  (* every series carries the collector's policy label *)
  let inc ?by name labels = Registry.inc t.reg ?by name (labels @ t.pol) in
  let observe name labels v = Registry.observe t.reg name (labels @ t.pol) v in
  match (ev : Machine.event) with
  | Machine.Tx_begin { tid; ab; attempt; probe = _ } ->
    let st = tstate t tid in
    st.cur <-
      Some
        {
          at_ab = ab;
          at_attempt = attempt;
          at_first_acquire = None;
          at_wait_since = None;
          at_wait = 0;
        };
    st.cur_ab <- ab
  | Machine.Lock_waiting { tid; lock = _ } -> (
    let st = tstate t tid in
    match st.cur with Some a -> a.at_wait_since <- Some time | None -> ())
  | Machine.Lock_acquired { tid; lock = _; line = _ } -> (
    inc m_lock_acquires [];
    let st = tstate t tid in
    match st.cur with
    | Some a ->
      (match end_wait a ~time with
      | Some d -> observe m_lock_wait [ ("outcome", "acquired") ] d
      | None -> ());
      if a.at_first_acquire = None then a.at_first_acquire <- Some time
    | None -> ())
  | Machine.Lock_timeout { tid; lock = _ } -> (
    inc m_lock_timeouts [];
    let st = tstate t tid in
    match st.cur with
    | Some a -> (
      match end_wait a ~time with
      | Some d -> observe m_lock_wait [ ("outcome", "timeout") ] d
      | None -> ())
    | None -> ())
  | Machine.Lock_attempt _ -> inc m_lock_attempts []
  | Machine.Lock_released _ -> ()
  | Machine.Tx_commit { tid; ab; cycles; irrevocable; rset; wset; probe = _ } ->
    inc m_commits [];
    observe m_latency outcome_commit cycles;
    observe m_rset outcome_commit rset;
    observe m_wset outcome_commit wset;
    let st = tstate t tid in
    (match st.cur with
    | Some a ->
      observe m_retries [] a.at_attempt;
      if irrevocable then begin
        observe m_irrevocable [] cycles;
        add_phase t ~ab Irrevocable cycles
      end
      else begin
        (* a commit cannot be reached mid-spin, but fold a dangling
           episode in rather than lose the cycles *)
        ignore (end_wait a ~time);
        let suffix =
          match a.at_first_acquire with Some acq -> time - acq | None -> 0
        in
        let prefix = cycles - a.at_wait - suffix in
        add_phase t ~ab Prefix prefix;
        add_phase t ~ab Lock_wait a.at_wait;
        add_phase t ~ab Suffix suffix
      end
    | None ->
      (* commit without a begin: degraded stream; count everything as
         prefix so the cycle identities still hold *)
      observe m_retries [] 0;
      add_phase t ~ab (if irrevocable then Irrevocable else Prefix) cycles);
    st.cur <- None
  | Machine.Tx_abort
      { tid; ab; kind; cycles; rset; wset; conf_line = _; conf_pc = _;
        aggressor = _; probe = _ } ->
    inc m_aborts [ ("kind", kind_label kind) ];
    observe m_latency outcome_abort cycles;
    observe m_rset outcome_abort rset;
    observe m_wset outcome_abort wset;
    add_phase t ~ab Wasted cycles;
    let st = tstate t tid in
    (match st.cur with
    | Some a -> (
      (* an abort lands mid-spin when the victim was doomed while
         queued; the episode's tail (plus abort costs charged before
         emission) is already inside the wasted cycles *)
      match end_wait a ~time with
      | Some d -> observe m_lock_wait [ ("outcome", "aborted") ] d
      | None -> ())
    | None -> ());
    st.cur <- None;
    st.cur_ab <- ab
  | Machine.Tx_irrevocable { tid; ab } ->
    inc m_irrevocable_entries [];
    (tstate t tid).cur_ab <- ab
  | Machine.Alp_executed { fired; _ } ->
    inc m_alps_executed [];
    if fired then inc m_alps_fired []
  | Machine.Backoff_start { tid } -> (tstate t tid).backoff_since <- Some time
  | Machine.Backoff_end { tid } -> (
    let st = tstate t tid in
    match st.backoff_since with
    | Some t0 ->
      st.backoff_since <- None;
      let d = time - t0 in
      observe m_backoff [] d;
      add_phase t ~ab:st.cur_ab Backoff d
    | None -> ())
  | Machine.Req_dispatch _ | Machine.Req_done _ ->
    (* request lifecycle is the serving harness's plane (Stx_serve); the
       transaction-level registry ignores it so serve and closed-loop
       runs of one workload stay directly comparable *)
    ()
  | Machine.Stm_begin { tid; ab; attempt } ->
    let st = tstate t tid in
    st.cur <-
      Some
        {
          at_ab = ab;
          at_attempt = attempt;
          at_first_acquire = None;
          at_wait_since = None;
          at_wait = 0;
        };
    st.cur_ab <- ab
  | Machine.Stm_commit { tid; ab; cycles; vcycles; rset; wset } ->
    inc m_commits [];
    inc m_stm_commits [];
    if vcycles > 0 then inc ~by:vcycles m_stm_vcycles [];
    observe m_latency outcome_commit cycles;
    observe m_rset outcome_commit rset;
    observe m_wset outcome_commit wset;
    let st = tstate t tid in
    (match st.cur with
    | Some a -> observe m_retries [] a.at_attempt
    | None -> observe m_retries [] 0);
    (* the whole software attempt is one phase: its validation traffic is
       reported through m_stm_vcycles, not a phase split *)
    add_phase t ~ab Stm cycles;
    st.cur <- None
  | Machine.Stm_abort { tid; ab; kind; cycles; vcycles; rset; wset } ->
    inc m_aborts [ ("kind", stm_kind_label kind) ];
    inc m_stm_aborts [ ("kind", stm_kind_label kind) ];
    if vcycles > 0 then inc ~by:vcycles m_stm_vcycles [];
    observe m_latency outcome_abort cycles;
    observe m_rset outcome_abort rset;
    observe m_wset outcome_abort wset;
    add_phase t ~ab Wasted cycles;
    let st = tstate t tid in
    st.cur <- None;
    st.cur_ab <- ab

let of_trace ?policy tr =
  let t = create ?policy () in
  Stx_trace.Trace.iter tr (fun ~time ev -> handler t ~time ev);
  t.reg

(* --- phase readout ---------------------------------------------------- *)

(* Readers match by label subset: a series written with the policy label
   (or any future dimension) still satisfies a query that does not name
   it, so profile/bench/check work unchanged across policy bundles — and
   sum across bundles when a merged registry holds several. *)

let label_subset sub super =
  List.for_all (fun (k, v) -> List.assoc_opt k super = Some v) sub

let counter_sum reg name labels =
  Registry.fold
    (fun n ls v acc ->
      match v with
      | Registry.Counter c when n = name && label_subset labels ls -> acc + c
      | _ -> acc)
    reg 0

let phase_cycles reg ~ab p = counter_sum reg m_phase (phase_labels ~ab p)

let abs_profiled reg =
  Registry.fold
    (fun name labels _ acc ->
      if name = m_phase then
        match List.assoc_opt "ab" labels with
        | Some s -> ( match int_of_string_opt s with Some ab -> ab :: acc | None -> acc)
        | None -> acc
      else acc)
    reg []
  |> List.sort_uniq compare

let phase_total reg p =
  List.fold_left (fun acc ab -> acc + phase_cycles reg ~ab p) 0 (abs_profiled reg)

(* --- reconciliation against the inline counters ----------------------- *)

let hist_stats reg name labels =
  Registry.fold
    (fun n ls v ((count, sum) as acc) ->
      match v with
      | Registry.Histogram h when n = name && label_subset labels ls ->
        (count + Hist.count h, sum + Hist.sum h)
      | _ -> acc)
    reg (0, 0)

let check reg (stats : Stats.t) =
  let errs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let eq what got want =
    if got <> want then note "%s: registry %d vs stats %d" what got want
  in
  let counter name labels = counter_sum reg name labels in
  eq "commits" (counter m_commits []) stats.Stats.commits;
  eq "conflict aborts" (counter m_aborts [ ("kind", "conflict") ])
    stats.Stats.conflict_aborts;
  eq "lock-subscription aborts"
    (counter m_aborts [ ("kind", "lock_subscription") ])
    stats.Stats.lock_sub_aborts;
  eq "capacity aborts" (counter m_aborts [ ("kind", "capacity") ])
    stats.Stats.capacity_aborts;
  eq "explicit aborts" (counter m_aborts [ ("kind", "explicit") ])
    stats.Stats.explicit_aborts;
  eq "stm-conflict aborts" (counter m_aborts [ ("kind", "stm_conflict") ])
    stats.Stats.stm_conflict_aborts;
  eq "stm commits" (counter m_stm_commits []) stats.Stats.stm_commits;
  eq "stm aborts" (counter m_stm_aborts []) stats.Stats.stm_aborts;
  eq "stm validation aborts"
    (counter m_stm_aborts [ ("kind", "stm_validation") ])
    stats.Stats.stm_validation_aborts;
  eq "stm hw-owned aborts"
    (counter m_stm_aborts [ ("kind", "stm_hw_owned") ])
    stats.Stats.stm_hw_owned_aborts;
  eq "stm lock-subscription aborts"
    (counter m_stm_aborts [ ("kind", "stm_lock_subscription") ])
    stats.Stats.stm_locksub_aborts;
  eq "stm validation cycles" (counter m_stm_vcycles [])
    stats.Stats.stm_validation_cycles;
  eq "irrevocable entries" (counter m_irrevocable_entries [])
    stats.Stats.irrevocable_entries;
  eq "lock attempts" (counter m_lock_attempts []) stats.Stats.alps_lock_attempts;
  eq "lock acquires" (counter m_lock_acquires []) stats.Stats.lock_acquires;
  eq "lock timeouts" (counter m_lock_timeouts []) stats.Stats.lock_timeouts;
  eq "alps executed" (counter m_alps_executed []) stats.Stats.alps_executed;
  let cc, cs = hist_stats reg m_latency outcome_commit in
  eq "commit-latency count" cc stats.Stats.commits;
  eq "commit-latency sum = useful_cycles" cs stats.Stats.useful_cycles;
  let ac, asum = hist_stats reg m_latency outcome_abort in
  eq "abort-latency count" ac stats.Stats.aborts;
  eq "abort-latency sum = wasted_cycles" asum stats.Stats.wasted_cycles;
  let rc, _ = hist_stats reg m_retries [] in
  eq "retries observations" rc stats.Stats.commits;
  let rsc, _ = hist_stats reg m_rset outcome_commit in
  let wsc, _ = hist_stats reg m_wset outcome_commit in
  eq "committed read-set observations" rsc stats.Stats.commits;
  eq "committed write-set observations" wsc stats.Stats.commits;
  let rsa, _ = hist_stats reg m_rset outcome_abort in
  let wsa, _ = hist_stats reg m_wset outcome_abort in
  eq "aborted read-set observations" rsa stats.Stats.aborts;
  eq "aborted write-set observations" wsa stats.Stats.aborts;
  let _, bsum = hist_stats reg m_backoff [] in
  eq "backoff sum = backoff_cycles" bsum stats.Stats.backoff_cycles;
  let ic, _ = hist_stats reg m_irrevocable [] in
  let irrevocable_commits =
    Hashtbl.fold
      (fun _ ab acc -> acc + ab.Stats.ab_irrevocable)
      stats.Stats.per_ab 0
  in
  eq "irrevocable-duration count" ic irrevocable_commits;
  eq "phase useful identity"
    (phase_total reg Prefix + phase_total reg Lock_wait + phase_total reg Suffix
   + phase_total reg Irrevocable + phase_total reg Stm)
    stats.Stats.useful_cycles;
  eq "phase wasted identity" (phase_total reg Wasted) stats.Stats.wasted_cycles;
  eq "phase backoff identity" (phase_total reg Backoff) stats.Stats.backoff_cycles;
  let _, wa = hist_stats reg m_lock_wait [ ("outcome", "acquired") ] in
  let _, wt = hist_stats reg m_lock_wait [ ("outcome", "timeout") ] in
  (* abort-terminated episodes fold their spin tail into the abort path,
     and irrevocable entry spins on the global lock with no per-episode
     events, so the tracked episodes can only undercount *)
  if wa + wt > stats.Stats.lock_wait_cycles then
    note "tracked lock-wait episodes (%d) exceed stats.lock_wait_cycles (%d)"
      (wa + wt) stats.Stats.lock_wait_cycles;
  match !errs with [] -> Ok () | errs -> Error (List.rev errs)

(* Process-level GC pressure, stamped into a registry snapshot at export
   time.

   Deliberately not recorded by [Collect] during the run: the online
   collector and the trace-replay collector are compared for exact
   registry equality, and process-wide GC totals necessarily differ
   between those two executions. Stamping the copy that leaves the
   process keeps that invariant while still shipping GC pressure through
   the JSON and Prometheus exporters like every other series. *)

let stamp reg =
  (* merge with an empty registry: a fresh copy, the caller's registry
     stays comparable *)
  let out = Registry.merge reg (Registry.create ()) in
  let s = Gc.quick_stat () in
  Registry.inc out ~by:(int_of_float s.Gc.minor_words) "stx_gc_minor_words" [];
  Registry.inc out ~by:s.Gc.major_collections "stx_gc_major_collections" [];
  out

(** A deliberately small JSON tree, printer and parser.

    The dependency set has no JSON library (by design — see DESIGN.md),
    and three subsystems now need one: the metrics snapshot exporter,
    the bench pipeline's [BENCH_stx.json], and [bench --compare]'s
    reader. This module is the single shared implementation. Integers
    are kept distinct from floats so snapshots of integral counters
    round-trip byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no insignificant whitespace), object fields in the order
    given, strings escaped per RFC 8259. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document; [Error] carries a byte offset.
    Numeric literals without [.], [e] or [E] become [Int]. *)

(** Accessors return [None] on a shape mismatch so callers can fold
    missing-field and wrong-type errors into one path. *)

val member : string -> t -> t option
val as_string : t -> string option
val as_int : t -> int option
val as_float : t -> float option
(** [as_float] also accepts [Int]. *)

val as_list : t -> t list option
val as_obj : t -> (string * t) list option

open Stx_sim

(** The metrics collector: folds the {!Stx_sim.Machine} event stream into
    a {!Registry}.

    The same fold runs in two places — online, composed onto a live run's
    [on_event] hook, and offline, replaying a full {!Stx_trace.Trace}
    capture ({!of_trace}). Because both paths execute this one state
    machine over the same stream, the two registries must be {b equal},
    and {!check} reconciles either of them against the run's [Stats] with
    the same discipline as [Trace.check]: exact equalities wherever the
    simulator's accounting permits, explicit inequalities where it does
    not (see {!check}).

    {2 Metrics populated}

    Histograms (cycle values unless noted):
    - [stx_tx_latency_cycles{outcome=commit|abort}] — per-attempt latency
    - [stx_tx_retries{}] — aborted attempts preceding each commit
    - [stx_rset_lines{outcome=...}], [stx_wset_lines{outcome=...}] —
      read/write-set size (cache lines) when the attempt ended
    - [stx_lock_wait_cycles{outcome=acquired|timeout|aborted}] — advisory
      lock wait episodes (only episodes that actually spun)
    - [stx_backoff_cycles{}] — per-backoff delay
    - [stx_irrevocable_cycles{}] — latency of irrevocable commits

    Phase counters, the per-atomic-block profile:
    [stx_phase_cycles{ab=N,phase=P}] with [P] one of
    - [prefix] — speculative cycles before the first advisory-lock
      acquire (the whole attempt, for lock-free commits)
    - [lock_wait] — spinning on advisory locks inside committed attempts
    - [suffix] — serialized cycles from first acquire to commit
    - [irrevocable] — committed cycles under the global lock
    - [stm] — committed software-tier attempts ([htm-stm-lock] fallback;
      one undivided phase — their version-word traffic is reported by the
      [stx_stm_validation_cycles] counter instead)
    - [backoff] — inter-attempt polite backoff
    - [wasted] — cycles of aborted attempts (either tier)

    Mirror counters for reconciliation: [stx_commits],
    [stx_aborts{kind=...}], [stx_irrevocable_entries],
    [stx_lock_acquires], [stx_lock_timeouts], [stx_alps_executed],
    [stx_alps_fired]; and for the software tier [stx_stm_commits],
    [stx_stm_aborts{kind=...}] (kinds [stm_validation], [stm_hw_owned],
    [stm_lock_subscription], [stm_explicit] — the same labels the
    hardware-side [stx_aborts] uses for its [stm_conflict] kind), and
    [stx_stm_validation_cycles]. Software commits and aborts also feed
    [stx_commits], [stx_tx_latency_cycles], the set-size histograms and
    [stx_tx_retries], matching the [Stats] convention that the global
    commit/abort counters include the software tier.

    Every series additionally carries [policy=<label>], the
    {!Stx_policy.label} of the bundle the run executed under. The readers
    below ({!phase_cycles}, {!phase_total}, {!check}) match series by
    label {e subset}, so they read a single-policy registry transparently
    and sum across bundles in a merged one. *)

type t

val create : ?policy:Stx_policy.t -> unit -> t
(** [policy] (default {!Stx_policy.default}) is stamped as the [policy]
    label on every series; pass the bundle the machine runs under. *)

val handler : t -> time:int -> Machine.event -> unit
(** Shaped like [Machine.run]'s [?on_event], same as [Trace.handler]. *)

val registry : t -> Registry.t
(** The registry being populated (live — callers must not mutate). *)

val of_trace : ?policy:Stx_policy.t -> Stx_trace.Trace.t -> Registry.t
(** Replay a full capture through a fresh collector. Pass the same
    [policy] as the run that produced the trace for registries that
    compare equal to the online collector's. *)

val check : Registry.t -> Stats.t -> (unit, string list) result
(** Reconcile a collected registry against the run's inline counters.
    Exact: commits, aborts by kind, irrevocable entries, lock
    acquires/timeouts, ALP executions and firings, commit-latency sum =
    [useful_cycles], abort-latency sum = [wasted_cycles], backoff sum =
    [backoff_cycles], retries observations = commits, the software-tier
    counters ([stx_stm_commits], [stx_stm_aborts] total and by kind,
    [stx_stm_validation_cycles]) against their [Stats] fields, and the
    phase identities [prefix + lock_wait + suffix + irrevocable + stm =
    useful_cycles], [wasted = wasted_cycles], [backoff =
    backoff_cycles]. Bounded: acquired+timed-out wait episodes sum to at
    most [lock_wait_cycles] (an episode cut short by an abort folds its
    tail spin into the abort path, so the tracked episodes undercount).
    [Error] carries one message per divergence. *)

(** {2 Phase profile readout} *)

type phase = Prefix | Lock_wait | Suffix | Irrevocable | Stm | Backoff | Wasted

val phases : phase list
(** In presentation order. *)

val phase_label : phase -> string

val phase_cycles : Registry.t -> ab:int -> phase -> int
val abs_profiled : Registry.t -> int list
(** Atomic blocks with any phase attribution, ascending. *)

val phase_total : Registry.t -> phase -> int
(** Summed over atomic blocks. *)

(* Values are cycle counts, set sizes and retry counts: non-negative ints
   far below 2^62, so 63 buckets (value 0 plus one per bit width) cover
   the whole domain. *)

let nbuckets = 63

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int; (* max_int while empty *)
  mutable max_v : int;
  buckets : int array;
  bmax : int array; (* largest value observed per bucket; 0 where empty *)
}

let create () =
  {
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
    buckets = Array.make nbuckets 0;
    bmax = Array.make nbuckets 0;
  }

let is_empty t = t.count = 0

let bucket_index v =
  let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
  bits 0 v

let bucket_lower k = if k = 0 then 0 else 1 lsl (k - 1)
let bucket_upper k = if k = 0 then 0 else (1 lsl k) - 1

let add t v =
  if v < 0 then invalid_arg "Hist.add: negative value";
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let k = bucket_index v in
  t.buckets.(k) <- t.buckets.(k) + 1;
  if v > t.bmax.(k) then t.bmax.(k) <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Hist.quantile: q outside [0,1]";
  if t.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let k = ref 0 and cum = ref t.buckets.(0) in
    while !cum < rank do
      incr k;
      cum := !cum + t.buckets.(!k)
    done;
    (* the rank bucket is occupied, so its per-bucket max is an actually
       observed value — at most one bucket above the true order statistic,
       never an invented boundary like bucket_upper *)
    t.bmax.(!k)
  end

let p50 t = quantile t 0.5
let p90 t = quantile t 0.9
let p99 t = quantile t 0.99

let merge a b =
  let t = create () in
  t.count <- a.count + b.count;
  t.sum <- a.sum + b.sum;
  t.min_v <- min a.min_v b.min_v;
  t.max_v <- max a.max_v b.max_v;
  Array.iteri (fun i c -> t.buckets.(i) <- c + b.buckets.(i)) a.buckets;
  Array.iteri (fun i m -> t.bmax.(i) <- max m b.bmax.(i)) a.bmax;
  t

let buckets t =
  let acc = ref [] in
  for k = nbuckets - 1 downto 0 do
    if t.buckets.(k) > 0 then acc := (k, t.buckets.(k)) :: !acc
  done;
  !acc

let buckets_full t =
  let acc = ref [] in
  for k = nbuckets - 1 downto 0 do
    if t.buckets.(k) > 0 then acc := (k, t.buckets.(k), t.bmax.(k)) :: !acc
  done;
  !acc

let restore ~count ~sum ~min_value ~max_value triples =
  let t = create () in
  let ok = ref (count >= 0 && sum >= 0 && max_value >= 0) in
  let total = ref 0 and last = ref (-1) in
  List.iter
    (fun (k, c, m) ->
      if
        k <= !last || k >= nbuckets || c <= 0 || m < bucket_lower k
        || m > bucket_upper k
      then ok := false
      else begin
        last := k;
        total := !total + c;
        t.buckets.(k) <- c;
        t.bmax.(k) <- m
      end)
    triples;
  if (not !ok) || !total <> count then None
  else begin
    t.count <- count;
    t.sum <- sum;
    t.min_v <- (if count = 0 then max_int else min_value);
    t.max_v <- max_value;
    (* an empty histogram has canonical extrema; a populated one must
       place its extrema in its outermost occupied buckets, and the top
       bucket's observed max must be the global max *)
    if count = 0 then
      if sum = 0 && min_value = 0 && max_value = 0 then Some t else None
    else
      match (buckets t, List.rev (buckets t)) with
      | (lo, _) :: _, (hi, _) :: _
        when bucket_index min_value = lo
             && bucket_index max_value = hi
             && min_value <= max_value
             && t.bmax.(hi) = max_value
             && t.bmax.(lo) >= min_value ->
        Some t
      | _ -> None
  end

let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && a.buckets = b.buckets && a.bmax = b.bmax

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d sum=%d min=%d p50=%d p99=%d max=%d" t.count t.sum
      (min_value t) (p50 t) (p99 t) t.max_v

open Stx_sim

(** One simulation's full measurement: the inline [Stats] plus the
    registry the metrics collector built from the same run's event
    stream. This is the unit the runner caches and merges. *)

type t = { stats : Stats.t; metrics : Registry.t }

val simulate :
  ?seed:int ->
  ?policy:Stx_core.Policy.params ->
  ?htm_policy:Stx_policy.t ->
  ?lock_timeout:int ->
  ?locks:int ->
  ?max_waiters:int ->
  ?max_steps:int ->
  ?on_event:(time:int -> Machine.event -> unit) ->
  cfg:Stx_machine.Config.t ->
  mode:Stx_core.Mode.t ->
  Machine.spec ->
  t
(** [Machine.run] with a {!Collect} collector composed onto [on_event]
    (the caller's hook, when given, still sees every event). The
    returned registry always reconciles with the returned stats — that
    invariant is enforced by the test suite via {!Collect.check}. *)

val merge : t -> t -> t
(** [Stats.merge] and [Registry.merge], pairwise. *)

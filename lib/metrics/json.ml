type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_literal f)
    | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        l;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
        advance ();
        Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            code := (!code * 16) + hex_digit (peek ());
            advance ()
          done;
          (* BMP only; enough for our own output *)
          if !code < 0x80 then Buffer.add_char b (Char.chr !code)
          else Buffer.add_char b '?'
        | _ -> fail "bad escape");
        go ()
      | '\000' -> fail "unterminated string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  and literal lit v =
    String.iter expect lit;
    v
  and number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else (
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number"))
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then (
      advance ();
      List [])
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          items (v :: acc)
        | ']' ->
          advance ();
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then (
      advance ();
      Obj [])
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ((k, v) :: acc)
        | '}' ->
          advance ();
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) ->
    Error (Printf.sprintf "%s at byte %d" msg at)

(* --- accessors ------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let as_string = function Str s -> Some s | _ -> None
let as_int = function Int n -> Some n | _ -> None

let as_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj fields -> Some fields | _ -> None

type labels = (string * string) list
type value = Counter of int | Gauge of int | Histogram of Hist.t

type cell = C of int ref | G of int ref | H of Hist.t

type t = { tbl : (string * labels, cell) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* --- key validation -------------------------------------------------- *)

let name_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* Label values are free-form (Prometheus allows any UTF-8): every
   exporter escapes what its framing needs — see [prom_escape] and
   [codec_escape]; JSON is covered by the RFC 8259 printer. Only the
   empty string stays reserved, so the codec's "-" placeholder and the
   human-readable [label_string] form stay unambiguous. *)
let label_value_ok s = s <> ""

let key name labels =
  if not (name_ok name) then
    invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
  let labels = List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels in
  let rec check = function
    | [] -> ()
    | (k, v) :: rest ->
      if not (name_ok k) then
        invalid_arg (Printf.sprintf "Registry: bad label name %S" k);
      if not (label_value_ok v) then
        invalid_arg (Printf.sprintf "Registry: bad label value %S" v);
      (match rest with
      | (k', _) :: _ when k' = k ->
        invalid_arg (Printf.sprintf "Registry: duplicate label %S" k)
      | _ -> ());
      check rest
  in
  check labels;
  (name, labels)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let cell t key mk =
  match Hashtbl.find_opt t.tbl key with
  | Some c -> c
  | None ->
    let c = mk () in
    Hashtbl.add t.tbl key c;
    c

let type_clash (name, _) have want =
  invalid_arg
    (Printf.sprintf "Registry: %s is a %s, used as a %s" name (kind_name have)
       want)

let inc t ?(by = 1) name labels =
  if by < 0 then invalid_arg "Registry.inc: negative increment";
  let k = key name labels in
  match cell t k (fun () -> C (ref 0)) with
  | C r -> r := !r + by
  | c -> type_clash k c "counter"

let set_gauge t name labels v =
  let k = key name labels in
  match cell t k (fun () -> G (ref v)) with
  | G r -> if v > !r then r := v
  | c -> type_clash k c "gauge"

let observe t name labels v =
  let k = key name labels in
  match cell t k (fun () -> H (Hist.create ())) with
  | H h -> Hist.add h v
  | c -> type_clash k c "histogram"

let find t name labels = Hashtbl.find_opt t.tbl (key name labels)

let counter_value t name labels =
  match find t name labels with Some (C r) -> !r | _ -> 0

let gauge_value t name labels =
  match find t name labels with Some (G r) -> !r | _ -> 0

let histogram t name labels =
  match find t name labels with Some (H h) -> Some h | _ -> None

(* --- ordered iteration ----------------------------------------------- *)

let sorted t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.tbl []
  |> List.sort (fun ((n1, l1), _) ((n2, l2), _) ->
         match compare (n1 : string) n2 with 0 -> compare l1 l2 | c -> c)

let export = function
  | C r -> Counter !r
  | G r -> Gauge !r
  | H h -> Histogram h

let fold f t init =
  List.fold_left
    (fun acc ((name, labels), c) -> f name labels (export c) acc)
    init (sorted t)

let cardinality t = Hashtbl.length t.tbl

(* --- merge / compare -------------------------------------------------- *)

let merge a b =
  let t = create () in
  let put ((name, _) as k) c =
    match (Hashtbl.find_opt t.tbl k, c) with
    | None, C r -> Hashtbl.add t.tbl k (C (ref !r))
    | None, G r -> Hashtbl.add t.tbl k (G (ref !r))
    | None, H h -> Hashtbl.add t.tbl k (H (Hist.merge h (Hist.create ())))
    | Some (C r0), C r -> r0 := !r0 + !r
    | Some (G r0), G r -> if !r > !r0 then r0 := !r
    | Some (H h0), H h -> Hashtbl.replace t.tbl k (H (Hist.merge h0 h))
    | Some have, want ->
      invalid_arg
        (Printf.sprintf "Registry.merge: %s is a %s on one side, a %s on the other"
           name (kind_name have) (kind_name want))
  in
  Hashtbl.iter put a.tbl;
  Hashtbl.iter put b.tbl;
  t

(* The store codec frames lines with spaces, pairs with commas and
   key/value with '='; free-form values travel with those bytes (plus
   the backslash itself and line breaks) backslash-escaped. *)
let codec_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | ' ' -> Buffer.add_string b "\\s"
      | ',' -> Buffer.add_string b "\\c"
      | '=' -> Buffer.add_string b "\\e"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let codec_unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let ok = ref true in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
      incr i;
      (match s.[!i] with
      | '\\' -> Buffer.add_char b '\\'
      | 's' -> Buffer.add_char b ' '
      | 'c' -> Buffer.add_char b ','
      | 'e' -> Buffer.add_char b '='
      | 'n' -> Buffer.add_char b '\n'
      | 't' -> Buffer.add_char b '\t'
      | 'r' -> Buffer.add_char b '\r'
      | _ -> ok := false)
    | '\\' -> ok := false
    | c -> Buffer.add_char b c);
    incr i
  done;
  if !ok then Some (Buffer.contents b) else None

let label_string labels =
  if labels = [] then "-"
  else
    String.concat ","
      (List.map (fun (k, v) -> k ^ "=" ^ codec_escape v) labels)

let diff a b =
  let describe (name, labels) = Printf.sprintf "%s{%s}" name (label_string labels) in
  let errs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let rec walk xs ys =
    match (xs, ys) with
    | [], [] -> ()
    | (k, _) :: rest, [] ->
      note "%s present only on the left" (describe k);
      walk rest []
    | [], (k, _) :: rest ->
      note "%s present only on the right" (describe k);
      walk [] rest
    | ((k1, c1) :: r1 as l1), ((k2, c2) :: r2 as l2) ->
      let cmp =
        match compare (fst k1 : string) (fst k2) with
        | 0 -> compare (snd k1) (snd k2)
        | c -> c
      in
      if cmp < 0 then begin
        note "%s present only on the left" (describe k1);
        walk r1 l2
      end
      else if cmp > 0 then begin
        note "%s present only on the right" (describe k2);
        walk l1 r2
      end
      else begin
        (match (c1, c2) with
        | C a, C b when !a <> !b ->
          note "%s: counter %d vs %d" (describe k1) !a !b
        | G a, G b when !a <> !b -> note "%s: gauge %d vs %d" (describe k1) !a !b
        | H a, H b when not (Hist.equal a b) ->
          note "%s: histogram (%s) vs (%s)" (describe k1)
            (Format.asprintf "%a" Hist.pp a)
            (Format.asprintf "%a" Hist.pp b)
        | C _, C _ | G _, G _ | H _, H _ -> ()
        | a, b ->
          note "%s: %s vs %s" (describe k1) (kind_name a) (kind_name b));
        walk r1 r2
      end
  in
  walk (sorted a) (sorted b);
  List.rev !errs

let equal a b = diff a b = []

(* --- exporters -------------------------------------------------------- *)

let schema_version = 1

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let metric_json (name, labels) c =
  let base = [ ("name", Json.Str name); ("labels", labels_json labels) ] in
  match c with
  | C r -> Json.Obj (base @ [ ("type", Json.Str "counter"); ("value", Json.Int !r) ])
  | G r -> Json.Obj (base @ [ ("type", Json.Str "gauge"); ("value", Json.Int !r) ])
  | H h ->
    Json.Obj
      (base
      @ [
          ("type", Json.Str "histogram");
          ("count", Json.Int (Hist.count h));
          ("sum", Json.Int (Hist.sum h));
          ("min", Json.Int (Hist.min_value h));
          ("max", Json.Int (Hist.max_value h));
          ( "buckets",
            Json.List
              (List.map
                 (fun (k, c, m) -> Json.List [ Json.Int k; Json.Int c; Json.Int m ])
                 (Hist.buckets_full h)) );
        ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "stx-metrics");
      ("version", Json.Int schema_version);
      ("metrics", Json.List (List.map (fun (k, c) -> metric_json k c) (sorted t)));
    ]

let to_json_string t = Json.to_string (to_json t)

(* Text-exposition escaping for label values: backslash, double quote
   and newline, exactly the three the format defines. OCaml's %S is NOT
   this (it also escapes tabs, bytes >= 128, ...). *)
let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

let to_prometheus t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let last_name = ref "" in
  List.iter
    (fun ((name, labels), c) ->
      if name <> !last_name then begin
        last_name := name;
        line "# TYPE %s %s" name (kind_name c)
      end;
      match c with
      | C r -> line "%s%s %d" name (prom_labels labels) !r
      | G r -> line "%s%s %d" name (prom_labels labels) !r
      | H h ->
        let cum = ref 0 in
        List.iter
          (fun (k, cnt) ->
            cum := !cum + cnt;
            line "%s_bucket%s %d" name
              (prom_labels (labels @ [ ("le", string_of_int (Hist.bucket_upper k)) ]))
              !cum)
          (Hist.buckets h);
        line "%s_bucket%s %d" name
          (prom_labels (labels @ [ ("le", "+Inf") ]))
          (Hist.count h);
        line "%s_sum%s %d" name (prom_labels labels) (Hist.sum h);
        line "%s_count%s %d" name (prom_labels labels) (Hist.count h))
    (sorted t);
  Buffer.contents b

(* --- store codec ------------------------------------------------------ *)

let encode t =
  List.map
    (fun ((name, labels), c) ->
      let ls = label_string labels in
      match c with
      | C r -> Printf.sprintf "counter %s %s %d" name ls !r
      | G r -> Printf.sprintf "gauge %s %s %d" name ls !r
      | H h ->
        let triples = Hist.buckets_full h in
        Printf.sprintf "hist %s %s %d %d %d %d %d%s" name ls (Hist.count h)
          (Hist.sum h) (Hist.min_value h) (Hist.max_value h)
          (List.length triples)
          (String.concat ""
             (List.map
                (fun (k, c, m) -> Printf.sprintf " %d %d %d" k c m)
                triples)))
    (sorted t)

let parse_labels s =
  if s = "-" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match String.index_opt p '=' with
        | None -> None
        | Some i -> (
          let k = String.sub p 0 i
          and raw = String.sub p (i + 1) (String.length p - i - 1) in
          match codec_unescape raw with
          | Some v when name_ok k && label_value_ok v ->
            go ((k, v) :: acc) rest
          | _ -> None))
    in
    go [] parts

let decode lines =
  let t = create () in
  let ok = ref true in
  let int_of s = match int_of_string_opt s with Some n -> n | None -> ok := false; 0 in
  List.iter
    (fun ln ->
      if !ok then
        match String.split_on_char ' ' ln with
        | [ "counter"; name; ls; v ] when name_ok name -> (
          match parse_labels ls with
          | Some labels ->
            let v = int_of v in
            if !ok then Hashtbl.replace t.tbl (name, labels) (C (ref v))
          | None -> ok := false)
        | [ "gauge"; name; ls; v ] when name_ok name -> (
          match parse_labels ls with
          | Some labels ->
            let v = int_of v in
            if !ok then Hashtbl.replace t.tbl (name, labels) (G (ref v))
          | None -> ok := false)
        | "hist" :: name :: ls :: count :: sum :: mn :: mx :: npairs :: rest
          when name_ok name -> (
          match parse_labels ls with
          | Some labels ->
            let count = int_of count
            and sum = int_of sum
            and mn = int_of mn
            and mx = int_of mx
            and npairs = int_of npairs in
            let rec triples acc = function
              | [] -> Some (List.rev acc)
              | k :: c :: m :: rest ->
                triples ((int_of k, int_of c, int_of m) :: acc) rest
              | _ -> None
            in
            (match triples [] rest with
            | Some ps when List.length ps = npairs && !ok -> (
              match
                Hist.restore ~count ~sum ~min_value:mn ~max_value:mx ps
              with
              | Some h -> Hashtbl.replace t.tbl (name, labels) (H h)
              | None -> ok := false)
            | _ -> ok := false)
          | None -> ok := false)
        | _ -> ok := false)
    lines;
  if !ok then Some t else None

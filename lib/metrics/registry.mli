(** A labelled metrics registry: counters, gauges and {!Hist} histograms
    keyed by (name, sorted label set).

    Everything the registry exposes — iteration, the JSON snapshot, the
    Prometheus text, the store codec — is ordered by (name, labels), so
    two registries holding the same data render byte-identically no
    matter what order events arrived in. That determinism is what lets
    the online collector and the trace-replay collector be compared for
    exact equality (see {!Collect}).

    {!merge} follows the [Stats.merge] conventions: counters and
    histograms are accumulations and sum; gauges are high-water marks
    (capacities, not counts) and take the max. *)

type labels = (string * string) list

type value = Counter of int | Gauge of int | Histogram of Hist.t
(** [Histogram] exposes the registry's own histogram: callers must not
    mutate it. *)

type t

val create : unit -> t

(** Metric and label names must match [[a-zA-Z_][a-zA-Z0-9_]*]; label
    values may be any non-empty string (each exporter escapes what its
    framing needs — Prometheus text per the exposition spec, the store
    codec with backslash sequences, JSON per RFC 8259). An empty value,
    a malformed name, reusing a (name, labels) key at a different
    metric type, or duplicate label keys raises [Invalid_argument]:
    metric identity is part of each exporter's schema, so a malformed
    one is a programming error, not data. *)

val inc : t -> ?by:int -> string -> labels -> unit
(** Add [by] (default 1, must be >= 0) to a counter, creating it at 0. *)

val set_gauge : t -> string -> labels -> int -> unit
(** Raise a gauge to [v] if [v] exceeds its current value (create at [v]). *)

val observe : t -> string -> labels -> int -> unit
(** Record one histogram observation (non-negative). *)

val counter_value : t -> string -> labels -> int
(** 0 when absent. *)

val gauge_value : t -> string -> labels -> int
(** 0 when absent. *)

val histogram : t -> string -> labels -> Hist.t option

val fold :
  (string -> labels -> value -> 'a -> 'a) -> t -> 'a -> 'a
(** In (name, labels) order. *)

val cardinality : t -> int

val merge : t -> t -> t
(** Fresh registry; counters/histograms sum, gauges max. Raises
    [Invalid_argument] if the two registries disagree on a key's type. *)

val equal : t -> t -> bool
val diff : t -> t -> string list
(** Human-readable divergences, [[]] iff {!equal}. *)

val schema_version : int
(** Version stamped into the JSON snapshot ({b 1}). Bump on any change
    to the snapshot's shape. *)

val to_json : t -> Json.t
val to_json_string : t -> string
(** The snapshot document:
    [{"schema":"stx-metrics","version":1,"metrics":[...]}] with one
    entry per metric in (name, labels) order. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# TYPE] per metric name, histograms as
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count]. Label
    values are escaped per the text-format spec (backslash, double
    quote, newline). *)

val encode : t -> string list
(** Line-oriented codec for the result store: one line per metric,
    deterministic order, values space-separated; label values travel
    backslash-escaped so free-form values round-trip. *)

val decode : string list -> t option
(** [None] on any malformed line — the store treats that as corruption. *)

open Stx_sim

type t = { stats : Stats.t; metrics : Registry.t }

let simulate ?seed ?policy ?htm_policy ?lock_timeout ?locks ?max_waiters
    ?max_steps ?on_event ~cfg ~mode spec =
  let c = Collect.create ?policy:htm_policy () in
  let hook =
    match on_event with
    | None -> Collect.handler c
    | Some f ->
      fun ~time ev ->
        Collect.handler c ~time ev;
        f ~time ev
  in
  let stats =
    Machine.run ?seed ?policy ?htm_policy ?lock_timeout ?locks ?max_waiters
      ?max_steps ~on_event:hook ~cfg ~mode spec
  in
  { stats; metrics = Collect.registry c }

let merge a b =
  {
    stats = Stats.merge a.stats b.stats;
    metrics = Registry.merge a.metrics b.metrics;
  }

(* Dense growable bit matrix: rows are cache lines, columns are cores.

   Replaces the Hashtbl-of-bitmask reader/writer tracking in [Htm]:
   line -> core-set membership becomes a word load plus a mask, and the
   62-core ceiling (one OCaml int per mask) becomes a per-row word
   vector.  Rows grow on demand (lines are allocated monotonically by
   [Alloc]); reads beyond the current row capacity are simply 0, so
   probing never forces growth.

   62 bits per word keeps every word a non-negative OCaml immediate,
   which makes "is this row empty" a plain [= 0] compare. *)

let bits_per_word = 62

type t = {
  cols : int;
  words_per_row : int;
  mutable rows : int;  (* row capacity *)
  mutable bits : int array;  (* rows * words_per_row *)
}

let create ~cols ?(rows_hint = 1024) () =
  if cols < 1 then invalid_arg "Bitmat.create: cols < 1";
  let words_per_row = (cols + bits_per_word - 1) / bits_per_word in
  let rows = max 16 rows_hint in
  { cols; words_per_row; rows; bits = Intpool.acquire ~len:(rows * words_per_row) ~fill:0 }

(* Release the backing array for reuse; [t] must not be used after. *)
let retire t = Intpool.release t.bits

let cols t = t.cols
let words_per_row t = t.words_per_row

let ensure_row t row =
  if row >= t.rows then begin
    let rows = ref (t.rows * 2) in
    while row >= !rows do
      rows := !rows * 2
    done;
    let bits = Intpool.acquire ~len:(!rows * t.words_per_row) ~fill:0 in
    Array.blit t.bits 0 bits 0 (t.rows * t.words_per_row);
    Intpool.release t.bits;
    t.rows <- !rows;
    t.bits <- bits
  end

(* The [words_per_row = 1] fast paths matter: at <= 62 cores (every
   configuration the experiments run) they turn the word/bit split into
   a plain shift, and hot callers hit these per memory access. *)

let set t ~row ~col =
  ensure_row t row;
  if t.words_per_row = 1 then t.bits.(row) <- t.bits.(row) lor (1 lsl col)
  else begin
    let w = (row * t.words_per_row) + (col / bits_per_word) in
    t.bits.(w) <- t.bits.(w) lor (1 lsl (col mod bits_per_word))
  end

let clear t ~row ~col =
  if row < t.rows then begin
    if t.words_per_row = 1 then t.bits.(row) <- t.bits.(row) land lnot (1 lsl col)
    else begin
      let w = (row * t.words_per_row) + (col / bits_per_word) in
      t.bits.(w) <- t.bits.(w) land lnot (1 lsl (col mod bits_per_word))
    end
  end

let test t ~row ~col =
  row < t.rows
  &&
  (if t.words_per_row = 1 then t.bits.(row) land (1 lsl col) <> 0
   else
     t.bits.((row * t.words_per_row) + (col / bits_per_word))
       land (1 lsl (col mod bits_per_word))
     <> 0)

(* Word [w] of the row's mask vector; 0 beyond capacity. *)
let row_word t ~row w =
  if row < t.rows then t.bits.((row * t.words_per_row) + w) else 0

(* Loops are top-level functions taking their whole state as arguments:
   a local [let rec] capturing variables compiles to a closure
   allocation per call without flambda, which would put minor-heap
   traffic back on the per-access path this module exists to clear. *)
let rec empty_loop bits base wpr w =
  w >= wpr || (bits.(base + w) = 0 && empty_loop bits base wpr (w + 1))

let row_is_empty t ~row =
  row >= t.rows
  ||
  (if t.words_per_row = 1 then t.bits.(row) = 0
   else empty_loop t.bits (row * t.words_per_row) t.words_per_row 0)

(* ctz of an isolated bit [b = 1 lsl k], k in 0..61: powers of two are
   distinct mod 67 (2 is a primitive root), so one mod plus a table load
   recovers k without loops, refs, or allocation. *)
let ctz_tbl =
  let t = Array.make 67 (-1) in
  for k = 0 to 61 do
    t.((1 lsl k) mod 67) <- k
  done;
  t

let ctz_pow2 b = ctz_tbl.(b mod 67)

(* Walk the set columns of one mask word whose lowest column is
   [col0].  Recursion instead of a ref keeps the walk allocation-free
   (the closure [f] is the caller's concern; hot paths use [row_word]
   and open-code the walk). *)
let rec iter_word f col0 m =
  if m <> 0 then begin
    let b = m land -m in
    f (col0 + ctz_pow2 b);
    iter_word f col0 (m land lnot b)
  end

let iter_row t ~row f =
  if row < t.rows then begin
    let base = row * t.words_per_row in
    for w = 0 to t.words_per_row - 1 do
      iter_word f (w * bits_per_word) t.bits.(base + w)
    done
  end

(* Any column set in the row besides [except]?  [except] = -1 tests
   plain non-emptiness. *)
let rec other_loop bits base wpr ew ebit w =
  w < wpr
  &&
  let word = bits.(base + w) in
  let word = if w = ew then word land lnot ebit else word in
  word <> 0 || other_loop bits base wpr ew ebit (w + 1)

let row_has_other t ~row ~except =
  row < t.rows
  &&
  (if t.words_per_row = 1 then begin
     let word = t.bits.(row) in
     let word = if except >= 0 then word land lnot (1 lsl except) else word in
     word <> 0
   end
   else begin
     let base = row * t.words_per_row in
     let ew = if except >= 0 then except / bits_per_word else -1 in
     let ebit = if except >= 0 then 1 lsl (except mod bits_per_word) else 0 in
     other_loop t.bits base t.words_per_row ew ebit 0
   end)

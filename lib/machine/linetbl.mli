(** Open-addressed int-key -> int-value table, built for reuse on the
    simulator hot path: no allocation on add/lookup/reset, O(live)
    [reset], and deterministic insertion-order iteration (the order
    survives growth).  Keys must be non-negative; capacity doubles past
    50% load, so the capacity hint is advisory. *)

type t

val create : ?capacity_hint:int -> unit -> t
(** Preallocate for about [capacity_hint] entries (default 16). *)

val length : t -> int
val capacity : t -> int  (** current slot count (power of two) *)

val mem : t -> int -> bool

val idx : t -> int -> int
(** Occupied slot of the key, or -1.  The slot stays valid until the
    next [set]/[add]/[reset]; read it with {!value_at}. *)

val value_at : t -> int -> int
val set_value_at : t -> int -> int -> unit

val set : t -> int -> int -> int
(** Insert or overwrite; returns the key's slot. *)

val add : t -> int -> int -> unit
(** [set] with the slot discarded. *)

val add_if_absent : t -> int -> int -> bool
(** Insert only when the key is absent; true iff it was new. *)

val reset : t -> unit
(** Drop every entry in O(live entries); capacity is retained. *)

val key_of_order : t -> int -> int
(** [key_of_order t i] is the [i]-th inserted key (0-based), for
    closure-free iteration: [for i = 0 to length t - 1 do ... done]. *)

val value_of_order : t -> int -> int
(** Value paired with {!key_of_order}. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f key value] in insertion order. *)

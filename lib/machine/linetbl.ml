(* Open-addressed int-key -> int-value table for the simulator hot path.

   The HTM read/write sets, store tags and write buffers were Hashtbls,
   which allocate a bucket cons on every add and a [Some] on every
   lookup.  This table is three flat int arrays: linear-probed [keys]
   and [vals], plus an insertion-order side array of occupied slots so
   iteration is both allocation-free and deterministic (Hashtbl
   iteration order depends on the hash layout; commit and stm_publish
   walk the write set, so the order must not drift with capacity).
   [reset] clears only the occupied slots - O(live entries), not
   O(capacity) - which is what makes reuse across millions of
   transaction attempts cheap.

   Keys must be non-negative ([-1] is the empty-slot sentinel).  The
   table grows by doubling past 50% load, so a capacity hint is an
   optimisation, never a correctness bound: HTM capacity budgets are
   enforced by the caller, not here. *)

type t = {
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable keys : int array;  (* -1 = empty *)
  mutable vals : int array;
  mutable order : int array;  (* occupied slots in insertion order, [n] live *)
  mutable n : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?(capacity_hint = 16) () =
  let cap = next_pow2 (max 16 (2 * capacity_hint)) in
  {
    mask = cap - 1;
    keys = Array.make cap (-1);
    vals = Array.make cap 0;
    order = Array.make cap 0;
    n = 0;
  }

let length t = t.n
let capacity t = t.mask + 1

(* Fibonacci-style multiplicative hash; the xor-shift folds high bits
   back down so that sequential line numbers spread across slots. *)
let hash k =
  let h = k * 0x39E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land max_int

(* The probe loop is a top-level function with its state in arguments: a
   local loop (whether a [let rec] closure or a [ref] counter) would
   allocate on every call without flambda, defeating the table's point. *)
let rec probe_loop keys mask k i =
  let kk = keys.(i) in
  if kk >= 0 && kk <> k then probe_loop keys mask k ((i + 1) land mask) else i

(* Slot holding [k], or the empty slot where its probe chain ends. *)
let probe t k = probe_loop t.keys t.mask k (hash k land t.mask)

let mem t k = k >= 0 && t.keys.(probe t k) = k

(* The occupied slot of [k], or -1.  Callers pair this with [value_at]
   to read without allocating an option. *)
let idx t k =
  if k < 0 then -1
  else
    let i = probe t k in
    if t.keys.(i) = k then i else -1

let value_at t i = t.vals.(i)
let set_value_at t i v = t.vals.(i) <- v
let key_of_order t oi = t.keys.(t.order.(oi))
let value_of_order t oi = t.vals.(t.order.(oi))

let grow t =
  let old_keys = t.keys and old_vals = t.vals and old_order = t.order in
  let n = t.n in
  let cap = 2 * (t.mask + 1) in
  t.mask <- cap - 1;
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.order <- Array.make cap 0;
  (* reinsert in insertion order so iteration order survives growth *)
  for oi = 0 to n - 1 do
    let slot = old_order.(oi) in
    let k = old_keys.(slot) in
    let i = probe t k in
    t.keys.(i) <- k;
    t.vals.(i) <- old_vals.(slot);
    t.order.(oi) <- i
  done

(* Insert or overwrite; returns the slot of [k]. *)
let rec set t k v =
  if k < 0 then invalid_arg "Linetbl.set: negative key";
  let i = probe t k in
  if t.keys.(i) = k then begin
    t.vals.(i) <- v;
    i
  end
  else if 2 * (t.n + 1) > t.mask + 1 then begin
    grow t;
    set t k v
  end
  else begin
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.order.(t.n) <- i;
    t.n <- t.n + 1;
    i
  end

let add t k v = ignore (set t k v)

(* Insert only if absent; true when the key was new. *)
let add_if_absent t k v =
  if k < 0 then invalid_arg "Linetbl.add_if_absent: negative key";
  let i = probe t k in
  if t.keys.(i) = k then false
  else begin
    ignore (set t k v);
    true
  end

let reset t =
  (* [order] records occupied slots directly, so clearing is a straight
     store per live entry and never disturbs other probe chains (every
     occupied slot goes empty in the same pass) *)
  for oi = 0 to t.n - 1 do
    t.keys.(t.order.(oi)) <- -1
  done;
  t.n <- 0

let iter f t =
  for oi = 0 to t.n - 1 do
    let slot = t.order.(oi) in
    f t.keys.(slot) t.vals.(slot)
  done

(** A set-associative cache of line tags with LRU replacement. Only
    presence is tracked (the data lives in {!Memory}); the hierarchy uses
    presence to charge access latencies and to model coherence
    invalidations. *)

type t

val create : lines:int -> ways:int -> t
(** [lines] must be a multiple of [ways]; the set count must be a power of
    two. *)

val probe : t -> int -> bool
(** [probe t line] reports whether [line] is present, refreshing its LRU
    position on a hit. *)

val holds : t -> int -> bool
(** Presence check without touching LRU state (for coherence snooping). *)

val insert : t -> int -> unit
(** Install [line], evicting the set's LRU victim if the set is full. *)

val insert_evict : t -> int -> int
(** {!insert}, reporting the evicted line (-1 when nothing was evicted:
    the set had room or already held the line) — lets the hierarchy keep
    its presence index exact without rescanning ways. *)

val invalidate : t -> int -> unit
(** Drop [line] if present. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Every resident line, in set/way order. *)

val retire : t -> unit
(** Release the backing storage into the domain-local array pool; the
    cache must not be used afterwards. *)

(** Domain-local recycling of large int arrays (see intpool.ml). *)

val acquire : len:int -> fill:int -> int array
(** An array of [len] elements all equal to [fill]; reuses a released
    array of exactly that length when one is pooled on this domain. *)

val release : int array -> unit
(** Return an array to this domain's pool.  The caller must not touch
    the array afterwards.  Bounded per size class; surplus arrays are
    left to the GC. *)

type addr = int

type t = { mutable data : int array; mutable high : int }

let create ?(initial_words = 1 lsl 16) () =
  { data = Intpool.acquire ~len:initial_words ~fill:0; high = 1 }

let check a = if a <= 0 then invalid_arg "Memory: address must be positive"

let grow t needed =
  let cap = ref (Array.length t.data) in
  while !cap <= needed do
    cap := !cap * 2
  done;
  if !cap > Array.length t.data then begin
    (* pool the doubling chain: the outgrown array is private to [t] *)
    let data = Intpool.acquire ~len:!cap ~fill:0 in
    Array.blit t.data 0 data 0 (Array.length t.data);
    Intpool.release t.data;
    t.data <- data
  end

let load t a =
  check a;
  if a < Array.length t.data then t.data.(a) else 0

let store t a v =
  check a;
  if a >= Array.length t.data then grow t a;
  if a >= t.high then t.high <- a + 1;
  t.data.(a) <- v

let size t = t.high

let line_of ~words_per_line a = a / words_per_line

type core_caches = {
  l1 : Cache.t;
  l2 : Cache.t;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
}

(* [present] indexes which cores privately cache each line (l1 OR l2),
   so the write-path coherence questions — "does anyone else hold this?"
   and "who must be invalidated?" — are a word test instead of a scan
   over every core's ways.  It is kept exact: insertions set the bit,
   and an eviction clears it only when the victim has left both private
   levels. *)
type t = {
  cfg : Config.t;
  cores : core_caches array;
  l3 : Cache.t;
  present : Bitmat.t;
}

let create (cfg : Config.t) =
  let mk_core _ =
    {
      l1 = Cache.create ~lines:cfg.l1_lines ~ways:cfg.l1_ways;
      l2 = Cache.create ~lines:cfg.l2_lines ~ways:cfg.l2_ways;
      accesses = 0;
      l1_hits = 0;
      l2_hits = 0;
      l3_hits = 0;
    }
  in
  {
    cfg;
    cores = Array.init cfg.cores mk_core;
    l3 = Cache.create ~lines:cfg.l3_lines ~ways:cfg.l3_ways;
    present = Bitmat.create ~cols:cfg.cores ~rows_hint:4096 ();
  }

(* Release every backing array for reuse by the next run's hierarchy;
   [t] must not be used afterwards. *)
let retire t =
  Array.iter
    (fun c ->
      Cache.retire c.l1;
      Cache.retire c.l2)
    t.cores;
  Cache.retire t.l3;
  Bitmat.retire t.present

let evict_fixup t c ~core victim =
  if victim >= 0 && not (Cache.holds c.l1 victim) && not (Cache.holds c.l2 victim)
  then Bitmat.clear t.present ~row:victim ~col:core

let access t ~core ~line ~write =
  let c = t.cores.(core) in
  c.accesses <- c.accesses + 1;
  (* a write to a line cached elsewhere pays the coherence upgrade: the
     invalidation round-trip goes through the shared level *)
  let upgrade = write && Bitmat.row_has_other t.present ~row:line ~except:core in
  let latency =
    if Cache.probe c.l1 line then begin
      c.l1_hits <- c.l1_hits + 1;
      t.cfg.l1_latency
    end
    else if Cache.probe c.l2 line then begin
      c.l2_hits <- c.l2_hits + 1;
      evict_fixup t c ~core (Cache.insert_evict c.l1 line);
      t.cfg.l2_latency
    end
    else if Cache.probe t.l3 line then begin
      c.l3_hits <- c.l3_hits + 1;
      evict_fixup t c ~core (Cache.insert_evict c.l2 line);
      evict_fixup t c ~core (Cache.insert_evict c.l1 line);
      Bitmat.set t.present ~row:line ~col:core;
      t.cfg.l3_latency
    end
    else begin
      Cache.insert t.l3 line;
      evict_fixup t c ~core (Cache.insert_evict c.l2 line);
      evict_fixup t c ~core (Cache.insert_evict c.l1 line);
      Bitmat.set t.present ~row:line ~col:core;
      t.cfg.mem_latency
    end
  in
  if upgrade then begin
    (* invalidate exactly the holders (MESI write-invalidate); when no
       other core caches the line — the common case — the whole loop is
       skipped, where the old code scanned every core unconditionally *)
    let f v =
      if v <> core then begin
        let o = t.cores.(v) in
        Cache.invalidate o.l1 line;
        Cache.invalidate o.l2 line;
        Bitmat.clear t.present ~row:line ~col:v
      end
    in
    for w = 0 to Bitmat.words_per_row t.present - 1 do
      Bitmat.iter_word f
        (w * Bitmat.bits_per_word)
        (Bitmat.row_word t.present ~row:line w)
    done;
    max latency t.cfg.Config.l3_latency
  end
  else latency

let invalidate_core t ~core =
  let c = t.cores.(core) in
  Cache.iter (fun line -> Bitmat.clear t.present ~row:line ~col:core) c.l1;
  Cache.iter (fun line -> Bitmat.clear t.present ~row:line ~col:core) c.l2;
  Cache.clear c.l1;
  Cache.clear c.l2

let hit_rates t ~core =
  let c = t.cores.(core) in
  let r hits = if c.accesses = 0 then 0. else float_of_int hits /. float_of_int c.accesses in
  (r c.l1_hits, r c.l2_hits, r c.l3_hits)

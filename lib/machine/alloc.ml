type arena = { mutable cursor : Memory.addr; mutable limit : Memory.addr }

type t = {
  memory : Memory.t;
  arena_words : int;
  line_align : bool;
  words_per_line : int;
  mutable wilderness : Memory.addr; (* next never-used address *)
  (* slot [thread + 1] (0 = shared): a flat array instead of a Hashtbl so
     the per-simulated-alloc lookup neither hashes nor allocates a [Some] *)
  mutable arenas : arena option array;
  mutable allocated : int;
}

let create ?(arena_words = 4096) ?(line_align = true) ~words_per_line memory =
  {
    memory;
    arena_words;
    line_align;
    words_per_line;
    (* start on a line boundary past the null word *)
    wilderness = words_per_line;
    arenas = Array.make 32 None;
    allocated = 0;
  }

let round_up t n =
  if t.line_align then
    (n + t.words_per_line - 1) / t.words_per_line * t.words_per_line
  else n

let fresh_arena t =
  let base = t.wilderness in
  t.wilderness <- t.wilderness + t.arena_words;
  (* touch the last word so the memory high-water mark covers the arena *)
  Memory.store t.memory (t.wilderness - 1) 0;
  { cursor = base; limit = t.wilderness }

let arena_for t thread =
  let i = thread + 1 in
  if i >= Array.length t.arenas then begin
    let nu = Array.make (max (2 * Array.length t.arenas) (i + 1)) None in
    Array.blit t.arenas 0 nu 0 (Array.length t.arenas);
    t.arenas <- nu
  end;
  match t.arenas.(i) with
  | Some a -> a
  | None ->
    let a = fresh_arena t in
    t.arenas.(i) <- Some a;
    a

let alloc_in t arena n =
  let n = round_up t (if t.line_align then n else Stdlib.max n 1) in
  if arena.cursor + n > arena.limit then begin
    (* a request larger than the arena gets a dedicated chunk *)
    if n >= t.arena_words then begin
      let base = t.wilderness in
      t.wilderness <- t.wilderness + n;
      Memory.store t.memory (t.wilderness - 1) 0;
      t.allocated <- t.allocated + n;
      base
    end
    else begin
      let fresh = fresh_arena t in
      arena.cursor <- fresh.cursor;
      arena.limit <- fresh.limit;
      let base = arena.cursor in
      arena.cursor <- arena.cursor + n;
      t.allocated <- t.allocated + n;
      base
    end
  end
  else begin
    let base = arena.cursor in
    arena.cursor <- arena.cursor + n;
    t.allocated <- t.allocated + n;
    base
  end

let alloc t ~thread n =
  if n <= 0 then invalid_arg "Alloc.alloc: size must be positive";
  alloc_in t (arena_for t thread) n

let alloc_shared t n =
  if n <= 0 then invalid_arg "Alloc.alloc_shared: size must be positive";
  alloc_in t (arena_for t (-1)) n

let words_allocated t = t.allocated

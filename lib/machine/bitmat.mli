(** Dense growable bit matrix (rows = cache lines, cols = cores) backing
    the HTM reader/writer sets and the cache presence index.  Rows grow
    on demand; reads past the current row capacity return 0/false, so
    probing never allocates.  Words hold {!bits_per_word} = 62 bits so
    every mask word is a non-negative OCaml immediate. *)

type t

val bits_per_word : int

val create : cols:int -> ?rows_hint:int -> unit -> t
val cols : t -> int
val words_per_row : t -> int

val set : t -> row:int -> col:int -> unit
val clear : t -> row:int -> col:int -> unit
val test : t -> row:int -> col:int -> bool

val row_word : t -> row:int -> int -> int
(** [row_word t ~row w] is word [w] of the row's mask vector (0 beyond
    capacity) — the open-coded fast path for hot loops. *)

val row_is_empty : t -> row:int -> bool

val row_has_other : t -> row:int -> except:int -> bool
(** Any column set besides [except] ([-1] for plain non-emptiness). *)

val iter_word : (int -> unit) -> int -> int -> unit
(** [iter_word f col0 m] applies [f] to [col0 + bit] for each set bit of
    mask word [m], lowest first. *)

val iter_row : t -> row:int -> (int -> unit) -> unit
(** Set columns of the row, ascending. *)

val ctz_pow2 : int -> int
(** Bit index of an isolated bit [1 lsl k], [k <= 61]. *)

val retire : t -> unit
(** Release the backing storage into the domain-local array pool; the
    matrix must not be used afterwards. *)

(** The memory hierarchy timing model: per-core private L1 and L2, a shared
    L3, and DRAM, with the latencies of Table 2.

    An access is charged the latency of the closest level holding the line
    and fills the levels above it. A write invalidates the line in every
    other core's private caches (MESI-style write-invalidate), so contended
    lines ping-pong and pay coherence misses — the timing effect that makes
    wasted-work measurements meaningful. *)

type t

val create : Config.t -> t

val access : t -> core:int -> line:int -> write:bool -> int
(** [access t ~core ~line ~write] returns the latency in cycles and updates
    cache state. *)

val invalidate_core : t -> core:int -> unit
(** Drop every line from one core's private caches (not used on abort by
    default — HTM aborts invalidate only speculative state — but exposed
    for experiments). *)

val hit_rates : t -> core:int -> float * float * float
(** Cumulative (l1, l2, l3) hit rates for a core, for diagnostics. *)

val retire : t -> unit
(** Release every backing array into the domain-local pool for the next
    run; the hierarchy must not be used afterwards. *)

(* All sets live in one flat array ([ways] slots per set, most- to
   least-recently used; -1 means empty), so creating a cache is a single
   allocation however many sets it has and a probe walks contiguous
   memory. Sets stay packed front-to-back: probe permutes the occupied
   prefix, invalidate compacts, and insert shifts — so -1 slots only ever
   trail the live ones.

   Scan loops are top-level functions taking their state as arguments: a
   local [let rec] capturing the set would allocate a closure per probe
   without flambda, and probes run once per simulated memory access. *)

type t = { data : int array; ways : int; mask : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~lines ~ways =
  if lines mod ways <> 0 then invalid_arg "Cache.create: lines mod ways <> 0";
  let nsets = lines / ways in
  if not (is_power_of_two nsets) then
    invalid_arg "Cache.create: set count must be a power of two";
  { data = Intpool.acquire ~len:(nsets * ways) ~fill:(-1); ways; mask = nsets - 1 }

(* Release the backing array for reuse; [t] must not be used after. *)
let retire t = Intpool.release t.data

let base_of t line = (line land t.mask) * t.ways

(* Offset of [line] within [base, last], or -1. *)
let rec scan data line last i =
  if i > last then -1
  else if data.(i) = line then i
  else scan data line last (i + 1)

(* Offset of [line] or of the first empty slot, whichever comes first
   (the packed-prefix invariant makes an empty slot proof of a miss with
   room); -1 when the set is full without [line]. *)
let rec scan_or_empty data line last i =
  if i > last then -1
  else begin
    let v = data.(i) in
    if v = line || v = -1 then i else scan_or_empty data line last (i + 1)
  end

(* Shift [data.(lo..hi-1)] one slot right.  Sets are at most a few ways
   wide, so an explicit loop beats [Array.blit]'s out-of-line call. *)
let shift_right data lo hi =
  for j = hi downto lo + 1 do
    data.(j) <- data.(j - 1)
  done

(* Move the element at offset [base + i] to the set's front. *)
let move_to_front t base i =
  let v = t.data.(base + i) in
  shift_right t.data base (base + i);
  t.data.(base) <- v

let probe t line =
  let base = base_of t line in
  if t.data.(base) = line then true (* MRU hit: the common case *)
  else begin
    let i = scan t.data line (base + t.ways - 1) (base + 1) in
    if i < 0 then false
    else begin
      move_to_front t base (i - base);
      true
    end
  end

let holds t line =
  let base = base_of t line in
  scan t.data line (base + t.ways - 1) base >= 0

(* Install [line]; returns the evicted LRU victim (or -1 when the set
   had room / already held the line) so the hierarchy can keep its
   presence index exact without rescanning. *)
let insert_evict t line =
  let base = base_of t line in
  let last = base + t.ways - 1 in
  let i = scan_or_empty t.data line last base in
  if i >= 0 then begin
    if t.data.(i) = line then move_to_front t base (i - base)
    else begin
      (* first empty slot: room in the set, install with no victim *)
      shift_right t.data base i;
      t.data.(base) <- line
    end;
    -1
  end
  else begin
    (* full set, no hit: evict LRU, shift everything down *)
    let victim = t.data.(last) in
    shift_right t.data base last;
    t.data.(base) <- line;
    victim
  end

let insert t line = ignore (insert_evict t line)

let invalidate t line =
  let base = base_of t line in
  let last = base + t.ways - 1 in
  let i = scan t.data line last base in
  if i >= 0 then begin
    for j = i to last - 1 do
      t.data.(j) <- t.data.(j + 1)
    done;
    t.data.(last) <- -1
  end

let clear t = Array.fill t.data 0 (Array.length t.data) (-1)

let iter f t = Array.iter (fun v -> if v >= 0 then f v) t.data

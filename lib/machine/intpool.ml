(* Domain-local recycling for the simulator's large int arrays.

   Every [Machine.run] builds a cache hierarchy and HTM index of several
   hundred thousand words that die with the run; under repeated runs
   (the bench harness, the serve sweep) that is multiple megabytes of
   major-heap churn per simulated run, and GC marking of the corpses
   shows up as a double-digit share of short-workload wall time.  The
   pool keeps retired arrays on a per-domain free list keyed by length,
   so the next run re-fills in place instead of allocating.

   Per-domain (Domain.DLS) because the harness runs machines in a
   domain pool: no locks, and an array never migrates between domains
   within one run.  Releasing is optional everywhere — an exceptional
   exit simply leaks the array to the GC, which is the old behaviour. *)

let max_per_size = 8

type slot = { mutable arrays : int array list; mutable n : int }

let pool : (int, slot) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

(* An array of [len] filled with [fill]: recycled when one of exactly
   this length is pooled, fresh otherwise. *)
let acquire ~len ~fill =
  if len <= 0 then Array.make (max len 0) fill
  else
    let tbl = Domain.DLS.get pool in
    match Hashtbl.find_opt tbl len with
    | Some ({ arrays = a :: rest; _ } as s) ->
      s.arrays <- rest;
      s.n <- s.n - 1;
      Array.fill a 0 len fill;
      a
    | Some _ | None -> Array.make len fill

(* Hand [a] back for reuse.  The caller promises nothing else reads or
   writes [a] afterwards. *)
let release a =
  let len = Array.length a in
  if len > 0 then begin
    let tbl = Domain.DLS.get pool in
    match Hashtbl.find_opt tbl len with
    | Some s ->
      if s.n < max_per_size then begin
        s.arrays <- a :: s.arrays;
        s.n <- s.n + 1
      end
    | None -> Hashtbl.add tbl len { arrays = [ a ]; n = 1 }
  end

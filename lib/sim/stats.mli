(** Statistics gathered over one simulation run — the raw material for
    every table and figure of the paper's evaluation. *)

type ab_stat = {
  mutable ab_commits : int;
  mutable ab_aborts : int;
  mutable ab_locks : int;
  mutable ab_irrevocable : int;
}

type pol_stat = {
  mutable p_commits : int;
  mutable p_aborts : int;
  mutable p_capacity : int;
  mutable p_irrevocable : int;
}
(** Per-policy-bundle tally, keyed by {!Stx_policy.label} in
    [per_policy]. A single run contributes one entry (its own bundle);
    {!merge} unions them so a sweep across policies can be ranked. *)

type t = {
  threads : int;
  mutable commits : int;
  mutable aborts : int;
  mutable conflict_aborts : int;
  mutable lock_sub_aborts : int;
  mutable explicit_aborts : int;
  mutable capacity_aborts : int;
      (** read/write-set budget exceeded (only under a [Bounded] capacity
          policy; always 0 at the paper's hardware point) *)
  mutable stm_conflict_aborts : int;
      (** hardware aborts inflicted by a concurrent software-tier commit
          publishing into the transaction's footprint (only under the
          [htm-stm-lock] fallback) *)
  mutable stm_commits : int;  (** software-tier commits (also in [commits]) *)
  mutable stm_aborts : int;  (** software-tier aborts (also in [aborts]) *)
  mutable stm_validation_aborts : int;
      (** software attempts failing read-set validation *)
  mutable stm_hw_owned_aborts : int;
      (** software commits deferring to a hardware-owned write line *)
  mutable stm_locksub_aborts : int;
      (** software commits refused because the global lock was held *)
  mutable stm_validation_cycles : int;
      (** memory latency spent probing version words (commit-time
          re-validation; also inside [useful_cycles]/[wasted_cycles]) *)
  mutable irrevocable_entries : int;  (** txns forced into irrevocable mode *)
  mutable useful_cycles : int;  (** cycles of committed attempts *)
  mutable wasted_cycles : int;  (** cycles of aborted attempts *)
  mutable tx_mode_cycles : int;  (** cycles with a transaction in flight *)
  mutable lock_wait_cycles : int;  (** spinning on advisory locks *)
  mutable backoff_cycles : int;
  mutable total_cycles : int;  (** makespan: max thread-local clock *)
  mutable thread_cycles : int;
      (** sum of final thread-local clocks — the %TM-time denominator,
          accumulated at run end and summed (not maxed) by {!merge} *)
  mutable lock_acquires : int;
  mutable lock_timeouts : int;
  mutable alps_executed : int;  (** dynamic ALP instructions *)
  mutable alps_lock_attempts : int;  (** ALPs that went for a lock *)
  mutable accuracy_hits : int;  (** runtime anchor id matched the oracle *)
  mutable accuracy_total : int;
  mutable precise : int;  (** policy decisions by kind *)
  mutable coarse : int;
  mutable promoted : int;
  mutable training : int;
  mutable insts : int;  (** instructions executed (µ-ops) *)
  mutable tx_insts : int;  (** instructions executed inside transactions *)
  mutable committed_tx_insts : int;
  conf_addr_freq : (int, int) Hashtbl.t;  (** conflicting line -> aborts *)
  conf_pc_freq : (int, int) Hashtbl.t;  (** conflicting PC tag -> aborts *)
  per_ab : (int, ab_stat) Hashtbl.t;  (** per-atomic-block breakdown *)
  per_policy : (string, pol_stat) Hashtbl.t;
      (** per-policy-bundle breakdown, keyed by policy label *)
}

val create : threads:int -> t

val aborts_per_commit : t -> float
val wasted_over_useful : t -> float
val pct_irrevocable : t -> float
(** Percentage of committed transactions that ran irrevocably. *)

val pct_tx_time : t -> float
(** [tx_mode_cycles] over [thread_cycles] (with a [total_cycles * threads]
    fallback for records that never ran a simulation). Stays ≤ 100% under
    {!merge}, because both sides of the ratio sum. *)

val accuracy : t -> float

val locality : ?top:int -> (int, int) Hashtbl.t -> float
(** Share of the [top] (default 1) most frequent keys among all
    occurrences (0 when empty) — the LA/LP columns of Table 1. *)

val note_conflict : t -> conf_line:int -> conf_pc:int option -> unit

val ab : t -> int -> ab_stat
(** The (created-on-demand) per-atomic-block record. *)

val policy_tally : t -> string -> pol_stat
(** The (created-on-demand) per-policy record for a policy label. *)

val merge : t -> t -> t
(** Combine two runs' statistics into a fresh value (the runner's
    aggregation path): counters sum, frequency tables union by summing
    per-key counts, per-atomic-block records sum field-wise, and the
    makespan-like fields take the max — [total_cycles] because the shards
    of a partitioned run overlap in time, [threads] because it is a
    capacity, not a count. *)
